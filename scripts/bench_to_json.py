#!/usr/bin/env python3
"""Fold `go test -bench` text output into one machine-readable JSON blob.

Usage: bench_to_json.py bench-step.txt bench-batch.txt ... > BENCH_<run>.json

Each `Benchmark<Name>[-P]  N  <value> <unit> ...` line becomes one
record carrying every reported metric (ns/op, B/op, allocs/op and the
custom ReportMetric units like Minstr/s, speedup, cores, instrs/cycle).
CI uploads the result as a per-run artifact so throughput and
allocation trends are diffable across builds without scraping logs.
"""

import json
import os
import re
import sys

BENCH_LINE = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")


def parse_file(path):
    records = []
    with open(path) as fh:
        for line in fh:
            m = BENCH_LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            fields = rest.split()
            metrics = {}
            # go test emits "<value> <unit>" pairs after the iteration count.
            for value, unit in zip(fields[0::2], fields[1::2]):
                try:
                    metrics[unit] = float(value)
                except ValueError:
                    continue
            records.append(
                {
                    "name": name,
                    "file": os.path.basename(path),
                    "iterations": iters,
                    "metrics": metrics,
                }
            )
    return records


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    benchmarks = []
    for path in argv[1:]:
        benchmarks.extend(parse_file(path))
    if not benchmarks:
        print("bench_to_json: no benchmark lines found", file=sys.stderr)
        return 1
    out = {
        "run": os.environ.get("GITHUB_RUN_NUMBER", ""),
        "commit": os.environ.get("GITHUB_SHA", ""),
        "sources": [os.path.basename(p) for p in argv[1:]],
        "benchmarks": benchmarks,
    }
    json.dump(out, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
