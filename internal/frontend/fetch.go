package frontend

import (
	"udpsim/internal/cache"
	"udpsim/internal/isa"
)

// completeFills installs finished MSHR fills into the icache, charging
// useless-prefetch evictions to the tuner.
func (f *Frontend) completeFills(cycle uint64) {
	f.mshrs.Completed(cycle, func(m cache.MSHR) {
		// A prefetch-initiated fill whose demand merged keeps its
		// prefetch provenance cleared: the line was already consumed.
		isPrefetch := m.Prefetch && !m.DemandMerged
		if f.Obs != nil && m.Prefetch {
			f.Obs.PrefetchArrived(uint64(m.LineAddr), m.IssueCycle, m.OffPath, m.DemandMerged)
		}
		ev := f.icache.InsertPath(m.LineAddr, cycle, isPrefetch, m.OffPath)
		if ev.Valid && ev.WasUnusedPrefetch {
			f.Stats.PrefetchUseless++
			if ev.WasOffPath {
				f.Stats.PrefetchUselessOff++
			}
			if f.Obs != nil {
				f.Obs.PrefetchEvicted(uint64(ev.LineAddr), ev.WasOffPath)
			}
			f.tuner.OnPrefetchUseless(ev.LineAddr, ev.WasOffPath)
		}
		if f.ext != nil {
			f.ext.OnFill(m.LineAddr, cycle)
		}
		if f.cfg.PredecodeBTBFill {
			f.predecodeLine(m.LineAddr, cycle)
		}
	})
}

// predecodeLine walks a freshly filled line's instructions and installs
// its branches into the BTB (predecode-based BTB fill).
func (f *Frontend) predecodeLine(line isa.Addr, cycle uint64) {
	for pc := line; pc < line+isa.LineBytes; pc += isa.InstrBytes {
		si := f.prog.InstrAt(pc)
		if !si.IsBranch() {
			continue
		}
		// Predecode sees kind and direct targets; indirect targets stay
		// unknown until execution, so only install resolvable entries
		// and returns (whose target comes from the RAS anyway).
		switch si.Branch {
		case isa.BranchCond, isa.BranchUncond, isa.BranchCall, isa.BranchReturn:
			if !f.btb.Probe(pc) {
				f.btb.Insert(pc, si.Branch, si.Target, cycle)
				f.Stats.PredecodeBTBFills++
			}
		}
	}
}

// fdipScan runs FDIP's runahead over unscanned FTQ blocks, probing the
// icache and emitting prefetches (paper Section II).
func (f *Frontend) fdipScan(cycle uint64) {
	if f.cfg.NoPrefetch || f.cfg.PerfectICache || f.ext != nil && f.cfg.NoFDIPWithExternal {
		return
	}
	for i := 0; i < f.cfg.ScanPerCycle; i++ {
		fb := f.ftq.NextUnscanned()
		if fb == nil {
			return
		}
		fb.Scanned = true
		f.considerPrefetch(fb.Line(), fb, cycle)
	}
}

// considerPrefetch evaluates one prefetch candidate line for a block.
func (f *Frontend) considerPrefetch(line isa.Addr, fb *FetchBlock, cycle uint64) {
	if f.icache.Lookup(line) {
		return
	}
	if m := f.mshrs.Lookup(line); m != nil {
		f.Stats.PrefetchesMerged++
		f.mshrs.Stats.PrefetchMerges++
		return
	}
	// This is a prefetch candidate in the paper's sense: an FTQ block's
	// line absent from the icache.
	fb.PrefetchCandidates++
	count := 1
	if fb.AssumedOffPath {
		f.tuner.OnCandidate(line)
		count = f.tuner.FilterCandidate(line)
		if count <= 0 {
			f.Stats.PrefetchesDropped++
			return
		}
	}
	for k := 0; k < count; k++ {
		l := line + isa.Addr(k*isa.LineBytes)
		if k > 0 {
			if f.icache.Lookup(l) || f.mshrs.Lookup(l) != nil {
				continue
			}
			f.Stats.SuperLinePrefetches++
		}
		f.emitPrefetch(l, fb.OffPath, cycle)
	}
}

// emitPrefetch issues a prefetch fill for line through the shared
// request path. It is dropped (counted) when the L1I MSHR file is full
// or the hierarchy rejects it under L2/LLC MSHR pressure — nothing is
// charged to DRAM or the fill ports for a dropped prefetch.
func (f *Frontend) emitPrefetch(line isa.Addr, offPath bool, cycle uint64) {
	if f.mshrs.Full() {
		f.mshrs.Stats.AllocFailures++
		f.Stats.PrefetchBackpressure++
		return
	}
	ready, _, ok := f.hier.InstrRequest(line, cycle, true)
	if !ok {
		f.Stats.PrefetchBackpressure++
		return
	}
	f.mshrs.Allocate(line, cycle, ready, true, offPath)
	f.Stats.PrefetchesEmitted++
	if offPath {
		f.Stats.PrefetchesOffPath++
	} else {
		f.Stats.PrefetchesOnPath++
	}
	if f.Obs != nil {
		f.Obs.PrefetchEmitted(uint64(line), offPath)
	}
}

// fetchStage demands the FTQ head block from the L1I and streams its
// instructions into the decode queue.
func (f *Frontend) fetchStage(cycle uint64) {
	budget := f.cfg.FetchWidth
	stalled := false
	for budget > 0 && !f.decodeQ.full() {
		if f.curBlock == nil {
			fb := f.ftq.Peek()
			if fb == nil {
				f.Stats.FTQEmptyCycles++
				return
			}
			f.ftq.Pop()
			f.curBlock = fb
			f.curIdx = 0
			f.needAccess = true
		}
		if f.needAccess {
			if !f.accessBlockLine(f.curBlock, cycle) {
				// MSHR full on a demand miss: retry next cycle.
				f.Stats.FetchStallCycles++
				return
			}
			f.needAccess = false
		}
		if cycle < f.blockReady {
			if !stalled {
				f.Stats.FetchStallCycles++
				stalled = true
			}
			return
		}
		fi := f.curBlock.Instrs[f.curIdx]
		f.decodeQ.push(fi)
		f.curIdx++
		budget--
		if f.curIdx >= len(f.curBlock.Instrs) {
			// Fully streamed: the instructions now belong to the decode
			// queue/backend; only the block shell returns to the pool.
			f.blocks.put(f.curBlock)
			f.curBlock = nil
		}
	}
}

// accessBlockLine performs the demand icache access for a block,
// classifying timeliness and prefetch usefulness. It returns false when
// the access must be retried (MSHR pressure).
func (f *Frontend) accessBlockLine(fb *FetchBlock, cycle uint64) bool {
	line := fb.Line()
	// Timeliness classification happens per line *transition*: two
	// consecutive 32B blocks in one 64B line are one demand access of
	// that line, matching the paper's per-line icache/MSHR hit ratio.
	newLine := line != f.lastDemandLine
	// Hit latency is fully pipelined in a real frontend: a hit delivers
	// without stalling fetch, so blockReady is the current cycle. Only
	// misses (and fill-buffer waits) stall.
	if f.cfg.PerfectICache {
		f.blockReady = cycle
		if newLine {
			f.lastDemandLine = line
			f.Stats.DemandIcacheHits++
			f.tuner.OnDemandFetch(true, false)
		}
		return true
	}
	res := f.icache.Access(line, cycle)
	if res.Hit {
		f.blockReady = cycle
		if newLine {
			f.lastDemandLine = line
			f.Stats.DemandIcacheHits++
			f.tuner.OnDemandFetch(true, false)
		}
		if res.WasPrefetched {
			f.Stats.PrefetchUseful++
			if res.WasOffPathPrefetch {
				f.Stats.PrefetchUsefulOff++
			}
			if f.Obs != nil {
				f.Obs.PrefetchHit(uint64(line), 0, false)
			}
			f.tuner.OnPrefetchUseful(line, res.WasOffPathPrefetch)
		}
		f.notifyExternal(line, true, cycle)
		return true
	}
	if m := f.mshrs.Lookup(line); m != nil {
		// Fill-buffer hit: the line is in flight; pay the remainder.
		wasPrefetch := m.Prefetch && !m.DemandMerged
		ready := f.mshrs.MergeDemand(m)
		if ready < cycle {
			ready = cycle
		}
		f.blockReady = ready + 1
		f.lastDemandLine = line
		f.Stats.DemandFillBufHits++
		f.tuner.OnDemandFetch(false, true)
		if wasPrefetch {
			// A useful but untimely prefetch.
			f.Stats.PrefetchUseful++
			if m.OffPath {
				f.Stats.PrefetchUsefulOff++
			}
			if f.Obs != nil {
				f.Obs.PrefetchHit(uint64(line), f.blockReady-cycle, true)
			}
			f.tuner.OnPrefetchUseful(line, m.OffPath)
		}
		f.notifyExternal(line, false, cycle)
		return true
	}
	// Full demand miss: reserve the L1I MSHR first, then ask the shared
	// hierarchy. A rejection at either point leaves no side effects (no
	// phantom DRAM traffic) so the identical access retries next cycle.
	if f.mshrs.Full() {
		f.mshrs.Stats.AllocFailures++
		f.Stats.DemandMissRetries++
		return false
	}
	ready, _, ok := f.hier.InstrRequest(line, cycle, false)
	if !ok {
		f.Stats.DemandMissRetries++
		return false
	}
	f.mshrs.Allocate(line, cycle, ready, false, false)
	f.blockReady = ready
	f.lastDemandLine = line
	f.Stats.DemandMisses++
	f.tuner.OnDemandFetch(false, false)
	f.notifyExternal(line, false, cycle)
	return true
}

// notifyExternal feeds the auxiliary prefetcher (the EIP comparator)
// and emits its suggestions on top of FDIP's. The paper's ISO-storage
// comparison adds EIP's 8KB of metadata to the same machine; a
// configuration replacing FDIP entirely is available by combining an
// external prefetcher with NoPrefetch.
func (f *Frontend) notifyExternal(line isa.Addr, hit bool, cycle uint64) {
	if f.ext == nil {
		return
	}
	for _, l := range f.ext.OnDemandAccess(line, hit, cycle) {
		if f.icache.Lookup(l) || f.mshrs.Lookup(l) != nil {
			continue
		}
		f.emitPrefetch(l, false, cycle)
	}
}
