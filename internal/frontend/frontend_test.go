package frontend

import (
	"testing"

	"udpsim/internal/bp"
	"udpsim/internal/btb"
	"udpsim/internal/cache"
	"udpsim/internal/isa"
	"udpsim/internal/memory"
	"udpsim/internal/workload"
)

// buildFrontend wires a frontend over a small generated program with a
// trivial uncore.
func buildFrontend(t *testing.T, tuner Tuner) (*Frontend, *workload.Program) {
	t.Helper()
	p := workload.MustByName("mysql")
	p.Funcs = 50
	p.DispatchTargets = 35
	prog, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	hier := memory.New(memory.Config{
		L1D:       cache.Config{Name: "L1D", SizeBytes: 16 * 1024, Ways: 8, HitLatency: 4},
		L2:        cache.Config{Name: "L2", SizeBytes: 128 * 1024, Ways: 8},
		LLC:       cache.Config{Name: "LLC", SizeBytes: 512 * 1024, Ways: 8},
		L2Latency: 13, LLCLatency: 36, DRAMLatency: 150, DRAMBurstCycles: 10,
	})
	fe := New(Config{
		FTQDepth: 32, FTQPhysMax: 64,
		L1I: cache.Config{Name: "L1I", SizeBytes: 8 * 1024, Ways: 8, HitLatency: 3},
	}, Deps{
		Program:  prog,
		Oracle:   NewOracleStream(workload.NewExecutor(prog, 0)),
		Dir:      bp.NewTage(bp.DefaultTageConfig()),
		BTB:      btb.New(btb.Config{Entries: 512, Ways: 4}),
		IndirBTB: btb.NewIndirect(256),
		Hier:     hier,
		Tuner:    tuner,
	})
	return fe, prog
}

// scalarConsumer is a minimal in-order backend stand-in: it decodes one
// instruction per cycle and resolves any diverging branch a fixed
// number of cycles later.
type scalarConsumer struct {
	fe        *Frontend
	pending   *FrontInstr
	resolveAt uint64
	retired   uint64
	onPath    uint64
}

func (c *scalarConsumer) cycle(cycle uint64) {
	// Drive fill completions: in the full machine Machine.Step ticks
	// the hierarchy every cycle; standalone frontend tests must do it
	// themselves, or in-flight fills never land and the MSHR files
	// back-pressure the fetcher forever.
	c.fe.hier.Tick(cycle)
	if c.pending != nil {
		if cycle < c.resolveAt {
			return
		}
		c.fe.Recover(c.pending, cycle)
		c.pending = nil
	}
	fi := c.fe.PopDecode()
	if fi == nil {
		return
	}
	c.retired++
	if fi.OnPath {
		c.onPath++
	}
	c.fe.OnDecode(fi, cycle)
	// A divergence that post-fetch correction did not heal resolves at
	// "execute", a few cycles later.
	if fi.Divergence != nil {
		c.pending = fi
		c.resolveAt = cycle + 5
	}
}

func TestFrontendStandaloneProgress(t *testing.T) {
	fe, _ := buildFrontend(t, nil)
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 200_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if c.retired < 100_000 {
		t.Fatalf("consumed only %d instructions", c.retired)
	}
	s := fe.Stats
	// Every divergence class must occur on a branchy workload with a
	// small BTB, and every recovery path must fire.
	if s.DivergencesDirection == 0 {
		t.Error("no direction mispredictions")
	}
	if s.DivergencesBTBMiss == 0 {
		t.Error("no BTB-miss divergences")
	}
	if s.Recoveries == 0 {
		t.Error("no execute-time recoveries")
	}
	if s.PostFetchResteers == 0 || s.PostFetchRecoveries == 0 {
		t.Errorf("post-fetch correction inactive: %d resteers, %d recoveries",
			s.PostFetchResteers, s.PostFetchRecoveries)
	}
	if s.PrefetchesEmitted == 0 {
		t.Error("FDIP emitted nothing")
	}
	if s.PostFetchDiscoveries < s.PostFetchResteers {
		t.Error("more resteers than discoveries")
	}
}

// TestFrontendHealsAfterRecovery: after every recovery the frontend
// must be back on the oracle path.
func TestFrontendHealsAfterRecovery(t *testing.T) {
	fe, _ := buildFrontend(t, nil)
	c := &scalarConsumer{fe: fe}
	recoveries := 0
	for cyc := uint64(1); cyc < 100_000; cyc++ {
		fe.Cycle(cyc)
		before := c.pending != nil && cyc >= c.resolveAt
		c.cycle(cyc)
		if before {
			recoveries++
			if !fe.OnOraclePath() {
				t.Fatalf("frontend off-path right after recovery at cycle %d", cyc)
			}
		}
	}
	if recoveries == 0 {
		t.Skip("no recoveries observed")
	}
}

// TestPerfectICacheNeverStalls: the perfect-icache frontend never
// reports fetch stalls or misses.
func TestPerfectICacheNeverStalls(t *testing.T) {
	p := workload.MustByName("mysql")
	p.Funcs = 50
	p.DispatchTargets = 35
	prog := workload.MustGenerate(p)
	hier := memory.New(memory.Config{
		L1D:       cache.Config{Name: "L1D", SizeBytes: 16 * 1024, Ways: 8, HitLatency: 4},
		L2:        cache.Config{Name: "L2", SizeBytes: 128 * 1024, Ways: 8},
		LLC:       cache.Config{Name: "LLC", SizeBytes: 512 * 1024, Ways: 8},
		L2Latency: 13, LLCLatency: 36, DRAMLatency: 150, DRAMBurstCycles: 10,
	})
	fe := New(Config{
		PerfectICache: true,
		L1I:           cache.Config{Name: "L1I", SizeBytes: 8 * 1024, Ways: 8, HitLatency: 3},
	}, Deps{
		Program:  prog,
		Oracle:   NewOracleStream(workload.NewExecutor(prog, 0)),
		Dir:      bp.NewTage(bp.DefaultTageConfig()),
		BTB:      btb.New(btb.Config{Entries: 512, Ways: 4}),
		IndirBTB: btb.NewIndirect(256),
		Hier:     hier,
	})
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 50_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if fe.Stats.DemandMisses != 0 || fe.Stats.DemandFillBufHits != 0 {
		t.Errorf("perfect icache missed: %+v", fe.Stats)
	}
	if fe.Stats.PrefetchesEmitted != 0 {
		t.Errorf("perfect icache emitted %d prefetches", fe.Stats.PrefetchesEmitted)
	}
}

// TestNoPrefetchEmitsNothing: the no-prefetch frontend must not emit.
func TestNoPrefetchEmitsNothing(t *testing.T) {
	p := workload.MustByName("mysql")
	p.Funcs = 50
	p.DispatchTargets = 35
	prog := workload.MustGenerate(p)
	hier := memory.New(memory.Config{
		L1D:       cache.Config{Name: "L1D", SizeBytes: 16 * 1024, Ways: 8, HitLatency: 4},
		L2:        cache.Config{Name: "L2", SizeBytes: 128 * 1024, Ways: 8},
		LLC:       cache.Config{Name: "LLC", SizeBytes: 512 * 1024, Ways: 8},
		L2Latency: 13, LLCLatency: 36, DRAMLatency: 150, DRAMBurstCycles: 10,
	})
	fe := New(Config{
		NoPrefetch: true,
		L1I:        cache.Config{Name: "L1I", SizeBytes: 8 * 1024, Ways: 8, HitLatency: 3},
	}, Deps{
		Program:  prog,
		Oracle:   NewOracleStream(workload.NewExecutor(prog, 0)),
		Dir:      bp.NewTage(bp.DefaultTageConfig()),
		BTB:      btb.New(btb.Config{Entries: 512, Ways: 4}),
		IndirBTB: btb.NewIndirect(256),
		Hier:     hier,
	})
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 50_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if fe.Stats.PrefetchesEmitted != 0 {
		t.Errorf("no-prefetch emitted %d", fe.Stats.PrefetchesEmitted)
	}
	if fe.Stats.DemandMisses == 0 {
		t.Error("no demand misses without prefetching on a cold icache")
	}
}

// tunerRecorder checks the Tuner contract: every hook fires on a real
// workload.
type tunerRecorder struct {
	NopTuner
	conds, resteers, candidates, useful, useless, demand, seqEnds int
}

func (r *tunerRecorder) OnCondPrediction(bp.Confidence)   { r.conds++ }
func (r *tunerRecorder) OnResteer(ResteerKind)            { r.resteers++ }
func (r *tunerRecorder) OnCandidate(isa.Addr)             { r.candidates++ }
func (r *tunerRecorder) OnPrefetchUseful(isa.Addr, bool)  { r.useful++ }
func (r *tunerRecorder) OnPrefetchUseless(isa.Addr, bool) { r.useless++ }
func (r *tunerRecorder) OnDemandFetch(bool, bool)         { r.demand++ }
func (r *tunerRecorder) OnSequentialBlockEnd(isa.Addr)    { r.seqEnds++ }
func (r *tunerRecorder) AssumeOffPath() bool              { return true }
func (r *tunerRecorder) FilterCandidate(isa.Addr) int     { return 1 }

func TestTunerHooksFire(t *testing.T) {
	rec := &tunerRecorder{}
	fe, _ := buildFrontend(t, rec)
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 100_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if rec.conds == 0 || rec.resteers == 0 || rec.demand == 0 || rec.seqEnds == 0 {
		t.Errorf("hooks silent: %+v", rec)
	}
	if rec.candidates == 0 {
		t.Error("no candidates despite AssumeOffPath=true")
	}
	if rec.useful == 0 && rec.useless == 0 {
		t.Error("no prefetch outcomes observed")
	}
}
