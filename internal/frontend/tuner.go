package frontend

import (
	"udpsim/internal/bp"
	"udpsim/internal/isa"
)

// ResteerKind classifies frontend redirections for the tuner hooks.
type ResteerKind uint8

// Resteer kinds.
const (
	// ResteerRecovery is an execute-time branch misprediction recovery.
	ResteerRecovery ResteerKind = iota
	// ResteerPostFetch is a decode-time post-fetch correction after a
	// BTB miss.
	ResteerPostFetch
)

// Tuner is the hook surface through which the paper's mechanisms (UFTQ,
// UDP) observe and steer the frontend. The baseline implementation is
// inert. All methods are called from the single-threaded cycle loop.
type Tuner interface {
	// OnCondPrediction observes each conditional-branch prediction's
	// confidence at fetch-block build time (drives UDP's off-path
	// confidence counter).
	OnCondPrediction(conf bp.Confidence)

	// OnResteer notifies recoveries and post-fetch corrections (UDP
	// resets its confidence counter; paper Section IV-B).
	OnResteer(kind ResteerKind)

	// AssumeOffPath reports whether the mechanism currently believes
	// the frontend is on the wrong path; blocks built while true are
	// tagged AssumedOffPath and their prefetch candidates filtered.
	AssumeOffPath() bool

	// FilterCandidate decides emission for a prefetch candidate line of
	// an assumed-off-path block. It returns how many consecutive lines
	// to emit (1, 2 or 4 — super-line hits) or 0 to drop the candidate.
	FilterCandidate(line isa.Addr) int

	// OnCandidate observes every assumed-off-path prefetch candidate
	// (emitted or dropped) so UDP can track it in the Seniority-FTQ.
	OnCandidate(line isa.Addr)

	// OnRetire observes each retired instruction's line address
	// (Seniority-FTQ matching: a retired instruction whose line matches
	// a tracked candidate proves the candidate useful).
	OnRetire(line isa.Addr)

	// OnRetireTakenBranch observes the fetch-block address of each
	// retired taken branch; UDP trains its hidden-taken-branch table
	// with it (the hardware proxy for "the predictor says taken but the
	// BTB has no entry", the paper's second off-path trigger).
	OnRetireTakenBranch(block isa.Addr)

	// OnSequentialBlockEnd fires when the prediction stage walks a
	// whole fetch block without finding any predicted-taken branch;
	// UDP consults its hidden-taken-branch table to suspect a BTB miss.
	OnSequentialBlockEnd(block isa.Addr)

	// OnPrefetchUseful/OnPrefetchUseless observe prefetch outcomes:
	// a demand hit on a prefetched line (icache or fill buffer), or an
	// eviction of a never-used prefetched line.
	OnPrefetchUseful(line isa.Addr, offPath bool)
	OnPrefetchUseless(line isa.Addr, offPath bool)

	// OnDemandFetch observes each demand instruction-fetch block access
	// (icacheHit, fill-buffer hit, or full miss) — the timeliness
	// signal (paper Section III-C).
	OnDemandFetch(icacheHit, fillBufferHit bool)

	// TargetFTQDepth returns the FTQ capacity the mechanism wants,
	// given the current one (UFTQ sizing; fixed-depth mechanisms return
	// current).
	TargetFTQDepth(current int) int
}

// NopTuner is the baseline: fixed FTQ depth, no filtering.
type NopTuner struct{}

// OnCondPrediction implements Tuner.
func (NopTuner) OnCondPrediction(bp.Confidence) {}

// OnResteer implements Tuner.
func (NopTuner) OnResteer(ResteerKind) {}

// AssumeOffPath implements Tuner.
func (NopTuner) AssumeOffPath() bool { return false }

// FilterCandidate implements Tuner.
func (NopTuner) FilterCandidate(isa.Addr) int { return 1 }

// OnCandidate implements Tuner.
func (NopTuner) OnCandidate(isa.Addr) {}

// OnRetire implements Tuner.
func (NopTuner) OnRetire(isa.Addr) {}

// OnRetireTakenBranch implements Tuner.
func (NopTuner) OnRetireTakenBranch(isa.Addr) {}

// OnSequentialBlockEnd implements Tuner.
func (NopTuner) OnSequentialBlockEnd(isa.Addr) {}

// OnPrefetchUseful implements Tuner.
func (NopTuner) OnPrefetchUseful(isa.Addr, bool) {}

// OnPrefetchUseless implements Tuner.
func (NopTuner) OnPrefetchUseless(isa.Addr, bool) {}

// OnDemandFetch implements Tuner.
func (NopTuner) OnDemandFetch(bool, bool) {}

// TargetFTQDepth implements Tuner.
func (NopTuner) TargetFTQDepth(current int) int { return current }
