package frontend

import (
	"testing"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// countingSource yields a deterministic synthetic stream for oracle
// tests.
type countingSource struct {
	n      uint64
	static isa.StaticInstr
}

func (c *countingSource) Next() isa.DynInstr {
	c.n++
	return isa.DynInstr{Static: &c.static, Seq: c.n}
}

func TestOracleConsumePeekRewind(t *testing.T) {
	o := NewOracleStream(&countingSource{})
	first := o.Consume()
	if first.Seq != 1 || o.Cursor() != 1 {
		t.Fatalf("first = %d, cursor %d", first.Seq, o.Cursor())
	}
	if p := o.Peek(); p.Seq != 2 {
		t.Fatalf("peek = %d", p.Seq)
	}
	for i := 0; i < 10; i++ {
		o.Consume()
	}
	o.Rewind(1)
	if got := o.Consume(); got.Seq != 2 {
		t.Errorf("after rewind got %d, want 2", got.Seq)
	}
}

func TestOracleRewindForwardPanics(t *testing.T) {
	o := NewOracleStream(&countingSource{})
	o.Consume()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	o.Rewind(5)
}

func TestOracleWindowOverflowPanics(t *testing.T) {
	o := NewOracleStream(&countingSource{})
	for i := 0; i < oracleWindow+100; i++ {
		o.Consume()
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-window rewind")
		}
	}()
	o.At(0)
}

func TestOracleMatchesExecutor(t *testing.T) {
	p := workload.MustByName("mysql")
	p.Funcs = 30
	p.DispatchTargets = 20
	prog := workload.MustGenerate(p)
	o := NewOracleStream(workload.NewExecutor(prog, 0))
	ref := workload.NewExecutor(prog, 0)
	for i := 0; i < 5000; i++ {
		a, b := o.Consume(), ref.Next()
		if a.PC() != b.PC() || a.Taken != b.Taken {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
