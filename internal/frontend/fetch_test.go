package frontend

import (
	"testing"

	"udpsim/internal/bp"
	"udpsim/internal/btb"
	"udpsim/internal/cache"
	"udpsim/internal/isa"
	"udpsim/internal/memory"
	"udpsim/internal/workload"
)

// superTuner tags everything off-path and emits 4-line super-prefetches
// for every candidate.
type superTuner struct {
	NopTuner
	candidates int
}

func (s *superTuner) AssumeOffPath() bool          { return true }
func (s *superTuner) OnCandidate(isa.Addr)         { s.candidates++ }
func (s *superTuner) FilterCandidate(isa.Addr) int { return 4 }

func buildSmallFrontend(t *testing.T, tuner Tuner, mshrs int) *Frontend {
	t.Helper()
	p := workload.MustByName("mysql")
	p.Funcs = 50
	p.DispatchTargets = 35
	prog, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	hier := memory.New(memory.Config{
		L1D:       cache.Config{Name: "L1D", SizeBytes: 16 * 1024, Ways: 8, HitLatency: 4},
		L2:        cache.Config{Name: "L2", SizeBytes: 128 * 1024, Ways: 8},
		LLC:       cache.Config{Name: "LLC", SizeBytes: 512 * 1024, Ways: 8},
		L2Latency: 13, LLCLatency: 36, DRAMLatency: 150, DRAMBurstCycles: 10,
	})
	return New(Config{
		MSHRs: mshrs,
		L1I:   cache.Config{Name: "L1I", SizeBytes: 4 * 1024, Ways: 4, HitLatency: 3},
	}, Deps{
		Program:  prog,
		Oracle:   NewOracleStream(workload.NewExecutor(prog, 0)),
		Dir:      bp.NewTage(bp.DefaultTageConfig()),
		BTB:      btb.New(btb.Config{Entries: 512, Ways: 4}),
		IndirBTB: btb.NewIndirect(256),
		Hier:     hier,
		Tuner:    tuner,
	})
}

func TestSuperLineEmission(t *testing.T) {
	st := &superTuner{}
	fe := buildSmallFrontend(t, st, 32)
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 30_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if st.candidates == 0 {
		t.Fatal("no candidates under forced off-path assumption")
	}
	if fe.Stats.SuperLinePrefetches == 0 {
		t.Error("4-line filter hits produced no super-line prefetches")
	}
	if fe.Stats.PrefetchesEmitted <= fe.Stats.SuperLinePrefetches {
		t.Error("accounting: super-lines exceed total emissions")
	}
}

// dropTuner drops every assumed-off-path candidate.
type dropTuner struct {
	NopTuner
}

func (dropTuner) AssumeOffPath() bool          { return true }
func (dropTuner) FilterCandidate(isa.Addr) int { return 0 }

func TestDroppedCandidatesCounted(t *testing.T) {
	fe := buildSmallFrontend(t, dropTuner{}, 32)
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 30_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if fe.Stats.PrefetchesDropped == 0 {
		t.Error("dropping filter never dropped")
	}
	if fe.Stats.PrefetchesEmitted != 0 {
		t.Errorf("%d prefetches emitted despite dropping filter", fe.Stats.PrefetchesEmitted)
	}
	// With no prefetching, demand misses must appear.
	if fe.Stats.DemandMisses == 0 {
		t.Error("no demand misses with all prefetches dropped")
	}
}

func TestTinyMSHRFilePressure(t *testing.T) {
	fe := buildSmallFrontend(t, nil, 1)
	c := &scalarConsumer{fe: fe}
	for cyc := uint64(1); cyc < 30_000; cyc++ {
		fe.Cycle(cyc)
		c.cycle(cyc)
	}
	if fe.MSHRs().Stats.AllocFailures == 0 {
		t.Error("single-entry MSHR file never filled")
	}
	// With fill-time visibility a rejected demand miss leaves no trace
	// in L2/LLC, so a single MSHR serializes cold lines at full DRAM
	// latency (~186 cycles/line). The check guards liveness — the
	// frontend must keep draining retries, not deadlock — rather than
	// throughput.
	if c.retired < 1_000 {
		t.Errorf("frontend starved under MSHR pressure: %d", c.retired)
	}
	if fe.Stats.DemandMissRetries == 0 {
		t.Error("MSHR pressure produced no demand-miss retries")
	}
}
