package frontend

import (
	"testing"
	"testing/quick"
)

func blockSeq(seq uint64) *FetchBlock { return &FetchBlock{Seq: seq} }

func TestFTQPushPop(t *testing.T) {
	q := NewFTQ(8, 4)
	if q.Pop() != nil || q.Peek() != nil {
		t.Error("empty queue returned a block")
	}
	for i := uint64(1); i <= 4; i++ {
		q.Push(blockSeq(i))
	}
	if !q.Full() || q.Len() != 4 {
		t.Errorf("len %d full %v", q.Len(), q.Full())
	}
	if q.Peek().Seq != 1 {
		t.Errorf("peek %d", q.Peek().Seq)
	}
	for i := uint64(1); i <= 4; i++ {
		fb := q.Pop()
		if fb.Seq != i {
			t.Fatalf("pop %d, want %d", fb.Seq, i)
		}
	}
}

func TestFTQPushPanicsWhenFull(t *testing.T) {
	q := NewFTQ(4, 2)
	q.Push(blockSeq(1))
	q.Push(blockSeq(2))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	q.Push(blockSeq(3))
}

func TestFTQScanPointer(t *testing.T) {
	q := NewFTQ(8, 8)
	q.Push(blockSeq(1))
	q.Push(blockSeq(2))
	if fb := q.NextUnscanned(); fb.Seq != 1 {
		t.Fatalf("scan got %d", fb.Seq)
	}
	if fb := q.NextUnscanned(); fb.Seq != 2 {
		t.Fatalf("scan got %d", fb.Seq)
	}
	if q.NextUnscanned() != nil {
		t.Error("scan beyond content")
	}
	// New push becomes scannable.
	q.Push(blockSeq(3))
	if fb := q.NextUnscanned(); fb == nil || fb.Seq != 3 {
		t.Error("new block not scannable")
	}
	// Popping a scanned block keeps the pointer consistent.
	q.Pop()
	q.Push(blockSeq(4))
	if fb := q.NextUnscanned(); fb == nil || fb.Seq != 4 {
		t.Error("scan pointer derailed after pop")
	}
}

func TestFTQFlush(t *testing.T) {
	q := NewFTQ(8, 8)
	for i := uint64(1); i <= 5; i++ {
		q.Push(blockSeq(i))
	}
	q.NextUnscanned()
	q.Flush()
	if q.Len() != 0 || q.NextUnscanned() != nil {
		t.Error("flush left state")
	}
	// Queue is reusable after flush.
	q.Push(blockSeq(9))
	if q.Peek().Seq != 9 {
		t.Error("queue unusable after flush")
	}
}

func TestFTQFlushYoungerThan(t *testing.T) {
	q := NewFTQ(8, 8)
	for i := uint64(1); i <= 5; i++ {
		q.Push(blockSeq(i))
	}
	q.FlushYoungerThan(3)
	if q.Len() != 3 {
		t.Fatalf("len %d after partial flush", q.Len())
	}
	for i := uint64(1); i <= 3; i++ {
		if fb := q.Pop(); fb.Seq != i {
			t.Fatalf("pop %d, want %d", fb.Seq, i)
		}
	}
}

func TestFTQSetCap(t *testing.T) {
	q := NewFTQ(16, 8)
	for i := uint64(1); i <= 8; i++ {
		q.Push(blockSeq(i))
	}
	q.SetCap(4)
	if !q.Full() {
		t.Error("queue above capacity not full")
	}
	// Draining below the new cap reopens it.
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	if q.Full() {
		t.Error("queue below capacity still full")
	}
	q.SetCap(99)
	if q.Cap() != 16 {
		t.Errorf("cap %d not clamped to physical %d", q.Cap(), q.PhysMax())
	}
	q.SetCap(0)
	if q.Cap() != 1 {
		t.Errorf("cap %d not clamped to 1", q.Cap())
	}
}

func TestFTQOccupancyStats(t *testing.T) {
	q := NewFTQ(8, 8)
	q.SampleOccupancy() // 0
	q.Push(blockSeq(1))
	q.Push(blockSeq(2))
	q.SampleOccupancy() // 2
	if got := q.MeanOccupancy(); got != 1 {
		t.Errorf("mean occupancy %v, want 1", got)
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order
// and the length invariant.
func TestFTQFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFTQ(16, 16)
		var next, expect uint64 = 1, 1
		n := 0
		for _, push := range ops {
			if push && !q.Full() {
				q.Push(blockSeq(next))
				next++
				n++
			} else if !push && q.Len() > 0 {
				fb := q.Pop()
				if fb.Seq != expect {
					return false
				}
				expect++
				n--
			}
			if q.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFTQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewFTQ(0, 0)
}

func TestInstrQueue(t *testing.T) {
	var q instrQueue
	q.init(4)
	if !q.empty() {
		t.Error("fresh queue not empty")
	}
	for i := 0; i < 4; i++ {
		q.push(&FrontInstr{FetchSeq: uint64(i)})
	}
	if !q.full() {
		t.Error("queue not full")
	}
	for i := 0; i < 4; i++ {
		fi := q.pop()
		if fi.FetchSeq != uint64(i) {
			t.Fatalf("pop order broken")
		}
	}
	if q.pop() != nil {
		t.Error("empty pop returned instr")
	}
	q.push(&FrontInstr{})
	q.clear()
	if !q.empty() {
		t.Error("clear left entries")
	}
}

func TestDivKindStrings(t *testing.T) {
	for _, k := range []DivKind{DivDirection, DivTarget, DivBTBMiss, DivPostFetch, DivKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
}
