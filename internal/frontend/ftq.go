// Package frontend models the decoupled frontend of the simulated
// machine (paper Fig. 2): a branch-prediction-driven fetch-block builder
// feeding the fetch target queue (FTQ), the FDIP prefetch scanner that
// runs ahead over the FTQ, the fetch stage that demands blocks from the
// L1I, post-fetch correction for BTB misses discovered at decode, and
// full wrong-path tracking against the oracle stream.
package frontend

import (
	"udpsim/internal/bp"
	"udpsim/internal/isa"
)

// PredictedBranch records the frontend's view of one control-flow
// decision inside a fetch block, with everything recovery needs.
type PredictedBranch struct {
	PC   isa.Addr
	Kind isa.BranchKind
	Pred bp.Prediction
	// HasPred is true when Pred holds a real direction-predictor lookup
	// (conditional branches only); training must be skipped otherwise.
	HasPred    bool
	PredTaken  bool
	PredTarget isa.Addr
	// HistSnap/RASSnap capture speculative state *before* this branch's
	// speculative update, for recovery.
	HistSnap bp.HistState
	RASSnap  int
	// FromBTB is false when the branch was invisible at build time (BTB
	// miss) and will be discovered at decode (post-fetch correction).
	FromBTB bool
}

// Predicted reports whether a direction prediction was recorded.
func (pb *PredictedBranch) Predicted() bool { return pb.HasPred }

// FrontInstr is one instruction flowing down the pipe from fetch-block
// build to retirement.
type FrontInstr struct {
	Static *isa.StaticInstr
	// OnPath is true when this instruction matches the oracle stream.
	OnPath bool
	// Oracle is the matching oracle record; valid only when OnPath.
	Oracle isa.DynInstr
	// Branch is non-nil for control-flow instructions the frontend
	// predicted (or will discover at decode).
	Branch *PredictedBranch
	// Divergence is non-nil when this instruction is the point where
	// the frontend left the oracle path.
	Divergence *Divergence
	// FetchSeq is a monotonically increasing fetch-order tag used to
	// flush younger instructions on recovery.
	FetchSeq uint64
	// OracleCursorAfter is the oracle stream position right after this
	// instruction (valid only when OnPath); recovery rewinds to it.
	OracleCursorAfter uint64

	// branchStorage and divStorage are the value storage Branch and
	// Divergence point into when set: a FrontInstr carries at most one
	// of each, so embedding them in the pooled instruction removes the
	// last per-instruction heap allocations from the cycle loop. They
	// are live exactly as long as the owning instruction (the frontend
	// clears its cross-instruction divergence pointer before the owner
	// is released; see flushYoungerThan and Recover).
	branchStorage PredictedBranch
	divStorage    Divergence
}

// DivKind classifies why the frontend diverged from the oracle path.
type DivKind uint8

// Divergence kinds.
const (
	// DivDirection: conditional predicted the wrong way.
	DivDirection DivKind = iota
	// DivTarget: taken direction right (or unconditional) but predicted
	// target wrong (indirect/return).
	DivTarget
	// DivBTBMiss: a taken branch was invisible (BTB miss) so the
	// frontend walked past it sequentially.
	DivBTBMiss
	// DivPostFetch: post-fetch correction resteered to a direction or
	// target that itself disagrees with the oracle.
	DivPostFetch
)

func (k DivKind) String() string {
	switch k {
	case DivDirection:
		return "direction"
	case DivTarget:
		return "target"
	case DivBTBMiss:
		return "btb-miss"
	case DivPostFetch:
		return "post-fetch"
	default:
		return "divergence(?)"
	}
}

// Divergence carries recovery state for the branch where the frontend
// left the oracle path.
type Divergence struct {
	Kind DivKind
	// RecoverPC is the architecturally correct next PC.
	RecoverPC isa.Addr
	// OracleCursor is the oracle stream position immediately after the
	// diverging instruction.
	OracleCursor uint64
	// HistSnap/RASSnap restore speculative predictor state.
	HistSnap bp.HistState
	RASSnap  int
	// ActualTaken/ActualTarget re-inject the correct outcome into
	// speculative history after restore (conditional/indirect kinds).
	ActualTaken  bool
	ActualTarget isa.Addr
	BranchPC     isa.Addr
	BranchKind   isa.BranchKind
	// BornCycle is when the frontend diverged (resolution-latency
	// accounting).
	BornCycle uint64
}

// FetchBlock is one FTQ entry: a run of sequential instructions ending
// at a predicted-taken branch or the fetch-block boundary.
type FetchBlock struct {
	StartPC isa.Addr
	// Instrs are the instructions the frontend walked for this block in
	// order (at most isa.InstrPerBlock).
	Instrs []*FrontInstr
	// NextPC is where the following block starts.
	NextPC isa.Addr
	// OffPath is the *model's* ground-truth: the block was built while
	// diverged from the oracle.
	OffPath bool
	// AssumedOffPath is the *mechanism's* belief (UDP confidence
	// counter) at build time; UDP filters prefetches for these blocks.
	AssumedOffPath bool
	// Scanned marks FDIP progress.
	Scanned bool
	// PrefetchCandidates counts lines FDIP considered for this block.
	PrefetchCandidates int
	// Seq is the block build sequence number.
	Seq uint64
}

// Line returns the cache line the block occupies (a 32B fetch block
// aligned inside a 64B line never spans two lines).
func (fb *FetchBlock) Line() isa.Addr { return fb.StartPC.Line() }

// FTQ is the fetch target queue: a FIFO of fetch blocks with a dynamic
// capacity (UFTQ adjusts it at runtime) bounded by a physical maximum.
type FTQ struct {
	blocks []*FetchBlock
	head   int
	tail   int
	count  int
	cap    int // current logical capacity (<= len(blocks))
	// scan is the FDIP scan pointer: index (relative to head) of the
	// next unscanned block.
	scanned int

	// OccupancySum/OccupancySamples accumulate the average-occupancy
	// statistic of paper Fig. 8.
	OccupancySum     uint64
	OccupancySamples uint64
}

// NewFTQ builds an FTQ with the given physical maximum and initial
// logical capacity.
func NewFTQ(physMax, capacity int) *FTQ {
	if physMax <= 0 {
		panic("frontend: FTQ physical size must be positive")
	}
	if capacity <= 0 || capacity > physMax {
		capacity = physMax
	}
	return &FTQ{blocks: make([]*FetchBlock, physMax), cap: capacity}
}

// Push appends a block; it must not be called when Full.
func (q *FTQ) Push(fb *FetchBlock) {
	if q.Full() {
		panic("frontend: push to full FTQ")
	}
	q.blocks[q.tail] = fb
	q.tail = (q.tail + 1) % len(q.blocks)
	q.count++
}

// Pop removes and returns the head block.
func (q *FTQ) Pop() *FetchBlock {
	if q.count == 0 {
		return nil
	}
	fb := q.blocks[q.head]
	q.blocks[q.head] = nil
	q.head = (q.head + 1) % len(q.blocks)
	q.count--
	if q.scanned > 0 {
		q.scanned--
	}
	return fb
}

// Peek returns the head block without removing it.
func (q *FTQ) Peek() *FetchBlock {
	if q.count == 0 {
		return nil
	}
	return q.blocks[q.head]
}

// NextUnscanned returns the next block for FDIP to scan, advancing the
// scan pointer; nil when fully scanned.
func (q *FTQ) NextUnscanned() *FetchBlock {
	if q.scanned >= q.count {
		return nil
	}
	fb := q.blocks[(q.head+q.scanned)%len(q.blocks)]
	q.scanned++
	return fb
}

// Flush empties the queue (recovery/resteer).
func (q *FTQ) Flush() {
	for q.count > 0 {
		q.Pop()
	}
	q.scanned = 0
}

// FlushYoungerThan removes blocks with Seq > seq (post-fetch correction
// flushes only the blocks younger than the discovered branch).
func (q *FTQ) FlushYoungerThan(seq uint64) {
	for q.count > 0 {
		tailIdx := (q.tail - 1 + len(q.blocks)) % len(q.blocks)
		if q.blocks[tailIdx].Seq <= seq {
			return
		}
		q.blocks[tailIdx] = nil
		q.tail = tailIdx
		q.count--
		if q.scanned > q.count {
			q.scanned = q.count
		}
	}
}

// Len returns the number of queued blocks.
func (q *FTQ) Len() int { return q.count }

// Cap returns the current logical capacity.
func (q *FTQ) Cap() int { return q.cap }

// PhysMax returns the physical capacity bound.
func (q *FTQ) PhysMax() int { return len(q.blocks) }

// Full reports whether the queue is at logical capacity.
func (q *FTQ) Full() bool { return q.count >= q.cap }

// SetCap adjusts the logical capacity within [1, PhysMax]. Shrinking
// below the current occupancy is allowed: existing blocks drain, new
// pushes wait.
func (q *FTQ) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(q.blocks) {
		n = len(q.blocks)
	}
	q.cap = n
}

// SampleOccupancy records the current occupancy for Fig. 8.
func (q *FTQ) SampleOccupancy() {
	q.OccupancySum += uint64(q.count)
	q.OccupancySamples++
}

// MeanOccupancy returns the average sampled occupancy.
func (q *FTQ) MeanOccupancy() float64 {
	if q.OccupancySamples == 0 {
		return 0
	}
	return float64(q.OccupancySum) / float64(q.OccupancySamples)
}
