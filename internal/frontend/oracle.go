package frontend

import (
	"fmt"

	"udpsim/internal/isa"
)

// InstrSource produces the architectural (on-path) instruction stream:
// a live workload executor, or a trace replayer.
type InstrSource interface {
	Next() isa.DynInstr
}

// oracleWindow bounds how far back the oracle stream can rewind. It must
// exceed the maximum number of in-flight instructions (FTQ blocks ×
// instructions per block + ROB); 1<<13 = 8192 is comfortably larger.
const oracleWindow = 1 << 13

// OracleStream buffers the architectural execution so the frontend can
// consume it speculatively and rewind to a divergence point on recovery.
// Positions are absolute instruction indices starting at 0.
type OracleStream struct {
	exec   InstrSource
	buf    [oracleWindow]isa.DynInstr
	filled uint64 // number of records generated so far
	cursor uint64 // next position to consume
}

// NewOracleStream wraps an instruction source.
func NewOracleStream(exec InstrSource) *OracleStream {
	return &OracleStream{exec: exec}
}

// At returns the oracle record at absolute position i, generating
// forward as needed. Rewinding further back than the window is a
// modelling bug and panics.
func (o *OracleStream) At(i uint64) isa.DynInstr {
	if i+oracleWindow < o.filled {
		panic(fmt.Sprintf("frontend: oracle rewind beyond window (want %d, filled %d)", i, o.filled))
	}
	for o.filled <= i {
		o.buf[o.filled%oracleWindow] = o.exec.Next()
		o.filled++
	}
	return o.buf[i%oracleWindow]
}

// Cursor returns the current consumption position.
func (o *OracleStream) Cursor() uint64 { return o.cursor }

// Consume returns the record at the cursor and advances it.
func (o *OracleStream) Consume() isa.DynInstr {
	d := o.At(o.cursor)
	o.cursor++
	return d
}

// Peek returns the record at the cursor without advancing.
func (o *OracleStream) Peek() isa.DynInstr { return o.At(o.cursor) }

// Rewind moves the cursor back to pos (a recovery).
func (o *OracleStream) Rewind(pos uint64) {
	if pos > o.cursor {
		panic("frontend: oracle rewind forward")
	}
	o.cursor = pos
}
