package frontend

import (
	"fmt"

	"udpsim/internal/isa"
)

// InstrSource produces the architectural (on-path) instruction stream:
// a live workload executor, or a trace replayer.
type InstrSource interface {
	Next() isa.DynInstr
}

// RandomAccessSource is an InstrSource that can additionally serve any
// position it has already produced (within its own retention window) in
// O(1) — e.g. a workload.TapeReader over a shared batch tape. When the
// oracle stream detects one, it skips its ring buffer entirely: records
// are read in place instead of being generated into and copied out of a
// per-machine window.
type RandomAccessSource interface {
	InstrSource
	At(i uint64) isa.DynInstr
}

// oracleWindow bounds how far back the oracle stream can rewind. It must
// exceed the maximum number of in-flight instructions (FTQ blocks ×
// instructions per block + ROB); 1<<13 = 8192 is comfortably larger.
const oracleWindow = 1 << 13

// OracleWindow exports the rewind bound so stream providers (the
// workload tape) can assert their retention window covers it.
const OracleWindow = oracleWindow

// OracleStream buffers the architectural execution so the frontend can
// consume it speculatively and rewind to a divergence point on recovery.
// Positions are absolute instruction indices starting at 0.
//
// With a plain sequential source the stream owns a ring of the last
// oracleWindow records. With a RandomAccessSource the ring is not even
// allocated: the source is the buffer, and the stream only tracks the
// cursor and the high-water mark for the rewind-window check.
type OracleStream struct {
	exec   InstrSource
	ra     RandomAccessSource // non-nil selects the direct (ring-free) mode
	buf    []isa.DynInstr     // ring of oracleWindow records; nil in direct mode
	filled uint64             // number of records generated so far
	cursor uint64             // next position to consume
}

// NewOracleStream wraps an instruction source.
func NewOracleStream(exec InstrSource) *OracleStream {
	o := &OracleStream{exec: exec}
	if ra, ok := exec.(RandomAccessSource); ok {
		o.ra = ra
	} else {
		o.buf = make([]isa.DynInstr, oracleWindow)
	}
	return o
}

// At returns the oracle record at absolute position i, generating
// forward as needed. Rewinding further back than the window is a
// modelling bug and panics.
func (o *OracleStream) At(i uint64) isa.DynInstr {
	if i+oracleWindow < o.filled {
		panic(fmt.Sprintf("frontend: oracle rewind beyond window (want %d, filled %d)", i, o.filled))
	}
	if o.ra != nil {
		if i >= o.filled {
			o.filled = i + 1
		}
		return o.ra.At(i)
	}
	for o.filled <= i {
		o.buf[o.filled%oracleWindow] = o.exec.Next()
		o.filled++
	}
	return o.buf[i%oracleWindow]
}

// Cursor returns the current consumption position.
func (o *OracleStream) Cursor() uint64 { return o.cursor }

// Consume returns the record at the cursor and advances it.
func (o *OracleStream) Consume() isa.DynInstr {
	d := o.At(o.cursor)
	o.cursor++
	return d
}

// Peek returns the record at the cursor without advancing.
func (o *OracleStream) Peek() isa.DynInstr { return o.At(o.cursor) }

// Rewind moves the cursor back to pos (a recovery).
func (o *OracleStream) Rewind(pos uint64) {
	if pos > o.cursor {
		panic("frontend: oracle rewind forward")
	}
	o.cursor = pos
}
