package frontend

import "udpsim/internal/isa"

// Free-list pools for the two object kinds the prediction stage mints
// every cycle: fetch blocks and the instructions inside them. The
// per-cycle hot loop must not allocate — an experiment cell runs ~10^8
// cycles, and any allocation on this path serializes the parallel
// experiment grid behind the garbage collector (the zero-alloc
// invariant is pinned by TestMachineStepZeroAlloc and the CI benchmark
// gate).
//
// Ownership discipline:
//
//   - A FetchBlock is owned by the FTQ from Push until Pop, then by the
//     fetch stage as curBlock; it is released when fully streamed into
//     the decode queue (fetchStage) or flushed (flushYoungerThan). The
//     block's Instrs slice keeps its backing array across reuse.
//   - A FrontInstr is owned by its block until streamed, then by the
//     decode queue, then by the backend's ROB. It is released on
//     retirement, on an execute-time squash (both via ReleaseInstr),
//     or — if it never reached decode — by the frontend flush.
//   - Branch/Divergence point into the instruction's embedded storage,
//     so they are released with it; the frontend nils its pending
//     divergence pointer before the owning instruction can be reused.
//
// The pools are preallocated to the structural in-flight bound (FTQ ×
// instructions per block + decode queue + ROB), so steady state never
// grows them; the on-demand fallback exists only for configurations
// that exceed the hint.

type instrPool struct {
	free []*FrontInstr
}

func newInstrPool(n int) instrPool {
	slab := make([]FrontInstr, n)
	free := make([]*FrontInstr, n, n+16)
	for i := range slab {
		free[i] = &slab[i]
	}
	return instrPool{free: free}
}

// get returns a zeroed instruction.
func (p *instrPool) get() *FrontInstr {
	n := len(p.free)
	if n == 0 {
		return new(FrontInstr)
	}
	fi := p.free[n-1]
	p.free = p.free[:n-1]
	*fi = FrontInstr{}
	return fi
}

func (p *instrPool) put(fi *FrontInstr) {
	if fi == nil {
		return
	}
	p.free = append(p.free, fi)
}

type blockPool struct {
	free []*FetchBlock
}

func newBlockPool(n int) blockPool {
	slab := make([]FetchBlock, n)
	free := make([]*FetchBlock, n, n+8)
	for i := range slab {
		slab[i].Instrs = make([]*FrontInstr, 0, isa.InstrPerBlock)
		free[i] = &slab[i]
	}
	return blockPool{free: free}
}

// get returns a zeroed block whose Instrs slice keeps its backing
// array.
func (p *blockPool) get() *FetchBlock {
	n := len(p.free)
	if n == 0 {
		return &FetchBlock{Instrs: make([]*FrontInstr, 0, isa.InstrPerBlock)}
	}
	fb := p.free[n-1]
	p.free = p.free[:n-1]
	*fb = FetchBlock{Instrs: fb.Instrs[:0]}
	return fb
}

func (p *blockPool) put(fb *FetchBlock) {
	if fb == nil {
		return
	}
	p.free = append(p.free, fb)
}

// ReleaseInstr returns an instruction to the frontend's pool once its
// last owner is done with it: the backend calls this on retirement and
// on execute-time squashes. Instructions that never reach the backend
// are released by the frontend's own flush path.
func (f *Frontend) ReleaseInstr(fi *FrontInstr) { f.instrs.put(fi) }

// releaseBlockInstrs releases a flushed block's not-yet-streamed
// instructions from index from onward, then the block itself.
// Instructions before from were handed to the decode queue or backend
// and are released by their current owner.
func (f *Frontend) releaseBlockInstrs(fb *FetchBlock, from int) {
	for i := from; i < len(fb.Instrs); i++ {
		f.instrs.put(fb.Instrs[i])
	}
	f.blocks.put(fb)
}
