package frontend

import (
	"fmt"

	"udpsim/internal/bp"
	"udpsim/internal/btb"
	"udpsim/internal/cache"
	"udpsim/internal/isa"
	"udpsim/internal/memory"
	"udpsim/internal/obs"
	"udpsim/internal/stats"
	"udpsim/internal/workload"
)

// Config parameterizes the decoupled frontend (Table II defaults are
// assembled by the sim package).
type Config struct {
	// FTQPhysMax is the physical FTQ size; FTQDepth the initial logical
	// capacity (the baseline fixes it at 32).
	FTQPhysMax int
	FTQDepth   int
	// BlocksPerCycle is how many fetch blocks the prediction stage can
	// build per cycle (Table II: 2).
	BlocksPerCycle int
	// ScanPerCycle is how many FTQ blocks FDIP examines per cycle.
	ScanPerCycle int
	// L1I is the instruction cache geometry.
	L1I cache.Config
	// MSHRs is the instruction-side miss buffer size (fill buffer).
	MSHRs int
	// FetchWidth is instructions delivered to decode per cycle.
	FetchWidth int
	// DecodeQueueCap bounds the fetch-to-decode buffer.
	DecodeQueueCap int
	// PerfectICache makes every instruction fetch hit (Fig. 1 upper
	// bound).
	PerfectICache bool
	// NoPrefetch disables FDIP (no-prefetch baseline).
	NoPrefetch bool
	// NoFDIPWithExternal disables the FDIP scan when an external
	// prefetcher is attached (stand-alone prefetcher evaluation).
	NoFDIPWithExternal bool
	// PredecodeBTBFill pre-decodes every line installed into the icache
	// and fills the BTB with its branches — the Boomerang/Confluence
	// family of BTB-miss elimination the paper cites as orthogonal to
	// UDP. It removes the BTB-miss-induced wrong paths that post-fetch
	// correction otherwise heals late.
	PredecodeBTBFill bool
	// RASEntries sizes the return address stack.
	RASEntries int
	// InFlightHint is how many instructions may live outside the
	// frontend (the backend's ROB size); it sizes the frontend's
	// preallocated instruction pool so the steady-state cycle loop never
	// allocates. Zero falls back to a generous default.
	InFlightHint int
}

// Stats aggregates the frontend events the paper's figures are built
// from.
type Stats struct {
	BlocksBuilt    uint64
	OffPathBlocks  uint64
	FTQFullCycles  uint64
	FTQEmptyCycles uint64

	// Prefetch accounting (ground-truth path attribution).
	PrefetchesEmitted    uint64
	PrefetchesOnPath     uint64
	PrefetchesOffPath    uint64
	PrefetchesDropped    uint64 // dropped by UDP filtering
	PrefetchesMerged     uint64 // candidate already in flight
	PrefetchBackpressure uint64 // dropped by MSHR/bandwidth pressure (L1I file or shared L2/LLC ports)
	PrefetchUseful       uint64
	PrefetchUsefulOff    uint64
	PrefetchUseless      uint64
	PrefetchUselessOff   uint64
	SuperLinePrefetches  uint64 // extra lines emitted via 2-/4-block hits

	// Demand fetch timeliness (paper Section III-C).
	DemandIcacheHits  uint64
	DemandFillBufHits uint64
	DemandMisses      uint64
	DemandMissRetries uint64 // demand miss rejected under MSHR pressure, retried next cycle
	FetchStallCycles  uint64

	// Divergences and resteers.
	DivergencesDirection uint64
	DivergencesTarget    uint64
	DivergencesBTBMiss   uint64
	DivergencesPostFetch uint64
	Recoveries           uint64
	PostFetchResteers    uint64
	PostFetchRecoveries  uint64 // divergence healed at decode
	PostFetchDiscoveries uint64 // BTB-missed branches found at decode
	PredecodeBTBFills    uint64 // branches installed by predecode BTB fill

	// Oracle progress.
	OnPathInstrsBuilt  uint64
	OffPathInstrsBuilt uint64
}

// Timeliness returns icache_hits/(icache_hits+fillbuffer_hits), the
// paper's timeliness ratio (Fig. 4).
func (s *Stats) Timeliness() float64 {
	d := s.DemandIcacheHits + s.DemandFillBufHits
	if d == 0 {
		return 0
	}
	return float64(s.DemandIcacheHits) / float64(d)
}

// OnPathRatio returns on/(on+off) emitted prefetches (Fig. 5).
func (s *Stats) OnPathRatio() float64 {
	d := s.PrefetchesOnPath + s.PrefetchesOffPath
	if d == 0 {
		return 0
	}
	return float64(s.PrefetchesOnPath) / float64(d)
}

// Usefulness returns useful/(useful+useless) prefetch outcomes (Fig. 6).
func (s *Stats) Usefulness() float64 {
	d := s.PrefetchUseful + s.PrefetchUseless
	if d == 0 {
		return 0
	}
	return float64(s.PrefetchUseful) / float64(d)
}

// ExternalPrefetcher lets a stand-alone instruction prefetcher (the EIP
// baseline) observe demand accesses and inject prefetches; when set, it
// replaces FDIP's FTQ scan.
type ExternalPrefetcher interface {
	// OnDemandAccess observes a demand fetch of line and returns lines
	// to prefetch.
	OnDemandAccess(line isa.Addr, hit bool, cycle uint64) []isa.Addr
	// OnFill observes a line installed into the icache.
	OnFill(line isa.Addr, cycle uint64)
}

// Frontend is the decoupled frontend.
type Frontend struct {
	cfg    Config
	prog   *workload.Program
	oracle *OracleStream
	dir    bp.DirectionPredictor
	btb    *btb.BTB
	ibtb   *btb.IndirectBTB
	ras    *bp.RAS
	icache *cache.Cache
	mshrs  *cache.MSHRFile
	hier   *memory.Hierarchy
	ftq    *FTQ
	tuner  Tuner
	ext    ExternalPrefetcher

	fetchPC    isa.Addr
	onPath     bool
	divergence *Divergence
	divSeq     uint64 // FetchSeq of the diverging instruction
	fetchSeq   uint64
	blockSeq   uint64

	// Fetch stage state: the block currently being read from the L1I
	// and streamed into the decode queue.
	curBlock   *FetchBlock
	curIdx     int
	blockReady uint64
	needAccess bool
	// lastDemandLine dedups timeliness classification across blocks in
	// the same cache line.
	lastDemandLine isa.Addr

	decodeQ instrQueue

	// instrs/blocks are the zero-alloc free lists for the per-cycle
	// objects (see pool.go).
	instrs instrPool
	blocks blockPool

	Stats Stats
	// ResolutionLatency distributes cycles from divergence to recovery
	// (execute-time resolutions only; decode-time heals are cheaper).
	ResolutionLatency *stats.Histogram
	// OccupancyHist distributes per-cycle FTQ occupancy (Fig. 8's
	// underlying data).
	OccupancyHist *stats.Histogram

	// Obs receives cycle-level observability events when non-nil; every
	// hook is nil-guarded so the disabled path costs one branch.
	Obs *obs.Observer
}

// Deps bundles the structures the frontend drives.
type Deps struct {
	Program  *workload.Program
	Oracle   *OracleStream
	Dir      bp.DirectionPredictor
	BTB      *btb.BTB
	IndirBTB *btb.IndirectBTB
	Hier     *memory.Hierarchy
	Tuner    Tuner
	External ExternalPrefetcher
}

// New wires a frontend.
func New(cfg Config, d Deps) *Frontend {
	if cfg.FTQPhysMax <= 0 {
		cfg.FTQPhysMax = 128
	}
	if cfg.FTQDepth <= 0 {
		cfg.FTQDepth = 32
	}
	if cfg.BlocksPerCycle <= 0 {
		cfg.BlocksPerCycle = 2
	}
	if cfg.ScanPerCycle <= 0 {
		cfg.ScanPerCycle = 2
	}
	if cfg.FetchWidth <= 0 {
		cfg.FetchWidth = 6
	}
	if cfg.DecodeQueueCap <= 0 {
		cfg.DecodeQueueCap = 32
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 16
	}
	if cfg.RASEntries <= 0 {
		cfg.RASEntries = 32
	}
	tuner := d.Tuner
	if tuner == nil {
		tuner = NopTuner{}
	}
	f := &Frontend{
		cfg:     cfg,
		prog:    d.Program,
		oracle:  d.Oracle,
		dir:     d.Dir,
		btb:     d.BTB,
		ibtb:    d.IndirBTB,
		ras:     bp.NewRAS(cfg.RASEntries),
		icache:  cache.New(cfg.L1I),
		mshrs:   cache.NewMSHRFile(cfg.MSHRs),
		hier:    d.Hier,
		ftq:     NewFTQ(cfg.FTQPhysMax, cfg.FTQDepth),
		tuner:   tuner,
		ext:     d.External,
		fetchPC: d.Program.Entry(),
		onPath:  true,
	}
	f.decodeQ.init(cfg.DecodeQueueCap)
	// Preallocate the pools to the structural in-flight bound: every
	// FTQ slot full of maximal blocks, plus the block being built and
	// the block being streamed, plus the decode queue and the backend's
	// ROB (InFlightHint).
	inFlight := cfg.InFlightHint
	if inFlight <= 0 {
		inFlight = 512
	}
	nBlocks := cfg.FTQPhysMax + 2
	f.blocks = newBlockPool(nBlocks)
	f.instrs = newInstrPool(nBlocks*isa.InstrPerBlock + cfg.DecodeQueueCap + inFlight + cfg.FetchWidth)
	f.ResolutionLatency = stats.NewLog2Histogram(14)
	f.OccupancyHist = stats.NewLinearHistogram(16, uint64((cfg.FTQPhysMax+15)/16))
	return f
}

// ResetStats clears every statistic the frontend accumulates — its own
// counters, the icache and fill-buffer stats, the latency/occupancy
// histograms, and the FTQ occupancy accumulators — while preserving
// microarchitectural state. It implements the sim package's
// StatsResetter.
func (f *Frontend) ResetStats() {
	f.Stats = Stats{}
	f.icache.Stats = cache.Stats{}
	f.mshrs.Stats = cache.MSHRStats{}
	f.ResolutionLatency.Reset()
	f.OccupancyHist.Reset()
	f.ftq.OccupancySum, f.ftq.OccupancySamples = 0, 0
}

// ICache exposes the instruction cache (stats, tests).
func (f *Frontend) ICache() *cache.Cache { return f.icache }

// MSHRs exposes the instruction-side miss file.
func (f *Frontend) MSHRs() *cache.MSHRFile { return f.mshrs }

// FTQ exposes the fetch target queue.
func (f *Frontend) Queue() *FTQ { return f.ftq }

// RAS exposes the return address stack.
func (f *Frontend) RAS() *bp.RAS { return f.ras }

// OnOraclePath reports whether the frontend is currently synchronized
// with the oracle stream (model ground truth).
func (f *Frontend) OnOraclePath() bool { return f.onPath }

// FetchPC returns the prediction stage's current cursor.
func (f *Frontend) FetchPC() isa.Addr { return f.fetchPC }

// Cycle advances the frontend by one cycle: fill completions, block
// building, FDIP scan, and the fetch stage.
func (f *Frontend) Cycle(cycle uint64) {
	f.completeFills(cycle)
	f.buildBlocks(cycle)
	f.fdipScan(cycle)
	f.fetchStage(cycle)
	f.ftq.SampleOccupancy()
	f.OccupancyHist.Observe(uint64(f.ftq.Len()))
	if target := f.tuner.TargetFTQDepth(f.ftq.Cap()); target != f.ftq.Cap() {
		if f.Obs != nil {
			f.Obs.FTQResize(f.ftq.Cap(), target)
		}
		f.ftq.SetCap(target)
	}
}

// buildBlocks runs the prediction stage: up to BlocksPerCycle fetch
// blocks are constructed and pushed into the FTQ.
func (f *Frontend) buildBlocks(cycle uint64) {
	for i := 0; i < f.cfg.BlocksPerCycle; i++ {
		if f.ftq.Full() {
			f.Stats.FTQFullCycles++
			return
		}
		fb := f.buildBlock(cycle)
		f.ftq.Push(fb)
	}
}

// buildBlock walks the static image from the fetch cursor to the next
// predicted-taken branch or fetch-block boundary, consulting BTB and
// predictors exactly as the hardware would, while the oracle comparison
// tracks ground-truth divergence.
func (f *Frontend) buildBlock(cycle uint64) *FetchBlock {
	start := f.fetchPC
	f.blockSeq++
	fb := f.blocks.get()
	fb.StartPC = start
	fb.Seq = f.blockSeq
	fb.OffPath = !f.onPath
	fb.AssumedOffPath = f.tuner.AssumeOffPath()
	if fb.OffPath {
		f.Stats.OffPathBlocks++
	}
	f.Stats.BlocksBuilt++

	blockEnd := start.Block() + isa.FetchBlockBytes
	pc := start
	for pc < blockEnd {
		si := f.prog.InstrAt(pc)
		f.fetchSeq++
		fi := f.instrs.get()
		fi.Static = si
		fi.OnPath = f.onPath
		fi.FetchSeq = f.fetchSeq
		if f.onPath {
			fi.Oracle = f.oracle.Consume()
			fi.OracleCursorAfter = f.oracle.Cursor()
			f.Stats.OnPathInstrsBuilt++
			if fi.Oracle.PC() != pc {
				panic(fmt.Sprintf("frontend: on-path desync at %v (oracle %v)", pc, fi.Oracle.PC()))
			}
		} else {
			f.Stats.OffPathInstrsBuilt++
		}
		fb.Instrs = append(fb.Instrs, fi)

		if si.IsBranch() {
			if next, ended := f.handleBranch(fb, fi, cycle); ended {
				fb.NextPC = next
				f.fetchPC = next
				return fb
			}
		}
		pc += isa.InstrBytes
	}
	// The block ended at its boundary with no predicted-taken branch:
	// give UDP's hidden-branch heuristic a chance to flag a suspected
	// BTB miss.
	f.tuner.OnSequentialBlockEnd(start.Block())
	fb.NextPC = blockEnd
	f.fetchPC = blockEnd
	return fb
}

// handleBranch processes a control-flow instruction during block build.
// It returns (nextPC, true) when the block terminates at a predicted-
// taken branch; (0, false) when the frontend walks on sequentially.
func (f *Frontend) handleBranch(fb *FetchBlock, fi *FrontInstr, cycle uint64) (isa.Addr, bool) {
	si := fi.Static
	pc := si.PC
	entry, hit := f.btb.Lookup(pc, cycle)
	if !hit {
		// The frontend is blind to this branch: it continues
		// sequentially and the branch will surface at decode
		// (post-fetch correction). Record the build-time snapshots the
		// decode-time handling will need. The PredictedBranch lives in
		// the instruction's embedded storage (zero-alloc hot loop).
		fi.branchStorage = PredictedBranch{
			PC:       pc,
			Kind:     si.Branch,
			FromBTB:  false,
			HistSnap: f.dir.Snapshot(),
			RASSnap:  f.ras.Snapshot(),
		}
		fi.Branch = &fi.branchStorage
		if f.onPath && fi.Oracle.Taken {
			// Ground truth: the oracle jumped; the frontend is now on
			// the wrong (sequential) path.
			f.btb.RecordTakenMiss()
			f.diverge(fi, DivBTBMiss, fi.Oracle.Target, fi.Oracle.Taken, fi.Oracle.Target, cycle)
		}
		return 0, false
	}

	fi.branchStorage = PredictedBranch{
		PC:       pc,
		Kind:     entry.Kind,
		FromBTB:  true,
		HistSnap: f.dir.Snapshot(),
		RASSnap:  f.ras.Snapshot(),
	}
	pb := &fi.branchStorage
	fi.Branch = pb

	// Direction.
	taken := true
	if entry.Kind.IsConditional() {
		pred := f.dir.Predict(pc)
		pb.Pred = pred
		pb.HasPred = true
		f.tuner.OnCondPrediction(pred.Conf)
		taken = pred.Taken
		f.dir.SpecUpdate(pc, taken)
	}

	// Target.
	target := entry.Target
	switch {
	case entry.Kind.PopsRAS():
		target = f.ras.Pop()
		if target == 0 {
			target = entry.Target // RAS empty: fall back to BTB target
		}
	case entry.Kind == isa.BranchIndirect || entry.Kind == isa.BranchIndirectCall:
		if t, ok := f.ibtb.Lookup(pc, pb.HistSnap.PathHist); ok {
			target = t
		}
	}
	if entry.Kind.PushesRAS() {
		f.ras.Push(si.FallThrough)
	}
	pb.PredTaken = taken
	pb.PredTarget = target

	// Ground-truth divergence check (on-path only).
	if f.onPath {
		o := fi.Oracle
		switch {
		case o.Taken != taken:
			f.diverge(fi, DivDirection, o.NextPC(), o.Taken, o.Target, cycle)
		case taken && o.Target != target:
			f.diverge(fi, DivTarget, o.Target, o.Taken, o.Target, cycle)
		}
	}

	if taken {
		return target, true
	}
	return 0, false
}

// diverge records that fi is the point where the frontend left the
// oracle path.
func (f *Frontend) diverge(fi *FrontInstr, kind DivKind, recoverPC isa.Addr, actualTaken bool, actualTarget isa.Addr, cycle uint64) {
	// The Divergence lives in the diverging instruction's embedded
	// storage (zero-alloc hot loop); f.divergence is nilled before the
	// instruction can be released (flushYoungerThan, Recover, OnDecode).
	fi.divStorage = Divergence{
		Kind:         kind,
		RecoverPC:    recoverPC,
		OracleCursor: fi.OracleCursorAfter,
		HistSnap:     fi.Branch.HistSnap,
		RASSnap:      fi.Branch.RASSnap,
		ActualTaken:  actualTaken,
		ActualTarget: actualTarget,
		BranchPC:     fi.Static.PC,
		BranchKind:   fi.Static.Branch,
		BornCycle:    cycle,
	}
	div := &fi.divStorage
	fi.Divergence = div
	f.divergence = div
	f.divSeq = fi.FetchSeq
	f.onPath = false
	switch kind {
	case DivDirection:
		f.Stats.DivergencesDirection++
	case DivTarget:
		f.Stats.DivergencesTarget++
	case DivBTBMiss:
		f.Stats.DivergencesBTBMiss++
	case DivPostFetch:
		f.Stats.DivergencesPostFetch++
	}
}

// instrQueue is a simple FIFO of delivered instructions awaiting decode.
type instrQueue struct {
	buf   []*FrontInstr
	head  int
	tail  int
	count int
}

func (q *instrQueue) init(capacity int) { q.buf = make([]*FrontInstr, capacity) }

func (q *instrQueue) full() bool  { return q.count == len(q.buf) }
func (q *instrQueue) empty() bool { return q.count == 0 }
func (q *instrQueue) len() int    { return q.count }

func (q *instrQueue) push(fi *FrontInstr) {
	if q.full() {
		panic("frontend: decode queue overflow")
	}
	q.buf[q.tail] = fi
	q.tail = (q.tail + 1) % len(q.buf)
	q.count++
}

func (q *instrQueue) pop() *FrontInstr {
	if q.count == 0 {
		return nil
	}
	fi := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return fi
}

func (q *instrQueue) clear() {
	for q.count > 0 {
		q.pop()
	}
}

// DecodeQueueLen reports how many instructions await decode.
func (f *Frontend) DecodeQueueLen() int { return f.decodeQ.len() }

// PopDecode hands the next instruction to the backend's decode stage.
func (f *Frontend) PopDecode() *FrontInstr { return f.decodeQ.pop() }
