package frontend

import "udpsim/internal/isa"

// OnDecode is invoked by the backend as it decodes each instruction.
// It implements post-fetch correction (Ishii [28]): a branch that the
// BTB missed at block-build time is discovered here, inserted into the
// BTB, and — when it redirects fetch — the FTQ is flushed and the
// frontend resteered immediately instead of waiting for execute.
//
// It returns true when a resteer occurred; the backend must then stop
// decoding this cycle (everything younger was flushed).
func (f *Frontend) OnDecode(fi *FrontInstr, cycle uint64) bool {
	pb := fi.Branch
	if pb == nil || pb.FromBTB {
		return false
	}
	si := fi.Static
	f.Stats.PostFetchDiscoveries++
	f.btb.Insert(si.PC, si.Branch, si.Target, cycle)

	// Determine the branch's behaviour as decode sees it.
	taken := true
	target := si.Target
	switch {
	case si.Branch.IsConditional():
		pred := f.dir.Predict(si.PC)
		pb.Pred = pred
		pb.HasPred = true
		f.tuner.OnCondPrediction(pred.Conf)
		taken = pred.Taken
	case si.Branch.PopsRAS():
		target = f.ras.Peek()
		if target == 0 {
			target = si.Target
		}
	case si.Branch == isa.BranchIndirect || si.Branch == isa.BranchIndirectCall:
		if t, ok := f.ibtb.Lookup(si.PC, pb.HistSnap.PathHist); ok {
			target = t
		}
	}
	pb.PredTaken = taken
	pb.PredTarget = target
	if !taken {
		// Sequential fetch already matches the predicted (not-taken)
		// path: no resteer. Any divergence anchored here (oracle said
		// taken) stays pending until execute.
		return false
	}

	// Resteer: flush everything younger than fi and redirect fetch.
	f.Stats.PostFetchResteers++
	if f.Obs != nil {
		f.Obs.Resteer()
	}
	f.flushYoungerThan(fi.FetchSeq)

	// Speculative state: rewind to the branch's build-time snapshot and
	// re-apply its now-known behaviour.
	f.dir.Restore(pb.HistSnap)
	f.ras.Restore(pb.RASSnap)
	if si.Branch.IsConditional() {
		f.dir.SpecUpdate(si.PC, true)
	}
	if si.Branch.PushesRAS() {
		f.ras.Push(si.FallThrough)
	}
	if si.Branch.PopsRAS() {
		f.ras.Pop()
	}

	switch {
	case fi.Divergence != nil:
		// The divergence is anchored at this very branch (BTB-missed
		// taken branch). If decode's redirect matches the oracle, the
		// frontend is healed early — the paper's post-fetch correction
		// win. Otherwise the divergence stays pending for execute.
		div := fi.Divergence
		if div.ActualTaken && target == div.ActualTarget {
			f.Stats.PostFetchRecoveries++
			f.onPath = true
			f.oracle.Rewind(div.OracleCursor)
			fi.Divergence = nil
			f.divergence = nil
		}
		f.fetchPC = target
	case fi.OnPath:
		// The oracle did NOT take this branch (otherwise a divergence
		// would exist), but decode predicts taken: post-fetch
		// correction itself sends us off-path.
		f.oracle.Rewind(fi.OracleCursorAfter)
		f.diverge(fi, DivPostFetch, si.FallThrough, fi.Oracle.Taken, fi.Oracle.Target, cycle)
		f.fetchPC = target
	default:
		// Already off-path: just follow the redirect.
		f.fetchPC = target
	}
	f.tuner.OnResteer(ResteerPostFetch)
	return true
}

// flushYoungerThan clears all frontend state younger than seq: FTQ
// blocks, the in-progress fetch block, and the decode queue. Flushed
// blocks and instructions return to the pools; instructions already
// handed to the backend are released by the ROB (retire/squash).
func (f *Frontend) flushYoungerThan(seq uint64) {
	// A divergence belonging to a flushed (younger) instruction is
	// void; nil the pointer before its owning instruction is recycled.
	if f.divergence != nil && f.divSeq > seq {
		f.divergence = nil
		// Path state is re-established by the caller.
	}
	// Everything still queued is younger than an instruction that has
	// reached decode or execute.
	for fb := f.ftq.Pop(); fb != nil; fb = f.ftq.Pop() {
		f.releaseBlockInstrs(fb, 0)
	}
	if f.curBlock != nil {
		// Instructions before curIdx were streamed to the decode queue
		// or backend; only the unstreamed tail dies with the block.
		f.releaseBlockInstrs(f.curBlock, f.curIdx)
		f.curBlock = nil
	}
	f.needAccess = false
	for fi := f.decodeQ.pop(); fi != nil; fi = f.decodeQ.pop() {
		f.instrs.put(fi)
	}
}

// Recover performs an execute-time misprediction recovery for the
// diverging branch fi: flush everything younger, restore speculative
// predictor state, resteer fetch to the architecturally correct PC, and
// resynchronize with the oracle.
func (f *Frontend) Recover(fi *FrontInstr, cycle uint64) {
	div := fi.Divergence
	if div == nil {
		return
	}
	f.Stats.Recoveries++
	if cycle >= div.BornCycle {
		f.ResolutionLatency.Observe(cycle - div.BornCycle)
		if f.Obs != nil {
			f.Obs.Recovery(cycle - div.BornCycle)
		}
	}
	f.flushYoungerThan(fi.FetchSeq)

	f.dir.Restore(div.HistSnap)
	f.ras.Restore(div.RASSnap)
	if div.BranchKind.IsConditional() {
		f.dir.SpecUpdate(div.BranchPC, div.ActualTaken)
	}
	if div.BranchKind.PushesRAS() {
		f.ras.Push(fi.Static.FallThrough)
	}
	if div.BranchKind.PopsRAS() {
		f.ras.Pop()
	}

	f.fetchPC = div.RecoverPC
	f.onPath = true
	f.oracle.Rewind(div.OracleCursor)
	fi.Divergence = nil
	f.divergence = nil
	f.tuner.OnResteer(ResteerRecovery)
}

// OnRetire trains the predictors with a retired (necessarily on-path)
// instruction and feeds the tuner's Seniority-FTQ matching.
func (f *Frontend) OnRetire(fi *FrontInstr, cycle uint64) {
	f.tuner.OnRetire(fi.Static.PC.Line())
	pb := fi.Branch
	if pb == nil {
		return
	}
	si := fi.Static
	o := fi.Oracle
	if o.Taken {
		f.tuner.OnRetireTakenBranch(si.PC.Block())
	}
	if si.Branch.IsConditional() && pb.Predicted() {
		f.dir.Train(si.PC, o.Taken, pb.Pred)
	}
	switch si.Branch {
	case isa.BranchIndirect, isa.BranchIndirectCall:
		f.ibtb.Update(si.PC, pb.HistSnap.PathHist, o.Target)
		// Keep the BTB's fallback target fresh for indirect branches.
		f.btb.Insert(si.PC, si.Branch, o.Target, cycle)
	}
}
