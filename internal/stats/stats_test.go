package stats

import (
	"testing"
	"testing/quick"
)

func TestLog2HistogramBuckets(t *testing.T) {
	h := NewLog2Histogram(4) // bounds 2,4,8,16
	for _, v := range []uint64{1, 2, 3, 4, 9, 17, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("max %d", h.Max())
	}
	var seen []uint64
	h.Buckets(func(upper, count uint64) { seen = append(seen, upper, count) })
	// 1,2 → ≤2; 3,4 → ≤4; 9 → ≤16; 17,1000 → overflow
	want := []uint64{2, 2, 4, 2, 16, 1, 1000, 2}
	if len(seen) != len(want) {
		t.Fatalf("buckets %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("buckets %v, want %v", seen, want)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewLinearHistogram(10, 10) // 10,20,...,100
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Percentile(0.5); got != 50 {
		t.Errorf("p50 ≤ %d, want 50", got)
	}
	if got := h.Percentile(1.0); got != 100 {
		t.Errorf("p100 = %d", got)
	}
	if got := h.Percentile(0); got != 10 {
		t.Errorf("p0 = %d", got)
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean %v", h.Mean())
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewLog2Histogram(8)
	if h.Percentile(0.5) != 0 || h.Mean() != 0 || h.String() != "(empty)" {
		t.Error("empty histogram misbehaves")
	}
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("reset incomplete")
	}
}

// Property: percentiles are monotone in p and total counts match
// observations.
func TestHistogramProperties(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewLog2Histogram(16)
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		if h.Count() != uint64(len(vals)) {
			return false
		}
		prev := uint64(0)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			q := h.Percentile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	cases := []func(){
		func() { NewLog2Histogram(0) },
		func() { NewLog2Histogram(64) },
		func() { NewLinearHistogram(0, 1) },
		func() { NewLinearHistogram(4, 0) },
		func() { NewHistogram([]uint64{4, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWindowedRatio(t *testing.T) {
	w := NewWindowedRatio(4)
	if _, ok := w.Last(); ok {
		t.Error("fresh tracker has a window")
	}
	for i := 0; i < 3; i++ {
		if _, done := w.Observe(true); done {
			t.Fatal("window completed early")
		}
	}
	r, done := w.Observe(false)
	if !done || r != 0.75 {
		t.Fatalf("window = (%v, %v)", r, done)
	}
	if last, ok := w.Last(); !ok || last != 0.75 {
		t.Error("Last() inconsistent")
	}
	if w.Windows() != 1 {
		t.Errorf("windows %d", w.Windows())
	}
	// Next window starts fresh.
	for i := 0; i < 4; i++ {
		r, done = w.Observe(false)
	}
	if !done || r != 0 {
		t.Errorf("second window = (%v, %v)", r, done)
	}
}

func TestWindowedRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewWindowedRatio(0)
}
