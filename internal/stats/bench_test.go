package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// observeLinear is the pre-optimization bucket lookup, kept as the
// benchmark baseline for the sort.Search version in Observe.
func (h *Histogram) observeLinear(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// benchSamples draws values spread across the full 63-bucket range so
// the linear scan pays its average-case cost (half the bounds slice).
func benchSamples(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	s := make([]uint64, n)
	for i := range s {
		s[i] = rng.Uint64() >> uint(rng.Intn(64))
	}
	return s
}

func BenchmarkHistogramObserve(b *testing.B) {
	samples := benchSamples(1 << 12)
	b.Run("binary-63", func(b *testing.B) {
		h := NewLog2Histogram(63)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(samples[i&(len(samples)-1)])
		}
	})
	b.Run("linear-63", func(b *testing.B) {
		h := NewLog2Histogram(63)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.observeLinear(samples[i&(len(samples)-1)])
		}
	})
	b.Run("binary-20", func(b *testing.B) {
		h := NewLog2Histogram(20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(samples[i&(len(samples)-1)])
		}
	})
	b.Run("linear-20", func(b *testing.B) {
		h := NewLog2Histogram(20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.observeLinear(samples[i&(len(samples)-1)])
		}
	})
}

// TestObserveBinaryMatchesLinear pins the binary-search bucket lookup
// to the original linear semantics across bucket edges.
func TestObserveBinaryMatchesLinear(t *testing.T) {
	a := NewLog2Histogram(63)
	b := NewLog2Histogram(63)
	vals := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 1023, 1024, 1025, 1 << 62, ^uint64(0)}
	vals = append(vals, benchSamples(1024)...)
	for _, v := range vals {
		a.Observe(v)
		b.observeLinear(v)
	}
	if a.total != b.total || a.sum != b.sum || a.max != b.max {
		t.Fatalf("scalar mismatch: %+v vs %+v", a, b)
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			bound := "overflow"
			if i < len(a.bounds) {
				bound = "≤" + itoa(a.bounds[i])
			}
			t.Fatalf("bucket %d (%s): binary %d, linear %d", i, bound, a.counts[i], b.counts[i])
		}
	}
	// Sanity: sort.Search really is used on ascending bounds.
	if !sort.SliceIsSorted(a.bounds, func(i, j int) bool { return a.bounds[i] < a.bounds[j] }) {
		t.Fatal("bounds not ascending")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
