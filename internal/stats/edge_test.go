package stats

import "testing"

// Edge-case coverage for Percentile and WindowedRatio (ISSUE 2
// satellite): p=0, p=1, out-of-range p, all samples in the overflow
// bucket, single sample, and WindowedRatio behaviour before its first
// window completes.

func TestPercentileP0AndP1(t *testing.T) {
	h := NewLog2Histogram(4) // bounds 2,4,8,16
	for _, v := range []uint64{1, 3, 5, 9, 17} {
		h.Observe(v)
	}
	// p=0 still needs ceil(0*n)=0 samples: the first bucket's bound.
	if got := h.Percentile(0); got != 2 {
		t.Fatalf("p=0: got %d, want 2 (first bucket bound)", got)
	}
	// p=1 needs all samples; the last sample sits in overflow, so the
	// answer is the observed max.
	if got := h.Percentile(1); got != 17 {
		t.Fatalf("p=1: got %d, want max 17", got)
	}
	// Out-of-range p clamps.
	if got := h.Percentile(-0.5); got != h.Percentile(0) {
		t.Fatalf("p<0 should clamp to p=0: got %d", got)
	}
	if got := h.Percentile(1.5); got != h.Percentile(1) {
		t.Fatalf("p>1 should clamp to p=1: got %d", got)
	}
}

func TestPercentileAllOverflow(t *testing.T) {
	h := NewLog2Histogram(3) // bounds 2,4,8
	for _, v := range []uint64{100, 200, 300} {
		h.Observe(v)
	}
	// Every sample is beyond the last bound: all percentiles report the
	// observed max, never a bucket bound.
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Percentile(p); got != 300 {
			t.Fatalf("p=%v all-overflow: got %d, want 300", p, got)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	h := NewLog2Histogram(8)
	h.Observe(5) // bucket ≤8
	// p=0 needs 0 samples, which the (empty) first bucket satisfies: it
	// reports the first bucket bound. Any p>0 needs the one sample.
	if got := h.Percentile(0); got != 2 {
		t.Fatalf("p=0 single-sample: got %d, want first bucket bound 2", got)
	}
	for _, p := range []float64{0.5, 0.99, 1} {
		if got := h.Percentile(p); got != 8 {
			t.Fatalf("p=%v single-sample: got %d, want bucket bound 8", p, got)
		}
	}
	if h.Mean() != 5 || h.Max() != 5 || h.Count() != 1 {
		t.Fatalf("single-sample scalars wrong: mean %v max %d n %d", h.Mean(), h.Max(), h.Count())
	}
}

func TestPercentileEmpty(t *testing.T) {
	h := NewLog2Histogram(8)
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty histogram p=%v: got %d, want 0", p, got)
		}
	}
}

func TestWindowedRatioPreFirstWindow(t *testing.T) {
	w := NewWindowedRatio(4)
	// Before any window completes, Last reports (0, false) no matter
	// what has been observed so far.
	for i := 0; i < 3; i++ {
		if r, done := w.Observe(true); done || r != 0 {
			t.Fatalf("obs %d: premature window completion (r=%v done=%v)", i, r, done)
		}
		if r, ok := w.Last(); ok || r != 0 {
			t.Fatalf("obs %d: Last()=(%v,%v) before first window", i, r, ok)
		}
	}
	if w.Windows() != 0 {
		t.Fatalf("Windows()=%d before first completion", w.Windows())
	}
	// Fourth observation closes the window: 4/4 hits.
	r, done := w.Observe(true)
	if !done || r != 1.0 {
		t.Fatalf("window close: got (%v,%v), want (1.0,true)", r, done)
	}
	if last, ok := w.Last(); !ok || last != 1.0 {
		t.Fatalf("Last() after close: got (%v,%v)", last, ok)
	}
	if w.Windows() != 1 {
		t.Fatalf("Windows()=%d, want 1", w.Windows())
	}
}

func TestHistogramCloneMerge(t *testing.T) {
	a := NewLog2Histogram(6)
	b := NewLog2Histogram(6)
	for _, v := range []uint64{1, 5, 9} {
		a.Observe(v)
	}
	for _, v := range []uint64{2, 100} {
		b.Observe(v)
	}
	c := a.Clone()
	if err := c.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if c.Count() != 5 || c.Max() != 100 {
		t.Fatalf("merged n=%d max=%d", c.Count(), c.Max())
	}
	// The clone is independent: a is untouched.
	if a.Count() != 3 || a.Max() != 9 {
		t.Fatalf("source mutated by clone+merge: n=%d max=%d", a.Count(), a.Max())
	}
	// Shape mismatch is rejected.
	if err := c.Merge(NewLog2Histogram(4)); err == nil {
		t.Fatal("merge accepted mismatched shapes")
	}
	if err := c.Merge(NewLinearHistogram(6, 7)); err == nil {
		t.Fatal("merge accepted mismatched bounds")
	}
}
