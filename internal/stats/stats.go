// Package stats provides the lightweight measurement primitives the
// simulator's observability is built from: power-of-two latency
// histograms, linear occupancy histograms, and windowed ratio trackers
// (the hardware-style measurement UFTQ's counters model).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram of uint64 samples. Buckets are
// defined by their inclusive upper bounds; samples beyond the last
// bound land in the overflow bucket.
type Histogram struct {
	bounds []uint64
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewLog2Histogram builds a histogram with power-of-two bucket bounds
// 1, 2, 4, ... 2^maxPow — the natural shape for latencies.
func NewLog2Histogram(maxPow uint) *Histogram {
	if maxPow == 0 || maxPow > 63 {
		panic("stats: log2 histogram needs 1..63 buckets")
	}
	bounds := make([]uint64, maxPow)
	for i := range bounds {
		bounds[i] = 1 << uint(i+1)
	}
	return NewHistogram(bounds)
}

// NewLinearHistogram builds a histogram with n buckets of equal width.
func NewLinearHistogram(n int, width uint64) *Histogram {
	if n <= 0 || width == 0 {
		panic("stats: linear histogram needs positive shape")
	}
	bounds := make([]uint64, n)
	for i := range bounds {
		bounds[i] = uint64(i+1) * width
	}
	return NewHistogram(bounds)
}

// NewHistogram builds a histogram from explicit ascending bucket upper
// bounds.
func NewHistogram(bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must ascend")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1), // +overflow
	}
}

// Observe records one sample. Bucket lookup is a branchless binary
// search over the ascending bounds (the same invariant as
// sort.Search, with the comparison materialized as an integer so the
// CPU never mispredicts on the data-dependent direction). This beats
// both sort.Search — whose per-probe closure call costs more than the
// search saves — and the former linear scan on the wide (63-bucket)
// log2 histograms observability uses; see BenchmarkHistogramObserve
// in bench_test.go.
func (h *Histogram) Observe(v uint64) {
	base, n := 0, len(h.bounds)
	for n > 1 {
		half := n >> 1
		// step = half when bounds[base+half-1] < v, else 0 — computed
		// arithmetically to stay branch-free.
		step := half & -b2i(h.bounds[base+half-1] < v)
		base += step
		n -= half
	}
	if n == 1 && h.bounds[base] < v {
		base++ // overflow bucket
	}
	h.counts[base]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// b2i converts a bool to 0/1; the compiler lowers this to SETcc, so
// callers can fold comparisons into arithmetic without branching.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound on the p-th percentile (p in
// [0,1]): the bucket bound below which at least p of the samples fall.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := uint64(math.Ceil(p * float64(h.total)))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		if acc >= need {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}

// Clone returns a deep copy (shared immutable bounds, copied counts).
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		bounds: h.bounds, // bounds are never mutated after construction
		counts: make([]uint64, len(h.counts)),
		total:  h.total,
		sum:    h.sum,
		max:    h.max,
	}
	copy(c.counts, h.counts)
	return c
}

// Merge adds other's samples into h. The two histograms must have
// identical bucket bounds; an error is returned (and h is unchanged)
// otherwise.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("stats: merge shape mismatch: %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("stats: merge bound mismatch at bucket %d: %d vs %d", i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bounds returns the inclusive bucket upper bounds. The returned slice
// is the histogram's own (never mutated after construction) — callers
// must not modify it.
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// Counts returns the per-bucket sample counts, including the trailing
// overflow bucket (len = len(Bounds())+1). Unlike Buckets it reports
// empty buckets too, which exposition formats with fixed series need.
// The returned slice aliases the histogram's counts — callers must not
// modify it and must copy if they need a stable snapshot.
func (h *Histogram) Counts() []uint64 { return h.counts }

// Buckets invokes f for every non-empty bucket with its upper bound
// (max for overflow) and count.
func (h *Histogram) Buckets(f func(upper uint64, count uint64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i < len(h.bounds) {
			f(h.bounds[i], c)
		} else {
			f(h.max, c)
		}
	}
}

// String renders a compact ASCII distribution.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50≤%d p99≤%d max=%d",
		h.total, h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.max)
	return b.String()
}

// WindowedRatio tracks a success ratio over tumbling windows of fixed
// size — the measurement structure UFTQ implements with two 10-bit
// hardware counters.
type WindowedRatio struct {
	window  int
	hits    int
	total   int
	last    float64
	windows uint64
	valid   bool
}

// NewWindowedRatio builds a tracker with the given window size.
func NewWindowedRatio(window int) *WindowedRatio {
	if window <= 0 {
		panic("stats: window must be positive")
	}
	return &WindowedRatio{window: window}
}

// Observe records one event; it returns (ratio, true) when this event
// completed a window.
func (w *WindowedRatio) Observe(hit bool) (float64, bool) {
	w.total++
	if hit {
		w.hits++
	}
	if w.total < w.window {
		return 0, false
	}
	w.last = float64(w.hits) / float64(w.total)
	w.valid = true
	w.windows++
	w.hits, w.total = 0, 0
	return w.last, true
}

// Last returns the most recent completed window's ratio and whether any
// window has completed.
func (w *WindowedRatio) Last() (float64, bool) { return w.last, w.valid }

// Windows returns the number of completed windows.
func (w *WindowedRatio) Windows() uint64 { return w.windows }
