package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udpsim/internal/sim"
)

func testResult(key string, ipc float64) sim.Result {
	return sim.Result{Workload: key, IPC: ipc, Cycles: 1000, Instructions: uint64(ipc * 1000)}
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTestStore(t)
	key := "workload=mysql|mech=udp|sp=1"
	want := testResult("mysql", 1.25)
	if err := s.Save(key, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, ok, err := s.Load(key)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("Load mismatch: got %+v want %+v", got, want)
	}
	// A second store over the same directory (fresh LRU) must read the
	// record from disk — the daemon-restart path.
	s2, err := OpenStore(s.Dir(), 0, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got2, ok, err := s2.Load(key)
	if err != nil || !ok {
		t.Fatalf("Load after reopen: ok=%v err=%v", ok, err)
	}
	if got2 != want {
		t.Fatalf("reopened Load mismatch: got %+v", got2)
	}
	// LoadAddr resolves the content address back to (key, result).
	addr := ResultAddr(key)
	key2, got3, ok, err := s2.LoadAddr(addr)
	if err != nil || !ok || key2 != key || got3 != want {
		t.Fatalf("LoadAddr: key=%q ok=%v err=%v", key2, ok, err)
	}
	if _, _, ok, _ := s2.LoadAddr("zz-not-an-address"); ok {
		t.Fatal("LoadAddr accepted a malformed address")
	}
}

func TestStoreMissingIsMiss(t *testing.T) {
	s := openTestStore(t)
	if _, ok, err := s.Load("never saved"); ok || err != nil {
		t.Fatalf("Load of absent key: ok=%v err=%v", ok, err)
	}
}

// corrupt mutates the committed record for key via fn and clears the
// LRU by reopening the store, so the next Load hits disk.
func corrupt(t *testing.T, s *Store, key string, fn func([]byte) []byte) *Store {
	t.Helper()
	path := s.objectPath(ResultAddr(key))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading record: %v", err)
	}
	if err := os.WriteFile(path, fn(blob), 0o644); err != nil {
		t.Fatalf("writing corrupt record: %v", err)
	}
	s2, err := OpenStore(s.Dir(), 0, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return s2
}

func quarantineCount(t *testing.T, s *Store) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(s.Dir(), "quarantine"))
	if err != nil {
		t.Fatalf("reading quarantine: %v", err)
	}
	return len(ents)
}

func TestStoreTruncatedRecordQuarantined(t *testing.T) {
	s := openTestStore(t)
	key := "trunc-key"
	if err := s.Save(key, testResult("w", 2.0)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s = corrupt(t, s, key, func(b []byte) []byte { return b[:len(b)-7] })
	if _, ok, err := s.Load(key); ok || err != nil {
		t.Fatalf("truncated record served: ok=%v err=%v", ok, err)
	}
	if n := quarantineCount(t, s); n != 1 {
		t.Fatalf("quarantine count = %d, want 1", n)
	}
	if _, err := os.Stat(s.objectPath(ResultAddr(key))); !os.IsNotExist(err) {
		t.Fatalf("corrupt record still in objects/: %v", err)
	}
	// The slot is recomputable: a fresh Save must land and be served.
	want := testResult("w", 2.0)
	if err := s.Save(key, want); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	got, ok, err := s.Load(key)
	if err != nil || !ok || got != want {
		t.Fatalf("Load after re-Save: got %+v ok=%v err=%v", got, ok, err)
	}
}

func TestStoreBitFlipQuarantined(t *testing.T) {
	s := openTestStore(t)
	key := "flip-key"
	if err := s.Save(key, testResult("w", 3.0)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s = corrupt(t, s, key, func(b []byte) []byte {
		b[len(b)-3] ^= 0x40 // flip a bit inside the payload
		return b
	})
	if _, ok, err := s.Load(key); ok || err != nil {
		t.Fatalf("bit-flipped record served: ok=%v err=%v", ok, err)
	}
	if n := quarantineCount(t, s); n != 1 {
		t.Fatalf("quarantine count = %d, want 1", n)
	}
}

func TestStoreMisfiledRecordNotServed(t *testing.T) {
	s := openTestStore(t)
	if err := s.Save("key-a", testResult("a", 1.0)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// File key-a's (internally consistent) record under key-b's address.
	blob, err := os.ReadFile(s.objectPath(ResultAddr("key-a")))
	if err != nil {
		t.Fatal(err)
	}
	dst := s.objectPath(ResultAddr("key-b"))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("key-b"); ok || err != nil {
		t.Fatalf("misfiled record served under the wrong key: ok=%v err=%v", ok, err)
	}
}

func TestStoreLRUBounded(t *testing.T) {
	// Probe one record's in-memory footprint, then reopen with a budget
	// of ~3 records and overfill: the cache must stay within the byte
	// budget while the evicted records remain servable from disk.
	probe, err := OpenStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Save("probe", testResult("probe", 1)); err != nil {
		t.Fatal(err)
	}
	one := probe.LRUBytes()
	if one <= 0 {
		t.Fatalf("LRUBytes after one save = %d, want > 0", one)
	}

	cap3 := 3*one + one/2
	s, err := OpenStore(t.TempDir(), cap3, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k1", "k2", "k3", "k4", "k5"}
	for i, k := range keys {
		if err := s.Save(k, testResult(k, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LRUBytes(); got > cap3 {
		t.Fatalf("LRUBytes = %d, want <= budget %d", got, cap3)
	}
	if n := s.LRULen(); n < 1 || n > 3 {
		t.Fatalf("LRULen = %d, want 1..3 under a ~3-record budget", n)
	}
	// Evicted entries are still on disk.
	for _, k := range keys {
		if _, ok, err := s.Load(k); !ok || err != nil {
			t.Fatalf("Load(%s) after eviction: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestStoreStaleTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "deadbeef.12345")
	if err := os.WriteFile(stale, []byte("partial write from a crashed daemon"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived OpenStore: %v", err)
	}
}

func TestResultAddrShape(t *testing.T) {
	addr := ResultAddr("some key")
	if len(addr) != 64 || strings.ToLower(addr) != addr {
		t.Fatalf("ResultAddr not lowercase hex sha256: %q", addr)
	}
	if ResultAddr("some key") != addr {
		t.Fatal("ResultAddr not deterministic")
	}
	if ResultAddr("other key") == addr {
		t.Fatal("ResultAddr collision on distinct keys")
	}
}
