package serve

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"udpsim/internal/obs"
)

// syncBuffer is a concurrency-safe log sink (scheduler workers share
// the logger with the request path).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newInstrumentedServer builds a Server whose logs land in the
// returned buffer, for exercising the middleware in isolation.
func newInstrumentedServer(t *testing.T) (*Server, *syncBuffer) {
	t.Helper()
	buf := &syncBuffer{}
	log := slog.New(slog.NewTextHandler(buf, nil))
	return NewServer(ServerConfig{Workers: 1, Log: log}), buf
}

func TestInstrumentAccessLogAndRequestID(t *testing.T) {
	srv, buf := newInstrumentedServer(t)
	h := srv.instrument("/test", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	})

	req := httptest.NewRequest(http.MethodGet, "/test", nil)
	rec := httptest.NewRecorder()
	h(rec, req)

	reqID := rec.Header().Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("response missing X-Request-ID")
	}
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status %d, want %d", rec.Code, http.StatusTeapot)
	}
	logs := buf.String()
	for _, want := range []string{
		"msg=request",
		"request_id=" + reqID,
		"route=/test",
		"method=GET",
		"status=418",
		"bytes=15",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q\ngot: %s", want, logs)
		}
	}
}

func TestInstrumentHonorsInboundRequestID(t *testing.T) {
	srv, buf := newInstrumentedServer(t)
	h := srv.instrument("/test", func(w http.ResponseWriter, r *http.Request) {})

	req := httptest.NewRequest(http.MethodGet, "/test", nil)
	req.Header.Set("X-Request-ID", "caller-chose-this")
	rec := httptest.NewRecorder()
	h(rec, req)

	if got := rec.Header().Get("X-Request-ID"); got != "caller-chose-this" {
		t.Fatalf("X-Request-ID = %q, want the inbound one", got)
	}
	if !strings.Contains(buf.String(), "request_id=caller-chose-this") {
		t.Fatalf("access log does not carry inbound request ID:\n%s", buf.String())
	}
	// A handler that never writes is logged as the 200 net/http sends.
	if !strings.Contains(buf.String(), "status=200") {
		t.Fatalf("empty handler should log status=200:\n%s", buf.String())
	}
}

func TestInstrumentPanicRecovery(t *testing.T) {
	srv, buf := newInstrumentedServer(t)
	h := srv.instrument("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	panicsBefore := obs.HTTPPanics.Value()
	req := httptest.NewRequest(http.MethodPost, "/boom", nil)
	rec := httptest.NewRecorder()
	h(rec, req) // must not propagate the panic

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	reqID := rec.Header().Get("X-Request-ID")
	if reqID == "" || !strings.Contains(rec.Body.String(), reqID) {
		t.Fatalf("500 body should cite the request ID %q: %s", reqID, rec.Body.String())
	}
	if d := obs.HTTPPanics.Value() - panicsBefore; d != 1 {
		t.Fatalf("HTTPPanics moved by %v, want 1", d)
	}
	logs := buf.String()
	if n := strings.Count(logs, `msg="panic in handler"`); n != 1 {
		t.Fatalf("panic logged %d times, want exactly 1:\n%s", n, logs)
	}
	if !strings.Contains(logs, "kaboom") || !strings.Contains(logs, "stack=") {
		t.Fatalf("panic log missing value or stack:\n%s", logs)
	}
	// The access log still fires, recording the 500.
	if !strings.Contains(logs, "status=500") {
		t.Fatalf("access log missing the 500:\n%s", logs)
	}
}

func TestInstrumentPanicAfterWriteDoesNotRewrite(t *testing.T) {
	srv, _ := newInstrumentedServer(t)
	h := srv.instrument("/late", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, "partial")
		panic("after headers")
	})
	req := httptest.NewRequest(http.MethodGet, "/late", nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusAccepted || rec.Body.String() != "partial" {
		t.Fatalf("late panic must not clobber the written response: %d %q",
			rec.Code, rec.Body.String())
	}
}

func TestStatusRecorderFlushPassthrough(t *testing.T) {
	inner := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: inner}
	if _, err := rec.Write([]byte("data: x\n\n")); err != nil {
		t.Fatal(err)
	}
	var fl http.Flusher = rec // SSE requires the wrapper to stay flushable
	fl.Flush()
	if !inner.Flushed {
		t.Fatal("Flush not forwarded to the underlying writer")
	}
	if rec.status != http.StatusOK || rec.bytes != 9 {
		t.Fatalf("recorder status=%d bytes=%d, want 200 and 9", rec.status, rec.bytes)
	}
}
