package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

// TestServerTraceDescriptorDedup is the portable-frontend daemon gate:
// two submissions of the same trace descriptor dedup onto one
// simulation keyed by the trace's content hash, a hash-only descriptor
// (no file) lands on the same cell, and the result round-trips through
// the content-addressed store across a daemon restart.
func TestServerTraceDescriptorDedup(t *testing.T) {
	experiments.FlushResultCache()
	dir := t.TempDir()

	// Record a trace long enough for warmup+measure plus the engine's
	// runahead margin.
	p := workload.MustByName("postgres")
	p.Funcs = 30
	p.DispatchTargets = 20
	var buf bytes.Buffer
	if err := trace.RecordN2(&buf, p, 6, 200_000, trace.EncBinary); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "svcdedup.udpt2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	probe, err := trace.LoadSourceBytes("probe", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sha := probe.SHA256()

	descFile := []byte(fmt.Sprintf(`{
		"name": "trace-dedup-e2e",
		"traces": [{"name": "svcdedup", "file": %q}],
		"instructions": 30000,
		"warmup": 5000,
		"configs": [{"label": "base", "mechanism": "baseline"}]
	}`, path))
	descSHA := []byte(fmt.Sprintf(`{
		"name": "trace-dedup-e2e-by-hash",
		"traces": [{"name": "svcdedup", "sha256": %q}],
		"instructions": 30000,
		"warmup": 5000,
		"configs": [{"label": "base", "mechanism": "baseline"}]
	}`, sha))

	storeDir := filepath.Join(dir, "store")
	_, c1, stop1 := newTestDaemon(t, storeDir, serve.ServerConfig{})
	missesBefore := obs.CacheMisses.Value()

	v1, err := c1.Submit(context.Background(), descFile, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	f1, err := c1.Wait(context.Background(), v1.ID)
	if err != nil || f1.State != serve.JobDone {
		t.Fatalf("job 1: %+v err=%v", f1, err)
	}
	v2, err := c1.Submit(context.Background(), descFile, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if v2.ID != v1.ID {
		t.Fatalf("identical trace descriptors got distinct jobs %s and %s", v1.ID, v2.ID)
	}
	f2, err := c1.Wait(context.Background(), v2.ID)
	if err != nil || f2.State != serve.JobDone {
		t.Fatalf("job 2: %+v err=%v", f2, err)
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 1 {
		t.Fatalf("two submissions simulated %d cells, want exactly 1", d)
	}
	if len(f1.Cells) != 1 || f1.Cells[0].IPC <= 0 {
		t.Fatalf("cell metrics missing: %+v", f1.Cells)
	}
	wantIPC := f1.Cells[0].IPC
	resultKey := f1.Cells[0].ResultKey

	// A descriptor that names the trace only by its content hash — no
	// file, the daemon-resubmission shape — must land on the same cell:
	// no new simulation, identical content address.
	v3, err := c1.Submit(context.Background(), descSHA, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit by hash: %v", err)
	}
	f3, err := c1.Wait(context.Background(), v3.ID)
	if err != nil || f3.State != serve.JobDone {
		t.Fatalf("hash job: %+v err=%v", f3, err)
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 1 {
		t.Fatalf("hash-only descriptor resimulated (misses = %d, want 1)", d)
	}
	if f3.Cells[0].ResultKey != resultKey {
		t.Fatalf("hash-only submission keyed to %s, file submission to %s — cell keys must derive from the trace content hash",
			f3.Cells[0].ResultKey, resultKey)
	}
	stop1()

	// "Restart": flush the in-process memo cache, open a new daemon on
	// the same store directory, resubmit. The record must be served from
	// disk — zero simulations, one store hit, identical metrics.
	experiments.FlushResultCache()
	_, c2, stop2 := newTestDaemon(t, storeDir, serve.ServerConfig{})
	defer stop2()
	missesBefore = obs.CacheMisses.Value()
	hitsBefore := obs.StoreHits.Value()
	v4, err := c2.Submit(context.Background(), descFile, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	f4, err := c2.Wait(context.Background(), v4.ID)
	if err != nil || f4.State != serve.JobDone {
		t.Fatalf("restart job: %+v err=%v", f4, err)
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 0 {
		t.Fatalf("restart resimulated %d cells, want 0", d)
	}
	if d := obs.StoreHits.Value() - hitsBefore; d != 1 {
		t.Fatalf("store hits delta = %d, want 1", d)
	}
	if f4.Cells[0].IPC != wantIPC {
		t.Fatalf("restarted IPC %v != original %v", f4.Cells[0].IPC, wantIPC)
	}
}
