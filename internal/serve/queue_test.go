package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
)

// testDescriptor builds a distinct (by name) descriptor; the fake
// RunFuncs below never actually simulate it.
func testDescriptor(name string) *experiments.Descriptor {
	return &experiments.Descriptor{
		Name:         name,
		Workloads:    []string{"mysql"},
		Instructions: 1000,
		Simpoints:    1,
		Configs:      []experiments.ConfigSpec{{Label: "base", Mechanism: "baseline"}},
	}
}

func fakeResults(j *Job) []experiments.DescriptorResult {
	return []experiments.DescriptorResult{{
		Workload: "mysql", Label: "base",
		Result: sim.Result{Workload: "mysql", IPC: 1.0},
	}}
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
	if got := j.State(); got != want {
		t.Fatalf("job state = %s, want %s (err %q)", got, want, j.Err())
	}
}

func TestSchedulerRunsJob(t *testing.T) {
	var runs int
	var mu sync.Mutex
	s := NewScheduler(SchedulerConfig{
		Workers: 1,
		Run: func(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			return fakeResults(j), nil
		},
	})
	defer s.Drain(context.Background())
	j, deduped, err := s.Submit(testDescriptor("one"), "alice", 0)
	if err != nil || deduped {
		t.Fatalf("Submit: deduped=%v err=%v", deduped, err)
	}
	waitState(t, j, JobDone)
	if len(j.Results()) != 1 {
		t.Fatalf("results = %d cells, want 1", len(j.Results()))
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
}

func TestSchedulerDedupAcrossClients(t *testing.T) {
	gate := make(chan struct{})
	var runs int
	var mu sync.Mutex
	s := NewScheduler(SchedulerConfig{
		Workers: 2,
		Run: func(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			<-gate
			return fakeResults(j), nil
		},
	})
	defer s.Drain(context.Background())
	d := testDescriptor("same")
	j1, dd1, err := s.Submit(d, "alice", 0)
	if err != nil || dd1 {
		t.Fatalf("first Submit: deduped=%v err=%v", dd1, err)
	}
	j2, dd2, err := s.Submit(testDescriptor("same"), "bob", 0)
	if err != nil || !dd2 {
		t.Fatalf("second Submit: deduped=%v err=%v", dd2, err)
	}
	if j1 != j2 {
		t.Fatal("identical descriptors produced distinct jobs")
	}
	if j1.Submissions() != 2 {
		t.Fatalf("submissions = %d, want 2", j1.Submissions())
	}
	close(gate)
	waitState(t, j1, JobDone)
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("runs = %d, want exactly 1 (singleflight)", runs)
	}
	// Submitting after completion still attaches to the finished job.
	j3, dd3, err := s.Submit(testDescriptor("same"), "carol", 0)
	if err != nil || !dd3 || j3 != j1 {
		t.Fatalf("post-completion Submit: deduped=%v same=%v err=%v", dd3, j3 == j1, err)
	}
}

// gatedScheduler builds a 1-worker scheduler whose RunFunc records the
// order jobs start in and blocks each on a per-job release channel.
func gatedScheduler(t *testing.T, maxQueue int) (*Scheduler, *[]string, *sync.Mutex, chan struct{}) {
	t.Helper()
	var order []string
	var mu sync.Mutex
	release := make(chan struct{})
	s := NewScheduler(SchedulerConfig{
		Workers:  1,
		MaxQueue: maxQueue,
		Run: func(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
			mu.Lock()
			order = append(order, j.Name)
			mu.Unlock()
			select {
			case <-release:
				return fakeResults(j), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	return s, &order, &mu, release
}

func TestSchedulerPriorityOrder(t *testing.T) {
	s, order, mu, release := gatedScheduler(t, 16)
	defer func() { s.Drain(context.Background()) }()
	// "head" occupies the worker; the rest queue up.
	head, _, _ := s.Submit(testDescriptor("head"), "alice", 0)
	waitRunning(t, head)
	low, _, _ := s.Submit(testDescriptor("low"), "alice", 0)
	high, _, _ := s.Submit(testDescriptor("high"), "alice", 5)
	close(release)
	waitState(t, head, JobDone)
	waitState(t, low, JobDone)
	waitState(t, high, JobDone)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"head", "high", "low"}
	for i := range want {
		if (*order)[i] != want[i] {
			t.Fatalf("run order = %v, want %v", *order, want)
		}
	}
}

func TestSchedulerFairRoundRobin(t *testing.T) {
	s, order, mu, release := gatedScheduler(t, 16)
	defer func() { s.Drain(context.Background()) }()
	head, _, _ := s.Submit(testDescriptor("head"), "alice", 0)
	waitRunning(t, head)
	a1, _, _ := s.Submit(testDescriptor("a1"), "alice", 0)
	a2, _, _ := s.Submit(testDescriptor("a2"), "alice", 0)
	b1, _, _ := s.Submit(testDescriptor("b1"), "bob", 0)
	close(release)
	for _, j := range []*Job{head, a1, a2, b1} {
		waitState(t, j, JobDone)
	}
	mu.Lock()
	defer mu.Unlock()
	// bob's single job must not wait behind alice's whole backlog.
	got := *order
	if got[1] != "a1" || got[2] != "b1" || got[3] != "a2" {
		t.Fatalf("run order = %v, want [head a1 b1 a2]", got)
	}
}

func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started (state %s)", j.ID, j.State())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s, _, _, release := gatedScheduler(t, 2)
	defer func() { s.Drain(context.Background()) }()
	head, _, _ := s.Submit(testDescriptor("head"), "alice", 0)
	waitRunning(t, head)
	if _, _, err := s.Submit(testDescriptor("q1"), "alice", 0); err != nil {
		t.Fatalf("q1: %v", err)
	}
	if _, _, err := s.Submit(testDescriptor("q2"), "alice", 0); err != nil {
		t.Fatalf("q2: %v", err)
	}
	if _, _, err := s.Submit(testDescriptor("overflow"), "alice", 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	// Deduped submissions are admitted even with a full queue.
	if _, dd, err := s.Submit(testDescriptor("q1"), "bob", 0); err != nil || !dd {
		t.Fatalf("dedup during overflow: deduped=%v err=%v", dd, err)
	}
	close(release)
}

func TestSchedulerCancelQueued(t *testing.T) {
	s, order, mu, release := gatedScheduler(t, 16)
	defer func() { s.Drain(context.Background()) }()
	head, _, _ := s.Submit(testDescriptor("head"), "alice", 0)
	waitRunning(t, head)
	victim, _, _ := s.Submit(testDescriptor("victim"), "alice", 0)
	victim.Cancel("changed my mind")
	waitState(t, victim, JobCanceled)
	if victim.Err() != "changed my mind" {
		t.Fatalf("victim err = %q", victim.Err())
	}
	close(release)
	waitState(t, head, JobDone)
	mu.Lock()
	defer mu.Unlock()
	for _, name := range *order {
		if name == "victim" {
			t.Fatal("canceled queued job was still run")
		}
	}
}

func TestSchedulerCancelRunning(t *testing.T) {
	s, _, _, _ := gatedScheduler(t, 16)
	defer func() { s.Drain(context.Background()) }()
	j, _, _ := s.Submit(testDescriptor("running"), "alice", 0)
	waitRunning(t, j)
	j.Cancel("stop")
	waitState(t, j, JobCanceled)
}

func TestSchedulerJobTimeout(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		Run: func(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	defer s.Drain(context.Background())
	j, _, _ := s.Submit(testDescriptor("slow"), "alice", 0)
	waitState(t, j, JobCanceled)
	if j.Err() == "" {
		t.Fatal("timed-out job carries no error message")
	}
}

func TestSchedulerDrain(t *testing.T) {
	s, _, _, release := gatedScheduler(t, 16)
	running, _, _ := s.Submit(testDescriptor("running"), "alice", 0)
	waitRunning(t, running)
	queued, _, _ := s.Submit(testDescriptor("queued"), "alice", 0)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Queued jobs are canceled promptly; the running one gets to finish.
	waitState(t, queued, JobCanceled)
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitState(t, running, JobDone)
	if len(running.Results()) == 0 {
		t.Fatal("drained running job lost its results")
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, _, err := s.Submit(testDescriptor("late"), "alice", 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit err = %v, want ErrDraining", err)
	}
}

func TestSchedulerDrainForcesStragglers(t *testing.T) {
	s, _, _, _ := gatedScheduler(t, 16)
	j, _, _ := s.Submit(testDescriptor("straggler"), "alice", 0)
	waitRunning(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Drain err = %v, want DeadlineExceeded", err)
	}
	waitState(t, j, JobCanceled)
}

func TestJobIDContentAddressed(t *testing.T) {
	a, b := testDescriptor("x"), testDescriptor("x")
	if JobID(a) != JobID(b) {
		t.Fatal("identical descriptors hash to different job IDs")
	}
	c := testDescriptor("x")
	c.Instructions = 2000
	if JobID(a) == JobID(c) {
		t.Fatal("different descriptors hash to the same job ID")
	}
}

// testDescriptorW is testDescriptor with a chosen workload, for
// coalescing tests where the shared-image predicate matters.
func testDescriptorW(name, workload string) *experiments.Descriptor {
	d := testDescriptor(name)
	d.Workloads = []string{workload}
	return d
}

// TestSchedulerCoalescesSharedImage checks the group dequeue: with the
// single worker busy, queued jobs sharing a workload image are merged
// into one RunGroup call (capped by MaxCoalesce), jobs with a disjoint
// image run alone, and each coalesced job receives its own slice of
// the group's results.
func TestSchedulerCoalescesSharedImage(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var singles []string
	var groups [][]string
	s := NewScheduler(SchedulerConfig{
		Workers:     1,
		MaxCoalesce: 3,
		Run: func(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
			mu.Lock()
			singles = append(singles, j.Name)
			mu.Unlock()
			<-release
			return fakeResults(j), nil
		},
		RunGroup: func(ctx context.Context, jobs []*Job) ([][]experiments.DescriptorResult, []error) {
			names := make([]string, len(jobs))
			out := make([][]experiments.DescriptorResult, len(jobs))
			for i, j := range jobs {
				names[i] = j.Name
				out[i] = []experiments.DescriptorResult{{Workload: "mysql", Label: j.Name}}
			}
			mu.Lock()
			groups = append(groups, names)
			mu.Unlock()
			return out, make([]error, len(jobs))
		},
	})
	defer s.Drain(context.Background())

	// Occupy the worker with a job whose image nothing else shares.
	blocker, _, err := s.Submit(testDescriptorW("blocker", "xgboost"), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func() bool { mu.Lock(); defer mu.Unlock(); return len(singles) == 1 }, "blocker start")

	var mysqlJobs []*Job
	for _, name := range []string{"m1", "m2", "m3"} {
		j, _, err := s.Submit(testDescriptorW(name, "mysql"), "bob", 0)
		if err != nil {
			t.Fatal(err)
		}
		mysqlJobs = append(mysqlJobs, j)
	}
	lone, _, err := s.Submit(testDescriptorW("x2", "xgboost"), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	waitState(t, blocker, JobDone)
	for i, j := range mysqlJobs {
		waitState(t, j, JobDone)
		res := j.Results()
		if len(res) != 1 || res[0].Label != j.Name {
			t.Fatalf("m%d got results %+v, want its own labeled cell", i+1, res)
		}
	}
	waitState(t, lone, JobDone)

	mu.Lock()
	defer mu.Unlock()
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want one group of 3 (MaxCoalesce)", groups)
	}
	if len(singles) != 2 || singles[0] != "blocker" || singles[1] != "x2" {
		t.Fatalf("singles = %v, want [blocker x2] (disjoint image never coalesces)", singles)
	}
}

// TestSchedulerGroupCancel pins the merged-cancel policy: canceling one
// ride-along job must not cancel the group's shared context (the other
// clients' jobs are still riding), but canceling every job in the
// group stops the run and all of them finish canceled.
func TestSchedulerGroupCancel(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	s := NewScheduler(SchedulerConfig{
		Workers:     1,
		MaxCoalesce: 2,
		Run: func(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
			<-gate
			return fakeResults(j), nil
		},
		RunGroup: func(ctx context.Context, jobs []*Job) ([][]experiments.DescriptorResult, []error) {
			close(started)
			<-ctx.Done()
			errs := make([]error, len(jobs))
			for i := range errs {
				errs[i] = ctx.Err()
			}
			return nil, errs
		},
	})
	defer s.Drain(context.Background())

	blocker, _, err := s.Submit(testDescriptorW("blocker", "xgboost"), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := s.Submit(testDescriptorW("g1", "mysql"), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := s.Submit(testDescriptorW("g2", "mysql"), "carol", 0)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitState(t, blocker, JobDone)
	<-started

	g1.Cancel("first client bails")
	time.Sleep(20 * time.Millisecond)
	if st := g2.State(); st != JobRunning {
		t.Fatalf("g2 state after partner cancel = %s, want still running", st)
	}
	g2.Cancel("second client bails")
	waitState(t, g1, JobCanceled)
	waitState(t, g2, JobCanceled)
}
