package serve

// HTTP middleware: structured access logs, panic-to-500 recovery, and
// per-route request telemetry (latency histogram, in-flight gauge,
// route/method/code counters). Go 1.22's ServeMux has no way to read
// the matched pattern back off the request, so each route is wrapped
// individually with its route label (see Server.Handler).

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"udpsim/internal/obs"
)

// newRequestID mints a short random request correlation ID for access
// logs and the X-Request-ID response header.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code and body size a handler
// produced. Flush is forwarded so SSE streaming keeps working through
// the wrapper; WriteHeader is first-call-wins like the real one.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps one route's handler with the full middleware stack:
// request ID, in-flight gauge, panic recovery, access log, and the
// per-route latency/count metrics. route is the label the metrics and
// logs carry (the pattern's path, without the method).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		obs.HTTPInFlight.Add(1)

		defer func() {
			obs.HTTPInFlight.Add(-1)
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The handler aborted the connection on purpose
					// (e.g. a client gone mid-stream); not a bug.
					panic(p)
				}
				obs.HTTPPanics.Inc()
				s.log.Error("panic in handler",
					"request_id", reqID, "route", route, "method", r.Method,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError,
						fmt.Errorf("serve: internal error (request %s)", reqID))
				}
			}
			if rec.status == 0 {
				// Handler returned without writing; net/http sends 200.
				rec.status = http.StatusOK
			}
			elapsed := time.Since(start)
			obs.HTTPRequests.Inc(route, r.Method, fmt.Sprintf("%d", rec.status))
			obs.HTTPDurationUS.Observe(obs.SinceUS(start), route)
			s.log.Info("request",
				"request_id", reqID, "method", r.Method, "route", route,
				"path", r.URL.Path, "status", rec.status, "bytes", rec.bytes,
				"duration", elapsed.Round(time.Microsecond).String(),
				"client", clientID(r))
		}()

		h(rec, r)
	}
}
