package client

// Fleet is the client-side counterpart of the coordinator's forwarder:
// it fans one experiment descriptor out across a udpsimd fleet without
// needing a coordinator process. The descriptor splits into one
// sub-descriptor per workload, each routes to the worker owning its
// shard on a client-side consistent-hash ring (the same hash the
// daemons use, so the fan-out lands where the results already live),
// and a worker that dies mid-run fails over to the next ring owner.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"udpsim/internal/experiments"
	"udpsim/internal/serve"
	"udpsim/internal/serve/placement"
)

// Fleet fans descriptors out across several udpsimd daemons. Build one
// with NewFleet; the exported fields may be set before first use.
type Fleet struct {
	nodes   []string
	ring    *placement.Ring
	clients map[string]*Client

	// Name identifies the fan-out to each daemon's fair queue
	// (X-UDPSim-Client).
	Name string
	// OnProgress receives per-node progress lines (nil = dropped).
	OnProgress func(node, line string)
}

// NewFleet builds a fleet over the given daemon base URLs. hc == nil
// gives each node client its own default HTTP client.
func NewFleet(urls []string, hc *http.Client) (*Fleet, error) {
	if len(urls) == 0 {
		return nil, errors.New("client: fleet needs at least one daemon URL")
	}
	f := &Fleet{clients: make(map[string]*Client, len(urls))}
	for _, u := range urls {
		c := New(u, hc)
		if _, dup := f.clients[c.Base()]; dup {
			continue
		}
		f.clients[c.Base()] = c
		f.nodes = append(f.nodes, c.Base())
	}
	f.ring = placement.New(f.nodes, 0)
	return f, nil
}

// Nodes returns the fleet's daemon base URLs (deduplicated, in the
// order given to NewFleet).
func (f *Fleet) Nodes() []string { return f.nodes }

// shardKey mirrors the coordinator's sharding: the content address of
// a descriptor's first grid cell, so client-side fan-out and
// coordinator forwarding agree on placement.
func shardKey(d *experiments.Descriptor) string {
	return serve.ResultAddr(experiments.CellKey(d, d.Workloads[0], d.Configs[0]))
}

// nodeLoss mirrors the coordinator's worker-loss test: transport
// failures, dead streams and 502/503 (after the per-call retry budget)
// mean the node is gone and the sub-descriptor should fail over;
// anything else is the experiment's own outcome.
func nodeLoss(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusBadGateway ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	return true
}

// Run executes a validated descriptor across the fleet: one
// sub-descriptor per workload, routed by ring ownership, run
// concurrently, reassembled in the descriptor's own workload-major
// order (byte-identical rows to a local run). Each sub-descriptor
// tries its ring owners in placement order until one completes it.
func (f *Fleet) Run(ctx context.Context, d *experiments.Descriptor, priority int) ([]experiments.DescriptorResult, error) {
	if len(d.Workloads) == 0 || len(d.Configs) == 0 {
		return nil, errors.New("client: fleet run needs a validated descriptor")
	}
	if f.Name != "" {
		for _, c := range f.clients {
			c.Name = f.Name
		}
	}
	perWorkload := make([][]experiments.DescriptorResult, len(d.Workloads))
	errs := make([]error, len(d.Workloads))
	var wg sync.WaitGroup
	for i, w := range d.Workloads {
		sub := *d
		sub.Workloads = []string{w}
		wg.Add(1)
		go func(i int, sub experiments.Descriptor) {
			defer wg.Done()
			perWorkload[i], errs[i] = f.runSub(ctx, &sub, priority)
		}(i, sub)
	}
	wg.Wait()
	out := make([]experiments.DescriptorResult, 0, len(d.Workloads)*len(d.Configs))
	for i := range d.Workloads {
		if errs[i] != nil {
			return nil, fmt.Errorf("client: workload %s: %w", d.Workloads[i], errs[i])
		}
		out = append(out, perWorkload[i]...)
	}
	return out, nil
}

// runSub runs one single-workload sub-descriptor, failing over across
// the shard's ring owners as nodes die.
func (f *Fleet) runSub(ctx context.Context, sub *experiments.Descriptor, priority int) ([]experiments.DescriptorResult, error) {
	blob, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	owners := f.ring.Owners(shardKey(sub), len(f.nodes))
	var lastErr error
	for _, node := range owners {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		results, err := f.runOn(ctx, f.clients[node], node, blob, priority)
		if err == nil {
			return results, nil
		}
		if !nodeLoss(err) {
			return nil, err
		}
		lastErr = err
		f.progress(node, fmt.Sprintf("node %s lost; failing over", node))
	}
	return nil, fmt.Errorf("every node failed (last: %w)", lastErr)
}

// runOn submits to one node, streams until terminal, and fetches the
// cell results.
func (f *Fleet) runOn(ctx context.Context, c *Client, node string, descriptorJSON []byte, priority int) ([]experiments.DescriptorResult, error) {
	v, err := c.Submit(ctx, descriptorJSON, SubmitOptions{Priority: priority})
	if err != nil {
		return nil, err
	}
	final, err := c.Stream(ctx, v.ID, 0, func(ev serve.Event) error {
		if ev.Type == "progress" {
			var p struct {
				Line string `json:"line"`
			}
			if json.Unmarshal(ev.Data, &p) == nil && p.Line != "" {
				f.progress(node, p.Line)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	switch final.State {
	case serve.JobDone:
	case serve.JobCanceled:
		// The node was drained or killed under the job — fail over.
		return nil, fmt.Errorf("%w: node canceled the job unasked", ErrStreamEnded)
	default:
		return nil, fmt.Errorf("job %s on %s: %s", final.ID, node, final.Error)
	}
	results := make([]experiments.DescriptorResult, 0, len(final.Cells))
	for _, cell := range final.Cells {
		sr, err := c.Result(ctx, cell.ResultKey)
		if err != nil {
			return nil, fmt.Errorf("fetching cell %s/%s: %w", cell.Workload, cell.Label, err)
		}
		results = append(results, experiments.DescriptorResult{
			Workload: cell.Workload, Label: cell.Label, Result: sr.Result,
		})
	}
	return results, nil
}

func (f *Fleet) progress(node, line string) {
	if f.OnProgress != nil {
		f.OnProgress(node, line)
	}
}
