package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"udpsim/internal/serve"
)

// TestRetryOn503 drives a daemon that 503s twice before answering: the
// default three-attempt budget must absorb exactly that.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","uptime_secs":1,"queue_depth":0}`)
	}))
	defer hs.Close()

	h, err := New(hs.URL, nil).Health(context.Background())
	if err != nil {
		t.Fatalf("Health after two 503s: %v", err)
	}
	if h.Status != "ok" || calls.Load() != 3 {
		t.Fatalf("status=%q calls=%d, want ok after exactly 3 attempts", h.Status, calls.Load())
	}
}

// TestRetryBudgetExhausted verifies the failure surfaces once every
// attempt 503s, and that the attempt count honors MaxAttempts.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c := New(hs.URL, nil)
	c.MaxAttempts = 2
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want APIError 503, got %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want MaxAttempts = 2", calls.Load())
	}
}

// TestNoRetryOn400 — errors the daemon answered deliberately are
// final.
func TestNoRetryOn400(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad descriptor"}`, http.StatusBadRequest)
	}))
	defer hs.Close()

	_, err := New(hs.URL, nil).Submit(context.Background(), []byte(`{}`), SubmitOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("want APIError 400, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

// TestRetryConnectionRefused — the daemon comes up between attempts.
func TestRetryConnectionRefused(t *testing.T) {
	// Reserve an address, then close the listener so the first attempt
	// is refused; restart a real server on the same address before the
	// backoff elapses.
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	hs.Start()
	addr := hs.URL
	hs.Close()

	c := New(addr, nil)
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected failure against a closed listener")
	}
	// All attempts must have been transport-level (retried to
	// exhaustion), not a single-shot failure — verified by timing not
	// being instant is flaky, so just assert the error is not an
	// APIError (no HTTP answer ever arrived).
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("closed listener produced an HTTP response: %v", err)
	}
}

// TestStreamReconnectResumes kills the SSE connection mid-stream and
// verifies the client resumes with Last-Event-ID, delivering every
// event exactly once.
func TestStreamReconnectResumes(t *testing.T) {
	var conns atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		n := conns.Add(1)
		if n == 1 {
			if got := r.Header.Get("Last-Event-ID"); got != "" {
				t.Errorf("first connection carried Last-Event-ID %q", got)
			}
			// Two events, then drop the connection without a terminal.
			fmt.Fprint(w, "event: progress\nid: 1\ndata: {\"line\":\"a\"}\n\n")
			fmt.Fprint(w, "event: progress\nid: 2\ndata: {\"line\":\"b\"}\n\n")
			fl.Flush()
			return // handler return closes the connection
		}
		if got := r.Header.Get("Last-Event-ID"); got != "2" {
			t.Errorf("reconnect carried Last-Event-ID %q, want 2", got)
		}
		fmt.Fprint(w, "event: progress\nid: 3\ndata: {\"line\":\"c\"}\n\n")
		fmt.Fprint(w, "event: done\nid: 4\ndata: {\"id\":\"j1\",\"state\":\"done\"}\n\n")
		fl.Flush()
	}))
	defer hs.Close()

	var got []int64
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := New(hs.URL, nil).Stream(ctx, "j1", 0, func(ev serve.Event) error {
		got = append(got, ev.ID)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if v == nil || v.State != serve.JobDone {
		t.Fatalf("terminal view = %+v, want done", v)
	}
	want := []int64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("event IDs %v, want %v (exactly once across reconnect)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event IDs %v, want %v", got, want)
		}
	}
}

// TestStreamCallbackErrorIsFinal — fn's error must not trigger a
// reconnect-and-replay.
func TestStreamCallbackErrorIsFinal(t *testing.T) {
	var conns atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: progress\nid: 1\ndata: {}\n\n")
	}))
	defer hs.Close()

	sentinel := errors.New("stop here")
	_, err := New(hs.URL, nil).Stream(context.Background(), "j1", 0, func(ev serve.Event) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's own error", err)
	}
	if conns.Load() != 1 {
		t.Fatalf("callback error caused %d connections, want 1", conns.Load())
	}
}
