// Package client is the thin Go client for the udpsimd daemon: submit
// experiment descriptors, poll or stream job progress over SSE, and
// fetch content-addressed results. It speaks only the wire types of
// internal/serve, never the daemon's internals.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"udpsim/internal/serve"
)

// DefaultTimeout bounds non-streaming requests when the caller does
// not override Client.Timeout.
const DefaultTimeout = 30 * time.Second

// DefaultAttempts is how many times a call is tried in total before
// its failure is reported (Client.MaxAttempts == 0). Retries apply
// only to failures that are safe and useful to retry: transport errors
// (connection refused, reset — the daemon is restarting) and 502/503
// responses. Every call in this API is idempotent — submissions are
// content-addressed, so a duplicate POST attaches to the existing job.
const DefaultAttempts = 3

// retryBaseDelay seeds the exponential backoff between attempts
// (jittered ±50%, doubled per retry: ~50ms, ~100ms).
const retryBaseDelay = 50 * time.Millisecond

// ErrStreamEnded reports an SSE stream that dropped before the job's
// terminal event — the daemon went away mid-job. Stream retries it
// internally (resuming via Last-Event-ID); callers see it only once
// the retry budget is spent, at which point the daemon is down, not
// restarting.
var ErrStreamEnded = errors.New("udpsimd: event stream ended before the job finished")

// Client talks to one udpsimd base URL (e.g. "http://127.0.0.1:8091").
type Client struct {
	base string
	http *http.Client
	// Name identifies this client to the daemon's per-client fair
	// queue (X-UDPSim-Client). Empty means the daemon falls back to
	// the remote address.
	Name string
	// Timeout caps each non-streaming call (Submit, Job, Jobs, Cancel,
	// Result, Ready, Health, Metrics); it is applied per request on top
	// of the caller's context, so a hung daemon fails the call instead
	// of blocking forever. SSE streams (Stream, Wait) are exempt —
	// they are long-lived by design and governed only by their context.
	// <= 0 disables the cap.
	Timeout time.Duration
	// MaxAttempts caps how many times one call (or one SSE connection)
	// is tried: 0 means DefaultAttempts, 1 disables retries.
	MaxAttempts int
}

// New builds a client. hc == nil uses a dedicated default client with
// no overall timeout (SSE streams are long-lived; Client.Timeout — 30s
// by default — bounds the non-streaming calls instead).
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: hc, Timeout: DefaultTimeout}
}

// reqCtx derives the per-request context for a non-streaming call.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.Timeout)
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return DefaultAttempts
}

// retryable classifies one attempt's failure: transport-level errors
// (connection refused/reset, unexpected EOF) and 502/503 mean the
// daemon is down or restarting and the call is worth retrying;
// anything the daemon actually answered (4xx, other 5xx) is final.
// Context cancellation is never retried — it is the caller stopping
// us, not the daemon failing.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusBadGateway ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay is the jittered exponential delay before retry attempt
// n (1-based): base × 2^(n-1), uniformly jittered in [½d, 1½d) so a
// fleet of clients does not reconnect in lockstep.
func backoffDelay(n int) time.Duration {
	d := retryBaseDelay << (n - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// withRetry runs one attempt via do (under the per-request timeout)
// up to MaxAttempts times, backing off between tries. The final
// attempt's error is reported; an expired caller context reports the
// last daemon failure, not the context error.
func (c *Client) withRetry(ctx context.Context, do func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for attempt := 1; ; attempt++ {
		actx, cancel := c.reqCtx(ctx)
		err = do(actx)
		cancel()
		if err == nil || !retryable(err) || attempt >= c.attempts() || ctx.Err() != nil {
			return err
		}
		if sleepCtx(ctx, backoffDelay(attempt)) != nil {
			return err
		}
	}
}

// Base returns the daemon base URL the client talks to.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response, decoded.
type APIError struct {
	StatusCode int
	Body       serve.APIError
}

func (e *APIError) Error() string {
	if len(e.Body.Fields) > 0 {
		return fmt.Sprintf("udpsimd: HTTP %d: %s (%d invalid fields)",
			e.StatusCode, e.Body.Error, len(e.Body.Fields))
	}
	return fmt.Sprintf("udpsimd: HTTP %d: %s", e.StatusCode, e.Body.Error)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		if jsonErr := json.Unmarshal(body, &apiErr.Body); jsonErr != nil || apiErr.Body.Error == "" {
			apiErr.Body.Error = strings.TrimSpace(string(body))
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// SubmitOptions tune a submission.
type SubmitOptions struct {
	// Priority orders the queue (higher runs earlier; default 0).
	Priority int
	// TraceID propagates an existing trace onto the job (X-Trace-ID);
	// empty lets the daemon mint one.
	TraceID string
}

// Submit POSTs a raw experiment-descriptor JSON and returns the
// (possibly deduplicated) job view.
func (c *Client) Submit(ctx context.Context, descriptorJSON []byte, opts SubmitOptions) (serve.JobView, error) {
	u := c.base + "/v1/jobs"
	if opts.Priority != 0 {
		u += "?priority=" + url.QueryEscape(strconv.Itoa(opts.Priority))
	}
	var v serve.JobView
	// Safe to retry: job IDs are content-addressed, so a duplicate POST
	// deduplicates onto the job the lost response created.
	err := c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(descriptorJSON))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.Name != "" {
			req.Header.Set("X-UDPSim-Client", c.Name)
		}
		if opts.TraceID != "" {
			req.Header.Set("X-Trace-ID", opts.TraceID)
		}
		return c.do(req, &v)
	})
	return v, err
}

// Job fetches a job's current view.
func (c *Client) Job(ctx context.Context, id string) (serve.JobView, error) {
	var v serve.JobView
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), &v)
	return v, err
}

// getJSON is the retried GET-and-decode shared by the read-only calls.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	return c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		return c.do(req, out)
	})
}

// Jobs lists every job the daemon knows, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]serve.JobView, error) {
	var v serve.JobPage
	err := c.getJSON(ctx, "/v1/jobs", &v)
	return v.Jobs, err
}

// JobsPage fetches one page of the job list in admission order: up to
// limit jobs after the cursor (empty = from the start). The returned
// cursor is non-empty while more pages remain — pass it back as after.
func (c *Client) JobsPage(ctx context.Context, limit int, after string) ([]serve.JobView, string, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if after != "" {
		q.Set("after", after)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var v serve.JobPage
	err := c.getJSON(ctx, path, &v)
	return v.Jobs, v.NextAfter, err
}

// Cancel requests job cancellation.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+url.PathEscape(id), nil)
		if err != nil {
			return err
		}
		return c.do(req, nil)
	})
}

// Result fetches a content-addressed result record by address (the
// result_key of a job cell).
func (c *Client) Result(ctx context.Context, addr string) (serve.StoredResult, error) {
	var v serve.StoredResult
	err := c.getJSON(ctx, "/v1/results/"+url.PathEscape(addr), &v)
	return v, err
}

// Health fetches GET /healthz (uptime, queue depth, drain state).
func (c *Client) Health(ctx context.Context) (serve.Health, error) {
	var h serve.Health
	err := c.getJSON(ctx, "/healthz", &h)
	return h, err
}

// Metrics scrapes GET /metrics and returns the parsed samples.
func (c *Client) Metrics(ctx context.Context) ([]MetricSample, error) {
	var samples []MetricSample
	err := c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			return &APIError{StatusCode: resp.StatusCode,
				Body: serve.APIError{Error: strings.TrimSpace(string(body))}}
		}
		samples, err = ParseMetrics(io.LimitReader(resp.Body, 16<<20))
		return err
	})
	return samples, err
}

// Ready polls GET /readyz once.
func (c *Client) Ready(ctx context.Context) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// WaitReady polls /readyz until it succeeds or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		if err := c.Ready(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stream subscribes to a job's SSE event stream from afterID (0 = the
// beginning, including replayed history) and invokes fn per event
// until the terminal event arrives (returning nil), fn returns an
// error (propagated), or ctx ends. The terminal JobView, when reached,
// is returned for convenience.
//
// A dropped connection reconnects automatically with Last-Event-ID set
// to the last event delivered, so fn sees each event exactly once
// across reconnects. Receiving any event refills the retry budget —
// only MaxAttempts consecutive dead connections surface the error.
func (c *Client) Stream(ctx context.Context, id string, afterID int64, fn func(serve.Event) error) (*serve.JobView, error) {
	data, err := c.streamEvents(ctx, "/v1/jobs/"+url.PathEscape(id)+"/events", afterID, fn)
	if err != nil {
		return nil, err
	}
	var v serve.JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("udpsimd: decoding terminal event: %w", err)
	}
	return &v, nil
}

// streamEvents is the reconnecting SSE loop shared by the job and
// tune-run streams: it returns the raw data of the terminal event once
// one arrives, resuming via Last-Event-ID across dropped connections.
func (c *Client) streamEvents(ctx context.Context, path string, afterID int64, fn func(serve.Event) error) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	last := afterID
	failures := 0
	for {
		v, lastSeen, err := c.streamOnce(ctx, path, last, fn)
		if err == nil {
			return v, nil
		}
		if lastSeen > last {
			last, failures = lastSeen, 0
		}
		failures++
		if !retryableStream(err) || failures >= c.attempts() || ctx.Err() != nil {
			var cb *callbackError
			if errors.As(err, &cb) {
				return nil, cb.err // the caller's own error, unwrapped
			}
			return nil, err
		}
		if sleepCtx(ctx, backoffDelay(failures)) != nil {
			return nil, err
		}
	}
}

// callbackError marks an error raised by the caller's event callback
// — always final, never a reason to reconnect.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// retryableStream classifies a dropped SSE connection: transport
// errors and mid-stream EOFs (ErrStreamEnded) are reconnectable;
// anything the daemon answered deliberately (404 unknown job, 400 bad
// cursor) and caller-side errors (fn's error, context cancellation)
// are final.
func retryableStream(err error) bool {
	var cb *callbackError
	if errors.As(err, &cb) {
		return false
	}
	return errors.Is(err, ErrStreamEnded) || retryable(err)
}

// streamOnce runs a single SSE connection against path. lastSeen
// reports the highest event ID dispatched to fn on this connection
// (afterID when none were), so the caller can resume without
// replaying; terminal carries the terminal event's raw JSON.
func (c *Client) streamOnce(ctx context.Context, path string, afterID int64, fn func(serve.Event) error) (terminal []byte, lastSeen int64, err error) {
	lastSeen = afterID
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, lastSeen, err
	}
	if afterID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(afterID, 10))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, lastSeen, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		apiErr := &APIError{StatusCode: resp.StatusCode}
		if jsonErr := json.Unmarshal(body, &apiErr.Body); jsonErr != nil || apiErr.Body.Error == "" {
			apiErr.Body.Error = strings.TrimSpace(string(body))
		}
		return nil, lastSeen, apiErr
	}
	var (
		sc      = bufio.NewScanner(resp.Body)
		evType  string
		evID    int64
		evData  []byte
		haveAny bool
	)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	dispatch := func() ([]byte, bool, error) {
		if !haveAny {
			return nil, false, nil
		}
		ev := serve.Event{ID: evID, Type: evType, Data: append([]byte(nil), evData...)}
		evType, evID, evData, haveAny = "", 0, nil, false
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, true, &callbackError{err}
			}
		}
		if ev.ID > lastSeen {
			lastSeen = ev.ID
		}
		if ev.IsTerminal() {
			return ev.Data, true, nil
		}
		return nil, false, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			v, stop, err := dispatch()
			if stop || err != nil {
				return v, lastSeen, err
			}
		case strings.HasPrefix(line, ":"): // comment / keepalive
		case strings.HasPrefix(line, "event: "):
			evType, haveAny = line[len("event: "):], true
		case strings.HasPrefix(line, "id: "):
			evID, _ = strconv.ParseInt(line[len("id: "):], 10, 64)
			haveAny = true
		case strings.HasPrefix(line, "data: "):
			evData = append(evData, line[len("data: "):]...)
			haveAny = true
		}
	}
	if err := sc.Err(); err != nil {
		// Surface the caller's cancellation as such; transport-level
		// read errors mean the daemon dropped us mid-stream.
		if ctx.Err() != nil {
			return nil, lastSeen, ctx.Err()
		}
		return nil, lastSeen, fmt.Errorf("%w: %w", ErrStreamEnded, err)
	}
	// Stream ended without a terminal event (daemon went away).
	return nil, lastSeen, ErrStreamEnded
}

// Wait streams the job's events until terminal and returns the final
// view — the simplest "submit then block" client loop.
func (c *Client) Wait(ctx context.Context, id string) (*serve.JobView, error) {
	return c.Stream(ctx, id, 0, nil)
}

// Tune POSTs a raw parameter-space JSON to /v1/tune and returns the
// (possibly deduplicated) tune-run view. Runs are content-addressed on
// the space, so retrying a lost response attaches to the run it
// created.
func (c *Client) Tune(ctx context.Context, spaceJSON []byte, opts SubmitOptions) (serve.TuneView, error) {
	var v serve.TuneView
	err := c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tune", bytes.NewReader(spaceJSON))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.Name != "" {
			req.Header.Set("X-UDPSim-Client", c.Name)
		}
		if opts.TraceID != "" {
			req.Header.Set("X-Trace-ID", opts.TraceID)
		}
		return c.do(req, &v)
	})
	return v, err
}

// TuneRun fetches a tune run's current view (stats and incumbent).
func (c *Client) TuneRun(ctx context.Context, id string) (serve.TuneView, error) {
	var v serve.TuneView
	err := c.getJSON(ctx, "/v1/tune/"+url.PathEscape(id), &v)
	return v, err
}

// TuneRuns lists every tune run the daemon knows, oldest first.
func (c *Client) TuneRuns(ctx context.Context) ([]serve.TuneView, error) {
	var v struct {
		Runs []serve.TuneView `json:"runs"`
	}
	err := c.getJSON(ctx, "/v1/tune", &v)
	return v.Runs, err
}

// TuneCancel requests cancellation of a tune run.
func (c *Client) TuneCancel(ctx context.Context, id string) error {
	return c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/tune/"+url.PathEscape(id), nil)
		if err != nil {
			return err
		}
		return c.do(req, nil)
	})
}

// TuneStream subscribes to a tune run's SSE event stream from afterID
// (0 = the beginning) and invokes fn per event — probes, generation
// summaries, incumbent updates — until the terminal event arrives,
// reconnecting with Last-Event-ID like Stream does for jobs.
func (c *Client) TuneStream(ctx context.Context, id string, afterID int64, fn func(serve.Event) error) (*serve.TuneView, error) {
	data, err := c.streamEvents(ctx, "/v1/tune/"+url.PathEscape(id)+"/events", afterID, fn)
	if err != nil {
		return nil, err
	}
	var v serve.TuneView
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("udpsimd: decoding terminal tune event: %w", err)
	}
	return &v, nil
}

// WaitTune streams a tune run's events until terminal and returns the
// final view.
func (c *Client) WaitTune(ctx context.Context, id string) (*serve.TuneView, error) {
	return c.TuneStream(ctx, id, 0, nil)
}
