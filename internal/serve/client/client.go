// Package client is the thin Go client for the udpsimd daemon: submit
// experiment descriptors, poll or stream job progress over SSE, and
// fetch content-addressed results. It speaks only the wire types of
// internal/serve, never the daemon's internals.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"udpsim/internal/serve"
)

// DefaultTimeout bounds non-streaming requests when the caller does
// not override Client.Timeout.
const DefaultTimeout = 30 * time.Second

// Client talks to one udpsimd base URL (e.g. "http://127.0.0.1:8091").
type Client struct {
	base string
	http *http.Client
	// Name identifies this client to the daemon's per-client fair
	// queue (X-UDPSim-Client). Empty means the daemon falls back to
	// the remote address.
	Name string
	// Timeout caps each non-streaming call (Submit, Job, Jobs, Cancel,
	// Result, Ready, Health, Metrics); it is applied per request on top
	// of the caller's context, so a hung daemon fails the call instead
	// of blocking forever. SSE streams (Stream, Wait) are exempt —
	// they are long-lived by design and governed only by their context.
	// <= 0 disables the cap.
	Timeout time.Duration
}

// New builds a client. hc == nil uses a dedicated default client with
// no overall timeout (SSE streams are long-lived; Client.Timeout — 30s
// by default — bounds the non-streaming calls instead).
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: hc, Timeout: DefaultTimeout}
}

// reqCtx derives the per-request context for a non-streaming call.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.Timeout)
}

// Base returns the daemon base URL the client talks to.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response, decoded.
type APIError struct {
	StatusCode int
	Body       serve.APIError
}

func (e *APIError) Error() string {
	if len(e.Body.Fields) > 0 {
		return fmt.Sprintf("udpsimd: HTTP %d: %s (%d invalid fields)",
			e.StatusCode, e.Body.Error, len(e.Body.Fields))
	}
	return fmt.Sprintf("udpsimd: HTTP %d: %s", e.StatusCode, e.Body.Error)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		if jsonErr := json.Unmarshal(body, &apiErr.Body); jsonErr != nil || apiErr.Body.Error == "" {
			apiErr.Body.Error = strings.TrimSpace(string(body))
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// SubmitOptions tune a submission.
type SubmitOptions struct {
	// Priority orders the queue (higher runs earlier; default 0).
	Priority int
	// TraceID propagates an existing trace onto the job (X-Trace-ID);
	// empty lets the daemon mint one.
	TraceID string
}

// Submit POSTs a raw experiment-descriptor JSON and returns the
// (possibly deduplicated) job view.
func (c *Client) Submit(ctx context.Context, descriptorJSON []byte, opts SubmitOptions) (serve.JobView, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	u := c.base + "/v1/jobs"
	if opts.Priority != 0 {
		u += "?priority=" + url.QueryEscape(strconv.Itoa(opts.Priority))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(descriptorJSON))
	if err != nil {
		return serve.JobView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Name != "" {
		req.Header.Set("X-UDPSim-Client", c.Name)
	}
	if opts.TraceID != "" {
		req.Header.Set("X-Trace-ID", opts.TraceID)
	}
	var v serve.JobView
	err = c.do(req, &v)
	return v, err
}

// Job fetches a job's current view.
func (c *Client) Job(ctx context.Context, id string) (serve.JobView, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return serve.JobView{}, err
	}
	var v serve.JobView
	err = c.do(req, &v)
	return v, err
}

// Jobs lists every job the daemon knows, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]serve.JobView, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	var v struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	err = c.do(req, &v)
	return v.Jobs, err
}

// Cancel requests job cancellation.
func (c *Client) Cancel(ctx context.Context, id string) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Result fetches a content-addressed result record by address (the
// result_key of a job cell).
func (c *Client) Result(ctx context.Context, addr string) (serve.StoredResult, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/results/"+url.PathEscape(addr), nil)
	if err != nil {
		return serve.StoredResult{}, err
	}
	var v serve.StoredResult
	err = c.do(req, &v)
	return v, err
}

// Health fetches GET /healthz (uptime, queue depth, drain state).
func (c *Client) Health(ctx context.Context) (serve.Health, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return serve.Health{}, err
	}
	var h serve.Health
	err = c.do(req, &h)
	return h, err
}

// Metrics scrapes GET /metrics and returns the parsed samples.
func (c *Client) Metrics(ctx context.Context) ([]MetricSample, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, &APIError{StatusCode: resp.StatusCode,
			Body: serve.APIError{Error: strings.TrimSpace(string(body))}}
	}
	return ParseMetrics(io.LimitReader(resp.Body, 16<<20))
}

// Ready polls GET /readyz once.
func (c *Client) Ready(ctx context.Context) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// WaitReady polls /readyz until it succeeds or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		if err := c.Ready(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stream subscribes to a job's SSE event stream from afterID (0 = the
// beginning, including replayed history) and invokes fn per event
// until the terminal event arrives (returning nil), fn returns an
// error (propagated), or ctx ends. The terminal JobView, when reached,
// is returned for convenience.
func (c *Client) Stream(ctx context.Context, id string, afterID int64, fn func(serve.Event) error) (*serve.JobView, error) {
	u := fmt.Sprintf("%s/v1/jobs/%s/events", c.base, url.PathEscape(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if afterID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(afterID, 10))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		apiErr := &APIError{StatusCode: resp.StatusCode}
		if jsonErr := json.Unmarshal(body, &apiErr.Body); jsonErr != nil || apiErr.Body.Error == "" {
			apiErr.Body.Error = strings.TrimSpace(string(body))
		}
		return nil, apiErr
	}
	var (
		sc      = bufio.NewScanner(resp.Body)
		evType  string
		evID    int64
		evData  []byte
		haveAny bool
	)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	dispatch := func() (*serve.JobView, bool, error) {
		if !haveAny {
			return nil, false, nil
		}
		ev := serve.Event{ID: evID, Type: evType, Data: append([]byte(nil), evData...)}
		evType, evID, evData, haveAny = "", 0, nil, false
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, true, err
			}
		}
		if ev.IsTerminal() {
			var v serve.JobView
			if err := json.Unmarshal(ev.Data, &v); err != nil {
				return nil, true, fmt.Errorf("udpsimd: decoding terminal event: %w", err)
			}
			return &v, true, nil
		}
		return nil, false, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			v, stop, err := dispatch()
			if stop || err != nil {
				return v, err
			}
		case strings.HasPrefix(line, ":"): // comment / keepalive
		case strings.HasPrefix(line, "event: "):
			evType, haveAny = line[len("event: "):], true
		case strings.HasPrefix(line, "id: "):
			evID, _ = strconv.ParseInt(line[len("id: "):], 10, 64)
			haveAny = true
		case strings.HasPrefix(line, "data: "):
			evData = append(evData, line[len("data: "):]...)
			haveAny = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Stream ended without a terminal event (daemon went away).
	return nil, errors.New("udpsimd: event stream ended before the job finished")
}

// Wait streams the job's events until terminal and returns the final
// view — the simplest "submit then block" client loop.
func (c *Client) Wait(ctx context.Context, id string) (*serve.JobView, error) {
	return c.Stream(ctx, id, 0, nil)
}
