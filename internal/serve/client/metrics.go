package client

// Prometheus text-exposition parsing — just enough for udpstat and
// tests to consume the daemon's /metrics without a Prometheus
// dependency: samples with labels, and percentile estimation over
// cumulative histogram buckets.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricSample is one exposition line: a metric name, its label set
// (nil when unlabeled) and the sample value. Histogram series arrive
// as their underlying _bucket/_sum/_count samples.
type MetricSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for a label key ("" when absent).
func (s MetricSample) Label(key string) string { return s.Labels[key] }

// ParseMetrics reads Prometheus text exposition format: comment lines
// (# HELP/# TYPE) are skipped, sample lines are decoded with label
// unescaping. Unparseable lines fail loudly — a scrape that half
// parses would silently drop series.
func ParseMetrics(r io.Reader) ([]MetricSample, error) {
	var out []MetricSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("client: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (MetricSample, error) {
	var s MetricSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		labels, tail, err := parseLabels(rest[i:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name, rest = rest[:sp], rest[sp:]
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	// valStr[1], if present, is an optional timestamp — ignored.
	v, err := strconv.ParseFloat(valStr[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr[0], err)
	}
	s.Value = v
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	return s, nil
}

// parseLabels decodes a {k="v",...} block starting at in[0] == '{' and
// returns the remainder of the line after the closing brace.
func parseLabels(in string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block in %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
	}
}

// canonicalLabels renders a label set in a canonical form — keys
// sorted, values escaped — so two samples with the same identity
// compare equal regardless of map iteration or exposition order.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	return b.String()
}

// MergeScrapes folds per-node scrapes into one fleet-wide sample set:
// samples sharing a metric name and canonical label set sum, which is
// exactly right for counters and for cumulative histogram series
// (_bucket/_sum/_count all add). NaN samples — Prometheus staleness
// markers — are dropped rather than poisoning the sums. Duplicate
// family declarations and conflicting HELP text across nodes cannot
// corrupt the merge because ParseMetrics already discards comment
// lines; duplicate sample lines within one scrape sum like any others.
// The result is deterministic: sorted by name, then canonical labels.
//
// Gauges merge by summing too. For additive gauges (queue depth, bytes
// cached) the sum is the fleet total; for the rare non-additive gauge
// the caller should read per-node scrapes instead.
func MergeScrapes(scrapes ...[]MetricSample) []MetricSample {
	merged := map[string]*MetricSample{}
	for _, scrape := range scrapes {
		for _, s := range scrape {
			if math.IsNaN(s.Value) {
				continue
			}
			key := s.Name + "{" + canonicalLabels(s.Labels) + "}"
			if sl, ok := merged[key]; ok {
				sl.Value += s.Value
				continue
			}
			cp := MetricSample{Name: s.Name, Value: s.Value}
			if len(s.Labels) > 0 {
				cp.Labels = make(map[string]string, len(s.Labels))
				for k, v := range s.Labels {
					cp.Labels[k] = v
				}
			}
			merged[key] = &cp
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]MetricSample, 0, len(keys))
	for _, k := range keys {
		out = append(out, *merged[k])
	}
	return out
}

// MetricValue returns the value of the first sample matching name and
// every given label (extra labels on the sample are allowed). ok is
// false when no sample matches.
func MetricValue(samples []MetricSample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramPercentile estimates the p-th percentile (p in [0,1]) of a
// Prometheus histogram from its cumulative <name>_bucket samples,
// optionally filtered by labels (the "le" label is handled here). The
// estimate is the smallest bucket bound whose cumulative count covers
// p of the samples — an upper bound, same contract as
// stats.Histogram.Percentile. ok is false when the histogram is absent
// or empty.
func HistogramPercentile(samples []MetricSample, name string, labels map[string]string, p float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		match := true
		for k, v := range labels {
			if k == "le" {
				continue
			}
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		leStr := s.Labels["le"]
		le := math.Inf(1)
		if leStr != "+Inf" {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = v
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := p * total
	for _, b := range buckets {
		if b.cum >= need && b.cum > 0 {
			return b.le, true
		}
	}
	return buckets[len(buckets)-1].le, true
}
