package client

import (
	"strings"
	"testing"
)

func TestParseMetrics(t *testing.T) {
	in := `# HELP up whether the target is up
# TYPE up gauge
up 1
plain_total 42 1700000000000
labeled_total{route="/v1/jobs",method="POST",code="202"} 7
escaped_total{path="a\\b\"c\nd"} 3
float_value 0.25
`
	samples, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(samples))
	}
	if v, ok := MetricValue(samples, "up", nil); !ok || v != 1 {
		t.Fatalf("up = %v (present %v)", v, ok)
	}
	// Trailing timestamps are ignored, not parsed into the value.
	if v, ok := MetricValue(samples, "plain_total", nil); !ok || v != 42 {
		t.Fatalf("plain_total = %v (present %v), want 42", v, ok)
	}
	if v, ok := MetricValue(samples, "labeled_total",
		map[string]string{"route": "/v1/jobs", "code": "202"}); !ok || v != 7 {
		t.Fatalf("labeled_total subset-match = %v (present %v), want 7", v, ok)
	}
	if _, ok := MetricValue(samples, "labeled_total",
		map[string]string{"route": "/nope"}); ok {
		t.Fatal("label mismatch should not match")
	}
	// Escapes decode back to the raw label value.
	if v, ok := MetricValue(samples, "escaped_total",
		map[string]string{"path": "a\\b\"c\nd"}); !ok || v != 3 {
		t.Fatalf("escaped label round-trip = %v (present %v), want 3", v, ok)
	}
	if v, ok := MetricValue(samples, "float_value", nil); !ok || v != 0.25 {
		t.Fatalf("float_value = %v (present %v)", v, ok)
	}
}

func TestParseMetricsFailsLoudly(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"bad_value x\n",
		`unterminated{a="b 1` + "\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) should fail", bad)
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	in := `lat_bucket{le="2"} 5
lat_bucket{le="4"} 8
lat_bucket{le="8"} 10
lat_bucket{le="+Inf"} 10
lat_sum 37
lat_count 10
other_bucket{le="2",mech="udp"} 1
other_bucket{le="+Inf",mech="udp"} 1
`
	samples, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := HistogramPercentile(samples, "lat", nil, 0.5); !ok || p != 2 {
		t.Fatalf("p50 = %v (present %v), want 2", p, ok)
	}
	if p, ok := HistogramPercentile(samples, "lat", nil, 0.79); !ok || p != 4 {
		t.Fatalf("p79 = %v (present %v), want 4", p, ok)
	}
	if p, ok := HistogramPercentile(samples, "lat", nil, 1.0); !ok || p != 8 {
		t.Fatalf("p100 = %v (present %v), want 8 (everything fits in le=8)", p, ok)
	}
	// Label filtering picks the right family slice.
	if p, ok := HistogramPercentile(samples, "other",
		map[string]string{"mech": "udp"}, 0.5); !ok || p != 2 {
		t.Fatalf("labeled p50 = %v (present %v), want 2", p, ok)
	}
	if _, ok := HistogramPercentile(samples, "absent", nil, 0.5); ok {
		t.Fatal("absent histogram should report !ok")
	}
}
