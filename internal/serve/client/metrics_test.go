package client

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseMetrics(t *testing.T) {
	in := `# HELP up whether the target is up
# TYPE up gauge
up 1
plain_total 42 1700000000000
labeled_total{route="/v1/jobs",method="POST",code="202"} 7
escaped_total{path="a\\b\"c\nd"} 3
float_value 0.25
`
	samples, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(samples))
	}
	if v, ok := MetricValue(samples, "up", nil); !ok || v != 1 {
		t.Fatalf("up = %v (present %v)", v, ok)
	}
	// Trailing timestamps are ignored, not parsed into the value.
	if v, ok := MetricValue(samples, "plain_total", nil); !ok || v != 42 {
		t.Fatalf("plain_total = %v (present %v), want 42", v, ok)
	}
	if v, ok := MetricValue(samples, "labeled_total",
		map[string]string{"route": "/v1/jobs", "code": "202"}); !ok || v != 7 {
		t.Fatalf("labeled_total subset-match = %v (present %v), want 7", v, ok)
	}
	if _, ok := MetricValue(samples, "labeled_total",
		map[string]string{"route": "/nope"}); ok {
		t.Fatal("label mismatch should not match")
	}
	// Escapes decode back to the raw label value.
	if v, ok := MetricValue(samples, "escaped_total",
		map[string]string{"path": "a\\b\"c\nd"}); !ok || v != 3 {
		t.Fatalf("escaped label round-trip = %v (present %v), want 3", v, ok)
	}
	if v, ok := MetricValue(samples, "float_value", nil); !ok || v != 0.25 {
		t.Fatalf("float_value = %v (present %v)", v, ok)
	}
}

func TestParseMetricsFailsLoudly(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"bad_value x\n",
		`unterminated{a="b 1` + "\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) should fail", bad)
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	in := `lat_bucket{le="2"} 5
lat_bucket{le="4"} 8
lat_bucket{le="8"} 10
lat_bucket{le="+Inf"} 10
lat_sum 37
lat_count 10
other_bucket{le="2",mech="udp"} 1
other_bucket{le="+Inf",mech="udp"} 1
`
	samples, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := HistogramPercentile(samples, "lat", nil, 0.5); !ok || p != 2 {
		t.Fatalf("p50 = %v (present %v), want 2", p, ok)
	}
	if p, ok := HistogramPercentile(samples, "lat", nil, 0.79); !ok || p != 4 {
		t.Fatalf("p79 = %v (present %v), want 4", p, ok)
	}
	if p, ok := HistogramPercentile(samples, "lat", nil, 1.0); !ok || p != 8 {
		t.Fatalf("p100 = %v (present %v), want 8 (everything fits in le=8)", p, ok)
	}
	// Label filtering picks the right family slice.
	if p, ok := HistogramPercentile(samples, "other",
		map[string]string{"mech": "udp"}, 0.5); !ok || p != 2 {
		t.Fatalf("labeled p50 = %v (present %v), want 2", p, ok)
	}
	if _, ok := HistogramPercentile(samples, "absent", nil, 0.5); ok {
		t.Fatal("absent histogram should report !ok")
	}
}

// TestParseMetricsTable drives the parser across the format corners a
// real multi-node scrape produces, one case per corner.
func TestParseMetricsTable(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    []MetricSample
		wantErr bool
	}{
		{
			name: "bare counter",
			in:   "udpsim_cache_hits 42\n",
			want: []MetricSample{{Name: "udpsim_cache_hits", Value: 42}},
		},
		{
			name: "labeled sample",
			in:   `udpsimd_run_duration_us_bucket{mechanism="udp",le="1000"} 7` + "\n",
			want: []MetricSample{{Name: "udpsimd_run_duration_us_bucket",
				Labels: map[string]string{"mechanism": "udp", "le": "1000"}, Value: 7}},
		},
		{
			name: "comments and blanks skipped",
			in: "# HELP m helps\n# TYPE m counter\n\nm 1\n" +
				"# HELP m a CONFLICTING help string\nm 2\n",
			want: []MetricSample{{Name: "m", Value: 1}, {Name: "m", Value: 2}},
		},
		{
			name: "special float values",
			in:   "a NaN\nb +Inf\nc -12.5e3\n",
			want: []MetricSample{{Name: "a", Value: math.NaN()},
				{Name: "b", Value: math.Inf(1)}, {Name: "c", Value: -12500}},
		},
		{name: "no value", in: "just_a_name\n", wantErr: true},
		{name: "bad value", in: "m notanumber\n", wantErr: true},
		{name: "empty name", in: `{k="v"} 1` + "\n", wantErr: true},
		{name: "unterminated labels", in: `m{k="v" 1` + "\n", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseMetrics(strings.NewReader(tc.in))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseMetrics(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseMetrics(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d samples %v, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				w := tc.want[i]
				if got[i].Name != w.Name || !sameLabels(got[i].Labels, w.Labels) {
					t.Fatalf("sample %d = %+v, want %+v", i, got[i], w)
				}
				if math.IsNaN(w.Value) != math.IsNaN(got[i].Value) ||
					(!math.IsNaN(w.Value) && got[i].Value != w.Value) {
					t.Fatalf("sample %d value = %v, want %v", i, got[i].Value, w.Value)
				}
			}
		})
	}
}

func sameLabels(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestMergeScrapesFleet merges two realistic node scrapes: duplicate
// families sum, conflicting HELP text is harmless, label order does
// not split identities, and NaN staleness markers drop out.
func TestMergeScrapesFleet(t *testing.T) {
	node1 := `
# HELP udpsim_cache_hits Simulation result cache hits.
# TYPE udpsim_cache_hits counter
udpsim_cache_hits 10
udpsimd_jobs_completed 3
udpsimd_run_duration_us_bucket{mechanism="udp",le="1000"} 2
udpsimd_run_duration_us_bucket{mechanism="udp",le="+Inf"} 5
udpsimd_run_duration_us_count{mechanism="udp"} 5
stale_gauge NaN
`
	node2 := `
# HELP udpsim_cache_hits A DIFFERENT help string (conflict).
# TYPE udpsim_cache_hits counter
udpsim_cache_hits 32
udpsimd_jobs_completed 4
udpsimd_run_duration_us_bucket{le="1000",mechanism="udp"} 1
udpsimd_run_duration_us_bucket{le="+Inf",mechanism="udp"} 1
udpsimd_run_duration_us_count{mechanism="udp"} 1
only_on_node2 7
`
	s1, err := ParseMetrics(strings.NewReader(node1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseMetrics(strings.NewReader(node2))
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeScrapes(s1, s2)

	if v, ok := MetricValue(merged, "udpsim_cache_hits", nil); !ok || v != 42 {
		t.Fatalf("cache_hits = %v,%v, want 42 (10+32 across conflicting HELP)", v, ok)
	}
	if v, ok := MetricValue(merged, "udpsimd_jobs_completed", nil); !ok || v != 7 {
		t.Fatalf("jobs_completed = %v, want 7", v)
	}
	// The two nodes wrote the same label set in different orders — one
	// merged identity, not two.
	if v, ok := MetricValue(merged, "udpsimd_run_duration_us_bucket",
		map[string]string{"mechanism": "udp", "le": "1000"}); !ok || v != 3 {
		t.Fatalf("bucket le=1000 = %v, want 3 (2+1 across label orders)", v)
	}
	n := 0
	for _, s := range merged {
		if s.Name == "udpsimd_run_duration_us_bucket" && s.Label("le") == "1000" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("label order split one identity into %d samples", n)
	}
	// Staleness markers must not survive the merge.
	if _, ok := MetricValue(merged, "stale_gauge", nil); ok {
		t.Fatal("NaN staleness marker survived the merge")
	}
	if v, ok := MetricValue(merged, "only_on_node2", nil); !ok || v != 7 {
		t.Fatalf("single-node sample = %v,%v, want 7", v, ok)
	}
	// Percentile estimation must keep working on the merged histogram.
	if p, ok := HistogramPercentile(merged, "udpsimd_run_duration_us",
		map[string]string{"mechanism": "udp"}, 0.5); !ok || p != 1000 {
		t.Fatalf("merged p50 = %v,%v, want 1000", p, ok)
	}
}

// TestMergeScrapesDeterministic — same inputs in any order produce the
// identical merged slice (the fleet view must not flap between
// redraws).
func TestMergeScrapesDeterministic(t *testing.T) {
	a := []MetricSample{
		{Name: "z_last", Value: 1},
		{Name: "a_first", Labels: map[string]string{"x": "2"}, Value: 2},
		{Name: "a_first", Labels: map[string]string{"x": "1"}, Value: 3},
	}
	b := []MetricSample{{Name: "m_mid", Value: 4}}
	m1 := MergeScrapes(a, b)
	m2 := MergeScrapes(b, a)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("merge order changed the output:\n%v\n%v", m1, m2)
	}
	for i := 1; i < len(m1); i++ {
		if m1[i-1].Name > m1[i].Name {
			t.Fatalf("merged output not sorted: %v", m1)
		}
	}
}

// TestMergeScrapesDoesNotAliasInput — mutating the merged samples must
// not write through to the caller's parsed scrapes.
func TestMergeScrapesDoesNotAliasInput(t *testing.T) {
	in := []MetricSample{{Name: "m", Labels: map[string]string{"k": "v"}, Value: 1}}
	merged := MergeScrapes(in)
	merged[0].Labels["k"] = "mutated"
	if in[0].Labels["k"] != "v" {
		t.Fatal("MergeScrapes aliased the input label map")
	}
}

// FuzzParseMetrics: arbitrary scrape text must never panic the parser,
// and whatever parses must survive a merge round.
func FuzzParseMetrics(f *testing.F) {
	f.Add("udpsim_cache_hits 42\n")
	f.Add(`udpsimd_run_duration_us_bucket{mechanism="udp",le="+Inf"} 5` + "\n")
	f.Add("# HELP m h\n# TYPE m counter\nm 1\nm 2\n")
	f.Add(`m{k="a\"b\\c\nd"} NaN 123456789` + "\n")
	f.Add("m{} 1\n")
	f.Add("{} 1\n")
	f.Add(`m{k="v"`)
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseMetrics(strings.NewReader(in))
		if err != nil {
			return
		}
		merged := MergeScrapes(samples, samples)
		if len(merged) > len(samples) {
			t.Fatalf("merge grew %d samples to %d", len(samples), len(merged))
		}
		for _, s := range merged {
			if s.Name == "" {
				t.Fatal("merged sample with empty name")
			}
			if math.IsNaN(s.Value) {
				t.Fatal("NaN survived MergeScrapes")
			}
		}
		// Canonicalization must be stable: merging the merge never
		// changes the identity count.
		if again := MergeScrapes(merged); len(again) != len(merged) {
			t.Fatalf("re-merge changed identity count %d -> %d", len(merged), len(again))
		}
	})
}
