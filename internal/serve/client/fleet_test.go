package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"udpsim/internal/experiments"
	"udpsim/internal/serve"
)

func fleetDescriptor(t *testing.T, workloads ...string) *experiments.Descriptor {
	t.Helper()
	d := &experiments.Descriptor{
		Name: "fleet-" + strings.Join(workloads, "-"), Workloads: workloads,
		Instructions: 60_000, Warmup: 20_000, Simpoints: 1,
		Configs: []experiments.ConfigSpec{
			{Label: "base", Mechanism: "baseline"},
			{Label: "udp", Mechanism: "udp"},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFleetFanOutMatchesLocal: a two-workload grid fanned across two
// daemons reassembles in the exact workload-major order a local run
// produces, with identical cell values.
func TestFleetFanOutMatchesLocal(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		st, err := serve.OpenStore(t.TempDir(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.NewServer(serve.ServerConfig{Store: st, Workers: 1})
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		urls = append(urls, hs.URL)
	}
	fleet, err := NewFleet(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Name = "fleet-test"

	d := fleetDescriptor(t, "mysql", "xgboost")
	got, err := fleet.Run(context.Background(), d, 0)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}

	want, err := experiments.RunDescriptor(d, nil, 0)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("fleet returned %d cells, local %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Workload != want[i].Workload || got[i].Label != want[i].Label {
			t.Fatalf("cell %d order: fleet %s/%s, local %s/%s",
				i, got[i].Workload, got[i].Label, want[i].Workload, want[i].Label)
		}
		if got[i].Result != want[i].Result {
			t.Fatalf("cell %s/%s differs:\nfleet: %+v\nlocal: %+v",
				got[i].Workload, got[i].Label, got[i].Result, want[i].Result)
		}
	}
}

// TestFleetFailsOverDeadNode: with one of two nodes refusing
// connections, every sub-descriptor still completes on the live one.
func TestFleetFailsOverDeadNode(t *testing.T) {
	st, err := serve.OpenStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.ServerConfig{Store: st, Workers: 1})
	live := httptest.NewServer(srv.Handler())
	defer live.Close()

	// Reserve an address and close it: connection refused from attempt 1.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	fleet, err := NewFleet([]string{deadURL, live.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the per-call retry budget so the dead node fails fast.
	for _, node := range fleet.Nodes() {
		fleet.clients[node].MaxAttempts = 1
	}

	d := fleetDescriptor(t, "mysql", "postgres")
	results, err := fleet.Run(context.Background(), d, 0)
	if err != nil {
		t.Fatalf("fleet run with a dead node: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d cells, want 4", len(results))
	}
	for _, r := range results {
		if r.Result.IPC <= 0 {
			t.Fatalf("cell %s/%s has no IPC", r.Workload, r.Label)
		}
	}
}

// TestFleetAllNodesDead — the failure names the last error instead of
// hanging or returning empty results.
func TestFleetAllNodesDead(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	fleet, err := NewFleet([]string{deadURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fleet.clients[deadURL].MaxAttempts = 1
	_, err = fleet.Run(context.Background(), fleetDescriptor(t, "mysql"), 0)
	if err == nil {
		t.Fatal("fleet run against a dead fleet succeeded")
	}
	if !strings.Contains(err.Error(), "every node failed") {
		t.Fatalf("error does not name the exhaustion: %v", err)
	}
}
