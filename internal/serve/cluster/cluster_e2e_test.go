package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
	"udpsim/internal/serve/cluster"
	"udpsim/internal/serve/placement"
)

// workerNode is one in-process worker daemon with its own store.
type workerNode struct {
	srv   *serve.Server
	hs    *httptest.Server
	store *serve.Store
	url   string
}

// testCluster is a coordinator fronting n workers, all in-process.
// The membership prober is never started: liveness changes flow only
// from the forwarder's MarkDead, keeping tests deterministic.
type testCluster struct {
	workers    []*workerNode
	members    *placement.Membership
	coord      *serve.Server
	coordStore *serve.Store
	coordHS    *httptest.Server
	client     *client.Client
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := serve.OpenStore(t.TempDir(), 0, nil)
		if err != nil {
			t.Fatalf("worker %d store: %v", i, err)
		}
		srv := serve.NewServer(serve.ServerConfig{Store: st, Workers: 1})
		hs := httptest.NewServer(srv.Handler())
		w := &workerNode{srv: srv, hs: hs, store: st, url: hs.URL}
		tc.workers = append(tc.workers, w)
		urls[i] = hs.URL
	}
	tc.members = placement.NewMembership(urls, placement.Config{})

	var err error
	tc.coordStore, err = serve.OpenStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatalf("coordinator store: %v", err)
	}
	tc.coord = serve.NewServer(serve.ServerConfig{Store: tc.coordStore, Workers: 2})
	fwd := &cluster.Forwarder{
		Members:   tc.members,
		Local:     tc.coord.LocalRunner(),
		Transport: tc.coordStore,
		OnSpan:    tc.coord.RecordSpan,
	}
	tc.coord.SetRunner(fwd)
	tc.coord.SetCluster(tc.members, nil)
	tc.coordHS = httptest.NewServer(tc.coord.Handler())
	tc.client = client.New(tc.coordHS.URL, nil)

	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = tc.coord.Drain(ctx)
		tc.coordHS.Close()
		for _, w := range tc.workers {
			wctx, wcancel := context.WithTimeout(context.Background(), 15*time.Second)
			_ = w.srv.Drain(wctx)
			wcancel()
			w.hs.Close()
		}
	})
	return tc
}

func clusterDescriptor(name string, instructions uint64) []byte {
	return []byte(fmt.Sprintf(`{
		"name": %q,
		"workloads": ["mysql"],
		"instructions": %d,
		"warmup": 20000,
		"simpoints": 1,
		"configs": [
			{"label": "base", "mechanism": "baseline"},
			{"label": "udp", "mechanism": "udp"}
		]
	}`, name, instructions))
}

// TestClusterForwardByteIdentical: a job submitted to the coordinator
// runs on exactly one worker, each grid cell simulates exactly once
// fleet-wide, and the records a single-node daemon produces for the
// same descriptor are byte-identical to the cluster's.
func TestClusterForwardByteIdentical(t *testing.T) {
	experiments.FlushResultCache()
	tc := newTestCluster(t, 2)

	missesBefore := obs.CacheMisses.Value()
	forwardedBefore := obs.ForwardedJobs.Value()
	desc := clusterDescriptor("cluster-fwd", 63_000)

	v, err := tc.client.Submit(context.Background(), desc, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := tc.client.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.JobDone {
		t.Fatalf("job state %s (%s), want done", final.State, final.Error)
	}
	if len(final.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(final.Cells))
	}
	for _, cell := range final.Cells {
		if cell.IPC <= 0 {
			t.Fatalf("cell %s/%s missing IPC", cell.Workload, cell.Label)
		}
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 2 {
		t.Fatalf("fleet-wide simulations = %d, want exactly 2 (one per unique cell)", d)
	}
	if d := obs.ForwardedJobs.Value() - forwardedBefore; d != 1 {
		t.Fatalf("forwarded jobs = %v, want 1", d)
	}

	// The coordinator's own store must be able to serve every cell
	// (the forwarder writes fetched results through its transport).
	coordRecords := map[string][]byte{}
	for _, cell := range final.Cells {
		sr, err := tc.client.Result(context.Background(), cell.ResultKey)
		if err != nil {
			t.Fatalf("coordinator result %s: %v", cell.ResultKey, err)
		}
		blob, _ := json.Marshal(sr)
		coordRecords[cell.ResultKey] = blob
	}

	// Byte-identity vs. a fresh single-node daemon re-simulating from
	// scratch (in-memory memo flushed so it cannot shortcut).
	experiments.FlushResultCache()
	soloStore, err := serve.OpenStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	soloSrv := serve.NewServer(serve.ServerConfig{Store: soloStore, Workers: 1})
	soloHS := httptest.NewServer(soloSrv.Handler())
	defer soloHS.Close()
	soloC := client.New(soloHS.URL, nil)
	sv, err := soloC.Submit(context.Background(), desc, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("solo submit: %v", err)
	}
	sfinal, err := soloC.Wait(context.Background(), sv.ID)
	if err != nil || sfinal.State != serve.JobDone {
		t.Fatalf("solo wait: state=%v err=%v", sfinal, err)
	}
	for _, cell := range sfinal.Cells {
		sr, err := soloC.Result(context.Background(), cell.ResultKey)
		if err != nil {
			t.Fatalf("solo result: %v", err)
		}
		blob, _ := json.Marshal(sr)
		if got := coordRecords[cell.ResultKey]; !reflect.DeepEqual(got, blob) {
			t.Fatalf("cluster and single-node records differ for %s/%s:\ncluster: %s\nsolo:    %s",
				cell.Workload, cell.Label, got, blob)
		}
	}
}

// TestClusterWorkerDeathFailover is the acceptance scenario: kill the
// worker running a job mid-flight and the coordinator requeues it onto
// the survivor, the client's SSE stream on the coordinator never
// breaks, and the job still completes with valid results.
func TestClusterWorkerDeathFailover(t *testing.T) {
	experiments.FlushResultCache()
	tc := newTestCluster(t, 2)

	// Big enough to give the kill a wide window (~1s of simulation).
	desc := clusterDescriptor("cluster-kill", 800_000)
	v, err := tc.client.Submit(context.Background(), desc, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// One continuous SSE stream on the coordinator, spanning the kill.
	type streamResult struct {
		view   *serve.JobView
		events int
		err    error
	}
	streamCh := make(chan streamResult, 1)
	var evMu sync.Mutex
	events := 0
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		view, err := tc.client.Stream(ctx, v.ID, 0, func(ev serve.Event) error {
			evMu.Lock()
			events++
			evMu.Unlock()
			return nil
		})
		evMu.Lock()
		n := events
		evMu.Unlock()
		streamCh <- streamResult{view: view, events: n, err: err}
	}()

	// Find the worker that picked the job up, then kill it.
	victim := -1
	deadline := time.Now().Add(30 * time.Second)
	for victim < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker ever started the job")
		}
		for i, w := range tc.workers {
			jobs, err := client.New(w.url, nil).Jobs(context.Background())
			if err != nil {
				continue
			}
			for _, jv := range jobs {
				if jv.State == serve.JobRunning {
					victim = i
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sever live connections (the forwarder's SSE included), then close
	// the listener so reconnects are refused — a SIGKILL as seen from
	// the network.
	tc.workers[victim].hs.CloseClientConnections()
	tc.workers[victim].hs.Close()
	t.Logf("killed worker %d (%s)", victim, tc.workers[victim].url)

	res := <-streamCh
	if res.err != nil {
		t.Fatalf("coordinator SSE stream broke across failover: %v", res.err)
	}
	if res.view == nil || res.view.State != serve.JobDone {
		t.Fatalf("job after failover: %+v, want done", res.view)
	}
	for _, cell := range res.view.Cells {
		if cell.IPC <= 0 {
			t.Fatalf("cell %s/%s missing IPC after failover", cell.Workload, cell.Label)
		}
	}
	if res.events == 0 {
		t.Fatal("stream delivered no events")
	}

	// The failover must be visible in the coordinator's spans (a
	// requeue) and the ring (the victim marked dead).
	var sawRequeue bool
	for _, sp := range tc.coord.Spans() {
		if sp.Name == "requeue" {
			sawRequeue = true
		}
	}
	if !sawRequeue {
		t.Fatal("no requeue span recorded — the job never failed over")
	}
	alive := tc.members.Alive()
	for _, a := range alive {
		if a == tc.workers[victim].url {
			t.Fatal("victim still on the ring after failover")
		}
	}

	// The survivor can serve every cell record directly.
	survivor := tc.workers[1-victim]
	sc := client.New(survivor.url, nil)
	for _, cell := range res.view.Cells {
		if _, err := sc.Result(context.Background(), cell.ResultKey); err != nil {
			t.Fatalf("survivor missing cell %s: %v", cell.ResultKey, err)
		}
	}
}

// TestClusterAllWorkersDeadFallsBackLocal: with every worker gone the
// coordinator degrades to local execution rather than failing jobs.
func TestClusterAllWorkersDeadFallsBackLocal(t *testing.T) {
	experiments.FlushResultCache()
	tc := newTestCluster(t, 2)
	for _, w := range tc.workers {
		tc.members.MarkDead(w.url)
	}
	v, err := tc.client.Submit(context.Background(), clusterDescriptor("cluster-local", 64_000), client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := tc.client.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.JobDone {
		t.Fatalf("job state %s (%s), want done via local fallback", final.State, final.Error)
	}
}

// TestForwarderShardAffinity: the same descriptor always routes to the
// same worker, and distinct descriptors spread across the fleet.
func TestForwarderShardAffinity(t *testing.T) {
	urls := []string{"http://n1:1", "http://n2:1", "http://n3:1"}
	m := placement.NewMembership(urls, placement.Config{})
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		d := &experiments.Descriptor{
			Name: "affinity", Workloads: []string{"mysql"},
			Instructions: uint64(60_000 + i), Warmup: 20000, Simpoints: 1,
			Configs: []experiments.ConfigSpec{{Label: "base", Mechanism: "baseline"}},
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		key := cluster.ShardKey(d)
		o1, _ := m.Owner(key)
		o2, _ := m.Owner(key)
		if o1 != o2 {
			t.Fatalf("shard key %s unstable: %s vs %s", key, o1, o2)
		}
		seen[o1] = true
	}
	if len(seen) < 2 {
		t.Fatalf("50 distinct descriptors all landed on one worker: %v", seen)
	}
}
