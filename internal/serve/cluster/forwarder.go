// Package cluster is the coordinator side of a udpsimd fleet: a
// JobRunner that, instead of simulating, routes each job to the worker
// owning its shard on the placement ring, re-publishes the worker's
// SSE stream onto the coordinator's own job feed, and recovers from
// worker death by excluding the dead node and re-running the job on
// the next candidate. Clients talk only to the coordinator and never
// observe a failover: the coordinator's job (and its event stream)
// stays alive across retries, and simulation results are
// content-addressed, so a re-run never recomputes cells the first
// attempt already persisted.
//
// The package sits above internal/serve (jobs, wire types) and
// internal/serve/client (the HTTP client with retry/backoff), which is
// why it cannot live inside internal/serve: serve/client imports
// serve, and the forwarder needs both.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
	"udpsim/internal/serve/placement"
)

// DefaultStealThreshold is the queue-depth gap between a job's ring
// owner and the idlest worker past which the job is stolen by the
// idler node. Shard affinity is worth a little queueing (the owner has
// the shard's results hot), but not a convoy.
const DefaultStealThreshold = 4

// Forwarder is a serve.JobRunner that ships jobs to workers. Configure
// the exported fields before first use; they must not change
// afterwards.
type Forwarder struct {
	// Self is the coordinator's own advertised URL — never a forward
	// target.
	Self string
	// Members is the worker fleet (including Self when the coordinator
	// also works).
	Members *placement.Membership
	// Local, when set, runs jobs in-process once every remote worker is
	// dead or excluded — the cluster degrades to a single node instead
	// of failing jobs. Nil makes total worker loss a job failure.
	Local serve.JobRunner
	// Transport, when set, receives every forwarded job's fetched cell
	// results, so the coordinator's own store can answer GET
	// /v1/results and peer reads without another hop.
	Transport serve.ResultTransport
	// StealThreshold overrides DefaultStealThreshold (<= 0 keeps the
	// default).
	StealThreshold int
	// OnSpan receives forward/requeue lifecycle spans (nil = dropped).
	OnSpan func(obs.Span)
	// HTTPClient is used for the per-worker API clients (nil = each
	// client's default).
	HTTPClient *http.Client
	// Log receives forwarding lifecycle logs (nil = discard).
	Log *slog.Logger

	mu      sync.Mutex
	clients map[string]*client.Client
}

// ShardKey is the ring key a descriptor shards by: the content address
// of its first grid cell. Every submission of the same experiment
// lands on the same worker (maximizing its store's hit rate), and the
// address space of distinct experiments spreads uniformly.
func ShardKey(d *experiments.Descriptor) string {
	return serve.ResultAddr(experiments.CellKey(d, d.Workloads[0], d.Configs[0]))
}

func (f *Forwarder) log() *slog.Logger {
	if f.Log != nil {
		return f.Log
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func (f *Forwarder) span(name string, start time.Time, trace string, args map[string]any) {
	if f.OnSpan == nil {
		return
	}
	f.OnSpan(obs.Span{Trace: trace, Name: name, Start: start, End: time.Now(), Args: args})
}

// clientFor returns (caching) the API client for one worker URL.
func (f *Forwarder) clientFor(node string) *client.Client {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clients == nil {
		f.clients = map[string]*client.Client{}
	}
	c, ok := f.clients[node]
	if !ok {
		c = client.New(node, f.HTTPClient)
		c.Name = "coordinator:" + f.Self
		f.clients[node] = c
	}
	return c
}

// workerLoss classifies a forwarding failure: transport errors, dead
// streams, and 502/503 mean the worker is gone and the job should be
// requeued elsewhere; anything else is the job's own outcome.
func workerLoss(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusBadGateway ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	// ErrStreamEnded or a raw transport error (connection refused,
	// reset mid-body): the client already burned its retry budget
	// against this worker.
	return true
}

// errCanceledRemotely reports a worker-side cancellation the
// coordinator never asked for — the worker was SIGKILLed or drained
// mid-job, so the job is requeued like any other worker loss.
var errCanceledRemotely = errors.New("cluster: worker canceled the job unasked")

// RunJob implements serve.JobRunner: pick the job's worker by ring
// ownership (with work-stealing when the owner's queue runs deep),
// forward, mirror the stream, and collect results. Dead workers are
// marked dead, excluded, and the job re-runs on the next candidate.
func (f *Forwarder) RunJob(ctx context.Context, j *serve.Job) ([]experiments.DescriptorResult, error) {
	shard := ShardKey(j.Descriptor)
	excluded := map[string]bool{}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		target, ok := f.pickWorker(shard, excluded)
		if !ok {
			if f.Local != nil {
				f.log().Warn("no live worker; running locally", "job", j.ID)
				return f.Local.RunJob(ctx, j)
			}
			return nil, fmt.Errorf("cluster: no live worker for job %s (tried %d)", j.ID, len(excluded))
		}
		start := time.Now()
		results, err := f.runOn(ctx, j, target)
		if err == nil {
			f.span("forward", start, j.TraceID,
				map[string]any{"job": j.ID, "worker": target, "shard": shard[:12]})
			obs.ForwardedJobs.Add(1)
			return results, nil
		}
		if !workerLoss(err) || ctx.Err() != nil {
			return nil, err
		}
		// Worker died mid-job: exclude it, drop it from the ring
		// immediately (the prober will revive it later), and requeue.
		excluded[target] = true
		f.Members.MarkDead(target)
		f.span("requeue", start, j.TraceID,
			map[string]any{"job": j.ID, "lost_worker": target, "err": err.Error()})
		f.log().Warn("worker lost mid-job; requeueing", "job", j.ID, "worker", target, "err", err)
		j.Publish("progress", map[string]string{
			"line": fmt.Sprintf("worker %s lost; requeueing", target)})
	}
}

// pickWorker resolves the job's target: ring candidates in ownership
// order, skipping excluded nodes and the coordinator itself, with
// work-stealing — when the affinity choice's queue runs
// StealThreshold deeper than the idlest candidate's, the idle one
// takes the job.
func (f *Forwarder) pickWorker(shard string, excluded map[string]bool) (string, bool) {
	ring := f.Members.Ring()
	candidates := make([]string, 0, ring.Len())
	for _, node := range ring.Owners(shard, ring.Len()) {
		if node == f.Self || excluded[node] {
			continue
		}
		candidates = append(candidates, node)
	}
	if len(candidates) == 0 {
		return "", false
	}
	target := candidates[0]
	threshold := f.StealThreshold
	if threshold <= 0 {
		threshold = DefaultStealThreshold
	}
	depth := func(node string) int {
		if info, ok := f.Members.Info(node); ok {
			return info.QueueDepth
		}
		return 0
	}
	idlest, min := target, depth(target)
	for _, c := range candidates[1:] {
		if d := depth(c); d < min {
			idlest, min = c, d
		}
	}
	if idlest != target && depth(target)-min >= threshold {
		f.log().Info("stealing job from hot shard owner",
			"owner", target, "owner_depth", depth(target), "thief", idlest, "thief_depth", min)
		obs.Steals.Add(1)
		return idlest, true
	}
	return target, true
}

// runOn forwards one job to one worker and blocks until its terminal
// state: submit (propagating the trace), mirror progress/sample events
// onto the coordinator job's feed, then fetch the cell results.
func (f *Forwarder) runOn(ctx context.Context, j *serve.Job, worker string) ([]experiments.DescriptorResult, error) {
	c := f.clientFor(worker)
	blob, err := json.Marshal(j.Descriptor)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshaling descriptor: %w", err)
	}
	v, err := c.Submit(ctx, blob, client.SubmitOptions{Priority: j.Priority, TraceID: j.TraceID})
	if err != nil {
		return nil, err
	}
	// Propagate coordinator-side cancellation to the worker: when our
	// context dies mid-forward, the remote job must not keep burning a
	// worker slot.
	defer func() {
		if ctx.Err() == nil {
			return
		}
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if cerr := c.Cancel(cctx, v.ID); cerr != nil {
			f.log().Warn("canceling remote job failed", "worker", worker, "job", v.ID, "err", cerr)
		}
	}()
	final, err := c.Stream(ctx, v.ID, 0, func(ev serve.Event) error {
		// Mirror only the in-flight telemetry: lifecycle events
		// (queued/started/terminal) are the coordinator job's own.
		switch ev.Type {
		case "progress", "sample":
			j.Publish(ev.Type, json.RawMessage(ev.Data))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	switch final.State {
	case serve.JobDone:
	case serve.JobCanceled:
		// The coordinator did not cancel (ctx is live), so the worker
		// was drained or killed under the job.
		return nil, errCanceledRemotely
	default:
		return nil, fmt.Errorf("cluster: worker %s: job %s: %s", worker, final.ID, final.Error)
	}
	return f.collect(ctx, c, final)
}

// collect turns a worker's terminal JobView into the coordinator's
// DescriptorResult slice by fetching each cell's content-addressed
// record, writing each through the coordinator's transport so the next
// reader finds it locally.
func (f *Forwarder) collect(ctx context.Context, c *client.Client, v *serve.JobView) ([]experiments.DescriptorResult, error) {
	results := make([]experiments.DescriptorResult, 0, len(v.Cells))
	for _, cell := range v.Cells {
		sr, err := c.Result(ctx, cell.ResultKey)
		if err != nil {
			return nil, fmt.Errorf("cluster: fetching cell %s/%s: %w", cell.Workload, cell.Label, err)
		}
		if f.Transport != nil {
			if err := f.Transport.Save(sr.Key, sr.Result); err != nil {
				f.log().Warn("storing forwarded result failed", "addr", cell.ResultKey, "err", err)
			}
		}
		results = append(results, experiments.DescriptorResult{
			Workload: cell.Workload, Label: cell.Label, Result: sr.Result,
		})
	}
	return results, nil
}
