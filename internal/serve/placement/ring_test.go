package placement

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("workload=w%d|mech=m%d|sp=1", i, i%7)
	}
	return out
}

// The whole placement design rests on restart determinism: two rings
// built independently (different processes, different input order)
// must map every key to the same owner.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	a := New([]string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1"}, 0)
	// Same membership, scrambled input order — a restart reading its
	// peer list from a differently-ordered flag must agree.
	b := New([]string{"http://n3:1", "http://n1:1", "http://n4:1", "http://n2:1"}, 0)
	for _, k := range keys(5000) {
		oa, oka := a.Owner(k)
		ob, okb := b.Owner(k)
		if !oka || !okb {
			t.Fatalf("Owner(%q): ok=(%v,%v), want both true", k, oka, okb)
		}
		if oa != ob {
			t.Fatalf("Owner(%q) differs across identical rings: %q vs %q", k, oa, ob)
		}
	}
}

// Consistent hashing's defining property: when one node of four
// leaves, only the keys it owned move — every key owned by a survivor
// keeps its owner, and the moved fraction is about 1/4 (bounded here
// at the acceptance criterion's 25%, plus vnode-variance slack
// enforced by the exact survivor-stability check).
func TestRingKeyMovementOnNodeLeave(t *testing.T) {
	nodes := []string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1"}
	before := New(nodes, 0)
	after := New(nodes[:3], 0) // n4 leaves

	const n = 20000
	moved := 0
	for _, k := range keys(n) {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob != oa {
			moved++
			// Only keys the departed node owned are allowed to move.
			if ob != "http://n4:1" {
				t.Fatalf("key %q moved from surviving node %q to %q", k, ob, oa)
			}
		}
	}
	frac := float64(moved) / float64(n)
	if frac > 0.25 {
		t.Fatalf("%.1f%% of keys moved when 1 of 4 nodes left; want <= 25%%", 100*frac)
	}
	if moved == 0 {
		t.Fatal("no keys moved when a node left; the departed node owned nothing?")
	}
}

// A rejoining node must land on exactly its old vnode points, so the
// before/after-rejoin rings are identical.
func TestRingRejoinRestoresOwnership(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	orig := New(nodes, 64)
	rejoined := New([]string{"d", "c", "b", "a"}, 64)
	for _, k := range keys(2000) {
		o1, _ := orig.Owner(k)
		o2, _ := rejoined.Owner(k)
		if o1 != o2 {
			t.Fatalf("owner of %q changed across leave+rejoin: %q vs %q", k, o1, o2)
		}
	}
}

func TestRingOwnersDistinctAndOwnerFirst(t *testing.T) {
	r := New([]string{"a", "b", "c", "d"}, 0)
	for _, k := range keys(500) {
		owner, _ := r.Owner(k)
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v, want 3 entries", k, owners)
		}
		if owners[0] != owner {
			t.Fatalf("Owners(%q)[0] = %q, want the Owner %q", k, owners[0], owner)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
	if got := r.Owners("k", 99); len(got) != 4 {
		t.Fatalf("Owners capped at node count: got %d, want 4", len(got))
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := New(nil, 0)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := empty.Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	single := New([]string{"only", "only", ""}, 0)
	if single.Len() != 1 {
		t.Fatalf("dedup failed: Len = %d, want 1", single.Len())
	}
	for _, k := range keys(50) {
		if o, ok := single.Owner(k); !ok || o != "only" {
			t.Fatalf("single-node ring Owner(%q) = %q, %v", k, o, ok)
		}
	}
}

// Ownership balance: with the default vnode count no node of a
// four-node ring should own a pathological share of keys. This is a
// sanity bound (2x the fair share), not a tight statistical claim.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := New(nodes, 0)
	counts := map[string]int{}
	const n = 20000
	for _, k := range keys(n) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / float64(n)
		if share > 0.5 || share < 0.05 {
			t.Fatalf("node %s owns %.1f%% of keys: %v", node, 100*share, counts)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := New([]string{"a", "b", "c", "d", "e", "f", "g", "h"}, 0)
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(ks[i%len(ks)])
	}
}
