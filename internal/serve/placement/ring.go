// Package placement is the cluster's data-placement layer: a
// consistent-hash ring with virtual nodes over result-store content
// addresses, and a health-checked membership view that rebuilds the
// ring as nodes die and revive. The ring answers one question —
// "which node owns this key?" — deterministically, so identical cells
// always land on the node whose store already holds (or will hold)
// their results, and so every node computes the same answer without
// coordination.
package placement

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per physical node. 128
// points per node keeps the expected ownership imbalance under a few
// percent on small fleets while the ring stays tiny (a 16-node fleet
// is 2048 points, one binary search per lookup).
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring: build one with New, look
// keys up with Owner/Owners, and rebuild (cheap) when membership
// changes. Hashes are SHA-256-derived, never seeded per process, so
// the key→owner mapping is identical across restarts and across every
// node of the fleet — the property the store's read-through layer and
// the coordinator's sharding both depend on.
type Ring struct {
	points []point  // sorted ascending by hash
	nodes  []string // distinct node names, sorted
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int32 // index into nodes
}

// hash64 maps a string to its position on the ring: the first 8 bytes
// of its SHA-256, big endian. Deterministic across processes by
// construction (unlike maphash, which seeds per process).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over the given nodes with vnodes virtual nodes
// each (<= 0 means DefaultVNodes). Duplicate and empty node names are
// dropped. A ring over zero nodes is valid and owns nothing.
func New(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var distinct []string
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		distinct = append(distinct, n)
	}
	sort.Strings(distinct)
	r := &Ring{nodes: distinct}
	if len(distinct) == 0 {
		return r
	}
	r.points = make([]point, 0, len(distinct)*vnodes)
	for ni, n := range distinct {
		for v := 0; v < vnodes; v++ {
			// The vnode identity is "node#index": stable across rebuilds,
			// so a node re-joining lands on exactly its old points and
			// only the keys it owned move back.
			r.points = append(r.points, point{hash: hash64(n + "#" + strconv.Itoa(v)), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index so the sort —
		// and therefore ownership — stays deterministic.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's member names, sorted. Callers must not
// mutate the slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Len reports the number of physical nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// successor returns the index of the first ring point at or after h,
// wrapping past the top.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node owning key — the first virtual node clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.nodes[r.points[r.successor(hash64(key))].node], true
}

// Owners returns up to n distinct nodes in ring order starting at the
// key's owner — the owner first, then its successors. This is the
// fallback/replica order: a reader that misses on the owner tries the
// next ring neighbor, and a coordinator excluding a dead owner
// forwards to the next entry.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	start := r.successor(hash64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}
