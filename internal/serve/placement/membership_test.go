package placement

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyProbe fails nodes listed in its dead set and reports a fixed
// queue depth for the rest.
type flakyProbe struct {
	mu    sync.Mutex
	dead  map[string]bool
	depth map[string]int
}

func (p *flakyProbe) probe(_ context.Context, node string) (NodeInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead[node] {
		return NodeInfo{}, errors.New("connection refused")
	}
	return NodeInfo{QueueDepth: p.depth[node]}, nil
}

func (p *flakyProbe) setDead(node string, dead bool) {
	p.mu.Lock()
	p.dead[node] = dead
	p.mu.Unlock()
}

func TestMembershipProbeDeathAndRevival(t *testing.T) {
	probe := &flakyProbe{dead: map[string]bool{}, depth: map[string]int{"a": 3, "b": 7}}
	m := NewMembership([]string{"a", "b"}, Config{
		Probe:     probe.probe,
		FailAfter: 2,
	})
	// No Start(): drive rounds synchronously for determinism.
	m.probeRound()
	if got := m.Alive(); len(got) != 2 {
		t.Fatalf("alive after healthy round = %v, want both", got)
	}
	if info, alive := m.Info("b"); !alive || info.QueueDepth != 7 {
		t.Fatalf("Info(b) = %+v alive=%v, want depth 7 alive", info, alive)
	}

	probe.setDead("b", true)
	m.probeRound() // first failure: still alive (FailAfter=2)
	if got := m.Alive(); len(got) != 2 {
		t.Fatalf("alive after one failure = %v, want both (FailAfter=2)", got)
	}
	m.probeRound() // second consecutive failure: dead
	if got := m.Alive(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("alive after two failures = %v, want [a]", got)
	}
	if owner, ok := m.Owner("some-key"); !ok || owner != "a" {
		t.Fatalf("ring after death routed to %q (ok=%v), want a", owner, ok)
	}

	probe.setDead("b", false)
	m.probeRound() // one success revives immediately
	if got := m.Alive(); len(got) != 2 {
		t.Fatalf("alive after revival = %v, want both", got)
	}
}

func TestMembershipMarkDeadImmediate(t *testing.T) {
	m := NewMembership([]string{"a", "b", "c"}, Config{})
	m.MarkDead("b")
	for _, s := range m.Status() {
		if s.Node == "b" && s.Alive {
			t.Fatal("MarkDead(b) left b alive")
		}
	}
	for i := 0; i < 1000; i++ {
		if o, _ := m.Owner(fmt.Sprintf("k%d", i)); o == "b" {
			t.Fatalf("ring still routes key k%d to dead node b", i)
		}
	}
	m.MarkAlive("b")
	if got := m.Alive(); len(got) != 3 {
		t.Fatalf("alive after MarkAlive = %v, want all three", got)
	}
}

func TestMembershipSelfNeverDies(t *testing.T) {
	m := NewMembership([]string{"other"}, Config{Self: "self"})
	m.MarkDead("self")
	for _, s := range m.Status() {
		if s.Node == "self" && !s.Alive {
			t.Fatal("self was marked dead")
		}
	}
}

// The acceptance criterion "same-key-same-owner under concurrent
// membership reads": while one goroutine flips membership, concurrent
// readers must each see an internally consistent ring — two lookups of
// the same key against one snapshot agree, and every answer is a
// member that was alive in some recent view. Run with -race.
func TestMembershipConcurrentReads(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	m := NewMembership(nodes, Config{})
	valid := map[string]bool{}
	for _, n := range nodes {
		valid[n] = true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // membership churn
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			victim := nodes[i%len(nodes)]
			m.MarkDead(victim)
			m.MarkAlive(victim)
		}
	}()

	ks := keys(64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := ks[i%len(ks)]
				r := m.Ring() // one immutable snapshot
				o1, ok1 := r.Owner(k)
				o2, ok2 := r.Owner(k)
				if ok1 != ok2 || o1 != o2 {
					t.Errorf("same snapshot, same key, different owners: %q vs %q", o1, o2)
					return
				}
				if ok1 && !valid[o1] {
					t.Errorf("owner %q is not a member", o1)
					return
				}
			}
		}()
	}
	// Let readers run against live churn briefly, then stop the churner.
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

func TestMembershipStartStop(t *testing.T) {
	var calls atomic.Int64
	m := NewMembership([]string{"a"}, Config{
		Interval: time.Millisecond,
		Probe: func(context.Context, string) (NodeInfo, error) {
			calls.Add(1)
			return NodeInfo{}, nil
		},
	})
	stop := m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if calls.Load() < 3 {
		t.Fatalf("prober made only %d calls", calls.Load())
	}
	stop()
	stop() // idempotent
	after := calls.Load()
	time.Sleep(10 * time.Millisecond)
	if calls.Load() != after {
		t.Fatal("prober kept running after stop")
	}
}
