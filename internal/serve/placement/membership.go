package placement

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeInfo is what a successful health probe learns about a node —
// enough for placement-adjacent decisions (the coordinator's
// work-stealing reads QueueDepth to spot hot shards).
type NodeInfo struct {
	// QueueDepth is the node's queued-job count at probe time.
	QueueDepth int
}

// ProbeFunc checks one node's health. A nil error means the node is
// serving; the returned NodeInfo is cached on the membership view.
// Implementations must respect ctx (the prober applies a timeout).
type ProbeFunc func(ctx context.Context, node string) (NodeInfo, error)

// HTTPProbe returns a ProbeFunc that GETs {node}/readyz — readiness is
// membership: a draining or dead daemon drops off the ring, and a
// revived one rejoins on its next successful probe. The response body
// (the daemon's Health JSON) supplies the queue depth. hc == nil uses
// a dedicated client.
func HTTPProbe(hc *http.Client) ProbeFunc {
	if hc == nil {
		hc = &http.Client{}
	}
	return func(ctx context.Context, node string) (NodeInfo, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/readyz", nil)
		if err != nil {
			return NodeInfo{}, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return NodeInfo{}, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusOK {
			return NodeInfo{}, fmt.Errorf("placement: %s/readyz: HTTP %d", node, resp.StatusCode)
		}
		var h struct {
			QueueDepth int `json:"queue_depth"`
		}
		_ = json.Unmarshal(body, &h) // queue depth is advisory; a bad body is still ready
		return NodeInfo{QueueDepth: h.QueueDepth}, nil
	}
}

// Config tunes a Membership.
type Config struct {
	// Self names this process's own node ("" for an outside observer
	// like the coordinator). Self is always a member and is never
	// probed dead — a node trivially reaches itself.
	Self string
	// VNodes is the per-node virtual-node count (<= 0 means
	// DefaultVNodes).
	VNodes int
	// Probe health-checks one node (nil disables active probing; the
	// view then changes only through MarkDead/MarkAlive).
	Probe ProbeFunc
	// Interval between probe rounds (default 2s).
	Interval time.Duration
	// ProbeTimeout bounds one probe call (default 2s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures kill a node
	// (default 2 — one blip survives, a dead TCP endpoint does not).
	FailAfter int
	// Log receives membership transitions (nil = discard).
	Log *slog.Logger
}

// nodeState is one node's health bookkeeping.
type nodeState struct {
	alive   bool
	fails   int // consecutive probe failures
	info    NodeInfo
	lastErr string
}

// Membership is the live view of a fleet: the full node set (fixed at
// construction), which of them are currently alive, and the consistent-
// hash ring over the alive set. Ring reads are lock-free (atomic
// snapshot) so lookups on the job and store hot paths never contend
// with the prober. All methods are safe for concurrent use.
type Membership struct {
	cfg   Config
	names []string // all members, sorted distinct

	ring atomic.Pointer[Ring] // over the alive subset

	mu    sync.Mutex
	state map[string]*nodeState

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewMembership builds a view over nodes (plus cfg.Self, if set).
// Every member starts alive — optimistic, so a fleet is usable before
// the first probe round; the prober demotes unreachable nodes within
// FailAfter intervals.
func NewMembership(nodes []string, cfg Config) *Membership {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	seen := map[string]bool{}
	var names []string
	for _, n := range append(append([]string{}, nodes...), cfg.Self) {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		names = append(names, n)
	}
	sort.Strings(names)
	m := &Membership{
		cfg:    cfg,
		names:  names,
		state:  make(map[string]*nodeState, len(names)),
		stopCh: make(chan struct{}),
	}
	for _, n := range names {
		m.state[n] = &nodeState{alive: true}
	}
	m.ring.Store(New(names, cfg.VNodes))
	return m
}

// Ring returns the current ring over the alive nodes. The snapshot is
// immutable: every lookup against it is internally consistent even
// while the prober swaps in a new ring.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// Owner returns the alive node owning key (ok false when no node is
// alive).
func (m *Membership) Owner(key string) (string, bool) { return m.Ring().Owner(key) }

// Owners returns up to n distinct alive nodes in ring order from the
// key's owner.
func (m *Membership) Owners(key string, n int) []string { return m.Ring().Owners(key, n) }

// All returns every member name, sorted (alive or not).
func (m *Membership) All() []string { return m.names }

// Self returns this node's own name ("" when the membership was built
// without one — pure observer setups).
func (m *Membership) Self() string { return m.cfg.Self }

// Alive returns the currently-alive member names, sorted.
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, n := range m.names {
		if m.state[n].alive {
			out = append(out, n)
		}
	}
	return out
}

// Info returns the last probe result for a node and whether the node
// is currently alive.
func (m *Membership) Info(node string) (NodeInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[node]
	if !ok {
		return NodeInfo{}, false
	}
	return st.info, st.alive
}

// MarkDead demotes a node immediately — the coordinator calls this on
// a forwarding failure so the very next placement decision excludes
// the node instead of waiting out a probe round. The prober revives it
// on its next successful check.
func (m *Membership) MarkDead(node string) {
	m.setAlive(node, false, "marked dead")
}

// MarkAlive promotes a node immediately (tests, manual revival).
func (m *Membership) MarkAlive(node string) {
	m.setAlive(node, true, "marked alive")
}

func (m *Membership) setAlive(node string, alive bool, why string) {
	if node == m.cfg.Self && !alive {
		return // a node never declares itself dead
	}
	m.mu.Lock()
	st, ok := m.state[node]
	if !ok || st.alive == alive {
		m.mu.Unlock()
		return
	}
	st.alive = alive
	if alive {
		st.fails = 0
		st.lastErr = ""
	}
	m.rebuildLocked()
	m.mu.Unlock()
	m.cfg.Log.Info("membership change", "node", node, "alive", alive, "reason", why)
}

// rebuildLocked swaps in a ring over the current alive set. Caller
// holds m.mu.
func (m *Membership) rebuildLocked() {
	var alive []string
	for _, n := range m.names {
		if m.state[n].alive {
			alive = append(alive, n)
		}
	}
	m.ring.Store(New(alive, m.cfg.VNodes))
}

// Start launches the background probe loop and returns a stop
// function (idempotent). With no Probe configured Start is a no-op.
func (m *Membership) Start() (stop func()) {
	stop = func() { m.stopOnce.Do(func() { close(m.stopCh); m.wg.Wait() }) }
	if m.cfg.Probe == nil {
		return stop
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		tick := time.NewTicker(m.cfg.Interval)
		defer tick.Stop()
		m.probeRound()
		for {
			select {
			case <-m.stopCh:
				return
			case <-tick.C:
				m.probeRound()
			}
		}
	}()
	return stop
}

// probeRound health-checks every member (concurrently; a hung node
// must not delay the verdict on the rest) and applies the transitions.
func (m *Membership) probeRound() {
	var wg sync.WaitGroup
	for _, n := range m.names {
		if n == m.cfg.Self {
			continue
		}
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ProbeTimeout)
			info, err := m.cfg.Probe(ctx, n)
			cancel()
			m.noteProbe(n, info, err)
		}()
	}
	wg.Wait()
}

// noteProbe folds one probe result into the view.
func (m *Membership) noteProbe(node string, info NodeInfo, err error) {
	m.mu.Lock()
	st, ok := m.state[node]
	if !ok {
		m.mu.Unlock()
		return
	}
	changed := false
	if err == nil {
		st.info = info
		st.fails = 0
		st.lastErr = ""
		if !st.alive {
			st.alive = true
			changed = true
		}
	} else {
		st.fails++
		st.lastErr = err.Error()
		if st.alive && st.fails >= m.cfg.FailAfter {
			st.alive = false
			changed = true
		}
	}
	if changed {
		m.rebuildLocked()
	}
	alive := st.alive
	m.mu.Unlock()
	if changed {
		m.cfg.Log.Info("membership change", "node", node, "alive", alive, "err", err)
	}
}

// NodeStatus is one member's state for debug surfaces (GET /v1/ring,
// udpstat).
type NodeStatus struct {
	Node       string `json:"node"`
	Alive      bool   `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
	Fails      int    `json:"fails,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	Self       bool   `json:"self,omitempty"`
}

// Status reports every member's health, sorted by node name.
func (m *Membership) Status() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.names))
	for _, n := range m.names {
		st := m.state[n]
		out = append(out, NodeStatus{
			Node:       n,
			Alive:      st.alive,
			QueueDepth: st.info.QueueDepth,
			Fails:      st.fails,
			LastError:  st.lastErr,
			Self:       n == m.cfg.Self,
		})
	}
	return out
}
