package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
	"udpsim/internal/tune"
)

// tuneSpaceJSON is a 6-cell space kept tiny so the whole search (two
// rungs + refinement) runs in well under a second.
func tuneSpaceJSON(seed int64) []byte {
	return []byte(fmt.Sprintf(`{
		"name": "tune-e2e",
		"workloads": ["mysql"],
		"objective": "ipc",
		"instructions": 24000,
		"warmup": 8000,
		"seed": %d,
		"search": {"samples": 4, "eta": 2, "rungs": 2, "refine": 4},
		"dimensions": [
			{"name": "mech", "field": "mechanism", "choices": ["baseline", "udp"]},
			{"name": "l2m", "field": "l2_mshrs", "values": [8, 16, 32]}
		]
	}`, seed))
}

// TestTuneE2E drives the full service path: submit, dedup, SSE frontier
// stream, terminal view with incumbent cells, and the probe jobs the
// search left behind in the ordinary job registry.
func TestTuneE2E(t *testing.T) {
	experiments.FlushResultCache()
	_, c, stop := newTestDaemon(t, t.TempDir(), serve.ServerConfig{Workers: 2})
	defer stop()

	v, err := c.Tune(context.Background(), tuneSpaceJSON(21), client.SubmitOptions{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if v.Deduped || v.ID == "" || !strings.HasPrefix(v.ID, "t") {
		t.Fatalf("bad submission view: %+v", v)
	}
	if v.SpaceSize != 6 || v.PlannedProbes != 6 {
		t.Fatalf("space accounting: size=%d planned=%d, want 6/6", v.SpaceSize, v.PlannedProbes)
	}
	if v.TraceID == "" {
		t.Fatalf("tune run has no trace ID")
	}

	// A concurrent identical POST must dedup onto the same run.
	dup, err := c.Tune(context.Background(), tuneSpaceJSON(21), client.SubmitOptions{})
	if err != nil {
		t.Fatalf("duplicate Tune: %v", err)
	}
	if dup.ID != v.ID || !dup.Deduped {
		t.Fatalf("duplicate submission not deduped: %+v", dup)
	}

	types := map[string]int{}
	final, err := c.TuneStream(context.Background(), v.ID, 0, func(ev serve.Event) error {
		types[ev.Type]++
		return nil
	})
	if err != nil {
		t.Fatalf("TuneStream: %v", err)
	}
	if final.State != serve.JobDone {
		t.Fatalf("run finished %s (%s), want done", final.State, final.Error)
	}
	for _, want := range []string{"queued", "started", "probe", "generation", "incumbent", "done"} {
		if types[want] == 0 {
			t.Fatalf("no %q event on the stream; saw %v", want, types)
		}
	}
	if final.Stats == nil || final.Stats.HalvingProbes != 6 {
		t.Fatalf("terminal stats: %+v, want 6 halving probes", final.Stats)
	}
	if final.Best == nil || final.Best.Score <= 0 || len(final.Best.Cells) != 1 {
		t.Fatalf("terminal best: %+v", final.Best)
	}

	// The incumbent's cell is fetchable from the content-addressed
	// result endpoint, like any job cell.
	rec, err := c.Result(context.Background(), final.Best.Cells[0].ResultKey)
	if err != nil {
		t.Fatalf("fetching incumbent cell: %v", err)
	}
	if rec.Result.IPC != final.Best.Cells[0].IPC {
		t.Fatalf("incumbent cell IPC %v != stored %v", final.Best.Cells[0].IPC, rec.Result.IPC)
	}

	// GET /v1/tune/{id} agrees with the terminal stream event.
	got, err := c.TuneRun(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("TuneRun: %v", err)
	}
	if got.State != serve.JobDone || got.Best == nil || got.Best.Label != final.Best.Label {
		t.Fatalf("GET view disagrees with terminal event: %+v", got)
	}
	if got.Submissions != 2 {
		t.Fatalf("submissions = %d, want 2", got.Submissions)
	}

	// The list endpoint knows the run; probe jobs ran under the run's
	// client identity and trace.
	runs, err := c.TuneRuns(context.Background())
	if err != nil || len(runs) != 1 || runs[0].ID != v.ID {
		t.Fatalf("TuneRuns = %+v, %v", runs, err)
	}
	jobs, err := c.Jobs(context.Background())
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	probeJobs := 0
	for _, j := range jobs {
		if j.Client == "tune:"+v.ID {
			probeJobs++
			if j.TraceID != v.TraceID {
				t.Fatalf("probe job %s trace %q, want the run's %q", j.ID, j.TraceID, v.TraceID)
			}
		}
	}
	if probeJobs == 0 {
		t.Fatalf("no probe jobs attributed to the tune run")
	}

	// Resume: replay from the middle of the stream via Last-Event-ID.
	resumed := 0
	if _, err := c.TuneStream(context.Background(), v.ID, 2, func(serve.Event) error {
		resumed++
		return nil
	}); err != nil {
		t.Fatalf("resumed TuneStream: %v", err)
	}
	total := 0
	for _, n := range types {
		total += n
	}
	if resumed != total-2 {
		t.Fatalf("resume from id 2 replayed %d events, want %d", resumed, total-2)
	}
}

// TestTuneValidation: malformed spaces are structured 400s with field
// errors, and unknown runs are 404s.
func TestTuneValidation(t *testing.T) {
	_, c, stop := newTestDaemon(t, "", serve.ServerConfig{})
	defer stop()

	_, err := c.Tune(context.Background(), []byte(`{"name":"x","workloads":["mysql"],
		"dimensions":[{"name":"a","field":"ftq","min":64,"max":8}]}`), client.SubmitOptions{})
	apiErr := &client.APIError{}
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
	if len(apiErr.Body.Fields) == 0 || !strings.Contains(apiErr.Body.Fields[0].Field, "dimensions[0]") {
		t.Fatalf("400 body carries no dimension field errors: %+v", apiErr.Body)
	}

	if _, err := c.TuneRun(context.Background(), "tdeadbeef"); !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: want 404, got %v", err)
	}
}

// TestTuneWarmStoreDaemonRestart is the ISSUE's warm-store acceptance
// property at the service level: a daemon restarted over the same
// store directory answers an identical tune request with zero new
// simulations.
func TestTuneWarmStoreDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	space := tuneSpaceJSON(33)

	experiments.FlushResultCache()
	_, c1, stop1 := newTestDaemon(t, dir, serve.ServerConfig{Workers: 2})
	v1, err := c1.Tune(context.Background(), space, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("cold Tune: %v", err)
	}
	final1, err := c1.WaitTune(context.Background(), v1.ID)
	if err != nil || final1.State != serve.JobDone {
		t.Fatalf("cold run: %v / %+v", err, final1)
	}
	stop1()

	// Restart: fresh server, same store dir, cold in-memory caches.
	experiments.FlushResultCache()
	_, c2, stop2 := newTestDaemon(t, dir, serve.ServerConfig{Workers: 2})
	defer stop2()
	missesBefore := obs.CacheMisses.Value()
	v2, err := c2.Tune(context.Background(), space, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("warm Tune: %v", err)
	}
	if v2.ID != v1.ID {
		t.Fatalf("identical space got a different run ID across restarts: %s vs %s", v2.ID, v1.ID)
	}
	final2, err := c2.WaitTune(context.Background(), v2.ID)
	if err != nil || final2.State != serve.JobDone {
		t.Fatalf("warm run: %v / %+v", err, final2)
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 0 {
		t.Fatalf("warm tune re-run simulated %d cells, want 0", d)
	}
	if final2.Stats.CacheHits != final2.Stats.Probes {
		t.Fatalf("warm run: %d/%d probes store-served, want all",
			final2.Stats.CacheHits, final2.Stats.Probes)
	}
	if final2.Best.Label != final1.Best.Label || final2.Best.Score != final1.Best.Score {
		t.Fatalf("warm run found a different incumbent: %+v vs %+v", final2.Best, final1.Best)
	}
}

// TestTuneAcceptanceBandwidth is the acceptance criterion on the
// bandwidth knob space: the seeded search must find a config at least
// as good as the best full-grid cell while simulating at most 25% of
// the grid's unique cells.
func TestTuneAcceptanceBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid comparison is long; run without -short")
	}
	space := []byte(`{
		"name": "bandwidth-tune-e2e",
		"workloads": ["mysql"],
		"objective": "ipc",
		"instructions": 30000,
		"warmup": 10000,
		"seed": 1,
		"search": {"samples": 12, "eta": 4, "rungs": 2, "refine": 16},
		"dimensions": [
			{"name": "mech", "field": "mechanism", "choices": ["baseline", "udp"]},
			{"name": "l2m", "field": "l2_mshrs", "values": [4, 8, 16, 32]},
			{"name": "llcm", "field": "llc_mshrs", "values": [8, 16, 32, 64]},
			{"name": "l2f", "field": "l2_fill_cycles", "values": [1, 4]},
			{"name": "llcf", "field": "llc_fill_cycles", "values": [2, 8]}
		]
	}`)
	sp, err := tune.ParseSpace(strings.NewReader(string(space)))
	if err != nil {
		t.Fatalf("ParseSpace: %v", err)
	}
	grid := int(sp.SpaceSize()) // 128

	experiments.FlushResultCache()
	_, c, stop := newTestDaemon(t, t.TempDir(), serve.ServerConfig{Workers: 4})
	defer stop()

	missesBefore := obs.CacheMisses.Value()
	v, err := c.Tune(context.Background(), space, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	final, err := c.WaitTune(context.Background(), v.ID)
	if err != nil || final.State != serve.JobDone {
		t.Fatalf("tune run: %v / %+v", err, final)
	}
	tuneMisses := obs.CacheMisses.Value() - missesBefore
	if budget := int64(grid / 4); tuneMisses > budget {
		t.Fatalf("tune simulated %d unique cells, budget is %d (25%% of the %d-cell grid)",
			tuneMisses, budget, grid)
	}

	// Full grid at full fidelity, straight through the engine (no store
	// attached so the daemon's cells don't subsidize it).
	specs := make([]experiments.ConfigSpec, 0, grid)
	for _, vec := range sp.Enumerate() {
		specs = append(specs, sp.Spec(vec))
	}
	d, err := sp.ProbeDescriptor(specs, sp.FullFidelity())
	if err != nil {
		t.Fatalf("grid descriptor: %v", err)
	}
	results, err := experiments.RunDescriptorObserved(d, nil, 0, experiments.Options{})
	if err != nil {
		t.Fatalf("grid run: %v", err)
	}
	gridBest := 0.0
	for _, r := range results {
		if r.Result.IPC > gridBest {
			gridBest = r.Result.IPC
		}
	}
	if final.Best.Score < gridBest {
		t.Fatalf("tune best %.6f < grid best %.6f (%d probes, config %s)",
			final.Best.Score, gridBest, final.Stats.Probes, final.Best.Config)
	}
}

// asAPIError unwraps a client.APIError.
func asAPIError(err error, out **client.APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*client.APIError)
	if ok {
		*out = e
	}
	return ok
}
