package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"udpsim/internal/serve/placement"
)

func httpGetBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// twoNodeFixture stands up two daemon HTTP surfaces with distinct disk
// stores and returns them plus a membership view from node A's
// perspective. The prober is never started: both nodes stay alive, so
// routing is purely the ring.
type twoNodeFixture struct {
	storeA, storeB *Store
	urlA, urlB     string
	srvA, srvB     *Server
	members        *placement.Membership // node A's view
	membersB       *placement.Membership // node B's view (same ring)
}

func newTwoNodeFixture(t *testing.T) *twoNodeFixture {
	t.Helper()
	f := &twoNodeFixture{storeA: openTestStore(t), storeB: openTestStore(t)}
	f.srvA = NewServer(ServerConfig{Store: f.storeA})
	f.srvB = NewServer(ServerConfig{Store: f.storeB})
	hsA := httptest.NewServer(f.srvA.Handler())
	hsB := httptest.NewServer(f.srvB.Handler())
	t.Cleanup(hsA.Close)
	t.Cleanup(hsB.Close)
	f.urlA, f.urlB = hsA.URL, hsB.URL
	f.members = placement.NewMembership([]string{f.urlA, f.urlB},
		placement.Config{Self: f.urlA})
	f.membersB = placement.NewMembership([]string{f.urlA, f.urlB},
		placement.Config{Self: f.urlB})
	f.srvA.SetCluster(f.members, nil)
	f.srvB.SetCluster(f.membersB, nil)
	return f
}

// keyOwnedBy scans candidate cache keys until one's content address
// lands on the wanted node.
func (f *twoNodeFixture) keyOwnedBy(t *testing.T, node string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("workload=w%d|mech=udp|sp=1", i)
		if owner, _ := f.members.Owner(ResultAddr(key)); owner == node {
			return key
		}
	}
	t.Fatal("no key owned by node in 1000 candidates — ring is degenerate")
	return ""
}

func TestPeerStoreReadThroughReplicates(t *testing.T) {
	f := newTwoNodeFixture(t)
	ps := &PeerStore{Local: f.storeA, Self: f.urlA, Members: f.members}
	defer ps.Close()

	key := f.keyOwnedBy(t, f.urlB)
	want := testResult("peer", 2.5)
	if err := f.storeB.Save(key, want); err != nil {
		t.Fatal(err)
	}

	got, ok, err := ps.Load(key)
	if err != nil || !ok {
		t.Fatalf("Load via peer: ok=%v err=%v", ok, err)
	}
	if got.IPC != want.IPC || got.Workload != want.Workload {
		t.Fatalf("peer read returned %+v, want %+v", got, want)
	}
	// The remote hit must have been replicated into the local store.
	if _, ok, _ := f.storeA.Load(key); !ok {
		t.Fatal("peer read did not replicate into the local store")
	}
}

func TestPeerStoreSaveWritesBackToOwner(t *testing.T) {
	f := newTwoNodeFixture(t)
	ps := &PeerStore{Local: f.storeA, Self: f.urlA, Members: f.members}
	defer ps.Close()

	key := f.keyOwnedBy(t, f.urlB)
	want := testResult("wb", 3.5)
	if err := ps.Save(key, want); err != nil {
		t.Fatal(err)
	}
	ps.Flush()

	if _, ok, _ := f.storeA.Load(key); !ok {
		t.Fatal("save skipped the local store")
	}
	got, ok, err := f.storeB.Load(key)
	if err != nil || !ok {
		t.Fatalf("owner missing the written-back record: ok=%v err=%v", ok, err)
	}
	if got.IPC != want.IPC {
		t.Fatalf("write-back stored IPC %v, want %v", got.IPC, want.IPC)
	}
}

func TestPeerStoreMissIsCleanMiss(t *testing.T) {
	f := newTwoNodeFixture(t)
	ps := &PeerStore{Local: f.storeA, Self: f.urlA, Members: f.members}
	defer ps.Close()

	if _, ok, err := ps.Load(f.keyOwnedBy(t, f.urlB)); ok || err != nil {
		t.Fatalf("fleet-wide miss must read as (false, nil): ok=%v err=%v", ok, err)
	}
}

func TestPeerStoreDeadPeerDegradesToLocal(t *testing.T) {
	f := newTwoNodeFixture(t)
	f.members.MarkDead(f.urlB)
	ps := &PeerStore{Local: f.storeA, Self: f.urlA, Members: f.members}
	defer ps.Close()

	key := "workload=solo|mech=udp|sp=1"
	if err := ps.Save(key, testResult("solo", 1.0)); err != nil {
		t.Fatal(err)
	}
	ps.Flush()
	if _, ok, err := ps.Load(key); !ok || err != nil {
		t.Fatalf("single-survivor load: ok=%v err=%v", ok, err)
	}
	// Nothing should have crossed the wire to the dead node.
	if _, ok, _ := f.storeB.Load(key); ok {
		t.Fatal("write-back reached a node marked dead")
	}
}

func TestResultPutRejectsMismatchedKey(t *testing.T) {
	f := newTwoNodeFixture(t)
	ps := &PeerStore{Local: f.storeA, Self: f.urlA, Members: f.members,
		Log: nil}
	defer ps.Close()
	// Push a record whose key does not hash to the claimed address.
	it := wbItem{owner: f.urlB, key: "honest-key", addr: ResultAddr("liar-key"), res: testResult("x", 1)}
	ps.init()
	ps.push(it) // the handler must 400 this; push only logs
	if _, ok, _ := f.storeB.Load("honest-key"); ok {
		t.Fatal("owner accepted a record whose key does not hash to its address")
	}
	if _, ok, _ := f.storeB.Load("liar-key"); ok {
		t.Fatal("owner stored a record under the forged address")
	}
}

// TestResultsGETReadsThroughPeers: any node answers GET /v1/results
// for any addr once a PeerStore is installed — a local miss walks the
// ring, a remote hit is replicated, and peer-originated probes stay
// local-only so a fleet-wide miss terminates.
func TestResultsGETReadsThroughPeers(t *testing.T) {
	f := newTwoNodeFixture(t)
	psA := &PeerStore{Local: f.storeA, Self: f.urlA, Members: f.members}
	psB := &PeerStore{Local: f.storeB, Self: f.urlB, Members: f.membersB}
	defer psA.Close()
	defer psB.Close()
	f.srvA.SetCluster(f.members, psA)
	f.srvB.SetCluster(f.membersB, psB)

	// A record held only by node A, for a key A owns.
	key := f.keyOwnedBy(t, f.urlA)
	want := testResult("http-rt", 1.5)
	if err := f.storeA.Save(key, want); err != nil {
		t.Fatal(err)
	}
	addr := ResultAddr(key)

	// A plain client GET on node B answers via peer read-through...
	body, err := httpGetBody(f.urlB + "/v1/results/" + addr)
	if err != nil {
		t.Fatal(err)
	}
	var sr StoredResult
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatalf("undecodable read-through body %q: %v", body, err)
	}
	if sr.Key != key || sr.Result.IPC != want.IPC {
		t.Fatalf("read-through returned key=%q ipc=%v, want key=%q ipc=%v",
			sr.Key, sr.Result.IPC, key, want.IPC)
	}
	// ...and replicates the record into B's local store.
	if _, ok, _ := f.storeB.Load(key); !ok {
		t.Fatal("HTTP read-through did not replicate into the serving node's store")
	}

	// A peer-marked probe is served local-only: B must 404 a record it
	// does not hold instead of forwarding the probe onward.
	key2 := ""
	for i := 0; i < 1000 && key2 == ""; i++ {
		k := fmt.Sprintf("workload=h%d|mech=udp|sp=1", i)
		if owner, _ := f.members.Owner(ResultAddr(k)); owner == f.urlA {
			key2 = k
		}
	}
	if key2 == "" {
		t.Fatal("no key owned by node A in 1000 candidates")
	}
	if err := f.storeA.Save(key2, testResult("local-only", 2.0)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, f.urlB+"/v1/results/"+ResultAddr(key2), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(peerFetchHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer-marked GET got %d, want 404 (local-only)", resp.StatusCode)
	}

	// A fleet-wide miss is one bounded probe sequence ending in 404 —
	// this hangs instead if the local-only guard is broken.
	resp2, err := http.Get(f.urlB + "/v1/results/" + ResultAddr("missing-everywhere"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("fleet-wide miss got %d, want 404", resp2.StatusCode)
	}
}

func TestRingEndpoint(t *testing.T) {
	f := newTwoNodeFixture(t)
	resp, err := httpGetBody(f.urlA + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"enabled": true`, f.urlA, f.urlB} {
		if !strings.Contains(resp, want) {
			t.Fatalf("/v1/ring missing %q in:\n%s", want, resp)
		}
	}
}
