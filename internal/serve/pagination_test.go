package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
)

// TestJobListPagination: GET /v1/jobs pages in stable admission order
// — walking ?limit/?after covers every job exactly once and agrees
// with the unpaged list, and bad cursors are structured 400s.
func TestJobListPagination(t *testing.T) {
	_, c, stop := newTestDaemon(t, "", serve.ServerConfig{Workers: 2})
	defer stop()

	const n = 5
	ids := make([]string, n)
	for i := range ids {
		v, err := c.Submit(context.Background(),
			descriptorJSON(fmt.Sprintf("page-%d", i), uint64(21_000+100*i)), client.SubmitOptions{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = v.ID
	}

	// Unpaged list: every job, in admission order, with seq populated.
	all, err := c.Jobs(context.Background())
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(all) != n {
		t.Fatalf("unpaged list has %d jobs, want %d", len(all), n)
	}
	for i, v := range all {
		if v.ID != ids[i] {
			t.Fatalf("list order differs from admission order at %d: %s vs %s", i, v.ID, ids[i])
		}
		if i > 0 && all[i].Seq <= all[i-1].Seq {
			t.Fatalf("seq not strictly increasing: %d after %d", all[i].Seq, all[i-1].Seq)
		}
	}

	// Page through with limit 2 and collect.
	var walked []string
	after := ""
	pages := 0
	for {
		page, next, err := c.JobsPage(context.Background(), 2, after)
		if err != nil {
			t.Fatalf("JobsPage(after=%q): %v", after, err)
		}
		for _, v := range page {
			walked = append(walked, v.ID)
		}
		pages++
		if next == "" {
			break
		}
		if len(page) != 2 {
			t.Fatalf("non-final page has %d jobs, want 2", len(page))
		}
		after = next
	}
	if pages != 3 {
		t.Fatalf("walk took %d pages, want 3", pages)
	}
	if len(walked) != n {
		t.Fatalf("walk covered %d jobs, want %d", len(walked), n)
	}
	for i, id := range walked {
		if id != ids[i] {
			t.Fatalf("paged order differs from admission order at %d", i)
		}
	}

	// The cursor page excludes the cursor itself and Total stays global.
	var pg serve.JobPage
	raw := getRaw(t, c.Base()+"/v1/jobs?after="+ids[2])
	if err := json.Unmarshal(raw, &pg); err != nil {
		t.Fatalf("decoding page: %v", err)
	}
	if pg.Total != n || len(pg.Jobs) != n-3 || pg.Jobs[0].ID != ids[3] {
		t.Fatalf("after=%s page: total=%d jobs=%d first=%s", ids[2], pg.Total, len(pg.Jobs), pg.Jobs[0].ID)
	}

	// Bad limit and unknown cursor are 400s.
	for _, q := range []string{"?limit=0", "?limit=-3", "?limit=banana", "?after=jnope"} {
		resp, err := http.Get(c.Base() + "/v1/jobs" + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %v", url, resp.StatusCode, err)
	}
	return body
}
