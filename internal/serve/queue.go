package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
)

// Admission-control errors, mapped by the HTTP layer to 429/503.
var (
	// ErrQueueFull means the bounded queue rejected the submission.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the daemon is shutting down and accepts no new
	// work.
	ErrDraining = errors.New("serve: daemon is draining")
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Queue priority levels (higher runs earlier). Any integer is a valid
// priority — these are the conventional levels: interactive
// submissions default to PriorityNormal, the tune driver submits
// exploration probes at PriorityLow so they yield to interactive work,
// and refinement probes at PriorityHigh so a nearly-converged search
// finishes promptly.
const (
	PriorityLow    = -10
	PriorityNormal = 0
	PriorityHigh   = 10
)

// Job is one submitted experiment descriptor moving through the
// scheduler. Jobs are content-addressed: the ID is derived from the
// canonical (validated, defaults-applied) descriptor JSON, so two
// clients submitting the same experiment share one Job — the
// cross-client singleflight the dedup counters measure.
type Job struct {
	ID         string
	Name       string
	Descriptor *experiments.Descriptor
	Priority   int
	Client     string // first submitter
	// TraceID connects everything this job caused — queue-wait,
	// coalesce-merge, store I/O, warmup/measure — into one timeline.
	// Minted at submission or propagated from the client's X-Trace-ID;
	// deduplicated submissions keep the original job's trace. Immutable
	// after creation.
	TraceID string
	// seq is the scheduler-assigned admission sequence number — the
	// stable order GET /v1/jobs pages by. Deduplicated submissions keep
	// the original job's seq. Immutable after creation.
	seq int64

	hub  *eventHub
	done chan struct{}

	mu          sync.Mutex
	state       JobState
	err         string
	cancelAsked bool
	cancelRun   context.CancelFunc // set while running
	submissions int64
	created     time.Time
	started     time.Time
	finished    time.Time
	results     []experiments.DescriptorResult
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure message ("" unless state is failed/canceled).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Results returns the completed grid (nil unless state is done).
func (j *Job) Results() []experiments.DescriptorResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results
}

// Submissions counts how many submissions attached to this job
// (1 = never deduplicated).
func (j *Job) Submissions() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submissions
}

// Seq is the job's admission sequence number: strictly increasing in
// submission order within one scheduler, never reused.
func (j *Job) Seq() int64 { return j.seq }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events exposes the job's event hub for SSE subscriptions.
func (j *Job) Events() *eventHub { return j.hub }

// Publish emits one event on the job's SSE feed. Runners outside this
// package (the cluster forwarder re-publishing a worker's stream) use
// it; in-package code publishes on the hub directly.
func (j *Job) Publish(typ string, v any) { j.hub.publish(typ, v) }

// Cancel requests cancellation: a queued job terminates immediately, a
// running job's context is canceled and the worker winds it down.
// Canceling a terminal job is a no-op.
func (j *Job) Cancel(reason string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.cancelAsked = true
	if j.err == "" {
		j.err = reason
	}
	cancel := j.cancelRun
	queued := j.state == JobQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel() // running: the worker finishes the state transition
	} else if queued {
		// Not yet picked up: the scheduler's dequeue path skips
		// terminal jobs; finish it here.
		j.finish(JobCanceled, nil, reason)
	}
}

// finish moves the job to a terminal state exactly once, records the
// outcome, publishes the terminal event and closes Done.
func (j *Job) finish(state JobState, results []experiments.DescriptorResult, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.results = results
	if errMsg != "" {
		j.err = errMsg
	}
	j.finished = time.Now()
	j.mu.Unlock()
	switch state {
	case JobDone:
		obs.DaemonJobsCompleted.Add(1)
	case JobFailed:
		obs.DaemonJobsFailed.Add(1)
	case JobCanceled:
		obs.DaemonJobsCanceled.Add(1)
	}
	j.hub.publish(string(state), j.view(true))
	close(j.done)
}

// JobID derives the content-addressed job ID of a validated
// descriptor: "j" + the first 32 hex chars of the SHA-256 of its
// canonical JSON (defaults applied, so logically identical submissions
// collide — which is the point).
func JobID(d *experiments.Descriptor) string {
	blob, err := json.Marshal(d)
	if err != nil {
		// Descriptor structs always marshal; defensive fallback.
		blob = []byte(fmt.Sprintf("%+v", d))
	}
	sum := sha256.Sum256(blob)
	return "j" + hex.EncodeToString(sum[:16])
}

// JobRunner executes a job's descriptor and returns the grid results.
// The scheduler cancels ctx on job cancellation, timeout, or forced
// drain. Local execution (the experiment engine) and remote forwarding
// (the cluster coordinator) are both JobRunners — the scheduler cannot
// tell them apart.
type JobRunner interface {
	RunJob(ctx context.Context, job *Job) ([]experiments.DescriptorResult, error)
}

// RunnerFunc adapts a function to JobRunner.
type RunnerFunc func(ctx context.Context, job *Job) ([]experiments.DescriptorResult, error)

// RunJob implements JobRunner.
func (f RunnerFunc) RunJob(ctx context.Context, job *Job) ([]experiments.DescriptorResult, error) {
	return f(ctx, job)
}

// RunFunc is the function form of JobRunner (SchedulerConfig.Run).
type RunFunc func(ctx context.Context, job *Job) ([]experiments.DescriptorResult, error)

// RunGroupFunc executes several coalesced jobs as one merged run (the
// lockstep-batched pool). Results and errors are per job, in input
// order. The scheduler cancels ctx on timeout, forced drain, or once
// every job in the group has been canceled.
type RunGroupFunc func(ctx context.Context, jobs []*Job) ([][]experiments.DescriptorResult, []error)

// SchedulerConfig sizes the scheduler.
type SchedulerConfig struct {
	// Workers is the number of jobs run concurrently (default 1).
	// Per-job simulation parallelism is the RunFunc's business.
	Workers int
	// MaxQueue bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with ErrQueueFull (HTTP 429).
	// Default 64.
	MaxQueue int
	// JobTimeout caps one job's run time (0 = unlimited; for a
	// coalesced group the cap covers the whole merged run).
	JobTimeout time.Duration
	// Run executes a job. Exactly one of Run and Runner is required;
	// Runner wins when both are set.
	Run RunFunc
	// Runner executes a job (interface form — the coordinator installs
	// its forwarder here).
	Runner JobRunner
	// RunGroup, when set together with MaxCoalesce > 1, executes a
	// group of queued jobs sharing a workload image as one merged run.
	RunGroup RunGroupFunc
	// MaxCoalesce caps how many queued jobs one merged run may absorb
	// (<= 1 disables coalescing).
	MaxCoalesce int
	// OnSpan, when set, receives the scheduler's lifecycle spans
	// (queue-wait per job, coalesce-merge per merged group), already
	// stamped with the owning job's trace ID. Must be safe for
	// concurrent use.
	OnSpan func(obs.Span)
	// Log receives scheduler lifecycle logs (nil = discard).
	Log *slog.Logger
}

// Scheduler is the daemon's job queue: per-client FIFO queues drained
// with priority-first, round-robin-fair scheduling onto a bounded
// worker pool, with content-addressed cross-client deduplication and
// graceful drain. All methods are safe for concurrent use.
type Scheduler struct {
	cfg SchedulerConfig

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job   // every job ever submitted, by ID
	queues   map[string][]*Job // client → FIFO of queued jobs
	order    []string          // round-robin rotation of clients with queues
	rr       int               // next rotation start index
	queued   int               // jobs sitting in queues
	running  map[string]*Job   // jobs currently executing
	seq      int64             // admission sequence (stable job-list order)
	draining bool

	wg sync.WaitGroup // worker goroutines
}

// NewScheduler builds and starts a scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Runner != nil {
		cfg.Run = cfg.Runner.RunJob
	}
	s := &Scheduler{
		cfg:     cfg,
		jobs:    map[string]*Job{},
		queues:  map[string][]*Job{},
		running: map[string]*Job{},
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues a descriptor (which must already be validated) for a
// client at a priority (higher runs earlier). If an identical job is
// already known — queued, running, or finished — the submission
// attaches to it instead (deduped=true). Admission control applies
// only to genuinely new jobs.
func (s *Scheduler) Submit(d *experiments.Descriptor, client string, priority int) (job *Job, deduped bool, err error) {
	return s.SubmitTraced(d, client, priority, "")
}

// SubmitTraced is Submit with an explicit trace ID (client-propagated
// X-Trace-ID); an empty traceID mints a fresh one. A deduplicated
// submission keeps the existing job's trace — the work happens once,
// under the first submitter's trace.
func (s *Scheduler) SubmitTraced(d *experiments.Descriptor, client string, priority int, traceID string) (job *Job, deduped bool, err error) {
	if client == "" {
		client = "anonymous"
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	id := JobID(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		existing.mu.Lock()
		existing.submissions++
		existing.mu.Unlock()
		obs.DaemonJobsSubmitted.Add(1)
		obs.DaemonJobsDeduped.Add(1)
		return existing, true, nil
	}
	if s.draining {
		obs.DaemonJobsRejected.Add(1)
		return nil, false, ErrDraining
	}
	if s.queued >= s.cfg.MaxQueue {
		obs.DaemonJobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	s.seq++
	j := &Job{
		ID:         id,
		Name:       d.Name,
		Descriptor: d,
		Priority:   priority,
		Client:     client,
		TraceID:    traceID,
		seq:        s.seq,
		hub:        newEventHub(),
		done:       make(chan struct{}),
		state:      JobQueued,
		created:    time.Now(),
	}
	j.submissions = 1
	s.jobs[id] = j
	if _, ok := s.queues[client]; !ok {
		s.order = append(s.order, client)
	}
	// Priority-ordered insert, FIFO among equal priorities: the new job
	// goes after the last queued job with priority >= its own.
	q := append(s.queues[client], j)
	pos := len(q) - 1
	for pos > 0 && q[pos-1].Priority < priority {
		q[pos] = q[pos-1]
		pos--
	}
	q[pos] = j
	s.queues[client] = q
	s.queued++
	obs.DaemonQueueDepth.Set(int64(s.queued))
	obs.DaemonJobsSubmitted.Add(1)
	j.hub.publish("queued", j.view(false))
	s.cfg.Log.Info("job queued", "id", j.ID, "name", j.Name, "client", client,
		"priority", priority, "trace", traceID, "queue_depth", s.queued)
	s.cond.Signal()
	return j, false, nil
}

// Job looks up a job by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobList returns every known job (unspecified order).
func (s *Scheduler) JobList() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

// QueueDepth reports the number of queued jobs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// next pops the job to run: the highest-priority queue head, ties
// broken round-robin across clients so one chatty client cannot starve
// the rest. Blocks until a job is available; returns nil when draining
// with an empty queue (worker exit signal).
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.queued > 0 {
			j := s.popLocked()
			if j == nil {
				break // queues held only canceled jobs
			}
			j.mu.Lock()
			skip := j.state.Terminal() // canceled while queued
			j.mu.Unlock()
			if !skip {
				return j
			}
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// popLocked removes and returns the next queued job under the
// scheduling policy. Caller holds s.mu.
func (s *Scheduler) popLocked() *Job {
	if len(s.order) == 0 {
		return nil
	}
	// Highest priority among queue heads wins; among equal-priority
	// heads, the first client at or after the rotation cursor wins.
	bestIdx := -1
	bestPrio := 0
	n := len(s.order)
	for k := 0; k < n; k++ {
		idx := (s.rr + k) % n
		q := s.queues[s.order[idx]]
		if len(q) == 0 {
			continue
		}
		if bestIdx == -1 || q[0].Priority > bestPrio {
			bestIdx, bestPrio = idx, q[0].Priority
		}
	}
	if bestIdx == -1 {
		return nil
	}
	client := s.order[bestIdx]
	q := s.queues[client]
	j := q[0]
	q = q[1:]
	s.queued--
	obs.DaemonQueueDepth.Set(int64(s.queued))
	if len(q) == 0 {
		delete(s.queues, client)
		s.order = append(s.order[:bestIdx], s.order[bestIdx+1:]...)
		if bestIdx < s.rr {
			s.rr--
		}
		if len(s.order) > 0 {
			s.rr %= len(s.order)
		} else {
			s.rr = 0
		}
	} else {
		s.queues[client] = q
		// Advance the cursor past the served client for fairness.
		s.rr = (bestIdx + 1) % len(s.order)
	}
	return j
}

// worker runs jobs until drain empties the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		if group := s.coalesce(j); len(group) > 1 {
			s.runGroup(group)
		} else {
			s.runJob(j)
		}
	}
}

// span forwards one lifecycle span to the configured sink (if any).
func (s *Scheduler) span(sp obs.Span) {
	if s.cfg.OnSpan != nil {
		s.cfg.OnSpan(sp)
	}
}

// noteStarted emits the queue-wait telemetry for a job transitioning
// queued → running: the wait histogram and a per-trace span covering
// submission to start.
func (s *Scheduler) noteStarted(j *Job, created, started time.Time) {
	wait := started.Sub(created)
	if wait < 0 {
		wait = 0
	}
	obs.QueueWaitUS.Observe(uint64(wait.Microseconds()))
	s.span(obs.Span{
		Trace: j.TraceID,
		Name:  "queue-wait",
		Start: created,
		End:   started,
		Args:  map[string]any{"job": j.ID, "client": j.Client, "priority": j.Priority},
	})
}

// sharesImage reports whether two descriptors have a workload in
// common — the condition under which batching their grids shares an
// instruction stream.
func sharesImage(a, b *experiments.Descriptor) bool {
	for _, wa := range a.Workloads {
		for _, wb := range b.Workloads {
			if wa == wb {
				return true
			}
		}
	}
	return false
}

// coalesce steals queued jobs that share a workload image with the
// head job, up to MaxCoalesce jobs total, so the group can run as one
// lockstep-batched pool over shared streams. The head job itself was
// chosen by the normal priority/fair policy; stolen jobs jump their
// queues — riding along early is the point of coalescing. Jobs
// canceled while queued are left for the dequeue path to skip.
func (s *Scheduler) coalesce(head *Job) []*Job {
	group := []*Job{head}
	if s.cfg.RunGroup == nil || s.cfg.MaxCoalesce <= 1 {
		return group
	}
	mergeStart := time.Now()
	s.mu.Lock()
	for _, client := range s.order {
		q := s.queues[client]
		kept := q[:0]
		for _, j := range q {
			if len(group) < s.cfg.MaxCoalesce && !j.State().Terminal() &&
				sharesImage(head.Descriptor, j.Descriptor) {
				group = append(group, j)
				s.queued--
				continue
			}
			kept = append(kept, j)
		}
		s.queues[client] = kept
	}
	if len(group) > 1 {
		obs.DaemonQueueDepth.Set(int64(s.queued))
		obs.DaemonJobsCoalesced.Add(int64(len(group) - 1))
		s.dropEmptyQueuesLocked()
	}
	s.mu.Unlock()
	// Coalesce-size distribution: a 1 means a dequeue found nothing to
	// merge, so the histogram's mean is the effective batching factor.
	obs.CoalesceSizeJobs.Observe(uint64(len(group)))
	if len(group) > 1 {
		merged := make([]string, 0, len(group)-1)
		for _, j := range group[1:] {
			merged = append(merged, j.ID)
		}
		s.span(obs.Span{
			Trace: head.TraceID,
			Name:  "coalesce-merge",
			Start: mergeStart,
			End:   time.Now(),
			Args:  map[string]any{"head": head.ID, "merged": merged, "size": len(group)},
		})
	}
	return group
}

// dropEmptyQueuesLocked removes clients whose queues coalescing
// emptied, keeping the rotation cursor on the client it pointed at.
// Caller holds s.mu.
func (s *Scheduler) dropEmptyQueuesLocked() {
	if len(s.order) == 0 {
		return
	}
	cur := s.order[s.rr%len(s.order)]
	kept := s.order[:0]
	for _, c := range s.order {
		if len(s.queues[c]) == 0 {
			delete(s.queues, c)
			continue
		}
		kept = append(kept, c)
	}
	s.order = kept
	s.rr = 0
	for i, c := range s.order {
		if c == cur {
			s.rr = i
			break
		}
	}
}

// runGroup executes coalesced jobs as one merged batched run. The
// group shares one context: canceling a single ride-along job must not
// kill the other clients' jobs, so the shared context is canceled only
// once every job in the group has asked (timeout and forced drain
// still cancel it directly). A job canceled mid-run whose results
// complete anyway finishes Done, same as the single-job race.
func (s *Scheduler) runGroup(group []*Job) {
	base := context.Background()
	ctx, cancel := context.WithCancel(base)
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, s.cfg.JobTimeout)
	}
	defer cancel()

	// Every job's cancelRun: stop the merged run only when no live job
	// in the group still wants it.
	cancelIfAllAsked := func() {
		for _, j := range group {
			j.mu.Lock()
			asked := j.cancelAsked
			j.mu.Unlock()
			if !asked {
				return
			}
		}
		cancel()
	}

	live := group[:0:0]
	for _, j := range group {
		j.mu.Lock()
		if j.cancelAsked { // canceled between dequeue and start
			j.mu.Unlock()
			j.finish(JobCanceled, nil, "canceled")
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		j.cancelRun = cancelIfAllAsked
		created, started := j.created, j.started
		j.mu.Unlock()
		s.noteStarted(j, created, started)
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	s.mu.Lock()
	for _, j := range live {
		s.running[j.ID] = j
	}
	s.mu.Unlock()

	ids := make([]string, len(live))
	for i, j := range live {
		ids[i] = j.ID
		j.hub.publish("started", j.view(false))
	}
	s.cfg.Log.Info("job group started", "ids", ids, "coalesced", len(live))

	results, errs := s.cfg.RunGroup(ctx, live)

	s.mu.Lock()
	for _, j := range live {
		delete(s.running, j.ID)
	}
	s.mu.Unlock()

	for i, j := range live {
		var res []experiments.DescriptorResult
		if i < len(results) {
			res = results[i]
		}
		var err error
		if i < len(errs) {
			err = errs[i]
		}
		s.finishRun(j, res, err)
	}
}

func (s *Scheduler) runJob(j *Job) {
	base := context.Background()
	ctx, cancel := context.WithCancel(base)
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, s.cfg.JobTimeout)
	}
	defer cancel()

	j.mu.Lock()
	if j.cancelAsked { // canceled between dequeue and start
		j.mu.Unlock()
		j.finish(JobCanceled, nil, "canceled")
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancelRun = cancel
	created, started := j.created, j.started
	j.mu.Unlock()
	s.noteStarted(j, created, started)

	s.mu.Lock()
	s.running[j.ID] = j
	s.mu.Unlock()

	j.hub.publish("started", j.view(false))
	s.cfg.Log.Info("job started", "id", j.ID, "name", j.Name)

	results, err := s.cfg.Run(ctx, j)

	s.mu.Lock()
	delete(s.running, j.ID)
	s.mu.Unlock()

	s.finishRun(j, results, err)
}

// finishRun maps a run's outcome to the job's terminal state — shared
// by the single-job and coalesced-group paths.
func (s *Scheduler) finishRun(j *Job, results []experiments.DescriptorResult, err error) {
	j.mu.Lock()
	j.cancelRun = nil
	asked := j.cancelAsked
	j.mu.Unlock()

	switch {
	case err == nil:
		j.finish(JobDone, results, "")
		s.cfg.Log.Info("job done", "id", j.ID, "cells", len(results),
			"elapsed", time.Since(j.started).Round(time.Millisecond))
	case asked || errors.Is(err, context.Canceled):
		j.finish(JobCanceled, nil, "canceled")
		s.cfg.Log.Info("job canceled", "id", j.ID)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(JobCanceled, nil, fmt.Sprintf("timed out after %s", s.cfg.JobTimeout))
		s.cfg.Log.Warn("job timed out", "id", j.ID, "timeout", s.cfg.JobTimeout)
	default:
		j.finish(JobFailed, nil, err.Error())
		s.cfg.Log.Error("job failed", "id", j.ID, "err", err)
	}
}

// Drain gracefully shuts the scheduler down: new submissions are
// rejected, queued jobs are canceled, and running jobs are given until
// ctx expires to finish (their results are persisted by the engine's
// store write-back as usual). When ctx expires first, running jobs are
// canceled cooperatively and Drain waits for the workers to unwind.
// Safe to call more than once.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var queuedJobs []*Job
	for _, q := range s.queues {
		queuedJobs = append(queuedJobs, q...)
	}
	s.queues = map[string][]*Job{}
	s.order = nil
	s.queued = 0
	obs.DaemonQueueDepth.Set(0)
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range queuedJobs {
		j.Cancel("server draining")
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Grace period over: cancel the stragglers and wait for the
	// cooperative cancellation to unwind them.
	s.mu.Lock()
	var running []*Job
	for _, j := range s.running {
		running = append(running, j)
	}
	s.mu.Unlock()
	for _, j := range running {
		j.Cancel("server draining (forced)")
	}
	<-done
	return ctx.Err()
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
