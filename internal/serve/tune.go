package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/tune"
)

// This file is the autotuning service: POST /v1/tune runs the
// internal/tune search driver on the daemon, with candidate probes
// submitted through the ordinary job queue (exploration at
// PriorityLow, refinement at PriorityHigh) and the content-addressed
// result store consulted before every probe — re-probing a known cell
// costs zero simulations. Tune runs are content-addressed like jobs
// (hash of space + objective + seed), so identical tune requests dedup
// onto one running search, and each run streams frontier updates over
// the same SSE machinery jobs use.

// TuneRun is one tune search executing (or finished) on the daemon.
type TuneRun struct {
	ID      string
	Space   *tune.Space
	TraceID string
	Client  string

	hub    *eventHub
	done   chan struct{}
	cancel context.CancelFunc

	mu          sync.Mutex
	state       JobState
	err         string
	submissions int64
	created     time.Time
	started     time.Time
	finished    time.Time
	result      *tune.Result
}

// Done is closed when the run reaches a terminal state.
func (t *TuneRun) Done() <-chan struct{} { return t.done }

// State returns the run's lifecycle phase.
func (t *TuneRun) State() JobState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Result returns the finished search (nil unless state is done).
func (t *TuneRun) Result() *tune.Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result
}

// Events exposes the run's event hub for SSE subscriptions.
func (t *TuneRun) Events() *eventHub { return t.hub }

// Cancel requests cancellation of a running search.
func (t *TuneRun) Cancel() { t.cancel() }

// view renders the run for the API.
func (t *TuneRun) view() TuneView {
	t.mu.Lock()
	v := TuneView{
		ID:            t.ID,
		Name:          t.Space.Name,
		State:         t.state,
		Error:         t.err,
		Objective:     t.Space.Objective,
		Seed:          t.Space.Seed,
		SpaceSize:     t.Space.SpaceSize(),
		PlannedProbes: t.Space.PlannedProbes(),
		TraceID:       t.TraceID,
		Submissions:   t.submissions,
		Created:       timeString(t.created),
		Started:       timeString(t.started),
		Finished:      timeString(t.finished),
	}
	res := t.result
	t.mu.Unlock()
	if res == nil {
		return v
	}
	stats := res.Stats
	v.Stats = &stats
	best := &TuneBest{
		Label:  res.Best.Label,
		Config: res.Best.Config,
		Spec:   res.Best.Spec,
		Score:  res.Best.Score,
	}
	// The incumbent's full-fidelity cells, addressed like job cells so
	// clients fetch the winning records from GET /v1/results/{key}.
	if keys, err := t.Space.CellKeys(res.Best.Spec, t.Space.FullFidelity()); err == nil {
		byW := map[string]experiments.DescriptorResult{}
		for _, r := range res.Best.Results {
			byW[r.Workload] = r
		}
		for i, w := range t.Space.Workloads {
			cv := CellView{Workload: w, Label: res.Best.Label, ResultKey: ResultAddr(keys[i])}
			if r, ok := byW[w]; ok {
				cv.IPC = r.Result.IPC
				cv.IcacheMPKI = r.Result.IcacheMPKI
			}
			best.Cells = append(best.Cells, cv)
		}
	}
	v.Best = best
	return v
}

// finish moves the run to a terminal state exactly once and publishes
// the terminal event.
func (t *TuneRun) finish(state JobState, res *tune.Result, errMsg string) {
	t.mu.Lock()
	if t.state.Terminal() {
		t.mu.Unlock()
		return
	}
	t.state = state
	t.result = res
	t.err = errMsg
	t.finished = time.Now()
	t.mu.Unlock()
	t.hub.publish(string(state), t.view())
	close(t.done)
}

// tuneRun looks up a run by ID.
func (s *Server) tuneRun(id string) (*TuneRun, bool) {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	t, ok := s.tunes[id]
	return t, ok
}

// cancelTunes cancels every live tune run (the drain path).
func (s *Server) cancelTunes() {
	s.tuneMu.Lock()
	runs := make([]*TuneRun, 0, len(s.tunes))
	for _, t := range s.tunes {
		runs = append(runs, t)
	}
	s.tuneMu.Unlock()
	for _, t := range runs {
		t.cancel()
	}
}

// handleTuneSubmit is POST /v1/tune: validate the space, dedup on the
// content-addressed run ID, and start the search in the background.
func (s *Server) handleTuneSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := tune.ParseSpace(io.LimitReader(r.Body, maxDescriptorBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id := tune.RunID(sp)
	s.tuneMu.Lock()
	if existing, ok := s.tunes[id]; ok {
		existing.mu.Lock()
		existing.submissions++
		existing.mu.Unlock()
		s.tuneMu.Unlock()
		v := existing.view()
		v.Deduped = true
		code := http.StatusAccepted
		if existing.State().Terminal() {
			code = http.StatusOK
		}
		writeJSON(w, code, v)
		return
	}
	if s.sched.Draining() {
		s.tuneMu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	traceID := r.Header.Get("X-Trace-ID")
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	ctx, cancel := context.WithCancel(context.Background())
	run := &TuneRun{
		ID:      id,
		Space:   sp,
		TraceID: traceID,
		Client:  clientID(r),
		hub:     newEventHub(),
		done:    make(chan struct{}),
		cancel:  cancel,
		state:   JobQueued,
		created: time.Now(),
	}
	run.submissions = 1
	s.tunes[id] = run
	s.tuneWG.Add(1)
	s.tuneMu.Unlock()
	obs.TuneRuns.Add(1)
	run.hub.publish("queued", run.view())
	s.log.Info("tune run queued", "id", id, "name", sp.Name, "objective", sp.Objective,
		"space", sp.SpaceSize(), "planned_probes", sp.PlannedProbes(), "trace", traceID)
	go s.runTune(ctx, run)
	writeJSON(w, http.StatusAccepted, run.view())
}

// runTune executes one search on its own goroutine. The driver is a
// queue *client*, not a queue worker: it submits probe jobs and waits
// on them, so it must never occupy a scheduler worker slot itself (a
// single-worker daemon would deadlock).
func (s *Server) runTune(ctx context.Context, run *TuneRun) {
	defer s.tuneWG.Done()
	run.mu.Lock()
	run.state = JobRunning
	run.started = time.Now()
	run.mu.Unlock()
	run.hub.publish("started", run.view())

	runStart := time.Now()
	genStart := runStart
	driver := tune.New(run.Space, &schedProber{s: s, run: run})
	driver.OnEvent = func(ev tune.Event) {
		switch ev.Type {
		case "incumbent":
			obs.TuneIncumbentUpdates.Add(1)
		case "generation":
			// One span per generation, on the run's trace: the whole
			// search plus every probe job it spawned renders as one
			// connected Perfetto timeline.
			now := time.Now()
			s.spans.Record(obs.Span{
				Trace: run.TraceID, Name: "tune-generation",
				Start: genStart, End: now,
				Args: map[string]any{
					"phase": ev.Phase, "rung": ev.Rung, "evaluated": ev.Evaluated,
					"best": ev.BestLabel, "best_score": ev.BestScore, "probes": ev.Probes,
				},
			})
			genStart = now
		}
		run.hub.publish(ev.Type, ev)
	}
	res, err := driver.Run(ctx)
	s.spans.Record(obs.Span{
		Trace: run.TraceID, Name: "tune-run", Start: runStart, End: time.Now(),
		Args: map[string]any{"id": run.ID, "name": run.Space.Name},
	})
	switch {
	case err == nil:
		s.log.Info("tune run done", "id", run.ID, "best", res.Best.Label,
			"score", res.Best.Score, "probes", res.Stats.Probes, "cache_hits", res.Stats.CacheHits)
		run.finish(JobDone, res, "")
	case ctx.Err() != nil:
		run.finish(JobCanceled, nil, "tune run canceled")
	default:
		s.log.Warn("tune run failed", "id", run.ID, "err", err)
		run.finish(JobFailed, nil, err.Error())
	}
}

// schedProber is the daemon-side tune prober: consult the result store
// first (the acquisition cache), then submit one probe job for the
// cells that actually need simulating and wait for it.
type schedProber struct {
	s   *Server
	run *TuneRun
}

// tuneSubmitRetry paces re-submission while the queue is full.
const tuneSubmitRetry = 100 * time.Millisecond

// Probe implements tune.Prober.
func (p *schedProber) Probe(ctx context.Context, specs []experiments.ConfigSpec, fid tune.Fidelity, class tune.ProbeClass) ([]tune.Outcome, error) {
	sp := p.run.Space
	d, err := sp.ProbeDescriptor(specs, fid)
	if err != nil {
		return nil, err
	}
	obs.TuneProbes.Add(float64(len(specs)))
	st := p.s.resultTransport()
	outs := make([]tune.Outcome, len(specs))
	var missing []experiments.ConfigSpec
	for i, cs := range specs {
		if st != nil {
			out, ok, err := tune.OutcomeFromStore(st, sp, d, cs)
			if err != nil {
				return nil, err
			}
			if ok {
				outs[i] = out
				obs.TuneCacheProbeHits.Add(1)
				continue
			}
		}
		missing = append(missing, cs)
	}
	if len(missing) == 0 {
		return outs, nil
	}
	sub, err := sp.ProbeDescriptor(missing, fid)
	if err != nil {
		return nil, err
	}
	priority := PriorityLow
	if class == tune.ProbeRefine {
		priority = PriorityHigh
	}
	job, err := p.submit(ctx, sub, priority)
	if err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-job.Done():
	}
	switch job.State() {
	case JobDone:
	case JobCanceled:
		return nil, fmt.Errorf("serve: probe job %s canceled: %s", job.ID, job.Err())
	default:
		return nil, fmt.Errorf("serve: probe job %s failed: %s", job.ID, job.Err())
	}
	byLabel := tune.SplitByLabel(job.Results())
	for i := range specs {
		if outs[i].Results != nil {
			continue
		}
		rs, ok := byLabel[specs[i].Label]
		if !ok {
			return nil, fmt.Errorf("serve: probe job %s returned no cells for label %q", job.ID, specs[i].Label)
		}
		outs[i] = tune.Outcome{Results: rs}
	}
	return outs, nil
}

// submit enqueues one probe descriptor under the tune run's identity
// and trace, waiting out transient queue-full rejections.
func (p *schedProber) submit(ctx context.Context, d *experiments.Descriptor, priority int) (*Job, error) {
	client := "tune:" + p.run.ID
	for {
		job, _, err := p.s.sched.SubmitTraced(d, client, priority, p.run.TraceID)
		switch {
		case err == nil:
			return job, nil
		case errors.Is(err, ErrQueueFull):
			t := time.NewTimer(tuneSubmitRetry)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		default:
			return nil, err
		}
	}
}

// handleTuneList is GET /v1/tune: every run, oldest first.
func (s *Server) handleTuneList(w http.ResponseWriter, r *http.Request) {
	s.tuneMu.Lock()
	views := make([]TuneView, 0, len(s.tunes))
	for _, t := range s.tunes {
		views = append(views, t.view())
	}
	s.tuneMu.Unlock()
	sort.Slice(views, func(i, k int) bool { return views[i].Created < views[k].Created })
	writeJSON(w, http.StatusOK, map[string]any{"runs": views})
}

func (s *Server) tuneOr404(w http.ResponseWriter, r *http.Request) (*TuneRun, bool) {
	id := r.PathValue("id")
	t, ok := s.tuneRun(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: unknown tune run %q", id))
		return nil, false
	}
	return t, true
}

// handleTune is GET /v1/tune/{id}.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tuneOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, t.view())
}

// handleTuneCancel is DELETE /v1/tune/{id}.
func (s *Server) handleTuneCancel(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tuneOr404(w, r)
	if !ok {
		return
	}
	t.Cancel()
	writeJSON(w, http.StatusOK, t.view())
}

// handleTuneEvents is GET /v1/tune/{id}/events: the run's SSE frontier
// stream (probe scores, generation summaries, eliminations, incumbent
// updates, terminal state), resumable via Last-Event-ID exactly like
// job streams.
func (s *Server) handleTuneEvents(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tuneOr404(w, r)
	if !ok {
		return
	}
	s.streamHub(w, r, t.Events())
}
