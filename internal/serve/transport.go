package serve

// The store transport layer: the experiment engine reads its
// persistent cache through a ResultTransport, and the daemon picks the
// implementation at wiring time. A single node passes its *Store
// straight through; a cluster node wraps it in a PeerStore, which adds
// ring-directed peer read-through (ask the key's owner before paying
// for a simulation) and asynchronous write-back replication (push a
// freshly computed result to the shard that owns it). The engine never
// learns the difference — both are just a Load/Save pair with
// miss-not-error semantics.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/serve/placement"
	"udpsim/internal/sim"
)

// ResultTransport is where results live, as seen by the experiment
// engine's read-through cache. Load returns (zero, false, nil) on a
// clean miss; an error means the transport itself failed and the
// caller simulates anyway. Save failures must never fail the
// simulation that produced the result. Implementations must be safe
// for concurrent use.
type ResultTransport interface {
	Load(key string) (sim.Result, bool, error)
	Save(key string, r sim.Result) error
}

// AddrLoader answers content-address lookups (the GET /v1/results
// surface): given an addr, return the cache key that hashes to it and
// the stored result. (zero, zero, false, nil) is a clean miss.
type AddrLoader interface {
	LoadAddr(addr string) (key string, r sim.Result, ok bool, err error)
}

// The disk store is the local transport; PeerStore is the clustered
// one. Both also serve addr lookups, so GET /v1/results reads through
// whichever is installed.
var (
	_ ResultTransport = (*Store)(nil)
	_ ResultTransport = (*PeerStore)(nil)
	_ AddrLoader      = (*Store)(nil)
	_ AddrLoader      = (*PeerStore)(nil)
)

// peerFetchHeader marks a results GET as originating from another
// node's PeerStore. The receiving handler answers from its local store
// only: the sender is already walking the ring, and a missing key must
// read as one bounded probe sequence, not two nodes forwarding the
// same miss to each other forever.
const peerFetchHeader = "X-UDPSim-Peer-Read"

const (
	// peerReadFanout is how many ring-ordered candidates a read probes:
	// the owner plus one successor, so a single slow rebalance (or a
	// just-died owner) does not hide a replicated result.
	peerReadFanout = 2
	// writeBackQueue bounds the async replication backlog; beyond it
	// write-backs are dropped (the result is still on local disk and
	// reachable via the read path's successor probe).
	writeBackQueue = 128
	// peerHTTPTimeout caps one peer round-trip. Results are small
	// (aggregated metrics, not traces), so a slow peer is a dead peer.
	peerHTTPTimeout = 5 * time.Second
)

// PeerStore is the cluster transport: a local disk store fronted by
// the placement ring. Loads that miss locally are fetched from the
// key's ring owner (and one successor) and replicated into the local
// store; saves land locally and are pushed asynchronously to the
// owning shard. Zero peers degrade it to exactly the local store.
type PeerStore struct {
	// Local is the node's own disk store (nil = memory-only node:
	// loads go straight to peers, saves only replicate).
	Local *Store
	// Self is this node's advertised base URL; ring candidates equal
	// to it are skipped (the local store already answered).
	Self string
	// Members is the live ring the transport routes by.
	Members *placement.Membership
	// HTTPClient performs peer fetches and write-backs (nil = a
	// peerHTTPTimeout-bounded default).
	HTTPClient *http.Client
	// OnSpan, when set, receives one "peer-read" span per remote probe
	// sequence. Must be safe for concurrent use.
	OnSpan func(obs.Span)
	// Log receives replication warnings (nil = discard).
	Log *slog.Logger

	initOnce sync.Once
	wb       chan wbItem
	stopCh   chan struct{}
	loopWG   sync.WaitGroup
	pending  sync.WaitGroup // queued-but-unsent write-backs (Flush)
}

type wbItem struct {
	owner string
	key   string
	addr  string
	res   sim.Result
}

func (p *PeerStore) init() {
	p.initOnce.Do(func() {
		if p.HTTPClient == nil {
			p.HTTPClient = &http.Client{Timeout: peerHTTPTimeout}
		}
		if p.Log == nil {
			p.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
		}
		p.wb = make(chan wbItem, writeBackQueue)
		p.stopCh = make(chan struct{})
		p.loopWG.Add(1)
		go p.writeBackLoop()
	})
}

// Load answers from the local store when it can, else walks the key's
// ring candidates. A remote hit is replicated into the local store so
// the next read is local — read-through caching at cluster scope.
func (p *PeerStore) Load(key string) (sim.Result, bool, error) {
	p.init()
	if p.Local != nil {
		if r, ok, err := p.Local.Load(key); ok || err != nil {
			return r, ok, err
		}
	}
	addr := ResultAddr(key)
	start := time.Now()
	probed := 0
	for _, owner := range p.Members.Owners(addr, peerReadFanout) {
		if owner == p.Self {
			continue
		}
		probed++
		r, ok := p.fetch(owner, key, addr)
		if !ok {
			continue
		}
		obs.PeerReadHits.Add(1)
		p.span(start, map[string]any{"addr": addr, "peer": owner, "hit": true})
		if p.Local != nil {
			if err := p.Local.Save(key, r); err != nil {
				p.Log.Warn("peer-read replication failed", "addr", addr, "err", err)
			}
		}
		return r, true, nil
	}
	if probed > 0 {
		obs.PeerReadMisses.Add(1)
		p.span(start, map[string]any{"addr": addr, "probed": probed, "hit": false})
	}
	return sim.Result{}, false, nil
}

// LoadAddr is Load keyed by content address — the GET /v1/results
// path. Any node answers for any addr: a local miss walks the addr's
// ring candidates exactly like Load, and a remote hit is replicated
// into the local store on the way out.
func (p *PeerStore) LoadAddr(addr string) (string, sim.Result, bool, error) {
	p.init()
	if p.Local != nil {
		if key, r, ok, err := p.Local.LoadAddr(addr); ok || err != nil {
			return key, r, ok, err
		}
	}
	start := time.Now()
	probed := 0
	for _, owner := range p.Members.Owners(addr, peerReadFanout) {
		if owner == p.Self {
			continue
		}
		probed++
		sr, ok := p.fetchRecord(owner, addr)
		if !ok {
			continue
		}
		obs.PeerReadHits.Add(1)
		p.span(start, map[string]any{"addr": addr, "peer": owner, "hit": true})
		if p.Local != nil {
			if err := p.Local.Save(sr.Key, sr.Result); err != nil {
				p.Log.Warn("peer-read replication failed", "addr", addr, "err", err)
			}
		}
		return sr.Key, sr.Result, true, nil
	}
	if probed > 0 {
		obs.PeerReadMisses.Add(1)
		p.span(start, map[string]any{"addr": addr, "probed": probed, "hit": false})
	}
	return "", sim.Result{}, false, nil
}

// Save lands the result locally, then routes it to its shard: owned
// keys are counted, foreign keys are queued for async write-back to
// the owner. The local save's error is the caller's only signal —
// replication failures never fail a completed simulation.
func (p *PeerStore) Save(key string, r sim.Result) error {
	p.init()
	var err error
	if p.Local != nil {
		err = p.Local.Save(key, r)
	}
	addr := ResultAddr(key)
	owner, ok := p.Members.Owner(addr)
	if !ok || owner == p.Self {
		obs.RingOwnedKeys.Add(1)
		return err
	}
	p.pending.Add(1)
	select {
	case p.wb <- wbItem{owner: owner, key: key, addr: addr, res: r}:
	default:
		p.pending.Done()
		p.Log.Warn("peer write-back queue full; dropping", "addr", addr, "owner", owner)
	}
	return err
}

// Flush blocks until every queued write-back has been attempted
// (tests; shutdown paths that want replication to land).
func (p *PeerStore) Flush() {
	p.init()
	p.pending.Wait()
}

// Close stops the write-back worker. Call Flush first if queued
// replication should still go out.
func (p *PeerStore) Close() {
	p.init()
	select {
	case <-p.stopCh:
	default:
		close(p.stopCh)
	}
	p.loopWG.Wait()
}

func (p *PeerStore) span(start time.Time, args map[string]any) {
	if p.OnSpan == nil {
		return
	}
	p.OnSpan(obs.Span{Name: "peer-read", Start: start, End: time.Now(), Args: args})
}

// fetch GETs one candidate's copy of addr and verifies the record
// answers for the requested key (a confused peer must read as a miss,
// never as a wrong result).
func (p *PeerStore) fetch(owner, key, addr string) (sim.Result, bool) {
	sr, ok := p.fetchRecord(owner, addr)
	if !ok {
		return sim.Result{}, false
	}
	if sr.Key != key {
		p.Log.Warn("peer served a result for the wrong key", "peer", owner, "addr", addr, "got", sr.Key)
		return sim.Result{}, false
	}
	return sr.Result, true
}

// fetchRecord GETs one candidate's record for addr, marked as a
// peer-originated probe so the remote answers local-only. Content
// addressing is the integrity check: a record whose key does not hash
// to the addr it was fetched from reads as a miss.
func (p *PeerStore) fetchRecord(owner, addr string) (StoredResult, bool) {
	req, err := http.NewRequest(http.MethodGet, peerURL(owner, addr), nil)
	if err != nil {
		return StoredResult{}, false
	}
	req.Header.Set(peerFetchHeader, "1")
	resp, err := p.HTTPClient.Do(req)
	if err != nil {
		return StoredResult{}, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return StoredResult{}, false
	}
	var sr StoredResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&sr); err != nil {
		p.Log.Warn("peer result undecodable", "peer", owner, "addr", addr, "err", err)
		return StoredResult{}, false
	}
	if sr.Key == "" || ResultAddr(sr.Key) != addr {
		p.Log.Warn("peer served a result that does not hash to its address",
			"peer", owner, "addr", addr, "got", sr.Key)
		return StoredResult{}, false
	}
	return sr, true
}

func (p *PeerStore) writeBackLoop() {
	defer p.loopWG.Done()
	for {
		select {
		case <-p.stopCh:
			return
		case it := <-p.wb:
			p.push(it)
			p.pending.Done()
		}
	}
}

// push PUTs one result to its owning shard.
func (p *PeerStore) push(it wbItem) {
	body, err := json.Marshal(StoredResult{Key: it.key, Addr: it.addr, Result: it.res})
	if err != nil {
		p.Log.Warn("write-back marshal failed", "addr", it.addr, "err", err)
		return
	}
	req, err := http.NewRequest(http.MethodPut, peerURL(it.owner, it.addr), strings.NewReader(string(body)))
	if err != nil {
		p.Log.Warn("write-back request failed", "addr", it.addr, "err", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.HTTPClient.Do(req)
	if err != nil {
		p.Log.Warn("write-back failed", "addr", it.addr, "owner", it.owner, "err", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.Log.Warn("write-back rejected", "addr", it.addr, "owner", it.owner, "status", resp.StatusCode)
	}
}

func peerURL(base, addr string) string {
	return fmt.Sprintf("%s/v1/results/%s", strings.TrimRight(base, "/"), addr)
}

// maxResultBytes bounds result-record bodies on the wire (peer fetch
// responses and PUT /v1/results/{key} replication requests). Result
// records are aggregated metrics, a few KB; 4 MiB is generous.
const maxResultBytes = 4 << 20
