package serve

import (
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
	"udpsim/internal/tune"
)

// Wire types shared by the HTTP server and the Go client. Everything a
// client needs to act on lives here; heavyweight payloads (full
// sim.Result) are fetched separately from the content-addressed result
// endpoint.

// APIError is the JSON body of every non-2xx response. Fields carries
// the structured descriptor-validation problems on 400s, so clients
// can map errors back to the offending descriptor fields without
// parsing prose.
type APIError struct {
	Error  string                   `json:"error"`
	Fields []experiments.FieldError `json:"fields,omitempty"`
}

// CellView is one (workload, config) cell of a job, with its
// content-addressed result key and headline metrics. The full result
// record is at GET /v1/results/{result_key}.
type CellView struct {
	Workload string `json:"workload"`
	Label    string `json:"label"`
	// ResultKey is the content address (hex SHA-256 of the canonical
	// config key) under which the cell's result is stored.
	ResultKey string `json:"result_key"`
	// Headline metrics, present once the job is done.
	IPC        float64 `json:"ipc,omitempty"`
	IcacheMPKI float64 `json:"icache_mpki,omitempty"`
}

// JobView is the JSON representation of a job returned by POST
// /v1/jobs, GET /v1/jobs/{id}, and carried in lifecycle events.
type JobView struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	State       JobState `json:"state"`
	Error       string   `json:"error,omitempty"`
	Priority    int      `json:"priority"`
	Client      string   `json:"client"`
	Submissions int64    `json:"submissions"`
	// TraceID is the job's end-to-end trace: every span the job caused
	// (queue-wait, coalesce-merge, store I/O, warmup, measure) carries
	// it, and GET /debug/trace renders the connected timeline.
	TraceID string `json:"trace_id,omitempty"`
	// Deduped is set on submission responses when the POST attached to
	// an existing identical job instead of creating one.
	Deduped bool `json:"deduped,omitempty"`
	// Seq is the admission sequence number — the stable order GET
	// /v1/jobs lists and pages jobs in.
	Seq      int64  `json:"seq,omitempty"`
	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Cells lists the job's grid with per-cell result addresses. The
	// addresses are known at submission time (content addressing needs
	// only the descriptor), so clients can poll results directly.
	Cells []CellView `json:"cells,omitempty"`
}

// JobPage is the JSON body of GET /v1/jobs: one page of jobs in
// admission (seq) order. NextAfter, when set, is the cursor for the
// next page (`?after=<NextAfter>`); Total counts every job the daemon
// knows regardless of paging.
type JobPage struct {
	Jobs      []JobView `json:"jobs"`
	NextAfter string    `json:"next_after,omitempty"`
	Total     int       `json:"total"`
}

// TuneBest is the incumbent of a tune run: its winning config and the
// full-fidelity cells behind the objective score.
type TuneBest struct {
	Label string `json:"label"`
	// Config is the human-readable dimension assignment
	// ("mech=udp l2m=32").
	Config string                 `json:"config"`
	Spec   experiments.ConfigSpec `json:"spec"`
	Score  float64                `json:"score"`
	Cells  []CellView             `json:"cells,omitempty"`
}

// TuneView is the JSON representation of a tune run returned by POST
// /v1/tune and GET /v1/tune/{id}, and carried in its lifecycle events.
type TuneView struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	State     JobState `json:"state"`
	Error     string   `json:"error,omitempty"`
	Objective string   `json:"objective"`
	Seed      int64    `json:"seed"`
	// SpaceSize is the unique candidate count of the space (the
	// full-grid simulation count per workload the search avoids).
	SpaceSize uint64 `json:"space_size"`
	// PlannedProbes is the sampling+halving budget the driver will
	// spend exactly (refinement is bounded separately).
	PlannedProbes int    `json:"planned_probes"`
	TraceID       string `json:"trace_id,omitempty"`
	Deduped       bool   `json:"deduped,omitempty"`
	Submissions   int64  `json:"submissions"`
	Created       string `json:"created,omitempty"`
	Started       string `json:"started,omitempty"`
	Finished      string `json:"finished,omitempty"`
	// Stats is present once the run finished.
	Stats *tune.Stats `json:"stats,omitempty"`
	Best  *TuneBest   `json:"best,omitempty"`
}

// StoredResult is the JSON body of GET /v1/results/{key}.
type StoredResult struct {
	// Key is the canonical configuration key the result is cached
	// under (sim.ConfigKey + simpoint count).
	Key string `json:"key"`
	// Addr is its content address (the URL's {key} component).
	Addr   string     `json:"addr"`
	Result sim.Result `json:"result"`
}

// Health is the JSON body of GET /healthz and /readyz.
type Health struct {
	Status     string `json:"status"`
	UptimeSecs int64  `json:"uptime_secs"`
	QueueDepth int    `json:"queue_depth"`
	Draining   bool   `json:"draining,omitempty"`
}

func timeString(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// view renders the job for the API. withCells includes the grid (cell
// result addresses always; metrics when results exist). Callers must
// not hold j.mu.
func (j *Job) view(withCells bool) JobView {
	j.mu.Lock()
	v := JobView{
		ID:          j.ID,
		Name:        j.Name,
		State:       j.state,
		Error:       j.err,
		Priority:    j.Priority,
		Client:      j.Client,
		TraceID:     j.TraceID,
		Seq:         j.seq,
		Submissions: j.submissions,
		Created:     timeString(j.created),
		Started:     timeString(j.started),
		Finished:    timeString(j.finished),
	}
	results := j.results
	j.mu.Unlock()
	if !withCells {
		return v
	}
	d := j.Descriptor
	// Results (when present) are in workload-major descriptor order —
	// the same order the cell list is built in.
	byCell := map[[2]string]experiments.DescriptorResult{}
	for _, r := range results {
		byCell[[2]string{r.Workload, r.Label}] = r
	}
	for _, w := range d.Workloads {
		for _, cs := range d.Configs {
			cv := CellView{
				Workload:  w,
				Label:     cs.Label,
				ResultKey: ResultAddr(experiments.CellKey(d, w, cs)),
			}
			if r, ok := byCell[[2]string{w, cs.Label}]; ok {
				cv.IPC = r.Result.IPC
				cv.IcacheMPKI = r.Result.IcacheMPKI
			}
			v.Cells = append(v.Cells, cv)
		}
	}
	return v
}

// View is the exported form of view for the HTTP layer and client
// tests: the job as the API would render it, including cells.
func (j *Job) View() JobView { return j.view(true) }
