package serve

import (
	"encoding/json"
	"sync"
)

// Event is one entry of a job's event stream, delivered to SSE
// subscribers as `event: <Type>` / `id: <ID>` / `data: <Data>`.
type Event struct {
	// ID is the 1-based sequence number within the job's stream
	// (monotonic; SSE clients can resume with Last-Event-ID).
	ID int64 `json:"id"`
	// Type is the event kind: "queued", "started", "progress" (one
	// completed grid cell), "sample" (one obs interval sample), and the
	// terminal "done", "failed" or "canceled".
	Type string `json:"type"`
	// Data is the JSON payload (shape depends on Type).
	Data json.RawMessage `json:"data"`
}

// IsTerminal reports whether the event ends the stream.
func (e Event) IsTerminal() bool {
	switch e.Type {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// eventHub fans a job's event stream out to SSE subscribers. It keeps
// a bounded replay buffer — all lifecycle events plus the most recent
// sampleRingCap "sample" events — so a subscriber attaching mid-run
// (or after completion) sees the job's history, most importantly the
// terminal event. Publishing never blocks on slow subscribers: a
// subscriber whose buffer is full loses intermediate events (its
// dropped counter advances) but is guaranteed to observe the terminal
// event because the hub closes subscriber channels only after it is
// buffered in the replay log, and the SSE handler re-reads the tail on
// channel close.
type eventHub struct {
	mu     sync.Mutex
	nextID int64
	life   []Event // non-sample events, kept forever (small)
	ring   []Event // sample events, bounded
	closed bool
	subs   map[*hubSub]struct{}
}

// sampleRingCap bounds the per-job replay buffer of interval samples.
const sampleRingCap = 1024

// subBufCap is each subscriber's channel buffer; a subscriber falling
// more than this far behind starts losing (replayable) samples.
const subBufCap = 256

type hubSub struct {
	ch      chan Event
	dropped int64
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[*hubSub]struct{}{}}
}

// publish appends an event (marshaling v as its payload) and fans it
// out. Terminal events close the stream: subscribers' channels are
// closed after delivery and further publishes are ignored.
func (h *eventHub) publish(typ string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"event encode failed"}`)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.nextID++
	ev := Event{ID: h.nextID, Type: typ, Data: data}
	if typ == "sample" {
		h.ring = append(h.ring, ev)
		if len(h.ring) > sampleRingCap {
			h.ring = h.ring[len(h.ring)-sampleRingCap:]
		}
	} else {
		h.life = append(h.life, ev)
	}
	terminal := ev.IsTerminal()
	if terminal {
		h.closed = true
	}
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
		if terminal {
			close(sub.ch)
			delete(h.subs, sub)
		}
	}
	h.mu.Unlock()
}

// subscribe returns the replayable history after afterID (in ID order)
// and, when the stream is still open, a live channel plus a cancel
// function. For a closed stream the channel is nil and the replay
// already ends with the terminal event.
func (h *eventHub) subscribe(afterID int64) (replay []Event, ch <-chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = h.historyLocked(afterID)
	if h.closed {
		return replay, nil, func() {}
	}
	sub := &hubSub{ch: make(chan Event, subBufCap)}
	h.subs[sub] = struct{}{}
	return replay, sub.ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[sub]; ok {
			delete(h.subs, sub)
			close(sub.ch)
		}
		h.mu.Unlock()
	}
}

// history returns the merged replay buffer after afterID, in ID order.
func (h *eventHub) history(afterID int64) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.historyLocked(afterID)
}

func (h *eventHub) historyLocked(afterID int64) []Event {
	// life and ring are each ID-ordered; merge them.
	out := make([]Event, 0, len(h.life)+len(h.ring))
	i, j := 0, 0
	for i < len(h.life) || j < len(h.ring) {
		var ev Event
		switch {
		case i >= len(h.life):
			ev, j = h.ring[j], j+1
		case j >= len(h.ring):
			ev, i = h.life[i], i+1
		case h.life[i].ID < h.ring[j].ID:
			ev, i = h.life[i], i+1
		default:
			ev, j = h.ring[j], j+1
		}
		if ev.ID > afterID {
			out = append(out, ev)
		}
	}
	return out
}
