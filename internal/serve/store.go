// Package serve is the simulation-as-a-service layer: a disk-backed,
// content-addressed result store that the experiment engine's cache
// reads through, a priority + per-client fair job scheduler with
// cross-client deduplication, and the HTTP/SSE API that cmd/udpsimd
// exposes. The daemon turns the one-shot CLI workflow (whose result
// cache dies with the process) into a persistent service: many clients
// share one warm program-image cache and one on-disk result corpus, so
// a 10-workload × 10-mechanism design-space sweep is simulated at most
// once, ever, per store.
package serve

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/sim"
)

// Store layout under the root directory:
//
//	objects/<aa>/<addr>      committed records (aa = first address byte)
//	tmp/                     in-progress writes (atomic tmp+rename)
//	quarantine/              corrupt records moved aside, never served
//
// A record is a one-line JSON header followed by the payload bytes:
//
//	{"v":1,"key":"…","len":N,"sha256":"…","saved_unix":…}\n
//	<N bytes of payload: JSON-encoded sim.Result>
//
// The header pins the payload length (catches truncation) and its
// SHA-256 (catches bit flips); the filename is the SHA-256 of the
// *key* (content addressing), cross-checked against the header's key
// on read so a misfiled record can never serve the wrong result.

// storeVersion is the record format version; bump on incompatible
// changes (old versions are quarantined, i.e. recomputed).
const storeVersion = 1

// recordHeader is the first line of every record file.
type recordHeader struct {
	V         int    `json:"v"`
	Key       string `json:"key"`
	Len       int    `json:"len"`
	SHA256    string `json:"sha256"`
	SavedUnix int64  `json:"saved_unix"`
}

// ResultAddr returns the content address (hex SHA-256) of a canonical
// result-cache key — the {key} component of GET /v1/results/{key}.
func ResultAddr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Store is the disk-backed, content-addressed result store with an
// in-memory LRU read layer. All methods are safe for concurrent use.
// It implements experiments.ResultStore, so installing it with
// experiments.SetResultStore makes every engine cache miss read
// through it.
type Store struct {
	dir string
	log *slog.Logger

	mu       sync.Mutex
	lruCap   int64 // byte budget for cached payloads
	lruBytes int64 // payload bytes currently cached
	lru      *list.List               // front = most recently used
	lruIdx   map[string]*list.Element // addr → element
}

type lruEntry struct {
	addr string
	key  string
	res  sim.Result
	size int64 // payload (JSON) bytes, the unit the capacity bounds
}

// DefaultCacheBytes bounds the in-memory layer when OpenStore is given
// a non-positive capacity: 64 MiB holds a full paper-scale sweep grid
// hot (a Result payload is a few KB) without surprising a small host.
const DefaultCacheBytes int64 = 64 << 20

// OpenStore opens (creating if needed) a result store rooted at dir.
// cacheBytes budgets the in-memory LRU read layer in payload bytes
// (<= 0 means DefaultCacheBytes; cmd/udpsimd exposes it as
// -store-cache-mb). Leftover tmp files from a crashed writer are
// removed; committed records are validated lazily on first read.
func OpenStore(dir string, cacheBytes int64, log *slog.Logger) (*Store, error) {
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: opening store %s: %w", dir, err)
		}
	}
	// A tmp file can only be left by a writer that died before its
	// rename; its record was never visible, so deleting it is safe.
	if stale, err := filepath.Glob(filepath.Join(dir, "tmp", "*")); err == nil {
		for _, p := range stale {
			_ = os.Remove(p)
		}
	}
	obs.StoreCacheCapacityBytes.Set(float64(cacheBytes))
	return &Store{
		dir:    dir,
		log:    log,
		lruCap: cacheBytes,
		lru:    list.New(),
		lruIdx: map[string]*list.Element{},
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(addr string) string {
	return filepath.Join(s.dir, "objects", addr[:2], addr)
}

// Load returns the stored result for a canonical cache key: LRU first,
// then disk. A corrupt on-disk record is quarantined and reported as a
// miss so the caller recomputes (and re-Saves) it. The error return is
// reserved for store I/O failures.
func (s *Store) Load(key string) (sim.Result, bool, error) {
	addr := ResultAddr(key)
	if r, ok := s.lruGet(addr); ok {
		return r, true, nil
	}
	key2, r, size, ok, err := s.loadDisk(addr)
	if err != nil || !ok {
		return sim.Result{}, false, err
	}
	if key2 != key {
		// SHA-256 collision or a record filed under the wrong name;
		// either way it is not the result for this key.
		s.quarantine(addr, fmt.Sprintf("key mismatch: record key %q does not hash to its address", key2))
		return sim.Result{}, false, nil
	}
	s.lruPut(addr, key, r, size)
	return r, true, nil
}

// LoadAddr returns the record at a content address (for the HTTP
// GET /v1/results/{key} path, where the client holds the address, not
// the full canonical key).
func (s *Store) LoadAddr(addr string) (key string, r sim.Result, ok bool, err error) {
	if !validAddr(addr) {
		return "", sim.Result{}, false, nil
	}
	s.mu.Lock()
	if el, hit := s.lruIdx[addr]; hit {
		e := el.Value.(*lruEntry)
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return e.key, e.res, true, nil
	}
	s.mu.Unlock()
	key, r, size, ok, err := s.loadDisk(addr)
	if err != nil || !ok {
		return "", sim.Result{}, false, err
	}
	if ResultAddr(key) != addr {
		s.quarantine(addr, "key mismatch: record key does not hash to its address")
		return "", sim.Result{}, false, nil
	}
	s.lruPut(addr, key, r, size)
	return key, r, true, nil
}

func validAddr(addr string) bool {
	if len(addr) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(addr)
	return err == nil
}

// loadDisk reads and verifies the record at addr, returning the
// payload size for LRU accounting. Corrupt records are quarantined and
// reported as a miss.
func (s *Store) loadDisk(addr string) (string, sim.Result, int64, bool, error) {
	f, err := os.Open(s.objectPath(addr))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", sim.Result{}, 0, false, nil
		}
		return "", sim.Result{}, 0, false, fmt.Errorf("serve: store read %s: %w", addr, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	headerLine, err := br.ReadBytes('\n')
	if err != nil {
		s.quarantine(addr, fmt.Sprintf("unreadable header: %v", err))
		return "", sim.Result{}, 0, false, nil
	}
	var h recordHeader
	if err := json.Unmarshal(headerLine, &h); err != nil || h.V != storeVersion || h.Len < 0 {
		s.quarantine(addr, "malformed header")
		return "", sim.Result{}, 0, false, nil
	}
	payload, err := io.ReadAll(io.LimitReader(br, int64(h.Len)+1))
	if err != nil || len(payload) != h.Len {
		s.quarantine(addr, fmt.Sprintf("payload length %d != recorded %d (truncated or padded)", len(payload), h.Len))
		return "", sim.Result{}, 0, false, nil
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		s.quarantine(addr, "payload checksum mismatch (bit flip)")
		return "", sim.Result{}, 0, false, nil
	}
	var r sim.Result
	if err := json.Unmarshal(payload, &r); err != nil {
		s.quarantine(addr, fmt.Sprintf("payload decode: %v", err))
		return "", sim.Result{}, 0, false, nil
	}
	return h.Key, r, int64(len(payload)), true, nil
}

// quarantine moves a corrupt record out of objects/ so it is never
// served again; the next Load of its key recomputes and rewrites it.
func (s *Store) quarantine(addr, reason string) {
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s.%d.corrupt", addr, time.Now().UnixNano()))
	if err := os.Rename(s.objectPath(addr), dst); err != nil {
		// Already gone (concurrent quarantine) or unmovable; removing
		// is the fallback that still prevents serving it.
		_ = os.Remove(s.objectPath(addr))
	}
	obs.StoreQuarantined.Add(1)
	s.log.Warn("store: quarantined corrupt record", "addr", addr, "reason", reason)
	s.mu.Lock()
	if el, ok := s.lruIdx[addr]; ok {
		s.removeLocked(el)
	}
	s.mu.Unlock()
}

// saveAttempts/backoff shape the retry loop for transient write
// failures (EINTR-ish hiccups, racing directory creation); persistent
// failures (ENOSPC, EROFS) surface after the last attempt.
const saveAttempts = 3

var saveBackoff = 10 * time.Millisecond

// Save atomically persists a result under its canonical key:
// serialize, write to tmp/, fsync, rename into objects/. Transient
// errors are retried with backoff. Save never partially publishes — a
// reader sees the full committed record or nothing.
func (s *Store) Save(key string, r sim.Result) error {
	addr := ResultAddr(key)
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: store encode: %w", err)
	}
	sum := sha256.Sum256(payload)
	header, err := json.Marshal(recordHeader{
		V: storeVersion, Key: key, Len: len(payload),
		SHA256: hex.EncodeToString(sum[:]), SavedUnix: time.Now().Unix(),
	})
	if err != nil {
		return fmt.Errorf("serve: store encode header: %w", err)
	}
	var rec bytes.Buffer
	rec.Grow(len(header) + 1 + len(payload))
	rec.Write(header)
	rec.WriteByte('\n')
	rec.Write(payload)

	for attempt := 0; ; attempt++ {
		err = s.writeRecord(addr, rec.Bytes())
		if err == nil {
			break
		}
		if attempt+1 >= saveAttempts {
			return err
		}
		time.Sleep(saveBackoff << attempt)
	}
	s.lruPut(addr, key, r, int64(len(payload)))
	return nil
}

func (s *Store) writeRecord(addr string, rec []byte) error {
	if err := os.MkdirAll(filepath.Dir(s.objectPath(addr)), 0o755); err != nil {
		return fmt.Errorf("serve: store shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), addr+".*")
	if err != nil {
		return fmt.Errorf("serve: store tmp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("serve: store fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("serve: store close: %w", err)
	}
	if err := os.Rename(tmpName, s.objectPath(addr)); err != nil {
		cleanup()
		return fmt.Errorf("serve: store commit: %w", err)
	}
	return nil
}

func (s *Store) lruGet(addr string) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.lruIdx[addr]
	if !ok {
		return sim.Result{}, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (s *Store) lruPut(addr, key string, r sim.Result, size int64) {
	if size > s.lruCap {
		return // a single over-budget payload would evict everything for nothing
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.lruIdx[addr]; ok {
		e := el.Value.(*lruEntry)
		s.lruBytes += size - e.size
		e.res, e.size = r, size
		s.lru.MoveToFront(el)
	} else {
		s.lruIdx[addr] = s.lru.PushFront(&lruEntry{addr: addr, key: key, res: r, size: size})
		s.lruBytes += size
	}
	for s.lruBytes > s.lruCap {
		s.removeLocked(s.lru.Back())
	}
	obs.StoreCacheBytes.Set(float64(s.lruBytes))
}

// removeLocked drops one LRU element and its byte accounting. Caller
// holds s.mu.
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*lruEntry)
	s.lru.Remove(el)
	delete(s.lruIdx, e.addr)
	s.lruBytes -= e.size
	obs.StoreCacheBytes.Set(float64(s.lruBytes))
}

// LRULen reports the in-memory layer's population (tests, /debug).
func (s *Store) LRULen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// LRUBytes reports the payload bytes currently held by the in-memory
// layer (the udpsim_store_cache_bytes gauge's source of truth).
func (s *Store) LRUBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lruBytes
}
