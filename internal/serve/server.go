package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve/placement"
	"udpsim/internal/sim"
)

// ServerConfig sizes the daemon.
type ServerConfig struct {
	// Store is the persistent result store (nil = in-memory only; the
	// /v1/results endpoint then 404s everything).
	Store *Store
	// Workers is the number of jobs run concurrently (default 1).
	Workers int
	// MaxQueue bounds queued jobs (admission control; default 64).
	MaxQueue int
	// JobTimeout caps one job's runtime (0 = unlimited).
	JobTimeout time.Duration
	// Parallelism is per-job grid-cell concurrency (0 = GOMAXPROCS).
	Parallelism int
	// Interval is the obs sampling interval in cycles for the SSE
	// event stream (0 disables "sample" events; default 10000).
	Interval uint64
	// Batch enables lockstep batching: each job's grid cells sharing a
	// workload image step over one shared instruction stream, and
	// queued jobs sharing an image are coalesced into one merged
	// batched run. Results are bit-identical to unbatched runs — this
	// is a pure throughput knob.
	Batch bool
	// MaxCoalesce caps how many queued jobs one batched run may merge
	// (only meaningful with Batch; default 4).
	MaxCoalesce int
	// Transport, when set, replaces Store as the engine's read-through
	// layer (cluster nodes install a PeerStore here; the local Store
	// keeps serving GET /v1/results directly). Nil = Store.
	Transport ResultTransport
	// Members, when set, is the node's view of the cluster — GET
	// /v1/ring renders it and replicated PUTs consult it for ownership
	// accounting. Both Transport and Members can also be installed
	// after construction with SetCluster (the wiring order problem:
	// worker URLs are only known once their listeners are up).
	Members *placement.Membership
	// Runner, when set, replaces local execution for every job (the
	// coordinator installs its forwarder here; see also SetRunner).
	Runner JobRunner
	// Log receives request/lifecycle logs (nil = discard).
	Log *slog.Logger
}

// Server wires the scheduler, the store and the experiment engine into
// an HTTP surface. Build with NewServer, mount Handler, and call
// Drain on shutdown.
type Server struct {
	cfg       ServerConfig
	log       *slog.Logger
	sched     *Scheduler
	spans     *obs.SpanRecorder
	startedAt time.Time
	ready     atomic.Bool

	// Cluster wiring, installable post-construction (SetCluster,
	// SetRunner) because peer URLs are often unknown until listeners
	// are bound.
	clusterMu sync.RWMutex
	members   *placement.Membership
	transport ResultTransport
	runner    JobRunner

	// Tune-run registry: content-addressed searches executing on their
	// own goroutines (queue clients, not queue workers).
	tuneMu sync.Mutex
	tunes  map[string]*TuneRun
	tuneWG sync.WaitGroup
}

// NewServer builds a server. Its store (or Transport override) rides
// into the engine per job via Options.Store, so several servers in one
// process keep distinct stores. The server starts ready; Drain flips
// readiness off.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10_000
	}
	if cfg.Batch && cfg.MaxCoalesce == 0 {
		cfg.MaxCoalesce = 4
	}
	s := &Server{cfg: cfg, log: cfg.Log, startedAt: time.Now(),
		spans:   obs.NewSpanRecorder(spanRecorderCapacity),
		members: cfg.Members, transport: cfg.Transport, runner: cfg.Runner,
		tunes: map[string]*TuneRun{}}
	scfg := SchedulerConfig{
		Workers:    cfg.Workers,
		MaxQueue:   cfg.MaxQueue,
		JobTimeout: cfg.JobTimeout,
		Run:        s.runJob,
		OnSpan:     s.spans.Record,
		Log:        cfg.Log,
	}
	if cfg.Batch {
		scfg.RunGroup = s.runJobGroup
		scfg.MaxCoalesce = cfg.MaxCoalesce
	}
	s.sched = NewScheduler(scfg)
	s.ready.Store(true)
	return s
}

// spanRecorderCapacity bounds the daemon's span ring: at ~6 spans per
// job it holds the last few thousand jobs' worth of timeline.
const spanRecorderCapacity = 16384

// Scheduler exposes the underlying queue (tests, cmd wiring).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// SetCluster installs the node's membership view and result transport
// after construction — the wiring order when peer URLs only exist once
// every listener is bound. Call before the first job runs.
func (s *Server) SetCluster(m *placement.Membership, t ResultTransport) {
	s.clusterMu.Lock()
	s.members, s.transport = m, t
	s.clusterMu.Unlock()
}

// SetRunner replaces local execution for every subsequent job (the
// coordinator installs its forwarder here). Call before the first job
// runs.
func (s *Server) SetRunner(r JobRunner) {
	s.clusterMu.Lock()
	s.runner = r
	s.clusterMu.Unlock()
}

// Members returns the node's cluster view (nil on single-node setups).
func (s *Server) Members() *placement.Membership {
	s.clusterMu.RLock()
	defer s.clusterMu.RUnlock()
	return s.members
}

// resultTransport resolves the engine's read-through layer: the
// installed transport, else the plain disk store, else nil
// (memory-only).
func (s *Server) resultTransport() ResultTransport {
	s.clusterMu.RLock()
	t := s.transport
	s.clusterMu.RUnlock()
	if t != nil {
		return t
	}
	if s.cfg.Store != nil {
		return s.cfg.Store
	}
	return nil
}

// jobRunner resolves the installed runner override (nil = run
// locally).
func (s *Server) jobRunner() JobRunner {
	s.clusterMu.RLock()
	defer s.clusterMu.RUnlock()
	return s.runner
}

// LocalRunner exposes in-process execution as a JobRunner — the
// fallback a coordinator's forwarder uses when no worker is alive.
func (s *Server) LocalRunner() JobRunner { return RunnerFunc(s.runLocal) }

// RecordSpan adds one span to the server's lifecycle recorder (the
// cluster forwarder's sink).
func (s *Server) RecordSpan(sp obs.Span) { s.spans.Record(sp) }

// Spans returns every recorded lifecycle span oldest-first (tests,
// cmd/udpsimd's -trace-out shutdown export).
func (s *Server) Spans() []obs.Span { return s.spans.Spans() }

// jobSpanSink returns the engine's OnSpan callback for one job: stamp
// the job's trace ID onto each span, then record it.
func (s *Server) jobSpanSink(j *Job) func(obs.Span) {
	return func(sp obs.Span) {
		sp.Trace = j.TraceID
		s.spans.Record(sp)
	}
}

// runJob is the scheduler's entry point: jobs dispatch to the
// installed runner override (the cluster forwarder) when one exists,
// else run locally.
func (s *Server) runJob(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
	if r := s.jobRunner(); r != nil {
		return r.RunJob(ctx, j)
	}
	return s.runLocal(ctx, j)
}

// runLocal executes one job through the engine's memoized,
// store-backed descriptor runner, forwarding per-cell progress and
// per-interval obs samples to the job's event hub (the SSE feed).
func (s *Server) runLocal(ctx context.Context, j *Job) ([]experiments.DescriptorResult, error) {
	opts := experiments.Options{
		Context:  ctx,
		Interval: s.cfg.Interval,
		Batch:    s.cfg.Batch,
		Store:    s.resultTransport(),
		OnSample: func(sample obs.IntervalSample) { j.hub.publish("sample", sample) },
		OnSpan:   s.jobSpanSink(j),
	}
	progress := func(line string) {
		j.hub.publish("progress", map[string]string{"line": line})
	}
	results, err := experiments.RunDescriptorObserved(j.Descriptor, progress, s.cfg.Parallelism, opts)
	if err == nil {
		s.persistResults(j.Descriptor, results)
	}
	return results, err
}

// persistResults writes a completed job's cells through the result
// transport. The engine already saves every cell it *simulates*; this
// covers cells served from the process-wide in-memory memo, whose
// records may predate this node's store (another in-process node, a
// run before the store was attached). GET /v1/results must be able to
// serve every cell of every job this daemon reported done.
func (s *Server) persistResults(d *experiments.Descriptor, results []experiments.DescriptorResult) {
	st := s.resultTransport()
	if st == nil {
		return
	}
	specs := make(map[string]experiments.ConfigSpec, len(d.Configs))
	for _, cs := range d.Configs {
		specs[cs.Label] = cs
	}
	for _, r := range results {
		cs, ok := specs[r.Label]
		if !ok {
			continue
		}
		key := experiments.CellKey(d, r.Workload, cs)
		if _, ok, _ := st.Load(key); ok {
			continue // already persisted (the common, simulated-here case)
		}
		if err := st.Save(key, r.Result); err != nil {
			s.log.Warn("persisting cached cell failed", "key", key, "err", err)
		}
	}
}

// runJobGroup executes coalesced jobs sharing a workload image as one
// merged descriptor pool: the engine groups all cells across jobs by
// image and steps each group's machines in lockstep over one shared
// stream. Each job keeps its own SSE feed — progress lines and obs
// samples route to the job whose cell produced them.
func (s *Server) runJobGroup(ctx context.Context, group []*Job) ([][]experiments.DescriptorResult, []error) {
	jobs := make([]experiments.DescriptorJob, len(group))
	for i, j := range group {
		j := j
		jobs[i] = experiments.DescriptorJob{
			D: j.Descriptor,
			Progress: func(line string) {
				j.hub.publish("progress", map[string]string{"line": line})
			},
			Opts: experiments.Options{
				Interval: s.cfg.Interval,
				Store:    s.resultTransport(),
				OnSample: func(sample obs.IntervalSample) { j.hub.publish("sample", sample) },
				OnSpan:   s.jobSpanSink(j),
			},
		}
	}
	results, errs := experiments.RunDescriptorsBatched(ctx, jobs, s.cfg.Parallelism)
	for i, j := range group {
		if i < len(results) && (i >= len(errs) || errs[i] == nil) {
			s.persistResults(j.Descriptor, results[i])
		}
	}
	return results, errs
}

// Drain stops admission, cancels queued jobs, lets running jobs finish
// until ctx expires, and flips /readyz to 503 — the SIGTERM path. Tune
// runs are canceled first so their driver goroutines stop submitting
// into the draining queue.
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false)
	s.cancelTunes()
	tunesDone := make(chan struct{})
	go func() { s.tuneWG.Wait(); close(tunesDone) }()
	select {
	case <-tunesDone:
	case <-ctx.Done():
	}
	return s.sched.Drain(ctx)
}

// maxDescriptorBytes bounds POST /v1/jobs bodies.
const maxDescriptorBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs              submit an experiment descriptor
//	GET    /v1/jobs              list jobs (paged: ?limit= and ?after=)
//	GET    /v1/jobs/{id}         job status (cells + result keys)
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/jobs/{id}/events  SSE stream (progress, samples, terminal)
//	POST   /v1/tune              submit a parameter-space search
//	GET    /v1/tune              list tune runs
//	GET    /v1/tune/{id}         tune-run status (stats + incumbent)
//	DELETE /v1/tune/{id}         cancel a tune run
//	GET    /v1/tune/{id}/events  SSE stream (probes, generations, incumbents)
//	GET    /v1/results/{key}     content-addressed result record (cluster
//	                             nodes answer for any key via peer read-through)
//	GET    /v1/mechanisms        registered mechanism registry
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 while draining)
//	GET    /metrics              Prometheus text exposition
//	GET    /debug/vars           expvar (queue depth, dedup, store hit-rate)
//	GET    /debug/trace          Chrome trace-event JSON of recorded spans
//
// Every route runs under the observability middleware: structured
// access logs with a request ID, panic-to-500 recovery, per-route
// latency histograms and an in-flight gauge.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Each route carries its own label because Go 1.22's mux cannot
	// report the matched pattern back to middleware.
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("/v1/jobs/{id}/events", s.handleEvents))
	mux.HandleFunc("POST /v1/tune", s.instrument("/v1/tune", s.handleTuneSubmit))
	mux.HandleFunc("GET /v1/tune", s.instrument("/v1/tune", s.handleTuneList))
	mux.HandleFunc("GET /v1/tune/{id}", s.instrument("/v1/tune/{id}", s.handleTune))
	mux.HandleFunc("DELETE /v1/tune/{id}", s.instrument("/v1/tune/{id}", s.handleTuneCancel))
	mux.HandleFunc("GET /v1/tune/{id}/events", s.instrument("/v1/tune/{id}/events", s.handleTuneEvents))
	mux.HandleFunc("GET /v1/results/{key}", s.instrument("/v1/results/{key}", s.handleResult))
	mux.HandleFunc("PUT /v1/results/{key}", s.instrument("/v1/results/{key}", s.handleResultPut))
	mux.HandleFunc("GET /v1/ring", s.instrument("/v1/ring", s.handleRing))
	mux.HandleFunc("GET /v1/mechanisms", s.instrument("/v1/mechanisms", s.handleMechanisms))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", obs.Metrics.Handler().ServeHTTP))
	mux.HandleFunc("GET /debug/vars", s.instrument("/debug/vars", expvar.Handler().ServeHTTP))
	mux.HandleFunc("GET /debug/trace", s.instrument("/debug/trace", s.handleTrace))
	return mux
}

// handleTrace renders every recorded lifecycle span as Chrome
// trace-event JSON — open the response in Perfetto and a daemon
// session (including coalesced batches) appears as one timeline, one
// track group per trace ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeSpans(w, s.spans.Spans())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	body := APIError{Error: err.Error()}
	if ve := experiments.AsValidationError(err); ve != nil {
		body.Fields = ve.Fields
	}
	writeJSON(w, code, body)
}

// clientID identifies the submitting client for the fair queue: the
// X-UDPSim-Client header when present, else the remote address.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-UDPSim-Client"); c != "" {
		return c
	}
	return r.RemoteAddr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	d, err := experiments.ParseDescriptor(io.LimitReader(r.Body, maxDescriptorBytes))
	if err != nil {
		// Structured 400: the validation error's field list maps each
		// problem to its descriptor field, and the unknown-mechanism
		// reason carries the registered-mechanism list just like the
		// CLIs' -list-mechanisms hint.
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Trace workloads are resolved before enqueueing: files load and
	// register once, and the descriptor's sha256 fields are finalized so
	// the job's content-addressed ID — and every cell key — is derived
	// from the trace bytes, not the submitting path.
	if err := experiments.ResolveTraces(d); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	priority := 0
	if p := r.URL.Query().Get("priority"); p != "" {
		priority, err = strconv.Atoi(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad priority %q: %w", p, err))
			return
		}
	}
	job, deduped, err := s.sched.SubmitTraced(d, clientID(r), priority, r.Header.Get("X-Trace-ID"))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	v := job.view(true)
	v.Deduped = deduped
	code := http.StatusAccepted
	if job.State().Terminal() {
		code = http.StatusOK // deduped onto an already-finished job
	}
	writeJSON(w, code, v)
}

// handleJobList pages the job registry in admission (seq) order —
// stable across requests, so `?after=<last id>` cursors never skip or
// duplicate entries as new jobs arrive. Without ?limit the whole list
// comes back in one page (the pre-paging behavior udpstat relies on).
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad limit %q: want a positive integer", v))
			return
		}
		limit = n
	}
	jobs := s.sched.JobList()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view(false))
	}
	sort.Slice(views, func(i, k int) bool { return views[i].Seq < views[k].Seq })
	page := JobPage{Total: len(views)}
	if after := r.URL.Query().Get("after"); after != "" {
		idx := -1
		for i, v := range views {
			if v.ID == after {
				idx = i
				break
			}
		}
		if idx < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: unknown after cursor %q", after))
			return
		}
		views = views[idx+1:]
	}
	if limit > 0 && len(views) > limit {
		views = views[:limit]
		page.NextAfter = views[len(views)-1].ID
	}
	page.Jobs = views
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	j.Cancel("canceled by client")
	writeJSON(w, http.StatusOK, j.view(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.streamHub(w, r, j.Events())
}

// streamHub serves one eventHub over SSE: cursor resolution
// (Last-Event-ID header or ?after=), replay, live tail with pings, and
// the history-tail re-read that guarantees the terminal event is
// delivered even when a subscriber buffer overflowed. Shared by job and
// tune-run event streams.
func (s *Server) streamHub(w http.ResponseWriter, r *http.Request, hub *eventHub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	// Resolve the resume cursor before any SSE header goes out: an
	// unparseable value must 400 (silently treating it as 0 would
	// replay the whole stream), and negatives clamp to "from the
	// start" — event IDs begin at 1.
	var afterID int64
	src, v := "Last-Event-ID header", r.Header.Get("Last-Event-ID")
	if v == "" {
		src, v = "after parameter", r.URL.Query().Get("after")
	}
	if v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad %s %q: %w", src, v, err))
			return
		}
		afterID = max(id, 0)
	}
	replay, ch, cancel := hub.subscribe(afterID)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	last := afterID
	writeEv := func(ev Event) bool {
		fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.ID, ev.Data)
		last = ev.ID
		fl.Flush()
		return !ev.IsTerminal()
	}
	for _, ev := range replay {
		if !writeEv(ev) {
			return
		}
	}
	if ch == nil {
		return // stream already closed; replay ended with the terminal event
	}
	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal published (possibly while our buffer was
				// full): replay the tail we missed, which is
				// guaranteed to contain the terminal event.
				for _, ev := range hub.history(last) {
					if !writeEv(ev) {
						return
					}
				}
				return
			}
			if !writeEv(ev) {
				return
			}
		case <-ping.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("key")
	// Resolve the lookup layer: the installed transport (cluster nodes
	// answer for any addr via peer read-through), unless this request
	// IS a peer's read-through probe — those are served local-only so a
	// missing key stays one bounded probe sequence instead of two
	// PeerStores bouncing the miss between nodes forever.
	var src AddrLoader
	if s.cfg.Store != nil {
		src = s.cfg.Store
	}
	if r.Header.Get(peerFetchHeader) == "" {
		if al, ok := s.resultTransport().(AddrLoader); ok {
			src = al
		}
	}
	if src == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: no result store configured"))
		return
	}
	key, res, ok, err := src.LoadAddr(addr)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no result at %q", addr))
		return
	}
	writeJSON(w, http.StatusOK, StoredResult{Key: key, Addr: addr, Result: res})
}

// handleResultPut accepts a replicated result record from a peer (the
// PeerStore write-back path). The record lands in the LOCAL store only
// — never back through the transport, which would bounce replication
// around the ring forever.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: no result store configured"))
		return
	}
	addr := r.PathValue("key")
	var sr StoredResult
	if err := json.NewDecoder(io.LimitReader(r.Body, maxResultBytes)).Decode(&sr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad result record: %w", err))
		return
	}
	// Content addressing is the integrity check: the record must hash
	// to the URL it claims to live at.
	if sr.Key == "" || ResultAddr(sr.Key) != addr {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("serve: result key does not hash to address %q", addr))
		return
	}
	if err := s.cfg.Store.Save(sr.Key, sr.Result); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if m := s.Members(); m != nil {
		if owner, ok := m.Owner(addr); ok && owner == m.Self() {
			obs.RingOwnedKeys.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"stored": true, "addr": addr})
}

// handleRing renders the node's cluster view: membership with
// liveness, plus who owns an optional ?key= probe. Single-node daemons
// report enabled=false.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	m := s.Members()
	if m == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	out := map[string]any{
		"enabled": true,
		"self":    m.Self(),
		"nodes":   m.Status(),
	}
	if key := r.URL.Query().Get("key"); key != "" {
		owner, _ := m.Owner(ResultAddr(key))
		out["key"] = key
		out["owner"] = owner
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMechanisms(w http.ResponseWriter, r *http.Request) {
	type mech struct {
		Name string `json:"name"`
		Doc  string `json:"doc"`
	}
	var out []mech
	for _, d := range sim.MechanismDescriptors() {
		out = append(out, mech{Name: string(d.Name), Doc: d.Doc})
	}
	writeJSON(w, http.StatusOK, map[string]any{"mechanisms": out})
}

func (s *Server) health() Health {
	return Health{
		Status:     "ok",
		UptimeSecs: int64(time.Since(s.startedAt).Seconds()),
		QueueDepth: s.sched.QueueDepth(),
		Draining:   s.sched.Draining(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	if !s.ready.Load() || h.Draining {
		h.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}
