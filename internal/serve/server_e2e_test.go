package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
)

// newTestDaemon spins up an in-process daemon over a fresh (or given)
// store directory and returns a connected client.
func newTestDaemon(t *testing.T, storeDir string, cfg serve.ServerConfig) (*serve.Server, *client.Client, func()) {
	t.Helper()
	if storeDir != "" {
		st, err := serve.OpenStore(storeDir, 0, nil)
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		cfg.Store = st
	}
	srv := serve.NewServer(cfg)
	hs := httptest.NewServer(srv.Handler())
	c := client.New(hs.URL, nil)
	return srv, c, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		hs.Close()
	}
}

// descriptorJSON builds a small one-cell descriptor. Distinct
// instruction counts keep tests' cache keys disjoint.
func descriptorJSON(name string, instructions uint64) []byte {
	return []byte(fmt.Sprintf(`{
		"name": %q,
		"workloads": ["mysql"],
		"instructions": %d,
		"warmup": 20000,
		"simpoints": 1,
		"configs": [{"label": "base", "mechanism": "baseline"}]
	}`, name, instructions))
}

// TestServerConcurrentDedup is the ISSUE's headline -race test: N
// concurrent clients submit an identical descriptor and exactly one
// simulation runs, proven by the expvar cache-miss counter; everyone
// reads byte-identical result records.
func TestServerConcurrentDedup(t *testing.T) {
	experiments.FlushResultCache()
	_, c, stop := newTestDaemon(t, t.TempDir(), serve.ServerConfig{Workers: 2})
	defer stop()

	missesBefore := obs.CacheMisses.Value()
	const clients = 6
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		views []serve.JobView
	)
	desc := descriptorJSON("dedup-e2e", 61_000)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := client.New(c.Base(), nil)
			cc.Name = fmt.Sprintf("client-%d", i)
			v, err := cc.Submit(context.Background(), desc, client.SubmitOptions{})
			if err != nil {
				t.Errorf("client %d submit: %v", i, err)
				return
			}
			final, err := cc.Wait(context.Background(), v.ID)
			if err != nil {
				t.Errorf("client %d wait: %v", i, err)
				return
			}
			mu.Lock()
			views = append(views, *final)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(views) != clients {
		t.Fatalf("only %d/%d clients finished", len(views), clients)
	}
	id := views[0].ID
	for _, v := range views {
		if v.ID != id || v.State != serve.JobDone {
			t.Fatalf("client saw job %s state %s, want %s done", v.ID, v.State, id)
		}
		if len(v.Cells) != 1 || v.Cells[0].IPC <= 0 {
			t.Fatalf("terminal view missing cell metrics: %+v", v.Cells)
		}
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 1 {
		t.Fatalf("simulations run = %d, want exactly 1 (N=%d concurrent submissions)", d, clients)
	}

	// All clients hold the same content address; two raw fetches of it
	// must be byte-identical.
	addr := views[0].Cells[0].ResultKey
	get := func() []byte {
		resp, err := http.Get(c.Base() + "/v1/results/" + addr)
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET result status %d", resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	if b1, b2 := get(), get(); !bytes.Equal(b1, b2) {
		t.Fatal("result record not byte-identical across fetches")
	}
}

// TestServerRestartServesFromDisk simulates a daemon restart: the
// in-memory result cache is flushed, a second server opens the same
// store directory, and resubmitting the descriptor completes without
// running any simulation — the record is read from disk.
func TestServerRestartServesFromDisk(t *testing.T) {
	experiments.FlushResultCache()
	dir := t.TempDir()
	desc := descriptorJSON("restart-e2e", 62_000)

	_, c1, stop1 := newTestDaemon(t, dir, serve.ServerConfig{})
	v, err := c1.Submit(context.Background(), desc, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c1.Wait(context.Background(), v.ID)
	if err != nil || final.State != serve.JobDone {
		t.Fatalf("first run: %+v err=%v", final, err)
	}
	wantIPC := final.Cells[0].IPC
	stop1()

	// "Restart": fresh process state — empty memo cache, new server,
	// same disk.
	experiments.FlushResultCache()
	_, c2, stop2 := newTestDaemon(t, dir, serve.ServerConfig{})
	defer stop2()
	missesBefore := obs.CacheMisses.Value()
	hitsBefore := obs.StoreHits.Value()
	v2, err := c2.Submit(context.Background(), desc, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	final2, err := c2.Wait(context.Background(), v2.ID)
	if err != nil || final2.State != serve.JobDone {
		t.Fatalf("second run: %+v err=%v", final2, err)
	}
	if d := obs.CacheMisses.Value() - missesBefore; d != 0 {
		t.Fatalf("restart resimulated %d cells, want 0", d)
	}
	if d := obs.StoreHits.Value() - hitsBefore; d != 1 {
		t.Fatalf("store hits delta = %d, want 1", d)
	}
	if final2.Cells[0].IPC != wantIPC {
		t.Fatalf("restarted IPC %v != original %v", final2.Cells[0].IPC, wantIPC)
	}
}

// TestServerSSELifecycle checks the event stream shape: queued,
// started, per-cell progress, interval samples, and a terminal done
// event carrying the full job view; and that Last-Event-ID resume
// replays only the tail.
func TestServerSSELifecycle(t *testing.T) {
	experiments.FlushResultCache()
	_, c, stop := newTestDaemon(t, t.TempDir(), serve.ServerConfig{Interval: 2000})
	defer stop()
	v, err := c.Submit(context.Background(), descriptorJSON("sse-e2e", 63_000), client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var types []string
	var lastID int64
	final, err := c.Stream(context.Background(), v.ID, 0, func(ev serve.Event) error {
		if ev.ID <= lastID {
			return fmt.Errorf("event IDs not increasing: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
		types = append(types, ev.Type)
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if final == nil || final.State != serve.JobDone {
		t.Fatalf("terminal view: %+v", final)
	}
	count := map[string]int{}
	for _, ty := range types {
		count[ty]++
	}
	if count["queued"] != 1 || count["started"] != 1 || count["done"] != 1 {
		t.Fatalf("lifecycle events %v", count)
	}
	if count["progress"] < 1 {
		t.Fatalf("no progress events: %v", count)
	}
	if count["sample"] < 1 {
		t.Fatalf("no interval sample events: %v", count)
	}
	if types[len(types)-1] != "done" {
		t.Fatalf("stream did not end with the terminal event: %v", types)
	}

	// Resume after the fact from mid-stream: only the tail replays, and
	// the terminal event still arrives.
	resumeAfter := lastID - 1
	var resumed []serve.Event
	if _, err := c.Stream(context.Background(), v.ID, resumeAfter, func(ev serve.Event) error {
		resumed = append(resumed, ev)
		return nil
	}); err != nil {
		t.Fatalf("resume stream: %v", err)
	}
	if len(resumed) != 1 || resumed[0].ID != lastID || resumed[0].Type != "done" {
		t.Fatalf("resume replayed %d events (want just the terminal): %+v", len(resumed), resumed)
	}
}

// TestServerValidation400 checks the structured error body: one field
// entry per problem, and the unknown-mechanism reason lists what is
// registered.
func TestServerValidation400(t *testing.T) {
	_, c, stop := newTestDaemon(t, "", serve.ServerConfig{})
	defer stop()
	bad := []byte(`{
		"name": "bad",
		"workloads": ["mysql", "no-such-workload"],
		"instructions": 1000,
		"configs": [{"label": "x", "mechanism": "no-such-mechanism"}, {"mechanism": "baseline"}]
	}`)
	_, err := c.Submit(context.Background(), bad, client.SubmitOptions{})
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("err = %v (%T), want *client.APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", apiErr.StatusCode)
	}
	byField := map[string]string{}
	for _, f := range apiErr.Body.Fields {
		byField[f.Field] = f.Reason
	}
	if len(byField) < 3 {
		t.Fatalf("fields = %v, want workloads[1], configs[0].mechanism and configs[1].label", byField)
	}
	reason, ok := byField["configs[0].mechanism"]
	if !ok {
		t.Fatalf("no configs[0].mechanism entry in %v", byField)
	}
	if !bytes.Contains([]byte(reason), []byte("baseline")) {
		t.Fatalf("unknown-mechanism reason does not list registered mechanisms: %q", reason)
	}
	if _, ok := byField["workloads[1]"]; !ok {
		t.Fatalf("no workloads[1] entry in %v", byField)
	}

	// Unparseable JSON is also a structured 400.
	_, err = c.Submit(context.Background(), []byte(`{"name": `), client.SubmitOptions{})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON err = %v", err)
	}
}

// TestServerQueueFullAndCancel exercises admission control and live
// cancellation against the real engine: a long-running job occupies the
// single worker, the bounded queue fills, the next submission gets 429
// with Retry-After, and canceling the running job interrupts the
// simulation promptly.
func TestServerQueueFullAndCancel(t *testing.T) {
	experiments.FlushResultCache()
	_, c, stop := newTestDaemon(t, t.TempDir(), serve.ServerConfig{Workers: 1, MaxQueue: 1})
	defer stop()

	// Far more instructions than the test will ever simulate.
	big, err := c.Submit(context.Background(), descriptorJSON("big-e2e", 500_000_000), client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit big: %v", err)
	}
	waitJobState(t, c, big.ID, serve.JobRunning)

	if _, err := c.Submit(context.Background(), descriptorJSON("filler-e2e", 64_000), client.SubmitOptions{}); err != nil {
		t.Fatalf("submit filler: %v", err)
	}
	_, err = c.Submit(context.Background(), descriptorJSON("overflow-e2e", 65_000), client.SubmitOptions{})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow err = %v, want 429", err)
	}

	// Cancel the big job; cooperative machine cancellation must unwind
	// it long before its 500M instructions complete.
	if err := c.Cancel(context.Background(), big.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	ctx, cancelWait := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelWait()
	final, err := c.Wait(ctx, big.ID)
	if err != nil {
		t.Fatalf("wait canceled job: %v", err)
	}
	if final.State != serve.JobCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
}

// TestServerDrainPersistsActiveJob is the SIGTERM acceptance path:
// drain begins while a job is running; readiness flips to 503, the job
// completes, and its result is on disk.
func TestServerDrainPersistsActiveJob(t *testing.T) {
	experiments.FlushResultCache()
	dir := t.TempDir()
	srv, c, stop := newTestDaemon(t, dir, serve.ServerConfig{})
	defer stop()
	v, err := c.Submit(context.Background(), descriptorJSON("drain-e2e", 66_000), client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJobState(t, c, v.ID, serve.JobRunning)

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := c.Ready(context.Background()); err == nil {
		t.Fatal("readyz still 200 after drain")
	}
	final, err := c.Job(context.Background(), v.ID)
	if err != nil || final.State != serve.JobDone {
		t.Fatalf("drained job: state=%s err=%v", final.State, err)
	}
	// The result survived to disk: a brand-new store over the same dir
	// (empty LRU) can read the record.
	st, err := serve.OpenStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := st.LoadAddr(final.Cells[0].ResultKey); !ok || err != nil {
		t.Fatalf("result not persisted: ok=%v err=%v", ok, err)
	}
	// And new submissions are refused while draining.
	_, err = c.Submit(context.Background(), descriptorJSON("late-e2e", 67_000), client.SubmitOptions{})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit err = %v, want 503", err)
	}
}

func TestServerHealthAndMechanisms(t *testing.T) {
	_, c, stop := newTestDaemon(t, "", serve.ServerConfig{})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	resp, err := http.Get(c.Base() + "/v1/mechanisms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Mechanisms []struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		} `json:"mechanisms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range body.Mechanisms {
		names[m.Name] = true
	}
	for _, want := range []string{"baseline", "udp"} {
		if !names[want] {
			t.Fatalf("mechanism list missing %q: %v", want, names)
		}
	}
}

func waitJobState(t *testing.T, c *client.Client, id string, want serve.JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("polling job: %v", err)
		}
		if v.State == want {
			return
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s state %s, want %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCoalescedBatchRun drives the real path end to end: a
// -batch daemon with one worker coalesces two queued jobs sharing the
// mysql image into one lockstep-batched run, splits the results back
// per job, and the cell both jobs share comes out identical.
func TestServerCoalescedBatchRun(t *testing.T) {
	experiments.FlushResultCache()
	_, c, stop := newTestDaemon(t, "", serve.ServerConfig{Workers: 1, Batch: true})
	defer stop()

	coalescedBefore := obs.DaemonJobsCoalesced.Value()

	// The blocker occupies the lone worker long enough for the two
	// mysql jobs to queue up behind it; its image is disjoint so it
	// cannot absorb them itself.
	blockerDesc := []byte(`{
		"name": "coalesce-blocker",
		"workloads": ["xgboost"],
		"instructions": 400000,
		"warmup": 20000,
		"simpoints": 1,
		"configs": [{"label": "base", "mechanism": "baseline"}]
	}`)
	mk := func(name, configs string) []byte {
		return []byte(fmt.Sprintf(`{
			"name": %q,
			"workloads": ["mysql"],
			"instructions": 63101,
			"warmup": 8000,
			"simpoints": 1,
			"configs": [%s]
		}`, name, configs))
	}
	blocker, err := c.Submit(context.Background(), blockerDesc, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Submit(context.Background(), mk("coalesce-a", `{"label": "base", "mechanism": "baseline"}`), client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(context.Background(), mk("coalesce-b",
		`{"label": "base", "mechanism": "baseline"}, {"label": "udp", "mechanism": "udp"}`), client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{blocker.ID, a.ID, b.ID} {
		v, err := c.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if v.State != serve.JobDone {
			t.Fatalf("job %s state %s (err %q), want done", id, v.State, v.Error)
		}
	}
	av, _ := c.Job(context.Background(), a.ID)
	bv, _ := c.Job(context.Background(), b.ID)
	if len(av.Cells) != 1 || len(bv.Cells) != 2 {
		t.Fatalf("cells split wrong: job a %d, job b %d (want 1 and 2)", len(av.Cells), len(bv.Cells))
	}
	if av.Cells[0].IPC <= 0 || av.Cells[0].IPC != bv.Cells[0].IPC {
		t.Fatalf("shared baseline cell differs across coalesced jobs: %v vs %v",
			av.Cells[0].IPC, bv.Cells[0].IPC)
	}
	if d := obs.DaemonJobsCoalesced.Value() - coalescedBefore; d != 1 {
		t.Fatalf("jobs coalesced = %d, want 1 (job b absorbed into job a's run)", d)
	}
}

// TestServerEventsCursorValidation is the regression test for the SSE
// resume cursor: unparseable Last-Event-ID / after values must 400
// with a JSON error before any stream bytes, and negative values clamp
// to a full replay.
func TestServerEventsCursorValidation(t *testing.T) {
	_, c, stop := newTestDaemon(t, "", serve.ServerConfig{Workers: 1})
	defer stop()
	v, err := c.Submit(context.Background(), descriptorJSON("events-cursor", 63_301), client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), v.ID); err != nil {
		t.Fatal(err)
	}
	events := c.Base() + "/v1/jobs/" + v.ID + "/events"

	expect400 := func(req *http.Request, wantIn string) {
		t.Helper()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (body %q)", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json (no SSE bytes before the 400)", ct)
		}
		if !bytes.Contains(body, []byte(wantIn)) {
			t.Fatalf("error body %q does not name the offending input %q", body, wantIn)
		}
	}
	req, _ := http.NewRequest("GET", events+"?after=banana", nil)
	expect400(req, "after parameter")
	req, _ = http.NewRequest("GET", events, nil)
	req.Header.Set("Last-Event-ID", "12x")
	expect400(req, "Last-Event-ID header")

	// A negative cursor clamps to 0: full replay from "queued" through
	// the terminal event, after which the handler closes the stream.
	resp, err := http.Get(events + "?after=-5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("negative cursor status = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, ev := range []string{"event: queued", "event: started", "event: done"} {
		if !bytes.Contains(body, []byte(ev)) {
			t.Fatalf("full replay missing %q:\n%s", ev, body)
		}
	}
}
