package serve_test

// End-to-end tracing tests: one submitted job must produce ONE
// connected trace — a single trace ID stringing together the
// queue-wait, store-read, warmup, measure and store-write spans — and
// the /debug/trace endpoint must render it as loadable Chrome
// trace-event JSON. The coalesced variant additionally pins the
// coalesce-merge span onto the head job's trace.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
)

// spansForTrace filters a server's span ring down to one trace.
func spansForTrace(srv *serve.Server, trace string) []obs.Span {
	var out []obs.Span
	for _, sp := range srv.Spans() {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

func spanNames(spans []obs.Span) map[string]int {
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	return names
}

func TestServerJobTraceEndToEnd(t *testing.T) {
	experiments.FlushResultCache()
	srv, c, stop := newTestDaemon(t, t.TempDir(), serve.ServerConfig{Workers: 1})
	defer stop()

	traceID := obs.NewTraceID()
	v, err := c.Submit(context.Background(), descriptorJSON("trace-e2e", 64_100),
		client.SubmitOptions{TraceID: traceID})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.TraceID != traceID {
		t.Fatalf("job view trace %q, want the propagated X-Trace-ID %q", v.TraceID, traceID)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.JobDone {
		t.Fatalf("job state %s (err %q), want done", final.State, final.Error)
	}
	// The SSE terminal event carries the trace too (final came off the
	// stream, not a poll).
	if final.TraceID != traceID {
		t.Fatalf("terminal SSE view trace %q, want %q", final.TraceID, traceID)
	}

	// ONE connected trace: every lifecycle span of this job carries the
	// submitted trace ID, and at least the five canonical span names
	// are present (store spans exist because the daemon has a store).
	spans := spansForTrace(srv, traceID)
	names := spanNames(spans)
	for _, want := range []string{"queue-wait", "store-read", "warmup", "measure", "store-write"} {
		if names[want] == 0 {
			t.Errorf("trace %s missing span %q (got %v)", traceID, want, names)
		}
	}
	if len(names) < 5 {
		t.Fatalf("trace %s has %d distinct span names, want >= 5: %v", traceID, len(names), names)
	}

	// Spans are causally ordered wall-clock intervals: the queue wait
	// ends before the measured region starts, and every span has
	// End >= Start.
	var queueEnd, measureStart time.Time
	for _, sp := range spans {
		if sp.End.Before(sp.Start) {
			t.Errorf("span %q ends before it starts: %v > %v", sp.Name, sp.Start, sp.End)
		}
		switch sp.Name {
		case "queue-wait":
			queueEnd = sp.End
		case "measure":
			measureStart = sp.Start
		}
	}
	if measureStart.Before(queueEnd) {
		t.Fatalf("measure (%v) started before queue-wait ended (%v)", measureStart, queueEnd)
	}

	// /debug/trace renders the ring as Chrome trace JSON: a process
	// named after our trace with >= 5 slice events.
	resp, err := http.Get(c.Base() + "/debug/trace")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace status %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&chrome); err != nil {
		t.Fatalf("/debug/trace is not valid Chrome trace JSON: %v", err)
	}
	pid := -1
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" && ev.Args["name"] == "trace "+traceID {
			pid = ev.PID
			break
		}
	}
	if pid < 0 {
		t.Fatalf("/debug/trace has no process for trace %s", traceID)
	}
	slices := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "X" && ev.PID == pid {
			slices++
		}
	}
	if slices < 5 {
		t.Fatalf("/debug/trace shows %d slices for the trace, want >= 5", slices)
	}

	// And the scrape side: the run moved the service histograms.
	samples, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	for _, name := range []string{
		"udpsimd_queue_wait_us_count",
		"udpsim_store_write_us_count",
	} {
		if v, ok := client.MetricValue(samples, name, nil); !ok || v < 1 {
			t.Errorf("metric %s = %v (present %v), want >= 1", name, v, ok)
		}
	}
	if v, ok := client.MetricValue(samples, "udpsimd_run_duration_us_count",
		map[string]string{"mechanism": "baseline"}); !ok || v < 1 {
		t.Errorf("run-duration histogram for baseline = %v (present %v), want >= 1", v, ok)
	}
	if _, ok := client.MetricValue(samples, "udpsimd_http_requests_total",
		map[string]string{"route": "/v1/jobs", "method": "POST"}); !ok {
		t.Error("HTTP request counter missing the POST /v1/jobs series")
	}
}

// TestServerCoalescedTrace drives a -batch daemon the same way
// TestServerCoalescedBatchRun does and checks the tracing overlay: the
// head job's trace gains a coalesce-merge span naming the absorbed
// job, and both jobs keep distinct trace IDs end to end.
func TestServerCoalescedTrace(t *testing.T) {
	experiments.FlushResultCache()
	srv, c, stop := newTestDaemon(t, "", serve.ServerConfig{Workers: 1, Batch: true})
	defer stop()

	blockerDesc := []byte(`{
		"name": "trace-blocker",
		"workloads": ["xgboost"],
		"instructions": 400100,
		"warmup": 20000,
		"simpoints": 1,
		"configs": [{"label": "base", "mechanism": "baseline"}]
	}`)
	mk := func(name string, instructions uint64) []byte {
		return []byte(fmt.Sprintf(`{
			"name": %q,
			"workloads": ["mysql"],
			"instructions": %d,
			"warmup": 8000,
			"simpoints": 1,
			"configs": [{"label": "base", "mechanism": "baseline"}]
		}`, name, instructions))
	}
	blocker, err := c.Submit(context.Background(), blockerDesc, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Submit(context.Background(), mk("trace-a", 64_201), client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(context.Background(), mk("trace-b", 64_301), client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{blocker.ID, a.ID, b.ID} {
		v, err := c.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if v.State != serve.JobDone {
			t.Fatalf("job %s state %s (err %q), want done", id, v.State, v.Error)
		}
	}
	if a.TraceID == "" || b.TraceID == "" || a.TraceID == b.TraceID {
		t.Fatalf("jobs should mint distinct traces, got %q and %q", a.TraceID, b.TraceID)
	}

	// The head of the merged group (job a, queued first) owns the
	// coalesce-merge span, and its args name the absorbed job b.
	var merge *obs.Span
	for _, sp := range spansForTrace(srv, a.TraceID) {
		if sp.Name == "coalesce-merge" {
			sp := sp
			merge = &sp
			break
		}
	}
	if merge == nil {
		t.Fatalf("head trace %s has no coalesce-merge span: %v",
			a.TraceID, spanNames(spansForTrace(srv, a.TraceID)))
	}
	merged, _ := merge.Args["merged"].([]string)
	found := false
	for _, id := range merged {
		if id == b.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("coalesce-merge args %v do not name the absorbed job %s", merge.Args, b.ID)
	}

	// Both jobs still traced their queue wait under their own IDs.
	for _, tr := range []string{a.TraceID, b.TraceID} {
		if spanNames(spansForTrace(srv, tr))["queue-wait"] == 0 {
			t.Errorf("trace %s lost its queue-wait span", tr)
		}
	}
}
