package isa

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if LineBytes != 1<<LineShift {
		t.Errorf("LineShift inconsistent: %d vs %d", LineBytes, 1<<LineShift)
	}
	if FetchBlockBytes != 1<<FetchBlockShift {
		t.Errorf("FetchBlockShift inconsistent")
	}
	if LineBytes%FetchBlockBytes != 0 {
		t.Errorf("fetch blocks must tile cache lines")
	}
	if InstrPerBlock*InstrBytes != FetchBlockBytes {
		t.Errorf("InstrPerBlock inconsistent")
	}
}

func TestAddrAlignment(t *testing.T) {
	a := Addr(0x401237)
	if a.Line() != 0x401200 {
		t.Errorf("Line() = %v", a.Line())
	}
	if a.Block() != 0x401220 {
		t.Errorf("Block() = %v", a.Block())
	}
	if a.BlockOffset() != 0x17 {
		t.Errorf("BlockOffset() = %#x", a.BlockOffset())
	}
	if a.LineOffset() != 0x37 {
		t.Errorf("LineOffset() = %#x", a.LineOffset())
	}
	if a.NextBlock() != 0x401240 {
		t.Errorf("NextBlock() = %v", a.NextBlock())
	}
	if a.NextLine() != 0x401240 {
		t.Errorf("NextLine() = %v", a.NextLine())
	}
}

// Property: for any address, its block lies within its line, alignment
// is idempotent, and offsets are within bounds.
func TestAddrAlignmentProperties(t *testing.T) {
	f := func(x uint64) bool {
		a := Addr(x)
		if a.Line() > a || a.Block() > a {
			return false
		}
		if a.Block().Line() != a.Line() {
			return false
		}
		if a.Line().Line() != a.Line() || a.Block().Block() != a.Block() {
			return false
		}
		if a.BlockOffset() >= FetchBlockBytes || a.LineOffset() >= LineBytes {
			return false
		}
		if a-a.Line() != Addr(a.LineOffset()) {
			return false
		}
		return a.LineIndex() == uint64(a)>>LineShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchKindPredicates(t *testing.T) {
	cases := []struct {
		k                         BranchKind
		branch, cond, indirect    bool
		pushes, pops, alwaysTaken bool
	}{
		{BranchNone, false, false, false, false, false, false},
		{BranchCond, true, true, false, false, false, false},
		{BranchUncond, true, false, false, false, false, true},
		{BranchCall, true, false, false, true, false, true},
		{BranchReturn, true, false, true, false, true, true},
		{BranchIndirect, true, false, true, false, false, true},
		{BranchIndirectCall, true, false, true, true, false, true},
	}
	for _, c := range cases {
		if c.k.IsBranch() != c.branch {
			t.Errorf("%v.IsBranch() = %v", c.k, c.k.IsBranch())
		}
		if c.k.IsConditional() != c.cond {
			t.Errorf("%v.IsConditional() = %v", c.k, c.k.IsConditional())
		}
		if c.k.IsIndirect() != c.indirect {
			t.Errorf("%v.IsIndirect() = %v", c.k, c.k.IsIndirect())
		}
		if c.k.PushesRAS() != c.pushes {
			t.Errorf("%v.PushesRAS() = %v", c.k, c.k.PushesRAS())
		}
		if c.k.PopsRAS() != c.pops {
			t.Errorf("%v.PopsRAS() = %v", c.k, c.k.PopsRAS())
		}
		if c.k.AlwaysTaken() != c.alwaysTaken {
			t.Errorf("%v.AlwaysTaken() = %v", c.k, c.k.AlwaysTaken())
		}
	}
}

func TestKindAndClassStrings(t *testing.T) {
	for k := BranchNone; k < BranchKind(NumBranchKinds); k++ {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	for c := ClassALU; c < Class(NumClasses); c++ {
		if c.String() == "" {
			t.Errorf("empty string for class %d", c)
		}
	}
	if Addr(0x400000).String() != "0x400000" {
		t.Errorf("Addr.String() = %s", Addr(0x400000).String())
	}
}

func TestDynInstrNextPC(t *testing.T) {
	si := &StaticInstr{PC: 0x1000, Branch: BranchCond, Target: 0x2000, FallThrough: 0x1004}
	taken := &DynInstr{Static: si, Taken: true, Target: 0x2000}
	if taken.NextPC() != 0x2000 {
		t.Errorf("taken NextPC = %v", taken.NextPC())
	}
	nt := &DynInstr{Static: si, Taken: false}
	if nt.NextPC() != 0x1004 {
		t.Errorf("not-taken NextPC = %v", nt.NextPC())
	}
	if taken.PC() != 0x1000 {
		t.Errorf("PC = %v", taken.PC())
	}

	alu := &StaticInstr{PC: 0x1000, Class: ClassALU, FallThrough: 0x1004}
	d := &DynInstr{Static: alu}
	if d.NextPC() != 0x1004 {
		t.Errorf("ALU NextPC = %v", d.NextPC())
	}
	if alu.IsBranch() {
		t.Error("ALU claims to be a branch")
	}
}
