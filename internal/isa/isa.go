// Package isa defines the instruction-set-level vocabulary shared by the
// whole simulator: addresses, cache-line and fetch-block geometry,
// instruction classes, and branch kinds.
//
// The simulator is ISA-agnostic in the same way Scarab's uop layer is: it
// models instruction *addresses* and *classes* (ALU, load, store, branch
// flavors), which is all the frontend, caches, and the UDP/UFTQ
// mechanisms observe.
package isa

import "fmt"

// Addr is a byte address in the simulated address space.
type Addr uint64

// Geometry constants of the simulated machine. These mirror Table II of
// the paper: 64-byte cache lines and 32-byte fetch blocks.
const (
	// LineBytes is the size of a cache line.
	LineBytes = 64
	// LineShift is log2(LineBytes).
	LineShift = 6
	// FetchBlockBytes is the size of an aligned fetch block examined by
	// the decoupled frontend per BTB lookup.
	FetchBlockBytes = 32
	// FetchBlockShift is log2(FetchBlockBytes).
	FetchBlockShift = 5
	// InstrBytes is the (fixed) size of one simulated instruction. Real
	// x86 is variable length; Scarab's trace frontend also operates on
	// decoded instruction boundaries. A fixed 4-byte encoding preserves
	// instructions-per-block and footprint geometry.
	InstrBytes = 4
	// InstrPerBlock is the number of instructions in one fetch block.
	InstrPerBlock = FetchBlockBytes / InstrBytes
	// InstrPerLine is the number of instructions in one cache line.
	InstrPerLine = LineBytes / InstrBytes
)

// Line returns the cache-line address (aligned) containing a.
func (a Addr) Line() Addr { return a &^ (LineBytes - 1) }

// LineIndex returns the cache-line number containing a.
func (a Addr) LineIndex() uint64 { return uint64(a) >> LineShift }

// Block returns the fetch-block address (aligned) containing a.
func (a Addr) Block() Addr { return a &^ (FetchBlockBytes - 1) }

// BlockOffset returns the byte offset of a within its fetch block.
func (a Addr) BlockOffset() uint64 { return uint64(a) & (FetchBlockBytes - 1) }

// LineOffset returns the byte offset of a within its cache line.
func (a Addr) LineOffset() uint64 { return uint64(a) & (LineBytes - 1) }

// NextBlock returns the address of the fetch block following the one
// containing a.
func (a Addr) NextBlock() Addr { return a.Block() + FetchBlockBytes }

// NextLine returns the address of the cache line following the one
// containing a.
func (a Addr) NextLine() Addr { return a.Line() + LineBytes }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Class is the coarse instruction class used by the backend's functional
// unit model.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota // integer/fp computation, 1-cycle ALU op
	ClassMul              // longer-latency computation (mul/div)
	ClassLoad
	ClassStore
	ClassBranch // any control-flow instruction; see BranchKind
	ClassNop
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassNop:
		return "nop"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// BranchKind distinguishes control-flow instruction flavors. The
// frontend's BTB and predictor treat these differently: conditional
// branches consult the direction predictor, returns consult the RAS,
// indirect branches/calls consult the indirect target buffer.
type BranchKind uint8

// Branch kinds.
const (
	BranchNone         BranchKind = iota // not a branch
	BranchCond                           // conditional direct branch
	BranchUncond                         // unconditional direct jump
	BranchCall                           // direct call (pushes RAS)
	BranchReturn                         // return (pops RAS)
	BranchIndirect                       // indirect jump
	BranchIndirectCall                   // indirect call (pushes RAS)
	numBranchKinds
)

// NumBranchKinds is the number of distinct branch kinds.
const NumBranchKinds = int(numBranchKinds)

func (k BranchKind) String() string {
	switch k {
	case BranchNone:
		return "none"
	case BranchCond:
		return "cond"
	case BranchUncond:
		return "jump"
	case BranchCall:
		return "call"
	case BranchReturn:
		return "ret"
	case BranchIndirect:
		return "ijump"
	case BranchIndirectCall:
		return "icall"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsBranch reports whether the kind denotes a control-flow instruction.
func (k BranchKind) IsBranch() bool { return k != BranchNone }

// IsConditional reports whether the branch consults the direction
// predictor.
func (k BranchKind) IsConditional() bool { return k == BranchCond }

// IsIndirect reports whether the target comes from the indirect target
// buffer (or RAS for returns).
func (k BranchKind) IsIndirect() bool {
	return k == BranchIndirect || k == BranchIndirectCall || k == BranchReturn
}

// PushesRAS reports whether executing the branch pushes a return address.
func (k BranchKind) PushesRAS() bool { return k == BranchCall || k == BranchIndirectCall }

// PopsRAS reports whether the branch target is predicted from the RAS.
func (k BranchKind) PopsRAS() bool { return k == BranchReturn }

// AlwaysTaken reports whether the branch unconditionally redirects fetch.
func (k BranchKind) AlwaysTaken() bool {
	return k == BranchUncond || k == BranchCall || k == BranchReturn ||
		k == BranchIndirect || k == BranchIndirectCall
}

// StaticInstr is one instruction of the static program image.
type StaticInstr struct {
	PC     Addr
	Class  Class
	Branch BranchKind
	// Target is the taken target for direct branches; for indirect
	// branches it is the most common target (the image generator also
	// records alternates on the owning block).
	Target Addr
	// FallThrough is PC+InstrBytes, precomputed for the hot path.
	FallThrough Addr
	// DataAddr is a representative data address for loads/stores; the
	// executor perturbs it per dynamic instance.
	DataAddr Addr
}

// IsBranch reports whether the instruction is any control-flow kind.
func (si *StaticInstr) IsBranch() bool { return si.Branch != BranchNone }

// DynInstr is one dynamically executed instruction: a static instruction
// plus its resolved outcome. The workload executor produces the on-path
// (oracle) stream of DynInstrs; the backend compares frontend-supplied
// instructions against it to detect mispredictions.
type DynInstr struct {
	Static *StaticInstr
	// Taken is the resolved direction (always true for unconditional
	// control flow, meaningless for non-branches).
	Taken bool
	// Target is the resolved next PC (fall-through when not taken).
	Target Addr
	// DataAddr is the resolved memory address for loads and stores.
	DataAddr Addr
	// Seq is the dynamic sequence number within the run (1-based).
	Seq uint64
}

// PC returns the instruction's program counter.
func (d *DynInstr) PC() Addr { return d.Static.PC }

// NextPC returns the architecturally correct next program counter.
func (d *DynInstr) NextPC() Addr {
	if d.Static.Branch != BranchNone && d.Taken {
		return d.Target
	}
	return d.Static.FallThrough
}
