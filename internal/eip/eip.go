// Package eip implements a storage-bounded Entangled Instruction
// Prefetcher baseline (Ros & Jimborean; the paper's ISO-storage
// comparator in Fig. 13). EIP learns "entanglings": for a line X whose
// demand fetch missed, it finds the earlier line Y fetched roughly one
// memory latency before X and records X as entangled with Y, so that a
// future access to Y prefetches X just in time.
//
// The paper attributes EIP's weakness at an 8KB budget to two causes,
// both reproduced here: (1) the entangling table thrashes with large
// code footprints, and (2) EIP trains on *all* icache accesses,
// including wrong-path fetches, wasting entries on unusable candidates
// — in this simulator EIP naturally observes the frontend's wrong-path
// demand fetches.
package eip

import (
	"udpsim/internal/isa"
)

// Config sizes the prefetcher.
type Config struct {
	// Sets and Ways define the entangling table geometry.
	Sets int
	Ways int
	// DestsPerEntry is how many entangled destinations one source line
	// can hold.
	DestsPerEntry int
	// HistoryLen is the recent-access window searched for the
	// entangling source.
	HistoryLen int
	// LatencyCycles is the fill latency the entangler tries to cover:
	// it picks as source the access that far in the past.
	LatencyCycles uint64
}

// DefaultConfig returns the 8KB-budget configuration used in Fig. 13.
func DefaultConfig() Config {
	return Config{
		Sets:          256,
		Ways:          2,
		DestsPerEntry: 2,
		HistoryLen:    32,
		LatencyCycles: 40,
	}
}

type entry struct {
	tag   uint32
	dests [4]int32 // line deltas from the source, 0 = empty
	conf  [4]int8
	valid bool
	stamp uint64
}

type histRec struct {
	line  isa.Addr
	cycle uint64
}

// Stats counts prefetcher events.
type Stats struct {
	Trainings   uint64
	Prefetches  uint64
	TableHits   uint64
	TableMisses uint64
	Evictions   uint64
}

// EIP is the entangled instruction prefetcher.
type EIP struct {
	cfg     Config
	table   [][]entry
	hist    []histRec
	histIdx int
	out     []isa.Addr // reused suggestion buffer
	Stats   Stats
}

// New builds the prefetcher.
func New(cfg Config) *EIP {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("eip: sets must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("eip: ways must be positive")
	}
	if cfg.DestsPerEntry <= 0 || cfg.DestsPerEntry > 4 {
		panic("eip: dests per entry must be 1..4")
	}
	if cfg.HistoryLen <= 0 {
		cfg.HistoryLen = 32
	}
	t := make([][]entry, cfg.Sets)
	backing := make([]entry, cfg.Sets*cfg.Ways)
	for i := range t {
		t[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &EIP{cfg: cfg, table: t, hist: make([]histRec, cfg.HistoryLen)}
}

// StorageBytes reports the metadata budget: per entry a partial tag
// (~4B) plus DestsPerEntry compressed destinations (4B delta + 1B
// confidence each).
func (e *EIP) StorageBytes() uint {
	entryBytes := uint(4 + e.cfg.DestsPerEntry*5)
	return uint(e.cfg.Sets*e.cfg.Ways) * entryBytes
}

func (e *EIP) index(line isa.Addr) (uint64, uint32) {
	n := uint64(line) >> isa.LineShift
	x := n * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x & uint64(e.cfg.Sets-1), uint32(x >> 32)
}

// OnDemandAccess implements frontend.ExternalPrefetcher: look up the
// line's entanglings and suggest their prefetch; on a miss, train.
func (e *EIP) OnDemandAccess(line isa.Addr, hit bool, cycle uint64) []isa.Addr {
	line = line.Line()
	e.out = e.out[:0]

	// Lookup: does this line entangle others?
	set, tag := e.index(line)
	found := false
	for w := range e.table[set] {
		en := &e.table[set][w]
		if en.valid && en.tag == tag {
			found = true
			en.stamp = cycle
			for d := 0; d < e.cfg.DestsPerEntry; d++ {
				if en.conf[d] > 0 {
					dest := isa.Addr(int64(line) + int64(en.dests[d])*isa.LineBytes)
					e.out = append(e.out, dest)
					e.Stats.Prefetches++
				}
			}
			break
		}
	}
	if found {
		e.Stats.TableHits++
	} else {
		e.Stats.TableMisses++
	}

	// Train on misses: entangle this line with the access one memory
	// latency in the past.
	if !hit {
		if src, ok := e.findSource(cycle); ok && src != line {
			e.train(src, line, cycle)
		}
	}

	// Record history (every access, hit or miss — EIP's wrong-path-
	// blind training).
	e.hist[e.histIdx] = histRec{line: line, cycle: cycle}
	e.histIdx = (e.histIdx + 1) % len(e.hist)

	return e.out
}

// OnFill implements frontend.ExternalPrefetcher (EIP trains at access
// time; fills are not used).
func (e *EIP) OnFill(isa.Addr, uint64) {}

// findSource returns the most recent history record at least
// LatencyCycles old.
func (e *EIP) findSource(cycle uint64) (isa.Addr, bool) {
	var best isa.Addr
	var bestCycle uint64
	ok := false
	for _, h := range e.hist {
		if h.line == 0 {
			continue
		}
		if cycle-h.cycle >= e.cfg.LatencyCycles && h.cycle >= bestCycle {
			best, bestCycle, ok = h.line, h.cycle, true
		}
	}
	return best, ok
}

// train records dst as entangled with src.
func (e *EIP) train(src, dst isa.Addr, cycle uint64) {
	e.Stats.Trainings++
	delta := (int64(dst) - int64(src)) / isa.LineBytes
	if delta == 0 || delta > 1<<20 || delta < -(1<<20) {
		return
	}
	set, tag := e.index(src)
	ways := e.table[set]
	// Existing entry?
	for w := range ways {
		en := &ways[w]
		if en.valid && en.tag == tag {
			en.stamp = cycle
			// Bump an existing destination or claim a weak slot.
			weakest := 0
			for d := 0; d < e.cfg.DestsPerEntry; d++ {
				if en.dests[d] == int32(delta) {
					if en.conf[d] < 3 {
						en.conf[d]++
					}
					return
				}
				if en.conf[d] < en.conf[weakest] {
					weakest = d
				}
			}
			if en.conf[weakest] > 0 {
				en.conf[weakest]--
				return
			}
			en.dests[weakest] = int32(delta)
			en.conf[weakest] = 1
			return
		}
	}
	// Allocate: prefer invalid, else LRU.
	victim := -1
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(ways); w++ {
			if ways[w].stamp < ways[victim].stamp {
				victim = w
			}
		}
		e.Stats.Evictions++
	}
	var en entry
	en.tag = tag
	en.valid = true
	en.stamp = cycle
	en.dests[0] = int32(delta)
	en.conf[0] = 1
	ways[victim] = en
}
