package eip

import (
	"testing"

	"udpsim/internal/isa"
)

func ln(i int) isa.Addr { return isa.Addr(0x400000 + i*isa.LineBytes) }

func TestEntanglingLearnsMissPair(t *testing.T) {
	e := New(DefaultConfig())
	// Access Y at cycle 100, then X misses at cycle 200 (≥ latency
	// after Y): X becomes entangled with Y.
	e.OnDemandAccess(ln(1), true, 100)
	e.OnDemandAccess(ln(50), false, 200)
	if e.Stats.Trainings == 0 {
		t.Fatal("no training")
	}
	// A later access to Y must suggest X.
	out := e.OnDemandAccess(ln(1), true, 300)
	found := false
	for _, l := range out {
		if l == ln(50) {
			found = true
		}
	}
	if !found {
		t.Errorf("entangled destination not suggested: %v", out)
	}
}

func TestNoSuggestionWithoutTraining(t *testing.T) {
	e := New(DefaultConfig())
	if out := e.OnDemandAccess(ln(1), true, 100); len(out) != 0 {
		t.Errorf("untrained prefetcher suggested %v", out)
	}
}

func TestNoSourceWithinLatencyWindow(t *testing.T) {
	e := New(DefaultConfig())
	e.OnDemandAccess(ln(1), true, 100)
	// Miss arrives only 5 cycles later: too close to cover the
	// latency, no training possible against that access.
	e.OnDemandAccess(ln(50), false, 105)
	if e.Stats.Trainings != 0 {
		t.Errorf("trained with %d-cycle lead", 5)
	}
}

func TestConfidenceGrows(t *testing.T) {
	e := New(DefaultConfig())
	for round := 0; round < 4; round++ {
		c := uint64(round * 1000)
		e.OnDemandAccess(ln(1), true, c+100)
		e.OnDemandAccess(ln(50), false, c+200)
	}
	out := e.OnDemandAccess(ln(1), true, 10_000)
	if len(out) == 0 {
		t.Error("repeated pattern not predicted")
	}
}

func TestStorageBudget(t *testing.T) {
	e := New(DefaultConfig())
	b := e.StorageBytes()
	// Fig. 13 compares at 8KB.
	if b < 6*1024 || b > 10*1024 {
		t.Errorf("storage %d bytes not in the 8KB class", b)
	}
}

func TestTableEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 2
	cfg.Ways = 1
	e := New(cfg)
	// Train many distinct sources; the 2-entry table must evict.
	for i := 0; i < 16; i++ {
		c := uint64(i * 1000)
		e.OnDemandAccess(ln(i*17+1), true, c+100)
		e.OnDemandAccess(ln(i*17+9), false, c+200)
	}
	if e.Stats.Evictions == 0 {
		t.Error("no evictions under pressure")
	}
}

func TestConfigPanics(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, DestsPerEntry: 2},
		{Sets: 3, Ways: 1, DestsPerEntry: 2},
		{Sets: 4, Ways: 0, DestsPerEntry: 2},
		{Sets: 4, Ways: 1, DestsPerEntry: 0},
		{Sets: 4, Ways: 1, DestsPerEntry: 5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestOnFillIsNoop(t *testing.T) {
	e := New(DefaultConfig())
	e.OnFill(ln(1), 100) // must not panic or change state
	if e.Stats.Trainings != 0 {
		t.Error("OnFill trained")
	}
}
