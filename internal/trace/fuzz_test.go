package trace

import (
	"bytes"
	"io"
	"testing"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and for inputs it accepts, every decoded record must be
// internally consistent. (Seeds run as part of the normal test suite;
// `go test -fuzz=FuzzReader ./internal/trace` explores further.)
func FuzzReader(f *testing.F) {
	// Seed 1: a valid small trace.
	var valid bytes.Buffer
	p := workload.MustByName("postgres")
	p.Funcs = 20
	p.DispatchTargets = 10
	if err := RecordN(&valid, p, 0, 200); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Seed 2: truncated valid trace.
	f.Add(valid.Bytes()[:valid.Len()/2])
	// Seed 3: magic only.
	f.Add([]byte(Magic))
	// Seed 4: garbage.
	f.Add([]byte("not a trace at all, definitely"))
	// Seed 5: valid header, corrupt body.
	hdr := append([]byte{}, valid.Bytes()[:24]...)
	f.Add(append(hdr, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		count := uint64(0)
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				break // corrupt body reported as error: fine
			}
			count++
			if rec.Target == 0 {
				t.Errorf("decoded record %d has zero target", count)
			}
			if count > 1_000_000 {
				t.Fatal("decoder runaway")
			}
		}
		if r.Count() != count {
			t.Errorf("Count() = %d, decoded %d", r.Count(), count)
		}
	})
}

// FuzzRoundtrip checks that any PC/flag sequence encodes and decodes
// identically.
func FuzzRoundtrip(f *testing.F) {
	f.Add(uint32(0x400000), uint32(0x400100), true)
	f.Add(uint32(0), uint32(4), false)
	f.Add(uint32(1<<31), uint32(12), true)
	f.Fuzz(func(t *testing.T, pc, tgt uint32, taken bool) {
		rec := Record{
			PC:     isa.Addr(pc) &^ 3,
			Target: isa.Addr(tgt) &^ 3,
			Taken:  taken,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, workload.MustByName("mysql"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		// Zero target encodes as fall-through.
		want := rec
		if want.Target == 0 {
			want.Target = want.PC + 4
		}
		if got != want {
			t.Errorf("roundtrip %+v → %+v", want, got)
		}
	})
}
