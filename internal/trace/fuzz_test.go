package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and for inputs it accepts, every decoded record must be
// internally consistent. (Seeds run as part of the normal test suite;
// `go test -fuzz=FuzzReader ./internal/trace` explores further.)
func FuzzReader(f *testing.F) {
	// Seed 1: a valid small trace.
	var valid bytes.Buffer
	p := workload.MustByName("postgres")
	p.Funcs = 20
	p.DispatchTargets = 10
	if err := RecordN(&valid, p, 0, 200); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Seed 2: truncated valid trace.
	f.Add(valid.Bytes()[:valid.Len()/2])
	// Seed 3: magic only.
	f.Add([]byte(Magic))
	// Seed 4: garbage.
	f.Add([]byte("not a trace at all, definitely"))
	// Seed 5: valid header, corrupt body.
	hdr := append([]byte{}, valid.Bytes()[:24]...)
	f.Add(append(hdr, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		count := uint64(0)
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				break // corrupt body reported as error: fine
			}
			count++
			if rec.Target == 0 {
				t.Errorf("decoded record %d has zero target", count)
			}
			if count > 1_000_000 {
				t.Fatal("decoder runaway")
			}
		}
		if r.Count() != count {
			t.Errorf("Count() = %d, decoded %d", r.Count(), count)
		}
	})
}

// FuzzReader2 feeds arbitrary bytes to the UDPT2 decoder: whatever the
// chunk headers claim, it must never panic or allocate unboundedly, and
// every rejection must be a structured error (*FormatError past the
// preamble). (Seeds run as part of the normal test suite;
// `go test -fuzz=FuzzReader2 ./internal/trace` explores further.)
func FuzzReader2(f *testing.F) {
	p := workload.MustByName("postgres")
	p.Funcs = 20
	p.DispatchTargets = 10
	var validBin, validJSONL bytes.Buffer
	if err := RecordN2(&validBin, p, 0, 200, EncBinary); err != nil {
		f.Fatal(err)
	}
	if err := RecordN2(&validJSONL, p, 0, 200, EncJSONL); err != nil {
		f.Fatal(err)
	}
	f.Add(validBin.Bytes())
	f.Add(validJSONL.Bytes())
	f.Add(validBin.Bytes()[:validBin.Len()/2]) // truncated
	f.Add([]byte(Magic2))                      // preamble only
	f.Add([]byte("not a trace at all, definitely"))
	flipped := append([]byte{}, validBin.Bytes()...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	// Length-lying chunk header: huge claimed payload.
	lying := append([]byte{}, validBin.Bytes()[:len(Magic2)+1+13]...)
	for i := len(Magic2) + 2; i < len(Magic2)+1+5; i++ {
		lying[i] = 0xff
	}
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader2(bytes.NewReader(data))
		if err != nil {
			return // rejected preamble/image: fine, as long as it's an error
		}
		count := uint64(0)
		for {
			_, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Errorf("body rejection is not a *FormatError: %v", err)
				}
				break
			}
			count++
			if count > 1_000_000 {
				t.Fatal("decoder runaway")
			}
		}
		if r.Count() != count {
			t.Errorf("Count() = %d, decoded %d", r.Count(), count)
		}
	})
}

// FuzzRoundtrip checks that any PC/flag sequence encodes and decodes
// identically.
func FuzzRoundtrip(f *testing.F) {
	f.Add(uint32(0x400000), uint32(0x400100), true)
	f.Add(uint32(0), uint32(4), false)
	f.Add(uint32(1<<31), uint32(12), true)
	f.Fuzz(func(t *testing.T, pc, tgt uint32, taken bool) {
		rec := Record{
			PC:     isa.Addr(pc) &^ 3,
			Target: isa.Addr(tgt) &^ 3,
			Taken:  taken,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, workload.MustByName("mysql"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		// Zero target encodes as fall-through.
		want := rec
		if want.Target == 0 {
			want.Target = want.PC + 4
		}
		if got != want {
			t.Errorf("roundtrip %+v → %+v", want, got)
		}
	})
}
