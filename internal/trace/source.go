package trace

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// Source is a fully decoded UDPT2 trace presented as a workload.Source:
// the embedded image plus the recorded dynamic stream, keyed by the
// SHA-256 of the trace file content. Decoding happens once at load —
// the stream is materialized into a flat []isa.DynInstr whose Static
// pointers alias the shared image, so Stream()s replay with zero
// allocation per instruction (the Machine.Step zero-alloc invariant)
// and random access (frontend's ring-free direct oracle mode) is an
// index.
type Source struct {
	name string
	sha  string // hex SHA-256 of the raw file content
	salt uint64
	prog *workload.Program
	recs []isa.DynInstr
}

var _ workload.Source = (*Source)(nil)

// LoadSource reads and decodes a UDPT2 trace file. The default name is
// the file's base name without extension; override with SetName.
func LoadSource(path string) (*Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return LoadSourceBytes(name, data)
}

// LoadSourceBytes decodes a UDPT2 trace from memory.
func LoadSourceBytes(name string, data []byte) (*Source, error) {
	sum := sha256.Sum256(data)
	r, err := NewReader2(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	prog, err := r.Image()
	if err != nil {
		return nil, err
	}
	var recs []isa.DynInstr
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, isa.DynInstr{
			Static:   prog.InstrAt(rec.PC),
			Taken:    rec.Taken,
			Target:   rec.Target,
			DataAddr: rec.DataAddr,
			Seq:      uint64(len(recs)) + 1, // Seq is 1-based, matching the executor
		})
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: %s holds no records", name)
	}
	return &Source{
		name: name,
		sha:  hex.EncodeToString(sum[:]),
		salt: r.Salt(),
		prog: prog,
		recs: recs,
	}, nil
}

// Name returns the workload label.
func (s *Source) Name() string { return s.name }

// SetName overrides the workload label (descriptors name their traces).
func (s *Source) SetName(name string) { s.name = name }

// SHA256 returns the hex content hash.
func (s *Source) SHA256() string { return s.sha }

// Key returns the cache identity, "trace:" + content hash.
func (s *Source) Key() string { return "trace:" + s.sha }

// Salt returns the executor salt the trace was recorded at.
func (s *Source) Salt() uint64 { return s.salt }

// Len returns the number of recorded instructions.
func (s *Source) Len() uint64 { return uint64(len(s.recs)) }

// Image returns the embedded static image (shared across machines).
func (s *Source) Image() (*workload.Program, error) { return s.prog, nil }

// Stream returns a fresh replay cursor. A trace is one recording, so
// only the recorded salt is valid: simpoint fan-out over a trace is a
// configuration error caught here rather than a silently wrong stream.
func (s *Source) Stream(seedSalt uint64) (workload.Stream, error) {
	if seedSalt != s.salt {
		return nil, fmt.Errorf("trace: %s was recorded at salt %d; cannot replay at salt %d (traces support a single simpoint)",
			s.name, s.salt, seedSalt)
	}
	return &sourceStream{recs: s.recs, name: s.name}, nil
}

// sourceStream replays the materialized records. It implements both the
// sequential frontend.InstrSource protocol (Next) and random access
// (At), which puts the oracle in ring-free direct mode; and the
// SetRunContext duck interface, so a canceled daemon job aborts the
// replay promptly (sim.RunCtx polls via the panic/recover abort
// protocol since the hot path returns no error).
type sourceStream struct {
	recs []isa.DynInstr
	pos  uint64
	name string
	ctx  context.Context
}

// abortPollMask throttles context polls to one per 4096 records,
// mirroring the cycle-loop poll stride in sim.RunCtx.
const abortPollMask = 4096 - 1

// abortError carries a context cancellation out of the allocation-free
// stream path; sim.RunCtx recovers it via the RunAborted duck interface.
type abortError struct{ err error }

func (e abortError) Error() string     { return "trace: replay aborted: " + e.err.Error() }
func (e abortError) RunAborted() error { return e.err }

// SetRunContext installs (or with nil clears) the cancellation context.
func (s *sourceStream) SetRunContext(ctx context.Context) { s.ctx = ctx }

func (s *sourceStream) pollAbort(i uint64) {
	if i&abortPollMask == 0 && s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			panic(abortError{err})
		}
	}
}

// At implements frontend.RandomAccessSource.
func (s *sourceStream) At(i uint64) isa.DynInstr {
	s.pollAbort(i)
	if i >= uint64(len(s.recs)) {
		panic(fmt.Sprintf("trace: %s replay past end of trace (%d records, want %d); record a longer region (simulation length + oracle runahead margin)",
			s.name, len(s.recs), i+1))
	}
	return s.recs[i]
}

// Next implements frontend.InstrSource.
func (s *sourceStream) Next() isa.DynInstr {
	d := s.At(s.pos)
	s.pos++
	return d
}
