// Package trace records and replays dynamic instruction streams, the
// equivalent of the paper's DynamoRIO / Intel PT trace methodology: a
// trace captures "a precise continuous sequence of dynamically executed
// basic blocks and memory addresses" (Section III-A) which the
// simulator's trace-driven frontend replays. It also implements
// simpoint-style representative-region selection over basic-block
// vectors.
//
// Traces are bound to a workload profile: the static program image is
// regenerated deterministically from the profile recorded in the trace
// header, and the trace holds only dynamic outcomes.
package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// Magic identifies trace files ("UDPT" + version).
const Magic = "UDPT1\n"

// Record is one dynamic instruction outcome; Static context is
// recovered from the program image at replay.
type Record struct {
	PC       isa.Addr
	Target   isa.Addr // resolved next PC
	DataAddr isa.Addr // loads/stores
	Taken    bool
}

// Writer streams records to an io.Writer with delta+varint compression:
// consecutive PCs are usually sequential, so the common record costs a
// few bytes.
type Writer struct {
	w      *bufio.Writer
	lastPC isa.Addr
	count  uint64
	closed bool
}

// header is serialized at the start of every trace.
type header struct {
	Name string
	Seed uint64
	Salt uint64
}

// NewWriter begins a trace for a program generated from the given
// profile and executor salt.
func NewWriter(w io.Writer, p workload.Profile, salt uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	h := header{Name: p.Name, Seed: p.Seed, Salt: salt}
	if err := writeString(bw, h.Name); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{h.Seed, h.Salt} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:n]); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw}, nil
}

// flags encode which fields follow the PC delta.
const (
	flagTaken   = 1 << 0
	flagHasData = 1 << 1
	flagHasTgt  = 1 << 2 // target differs from fall-through
	flagSeqPC   = 1 << 3 // pc == lastPC + 4 (no delta follows)
)

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.closed {
		return errors.New("trace: write on closed writer")
	}
	var flags byte
	if r.Taken {
		flags |= flagTaken
	}
	if r.DataAddr != 0 {
		flags |= flagHasData
	}
	fallThrough := r.PC + isa.InstrBytes
	if r.Target != 0 && r.Target != fallThrough {
		flags |= flagHasTgt
	}
	seq := r.PC == w.lastPC+isa.InstrBytes
	if seq {
		flags |= flagSeqPC
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	if !seq {
		n := binary.PutVarint(buf[:], int64(r.PC)-int64(w.lastPC))
		if _, err := w.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	if flags&flagHasTgt != 0 {
		n := binary.PutVarint(buf[:], int64(r.Target)-int64(r.PC))
		if _, err := w.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	if flags&flagHasData != 0 {
		n := binary.PutUvarint(buf[:], uint64(r.DataAddr))
		if _, err := w.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	w.lastPC = r.PC
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush finishes the trace.
func (w *Writer) Flush() error {
	w.closed = true
	return w.w.Flush()
}

// Reader decodes a trace.
type Reader struct {
	r      *bufio.Reader
	h      header
	lastPC isa.Addr
	count  uint64
}

// NewReader opens a trace stream and validates its header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	salt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, h: header{Name: name, Seed: seed, Salt: salt}}, nil
}

// Workload returns the traced workload's name.
func (r *Reader) Workload() string { return r.h.Name }

// Seed returns the traced profile's generation seed.
func (r *Reader) Seed() uint64 { return r.h.Seed }

// Salt returns the executor salt the trace was recorded with.
func (r *Reader) Salt() uint64 { return r.h.Salt }

// Count returns records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Read decodes the next record; io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if flags&flagSeqPC != 0 {
		rec.PC = r.lastPC + isa.InstrBytes
	} else {
		d, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, corrupt(err)
		}
		rec.PC = isa.Addr(int64(r.lastPC) + d)
	}
	rec.Taken = flags&flagTaken != 0
	if flags&flagHasTgt != 0 {
		d, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, corrupt(err)
		}
		rec.Target = isa.Addr(int64(rec.PC) + d)
	} else {
		rec.Target = rec.PC + isa.InstrBytes
	}
	if flags&flagHasData != 0 {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, corrupt(err)
		}
		rec.DataAddr = isa.Addr(v)
	}
	// v1 has no per-record integrity check, but the writer never emits
	// a zero target (Target 0 encodes as fall-through); a delta chain
	// landing there is corruption, not data.
	if rec.Target == 0 {
		return Record{}, fmt.Errorf("trace: corrupt record %d: zero target", r.count+1)
	}
	r.lastPC = rec.PC
	r.count++
	return rec, nil
}

func corrupt(err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// RecordN captures n instructions of a workload execution into w.
func RecordN(w io.Writer, p workload.Profile, salt uint64, n uint64) error {
	prog, err := workload.Generate(p)
	if err != nil {
		return err
	}
	exec := workload.NewExecutor(prog, salt)
	tw, err := NewWriter(w, p, salt)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		d := exec.Next()
		if err := tw.Write(Record{
			PC:       d.PC(),
			Target:   d.Target,
			DataAddr: d.DataAddr,
			Taken:    d.Taken,
		}); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replayer adapts a trace to the frontend's InstrSource: it resolves
// each record's static context from the (regenerated) program image.
// Reading past the end of the trace is a caller error (traces must be
// sized to the simulation, plus the oracle's runahead window) and
// panics rather than silently wrapping around.
type Replayer struct {
	prog *workload.Program
	r    *Reader
	seq  uint64
	ctx  context.Context
}

// SetRunContext installs (or with nil clears) a cancellation context:
// Next polls it every 4096 records and aborts the run through the
// panic/recover protocol sim.RunCtx installs, so a canceled daemon job
// stops a trace-driven run promptly instead of replaying to the end.
func (rp *Replayer) SetRunContext(ctx context.Context) { rp.ctx = ctx }

// NewReplayer builds a replayer over a program image matching the
// trace's profile.
func NewReplayer(prog *workload.Program, r *Reader) (*Replayer, error) {
	if prog.Profile().Name != r.Workload() || prog.Profile().Seed != r.Seed() {
		return nil, fmt.Errorf("trace: image %s/seed %#x does not match trace %s/seed %#x",
			prog.Profile().Name, prog.Profile().Seed, r.Workload(), r.Seed())
	}
	return &Replayer{prog: prog, r: r}, nil
}

// Next implements frontend.InstrSource.
func (rp *Replayer) Next() isa.DynInstr {
	if rp.seq&abortPollMask == 0 && rp.ctx != nil {
		if err := rp.ctx.Err(); err != nil {
			panic(abortError{err})
		}
	}
	rec, err := rp.r.Read()
	if err != nil {
		panic(fmt.Sprintf("trace: replay past end of trace (%d records): %v", rp.r.Count(), err))
	}
	rp.seq++
	return isa.DynInstr{
		Static:   rp.prog.InstrAt(rec.PC),
		Taken:    rec.Taken,
		Target:   rec.Target,
		DataAddr: rec.DataAddr,
		Seq:      rp.seq,
	}
}

func writeString(w *bufio.Writer, s string) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
