package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"udpsim/internal/workload"
)

// recordTiny captures n instructions of the tiny profile as a v2 trace.
func recordTiny(t testing.TB, salt, n uint64, enc Encoding) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := RecordN2(&buf, tinyProfile(), salt, n, enc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestV2RoundtripAgainstExecutor(t *testing.T) {
	for _, enc := range []Encoding{EncBinary, EncJSONL} {
		t.Run(enc.String(), func(t *testing.T) {
			p := tinyProfile()
			const n = 30_000
			data := recordTiny(t, 5, n, enc)
			r, err := NewReader2(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if r.Workload() != p.Name || r.Seed() != p.Seed || r.Salt() != 5 || r.Encoding() != enc {
				t.Errorf("header: %s/%#x/%d/%v", r.Workload(), r.Seed(), r.Salt(), r.Encoding())
			}
			prog := workload.MustGenerate(p)
			live := workload.NewExecutor(prog, 5)
			for i := 0; i < n; i++ {
				rec, err := r.Read()
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				want := live.Next()
				if rec.PC != want.PC() || rec.Taken != want.Taken || rec.Target != want.Target || rec.DataAddr != want.DataAddr {
					t.Fatalf("record %d: %+v vs live %+v", i, rec, want)
				}
			}
			if _, err := r.Read(); err != io.EOF {
				t.Errorf("expected EOF, got %v", err)
			}
			if r.Count() != n {
				t.Errorf("Count() = %d", r.Count())
			}
		})
	}
}

// TestV2MultiChunk crosses the writer's 65536-record chunk boundary and
// checks the binary delta state survives it.
func TestV2MultiChunk(t *testing.T) {
	const n = recordsPerChunk + 5_000
	data := recordTiny(t, 0, n, EncBinary)
	r, err := NewReader2(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.MustGenerate(tinyProfile())
	live := workload.NewExecutor(prog, 0)
	for i := uint64(0); i < n; i++ {
		rec, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := live.Next(); rec.PC != want.PC() {
			t.Fatalf("record %d: PC %v vs live %v (chunk-boundary delta state lost?)", i, rec.PC, want.PC())
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestV2ImageRoundtrip verifies the embedded image reconstructs the
// exact static code the generator produced.
func TestV2ImageRoundtrip(t *testing.T) {
	p := tinyProfile()
	data := recordTiny(t, 0, 10, EncBinary)
	r, err := NewReader2(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Image()
	if err != nil {
		t.Fatal(err)
	}
	want := workload.MustGenerate(p)
	if got.Entry() != want.Entry() {
		t.Errorf("entry %v vs %v", got.Entry(), want.Entry())
	}
	gc, wc := got.StaticCode(), want.StaticCode()
	if len(gc) != len(wc) {
		t.Fatalf("code size %d vs %d", len(gc), len(wc))
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Fatalf("static instr %d: %+v vs %+v", i, gc[i], wc[i])
		}
	}
}

func TestConvertV1(t *testing.T) {
	p := tinyProfile()
	var v1 bytes.Buffer
	const n = 8_000
	if err := RecordN(&v1, p, 3, n); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := ConvertV1(&v2, bytes.NewReader(v1.Bytes()), EncBinary); err != nil {
		t.Fatal(err)
	}
	r1, err := NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader2(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Workload() != p.Name || r2.Seed() != p.Seed || r2.Salt() != 3 {
		t.Errorf("converted header: %s/%#x/%d", r2.Workload(), r2.Seed(), r2.Salt())
	}
	for i := 0; i < n; i++ {
		a, err1 := r1.Read()
		b, err2 := r2.Read()
		if err1 != nil || err2 != nil {
			t.Fatalf("read %d: %v / %v", i, err1, err2)
		}
		if a != b {
			t.Fatalf("record %d: v1 %+v vs v2 %+v", i, a, b)
		}
	}
	if _, err := r2.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestConvertV1UnknownProfile(t *testing.T) {
	p := tinyProfile()
	p.Name = "no-such-profile"
	var v1 bytes.Buffer
	if err := RecordN(&v1, p, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := ConvertV1(io.Discard, bytes.NewReader(v1.Bytes()), EncBinary); err == nil {
		t.Error("conversion of a trace naming an unknown profile succeeded")
	}
}

// readAll drains a reader, returning the terminal error (nil for EOF).
func readAll(r *Reader2) error {
	for {
		if _, err := r.Read(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// wantFormatError opens data and expects decoding to fail with a
// *FormatError (at open or while draining), never a panic.
func wantFormatError(t *testing.T, data []byte) *FormatError {
	t.Helper()
	r, err := NewReader2(bytes.NewReader(data))
	if err == nil {
		err = readAll(r)
	}
	if err == nil {
		t.Fatal("corrupt trace decoded cleanly")
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("error is not a *FormatError: %v", err)
	}
	return fe
}

// v2chunks splits a v2 trace into its preamble (magic + encoding byte)
// and framed chunks, using only the on-disk framing.
func v2chunks(t *testing.T, data []byte) (preamble []byte, chunks [][]byte) {
	t.Helper()
	const pre = len(Magic2) + 1
	preamble = data[:pre]
	rest := data[pre:]
	for len(rest) > 0 {
		if len(rest) < 13 {
			t.Fatalf("trailing %d bytes are not a chunk header", len(rest))
		}
		n := binary.LittleEndian.Uint32(rest[1:5])
		end := 13 + int(n)
		chunks = append(chunks, rest[:end])
		rest = rest[end:]
	}
	return preamble, chunks
}

func TestV2Corruption(t *testing.T) {
	valid := recordTiny(t, 0, recordsPerChunk+2_000, EncBinary) // image + 2 record chunks + end

	t.Run("truncated-header", func(t *testing.T) {
		fe := wantFormatError(t, valid[:len(valid)-6]) // end chunk header cut short
		if !errors.Is(fe, io.ErrUnexpectedEOF) {
			t.Errorf("truncation does not unwrap to ErrUnexpectedEOF: %v", fe)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		pre, chunks := v2chunks(t, valid)
		data := append(append([]byte{}, pre...), chunks[0][:len(chunks[0])-10]...)
		fe := wantFormatError(t, data)
		if !errors.Is(fe, io.ErrUnexpectedEOF) {
			t.Errorf("payload truncation does not unwrap to ErrUnexpectedEOF: %v", fe)
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[len(data)/2] ^= 0x40 // lands in a record payload
		wantFormatError(t, data)
	})
	t.Run("length-lying", func(t *testing.T) {
		pre, chunks := v2chunks(t, valid)
		bad := append([]byte{}, chunks[1]...)
		// Claim more payload than follows; CRC updated so the lie is
		// caught by framing, not checksum.
		binary.LittleEndian.PutUint32(bad[1:5], uint32(len(bad)-13)+999)
		data := append(append([]byte{}, pre...), chunks[0]...)
		data = append(data, bad...)
		wantFormatError(t, data)
	})
	t.Run("implausible-length", func(t *testing.T) {
		pre, chunks := v2chunks(t, valid)
		bad := append([]byte{}, chunks[1]...)
		binary.LittleEndian.PutUint32(bad[1:5], chunkPayloadMax+1)
		data := append(append([]byte{}, pre...), chunks[0]...)
		data = append(data, bad...)
		fe := wantFormatError(t, data)
		if fe.Chunk != 1 {
			t.Errorf("failure attributed to chunk %d, want 1", fe.Chunk)
		}
	})
	t.Run("implausible-record-count", func(t *testing.T) {
		pre, chunks := v2chunks(t, valid)
		bad := append([]byte{}, chunks[1]...)
		binary.LittleEndian.PutUint32(bad[5:9], chunkRecordsMax+1)
		binary.LittleEndian.PutUint32(bad[9:13], crc32.ChecksumIEEE(bad[13:]))
		data := append(append([]byte{}, pre...), chunks[0]...)
		data = append(data, bad...)
		wantFormatError(t, data)
	})
	t.Run("lost-chunk", func(t *testing.T) {
		pre, chunks := v2chunks(t, valid)
		if len(chunks) != 4 {
			t.Fatalf("expected image+2 record+end chunks, got %d", len(chunks))
		}
		// Drop the second record chunk: every remaining chunk is
		// internally valid, so only the end-chunk total can notice.
		data := append([]byte{}, pre...)
		data = append(data, chunks[0]...)
		data = append(data, chunks[1]...)
		data = append(data, chunks[3]...)
		fe := wantFormatError(t, data)
		if !bytes.Contains([]byte(fe.Reason), []byte("count mismatch")) {
			t.Errorf("lost chunk not caught by trailer count: %v", fe)
		}
	})
	t.Run("garbage-after-magic", func(t *testing.T) {
		data := append([]byte(Magic2), 0)
		data = append(data, []byte("pure garbage, not a chunk at all")...)
		wantFormatError(t, data)
	})
}

func TestV2BadPreamble(t *testing.T) {
	if _, err := NewReader2(bytes.NewReader([]byte("UDPT9\n\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader2(bytes.NewReader([]byte(Magic2 + "\x7f"))); err == nil {
		t.Error("unknown encoding byte accepted")
	}
}

func TestParseEncoding(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Encoding
		ok   bool
	}{
		{"binary", EncBinary, true},
		{"", EncBinary, true},
		{"jsonl", EncJSONL, true},
		{"protobuf", 0, false},
	} {
		got, err := ParseEncoding(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEncoding(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestV2WriteAfterFlushFails(t *testing.T) {
	prog := workload.MustGenerate(tinyProfile())
	w, err := NewWriter2(io.Discard, prog, 0, EncBinary)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Error("write after flush succeeded")
	}
}

func TestV2CompressionDensity(t *testing.T) {
	const n = 50_000
	data := recordTiny(t, 0, n, EncBinary)
	// The embedded image has a fixed cost; amortized over a real
	// recording the per-record cost must stay comparable to v1.
	perInstr := float64(len(data)) / n
	if perInstr > 8 {
		t.Errorf("%.2f bytes/instr — chunked delta compression broken", perInstr)
	}
}

func TestSourceLoadAndStream(t *testing.T) {
	const n = 5_000
	data := recordTiny(t, 7, n, EncBinary)
	src, err := LoadSourceBytes("tiny", data)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "tiny" || src.Salt() != 7 || src.Len() != n {
		t.Errorf("source: %s/%d/%d", src.Name(), src.Salt(), src.Len())
	}
	if len(src.SHA256()) != 64 || src.Key() != "trace:"+src.SHA256() {
		t.Errorf("key: %s", src.Key())
	}
	if _, err := src.Stream(8); err == nil {
		t.Error("stream at a foreign salt accepted")
	}
	st, err := src.Stream(7)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.MustGenerate(tinyProfile())
	live := workload.NewExecutor(prog, 7)
	for i := 0; i < n; i++ {
		a, b := st.Next(), live.Next()
		if a.PC() != b.PC() || a.Taken != b.Taken || a.Target != b.Target || a.DataAddr != b.DataAddr {
			t.Fatalf("stream mismatch at %d", i)
		}
		if a.Seq != uint64(i+1) {
			t.Fatalf("Seq %d at %d", a.Seq, i)
		}
		if a.Static == nil {
			t.Fatalf("record %d has no static context", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic past end of trace")
		}
	}()
	st.Next()
}

func TestSourceRejectsEmptyTrace(t *testing.T) {
	data := recordTiny(t, 0, 1, EncBinary)
	pre, chunks := v2chunks(t, data)
	// Image + end(total 0): structurally valid, zero records.
	var end [8]byte
	var hdr [13]byte
	hdr[0] = chunkEnd
	binary.LittleEndian.PutUint32(hdr[1:5], 8)
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(end[:]))
	empty := append(append([]byte{}, pre...), chunks[0]...)
	empty = append(empty, hdr[:]...)
	empty = append(empty, end[:]...)
	if _, err := LoadSourceBytes("empty", empty); err == nil {
		t.Error("empty trace loaded as a source")
	}
}
