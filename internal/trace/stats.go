package trace

import (
	"fmt"
	"io"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// Stats summarizes a trace: instruction mix, control-flow behaviour,
// and footprint — the characterization data of the paper's Table I.
type Stats struct {
	Instructions uint64
	Taken        uint64
	Branches     uint64
	Loads        uint64
	Stores       uint64

	// UniqueLines is the instruction-footprint in distinct cache lines.
	UniqueLines int
	// UniqueBlocks is the footprint in distinct fetch blocks.
	UniqueBlocks int
}

// FootprintBytes returns the touched instruction footprint.
func (s *Stats) FootprintBytes() int { return s.UniqueLines * isa.LineBytes }

// TakenRatio returns taken transfers per instruction.
func (s *Stats) TakenRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Instructions)
}

func (s *Stats) String() string {
	return fmt.Sprintf("%d instrs, %d branches (%d taken), %d loads, %d stores, footprint %d KiB",
		s.Instructions, s.Branches, s.Taken, s.Loads, s.Stores, s.FootprintBytes()/1024)
}

// Analyze scans a whole trace against its program image, accumulating
// statistics.
func Analyze(prog *workload.Program, r *Reader) (Stats, error) {
	var s Stats
	lines := make(map[uint64]struct{})
	blocks := make(map[uint64]struct{})
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s, err
		}
		s.Instructions++
		si := prog.InstrAt(rec.PC)
		if si.IsBranch() {
			s.Branches++
		}
		switch si.Class {
		case isa.ClassLoad:
			s.Loads++
		case isa.ClassStore:
			s.Stores++
		}
		if rec.Taken {
			s.Taken++
		}
		lines[rec.PC.LineIndex()] = struct{}{}
		blocks[uint64(rec.PC.Block())] = struct{}{}
	}
	s.UniqueLines = len(lines)
	s.UniqueBlocks = len(blocks)
	return s, nil
}
