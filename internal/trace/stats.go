package trace

import (
	"fmt"
	"io"
	"sort"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// RecordReader is the decode protocol both trace readers share (v1
// Reader, v2 Reader2), so analysis code is format-agnostic.
type RecordReader interface {
	Read() (Record, error)
}

// Stats summarizes a trace: instruction mix, control-flow behaviour,
// and footprint — the characterization data of the paper's Table I.
type Stats struct {
	Instructions uint64
	Taken        uint64
	Branches     uint64
	Loads        uint64
	Stores       uint64

	// Kinds counts dynamic branches by kind (the branch mix).
	Kinds [isa.NumBranchKinds]uint64

	// UniqueLines is the instruction-footprint in distinct cache lines.
	UniqueLines int
	// UniqueBlocks is the footprint in distinct fetch blocks.
	UniqueBlocks int

	blockCounts map[isa.Addr]uint64
}

// FootprintBytes returns the touched instruction footprint.
func (s *Stats) FootprintBytes() int { return s.UniqueLines * isa.LineBytes }

// TakenRatio returns taken transfers per instruction.
func (s *Stats) TakenRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Instructions)
}

// BranchTakenRate returns the fraction of dynamic branches taken.
func (s *Stats) BranchTakenRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}

// BlockCount is one entry of the hot-block ranking.
type BlockCount struct {
	Block isa.Addr
	Count uint64
}

// HotBlocks returns the n most-executed fetch blocks, by dynamic
// instruction count, hottest first (ties broken by address for
// deterministic output).
func (s *Stats) HotBlocks(n int) []BlockCount {
	out := make([]BlockCount, 0, len(s.blockCounts))
	for b, c := range s.blockCounts {
		out = append(out, BlockCount{Block: b, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Block < out[j].Block
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func (s *Stats) String() string {
	return fmt.Sprintf("%d instrs, %d branches (%d taken), %d loads, %d stores, footprint %d KiB",
		s.Instructions, s.Branches, s.Taken, s.Loads, s.Stores, s.FootprintBytes()/1024)
}

// Analyze scans a whole trace against its program image, accumulating
// statistics.
func Analyze(prog *workload.Program, r RecordReader) (Stats, error) {
	var s Stats
	lines := make(map[uint64]struct{})
	s.blockCounts = make(map[isa.Addr]uint64)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s, err
		}
		s.Instructions++
		si := prog.InstrAt(rec.PC)
		if si.IsBranch() {
			s.Branches++
			s.Kinds[si.Branch]++
		}
		switch si.Class {
		case isa.ClassLoad:
			s.Loads++
		case isa.ClassStore:
			s.Stores++
		}
		if rec.Taken {
			s.Taken++
		}
		lines[rec.PC.LineIndex()] = struct{}{}
		s.blockCounts[rec.PC.Block()]++
	}
	s.UniqueLines = len(lines)
	s.UniqueBlocks = len(s.blockCounts)
	return s, nil
}
