package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

func tinyProfile() workload.Profile {
	p := workload.MustByName("postgres")
	p.Funcs = 30
	p.DispatchTargets = 20
	return p
}

func TestRoundtripAgainstExecutor(t *testing.T) {
	p := tinyProfile()
	var buf bytes.Buffer
	const n = 30_000
	if err := RecordN(&buf, p, 5, n); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload() != p.Name || r.Seed() != p.Seed || r.Salt() != 5 {
		t.Errorf("header: %s/%#x/%d", r.Workload(), r.Seed(), r.Salt())
	}
	prog := workload.MustGenerate(p)
	live := workload.NewExecutor(prog, 5)
	for i := 0; i < n; i++ {
		rec, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := live.Next()
		if rec.PC != want.PC() || rec.Taken != want.Taken || rec.Target != want.Target || rec.DataAddr != want.DataAddr {
			t.Fatalf("record %d: %+v vs live %+v", i, rec, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

// Property: arbitrary record sequences survive the varint/delta
// encoding bit-exactly.
func TestRecordRoundtripProperty(t *testing.T) {
	f := func(pcs []uint32, flags []bool) bool {
		var recs []Record
		for i, pc := range pcs {
			taken := i < len(flags) && flags[i]
			recs = append(recs, Record{
				PC:       isa.Addr(pc) &^ 3,
				Target:   isa.Addr(pc+8) &^ 3,
				DataAddr: isa.Addr(pc * 3),
				Taken:    taken,
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, tinyProfile(), 0)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := r.Read()
			if err != nil {
				return false
			}
			// DataAddr of 0 is encoded as "absent".
			if want.DataAddr == 0 {
				got.DataAddr = 0
			}
			if got != want {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE!\nxxxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedTraceReported(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordN(&buf, tinyProfile(), 0, 100); err != nil {
		t.Fatal(err)
	}
	// Cut the trace mid-record.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err = r.Read(); err != nil {
			break
		}
	}
	if err == io.EOF && r.Count() == 100 {
		t.Skip("truncation landed on a record boundary")
	}
	if err == nil {
		t.Error("no error on truncated trace")
	}
}

func TestReplayerMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordN(&buf, tinyProfile(), 0, 10); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	other := tinyProfile()
	other.Seed++
	prog := workload.MustGenerate(other)
	if _, err := NewReplayer(prog, r); err == nil {
		t.Error("mismatched image accepted")
	}
}

func TestReplayerStream(t *testing.T) {
	p := tinyProfile()
	var buf bytes.Buffer
	if err := RecordN(&buf, p, 0, 5000); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	prog := workload.MustGenerate(p)
	rp, err := NewReplayer(prog, r)
	if err != nil {
		t.Fatal(err)
	}
	live := workload.NewExecutor(prog, 0)
	for i := 0; i < 5000; i++ {
		a, b := rp.Next(), live.Next()
		if a.PC() != b.PC() || a.Taken != b.Taken || a.Target != b.Target {
			t.Fatalf("replay mismatch at %d", i)
		}
		if a.Static != b.Static {
			t.Fatalf("replay static context not shared at %d", i)
		}
		if a.Seq != uint64(i+1) {
			t.Fatalf("replay Seq %d at %d", a.Seq, i)
		}
	}
}

func TestReplayerPanicsPastEnd(t *testing.T) {
	p := tinyProfile()
	var buf bytes.Buffer
	if err := RecordN(&buf, p, 0, 3); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	rp, _ := NewReplayer(workload.MustGenerate(p), r)
	for i := 0; i < 3; i++ {
		rp.Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic past end")
		}
	}()
	rp.Next()
}

func TestWriteAfterFlushFails(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tinyProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if err := w.Write(Record{}); err == nil {
		t.Error("write after flush succeeded")
	}
}

func TestCompressionDensity(t *testing.T) {
	var buf bytes.Buffer
	const n = 50_000
	if err := RecordN(&buf, tinyProfile(), 0, n); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / n
	if perInstr > 6 {
		t.Errorf("%.2f bytes/instr — delta compression broken", perInstr)
	}
}

func TestAnalyze(t *testing.T) {
	p := tinyProfile()
	var buf bytes.Buffer
	const n = 20_000
	if err := RecordN(&buf, p, 0, n); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	prog := workload.MustGenerate(p)
	s, err := Analyze(prog, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != n {
		t.Errorf("Instructions = %d", s.Instructions)
	}
	if s.Branches == 0 || s.Loads == 0 || s.Stores == 0 || s.Taken == 0 {
		t.Errorf("degenerate mix: %v", &s)
	}
	if s.UniqueLines == 0 || s.FootprintBytes() == 0 {
		t.Error("no footprint measured")
	}
	if s.TakenRatio() <= 0 || s.TakenRatio() > 0.5 {
		t.Errorf("taken ratio %v implausible", s.TakenRatio())
	}
}

func TestIntervalsAndSelect(t *testing.T) {
	p := tinyProfile()
	var buf bytes.Buffer
	if err := RecordN(&buf, p, 0, 100_000); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	intervals, err := Intervals(r, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(intervals) != 10 {
		t.Fatalf("%d intervals", len(intervals))
	}
	for i, iv := range intervals {
		sum := 0.0
		for _, v := range iv.BBV {
			if v < 0 {
				t.Fatal("negative BBV component")
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("interval %d BBV not normalized: %v", i, sum)
		}
	}

	points := Select(intervals, 3)
	if len(points) == 0 || len(points) > 3 {
		t.Fatalf("%d simpoints", len(points))
	}
	total := 0.0
	for _, pt := range points {
		total += pt.Weight
		if pt.Start%10_000 != 0 {
			t.Errorf("simpoint start %d not interval-aligned", pt.Start)
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("weights sum to %v", total)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Weight > points[i-1].Weight {
			t.Error("simpoints not ordered by weight")
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if Select(nil, 3) != nil {
		t.Error("empty selection")
	}
	iv := []Interval{{Index: 0}}
	pts := Select(iv, 5) // k > len
	if len(pts) != 1 || pts[0].Weight != 1 {
		t.Errorf("single-interval selection: %+v", pts)
	}
	pts = Select(iv, 0) // k <= 0
	if len(pts) != 1 {
		t.Errorf("k=0 selection: %+v", pts)
	}
}

func TestIntervalsRejectsZeroLength(t *testing.T) {
	var buf bytes.Buffer
	RecordN(&buf, tinyProfile(), 0, 10)
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := Intervals(r, 0); err == nil {
		t.Error("zero interval length accepted")
	}
}
