package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// UDPT2 is the self-contained trace format: unlike UDPT1, which names a
// synthetic profile and regenerates the image from it, a v2 trace
// embeds the static code layout itself, so any (pc, target, taken)
// stream — including one captured from a real binary — replays without
// the generator. The layout is
//
//	"UDPT2\n" <encoding byte> <image chunk> <record chunk>* <end chunk>
//
// where every chunk is independently framed and checksummed:
//
//	type byte ('I'/'R'/'E')
//	uint32le payload length
//	uint32le record count   (records in this chunk; 0 for 'I'/'E')
//	uint32le CRC-32 (IEEE) of the payload
//	payload
//
// so a truncated, bit-flipped, or length-lying file fails with a
// structured *FormatError at the damaged chunk instead of decoding
// garbage. Image and record payloads are gzip-compressed; the encoding
// byte selects how records serialize inside their payload — binary
// (the v1 delta+varint scheme) or JSONL (one JSON object per record,
// greppable). The 'E' chunk carries the total record count, catching
// whole-chunk truncation at a chunk boundary that per-chunk checksums
// cannot see.
const Magic2 = "UDPT2\n"

// Encoding selects the record serialization inside chunk payloads.
type Encoding byte

// Record encodings.
const (
	EncBinary Encoding = 0 // v1-style flags + delta varints, gzipped
	EncJSONL  Encoding = 1 // one JSON object per record, gzipped
)

// ParseEncoding maps the CLI spelling to an Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "binary", "":
		return EncBinary, nil
	case "jsonl":
		return EncJSONL, nil
	}
	return 0, fmt.Errorf("trace: unknown encoding %q (want binary or jsonl)", s)
}

func (e Encoding) String() string {
	switch e {
	case EncBinary:
		return "binary"
	case EncJSONL:
		return "jsonl"
	}
	return fmt.Sprintf("encoding(%d)", byte(e))
}

// Framing limits: a reader never allocates more than these per chunk,
// whatever the header claims, so hostile lengths cannot OOM.
const (
	chunkPayloadMax   = 1 << 26 // 64 MiB compressed payload
	chunkRecordsMax   = 1 << 20 // records per chunk
	imageInstrsMax    = 1 << 24 // static instructions in the embedded image
	recordsPerChunk   = 1 << 16 // writer's chunk granularity
	decompressedLimit = 1 << 28 // 256 MiB decompressed image/chunk bound
)

// Chunk type bytes.
const (
	chunkImage   = 'I'
	chunkRecords = 'R'
	chunkEnd     = 'E'
)

// FormatError is the structured decode failure: which chunk (0-based,
// counting the image chunk) broke and why. It wraps the underlying
// cause, so errors.Is(err, io.ErrUnexpectedEOF) distinguishes
// truncation from corruption.
type FormatError struct {
	Chunk  int
	Reason string
	Err    error
}

func (e *FormatError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: chunk %d: %s: %v", e.Chunk, e.Reason, e.Err)
	}
	return fmt.Sprintf("trace: chunk %d: %s", e.Chunk, e.Reason)
}

func (e *FormatError) Unwrap() error { return e.Err }

// imageJSON is the embedded static code layout. PC and FallThrough are
// implicit (code is dense from workload.ImageBase in layout order), so
// each instruction costs only its class, branch kind, and the optional
// target/data address.
type imageJSON struct {
	Name  string       `json:"name"`
	Seed  uint64       `json:"seed"`
	Salt  uint64       `json:"salt"`
	Entry uint64       `json:"entry"`
	Code  []imageInstr `json:"code"`
}

type imageInstr struct {
	C uint8  `json:"c"`
	B uint8  `json:"b,omitempty"`
	T uint64 `json:"t,omitempty"`
	D uint64 `json:"d,omitempty"`
}

// recordJSON is one EncJSONL record line.
type recordJSON struct {
	PC       uint64 `json:"pc"`
	Target   uint64 `json:"tgt"`
	DataAddr uint64 `json:"da,omitempty"`
	Taken    bool   `json:"tk,omitempty"`
}

// writeChunk frames and emits one chunk.
func writeChunk(w *bufio.Writer, typ byte, records uint32, payload []byte) error {
	var hdr [13]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], records)
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// gzipBytes compresses b.
func gzipBytes(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gunzipBytes decompresses b with an allocation bound.
func gunzipBytes(b []byte, limit int64) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(io.LimitReader(zr, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > limit {
		return nil, fmt.Errorf("decompressed payload exceeds %d bytes", limit)
	}
	return out, zr.Close()
}

// Writer2 streams a UDPT2 trace: the image chunk up front, records in
// fixed-count framed chunks, and a trailing count chunk on Flush.
type Writer2 struct {
	w      *bufio.Writer
	enc    Encoding
	lastPC isa.Addr // binary delta state, carried across chunks
	buf    bytes.Buffer
	inBuf  uint32
	count  uint64
	closed bool
	err    error
}

// NewWriter2 begins a v2 trace embedding prog's static image. The salt
// is recorded so replay can validate against a config's SeedSalt.
func NewWriter2(w io.Writer, prog *workload.Program, salt uint64, enc Encoding) (*Writer2, error) {
	if enc != EncBinary && enc != EncJSONL {
		return nil, fmt.Errorf("trace: unknown encoding %d", enc)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic2); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(enc)); err != nil {
		return nil, err
	}
	code := prog.StaticCode()
	img := imageJSON{
		Name:  prog.Profile().Name,
		Seed:  prog.Profile().Seed,
		Salt:  salt,
		Entry: uint64(prog.Entry()),
		Code:  make([]imageInstr, len(code)),
	}
	for i := range code {
		img.Code[i] = imageInstr{
			C: uint8(code[i].Class),
			B: uint8(code[i].Branch),
			T: uint64(code[i].Target),
			D: uint64(code[i].DataAddr),
		}
	}
	raw, err := json.Marshal(&img)
	if err != nil {
		return nil, err
	}
	payload, err := gzipBytes(raw)
	if err != nil {
		return nil, err
	}
	if err := writeChunk(bw, chunkImage, 0, payload); err != nil {
		return nil, err
	}
	return &Writer2{w: bw, enc: enc}, nil
}

// Write appends one record.
func (w *Writer2) Write(r Record) error {
	if w.closed {
		return errors.New("trace: write on closed writer")
	}
	if w.err != nil {
		return w.err
	}
	switch w.enc {
	case EncBinary:
		w.writeBinary(r)
	case EncJSONL:
		line, err := json.Marshal(recordJSON{
			PC:       uint64(r.PC),
			Target:   uint64(r.Target),
			DataAddr: uint64(r.DataAddr),
			Taken:    r.Taken,
		})
		if err != nil {
			w.err = err
			return err
		}
		w.buf.Write(line)
		w.buf.WriteByte('\n')
	}
	w.count++
	w.inBuf++
	if w.inBuf >= recordsPerChunk {
		return w.flushChunk()
	}
	return nil
}

// writeBinary serializes one record with the v1 delta+varint scheme.
func (w *Writer2) writeBinary(r Record) {
	var flags byte
	if r.Taken {
		flags |= flagTaken
	}
	if r.DataAddr != 0 {
		flags |= flagHasData
	}
	fallThrough := r.PC + isa.InstrBytes
	if r.Target != 0 && r.Target != fallThrough {
		flags |= flagHasTgt
	}
	seq := r.PC == w.lastPC+isa.InstrBytes
	if seq {
		flags |= flagSeqPC
	}
	w.buf.WriteByte(flags)
	var buf [binary.MaxVarintLen64]byte
	if !seq {
		n := binary.PutVarint(buf[:], int64(r.PC)-int64(w.lastPC))
		w.buf.Write(buf[:n])
	}
	if flags&flagHasTgt != 0 {
		n := binary.PutVarint(buf[:], int64(r.Target)-int64(r.PC))
		w.buf.Write(buf[:n])
	}
	if flags&flagHasData != 0 {
		n := binary.PutUvarint(buf[:], uint64(r.DataAddr))
		w.buf.Write(buf[:n])
	}
	w.lastPC = r.PC
}

// flushChunk compresses and frames the buffered records.
func (w *Writer2) flushChunk() error {
	if w.inBuf == 0 {
		return nil
	}
	payload, err := gzipBytes(w.buf.Bytes())
	if err != nil {
		w.err = err
		return err
	}
	if err := writeChunk(w.w, chunkRecords, w.inBuf, payload); err != nil {
		w.err = err
		return err
	}
	w.buf.Reset()
	w.inBuf = 0
	return nil
}

// Count returns the number of records written.
func (w *Writer2) Count() uint64 { return w.count }

// Flush finishes the trace: final record chunk, the end chunk with the
// total count, and the underlying buffer.
func (w *Writer2) Flush() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if err := w.flushChunk(); err != nil {
		return err
	}
	var total [8]byte
	binary.LittleEndian.PutUint64(total[:], w.count)
	if err := writeChunk(w.w, chunkEnd, 0, total[:]); err != nil {
		w.err = err
		return err
	}
	return w.w.Flush()
}

// Reader2 decodes a UDPT2 trace. The image chunk is decoded eagerly at
// open (so a corrupt image fails fast); record chunks stream.
type Reader2 struct {
	r   *bufio.Reader
	enc Encoding

	name  string
	seed  uint64
	salt  uint64
	entry isa.Addr
	code  []isa.StaticInstr

	chunk    int // index of the next chunk to read (image chunk was 0)
	lastPC   isa.Addr
	count    uint64
	pending  []byte // decompressed records of the current chunk
	pendLeft uint32 // records remaining in pending
	done     bool   // end chunk seen and verified
}

// NewReader2 opens a v2 trace and decodes its embedded image.
func NewReader2(r io.Reader) (*Reader2, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic2 {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, Magic2)
	}
	encB, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading encoding: %w", err)
	}
	enc := Encoding(encB)
	if enc != EncBinary && enc != EncJSONL {
		return nil, fmt.Errorf("trace: unknown encoding byte %d", encB)
	}
	rd := &Reader2{r: br, enc: enc}
	typ, records, payload, err := rd.readChunk()
	if err != nil {
		return nil, err
	}
	if typ != chunkImage {
		return nil, &FormatError{Chunk: 0, Reason: fmt.Sprintf("expected image chunk, got %q", typ)}
	}
	if records != 0 {
		return nil, &FormatError{Chunk: 0, Reason: "image chunk claims records"}
	}
	raw, err := gunzipBytes(payload, decompressedLimit)
	if err != nil {
		return nil, &FormatError{Chunk: 0, Reason: "image decompress", Err: err}
	}
	var img imageJSON
	if err := json.Unmarshal(raw, &img); err != nil {
		return nil, &FormatError{Chunk: 0, Reason: "image decode", Err: err}
	}
	if len(img.Code) > imageInstrsMax {
		return nil, &FormatError{Chunk: 0, Reason: fmt.Sprintf("implausible image size %d instrs", len(img.Code))}
	}
	rd.name, rd.seed, rd.salt = img.Name, img.Seed, img.Salt
	rd.entry = isa.Addr(img.Entry)
	rd.code = make([]isa.StaticInstr, len(img.Code))
	for i, ci := range img.Code {
		pc := workload.ImageBase + isa.Addr(i*isa.InstrBytes)
		rd.code[i] = isa.StaticInstr{
			PC:          pc,
			Class:       isa.Class(ci.C),
			Branch:      isa.BranchKind(ci.B),
			Target:      isa.Addr(ci.T),
			FallThrough: pc + isa.InstrBytes,
			DataAddr:    isa.Addr(ci.D),
		}
	}
	rd.chunk = 1
	return rd, nil
}

// readChunk reads and CRC-verifies one framed chunk.
func (r *Reader2) readChunk() (typ byte, records uint32, payload []byte, err error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: "truncated chunk header", Err: io.ErrUnexpectedEOF}
		}
		return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: "chunk header", Err: err}
	}
	typ = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	records = binary.LittleEndian.Uint32(hdr[5:9])
	sum := binary.LittleEndian.Uint32(hdr[9:13])
	if typ != chunkImage && typ != chunkRecords && typ != chunkEnd {
		return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: fmt.Sprintf("unknown chunk type %#x", typ)}
	}
	if n > chunkPayloadMax {
		return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: fmt.Sprintf("implausible payload length %d", n)}
	}
	if records > chunkRecordsMax {
		return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: fmt.Sprintf("implausible record count %d", records)}
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: "truncated payload", Err: io.ErrUnexpectedEOF}
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return 0, 0, nil, &FormatError{Chunk: r.chunk, Reason: fmt.Sprintf("checksum mismatch (got %#x, want %#x)", got, sum)}
	}
	return typ, records, payload, nil
}

// Workload returns the traced workload's name.
func (r *Reader2) Workload() string { return r.name }

// Seed returns the recorded generation seed (0 for external captures).
func (r *Reader2) Seed() uint64 { return r.seed }

// Salt returns the executor salt the trace was recorded at.
func (r *Reader2) Salt() uint64 { return r.salt }

// Encoding returns the record encoding.
func (r *Reader2) Encoding() Encoding { return r.enc }

// Count returns records decoded so far.
func (r *Reader2) Count() uint64 { return r.count }

// Image reconstructs the embedded static image as a Program.
func (r *Reader2) Image() (*workload.Program, error) {
	return workload.NewProgramFromImage(
		workload.Profile{Name: r.name, Seed: r.seed}, r.entry, r.code)
}

// Read decodes the next record; io.EOF at a verified end of trace.
func (r *Reader2) Read() (Record, error) {
	for r.pendLeft == 0 {
		if r.done {
			return Record{}, io.EOF
		}
		typ, records, payload, err := r.readChunk()
		if err != nil {
			return Record{}, err
		}
		c := r.chunk
		r.chunk++
		switch typ {
		case chunkEnd:
			if len(payload) != 8 {
				return Record{}, &FormatError{Chunk: c, Reason: "malformed end chunk"}
			}
			if total := binary.LittleEndian.Uint64(payload); total != r.count {
				return Record{}, &FormatError{Chunk: c,
					Reason: fmt.Sprintf("record count mismatch: trailer says %d, decoded %d (chunk lost?)", total, r.count)}
			}
			r.done = true
			return Record{}, io.EOF
		case chunkRecords:
			if records == 0 {
				return Record{}, &FormatError{Chunk: c, Reason: "empty record chunk"}
			}
			raw, err := gunzipBytes(payload, decompressedLimit)
			if err != nil {
				return Record{}, &FormatError{Chunk: c, Reason: "record decompress", Err: err}
			}
			r.pending = raw
			r.pendLeft = records
		default:
			return Record{}, &FormatError{Chunk: c, Reason: fmt.Sprintf("unexpected chunk type %q", typ)}
		}
	}
	rec, err := r.decodeOne()
	if err != nil {
		return Record{}, &FormatError{Chunk: r.chunk - 1, Reason: "record decode", Err: err}
	}
	r.pendLeft--
	r.count++
	return rec, nil
}

// decodeOne consumes one record from the pending buffer.
func (r *Reader2) decodeOne() (Record, error) {
	switch r.enc {
	case EncJSONL:
		i := bytes.IndexByte(r.pending, '\n')
		if i < 0 {
			return Record{}, io.ErrUnexpectedEOF
		}
		var rj recordJSON
		if err := json.Unmarshal(r.pending[:i], &rj); err != nil {
			return Record{}, err
		}
		r.pending = r.pending[i+1:]
		return Record{
			PC:       isa.Addr(rj.PC),
			Target:   isa.Addr(rj.Target),
			DataAddr: isa.Addr(rj.DataAddr),
			Taken:    rj.Taken,
		}, nil
	default: // EncBinary
		buf := bytes.NewReader(r.pending)
		rec, err := r.decodeBinary(buf)
		if err != nil {
			return Record{}, err
		}
		r.pending = r.pending[len(r.pending)-buf.Len():]
		return rec, nil
	}
}

// decodeBinary mirrors Writer2.writeBinary.
func (r *Reader2) decodeBinary(br *bytes.Reader) (Record, error) {
	flags, err := br.ReadByte()
	if err != nil {
		return Record{}, io.ErrUnexpectedEOF
	}
	var rec Record
	if flags&flagSeqPC != 0 {
		rec.PC = r.lastPC + isa.InstrBytes
	} else {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return Record{}, io.ErrUnexpectedEOF
		}
		rec.PC = isa.Addr(int64(r.lastPC) + d)
	}
	rec.Taken = flags&flagTaken != 0
	if flags&flagHasTgt != 0 {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return Record{}, io.ErrUnexpectedEOF
		}
		rec.Target = isa.Addr(int64(rec.PC) + d)
	} else {
		rec.Target = rec.PC + isa.InstrBytes
	}
	if flags&flagHasData != 0 {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return Record{}, io.ErrUnexpectedEOF
		}
		rec.DataAddr = isa.Addr(v)
	}
	r.lastPC = rec.PC
	return rec, nil
}

// RecordN2 captures n instructions of a workload execution as a v2
// trace.
func RecordN2(w io.Writer, p workload.Profile, salt uint64, n uint64, enc Encoding) error {
	prog, err := workload.Generate(p)
	if err != nil {
		return err
	}
	exec := workload.NewExecutor(prog, salt)
	tw, err := NewWriter2(w, prog, salt, enc)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		d := exec.Next()
		if err := tw.Write(Record{
			PC:       d.PC(),
			Target:   d.Target,
			DataAddr: d.DataAddr,
			Taken:    d.Taken,
		}); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ConvertV1 rewrites a profile-bound v1 trace as a self-contained v2
// trace: the image is regenerated from the named profile (which must be
// known to this build — the reason v2 exists) and embedded.
func ConvertV1(dst io.Writer, src io.Reader, enc Encoding) error {
	r, err := NewReader(src)
	if err != nil {
		return err
	}
	p, ok := workload.ByName(r.Workload())
	if !ok {
		return fmt.Errorf("trace: v1 trace names unknown profile %q; cannot reconstruct its image", r.Workload())
	}
	if p.Seed != r.Seed() {
		return fmt.Errorf("trace: v1 trace %s seed %#x does not match this build's profile seed %#x",
			r.Workload(), r.Seed(), p.Seed)
	}
	prog, err := workload.Generate(p)
	if err != nil {
		return err
	}
	w, err := NewWriter2(dst, prog, r.Salt(), enc)
	if err != nil {
		return err
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("trace: v1 read at record %d: %w", r.Count(), err)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}
