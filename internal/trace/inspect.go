package trace

import (
	"fmt"
	"io"
	"text/tabwriter"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// InspectReport writes the corpus-triage summary of an analyzed trace:
// instruction count, branch mix by kind, taken rate, code footprint,
// and the top-N hot fetch blocks with their share of dynamic
// instructions. The format is stable enough for table-driven tests to
// pin (cmd/trace inspect wraps it unchanged).
func InspectReport(w io.Writer, name string, prog *workload.Program, st *Stats, top int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\t%s\n", name)
	fmt.Fprintf(tw, "instructions\t%d\n", st.Instructions)
	fmt.Fprintf(tw, "branches\t%d (%.1f%% of instrs)\n",
		st.Branches, pct(st.Branches, st.Instructions))
	for k := isa.BranchCond; k < isa.BranchKind(isa.NumBranchKinds); k++ {
		if st.Kinds[k] == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d (%.1f%% of branches)\n",
			k, st.Kinds[k], pct(st.Kinds[k], st.Branches))
	}
	fmt.Fprintf(tw, "taken rate\t%.3f of branches, %.3f of instrs\n",
		st.BranchTakenRate(), st.TakenRatio())
	fmt.Fprintf(tw, "loads\t%d (%.1f%%)\n", st.Loads, pct(st.Loads, st.Instructions))
	fmt.Fprintf(tw, "stores\t%d (%.1f%%)\n", st.Stores, pct(st.Stores, st.Instructions))
	fmt.Fprintf(tw, "footprint\t%d KiB (%d lines, %d fetch blocks)\n",
		st.FootprintBytes()/1024, st.UniqueLines, st.UniqueBlocks)
	if top > 0 {
		hot := st.HotBlocks(top)
		fmt.Fprintf(tw, "hot blocks\ttop %d of %d\n", len(hot), st.UniqueBlocks)
		for i, h := range hot {
			fmt.Fprintf(tw, "  #%d\t%s\t%d instrs (%.2f%%)\n",
				i+1, h.Block, h.Count, pct(h.Count, st.Instructions))
		}
	}
	return tw.Flush()
}

func pct(n, of uint64) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}
