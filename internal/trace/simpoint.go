package trace

import (
	"fmt"
	"io"
	"math"
)

// The paper's methodology simulates 10 application-specific regions
// selected with SimPoint. This file implements the core of that
// technique: split the trace into fixed-size intervals, summarize each
// interval by its basic-block vector (BBV — execution frequency per
// basic block, hashed into a fixed dimension), cluster the vectors with
// k-medoids, and pick each cluster's medoid interval as a
// representative region weighted by cluster size.

// BBVDim is the hashed basic-block-vector dimensionality.
const BBVDim = 64

// Interval summarizes one fixed-size slice of a trace.
type Interval struct {
	Index uint64 // interval number
	Start uint64 // first instruction index
	BBV   [BBVDim]float64
}

// Simpoint is one selected representative region.
type Simpoint struct {
	Interval uint64  // interval index of the medoid
	Start    uint64  // first instruction of the region
	Weight   float64 // fraction of intervals its cluster covers
}

// Intervals scans a trace and produces its basic-block vectors over
// intervals of intervalLen instructions. Basic blocks are identified by
// the PC following a taken control transfer (the block leader) and
// hashed into BBVDim buckets; vectors are L1-normalized.
func Intervals(r RecordReader, intervalLen uint64) ([]Interval, error) {
	if intervalLen == 0 {
		return nil, fmt.Errorf("trace: interval length must be positive")
	}
	var out []Interval
	var cur Interval
	var n uint64
	leader := uint64(0) // hash bucket of current block leader
	newBlock := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if newBlock {
			leader = uint64(rec.PC) >> 2 * 0x9e3779b97f4a7c15 >> 32 % BBVDim
			newBlock = false
		}
		cur.BBV[leader]++
		if rec.Taken {
			newBlock = true
		}
		n++
		if n%intervalLen == 0 {
			normalize(&cur.BBV)
			cur.Index = uint64(len(out))
			cur.Start = n - intervalLen
			out = append(out, cur)
			cur = Interval{}
		}
	}
	return out, nil
}

func normalize(v *[BBVDim]float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// manhattan returns the L1 distance between two BBVs (SimPoint's
// metric).
func manhattan(a, b *[BBVDim]float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// Select clusters the intervals into k groups with k-medoids (PAM-lite:
// deterministic farthest-first seeding followed by alternating
// assignment and medoid update) and returns one simpoint per non-empty
// cluster, ordered by weight descending.
func Select(intervals []Interval, k int) []Simpoint {
	if len(intervals) == 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > len(intervals) {
		k = len(intervals)
	}

	// Farthest-first seeding from interval 0.
	medoids := []int{0}
	for len(medoids) < k {
		far, farDist := -1, -1.0
		for i := range intervals {
			d := math.Inf(1)
			for _, m := range medoids {
				if dd := manhattan(&intervals[i].BBV, &intervals[m].BBV); dd < d {
					d = dd
				}
			}
			if d > farDist {
				farDist, far = d, i
			}
		}
		medoids = append(medoids, far)
	}

	assign := make([]int, len(intervals))
	for iter := 0; iter < 20; iter++ {
		// Assignment.
		changed := false
		for i := range intervals {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				if d := manhattan(&intervals[i].BBV, &intervals[m].BBV); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Medoid update: the member minimizing intra-cluster distance.
		for c := range medoids {
			bestM, bestCost := medoids[c], math.Inf(1)
			for i := range intervals {
				if assign[i] != c {
					continue
				}
				cost := 0.0
				for j := range intervals {
					if assign[j] == c {
						cost += manhattan(&intervals[i].BBV, &intervals[j].BBV)
					}
				}
				if cost < bestCost {
					bestCost, bestM = cost, i
				}
			}
			medoids[c] = bestM
		}
		if !changed && iter > 0 {
			break
		}
	}

	counts := make([]int, k)
	for i := range intervals {
		counts[assign[i]]++
	}
	var out []Simpoint
	for c, m := range medoids {
		if counts[c] == 0 {
			continue
		}
		out = append(out, Simpoint{
			Interval: intervals[m].Index,
			Start:    intervals[m].Start,
			Weight:   float64(counts[c]) / float64(len(intervals)),
		})
	}
	// Order by weight descending (stable across runs: ties by interval).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Simpoint) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return a.Interval < b.Interval
}
