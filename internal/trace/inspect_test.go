package trace

import (
	"io"
	"strings"
	"testing"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// sliceReader serves a fixed record slice through the RecordReader
// protocol.
type sliceReader struct {
	recs []Record
	i    int
}

func (r *sliceReader) Read() (Record, error) {
	if r.i >= len(r.recs) {
		return Record{}, io.EOF
	}
	rec := r.recs[r.i]
	r.i++
	return rec, nil
}

// fixtureProgram hand-builds a 16-instruction image (two fetch blocks,
// one cache line): an ALU/load/store/branch block and an all-ALU tail.
func fixtureProgram(t *testing.T) *workload.Program {
	t.Helper()
	classes := []struct {
		c isa.Class
		b isa.BranchKind
	}{
		{isa.ClassALU, isa.BranchNone},
		{isa.ClassLoad, isa.BranchNone},
		{isa.ClassStore, isa.BranchNone},
		{isa.ClassBranch, isa.BranchCond},
		{isa.ClassALU, isa.BranchNone},
		{isa.ClassBranch, isa.BranchUncond},
		{isa.ClassNop, isa.BranchNone},
		{isa.ClassALU, isa.BranchNone},
	}
	code := make([]isa.StaticInstr, 16)
	for i := range code {
		pc := workload.ImageBase + isa.Addr(i*isa.InstrBytes)
		code[i] = isa.StaticInstr{PC: pc, Class: isa.ClassALU, FallThrough: pc + isa.InstrBytes}
		if i < len(classes) {
			code[i].Class = classes[i].c
			code[i].Branch = classes[i].b
			if classes[i].b != isa.BranchNone {
				code[i].Target = workload.ImageBase
			}
			if classes[i].c == isa.ClassLoad || classes[i].c == isa.ClassStore {
				code[i].DataAddr = 0x10000
			}
		}
	}
	prog, err := workload.NewProgramFromImage(workload.Profile{Name: "fixture"}, workload.ImageBase, code)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestInspectReport(t *testing.T) {
	base := workload.ImageBase
	at := func(i int) isa.Addr { return base + isa.Addr(i*isa.InstrBytes) }
	// One loop iteration taken, one falling through to the second
	// block: 12 instructions, 3 branches (2 cond + 1 jump), 2 taken.
	loop := []Record{
		{PC: at(0), Target: at(1)},
		{PC: at(1), Target: at(2), DataAddr: 0x10000},
		{PC: at(2), Target: at(3), DataAddr: 0x10000},
		{PC: at(3), Target: at(0), Taken: true},
		{PC: at(0), Target: at(1)},
		{PC: at(1), Target: at(2), DataAddr: 0x10000},
		{PC: at(2), Target: at(3), DataAddr: 0x10000},
		{PC: at(3), Target: at(4)},
		{PC: at(4), Target: at(5)},
		{PC: at(5), Target: at(8), Taken: true},
		{PC: at(8), Target: at(9)},
		{PC: at(9), Target: at(10)},
	}
	for _, tc := range []struct {
		name string
		recs []Record
		top  int
		want []string
	}{
		{
			name: "loop",
			recs: loop,
			top:  2,
			want: []string{
				"workload      fixture",
				"instructions  12",
				"branches      3 (25.0% of instrs)",
				"cond        2 (66.7% of branches)",
				"jump        1 (33.3% of branches)",
				"taken rate    0.667 of branches, 0.167 of instrs",
				"loads         2 (16.7%)",
				"stores        2 (16.7%)",
				"footprint     0 KiB (1 lines, 2 fetch blocks)",
				"hot blocks    top 2 of 2",
				"#1          0x400000  10 instrs (83.33%)",
				"#2          0x400020  2 instrs (16.67%)",
			},
		},
		{
			name: "no-hot-blocks-section",
			recs: loop[:4],
			top:  0,
			want: []string{
				"instructions  4",
				"branches      1 (25.0% of instrs)",
				"taken rate    1.000 of branches, 0.250 of instrs",
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := fixtureProgram(t)
			st, err := Analyze(prog, &sliceReader{recs: tc.recs})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := InspectReport(&b, "fixture", prog, &st, tc.top); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("report missing %q; got:\n%s", w, out)
				}
			}
			if tc.top == 0 && strings.Contains(out, "hot blocks") {
				t.Errorf("top=0 report still lists hot blocks:\n%s", out)
			}
		})
	}
}

func TestHotBlocksOrdering(t *testing.T) {
	s := Stats{blockCounts: map[isa.Addr]uint64{
		0x400040: 5, 0x400000: 9, 0x400020: 5, 0x400060: 1,
	}}
	got := s.HotBlocks(3)
	want := []BlockCount{{0x400000, 9}, {0x400020, 5}, {0x400040, 5}}
	if len(got) != len(want) {
		t.Fatalf("HotBlocks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HotBlocks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
