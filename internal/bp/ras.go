package bp

import "udpsim/internal/isa"

// RAS is the return address stack consulted by the frontend for return
// targets. Like global history, it is speculative: the frontend pushes
// and pops at predict time and checkpoints (top, content hash) per
// branch so a recovery can rewind. The model checkpoints the whole
// top-of-stack pointer and relies on the circular buffer retaining
// overwritten entries, the standard lightweight hardware recovery.
type RAS struct {
	stack []isa.Addr
	top   int // index of next free slot

	Pushes     uint64
	Pops       uint64
	Underflows uint64
}

// NewRAS builds a return-address stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("bp: RAS needs at least one entry")
	}
	return &RAS{stack: make([]isa.Addr, n)}
}

// Push records a return address at predict time of a call.
func (r *RAS) Push(ret isa.Addr) {
	r.stack[r.top%len(r.stack)] = ret
	r.top++
	r.Pushes++
}

// Pop predicts the target of a return. An empty stack returns 0 (the
// frontend then treats the return as a BTB-style unknown target).
func (r *RAS) Pop() isa.Addr {
	if r.top == 0 {
		r.Underflows++
		return 0
	}
	r.top--
	r.Pops++
	return r.stack[r.top%len(r.stack)]
}

// Peek returns the would-be Pop value without modifying the stack.
func (r *RAS) Peek() isa.Addr {
	if r.top == 0 {
		return 0
	}
	return r.stack[(r.top-1)%len(r.stack)]
}

// Depth returns the current logical depth (may exceed capacity after
// wrap, in which case older entries have been overwritten).
func (r *RAS) Depth() int { return r.top }

// Snapshot captures the stack pointer for recovery.
func (r *RAS) Snapshot() int { return r.top }

// Restore rewinds the stack pointer. Entries overwritten since the
// snapshot are unrecoverable, matching hardware behaviour on deep
// wrong-path call chains.
func (r *RAS) Restore(top int) { r.top = top }
