package bp

import (
	"testing"

	"udpsim/internal/isa"
)

func TestRASPushPop(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x1000)
	r.Push(0x2000)
	if r.Peek() != 0x2000 {
		t.Errorf("Peek = %v", r.Peek())
	}
	if got := r.Pop(); got != 0x2000 {
		t.Errorf("Pop = %v", got)
	}
	if got := r.Pop(); got != 0x1000 {
		t.Errorf("Pop = %v", got)
	}
	if r.Depth() != 0 {
		t.Errorf("Depth = %d", r.Depth())
	}
}

func TestRASUnderflow(t *testing.T) {
	r := NewRAS(4)
	if got := r.Pop(); got != 0 {
		t.Errorf("underflow Pop = %v", got)
	}
	if r.Underflows != 1 {
		t.Errorf("Underflows = %d", r.Underflows)
	}
	if r.Peek() != 0 {
		t.Errorf("empty Peek = %v", r.Peek())
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(16)
	r.Push(0x1000)
	snap := r.Snapshot()
	// Speculative wrong-path calls/returns.
	r.Push(0x2000)
	r.Push(0x3000)
	r.Pop()
	r.Restore(snap)
	if got := r.Pop(); got != 0x1000 {
		t.Errorf("after restore Pop = %v", got)
	}
}

func TestRASWrapOverwritesOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(0x1000)
	r.Push(0x2000)
	r.Push(0x3000) // overwrites 0x1000's slot
	if got := r.Pop(); got != 0x3000 {
		t.Errorf("Pop = %v", got)
	}
	if got := r.Pop(); got != 0x2000 {
		t.Errorf("Pop = %v", got)
	}
	// The third pop returns the overwritten slot's current content
	// (0x3000's slot), modelling deep-call-chain corruption, not a
	// correct value.
	got := r.Pop()
	if got != 0x3000 {
		t.Errorf("wrapped Pop = %v (expected stale overwrite)", got)
	}
}

func TestRASDeepCallChain(t *testing.T) {
	r := NewRAS(32)
	var addrs []isa.Addr
	for i := 0; i < 20; i++ {
		a := isa.Addr(0x400000 + i*0x100)
		addrs = append(addrs, a)
		r.Push(a)
	}
	for i := 19; i >= 0; i-- {
		if got := r.Pop(); got != addrs[i] {
			t.Fatalf("Pop %d = %v, want %v", i, got, addrs[i])
		}
	}
}

func TestRASPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewRAS(0)
}
