package bp

import "testing"

// TestSCCorrectsWeakProvider: a branch whose direction correlates with
// history in a way the provider missed gets corrected by the
// statistical corrector after training.
func TestSCTrainsTowardOutcome(t *testing.T) {
	sc := newStatCorrector()
	var h HistState
	const pc = 0x401000

	// Initially the vote follows the provider bias.
	var p Prediction
	sum := sc.sum(pc, &h, false, &p)
	if sum >= 0 {
		t.Fatalf("initial vote %d should follow the not-taken provider bias", sum)
	}

	// Train taken outcomes against the same context until the vote
	// flips despite the provider's not-taken bias.
	for i := 0; i < 64; i++ {
		var q Prediction
		q.scSum = sc.sum(pc, &h, false, &q)
		sc.train(true, &q)
	}
	var q Prediction
	sum = sc.sum(pc, &h, false, &q)
	if sum < 0 {
		t.Errorf("vote %d never flipped after consistent taken outcomes", sum)
	}
}

// TestSCThresholdStopsTraining: once the vote is strong and correct,
// counters stop moving (GEHL threshold update).
func TestSCThresholdStopsTraining(t *testing.T) {
	sc := newStatCorrector()
	var h HistState
	const pc = 0x402000
	for i := 0; i < 200; i++ {
		var q Prediction
		q.scSum = sc.sum(pc, &h, true, &q)
		sc.train(true, &q)
	}
	var q Prediction
	before := sc.sum(pc, &h, true, &q)
	q.scSum = before
	sc.train(true, &q)
	var q2 Prediction
	after := sc.sum(pc, &h, true, &q2)
	if before != after {
		t.Errorf("saturated+correct vote kept training: %d → %d", before, after)
	}
}

// TestSCContextSensitive: different histories index different counters.
func TestSCContextSensitive(t *testing.T) {
	sc := newStatCorrector()
	const pc = 0x403000
	hA := HistState{H: [2]uint64{0xAAAA, 0}}
	hB := HistState{H: [2]uint64{0x5555, 0}}
	for i := 0; i < 64; i++ {
		var q Prediction
		q.scSum = sc.sum(pc, &hA, false, &q)
		sc.train(true, &q)
	}
	var qa, qb Prediction
	sumA := sc.sum(pc, &hA, false, &qa)
	sumB := sc.sum(pc, &hB, false, &qb)
	if sumA <= sumB {
		t.Errorf("trained context (%d) not above untrained (%d)", sumA, sumB)
	}
}

func TestSCStorage(t *testing.T) {
	if newStatCorrector().storageBits() == 0 {
		t.Error("zero storage")
	}
}
