package bp

import (
	"testing"

	"udpsim/internal/isa"
)

// driveLoop feeds the loop predictor n complete loop executions with
// the given trip count (trip-1 taken back-edges, one not-taken exit),
// keeping speculative and architectural state in lockstep.
func driveLoop(lp *loopPredictor, pc isa.Addr, trips, n int) {
	for r := 0; r < n; r++ {
		for i := 0; i < trips; i++ {
			taken := i < trips-1
			pred, _ := lp.predict(pc)
			lp.specAdvance(pc, taken)
			lp.train(pc, taken, pred)
		}
	}
}

func TestLoopPredictorLocksOn(t *testing.T) {
	lp := newLoopPredictor(16)
	const pc = 0x401000
	const trips = 9
	driveLoop(lp, pc, trips, 8)
	// Now confident: simulate one more loop execution and check every
	// prediction.
	for i := 0; i < trips; i++ {
		want := i < trips-1
		got, hit := lp.predict(pc)
		if !hit {
			t.Fatalf("iteration %d: no hit after training", i)
		}
		if got != want {
			t.Fatalf("iteration %d: predicted %v, want %v", i, got, want)
		}
		lp.specAdvance(pc, want)
		lp.train(pc, want, got)
	}
}

func TestLoopPredictorRelearnsTripChange(t *testing.T) {
	lp := newLoopPredictor(16)
	const pc = 0x402000
	driveLoop(lp, pc, 6, 8)
	if _, hit := lp.predict(pc); !hit {
		t.Fatal("not confident after stable trips")
	}
	// Trip count changes: confidence must drop (no hit) until
	// re-established.
	driveLoop(lp, pc, 11, 1)
	if _, hit := lp.predict(pc); hit {
		t.Error("still confident right after trip change")
	}
	driveLoop(lp, pc, 11, 8)
	if _, hit := lp.predict(pc); !hit {
		t.Error("never relearned the new trip count")
	}
}

func TestLoopPredictorRestoreResyncs(t *testing.T) {
	lp := newLoopPredictor(16)
	const pc = 0x403000
	const trips = 7
	driveLoop(lp, pc, trips, 8)
	// Take two speculative (wrong-path) advances without training, then
	// restore: the speculative iterator must equal the architectural
	// one again.
	i, tag := lp.index(pc)
	_ = tag
	before := lp.entries[i].specIter
	lp.specAdvance(pc, true)
	lp.specAdvance(pc, true)
	if lp.entries[i].specIter == before {
		t.Fatal("speculative iterator did not advance")
	}
	lp.restore()
	if lp.entries[i].specIter != lp.entries[i].archIter {
		t.Error("restore did not resync speculative state")
	}
}

func TestLoopPredictorNeverTakenNotLoop(t *testing.T) {
	lp := newLoopPredictor(16)
	const pc = 0x404000
	for i := 0; i < 50; i++ {
		pred, _ := lp.predict(pc)
		lp.specAdvance(pc, false)
		lp.train(pc, false, pred)
	}
	if _, hit := lp.predict(pc); hit {
		t.Error("never-taken branch classified as a loop")
	}
}

func TestLoopPredictorStorage(t *testing.T) {
	lp := newLoopPredictor(64)
	if lp.storageBits() == 0 {
		t.Error("zero storage")
	}
}
