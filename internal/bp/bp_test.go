package bp

import (
	"testing"
	"testing/quick"

	"udpsim/internal/isa"
)

// trainLoop drives a predictor through n instances of a branch at pc
// with outcomes from gen, following the speculative-update contract,
// and returns the accuracy.
func trainLoop(p DirectionPredictor, pc isa.Addr, n int, gen func(i int) bool) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		actual := gen(i)
		pred := p.Predict(pc)
		p.SpecUpdate(pc, actual) // resolve immediately (no wrong path)
		if pred.Taken == actual {
			correct++
		}
		p.Train(pc, actual, pred)
	}
	return float64(correct) / float64(n)
}

func predictors() map[string]func() DirectionPredictor {
	return map[string]func() DirectionPredictor{
		"tage":    func() DirectionPredictor { return NewTage(DefaultTageConfig()) },
		"gshare":  func() DirectionPredictor { return NewGshare(12) },
		"bimodal": func() DirectionPredictor { return NewBimodal(12) },
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	for name, mk := range predictors() {
		acc := trainLoop(mk(), 0x401000, 500, func(int) bool { return true })
		if acc < 0.95 {
			t.Errorf("%s: always-taken accuracy %.2f", name, acc)
		}
	}
}

func TestBiasedLearned(t *testing.T) {
	for name, mk := range predictors() {
		// Taken except every 16th instance.
		acc := trainLoop(mk(), 0x402000, 1000, func(i int) bool { return i%16 != 0 })
		if acc < 0.9 {
			t.Errorf("%s: biased accuracy %.2f", name, acc)
		}
	}
}

func TestTageLearnsPeriodicPattern(t *testing.T) {
	// Period-7 patterns defeat bimodal but are trivial for global
	// history: TAGE must clearly beat it.
	pattern := func(i int) bool { return i%7 == 2 || i%7 == 5 }
	tageAcc := trainLoop(NewTage(DefaultTageConfig()), 0x403000, 4000, pattern)
	bimAcc := trainLoop(NewBimodal(12), 0x403000, 4000, pattern)
	if tageAcc < 0.9 {
		t.Errorf("TAGE periodic accuracy %.3f", tageAcc)
	}
	if tageAcc < bimAcc+0.2 {
		t.Errorf("TAGE (%.3f) not clearly above bimodal (%.3f) on periodic pattern", tageAcc, bimAcc)
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	// A loop with a fixed trip count of 21: taken 20 times, then one
	// not-taken. Counter predictors miss the exit; the loop predictor
	// should nail it after a few trips.
	const trip = 21
	p := NewTage(DefaultTageConfig())
	gen := func(i int) bool { return i%trip != trip-1 }
	// Warm.
	trainLoop(p, 0x404000, trip*40, gen)
	// Measure exits only.
	exits, hits := 0, 0
	for i := 0; i < trip*20; i++ {
		actual := gen(i)
		pred := p.Predict(0x404000)
		p.SpecUpdate(0x404000, actual)
		if !actual {
			exits++
			if !pred.Taken {
				hits++
			}
		}
		p.Train(0x404000, actual, pred)
	}
	if exits == 0 {
		t.Fatal("no exits measured")
	}
	if float64(hits)/float64(exits) < 0.9 {
		t.Errorf("loop exits predicted %d/%d", hits, exits)
	}
}

func TestConfidenceTracksAccuracy(t *testing.T) {
	// A random branch should mostly produce Low/Medium confidence; a
	// strongly biased one mostly High.
	p := NewTage(DefaultTageConfig())
	rng := uint64(42)
	lowish, n := 0, 3000
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		actual := rng>>62&1 == 0
		pred := p.Predict(0x405000)
		p.SpecUpdate(0x405000, actual)
		if pred.Conf != High {
			lowish++
		}
		p.Train(0x405000, actual, pred)
	}
	randomNotHigh := float64(lowish) / float64(n)

	p2 := NewTage(DefaultTageConfig())
	high := 0
	for i := 0; i < n; i++ {
		pred := p2.Predict(0x406000)
		p2.SpecUpdate(0x406000, true)
		if pred.Conf == High {
			high++
		}
		p2.Train(0x406000, true, pred)
	}
	biasedHigh := float64(high) / float64(n)

	if biasedHigh < 0.8 {
		t.Errorf("always-taken branch only %.2f High confidence", biasedHigh)
	}
	if randomNotHigh < 0.4 {
		t.Errorf("random branch only %.2f non-High confidence", randomNotHigh)
	}
}

func TestUDPIncrements(t *testing.T) {
	if Low.UDPIncrement() != 2 || Medium.UDPIncrement() != 1 || High.UDPIncrement() != 0 {
		t.Error("UDP increments do not match the paper (2/1/0)")
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	p := NewTage(DefaultTageConfig())
	// Build some history.
	for i := 0; i < 100; i++ {
		pred := p.Predict(isa.Addr(0x400000 + i*4))
		p.SpecUpdate(isa.Addr(0x400000+i*4), i%3 == 0)
		_ = pred
	}
	snap := p.Snapshot()
	before := p.Predict(0x409000)

	// Pollute speculative history (wrong path).
	for i := 0; i < 50; i++ {
		p.SpecUpdate(isa.Addr(0x500000+i*4), i%2 == 0)
	}
	p.Restore(snap)
	after := p.Predict(0x409000)

	if before.Taken != after.Taken || before.Conf != after.Conf {
		t.Errorf("restore did not reproduce prediction: %+v vs %+v",
			before.Taken, after.Taken)
	}
}

// Property: Snapshot/Restore is an exact inverse for any wrong-path
// update sequence.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seedPath []bool, wrongPath []bool) bool {
		p := NewTage(DefaultTageConfig())
		for i, taken := range seedPath {
			p.SpecUpdate(isa.Addr(0x400000+i*4), taken)
		}
		snap := p.Snapshot()
		for i, taken := range wrongPath {
			p.SpecUpdate(isa.Addr(0x600000+i*4), taken)
		}
		p.Restore(snap)
		return p.Snapshot() == snap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTageStorageBits(t *testing.T) {
	p := NewTage(DefaultTageConfig())
	bits := p.StorageBits()
	// A 64KB-class predictor: sanity-band the budget.
	if bits < 100_000 || bits > 2_000_000 {
		t.Errorf("storage %d bits implausible", bits)
	}
}

func TestTageConfigValidation(t *testing.T) {
	bad := []TageConfig{
		{TableBits: 10, BimodalBits: 10, HistLengths: nil, TagBits: 8},
		{TableBits: 10, BimodalBits: 10, HistLengths: []uint{4, 300}, TagBits: 8},
		{TableBits: 10, BimodalBits: 10, HistLengths: make([]uint, 20), TagBits: 8},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			NewTage(cfg)
		}()
	}
}

func TestPredictorNames(t *testing.T) {
	for name, mk := range predictors() {
		if mk().Name() == "" {
			t.Errorf("%s has empty name", name)
		}
	}
}

func TestConfidenceString(t *testing.T) {
	for _, c := range []Confidence{Low, Medium, High, Confidence(9)} {
		if c.String() == "" {
			t.Errorf("empty string for %d", c)
		}
	}
}
