// Package bp implements the conditional-branch direction predictors of
// the simulated machine. The primary predictor is a TAGE-SC-L-style
// design (tagged geometric-history tables, a loop predictor, and a
// statistical corrector) that exposes the High/Medium/Low prediction
// confidence UDP consumes (Section IV-B of the paper: the off-path
// confidence counter is incremented by 2/1/0 for low/medium/high
// confidence predictions).
//
// Speculative history: the decoupled frontend predicts far ahead of
// resolution, so the global history it hashes with is speculative. The
// frontend snapshots history state per predicted branch and restores it
// on recovery, mirroring hardware checkpointing.
package bp

import "udpsim/internal/isa"

// Confidence is the predictor's self-assessed reliability for one
// prediction.
type Confidence uint8

// Confidence levels.
const (
	Low Confidence = iota
	Medium
	High
)

func (c Confidence) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return "conf(?)"
	}
}

// UDPIncrement returns the amount UDP adds to its off-path confidence
// counter for a prediction of this confidence (paper: low=2, medium=1,
// high=0).
func (c Confidence) UDPIncrement() int {
	switch c {
	case Low:
		return 2
	case Medium:
		return 1
	default:
		return 0
	}
}

// Prediction is the outcome of a direction lookup.
type Prediction struct {
	Taken bool
	Conf  Confidence
	// provider bookkeeping for training (opaque to callers).
	provider  int  // table index, -1 = bimodal
	altTaken  bool // alternate prediction
	provTaken bool // provider component's own prediction (pre-SC/loop)
	provCtr   int8
	loopHit   bool // loop predictor provided the final direction
	scSum     int32
	scIdxs    [scTables]uint32
	tags      [maxTables]uint16
	idxs      [maxTables]uint32
	bimIdx    uint32
}

// HistState is a snapshot of speculative global history, cheap enough to
// store per in-flight branch.
type HistState struct {
	H [2]uint64 // up to 128 bits of direction history
	// PathHist mixes low target bits of taken branches.
	PathHist uint64
}

// DirectionPredictor is the interface the frontend drives.
//
// Predict must be followed by SpecUpdate for the same branch (in
// prediction order); Train is called in program order at resolution.
// Restore rewinds speculative state to a snapshot taken earlier.
type DirectionPredictor interface {
	Predict(pc isa.Addr) Prediction
	// SpecUpdate advances speculative history with the predicted
	// direction of the branch at pc.
	SpecUpdate(pc isa.Addr, taken bool)
	// Snapshot captures speculative history state.
	Snapshot() HistState
	// Restore rewinds speculative history to s and re-synchronizes any
	// internal speculative structures (e.g. loop iteration counters).
	Restore(s HistState)
	// Train updates tables with the resolved outcome. pred must be the
	// Prediction returned by Predict for this branch instance.
	Train(pc isa.Addr, taken bool, pred Prediction)
	// Name identifies the predictor in reports.
	Name() string
}
