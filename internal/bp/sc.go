package bp

import "udpsim/internal/isa"

// scTables is the number of statistical-corrector component tables.
const scTables = 4

// statCorrector is a small GEHL-style statistical corrector: a few
// tables of signed counters indexed by pc hashed with different history
// slices, summed with the provider's direction as a bias. It flips weak
// TAGE predictions that statistically correlate the other way — the "SC"
// stage of TAGE-SC-L.
type statCorrector struct {
	tables  [scTables][]int8
	lengths [scTables]uint
	bits    uint
}

func newStatCorrector() *statCorrector {
	sc := &statCorrector{
		lengths: [scTables]uint{0, 5, 14, 32},
		bits:    10,
	}
	for i := range sc.tables {
		sc.tables[i] = make([]int8, 1<<sc.bits)
	}
	return sc
}

func (sc *statCorrector) index(pc isa.Addr, h *HistState, t int) uint32 {
	var hb uint64
	if l := sc.lengths[t]; l > 0 {
		hb = h.H[0] & (1<<l - 1)
	}
	x := uint64(pc)>>2 ^ hb*0x9e3779b97f4a7c15 ^ uint64(t)<<11
	x ^= x >> 21
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 31
	return uint32(x) & (1<<sc.bits - 1)
}

// sum computes the corrector's signed vote (>= 0 means taken), recording
// the consulted indices into p so train touches the same counters. The
// provider's direction contributes a centering bias so the SC only
// overrides with real evidence.
func (sc *statCorrector) sum(pc isa.Addr, h *HistState, provTaken bool, p *Prediction) int32 {
	var s int32
	for t := range sc.tables {
		i := sc.index(pc, h, t)
		p.scIdxs[t] = i
		s += 2*int32(sc.tables[t][i]) + 1
	}
	if provTaken {
		s += 8
	} else {
		s -= 8
	}
	return s
}

// train updates counters toward the outcome when the vote was weak or
// wrong (threshold-based update, as in GEHL), using the indices recorded
// at predict time.
func (sc *statCorrector) train(taken bool, p *Prediction) {
	const threshold = 16
	wrong := (p.scSum >= 0) != taken
	weak := p.scSum < threshold && p.scSum > -threshold
	if !wrong && !weak {
		return
	}
	for t := range sc.tables {
		c := &sc.tables[t][p.scIdxs[t]]
		if taken {
			*c = satInc8(*c, 31)
		} else {
			*c = satDec8(*c, -32)
		}
	}
}

func (sc *statCorrector) storageBits() uint64 {
	return uint64(scTables) * uint64(1<<sc.bits) * 6
}
