package bp

import "udpsim/internal/isa"

// maxTables bounds the number of tagged components a TAGE instance may
// configure (sized into Prediction for allocation-free lookups).
const maxTables = 8

// TageConfig sizes the TAGE-SC-L predictor.
type TageConfig struct {
	// TableBits is log2(entries) of each tagged table.
	TableBits uint
	// BimodalBits is log2(entries) of the base bimodal table.
	BimodalBits uint
	// HistLengths gives the geometric history lengths, shortest first.
	// Length must be <= 128 and the slice at most maxTables long.
	HistLengths []uint
	// TagBits is the partial-tag width of tagged entries.
	TagBits uint
	// UseSC enables the statistical corrector stage.
	UseSC bool
	// UseLoop enables the loop predictor stage.
	UseLoop bool
}

// DefaultTageConfig returns a 64KB-class TAGE-SC-L configuration
// comparable to the paper's Table II predictor.
func DefaultTageConfig() TageConfig {
	return TageConfig{
		TableBits:   11,
		BimodalBits: 13,
		HistLengths: []uint{4, 8, 15, 27, 44, 76, 128},
		TagBits:     11,
		UseSC:       true,
		UseLoop:     true,
	}
}

type tageEntry struct {
	tag uint16
	ctr int8  // 3-bit signed: -4..3; taken iff ctr >= 0
	u   uint8 // 2-bit usefulness
}

// Tage is a TAGE-SC-L-style conditional branch predictor.
type Tage struct {
	cfg        TageConfig
	tables     [][]tageEntry
	bimodal    []int8 // 2-bit: -2..1; taken iff >= 0
	hist       HistState
	useAltOnNA int8 // 4-bit signed counter
	tick       uint32
	sc         *statCorrector
	loop       *loopPredictor
	rng        uint64

	// Stats
	Lookups      uint64
	ProviderHits [maxTables + 1]uint64 // index len(tables) = bimodal
}

// NewTage builds a TAGE-SC-L predictor.
func NewTage(cfg TageConfig) *Tage {
	if len(cfg.HistLengths) == 0 || len(cfg.HistLengths) > maxTables {
		panic("bp: invalid TAGE history configuration")
	}
	for _, l := range cfg.HistLengths {
		if l == 0 || l > 128 {
			panic("bp: TAGE history length out of range")
		}
	}
	t := &Tage{
		cfg:     cfg,
		tables:  make([][]tageEntry, len(cfg.HistLengths)),
		bimodal: make([]int8, 1<<cfg.BimodalBits),
		rng:     0x2545f4914f6cdd1d,
	}
	// Initialize the base predictor weakly not-taken: cold branches are
	// statically more likely to fall through, and a taken-biased cold
	// predictor would spuriously redirect post-fetch-corrected fetch.
	for i := range t.bimodal {
		t.bimodal[i] = -1
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<cfg.TableBits)
	}
	if cfg.UseSC {
		t.sc = newStatCorrector()
	}
	if cfg.UseLoop {
		t.loop = newLoopPredictor(64)
	}
	return t
}

// Name implements DirectionPredictor.
func (t *Tage) Name() string { return "tage-sc-l" }

// histBits extracts the low n bits of speculative direction history
// folded into a compact word.
func (t *Tage) histBits(n uint) uint64 {
	if n <= 64 {
		if n == 64 {
			return t.hist.H[0]
		}
		return t.hist.H[0] & (1<<n - 1)
	}
	// fold the upper word in
	hi := t.hist.H[1] & (1<<(n-64) - 1)
	return t.hist.H[0] ^ (hi * 0x9e3779b97f4a7c15)
}

func (t *Tage) index(pc isa.Addr, table int) uint32 {
	h := t.histBits(t.cfg.HistLengths[table])
	x := uint64(pc)>>2 ^ h ^ h>>uint(t.cfg.TableBits) ^ t.hist.PathHist<<1 ^ uint64(table)*0x9e3779b9
	x ^= x >> 17
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return uint32(x) & (1<<t.cfg.TableBits - 1)
}

func (t *Tage) tag(pc isa.Addr, table int) uint16 {
	h := t.histBits(t.cfg.HistLengths[table])
	x := uint64(pc)>>2 ^ h*0x94d049bb133111eb ^ uint64(table)<<7
	x ^= x >> 23
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return uint16(x) & (1<<t.cfg.TagBits - 1)
}

func (t *Tage) bimIndex(pc isa.Addr) uint32 {
	return uint32(uint64(pc)>>2) & (1<<t.cfg.BimodalBits - 1)
}

// Predict implements DirectionPredictor.
func (t *Tage) Predict(pc isa.Addr) Prediction {
	t.Lookups++
	var p Prediction
	p.provider = -1
	p.bimIdx = t.bimIndex(pc)
	bimTaken := t.bimodal[p.bimIdx] >= 0

	alt := -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		p.idxs[i] = t.index(pc, i)
		p.tags[i] = t.tag(pc, i)
	}
	for i := len(t.tables) - 1; i >= 0; i-- {
		e := &t.tables[i][p.idxs[i]]
		if e.tag == p.tags[i] {
			if p.provider < 0 {
				p.provider = i
			} else if alt < 0 {
				alt = i
				break
			}
		}
	}

	p.altTaken = bimTaken
	if alt >= 0 {
		p.altTaken = t.tables[alt][p.idxs[alt]].ctr >= 0
	}

	if p.provider >= 0 {
		e := &t.tables[p.provider][p.idxs[p.provider]]
		p.provCtr = e.ctr
		p.provTaken = e.ctr >= 0
		// Newly allocated, weak entries: optionally trust the alternate.
		weakNew := e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if weakNew && t.useAltOnNA >= 0 {
			p.Taken = p.altTaken
		} else {
			p.Taken = p.provTaken
		}
		p.Conf = counterConfidence(e.ctr)
		t.ProviderHits[p.provider]++
	} else {
		p.provCtr = t.bimodal[p.bimIdx]
		p.provTaken = bimTaken
		p.Taken = bimTaken
		p.Conf = bimodalConfidence(t.bimodal[p.bimIdx])
		t.ProviderHits[len(t.tables)]++
	}

	// Statistical corrector: may flip weak predictions and degrade
	// confidence on disagreement.
	if t.sc != nil {
		sum := t.sc.sum(pc, &t.hist, p.Taken, &p)
		p.scSum = sum
		if disagrees(sum, p.Taken) && p.Conf != High {
			p.Taken = sum >= 0
			p.Conf = Low
		} else if disagrees(sum, p.Taken) {
			// SC disagrees with a high-confidence provider: keep the
			// provider's direction but lower confidence one notch.
			p.Conf = Medium
		}
	}

	// Loop predictor: overrides with High confidence when it has locked
	// onto a constant trip count.
	if t.loop != nil {
		if taken, hit := t.loop.predict(pc); hit {
			p.Taken = taken
			p.Conf = High
			p.loopHit = true
		}
	}
	return p
}

// counterConfidence maps a 3-bit counter to confidence: saturated or
// near-saturated counters are High, mid-range Medium, weak Low.
func counterConfidence(ctr int8) Confidence {
	mag := int(2*int32(ctr) + 1)
	if mag < 0 {
		mag = -mag
	}
	switch {
	case mag >= 5:
		return High
	case mag >= 3:
		return Medium
	default:
		return Low
	}
}

func bimodalConfidence(ctr int8) Confidence {
	// Saturated 2-bit states are trustworthy: a branch that never
	// mispredicts keeps the bimodal provider forever (no tagged
	// allocation without mispredictions), so saturation must map to
	// High or UDP's off-path estimator would accumulate spurious
	// confidence debt on perfectly predicted code.
	if ctr <= -2 || ctr >= 1 {
		return High
	}
	return Low
}

func disagrees(sum int32, taken bool) bool { return (sum >= 0) != taken }

// SpecUpdate implements DirectionPredictor.
func (t *Tage) SpecUpdate(pc isa.Addr, taken bool) {
	carry := t.hist.H[0] >> 63
	t.hist.H[0] = t.hist.H[0]<<1 | b2u(taken)
	t.hist.H[1] = t.hist.H[1]<<1 | carry
	if taken {
		t.hist.PathHist = t.hist.PathHist<<3 ^ uint64(pc)>>2
	}
	if t.loop != nil {
		t.loop.specAdvance(pc, taken)
	}
}

// Snapshot implements DirectionPredictor.
func (t *Tage) Snapshot() HistState { return t.hist }

// Restore implements DirectionPredictor.
func (t *Tage) Restore(s HistState) {
	t.hist = s
	if t.loop != nil {
		t.loop.restore()
	}
}

// Train implements DirectionPredictor. It must be called in program
// order with the Prediction returned by Predict.
func (t *Tage) Train(pc isa.Addr, taken bool, pred Prediction) {
	correct := pred.Taken == taken

	if t.loop != nil {
		t.loop.train(pc, taken, pred.loopHit)
	}
	if t.sc != nil {
		t.sc.train(taken, &pred)
	}

	// USE_ALT_ON_NA bookkeeping: when the provider was weak/new and alt
	// differed, learn which to trust.
	if pred.provider >= 0 {
		e := &t.tables[pred.provider][pred.idxs[pred.provider]]
		weakNew := e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if weakNew && pred.provTaken != pred.altTaken {
			if pred.altTaken == taken {
				t.useAltOnNA = satInc8(t.useAltOnNA, 7)
			} else {
				t.useAltOnNA = satDec8(t.useAltOnNA, -8)
			}
		}
		// Usefulness: provider correct and alt wrong.
		if pred.provTaken == taken && pred.altTaken != taken && e.u < 3 {
			e.u++
		}
		// Counter update.
		if taken {
			e.ctr = satInc8(e.ctr, 3)
		} else {
			e.ctr = satDec8(e.ctr, -4)
		}
	} else {
		b := &t.bimodal[pred.bimIdx]
		if taken {
			*b = satInc8(*b, 1)
		} else {
			*b = satDec8(*b, -2)
		}
	}

	// Allocation on misprediction: claim an entry in a longer-history
	// table.
	if !correct && pred.provider < len(t.tables)-1 {
		t.allocate(pc, taken, pred)
	}

	// Periodic graceful aging of usefulness bits.
	t.tick++
	if t.tick&(1<<18-1) == 0 {
		for i := range t.tables {
			for j := range t.tables[i] {
				if t.tables[i][j].u > 0 {
					t.tables[i][j].u--
				}
			}
		}
	}
}

func (t *Tage) allocate(pc isa.Addr, taken bool, pred Prediction) {
	start := pred.provider + 1
	// Randomize the first candidate table a little (as in TAGE) to
	// spread allocations.
	t.rng = t.rng*6364136223846793005 + 1442695040888963407
	if start < len(t.tables)-1 && t.rng>>62 == 0 {
		start++
	}
	for i := start; i < len(t.tables); i++ {
		e := &t.tables[i][pred.idxs[i]]
		if e.u == 0 {
			e.tag = pred.tags[i]
			e.u = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No free entry: decay usefulness along the way.
	for i := start; i < len(t.tables); i++ {
		e := &t.tables[i][pred.idxs[i]]
		if e.u > 0 {
			e.u--
		}
	}
}

// StorageBits returns the predictor's storage budget in bits.
func (t *Tage) StorageBits() uint64 {
	entryBits := uint64(t.cfg.TagBits) + 3 + 2
	bits := uint64(len(t.tables)) * uint64(1<<t.cfg.TableBits) * entryBits
	bits += uint64(1<<t.cfg.BimodalBits) * 2
	if t.sc != nil {
		bits += t.sc.storageBits()
	}
	if t.loop != nil {
		bits += t.loop.storageBits()
	}
	return bits
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func satInc8(v, max int8) int8 {
	if v < max {
		return v + 1
	}
	return v
}

func satDec8(v, min int8) int8 {
	if v > min {
		return v - 1
	}
	return v
}
