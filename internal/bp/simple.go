package bp

import "udpsim/internal/isa"

// Gshare is the classic global-history XOR predictor, provided as a
// lighter-weight comparison point and as a test oracle for the
// DirectionPredictor contract.
type Gshare struct {
	table []int8 // 2-bit counters: -2..1
	bits  uint
	hist  HistState
}

// NewGshare builds a gshare predictor with 2^bits counters.
func NewGshare(bits uint) *Gshare {
	g := &Gshare{table: make([]int8, 1<<bits), bits: bits}
	for i := range g.table {
		g.table[i] = -1 // weakly not-taken
	}
	return g
}

// Name implements DirectionPredictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc isa.Addr) uint32 {
	return uint32(uint64(pc)>>2^g.hist.H[0]) & (1<<g.bits - 1)
}

// Predict implements DirectionPredictor.
func (g *Gshare) Predict(pc isa.Addr) Prediction {
	i := g.index(pc)
	c := g.table[i]
	conf := Low
	if c <= -2 || c >= 1 {
		conf = Medium
	}
	return Prediction{Taken: c >= 0, Conf: conf, bimIdx: i}
}

// SpecUpdate implements DirectionPredictor.
func (g *Gshare) SpecUpdate(_ isa.Addr, taken bool) {
	g.hist.H[0] = g.hist.H[0]<<1 | b2u(taken)
}

// Snapshot implements DirectionPredictor.
func (g *Gshare) Snapshot() HistState { return g.hist }

// Restore implements DirectionPredictor.
func (g *Gshare) Restore(s HistState) { g.hist = s }

// Train implements DirectionPredictor.
func (g *Gshare) Train(_ isa.Addr, taken bool, pred Prediction) {
	c := &g.table[pred.bimIdx]
	if taken {
		*c = satInc8(*c, 1)
	} else {
		*c = satDec8(*c, -2)
	}
}

// Bimodal is a per-PC 2-bit-counter predictor with no history — the
// weakest baseline and the base component of TAGE.
type Bimodal struct {
	table []int8
	bits  uint
}

// NewBimodal builds a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	b := &Bimodal{table: make([]int8, 1<<bits), bits: bits}
	for i := range b.table {
		b.table[i] = -1 // weakly not-taken
	}
	return b
}

// Name implements DirectionPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc isa.Addr) Prediction {
	i := uint32(uint64(pc)>>2) & (1<<b.bits - 1)
	c := b.table[i]
	conf := Low
	if c <= -2 || c >= 1 {
		conf = Medium
	}
	return Prediction{Taken: c >= 0, Conf: conf, bimIdx: i}
}

// SpecUpdate implements DirectionPredictor (no history to update).
func (b *Bimodal) SpecUpdate(isa.Addr, bool) {}

// Snapshot implements DirectionPredictor.
func (b *Bimodal) Snapshot() HistState { return HistState{} }

// Restore implements DirectionPredictor.
func (b *Bimodal) Restore(HistState) {}

// Train implements DirectionPredictor.
func (b *Bimodal) Train(_ isa.Addr, taken bool, pred Prediction) {
	c := &b.table[pred.bimIdx]
	if taken {
		*c = satInc8(*c, 1)
	} else {
		*c = satDec8(*c, -2)
	}
}
