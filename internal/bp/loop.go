package bp

import "udpsim/internal/isa"

// loopPredictor is the "L" of TAGE-SC-L: it detects conditional branches
// that behave as loop back-edges with a constant trip count and, once
// confident, predicts the final (not-taken) iteration exactly — a case
// counter-based predictors systematically miss.
//
// Iteration counting has two copies per entry: an architectural count
// advanced at train time (program order) and a speculative count
// advanced at predict time by the runahead frontend. On recovery the
// speculative copies resynchronize to the architectural ones — the
// modelling equivalent of flushing the speculative loop state with the
// pipeline.
type loopPredictor struct {
	entries []loopEntry
}

type loopEntry struct {
	tag      uint32
	trip     uint16 // learned trip count (taken iterations before exit)
	archIter uint16
	specIter uint16
	conf     uint8 // confidence: predicts only when saturated
	age      uint8
	valid    bool
}

const loopConfMax = 3

func newLoopPredictor(n int) *loopPredictor {
	return &loopPredictor{entries: make([]loopEntry, n)}
}

func (lp *loopPredictor) index(pc isa.Addr) (int, uint32) {
	x := uint64(pc) >> 2
	x ^= x >> 13
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return int(x % uint64(len(lp.entries))), uint32(x >> 32)
}

// predict returns (direction, hit). It hits only for confident entries.
func (lp *loopPredictor) predict(pc isa.Addr) (bool, bool) {
	i, tag := lp.index(pc)
	e := &lp.entries[i]
	if !e.valid || e.tag != tag || e.conf < loopConfMax {
		return false, false
	}
	// Predict taken while inside the loop, not-taken on the exit
	// iteration.
	return e.specIter < e.trip, true
}

// specAdvance advances the speculative iteration counter at predict time.
func (lp *loopPredictor) specAdvance(pc isa.Addr, taken bool) {
	i, tag := lp.index(pc)
	e := &lp.entries[i]
	if !e.valid || e.tag != tag {
		return
	}
	if taken {
		if e.specIter < ^uint16(0) {
			e.specIter++
		}
	} else {
		e.specIter = 0
	}
}

// restore resynchronizes all speculative iteration counters to the
// architectural state after a pipeline flush.
func (lp *loopPredictor) restore() {
	for i := range lp.entries {
		lp.entries[i].specIter = lp.entries[i].archIter
	}
}

// train observes the resolved outcome in program order.
func (lp *loopPredictor) train(pc isa.Addr, taken bool, predicted bool) {
	i, tag := lp.index(pc)
	e := &lp.entries[i]
	if !e.valid || e.tag != tag {
		// Allocate on a not-taken outcome (candidate loop exit) for
		// branches that look loop-like; age out the incumbent first.
		if e.valid && e.age > 0 {
			e.age--
			return
		}
		*e = loopEntry{tag: tag, valid: true, age: 7}
		return
	}
	if taken {
		if e.archIter < ^uint16(0) {
			e.archIter++
		}
		return
	}
	// Loop exit: compare observed trip count with the learned one.
	observed := e.archIter
	e.archIter = 0
	switch {
	case e.trip == observed && observed > 0:
		if e.conf < loopConfMax {
			e.conf++
		}
		if e.age < 255 {
			e.age++
		}
	case observed == 0:
		// Degenerate: never-taken branch, not a loop.
		e.conf = 0
	default:
		// Trip count changed: relearn.
		e.trip = observed
		e.conf = 0
	}
}

func (lp *loopPredictor) storageBits() uint64 {
	// tag(32 modelled, ~14 in hardware) + trip(16) + 2 iters(32) +
	// conf(2) + age(8): charge the hardware-realistic 62 bits.
	return uint64(len(lp.entries)) * 62
}
