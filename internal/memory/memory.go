// Package memory wires the uncore of the simulated machine: the unified
// L2, the shared LLC, a bandwidth-limited DRAM channel, and the stream
// data prefetcher from Table II. The instruction side (L1I + its MSHRs)
// lives in the frontend; this package serves its misses. The data side
// (L1D) is owned here and accessed by the backend.
package memory

import (
	"fmt"

	"udpsim/internal/cache"
	"udpsim/internal/isa"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Config carries the uncore parameters (Table II defaults live in the
// sim package).
type Config struct {
	L2         cache.Config
	LLC        cache.Config
	L1D        cache.Config
	L2Latency  int // total load-to-use cycles for an L2 hit
	LLCLatency int // total cycles for an LLC hit
	// DRAMLatency is the access latency of the DRAM device itself,
	// added on top of the LLC latency for a full miss.
	DRAMLatency int
	// DRAMBurstCycles is the channel occupancy per 64B line transfer;
	// models DDR4-2400 single-channel bandwidth at 3 GHz.
	DRAMBurstCycles int
	// StreamPrefetcher enables the L1D stream prefetcher.
	StreamPrefetcher bool
	// StreamDistance is how many lines ahead the stream prefetcher runs.
	StreamDistance int
	// StreamStreams is the number of concurrently tracked streams.
	StreamStreams int
}

// Stats aggregates uncore events.
type Stats struct {
	InstrFills       uint64
	InstrL2Hits      uint64
	InstrLLCHits     uint64
	InstrDRAMFills   uint64
	DataAccesses     uint64
	DataL1Hits       uint64
	DataL2Hits       uint64
	DataLLCHits      uint64
	DataDRAMFills    uint64
	StreamPrefetches uint64
	DRAMQueueCycles  uint64 // accumulated queueing delay
}

// Hierarchy is the uncore model.
type Hierarchy struct {
	cfg   Config
	L2    *cache.Cache
	LLC   *cache.Cache
	L1D   *cache.Cache
	dram  dramChannel
	spf   *streamPrefetcher
	Stats Stats
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		L2:  cache.New(cfg.L2),
		LLC: cache.New(cfg.LLC),
		L1D: cache.New(cfg.L1D),
		dram: dramChannel{
			latency: uint64(cfg.DRAMLatency),
			burst:   uint64(cfg.DRAMBurstCycles),
		},
	}
	if cfg.StreamPrefetcher {
		d := cfg.StreamDistance
		if d <= 0 {
			d = 4
		}
		n := cfg.StreamStreams
		if n <= 0 {
			n = 16
		}
		h.spf = newStreamPrefetcher(n, d)
	}
	return h
}

// ResetStats clears the hierarchy's and every level's accumulated
// statistics (end of warmup) while preserving cache contents. It
// implements the sim package's StatsResetter.
func (h *Hierarchy) ResetStats() {
	h.Stats = Stats{}
	h.L1D.Stats = cache.Stats{}
	h.L2.Stats = cache.Stats{}
	h.LLC.Stats = cache.Stats{}
}

// InstrFill serves an instruction-line miss from L1I, returning the cycle
// the line becomes available and the level that supplied it. The line is
// installed into L2/LLC on its way up (mostly-inclusive behaviour).
func (h *Hierarchy) InstrFill(lineAddr isa.Addr, cycle uint64) (ready uint64, level Level) {
	h.Stats.InstrFills++
	if h.L2.Access(lineAddr, cycle).Hit {
		h.Stats.InstrL2Hits++
		return cycle + uint64(h.cfg.L2Latency), LevelL2
	}
	if h.LLC.Access(lineAddr, cycle).Hit {
		h.Stats.InstrLLCHits++
		h.L2.Insert(lineAddr, cycle, false)
		return cycle + uint64(h.cfg.LLCLatency), LevelLLC
	}
	h.Stats.InstrDRAMFills++
	done := h.dramAccess(cycle + uint64(h.cfg.LLCLatency))
	h.LLC.Insert(lineAddr, cycle, false)
	h.L2.Insert(lineAddr, cycle, false)
	return done, LevelDRAM
}

// DataAccess serves a demand load or store from the backend, returning
// the load-to-use latency in cycles. Stores are modelled with the same
// lookup path (write-allocate) but the backend typically retires them
// without waiting.
func (h *Hierarchy) DataAccess(addr isa.Addr, cycle uint64) (latency uint64, level Level) {
	h.Stats.DataAccesses++
	lineAddr := addr.Line()
	if h.spf != nil {
		h.spf.observe(h, lineAddr, cycle)
	}
	if h.L1D.Access(lineAddr, cycle).Hit {
		h.Stats.DataL1Hits++
		return uint64(h.cfg.L1D.HitLatency), LevelL1
	}
	if h.L2.Access(lineAddr, cycle).Hit {
		h.Stats.DataL2Hits++
		h.L1D.Insert(lineAddr, cycle, false)
		return uint64(h.cfg.L2Latency), LevelL2
	}
	if h.LLC.Access(lineAddr, cycle).Hit {
		h.Stats.DataLLCHits++
		h.L1D.Insert(lineAddr, cycle, false)
		h.L2.Insert(lineAddr, cycle, false)
		return uint64(h.cfg.LLCLatency), LevelLLC
	}
	h.Stats.DataDRAMFills++
	done := h.dramAccess(cycle + uint64(h.cfg.LLCLatency))
	h.L1D.Insert(lineAddr, cycle, false)
	h.L2.Insert(lineAddr, cycle, false)
	h.LLC.Insert(lineAddr, cycle, false)
	return done - cycle, LevelDRAM
}

// prefetchData installs a line into L1D/L2 on behalf of the stream
// prefetcher without timing feedback (prefetches are not on the critical
// path; their benefit appears as later hits).
func (h *Hierarchy) prefetchData(lineAddr isa.Addr, cycle uint64) {
	if h.L1D.Lookup(lineAddr) {
		return
	}
	h.Stats.StreamPrefetches++
	h.L1D.Insert(lineAddr, cycle, true)
	if !h.L2.Lookup(lineAddr) {
		h.L2.Insert(lineAddr, cycle, true)
	}
}

func (h *Hierarchy) dramAccess(start uint64) (done uint64) {
	return h.dram.access(start, &h.Stats)
}

// dramChannel models a single DDR channel: fixed device latency plus a
// busy window per burst, so back-to-back misses queue.
type dramChannel struct {
	latency   uint64
	burst     uint64
	busyUntil uint64
}

func (d *dramChannel) access(start uint64, s *Stats) uint64 {
	issue := start
	if d.busyUntil > issue {
		s.DRAMQueueCycles += d.busyUntil - issue
		issue = d.busyUntil
	}
	d.busyUntil = issue + d.burst
	return issue + d.latency
}

// streamPrefetcher detects monotonically increasing line streams in the
// L1D miss/access sequence and runs a few lines ahead.
type streamPrefetcher struct {
	streams  []stream
	distance int
}

type stream struct {
	lastLine isa.Addr
	hits     int
	valid    bool
	lru      uint64
}

func newStreamPrefetcher(n, distance int) *streamPrefetcher {
	return &streamPrefetcher{streams: make([]stream, n), distance: distance}
}

func (p *streamPrefetcher) observe(h *Hierarchy, lineAddr isa.Addr, cycle uint64) {
	// Match an existing stream expecting this line (or a nearby step).
	for i := range p.streams {
		st := &p.streams[i]
		if !st.valid {
			continue
		}
		if lineAddr == st.lastLine+isa.LineBytes || lineAddr == st.lastLine+2*isa.LineBytes {
			st.lastLine = lineAddr
			st.hits++
			st.lru = cycle
			if st.hits >= 2 {
				for k := 1; k <= p.distance; k++ {
					h.prefetchData(lineAddr+isa.Addr(k*isa.LineBytes), cycle)
				}
			}
			return
		}
		if lineAddr == st.lastLine {
			st.lru = cycle
			return
		}
	}
	// Allocate (replace LRU).
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lru < p.streams[victim].lru {
			victim = i
		}
	}
	p.streams[victim] = stream{lastLine: lineAddr, valid: true, lru: cycle}
}
