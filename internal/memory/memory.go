// Package memory wires the uncore of the simulated machine as a
// unified request-based hierarchy: the unified L2 and shared LLC each
// sit behind a generalized MSHR/fill-buffer file and a finite-bandwidth
// fill port, a bandwidth-limited DRAM channel serves the bottom, and
// the L1D (owned here, accessed by the backend) follows the same
// request/complete discipline. The instruction side (L1I + its MSHRs)
// lives in the frontend; this package serves its misses through the
// same L2/LLC MSHRs and ports that data demands and every prefetcher
// (FDIP/UDP/EIP via the frontend, the stream prefetcher here) share.
//
// The request path is two-phase:
//
//   - Request time (InstrRequest / DataRequest / the stream
//     prefetcher): the access probes each level; hits return a latency,
//     misses on an in-flight line merge into the existing MSHR
//     (secondary miss), and full misses allocate MSHRs down the
//     hierarchy, scheduling the fill through the DRAM channel and each
//     level's fill port. Requests that find an MSHR file full are
//     rejected: demands retry (the caller stalls), prefetches are
//     dropped — the backpressure UDP's cost model is supposed to be
//     evaluated against.
//   - Completion time (Tick): a line becomes visible in a cache only at
//     its fill-completion cycle. Until then demand accesses merge and
//     wait. Tick drains each level's MSHR file in arrival order.
//
// Fills are writeback-free: the simulator tracks no dirty data, so
// evictions produce no traffic (documented simplification).
package memory

import (
	"fmt"

	"udpsim/internal/cache"
	"udpsim/internal/isa"
	"udpsim/internal/obs"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// ReqKind classifies a hierarchy request: who issued it and whether a
// rejection stalls the requester (demand) or discards the request
// (prefetch).
type ReqKind uint8

// Request kinds.
const (
	// ReqInstrDemand is an L1I demand miss (the fetch stage stalls on
	// rejection and retries next cycle).
	ReqInstrDemand ReqKind = iota
	// ReqInstrPrefetch is an FDIP/UDP/EIP instruction prefetch (dropped
	// on rejection).
	ReqInstrPrefetch
	// ReqDataDemand is a backend load/store (retried on rejection).
	ReqDataDemand
	// ReqDataPrefetch is a stream data prefetch (dropped on rejection).
	ReqDataPrefetch
)

// IsPrefetch reports whether a rejection drops the request instead of
// stalling the requester.
func (k ReqKind) IsPrefetch() bool { return k == ReqInstrPrefetch || k == ReqDataPrefetch }

// IsInstr reports whether the request came from the instruction side.
func (k ReqKind) IsInstr() bool { return k == ReqInstrDemand || k == ReqInstrPrefetch }

func (k ReqKind) String() string {
	switch k {
	case ReqInstrDemand:
		return "instr-demand"
	case ReqInstrPrefetch:
		return "instr-prefetch"
	case ReqDataDemand:
		return "data-demand"
	case ReqDataPrefetch:
		return "data-prefetch"
	default:
		return fmt.Sprintf("req(%d)", uint8(k))
	}
}

// Config carries the uncore parameters (Table II defaults live in the
// sim package).
type Config struct {
	L2         cache.Config
	LLC        cache.Config
	L1D        cache.Config
	L2Latency  int // total load-to-use cycles for an L2 hit
	LLCLatency int // total cycles for an LLC hit
	// DRAMLatency is the access latency of the DRAM device itself,
	// added on top of the LLC latency for a full miss.
	DRAMLatency int
	// DRAMBurstCycles is the channel occupancy per 64B line transfer;
	// models DDR4-2400 single-channel bandwidth at 3 GHz.
	DRAMBurstCycles int

	// Per-level MSHR file sizes (secondary misses merge; a full file
	// backpressures demands and drops prefetches). Zero picks the
	// defaults below.
	L1DMSHRs int // default 16
	L2MSHRs  int // default 32
	LLCMSHRs int // default 64

	// Per-level fill-port occupancy in cycles per 64B line: finite fill
	// bandwidth shared by instruction fills, data demands and all
	// prefetchers. Zero picks 1 (one line per cycle).
	L1DFillCycles int
	L2FillCycles  int
	LLCFillCycles int

	// DRAMPrefetchBacklog is the memory-controller prefetch throttle:
	// when the DRAM channel's backlog exceeds this many cycles, new
	// prefetch requests (instruction or data) are dropped instead of
	// queueing behind demands — a deeply queued prefetch arrives too
	// late to be timely and only delays demand fills. Zero picks the
	// default of 64 burst slots (640 cycles at the default burst), a
	// deliberately loose safety valve: tighter thresholds measurably
	// hurt FDIP-style run-ahead, whose queued prefetches still supply
	// MLP even when they complete late. Negative disables throttling.
	DRAMPrefetchBacklog int

	// StreamPrefetcher enables the L1D stream prefetcher.
	StreamPrefetcher bool
	// StreamDistance is how many lines ahead the stream prefetcher runs.
	StreamDistance int
	// StreamStreams is the number of concurrently tracked streams.
	StreamStreams int
}

// LevelStats accounts the request path at one level. The counters obey
// the conservation invariant checked by CheckCounters: after a Drain,
//
//	Fills == FillRequests − Merges − Drops − Retries
//
// i.e. every fill requested at this level was either supplied, merged
// into an already-in-flight fill, or rejected under MSHR pressure.
type LevelStats struct {
	// FillRequests counts requests that missed at this level (the line
	// was absent from the cache) and therefore needed fill data,
	// including those that merged or were rejected.
	FillRequests uint64
	// Merges counts secondary misses absorbed by an in-flight MSHR.
	Merges uint64
	// Drops counts prefetch requests rejected because the MSHR file was
	// full (the prefetch is discarded).
	Drops uint64
	// Retries counts demand requests rejected because the MSHR file was
	// full (the requester stalls and retries; each retry is a new
	// FillRequest).
	Retries uint64
	// Fills counts completed fills installed into this level's cache;
	// PrefetchFills is the prefetch-initiated subset.
	Fills         uint64
	PrefetchFills uint64
	// FillQueueCycles accumulates cycles fills waited for this level's
	// fill port (finite fill bandwidth).
	FillQueueCycles uint64
}

// Stats aggregates uncore events.
type Stats struct {
	InstrFills     uint64
	InstrL2Hits    uint64
	InstrLLCHits   uint64
	InstrDRAMFills uint64
	DataAccesses   uint64
	DataL1Hits     uint64
	DataL2Hits     uint64
	DataLLCHits    uint64
	DataDRAMFills  uint64
	// StreamPrefetches counts stream prefetches accepted into the
	// request path; StreamPrefetchDrops counts those rejected under
	// MSHR/bandwidth pressure.
	StreamPrefetches    uint64
	StreamPrefetchDrops uint64
	// DRAMQueueCycles is the accumulated queueing delay at the DRAM
	// channel; DRAMBursts counts line transfers over it.
	DRAMQueueCycles uint64
	DRAMBursts      uint64
	// DRAMPrefetchDrops counts prefetches the memory controller dropped
	// because the channel backlog exceeded DRAMPrefetchBacklog.
	DRAMPrefetchDrops uint64

	// Per-level request-path accounting.
	L1D LevelStats
	L2  LevelStats
	LLC LevelStats
}

// DemandRetries sums demand rejections across levels — the cycles-level
// backpressure demand traffic saw from a full hierarchy.
func (s *Stats) DemandRetries() uint64 {
	return s.L1D.Retries + s.L2.Retries + s.LLC.Retries
}

// PrefetchDrops sums prefetch rejections across levels.
func (s *Stats) PrefetchDrops() uint64 {
	return s.L1D.Drops + s.L2.Drops + s.LLC.Drops
}

// FillQueueCycles sums fill-port queueing across levels.
func (s *Stats) FillQueueCycles() uint64 {
	return s.L1D.FillQueueCycles + s.L2.FillQueueCycles + s.LLC.FillQueueCycles
}

// fillPort models one level's finite fill bandwidth as a windowed rate
// limiter: at most fillWindow/cycles line installs per aligned
// fillWindow-cycle window. Fills are booked at request time with their
// projected completion cycle, and those cycles arrive out of order (a
// DRAM fill requested first completes long after an LLC hit requested
// next), so a busy-until accumulator like the DRAM channel's would let
// one far-future reservation head-of-line-block every near-term fill.
// The windowed meter enforces the same average bandwidth without
// imposing an ordering the port never sees.
type fillPort struct {
	winStart uint64
	count    uint64
	capacity uint64
	window   uint64
}

// fillWindow is the metering granularity of a fill port in cycles: wide
// enough to absorb bursty arrival at full bandwidth, narrow enough that
// a constrained L2FillCycles/LLCFillCycles sweep visibly delays fill
// visibility.
const fillWindow = 64

func newFillPort(cycles int) fillPort {
	capacity := uint64(fillWindow) / uint64(cycles)
	if capacity == 0 {
		capacity = 1
	}
	return fillPort{capacity: capacity, window: fillWindow}
}

// schedule books a fill whose data is available at t, returning the
// cycle the fill actually completes (and the line becomes installable).
// A fill landing in a saturated window spills into the next window; the
// wait is charged to FillQueueCycles.
func (p *fillPort) schedule(t uint64, ls *LevelStats) uint64 {
	if t >= p.winStart+p.window {
		// t opens a later window (aligned so grants are deterministic
		// regardless of arrival order within the window).
		p.winStart = t - t%p.window
		p.count = 0
	}
	for p.count >= p.capacity {
		next := p.winStart + p.window
		ls.FillQueueCycles += next - t
		t = next
		p.winStart = next
		p.count = 0
	}
	p.count++
	return t
}

// Hierarchy is the uncore model.
type Hierarchy struct {
	cfg  Config
	L2   *cache.Cache
	LLC  *cache.Cache
	L1D  *cache.Cache
	dram dramChannel
	spf  *streamPrefetcher

	l1dm *cache.MSHRFile
	l2m  *cache.MSHRFile
	llcm *cache.MSHRFile

	l1dFill fillPort
	l2Fill  fillPort
	llcFill fillPort

	// prefetchBacklog is the resolved DRAMPrefetchBacklog threshold in
	// cycles (-1 disables).
	prefetchBacklog int64

	Stats Stats

	// Obs receives backpressure and fill-completion events when non-nil
	// (nil-guarded; attached by the sim driver).
	Obs *obs.Observer
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	if cfg.L1DMSHRs <= 0 {
		cfg.L1DMSHRs = 16
	}
	if cfg.L2MSHRs <= 0 {
		cfg.L2MSHRs = 32
	}
	if cfg.LLCMSHRs <= 0 {
		cfg.LLCMSHRs = 64
	}
	if cfg.L1DFillCycles <= 0 {
		cfg.L1DFillCycles = 1
	}
	if cfg.L2FillCycles <= 0 {
		cfg.L2FillCycles = 1
	}
	if cfg.LLCFillCycles <= 0 {
		cfg.LLCFillCycles = 1
	}
	prefetchBacklog := int64(cfg.DRAMPrefetchBacklog)
	switch {
	case cfg.DRAMPrefetchBacklog == 0:
		prefetchBacklog = 64 * int64(cfg.DRAMBurstCycles)
	case cfg.DRAMPrefetchBacklog < 0:
		prefetchBacklog = -1
	}
	h := &Hierarchy{
		cfg: cfg,
		L2:  cache.New(cfg.L2),
		LLC: cache.New(cfg.LLC),
		L1D: cache.New(cfg.L1D),
		dram: dramChannel{
			latency: uint64(cfg.DRAMLatency),
			burst:   uint64(cfg.DRAMBurstCycles),
		},
		l1dm:    cache.NewMSHRFile(cfg.L1DMSHRs),
		l2m:     cache.NewMSHRFile(cfg.L2MSHRs),
		llcm:    cache.NewMSHRFile(cfg.LLCMSHRs),
		l1dFill: newFillPort(cfg.L1DFillCycles),
		l2Fill:  newFillPort(cfg.L2FillCycles),
		llcFill: newFillPort(cfg.LLCFillCycles),

		prefetchBacklog: prefetchBacklog,
	}
	if cfg.StreamPrefetcher {
		d := cfg.StreamDistance
		if d <= 0 {
			d = 4
		}
		n := cfg.StreamStreams
		if n <= 0 {
			n = 16
		}
		h.spf = newStreamPrefetcher(n, d)
	}
	return h
}

// Config returns the hierarchy's (defaulted) configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1DMSHRFile exposes the L1D miss file (tests, conformance checks).
func (h *Hierarchy) L1DMSHRFile() *cache.MSHRFile { return h.l1dm }

// L2MSHRFile exposes the L2 miss file shared by instruction fills, data
// demands and all prefetchers.
func (h *Hierarchy) L2MSHRFile() *cache.MSHRFile { return h.l2m }

// LLCMSHRFile exposes the LLC miss file.
func (h *Hierarchy) LLCMSHRFile() *cache.MSHRFile { return h.llcm }

// ResetStats clears the hierarchy's and every level's accumulated
// statistics (end of warmup) while preserving cache contents and
// in-flight fills. It implements the sim package's StatsResetter.
//
// Fills in flight across the reset complete afterwards, so immediately
// after a reset Completions can exceed Allocations in the MSHR files;
// CheckCounters is only meaningful on a hierarchy whose stats were
// never reset mid-flight (use WarmupInstructions=0 in invariant tests).
func (h *Hierarchy) ResetStats() {
	h.Stats = Stats{}
	h.L1D.Stats = cache.Stats{}
	h.L2.Stats = cache.Stats{}
	h.LLC.Stats = cache.Stats{}
	h.l1dm.Stats = cache.MSHRStats{}
	h.l2m.Stats = cache.MSHRStats{}
	h.llcm.Stats = cache.MSHRStats{}
}

// dramChannel models a single DDR channel: fixed device latency plus a
// busy window per burst, so back-to-back misses queue. Instruction
// fills, data demands and every prefetcher share it.
type dramChannel struct {
	latency   uint64
	burst     uint64
	busyUntil uint64
}

// backlog reports how many cycles a burst starting at start would wait
// behind the channel's existing reservations.
func (d *dramChannel) backlog(start uint64) int64 {
	if d.busyUntil <= start {
		return 0
	}
	return int64(d.busyUntil - start)
}

func (d *dramChannel) access(start uint64, s *Stats) uint64 {
	issue := start
	if d.busyUntil > issue {
		s.DRAMQueueCycles += d.busyUntil - issue
		issue = d.busyUntil
	}
	d.busyUntil = issue + d.burst
	s.DRAMBursts++
	return issue + d.latency
}

// streamPrefetcher detects monotonically increasing line streams in the
// L1D miss/access sequence and runs a few lines ahead. Its prefetches
// go through the same request path as demands: they allocate MSHRs,
// occupy fill ports and DRAM bandwidth, and are dropped under pressure.
type streamPrefetcher struct {
	streams  []stream
	distance int
}

type stream struct {
	lastLine isa.Addr
	hits     int
	valid    bool
	lru      uint64
}

func newStreamPrefetcher(n, distance int) *streamPrefetcher {
	return &streamPrefetcher{streams: make([]stream, n), distance: distance}
}

func (p *streamPrefetcher) observe(h *Hierarchy, lineAddr isa.Addr, cycle uint64) {
	// Match an existing stream expecting this line (or a nearby step).
	for i := range p.streams {
		st := &p.streams[i]
		if !st.valid {
			continue
		}
		if lineAddr == st.lastLine+isa.LineBytes || lineAddr == st.lastLine+2*isa.LineBytes {
			st.lastLine = lineAddr
			st.hits++
			st.lru = cycle
			if st.hits >= 2 {
				for k := 1; k <= p.distance; k++ {
					h.prefetchData(lineAddr+isa.Addr(k*isa.LineBytes), cycle)
				}
			}
			return
		}
		if lineAddr == st.lastLine {
			st.lru = cycle
			return
		}
	}
	// Allocate (replace LRU).
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lru < p.streams[victim].lru {
			victim = i
		}
	}
	p.streams[victim] = stream{lastLine: lineAddr, valid: true, lru: cycle}
}
