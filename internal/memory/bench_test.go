package memory

import (
	"testing"

	"udpsim/internal/isa"
)

// BenchmarkHierarchyRequest measures the per-request cost of the
// two-phase request path (lookup + MSHR allocate/merge + fill-port and
// DRAM-channel scheduling + completion sweep), the memory-side
// component of Machine.Step's cycle budget. It lives next to
// BenchmarkMachineStep in the CI bench artifact and shares its
// contract: the request path must not allocate — the zero-alloc awk
// gate in CI checks this file's allocs/op column too.
func BenchmarkHierarchyRequest(b *testing.B) {
	b.Run("instr-mixed", func(b *testing.B) {
		h := New(testConfig())
		// 1024 lines (64 KiB): larger than L1I working sets, small
		// enough that steady state mixes L2 hits, merges and misses.
		const lines = 1024
		b.ReportAllocs()
		b.ResetTimer()
		cycle := uint64(1)
		for i := 0; i < b.N; i++ {
			h.Tick(cycle)
			h.InstrRequest(ln(i%lines), cycle, i%4 == 0)
			cycle++
		}
	})
	b.Run("data-mixed", func(b *testing.B) {
		h := New(testConfig())
		const spanBytes = 1 << 20 // 1 MiB stride space: L1D misses, LLC mostly holds
		b.ReportAllocs()
		b.ResetTimer()
		cycle := uint64(1)
		for i := 0; i < b.N; i++ {
			h.Tick(cycle)
			h.DataRequest(isa.Addr(0x800000+(i*72)%spanBytes), cycle)
			cycle++
		}
	})
}

// TestHierarchyRequestZeroAlloc pins the zero-allocation contract of
// the request path outside the benchmark, so a regression fails `go
// test` even when benchmarks are not run.
func TestHierarchyRequestZeroAlloc(t *testing.T) {
	h := New(testConfig())
	cycle := uint64(1)
	// Warm the MSHR files and ports past their initial growth.
	for i := 0; i < 4096; i++ {
		h.Tick(cycle)
		h.InstrRequest(ln(i%512), cycle, i%4 == 0)
		h.DataRequest(isa.Addr(0x800000+(i*72)%(1<<20)), cycle)
		cycle++
	}
	allocs := testing.AllocsPerRun(2000, func() {
		h.Tick(cycle)
		h.InstrRequest(ln(int(cycle)%512), cycle, cycle%4 == 0)
		h.DataRequest(isa.Addr(0x800000+(uint64(cycle)*72)%(1<<20)), cycle)
		cycle++
	})
	if allocs != 0 {
		t.Errorf("request path allocates: %.1f allocs/op", allocs)
	}
}
