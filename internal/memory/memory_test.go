package memory

import (
	"testing"

	"udpsim/internal/cache"
	"udpsim/internal/isa"
)

func testConfig() Config {
	return Config{
		L1D:             cache.Config{Name: "L1D", SizeBytes: 48 * 1024, Ways: 12, Policy: cache.LRU, HitLatency: 4},
		L2:              cache.Config{Name: "L2", SizeBytes: 512 * 1024, Ways: 8, Policy: cache.LRU},
		LLC:             cache.Config{Name: "LLC", SizeBytes: 2 * 1024 * 1024, Ways: 16, Policy: cache.LRU},
		L2Latency:       13,
		LLCLatency:      36,
		DRAMLatency:     150,
		DRAMBurstCycles: 10,
	}
}

func ln(i int) isa.Addr { return isa.Addr(0x400000 + i*isa.LineBytes) }

// checkInvariant drains the hierarchy and fails the test if the
// conservation counters do not balance.
func checkInvariant(t *testing.T, h *Hierarchy) {
	t.Helper()
	h.Drain()
	if err := h.CheckCounters(); err != nil {
		t.Fatal(err)
	}
}

func TestInstrRequestColdGoesToDRAM(t *testing.T) {
	h := New(testConfig())
	ready, level, ok := h.InstrRequest(ln(1), 100, false)
	if !ok {
		t.Fatal("cold request rejected")
	}
	if level != LevelDRAM {
		t.Fatalf("cold fill from %v", level)
	}
	// LLC latency + DRAM latency (uncontended ports add nothing).
	if ready != 100+36+150 {
		t.Errorf("ready = %d, want %d", ready, 100+36+150)
	}
	if h.Stats.InstrDRAMFills != 1 || h.Stats.DRAMBursts != 1 {
		t.Errorf("stats %+v", h.Stats)
	}
	checkInvariant(t, h)
}

// TestLineNotVisibleUntilFillCompletes is the regression test for the
// allocation-time-install bug: a same-line access one cycle after a
// DRAM miss must merge into the in-flight fill (and wait), not hit a
// cache, and only after the fill-completion Tick may the line hit.
func TestLineNotVisibleUntilFillCompletes(t *testing.T) {
	h := New(testConfig())
	ready, _, ok := h.InstrRequest(ln(1), 100, false)
	if !ok {
		t.Fatal("cold request rejected")
	}
	if h.L2.Lookup(ln(1)) || h.LLC.Lookup(ln(1)) {
		t.Fatal("line visible in a cache at request time (fill has not completed)")
	}
	// One cycle later: the line must NOT be an L2/LLC hit; it merges.
	r2, _, ok := h.InstrRequest(ln(1), 101, false)
	if !ok {
		t.Fatal("secondary miss rejected")
	}
	if h.Stats.L2.Merges != 1 {
		t.Fatalf("secondary miss did not merge: %+v", h.Stats.L2)
	}
	if r2 < ready {
		t.Errorf("merged access ready %d before the fill's data arrives %d", r2, ready)
	}
	if h.Stats.DRAMBursts != 1 {
		t.Errorf("secondary miss re-accessed DRAM: %d bursts", h.Stats.DRAMBursts)
	}
	// Ticking up to (but not including) the fill completion keeps the
	// line invisible.
	h.Tick(ready - 1)
	if h.L2.Lookup(ln(1)) {
		t.Fatal("line visible one cycle before its fill completes")
	}
	h.Tick(ready)
	if !h.L2.Lookup(ln(1)) {
		t.Fatal("line not installed at fill completion")
	}
	// Now it is a genuine L2 hit with hit latency.
	r3, level, ok := h.InstrRequest(ln(1), ready+10, false)
	if !ok || level != LevelL2 || r3 != ready+10+13 {
		t.Fatalf("post-fill access: ready %d level %v ok %v", r3, level, ok)
	}
	checkInvariant(t, h)
}

func TestInstrRequestHitsL2AfterFillCompletes(t *testing.T) {
	h := New(testConfig())
	h.InstrRequest(ln(1), 100, false)
	h.Drain()
	ready, level, ok := h.InstrRequest(ln(1), 500, false)
	if !ok || level != LevelL2 {
		t.Fatalf("refill from %v (ok=%v), want L2", level, ok)
	}
	if ready != 500+13 {
		t.Errorf("ready = %d", ready)
	}
}

func TestInstrRequestLLCPath(t *testing.T) {
	cfg := testConfig()
	// Tiny L2 so the line falls out of it but stays in the LLC.
	cfg.L2.SizeBytes = 2 * 64 * 2
	cfg.L2.Ways = 2
	h := New(cfg)
	h.InstrRequest(ln(0), 1, false)
	h.Drain()
	// Blow the L2 (2 sets × 2 ways): conflicting same-set lines.
	for i := 1; i <= 8; i++ {
		h.InstrRequest(ln(i*2), uint64(1000+i*1000), false)
		h.Drain()
	}
	_, level, ok := h.InstrRequest(ln(0), 100_000, false)
	if !ok || level != LevelLLC {
		t.Fatalf("fill from %v (ok=%v), want LLC", level, ok)
	}
	checkInvariant(t, h)
}

func TestDataRequestLevels(t *testing.T) {
	h := New(testConfig())
	lat, level, ok := h.DataRequest(0x1000_0000, 10)
	if !ok || level != LevelDRAM {
		t.Fatalf("cold data access from %v (ok=%v)", level, ok)
	}
	if lat < 150 {
		t.Errorf("cold latency %d too small", lat)
	}
	// Before the fill completes the line is NOT an L1 cache hit; it is
	// a fill-buffer merge that waits out the remainder.
	lat2, level, ok := h.DataRequest(0x1000_0000, 11)
	if !ok || level != LevelL1 {
		t.Fatalf("merge access from %v", level)
	}
	if lat2 < lat-1-4 {
		t.Errorf("merged access latency %d shorter than the in-flight remainder (first %d)", lat2, lat)
	}
	if h.Stats.L1D.Merges != 1 {
		t.Fatalf("no L1D merge recorded: %+v", h.Stats.L1D)
	}
	h.Drain()
	lat3, level, ok := h.DataRequest(0x1000_0000, 4000)
	if !ok || level != LevelL1 || lat3 != 4 {
		t.Fatalf("warm access: %d cycles from %v", lat3, level)
	}
	checkInvariant(t, h)
}

func TestMSHRBackpressureDemandRetriesPrefetchDrops(t *testing.T) {
	cfg := testConfig()
	cfg.L2MSHRs = 1
	h := New(cfg)
	if _, _, ok := h.InstrRequest(ln(1), 100, false); !ok {
		t.Fatal("first request rejected")
	}
	// The single L2 MSHR is busy: a demand to a different line must be
	// rejected (retry), a prefetch must be dropped; neither touches DRAM.
	if _, _, ok := h.InstrRequest(ln(2), 101, false); ok {
		t.Fatal("demand accepted with a full L2 MSHR file")
	}
	if h.Stats.L2.Retries != 1 {
		t.Fatalf("demand rejection not counted as retry: %+v", h.Stats.L2)
	}
	if _, _, ok := h.InstrRequest(ln(3), 102, true); ok {
		t.Fatal("prefetch accepted with a full L2 MSHR file")
	}
	if h.Stats.L2.Drops != 1 {
		t.Fatalf("prefetch rejection not counted as drop: %+v", h.Stats.L2)
	}
	if h.Stats.DRAMBursts != 1 {
		t.Fatalf("rejected requests reached DRAM: %d bursts", h.Stats.DRAMBursts)
	}
	// After the in-flight fill completes, the retry succeeds.
	h.Drain()
	if _, _, ok := h.InstrRequest(ln(2), 10_000, false); !ok {
		t.Fatal("retry after drain rejected")
	}
	checkInvariant(t, h)
}

func TestLLCMSHRBackpressureMirrorsToL2(t *testing.T) {
	cfg := testConfig()
	cfg.LLCMSHRs = 1
	h := New(cfg)
	h.InstrRequest(ln(1), 100, false)
	if _, _, ok := h.InstrRequest(ln(2), 101, false); ok {
		t.Fatal("demand accepted with a full LLC MSHR file")
	}
	if h.Stats.LLC.Retries != 1 || h.Stats.L2.Retries != 1 {
		t.Fatalf("LLC rejection not mirrored: L2 %+v LLC %+v", h.Stats.L2, h.Stats.LLC)
	}
	checkInvariant(t, h)
}

func TestDRAMQueueing(t *testing.T) {
	h := New(testConfig())
	// Two back-to-back cold fills: the second queues behind the first's
	// burst occupancy.
	r1, _, _ := h.InstrRequest(ln(1), 100, false)
	r2, _, _ := h.InstrRequest(ln(2), 100, false)
	if r2 <= r1 {
		t.Errorf("no queueing: %d then %d", r1, r2)
	}
	if r2-r1 != 10 {
		t.Errorf("queue delta = %d, want burst 10", r2-r1)
	}
	if h.Stats.DRAMQueueCycles == 0 {
		t.Error("queue cycles not recorded")
	}
	checkInvariant(t, h)
}

// TestDRAMQueueFairness drives alternating instruction and data misses
// into the shared channel in one cycle: they serialize in arrival order
// with one burst of spacing each, regardless of requester class.
func TestDRAMQueueFairness(t *testing.T) {
	h := New(testConfig())
	var readies []uint64
	for i := 0; i < 6; i++ {
		var r uint64
		var ok bool
		if i%2 == 0 {
			r, _, ok = h.InstrRequest(ln(100+i), 50, false)
		} else {
			var lat uint64
			lat, _, ok = h.DataRequest(isa.Addr(0x3000_0000+i*isa.LineBytes), 50)
			r = 50 + lat
		}
		if !ok {
			t.Fatalf("request %d rejected", i)
		}
		readies = append(readies, r)
	}
	for i := 1; i < len(readies); i++ {
		d := readies[i] - readies[i-1]
		if d != 10 {
			t.Errorf("arrival %d→%d spacing %d, want one 10-cycle burst (FCFS regardless of instr/data)", i-1, i, d)
		}
	}
	if h.Stats.DRAMBursts != 6 {
		t.Errorf("DRAM bursts = %d, want 6", h.Stats.DRAMBursts)
	}
	checkInvariant(t, h)
}

// TestDRAMBacklogThrottlesPrefetches pins the memory-controller
// prefetch throttle: once the channel backlog exceeds
// DRAMPrefetchBacklog cycles, further prefetches are dropped (counted
// in DRAMPrefetchDrops and the per-level Drops ledger) while demands
// still queue normally.
func TestDRAMBacklogThrottlesPrefetches(t *testing.T) {
	cfg := testConfig()
	cfg.DRAMPrefetchBacklog = 25 // two 10-cycle bursts of slack, then drop
	h := New(cfg)
	var accepted int
	for i := 0; i < 6; i++ {
		if _, _, ok := h.InstrRequest(ln(200+i), 100, true); ok {
			accepted++
		}
	}
	// Backlog after k accepted same-cycle prefetches is 10k cycles:
	// k=0,1,2 pass (0,10,20 ≤ 25), the rest are shed.
	if accepted != 3 {
		t.Errorf("accepted %d prefetches, want 3", accepted)
	}
	if h.Stats.DRAMPrefetchDrops != 3 {
		t.Errorf("DRAMPrefetchDrops = %d, want 3", h.Stats.DRAMPrefetchDrops)
	}
	if h.Stats.LLC.Drops < 3 || h.Stats.L2.Drops < 3 {
		t.Errorf("per-level drop ledger missed throttle drops: LLC %d, L2 %d",
			h.Stats.LLC.Drops, h.Stats.L2.Drops)
	}
	// Demands are never throttled: one more miss at the same cycle
	// queues behind the accepted bursts instead of being rejected.
	if _, level, ok := h.InstrRequest(ln(299), 100, false); !ok || level != LevelDRAM {
		t.Errorf("demand rejected under prefetch throttle (ok=%v level=%v)", ok, level)
	}
	checkInvariant(t, h)

	// Negative disables the throttle entirely.
	cfg.DRAMPrefetchBacklog = -1
	h2 := New(cfg)
	for i := 0; i < 6; i++ {
		if _, _, ok := h2.InstrRequest(ln(200+i), 100, true); !ok {
			t.Fatalf("prefetch %d rejected with throttle disabled", i)
		}
	}
	if h2.Stats.DRAMPrefetchDrops != 0 {
		t.Errorf("disabled throttle still dropped %d", h2.Stats.DRAMPrefetchDrops)
	}
	checkInvariant(t, h2)
}

func TestFillPortBandwidth(t *testing.T) {
	cfg := testConfig()
	cfg.L2FillCycles = 20 // capacity: 64/20 = 3 fills per 64-cycle window
	h := New(cfg)
	var readies []uint64
	for i := 0; i < 4; i++ {
		r, _, ok := h.InstrRequest(ln(100+i), 100, false)
		if !ok {
			t.Fatalf("request %d rejected", i)
		}
		readies = append(readies, r)
	}
	// DRAM serializes the four fills 10 cycles apart (286, 296, 306,
	// 316); the L2 fill port admits only three per 64-cycle window, so
	// the first three keep DRAM spacing and the fourth spills to the
	// next aligned window boundary.
	for i := 1; i < 3; i++ {
		if readies[i]-readies[i-1] != 10 {
			t.Errorf("arrival %d→%d spacing %d, want 10 (within port window)", i-1, i, readies[i]-readies[i-1])
		}
	}
	if readies[3] <= readies[2]+10 {
		t.Errorf("fourth fill not port-limited: %v", readies)
	}
	if readies[3]%fillWindow != 0 {
		t.Errorf("spilled fill at %d, want an aligned %d-cycle window boundary", readies[3], fillWindow)
	}
	if h.Stats.L2.FillQueueCycles == 0 {
		t.Error("fill-port queueing not recorded")
	}
	checkInvariant(t, h)
}

func TestStreamPrefetcherGoesThroughRequestPath(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = true
	cfg.StreamDistance = 4
	h := New(cfg)
	base := isa.Addr(0x2000_0000)
	// Walk an ascending line stream, ticking fills to completion between
	// accesses; after two stride hits the prefetcher runs ahead.
	for i := 0; i < 8; i++ {
		cyc := uint64(1000 + i*1000)
		h.Tick(cyc)
		h.DataRequest(base+isa.Addr(i*isa.LineBytes), cyc)
	}
	if h.Stats.StreamPrefetches == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	// Stream prefetches are charged to the same DRAM channel as demands:
	// bursts must exceed the demand-only count.
	demandDRAM := h.Stats.DataDRAMFills
	if h.Stats.DRAMBursts <= demandDRAM {
		t.Errorf("stream prefetches free-ride: %d bursts for %d demand DRAM fills",
			h.Stats.DRAMBursts, demandDRAM)
	}
	// The next line in the stream should now hit L1D (after completion).
	h.Drain()
	lat, level, ok := h.DataRequest(base+isa.Addr(8*isa.LineBytes), 100_000)
	if !ok || level != LevelL1 {
		t.Errorf("stream next access from %v (lat %d), want L1", level, lat)
	}
	checkInvariant(t, h)
}

func TestStreamPrefetchDroppedUnderPressure(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = true
	cfg.StreamDistance = 4
	cfg.L1DMSHRs = 4
	h := New(cfg)
	base := isa.Addr(0x2000_0000)
	// Drain before each demand so the demand itself always has a free
	// MSHR; the stream prefetcher's 4-line runahead burst then lands in
	// a file with only 3 free entries, so at least one prefetch per
	// burst is dropped.
	for i := 0; i < 8; i++ {
		h.Drain()
		h.DataRequest(base+isa.Addr(i*isa.LineBytes), uint64(1000+i*1000))
	}
	if h.Stats.StreamPrefetchDrops == 0 {
		t.Fatalf("no stream prefetch drops under a 2-entry L1D MSHR file: %+v", h.Stats)
	}
	checkInvariant(t, h)
}

func TestStreamPrefetcherIgnoresRandom(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = true
	h := New(cfg)
	r := uint64(1)
	for i := 0; i < 64; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		cyc := uint64(1000 + i*1000)
		h.Tick(cyc)
		h.DataRequest(isa.Addr(0x2000_0000+r%(1<<24))&^63, cyc)
	}
	if h.Stats.StreamPrefetches > 16 {
		t.Errorf("random access pattern triggered %d stream prefetches", h.Stats.StreamPrefetches)
	}
	checkInvariant(t, h)
}

func TestCheckCountersRequiresDrain(t *testing.T) {
	h := New(testConfig())
	h.InstrRequest(ln(1), 100, false)
	if err := h.CheckCounters(); err == nil {
		t.Fatal("CheckCounters accepted in-flight fills without a drain")
	}
	h.Drain()
	if err := h.CheckCounters(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCountersMixedTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = true
	cfg.L2MSHRs = 4
	cfg.LLCMSHRs = 4
	cfg.L1DMSHRs = 4
	h := New(cfg)
	r := uint64(7)
	for i := 0; i < 400; i++ {
		cyc := uint64(10 + i*17)
		if i%3 == 0 {
			h.Tick(cyc) // partial, irregular draining
		}
		r = r*6364136223846793005 + 1442695040888963407
		switch i % 4 {
		case 0:
			h.InstrRequest(isa.Addr(0x40_0000+(r%(1<<18)))&^63, cyc, false)
		case 1:
			h.InstrRequest(isa.Addr(0x40_0000+(r%(1<<18)))&^63, cyc, true)
		case 2:
			h.DataRequest(isa.Addr(0x2000_0000+(r%(1<<20)))&^63, cyc)
		case 3:
			// Ascending stream region to exercise the stream prefetcher.
			h.DataRequest(isa.Addr(0x5000_0000+uint64(i/4)*64), cyc)
		}
	}
	checkInvariant(t, h)
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{LevelL1, LevelL2, LevelLLC, LevelDRAM, Level(9)} {
		if l.String() == "" {
			t.Errorf("empty string for level %d", l)
		}
	}
}

func TestReqKindString(t *testing.T) {
	for _, k := range []ReqKind{ReqInstrDemand, ReqInstrPrefetch, ReqDataDemand, ReqDataPrefetch, ReqKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	if !ReqInstrPrefetch.IsPrefetch() || !ReqDataPrefetch.IsPrefetch() ||
		ReqInstrDemand.IsPrefetch() || ReqDataDemand.IsPrefetch() {
		t.Error("IsPrefetch misclassifies")
	}
	if !ReqInstrDemand.IsInstr() || ReqDataDemand.IsInstr() {
		t.Error("IsInstr misclassifies")
	}
}
