package memory

import (
	"testing"

	"udpsim/internal/cache"
	"udpsim/internal/isa"
)

func testConfig() Config {
	return Config{
		L1D:             cache.Config{Name: "L1D", SizeBytes: 48 * 1024, Ways: 12, Policy: cache.LRU, HitLatency: 4},
		L2:              cache.Config{Name: "L2", SizeBytes: 512 * 1024, Ways: 8, Policy: cache.LRU},
		LLC:             cache.Config{Name: "LLC", SizeBytes: 2 * 1024 * 1024, Ways: 16, Policy: cache.LRU},
		L2Latency:       13,
		LLCLatency:      36,
		DRAMLatency:     150,
		DRAMBurstCycles: 10,
	}
}

func ln(i int) isa.Addr { return isa.Addr(0x400000 + i*isa.LineBytes) }

func TestInstrFillColdGoesToDRAM(t *testing.T) {
	h := New(testConfig())
	ready, level := h.InstrFill(ln(1), 100)
	if level != LevelDRAM {
		t.Fatalf("cold fill from %v", level)
	}
	// LLC latency + DRAM latency.
	if ready != 100+36+150 {
		t.Errorf("ready = %d, want %d", ready, 100+36+150)
	}
	if h.Stats.InstrDRAMFills != 1 {
		t.Errorf("stats %+v", h.Stats)
	}
}

func TestInstrFillHitsL2AfterFirstFill(t *testing.T) {
	h := New(testConfig())
	h.InstrFill(ln(1), 100)
	ready, level := h.InstrFill(ln(1), 500)
	if level != LevelL2 {
		t.Fatalf("refill from %v, want L2", level)
	}
	if ready != 500+13 {
		t.Errorf("ready = %d", ready)
	}
}

func TestInstrFillLLCPath(t *testing.T) {
	cfg := testConfig()
	// Tiny L2 so the line falls out of it but stays in the LLC.
	cfg.L2.SizeBytes = 2 * 64 * 2
	cfg.L2.Ways = 2
	h := New(cfg)
	h.InstrFill(ln(0), 1)
	// Blow the L2 (2 sets × 2 ways): four conflicting lines.
	for i := 1; i <= 8; i++ {
		h.InstrFill(ln(i*2), uint64(i*10)) // same-set stride for set 0
	}
	_, level := h.InstrFill(ln(0), 1000)
	if level != LevelLLC {
		t.Fatalf("fill from %v, want LLC", level)
	}
}

func TestDataAccessLevels(t *testing.T) {
	h := New(testConfig())
	lat, level := h.DataAccess(0x1000_0000, 10)
	if level != LevelDRAM {
		t.Fatalf("cold data access from %v", level)
	}
	if lat < 150 {
		t.Errorf("cold latency %d too small", lat)
	}
	lat, level = h.DataAccess(0x1000_0000, 400)
	if level != LevelL1 || lat != 4 {
		t.Fatalf("warm access: %d cycles from %v", lat, level)
	}
}

func TestDRAMQueueing(t *testing.T) {
	h := New(testConfig())
	// Two back-to-back cold fills: the second queues behind the first's
	// burst occupancy.
	r1, _ := h.InstrFill(ln(1), 100)
	r2, _ := h.InstrFill(ln(2), 100)
	if r2 <= r1 {
		t.Errorf("no queueing: %d then %d", r1, r2)
	}
	if r2-r1 != 10 {
		t.Errorf("queue delta = %d, want burst 10", r2-r1)
	}
	if h.Stats.DRAMQueueCycles == 0 {
		t.Error("queue cycles not recorded")
	}
}

func TestStreamPrefetcher(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = true
	cfg.StreamDistance = 4
	h := New(cfg)
	base := isa.Addr(0x2000_0000)
	// Walk an ascending line stream; after two stride hits the
	// prefetcher should run ahead.
	for i := 0; i < 8; i++ {
		h.DataAccess(base+isa.Addr(i*isa.LineBytes), uint64(i*100))
	}
	if h.Stats.StreamPrefetches == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	// The next line in the stream should now hit L1D.
	lat, level := h.DataAccess(base+isa.Addr(8*isa.LineBytes), 10_000)
	if level != LevelL1 {
		t.Errorf("stream next access from %v (lat %d), want L1", level, lat)
	}
}

func TestStreamPrefetcherIgnoresRandom(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = true
	h := New(cfg)
	r := uint64(1)
	for i := 0; i < 64; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		h.DataAccess(isa.Addr(0x2000_0000+r%(1<<24))&^63, uint64(i*50))
	}
	if h.Stats.StreamPrefetches > 16 {
		t.Errorf("random access pattern triggered %d stream prefetches", h.Stats.StreamPrefetches)
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{LevelL1, LevelL2, LevelLLC, LevelDRAM, Level(9)} {
		if l.String() == "" {
			t.Errorf("empty string for level %d", l)
		}
	}
}
