package memory

// This file is the unified request/complete path of the hierarchy. All
// traffic — L1I instruction fills (demand and FDIP/UDP/EIP prefetch),
// backend data demands, and stream data prefetches — walks the same
// L2 → LLC → DRAM pipeline, competing for the same MSHR files, fill
// ports and DRAM channel.

import (
	"fmt"

	"udpsim/internal/cache"
	"udpsim/internal/isa"
)

// InstrRequest issues an instruction-line fill on behalf of the L1I.
// ready is the cycle the line arrives at the L1I's fill buffer; level
// is the supplier (a level whose fill buffer absorbed the request
// reports that level). ok=false means the request was rejected under
// MSHR pressure: a demand must retry next cycle, a prefetch is dropped
// (both already counted in Stats).
//
// The caller owns the L1I and its MSHR file; it must have a free L1I
// MSHR before calling (the frontend checks Full() first) and installs
// the line into the L1I at its own completion sweep.
func (h *Hierarchy) InstrRequest(lineAddr isa.Addr, cycle uint64, prefetch bool) (ready uint64, level Level, ok bool) {
	kind := ReqInstrDemand
	if prefetch {
		kind = ReqInstrPrefetch
	}
	ready, level, ok = h.request(lineAddr, cycle, kind)
	if !ok {
		return 0, level, false
	}
	h.Stats.InstrFills++
	switch level {
	case LevelL2:
		h.Stats.InstrL2Hits++
	case LevelLLC:
		h.Stats.InstrLLCHits++
	default:
		h.Stats.InstrDRAMFills++
	}
	return ready, level, true
}

// DataRequest serves a demand load or store from the backend, returning
// the load-to-use latency in cycles. ok=false means the access was
// rejected under MSHR pressure and must be retried next cycle (already
// counted). Stores share the lookup path (write-allocate) but the
// backend retires them without waiting.
func (h *Hierarchy) DataRequest(addr isa.Addr, cycle uint64) (latency uint64, level Level, ok bool) {
	lineAddr := addr.Line()
	hitLat := uint64(h.cfg.L1D.HitLatency)
	if h.L1D.Access(lineAddr, cycle).Hit {
		h.Stats.DataAccesses++
		h.Stats.DataL1Hits++
		h.observeStream(lineAddr, cycle)
		return hitLat, LevelL1, true
	}
	if m := h.l1dm.Lookup(lineAddr); m != nil {
		// Fill-buffer hit: the line is in flight to the L1D; pay the
		// remainder (at least a hit's latency).
		h.Stats.DataAccesses++
		h.Stats.L1D.FillRequests++
		h.Stats.L1D.Merges++
		ready := h.l1dm.MergeDemand(m)
		lat := hitLat
		if ready > cycle && ready-cycle > lat {
			lat = ready - cycle
		}
		h.observeStream(lineAddr, cycle)
		return lat, LevelL1, true
	}
	h.Stats.L1D.FillRequests++
	if h.l1dm.Full() {
		h.Stats.L1D.Retries++
		h.l1dm.Stats.AllocFailures++
		h.memBackpressure(LevelL1, lineAddr, false)
		return 0, LevelL1, false
	}
	ready, level, ok := h.request(lineAddr, cycle, ReqDataDemand)
	if !ok {
		// Rejected downstream: the whole access retries, so this level's
		// fill request resolves as a retry too (conservation invariant).
		h.Stats.L1D.Retries++
		return 0, level, false
	}
	install := h.l1dFill.schedule(ready, &h.Stats.L1D)
	h.l1dm.Allocate(lineAddr, cycle, install, false, false)
	h.Stats.DataAccesses++
	switch level {
	case LevelL2:
		h.Stats.DataL2Hits++
	case LevelLLC:
		h.Stats.DataLLCHits++
	default:
		h.Stats.DataDRAMFills++
	}
	h.observeStream(lineAddr, cycle)
	// Data is forwarded to the core as it arrives (ready); the line
	// becomes visible in the L1D at its fill completion (install).
	return ready - cycle, level, true
}

// observeStream feeds the stream prefetcher after the demand itself has
// been served, so its prefetches never steal the demand's MSHR.
func (h *Hierarchy) observeStream(lineAddr isa.Addr, cycle uint64) {
	if h.spf != nil {
		h.spf.observe(h, lineAddr, cycle)
	}
}

// prefetchData issues a stream prefetch through the request path: it
// competes for the same MSHRs, fill ports and DRAM bandwidth as
// demands, and is dropped (counted) under pressure.
func (h *Hierarchy) prefetchData(lineAddr isa.Addr, cycle uint64) {
	if h.L1D.Lookup(lineAddr) || h.l1dm.Lookup(lineAddr) != nil {
		return
	}
	h.Stats.L1D.FillRequests++
	if h.l1dm.Full() {
		h.Stats.L1D.Drops++
		h.l1dm.Stats.AllocFailures++
		h.Stats.StreamPrefetchDrops++
		h.memBackpressure(LevelL1, lineAddr, true)
		return
	}
	ready, _, ok := h.request(lineAddr, cycle, ReqDataPrefetch)
	if !ok {
		h.Stats.L1D.Drops++
		h.Stats.StreamPrefetchDrops++
		return
	}
	install := h.l1dFill.schedule(ready, &h.Stats.L1D)
	h.l1dm.Allocate(lineAddr, cycle, install, true, false)
	h.Stats.StreamPrefetches++
}

// request walks the shared L2 → LLC → DRAM path for one line. ready is
// the cycle the line's data leaves the L2 toward the requester (the
// L1-side fill may add its own port delay on top). No state is mutated
// on a rejected request beyond the rejection counters, so callers can
// retry the identical request later.
func (h *Hierarchy) request(lineAddr isa.Addr, cycle uint64, kind ReqKind) (ready uint64, level Level, ok bool) {
	prefetch := kind.IsPrefetch()
	if h.L2.Access(lineAddr, cycle).Hit {
		return cycle + uint64(h.cfg.L2Latency), LevelL2, true
	}
	h.Stats.L2.FillRequests++
	if m := h.l2m.Lookup(lineAddr); m != nil {
		// Secondary miss: merge into the in-flight fill. The data is
		// readable one L2 access after it lands in the L2.
		h.Stats.L2.Merges++
		if prefetch {
			h.l2m.Stats.PrefetchMerges++
		} else {
			h.l2m.MergeDemand(m)
		}
		ready = m.ReadyCycle
		if cycle > ready {
			ready = cycle
		}
		return ready + uint64(h.cfg.L2Latency), LevelL2, true
	}
	if h.l2m.Full() {
		h.rejectAt(&h.Stats.L2, h.l2m, LevelL2, lineAddr, prefetch)
		return 0, LevelL2, false
	}

	// The L2 has an MSHR for us; find the data below.
	var dataAtL2 uint64
	switch {
	case h.LLC.Access(lineAddr, cycle).Hit:
		level = LevelLLC
		dataAtL2 = h.l2Fill.schedule(cycle+uint64(h.cfg.LLCLatency), &h.Stats.L2)
	default:
		h.Stats.LLC.FillRequests++
		if m := h.llcm.Lookup(lineAddr); m != nil {
			// Secondary miss at the LLC: ride the in-flight DRAM fill.
			h.Stats.LLC.Merges++
			if prefetch {
				h.llcm.Stats.PrefetchMerges++
			} else {
				h.llcm.MergeDemand(m)
			}
			level = LevelLLC
			base := cycle + uint64(h.cfg.LLCLatency)
			if m.ReadyCycle > base {
				base = m.ReadyCycle
			}
			dataAtL2 = h.l2Fill.schedule(base, &h.Stats.L2)
		} else {
			if h.llcm.Full() {
				h.rejectAt(&h.Stats.LLC, h.llcm, LevelLLC, lineAddr, prefetch)
				// The L2-side fill request resolves the same way.
				if prefetch {
					h.Stats.L2.Drops++
				} else {
					h.Stats.L2.Retries++
				}
				return 0, LevelLLC, false
			}
			arrival := cycle + uint64(h.cfg.LLCLatency)
			if prefetch && h.prefetchBacklog >= 0 && h.dram.backlog(arrival) > h.prefetchBacklog {
				// Memory-controller prefetch throttling: a prefetch that
				// would queue behind a deep DRAM backlog is dropped rather
				// than delaying demands further (it would arrive too late
				// to be timely anyway).
				h.Stats.DRAMPrefetchDrops++
				h.Stats.LLC.Drops++
				h.Stats.L2.Drops++
				h.memBackpressure(LevelDRAM, lineAddr, true)
				return 0, LevelDRAM, false
			}
			level = LevelDRAM
			dramDone := h.dram.access(arrival, &h.Stats)
			dataAtLLC := h.llcFill.schedule(dramDone, &h.Stats.LLC)
			h.llcm.Allocate(lineAddr, cycle, dataAtLLC, prefetch, false)
			dataAtL2 = h.l2Fill.schedule(dataAtLLC, &h.Stats.L2)
		}
	}
	h.l2m.Allocate(lineAddr, cycle, dataAtL2, prefetch, false)
	return dataAtL2, level, true
}

// rejectAt records an MSHR-full rejection at one level.
func (h *Hierarchy) rejectAt(ls *LevelStats, f *cache.MSHRFile, level Level, lineAddr isa.Addr, prefetch bool) {
	if prefetch {
		ls.Drops++
	} else {
		ls.Retries++
	}
	f.Stats.AllocFailures++
	h.memBackpressure(level, lineAddr, prefetch)
}

// memBackpressure emits the observability event for a rejected request.
func (h *Hierarchy) memBackpressure(level Level, lineAddr isa.Addr, prefetch bool) {
	if h.Obs != nil {
		h.Obs.MemBackpressure(uint64(level), uint64(lineAddr), prefetch)
	}
}

// Tick completes fills whose data has arrived by cycle: lines become
// visible in the LLC, L2 and L1D only now. The sim driver calls it once
// per machine cycle before the frontend and backend run; it is
// idempotent within a cycle. LLC completes before L2 before L1D so a
// multi-level fill chain lands coherently when their cycles coincide.
func (h *Hierarchy) Tick(cycle uint64) {
	h.llcm.Completed(cycle, func(m cache.MSHR) {
		isPrefetch := m.Prefetch && !m.DemandMerged
		h.LLC.Insert(m.LineAddr, cycle, isPrefetch)
		h.Stats.LLC.Fills++
		if m.Prefetch {
			h.Stats.LLC.PrefetchFills++
		}
		h.fillComplete(LevelLLC, m.LineAddr, m.Prefetch)
	})
	h.l2m.Completed(cycle, func(m cache.MSHR) {
		isPrefetch := m.Prefetch && !m.DemandMerged
		h.L2.Insert(m.LineAddr, cycle, isPrefetch)
		h.Stats.L2.Fills++
		if m.Prefetch {
			h.Stats.L2.PrefetchFills++
		}
		h.fillComplete(LevelL2, m.LineAddr, m.Prefetch)
	})
	h.l1dm.Completed(cycle, func(m cache.MSHR) {
		isPrefetch := m.Prefetch && !m.DemandMerged
		h.L1D.Insert(m.LineAddr, cycle, isPrefetch)
		h.Stats.L1D.Fills++
		if m.Prefetch {
			h.Stats.L1D.PrefetchFills++
		}
		h.fillComplete(LevelL1, m.LineAddr, m.Prefetch)
	})
}

// fillComplete emits the observability event for a completed fill.
func (h *Hierarchy) fillComplete(level Level, lineAddr isa.Addr, prefetch bool) {
	if h.Obs != nil {
		h.Obs.FillComplete(uint64(level), uint64(lineAddr), prefetch)
	}
}

// Drain completes every in-flight fill regardless of cycle (end of run
// and invariant tests).
func (h *Hierarchy) Drain() {
	h.Tick(^uint64(0))
}

// CheckCounters verifies the request-path conservation invariant at
// every level after a Drain on a hierarchy whose stats were never reset
// mid-flight:
//
//	Fills == FillRequests − Merges − Drops − Retries
//
// and that no fill is still pending. It returns a descriptive error on
// the first violation.
func (h *Hierarchy) CheckCounters() error {
	type lvl struct {
		name string
		ls   *LevelStats
		f    *cache.MSHRFile
	}
	for _, l := range []lvl{
		{"L1D", &h.Stats.L1D, h.l1dm},
		{"L2", &h.Stats.L2, h.l2m},
		{"LLC", &h.Stats.LLC, h.llcm},
	} {
		if occ := l.f.Occupancy(); occ != 0 {
			return fmt.Errorf("memory: %s has %d fills still in flight (call Drain first)", l.name, occ)
		}
		supplied := l.ls.Fills
		expected := l.ls.FillRequests - l.ls.Merges - l.ls.Drops - l.ls.Retries
		if supplied != expected {
			return fmt.Errorf("memory: %s fill conservation violated: fills %d != requests %d − merges %d − drops %d − retries %d = %d",
				l.name, supplied, l.ls.FillRequests, l.ls.Merges, l.ls.Drops, l.ls.Retries, expected)
		}
		if l.f.Stats.Completions != l.f.Stats.Allocations {
			return fmt.Errorf("memory: %s MSHR completions %d != allocations %d after drain",
				l.name, l.f.Stats.Completions, l.f.Stats.Allocations)
		}
	}
	return nil
}
