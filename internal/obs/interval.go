package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// IntervalSample is one row of the per-interval time series: a
// snapshot of the machine's headline rates over the last Interval
// cycles plus running totals, stamped with the run tags so samples
// from many concurrently simulating machines can share one sink.
type IntervalSample struct {
	// Run tags (copied from the Observer).
	Workload  string `json:"workload"`
	Mechanism string `json:"mechanism"`
	Salt      uint64 `json:"salt"`

	// Cycle is the machine cycle at which the interval closed.
	Cycle uint64 `json:"cycle"`

	// Retired is the number of instructions retired in this interval;
	// RetiredTotal is the running post-warmup total. Summing Retired
	// over all samples of a run reproduces Result.Instructions.
	Retired      uint64 `json:"retired"`
	RetiredTotal uint64 `json:"retired_total"`

	// IPC is the interval-local retired/cycles ratio.
	IPC float64 `json:"ipc"`
	// IcacheMPKI is the interval-local icache demand misses per kilo
	// instruction (0 when no instruction retired this interval).
	IcacheMPKI float64 `json:"icache_mpki"`
	// FTQDepth is the logical FTQ capacity at sample time (the knob
	// UFTQ tunes); FTQOcc is the instantaneous occupancy.
	FTQDepth int `json:"ftq_depth"`
	FTQOcc   int `json:"ftq_occ"`
	// Accuracy is the interval-local prefetch accuracy (useful /
	// emitted), NaN-free: 0 when nothing was emitted.
	Accuracy float64 `json:"accuracy"`
	// Emitted is the number of prefetches emitted this interval.
	Emitted uint64 `json:"emitted"`

	// Memory-system pressure over this interval (request-based
	// hierarchy). DRAMQueueCycles is the total cycles requests waited
	// behind the busy DRAM channel; FillQueueCycles the same for the
	// per-level fill ports; DemandRetries counts demand requests
	// rejected under MSHR pressure (each retried the next cycle);
	// PrefetchDrops counts prefetches dropped under MSHR pressure.
	DRAMQueueCycles uint64 `json:"dram_queue_cycles"`
	FillQueueCycles uint64 `json:"fill_queue_cycles"`
	DemandRetries   uint64 `json:"demand_retries"`
	PrefetchDrops   uint64 `json:"prefetch_drops"`
}

// csvHeader is the column order of the CSV metrics format.
var csvHeader = []string{
	"workload", "mechanism", "salt", "cycle",
	"retired", "retired_total", "ipc", "icache_mpki",
	"ftq_depth", "ftq_occ", "accuracy", "emitted",
	"dram_queue_cycles", "fill_queue_cycles", "demand_retries", "prefetch_drops",
}

// CSVRecord renders the sample as CSV fields in csvHeader order.
func (s IntervalSample) CSVRecord() []string {
	return []string{
		s.Workload, s.Mechanism,
		fmt.Sprintf("%d", s.Salt), fmt.Sprintf("%d", s.Cycle),
		fmt.Sprintf("%d", s.Retired), fmt.Sprintf("%d", s.RetiredTotal),
		fmt.Sprintf("%.6f", s.IPC), fmt.Sprintf("%.6f", s.IcacheMPKI),
		fmt.Sprintf("%d", s.FTQDepth), fmt.Sprintf("%d", s.FTQOcc),
		fmt.Sprintf("%.6f", s.Accuracy), fmt.Sprintf("%d", s.Emitted),
		fmt.Sprintf("%d", s.DRAMQueueCycles), fmt.Sprintf("%d", s.FillQueueCycles),
		fmt.Sprintf("%d", s.DemandRetries), fmt.Sprintf("%d", s.PrefetchDrops),
	}
}

// MetricsFormat selects the on-disk encoding of a MetricsWriter.
type MetricsFormat int

const (
	// FormatCSV writes a header row then one comma-separated row per
	// sample.
	FormatCSV MetricsFormat = iota
	// FormatJSONL writes one JSON object per line.
	FormatJSONL
)

// FormatForPath picks CSV for .csv paths and JSONL for .jsonl/.json,
// defaulting to CSV.
func FormatForPath(path string) MetricsFormat {
	switch {
	case strings.HasSuffix(path, ".jsonl"), strings.HasSuffix(path, ".json"):
		return FormatJSONL
	default:
		return FormatCSV
	}
}

// MetricsWriter serializes interval samples from concurrently running
// machines into one CSV or JSONL stream. All methods are safe for
// concurrent use; wrap Write in an Observer's OnSample to stream a
// live time series during long sweeps.
type MetricsWriter struct {
	mu      sync.Mutex
	w       io.Writer
	format  MetricsFormat
	wroteHd bool
	err     error
	rows    uint64
}

// NewMetricsWriter wraps w. The header row (CSV) is emitted lazily on
// the first sample.
func NewMetricsWriter(w io.Writer, format MetricsFormat) *MetricsWriter {
	return &MetricsWriter{w: w, format: format}
}

// Write appends one sample. The first error is sticky and returned by
// every subsequent call (and by Err).
func (m *MetricsWriter) Write(s IntervalSample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	switch m.format {
	case FormatJSONL:
		b, err := json.Marshal(s)
		if err != nil {
			m.err = err
			return err
		}
		b = append(b, '\n')
		if _, err := m.w.Write(b); err != nil {
			m.err = err
			return err
		}
	default:
		if !m.wroteHd {
			if _, err := io.WriteString(m.w, strings.Join(csvHeader, ",")+"\n"); err != nil {
				m.err = err
				return err
			}
			m.wroteHd = true
		}
		if _, err := io.WriteString(m.w, strings.Join(s.CSVRecord(), ",")+"\n"); err != nil {
			m.err = err
			return err
		}
	}
	m.rows++
	return nil
}

// WriteSamples appends a batch (the buffered-Observer drain path).
func (m *MetricsWriter) WriteSamples(samples []IntervalSample) error {
	for _, s := range samples {
		if err := m.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns how many samples have been written.
func (m *MetricsWriter) Rows() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rows
}

// Err returns the sticky first write error, if any.
func (m *MetricsWriter) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}
