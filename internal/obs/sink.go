package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file renders recorded events into external trace formats:
//
//   - Chrome trace-event JSON ("{"traceEvents":[...]}"), loadable in
//     Perfetto / chrome://tracing. Cycles are mapped 1:1 onto the
//     format's microsecond timestamps, so 1 "µs" in the viewer is one
//     simulated cycle.
//   - JSONL: one raw Event object per line, for ad-hoc jq/pandas work.
//
// Event mapping into the Chrome format:
//
//   - EvPrefetchArrived becomes a complete ("X") slice from the emit
//     cycle to the fill cycle on a per-line-address track, making fill
//     latency visible as slice length.
//   - EvPrefetchHit with a non-zero wait becomes a complete slice of
//     the demand stall.
//   - EvFTQResize and EvUFTQWindow become counter ("C") tracks (FTQ
//     depth over time; utility/timeliness per-mille over time) — the
//     Fig. 8 convergence picture.
//   - Everything else becomes an instant ("i") event.

// chromeEvent is one trace-event record. Only the fields the viewers
// actually read are emitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// TraceRegion is one machine's worth of events plus its identifying
// tags; each region becomes a pid in the Chrome trace so parallel
// simpoint regions stay separable in the viewer.
type TraceRegion struct {
	Workload  string
	Mechanism string
	Region    int
	Events    []Event
}

// WriteChromeTrace renders regions as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, regions []TraceRegion) error {
	trace := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, 256),
		Metadata:    map[string]any{"clock": "simulated-cycles-as-us"},
	}
	for i, r := range regions {
		pid := i + 1
		name := fmt.Sprintf("%s/%s region %d", r.Workload, r.Mechanism, r.Region)
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		for _, e := range r.Events {
			trace.TraceEvents = append(trace.TraceEvents, chromeFromEvent(pid, e))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// chromeFromEvent maps one typed event onto a trace-event record.
func chromeFromEvent(pid int, e Event) chromeEvent {
	switch e.Kind {
	case EvPrefetchArrived:
		// Complete slice from emit to fill; tid by line address so
		// overlapping fills land on distinct tracks.
		start := e.A
		if start > e.Cycle {
			start = e.Cycle
		}
		return chromeEvent{
			Name: "prefetch-fill", Phase: "X", TS: start, Dur: e.Cycle - start,
			PID: pid, TID: 1 + e.Addr%64,
			Args: map[string]any{"line": fmt.Sprintf("%#x", e.Addr), "merged": e.B == 1},
		}
	case EvPrefetchHit:
		if e.A > 0 {
			return chromeEvent{
				Name: "demand-wait", Phase: "X", TS: e.Cycle - e.A, Dur: e.A,
				PID: pid, TID: 1 + e.Addr%64,
				Args: map[string]any{"line": fmt.Sprintf("%#x", e.Addr), "fill_buffer": e.B == 1},
			}
		}
		return chromeEvent{
			Name: "prefetch-hit", Phase: "i", TS: e.Cycle, PID: pid, TID: 0, Scope: "t",
			Args: map[string]any{"line": fmt.Sprintf("%#x", e.Addr)},
		}
	case EvFTQResize:
		return chromeEvent{
			Name: "ftq-depth", Phase: "C", TS: e.Cycle, PID: pid,
			Args: map[string]any{"depth": e.B},
		}
	case EvUFTQWindow:
		return chromeEvent{
			Name: "uftq-window", Phase: "C", TS: e.Cycle, PID: pid,
			Args: map[string]any{
				"utility_pm":    e.A,
				"timeliness_pm": e.B,
			},
		}
	default:
		return chromeEvent{
			Name: e.Kind.String(), Phase: "i", TS: e.Cycle, PID: pid, TID: 0, Scope: "t",
			Args: eventArgs(e),
		}
	}
}

func eventArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.Addr != 0 {
		args["addr"] = fmt.Sprintf("%#x", e.Addr)
	}
	if e.A != 0 {
		args["a"] = e.A
	}
	if e.B != 0 {
		args["b"] = e.B
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// jsonlEvent is the JSONL rendering of an Event with symbolic kind.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Addr  uint64 `json:"addr,omitempty"`
	A     uint64 `json:"a,omitempty"`
	B     uint64 `json:"b,omitempty"`
}

// WriteJSONL renders events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(jsonlEvent{
			Cycle: e.Cycle, Kind: e.Kind.String(), Addr: e.Addr, A: e.A, B: e.B,
		}); err != nil {
			return err
		}
	}
	return nil
}
