package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace ID lengths %d, %d; want 32", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two trace IDs collided: %s", a)
	}
	for _, c := range a {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("non-hex char %q in trace ID %s", c, a)
		}
	}
}

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(3)
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		r.Record(Span{Name: string(rune('a' + i)), Start: base.Add(time.Duration(i) * time.Second)})
	}
	got := r.Spans()
	if len(got) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(got))
	}
	// Oldest-first: the two earliest spans were evicted.
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Name != want {
			t.Fatalf("span[%d] = %q, want %q", i, got[i].Name, want)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", r.Dropped())
	}

	var nilRec *SpanRecorder
	nilRec.Record(Span{Name: "x"}) // must not panic
	if nilRec.Spans() != nil || nilRec.Dropped() != 0 {
		t.Fatal("nil recorder should be inert")
	}
}

func TestSpanDurationUS(t *testing.T) {
	s := Span{Start: time.Unix(0, 0), End: time.Unix(0, 2500)}
	if got := s.DurationUS(); got != 2 {
		t.Fatalf("DurationUS = %d, want 2", got)
	}
	backwards := Span{Start: time.Unix(10, 0), End: time.Unix(5, 0)}
	if got := backwards.DurationUS(); got != 0 {
		t.Fatalf("negative span DurationUS = %d, want 0", got)
	}
}

// TestWriteChromeSpans checks the Perfetto export: one pid per trace
// with a process_name record, overlapping spans on distinct tid lanes,
// sequential spans reusing a lane, and µs timestamps relative to the
// earliest span.
func TestWriteChromeSpans(t *testing.T) {
	base := time.Unix(2000, 0)
	at := func(startMS, endMS int) (time.Time, time.Time) {
		return base.Add(time.Duration(startMS) * time.Millisecond),
			base.Add(time.Duration(endMS) * time.Millisecond)
	}
	mk := func(trace, name string, startMS, endMS int) Span {
		s, e := at(startMS, endMS)
		return Span{Trace: trace, Name: name, Start: s, End: e}
	}
	spans := []Span{
		mk("t1", "queue-wait", 0, 10),
		mk("t1", "warmup", 10, 20),  // sequential: may share the lane
		mk("t1", "measure", 15, 30), // overlaps warmup: needs its own lane
		mk("t2", "queue-wait", 5, 8),
	}

	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatalf("WriteChromeSpans: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			PID   int            `json:"pid"`
			TID   uint64         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}

	pids := map[string]int{} // trace name -> pid, from process_name records
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata record %q", ev.Name)
			}
			pids[ev.Args["name"].(string)] = ev.PID
		case "X":
			byName[ev.Name+"/"+strconv.Itoa(ev.PID)] = i
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 process_name records (one per trace), got %v", pids)
	}
	if pids["trace t1"] == pids["trace t2"] {
		t.Fatal("traces t1 and t2 share a pid")
	}

	find := func(name string, pid int) (ts, dur, tid uint64) {
		i, ok := byName[name+"/"+strconv.Itoa(pid)]
		if !ok {
			t.Fatalf("span %q pid %d missing from export", name, pid)
		}
		ev := out.TraceEvents[i]
		return ev.TS, ev.Dur, ev.TID
	}
	p1 := pids["trace t1"]
	qwTS, qwDur, qwTID := find("queue-wait", p1)
	if qwTS != 0 || qwDur != 10_000 {
		t.Fatalf("queue-wait ts=%d dur=%d, want 0 and 10000 µs", qwTS, qwDur)
	}
	_, _, wuTID := find("warmup", p1)
	_, _, msTID := find("measure", p1)
	if wuTID != qwTID {
		t.Fatalf("sequential spans should reuse lane: warmup tid %d, queue-wait tid %d", wuTID, qwTID)
	}
	if msTID == wuTID {
		t.Fatal("overlapping spans packed onto the same lane")
	}
	if clock := out.Metadata["clock"]; clock != "wall-us-since-first-span" {
		t.Fatalf("metadata clock = %v", clock)
	}

	// Empty input still renders a valid (empty) trace document.
	buf.Reset()
	if err := WriteChromeSpans(&buf, nil); err != nil {
		t.Fatalf("empty WriteChromeSpans: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty export invalid JSON: %v", err)
	}
}

func TestWriteSpanJSONL(t *testing.T) {
	var buf bytes.Buffer
	spans := []Span{
		{Trace: "t", Name: "a", Start: time.Unix(1, 0), End: time.Unix(2, 0)},
		{Trace: "t", Name: "b", Start: time.Unix(2, 0), End: time.Unix(3, 0)},
	}
	if err := WriteSpanJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	for _, l := range lines {
		var s Span
		if err := json.Unmarshal(l, &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", l, err)
		}
	}
}
