package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebugStopReleasesListener checks the ISSUE's leak fix: the
// returned stop function actually closes the listener and joins the
// serve goroutine, so the port is immediately reusable.
func TestServeDebugStopReleasesListener(t *testing.T) {
	addr, stop, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}

	// The default mux must carry /metrics with the typed registry.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		stop()
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		stop()
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		stop()
		t.Fatalf("GET /metrics content-type %q", ct)
	}
	if !strings.Contains(string(body), "udpsimd_http_in_flight_requests") {
		stop()
		t.Fatal("exposition missing typed registry series")
	}

	stop()

	// The address is free again: a second ServeDebug on the same port
	// must bind (the old code leaked the listener forever).
	addr2, stop2, err := ServeDebug(addr, nil)
	if err != nil {
		t.Fatalf("rebinding %s after stop: %v", addr, err)
	}
	defer stop2()
	if addr2 != addr {
		t.Fatalf("rebound to %s, want %s", addr2, addr)
	}
}
