package obs

import "testing"

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for c := uint64(0); c < 6; c++ {
		tr.Record(Event{Cycle: c, Kind: EvResteer})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("Events len = %d, want 4", len(ev))
	}
	// Oldest two (cycles 0, 1) were overwritten; record order preserved.
	for i, e := range ev {
		if want := uint64(i + 2); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if got := cap(tr.events); got != DefaultTracerCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTracerCapacity)
	}
}

func TestEventKindString(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'e' && s != "event" {
			// All defined kinds must have symbolic names.
			if len(s) > 6 && s[:6] == "event(" {
				t.Errorf("kind %d has no symbolic name", k)
			}
		}
	}
	if got := EventKind(250).String(); got != "event(250)" {
		t.Errorf("unknown kind = %q", got)
	}
}

// TestObserverHooksWithoutSinks exercises every hook on an observer with
// no tracer and no lifecycle attached: the enabled-but-empty observer
// must be a safe no-op.
func TestObserverHooksWithoutSinks(t *testing.T) {
	o := &Observer{}
	o.SetNow(100)
	o.PrefetchEmitted(0x40, false)
	o.PrefetchArrived(0x40, 50, false, false)
	o.PrefetchHit(0x40, 0, false)
	o.PrefetchEvicted(0x40, true)
	o.FTQResize(32, 48)
	o.UFTQWindow(48, 0.9, 0.8)
	o.UDPLearn(0x80)
	o.UDPDrop(0xc0)
	o.Resteer()
	o.Recovery(17)
	if o.Now() != 100 {
		t.Fatalf("Now = %d, want 100", o.Now())
	}
}

func TestObserverHooksRecordAndTrack(t *testing.T) {
	o := &Observer{Trace: NewTracer(64), Life: NewLifecycle()}
	o.SetNow(10)
	o.PrefetchEmitted(0x100, false)
	o.SetNow(60)
	o.PrefetchArrived(0x100, 10, false, false)
	o.SetNow(90)
	o.PrefetchHit(0x100, 0, false) // timely icache hit, 30 cycles after fill

	o.SetNow(100)
	o.PrefetchEmitted(0x200, true)
	o.SetNow(150)
	o.PrefetchArrived(0x200, 100, true, false)
	o.SetNow(160)
	o.PrefetchEvicted(0x200, true) // never used

	byKind := o.Trace.CountByKind()
	for kind, want := range map[string]int{
		"prefetch-emitted": 2, "prefetch-arrived": 2,
		"prefetch-hit": 1, "prefetch-evicted": 1,
	} {
		if byKind[kind] != want {
			t.Errorf("%s events = %d, want %d", kind, byKind[kind], want)
		}
	}

	s := o.Life.Summary()
	if !s.Tracked {
		t.Fatal("summary not tracked")
	}
	if s.Emitted != 2 || s.Filled != 2 || s.FirstUses != 1 ||
		s.TimelyUses != 1 || s.LateUses != 0 || s.EvictedUnused != 1 {
		t.Fatalf("summary counts = %+v", s)
	}
	if s.EmitToFillMean != 50 { // both fills took 50 cycles
		t.Errorf("EmitToFillMean = %v, want 50", s.EmitToFillMean)
	}
	if o.Life.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", o.Life.Pending())
	}
}

func TestLifecycleLateUseAndReset(t *testing.T) {
	l := NewLifecycle()
	o := &Observer{Life: l}
	o.SetNow(10)
	o.PrefetchEmitted(0x40, false)
	o.SetNow(40)
	o.PrefetchHit(0x40, 25, true) // fill-buffer hit: demand waited 25 cycles
	s := l.Summary()
	if s.LateUses != 1 || s.TimelyUses != 0 {
		t.Fatalf("late/timely = %d/%d, want 1/0", s.LateUses, s.TimelyUses)
	}
	if got := s.LateRatio(); got != 1 {
		t.Fatalf("LateRatio = %v, want 1", got)
	}
	l.Reset()
	s = l.Summary()
	if s.Emitted != 0 || s.FirstUses != 0 || s.LateUses != 0 {
		t.Fatalf("post-Reset summary = %+v", s)
	}
	if s.LateRatio() != 0 {
		t.Fatalf("post-Reset LateRatio = %v, want 0", s.LateRatio())
	}
}

func TestLifecycleSummaryMerge(t *testing.T) {
	mk := func(wait uint64) LifecycleSummary {
		l := NewLifecycle()
		o := &Observer{Life: l}
		o.SetNow(10)
		o.PrefetchEmitted(0x40, false)
		o.SetNow(30)
		o.PrefetchArrived(0x40, 10, false, false)
		o.SetNow(50)
		o.PrefetchHit(0x40, wait, wait > 0)
		return l.Summary()
	}
	a, b := mk(0), mk(40)
	m := a.Merge(b)
	if m.Emitted != 2 || m.Filled != 2 || m.FirstUses != 2 {
		t.Fatalf("merged counts = %+v", m)
	}
	if m.TimelyUses != 1 || m.LateUses != 1 {
		t.Fatalf("merged timely/late = %d/%d, want 1/1", m.TimelyUses, m.LateUses)
	}
	if m.EmitToFillMean != 20 {
		t.Errorf("merged EmitToFillMean = %v, want 20", m.EmitToFillMean)
	}
	// Merging with an untracked summary returns the tracked side.
	if got := (LifecycleSummary{}).Merge(a); !got.Tracked || got.Emitted != a.Emitted {
		t.Errorf("untracked.Merge(tracked) = %+v", got)
	}
	if got := a.Merge(LifecycleSummary{}); !got.Tracked || got.Emitted != a.Emitted {
		t.Errorf("tracked.Merge(untracked) = %+v", got)
	}
}

// TestHooksDoNotAllocate guards the zero-allocation claim for the
// enabled-observer paths that run on every simulated cycle: recording
// into a pre-sized ring and lifecycle counters must not allocate (the
// fully disabled path — nil *Observer — is a nil check at the call site
// and never reaches this package).
func TestHooksDoNotAllocate(t *testing.T) {
	bare := &Observer{}
	if allocs := testing.AllocsPerRun(1000, func() {
		bare.SetNow(1)
		bare.PrefetchEmitted(0x40, false)
		bare.FTQResize(32, 48)
		bare.Resteer()
		bare.Recovery(10)
	}); allocs != 0 {
		t.Errorf("sink-less hooks allocate %.1f per run, want 0", allocs)
	}

	traced := &Observer{Trace: NewTracer(1 << 12)}
	for i := 0; i < 1<<12; i++ {
		traced.Resteer() // pre-fill the ring so Record overwrites in place
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		traced.PrefetchEmitted(0x40, false)
		traced.FTQResize(32, 48)
		traced.Recovery(10)
	}); allocs != 0 {
		t.Errorf("ring-recording hooks allocate %.1f per run, want 0", allocs)
	}
}

func TestAddSampleBufferAndStream(t *testing.T) {
	o := &Observer{}
	o.AddSample(IntervalSample{Cycle: 1})
	o.AddSample(IntervalSample{Cycle: 2})
	if got := len(o.Samples()); got != 2 {
		t.Fatalf("buffered samples = %d, want 2", got)
	}
	o.ResetSamples()
	if got := len(o.Samples()); got != 0 {
		t.Fatalf("samples after reset = %d, want 0", got)
	}

	var streamed []IntervalSample
	o = &Observer{OnSample: func(s IntervalSample) { streamed = append(streamed, s) }}
	o.AddSample(IntervalSample{Cycle: 3})
	if len(streamed) != 1 || len(o.Samples()) != 0 {
		t.Fatalf("streamed = %d buffered = %d, want 1/0", len(streamed), len(o.Samples()))
	}
}
