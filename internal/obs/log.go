package obs

import (
	"expvar"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
)

// NewLogger builds the structured progress logger shared by the cmds:
// slog text output to w, debug level when verbose. Replaces the old
// ad-hoc fmt.Fprintf(os.Stderr, ...) progress lines.
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ServeDebug starts the live diagnostics HTTP server on addr (e.g.
// ":6060") in a background goroutine and returns the bound address.
// The default mux carries /debug/pprof (CPU/heap/goroutine profiles of
// a long sweep) and /debug/vars (expvar: the experiment engine's
// result-cache hit rates and grid-cell progress). Returns an error
// only if the listener cannot be opened; serving errors after startup
// are logged and dropped.
func ServeDebug(addr string, log *slog.Logger) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		err := http.Serve(ln, nil) // default mux: pprof + expvar
		if log != nil {
			log.Debug("debug server exited", "addr", ln.Addr().String(), "err", err)
		}
	}()
	if log != nil {
		log.Info("debug server listening",
			"pprof", "http://"+ln.Addr().String()+"/debug/pprof/",
			"expvar", "http://"+ln.Addr().String()+"/debug/vars")
	}
	return ln.Addr().String(), nil
}

// Expvar counter handles published by the experiments engine. They
// live here (not in internal/experiments) so the obs package owns the
// full observability surface and the engine only increments.
var (
	// CacheHits counts result-cache hits (identical grid cells
	// deduplicated across figures).
	CacheHits = expvar.NewInt("udpsim.cache.hits")
	// CacheMisses counts result-cache misses (actual simulations).
	CacheMisses = expvar.NewInt("udpsim.cache.misses")
	// CacheInflightWaits counts joins onto an in-flight identical run.
	CacheInflightWaits = expvar.NewInt("udpsim.cache.inflight_waits")
	// JobsTotal / JobsDone track grid-cell progress of the current
	// experiment run.
	JobsTotal = expvar.NewInt("udpsim.jobs.total")
	JobsDone  = expvar.NewInt("udpsim.jobs.done")
)
