package obs

import (
	"expvar"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
)

// NewLogger builds the structured progress logger shared by the cmds:
// slog text output to w, debug level when verbose. Replaces the old
// ad-hoc fmt.Fprintf(os.Stderr, ...) progress lines.
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// metricsOnce guards /metrics registration on the default mux: cmds
// may call ServeDebug more than once across tests, and http.HandleFunc
// panics on duplicate patterns.
var metricsOnce sync.Once

// RegisterMetricsHandler mounts the process-wide Metrics registry at
// /metrics on the default mux (idempotent).
func RegisterMetricsHandler() {
	metricsOnce.Do(func() {
		http.Handle("/metrics", Metrics.Handler())
	})
}

// ServeDebug starts the live diagnostics HTTP server on addr (e.g.
// ":6060") in a background goroutine and returns the bound address and
// a stop function. The default mux carries /debug/pprof (CPU/heap/
// goroutine profiles of a long sweep), /debug/vars (expvar: the
// experiment engine's result-cache hit rates and grid-cell progress)
// and /metrics (Prometheus text exposition of the typed registry plus
// bridged expvars). Returns an error only if the listener cannot be
// opened; serving errors after startup are logged and dropped. The
// stop function closes the listener and waits for the serve goroutine
// to exit, so tests and short-lived cmds don't leak either.
func ServeDebug(addr string, log *slog.Logger) (string, func(), error) {
	RegisterMetricsHandler()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := http.Serve(ln, nil) // default mux: pprof + expvar + metrics
		if log != nil {
			log.Debug("debug server exited", "addr", ln.Addr().String(), "err", err)
		}
	}()
	if log != nil {
		log.Info("debug server listening",
			"pprof", "http://"+ln.Addr().String()+"/debug/pprof/",
			"expvar", "http://"+ln.Addr().String()+"/debug/vars",
			"metrics", "http://"+ln.Addr().String()+"/metrics")
	}
	stop := func() {
		ln.Close()
		<-done
	}
	return ln.Addr().String(), stop, nil
}

// Expvar counter handles published by the experiments engine. They
// live here (not in internal/experiments) so the obs package owns the
// full observability surface and the engine only increments.
var (
	// CacheHits counts result-cache hits (identical grid cells
	// deduplicated across figures).
	CacheHits = expvar.NewInt("udpsim.cache.hits")
	// CacheMisses counts result-cache misses (actual simulations).
	CacheMisses = expvar.NewInt("udpsim.cache.misses")
	// CacheInflightWaits counts joins onto an in-flight identical run.
	CacheInflightWaits = expvar.NewInt("udpsim.cache.inflight_waits")
	// JobsTotal / JobsDone track grid-cell progress of the current
	// experiment run.
	JobsTotal = expvar.NewInt("udpsim.jobs.total")
	JobsDone  = expvar.NewInt("udpsim.jobs.done")

	// Persistent result-store traffic (the disk-backed store the engine
	// cache reads through when one is installed; see
	// experiments.SetResultStore). StoreHits are in-memory misses served
	// from disk without simulating; StoreMisses are probes that fell
	// through to a real simulation; StoreWrites are successful
	// write-backs; StoreErrors are store I/O failures (treated as
	// misses); StoreQuarantined counts corrupt records moved aside
	// instead of being served.
	StoreHits        = expvar.NewInt("udpsim.store.hits")
	StoreMisses      = expvar.NewInt("udpsim.store.misses")
	StoreWrites      = expvar.NewInt("udpsim.store.writes")
	StoreErrors      = expvar.NewInt("udpsim.store.errors")
	StoreQuarantined = expvar.NewInt("udpsim.store.quarantined")
)

// Daemon (udpsimd) job-queue counters, published here so the whole
// observability surface lives in one package and /debug/vars carries
// engine-cache, store and queue health side by side.
var (
	// DaemonJobsSubmitted counts accepted POST /v1/jobs submissions
	// (including ones deduplicated onto an existing job).
	DaemonJobsSubmitted = expvar.NewInt("udpsimd.jobs.submitted")
	// DaemonJobsDeduped counts submissions that attached to an
	// already-queued, running or completed identical job instead of
	// enqueuing a new one (cross-client singleflight).
	DaemonJobsDeduped = expvar.NewInt("udpsimd.jobs.deduped")
	// DaemonJobsRejected counts submissions refused by admission
	// control (bounded queue full → HTTP 429, or draining → 503).
	DaemonJobsRejected  = expvar.NewInt("udpsimd.jobs.rejected")
	DaemonJobsCompleted = expvar.NewInt("udpsimd.jobs.completed")
	DaemonJobsFailed    = expvar.NewInt("udpsimd.jobs.failed")
	DaemonJobsCanceled  = expvar.NewInt("udpsimd.jobs.canceled")
	// DaemonJobsCoalesced counts queued jobs absorbed into another
	// job's lockstep-batched run because they share a workload image.
	DaemonJobsCoalesced = expvar.NewInt("udpsimd.jobs.coalesced")
	// DaemonQueueDepth is the instantaneous number of queued (not yet
	// running) jobs.
	DaemonQueueDepth = expvar.NewInt("udpsimd.queue.depth")
)
