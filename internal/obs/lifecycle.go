package obs

import (
	"fmt"

	"udpsim/internal/stats"
)

// Lifecycle stamps every prefetch with its emit, fill-complete and
// first-use cycles and accumulates three cycle-accurate distributions:
//
//   - EmitToFill: memory-side fill latency of prefetches (emit → data
//     arrival), the budget FDIP's runahead must cover.
//   - FillToUse: how long a timely prefetch sat in the icache before
//     its first demand use (large values indicate over-eager runahead —
//     the pollution side of the paper's utility argument).
//   - DemandWait: cycles a demand fetch stalled on a still-in-flight
//     prefetch (0 for timely icache hits). This is the paper's Fig. 4
//     timeliness turned from a ratio into a lateness distribution: a
//     prefetch is "untimely" exactly when its DemandWait is > 0.
//
// All histograms are power-of-two bucketed (stats.NewLog2Histogram).
type Lifecycle struct {
	// EmitToFill distributes emit→fill latencies (cycles).
	EmitToFill *stats.Histogram
	// FillToUse distributes fill→first-use distances for prefetches
	// that completed before their demand arrived (cycles).
	FillToUse *stats.Histogram
	// DemandWait distributes demand stall cycles on prefetched lines
	// (0 = timely).
	DemandWait *stats.Histogram

	// fillCycle maps a line installed by a not-yet-used prefetch to its
	// fill-complete cycle, awaiting the first demand use.
	fillCycle map[uint64]uint64

	emitted       uint64
	filled        uint64
	firstUses     uint64
	timelyUses    uint64
	lateUses      uint64
	evictedUnused uint64
}

// NewLifecycle builds a tracker with 20-bucket log2 histograms
// (latencies up to ~1M cycles before overflow).
func NewLifecycle() *Lifecycle {
	return &Lifecycle{
		EmitToFill: stats.NewLog2Histogram(20),
		FillToUse:  stats.NewLog2Histogram(20),
		DemandWait: stats.NewLog2Histogram(20),
		fillCycle:  make(map[uint64]uint64),
	}
}

func (l *Lifecycle) arrived(line, emitCycle, cycle uint64, merged bool) {
	l.filled++
	if cycle >= emitCycle {
		l.EmitToFill.Observe(cycle - emitCycle)
	}
	if !merged {
		// The line is now resident and unused; wait for its first use.
		l.fillCycle[line] = cycle
	}
}

func (l *Lifecycle) firstUse(line, cycle, wait uint64, fillBuf bool) {
	l.firstUses++
	l.DemandWait.Observe(wait)
	if wait > 0 || fillBuf {
		l.lateUses++
	} else {
		l.timelyUses++
	}
	if fill, ok := l.fillCycle[line]; ok {
		if cycle >= fill {
			l.FillToUse.Observe(cycle - fill)
		}
		delete(l.fillCycle, line)
	}
}

func (l *Lifecycle) evicted(line uint64) {
	l.evictedUnused++
	delete(l.fillCycle, line)
}

// Reset clears all accumulated lifecycle state (end of warmup).
func (l *Lifecycle) Reset() {
	l.EmitToFill.Reset()
	l.FillToUse.Reset()
	l.DemandWait.Reset()
	clear(l.fillCycle)
	l.emitted, l.filled, l.firstUses = 0, 0, 0
	l.timelyUses, l.lateUses, l.evictedUnused = 0, 0, 0
}

// Pending returns how many filled prefetches are still awaiting their
// first demand use (resident and unused at the measurement end).
func (l *Lifecycle) Pending() int { return len(l.fillCycle) }

// Summary snapshots the tracker into the value form embedded in
// sim.Result.
func (l *Lifecycle) Summary() LifecycleSummary {
	return LifecycleSummary{
		Tracked:        true,
		Emitted:        l.emitted,
		Filled:         l.filled,
		FirstUses:      l.firstUses,
		TimelyUses:     l.timelyUses,
		LateUses:       l.lateUses,
		EvictedUnused:  l.evictedUnused,
		EmitToFillMean: l.EmitToFill.Mean(),
		EmitToFillP99:  l.EmitToFill.Percentile(0.99),
		DemandWaitMean: l.DemandWait.Mean(),
		DemandWaitP99:  l.DemandWait.Percentile(0.99),
		FillToUseMean:  l.FillToUse.Mean(),
		FillToUseP99:   l.FillToUse.Percentile(0.99),
		EmitToFill:     l.EmitToFill,
		FillToUse:      l.FillToUse,
		DemandWait:     l.DemandWait,
	}
}

// LifecycleSummary is the per-result prefetch lifecycle digest. The
// scalar fields are always usable; the histogram pointers are the full
// distributions (nil when lifecycle tracking was disabled) and must be
// treated as read-only once published into a Result.
type LifecycleSummary struct {
	// Tracked is true when lifecycle tracking was enabled for the run.
	Tracked bool

	Emitted       uint64
	Filled        uint64
	FirstUses     uint64
	TimelyUses    uint64
	LateUses      uint64
	EvictedUnused uint64

	EmitToFillMean float64
	EmitToFillP99  uint64
	DemandWaitMean float64
	DemandWaitP99  uint64
	FillToUseMean  float64
	FillToUseP99   uint64

	EmitToFill *stats.Histogram
	FillToUse  *stats.Histogram
	DemandWait *stats.Histogram
}

// LateRatio returns the fraction of first uses that had to wait on an
// in-flight fill — 1 − the paper's Fig. 4 timeliness, but restricted to
// prefetched lines and cycle-attributable.
func (s LifecycleSummary) LateRatio() float64 {
	if s.FirstUses == 0 {
		return 0
	}
	return float64(s.LateUses) / float64(s.FirstUses)
}

// Merge combines two summaries (simpoint aggregation): counts add,
// means re-weight, percentiles come from merged histograms when both
// sides carry them (falling back to the max of the two otherwise).
// Histograms are cloned before merging so cached results stay
// immutable.
func (s LifecycleSummary) Merge(o LifecycleSummary) LifecycleSummary {
	switch {
	case !s.Tracked:
		return o
	case !o.Tracked:
		return s
	}
	m := LifecycleSummary{
		Tracked:       true,
		Emitted:       s.Emitted + o.Emitted,
		Filled:        s.Filled + o.Filled,
		FirstUses:     s.FirstUses + o.FirstUses,
		TimelyUses:    s.TimelyUses + o.TimelyUses,
		LateUses:      s.LateUses + o.LateUses,
		EvictedUnused: s.EvictedUnused + o.EvictedUnused,
	}
	m.EmitToFill = mergeHist(s.EmitToFill, o.EmitToFill)
	m.FillToUse = mergeHist(s.FillToUse, o.FillToUse)
	m.DemandWait = mergeHist(s.DemandWait, o.DemandWait)
	if m.EmitToFill != nil {
		m.EmitToFillMean, m.EmitToFillP99 = m.EmitToFill.Mean(), m.EmitToFill.Percentile(0.99)
	} else {
		m.EmitToFillMean = weightedMean(s.EmitToFillMean, s.Filled, o.EmitToFillMean, o.Filled)
		m.EmitToFillP99 = max(s.EmitToFillP99, o.EmitToFillP99)
	}
	if m.DemandWait != nil {
		m.DemandWaitMean, m.DemandWaitP99 = m.DemandWait.Mean(), m.DemandWait.Percentile(0.99)
	} else {
		m.DemandWaitMean = weightedMean(s.DemandWaitMean, s.FirstUses, o.DemandWaitMean, o.FirstUses)
		m.DemandWaitP99 = max(s.DemandWaitP99, o.DemandWaitP99)
	}
	if m.FillToUse != nil {
		m.FillToUseMean, m.FillToUseP99 = m.FillToUse.Mean(), m.FillToUse.Percentile(0.99)
	} else {
		m.FillToUseMean = weightedMean(s.FillToUseMean, s.TimelyUses, o.FillToUseMean, o.TimelyUses)
		m.FillToUseP99 = max(s.FillToUseP99, o.FillToUseP99)
	}
	return m
}

// String renders a compact digest.
func (s LifecycleSummary) String() string {
	if !s.Tracked {
		return "(lifecycle tracking disabled)"
	}
	return fmt.Sprintf("emitted %d, filled %d, used %d (%d timely, %d late, late-ratio %.2f), evicted-unused %d; emit→fill mean %.1f p99≤%d; wait mean %.1f p99≤%d",
		s.Emitted, s.Filled, s.FirstUses, s.TimelyUses, s.LateUses, s.LateRatio(),
		s.EvictedUnused, s.EmitToFillMean, s.EmitToFillP99, s.DemandWaitMean, s.DemandWaitP99)
}

func mergeHist(a, b *stats.Histogram) *stats.Histogram {
	if a == nil || b == nil {
		return nil
	}
	c := a.Clone()
	if err := c.Merge(b); err != nil {
		return nil // mismatched shapes: fall back to scalar merging
	}
	return c
}

func weightedMean(m1 float64, n1 uint64, m2 float64, n2 uint64) float64 {
	if n1+n2 == 0 {
		return 0
	}
	return (m1*float64(n1) + m2*float64(n2)) / float64(n1+n2)
}
