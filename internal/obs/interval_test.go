package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFormatForPath(t *testing.T) {
	cases := map[string]MetricsFormat{
		"m.csv":      FormatCSV,
		"m.jsonl":    FormatJSONL,
		"m.json":     FormatJSONL,
		"m.txt":      FormatCSV,
		"no-suffix":  FormatCSV,
		"dir/m.json": FormatJSONL,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func sampleFixture(cycle uint64) IntervalSample {
	return IntervalSample{
		Workload: "mysql", Mechanism: "udp", Salt: 7,
		Cycle: cycle, Retired: 9000, RetiredTotal: cycle,
		IPC: 0.9, IcacheMPKI: 24.5, FTQDepth: 32, FTQOcc: 17,
		Accuracy: 0.75, Emitted: 120,
	}
}

func TestMetricsWriterCSV(t *testing.T) {
	var buf bytes.Buffer
	w := NewMetricsWriter(&buf, FormatCSV)
	if err := w.WriteSamples([]IntervalSample{sampleFixture(10_000), sampleFixture(20_000)}); err != nil {
		t.Fatalf("WriteSamples: %v", err)
	}
	if got := w.Rows(); got != 2 {
		t.Fatalf("Rows = %d, want 2", got)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if got := strings.Join(recs[0], ","); got != strings.Join(csvHeader, ",") {
		t.Errorf("header = %q", got)
	}
	if len(recs[1]) != len(csvHeader) {
		t.Fatalf("row width %d != header width %d", len(recs[1]), len(csvHeader))
	}
	if recs[1][0] != "mysql" || recs[1][1] != "udp" || recs[1][2] != "7" || recs[1][3] != "10000" {
		t.Errorf("row 1 = %v", recs[1])
	}
}

func TestMetricsWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewMetricsWriter(&buf, FormatJSONL)
	in := sampleFixture(10_000)
	if err := w.Write(in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var out IntervalSample
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("JSONL row does not round-trip: %v", err)
	}
	if out != in {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestMetricsWriterStickyError(t *testing.T) {
	w := NewMetricsWriter(&failAfter{n: 0}, FormatCSV)
	if err := w.Write(sampleFixture(1)); err == nil {
		t.Fatal("expected write error")
	}
	if err := w.Err(); err == nil {
		t.Fatal("Err() should report the sticky error")
	}
	if err := w.Write(sampleFixture(2)); err == nil {
		t.Fatal("subsequent Write should return the sticky error")
	}
	if got := w.Rows(); got != 0 {
		t.Fatalf("Rows = %d after failed writes, want 0", got)
	}
}

// TestMetricsWriterConcurrent hammers one writer from many goroutines —
// the fan-in path used when concurrently swept machines share a sink.
// Run under -race this doubles as the sampler's data-race guard.
func TestMetricsWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewMetricsWriter(&buf, FormatCSV)
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s := sampleFixture(uint64(g*perG + i))
				if err := w.Write(s); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Rows(); got != goroutines*perG {
		t.Fatalf("Rows = %d, want %d", got, goroutines*perG)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("interleaved output is not valid CSV: %v", err)
	}
	if len(recs) != goroutines*perG+1 {
		t.Fatalf("records = %d, want %d", len(recs), goroutines*perG+1)
	}
}
