package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestWriteChromeTraceRoundTrip checks that the Chrome trace sink
// produces JSON that round-trips through encoding/json with the
// structure Perfetto expects: a traceEvents array whose records carry
// name/ph/ts/pid, a process_name metadata record per region, complete
// ("X") slices for fills and demand waits, and counter ("C") tracks for
// FTQ depth.
func TestWriteChromeTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: EvPrefetchEmitted, Addr: 0x1000},
		{Cycle: 60, Kind: EvPrefetchArrived, Addr: 0x1000, A: 10},
		{Cycle: 90, Kind: EvPrefetchHit, Addr: 0x1000},           // timely: instant
		{Cycle: 120, Kind: EvPrefetchHit, Addr: 0x2000, A: 15, B: 1}, // late: slice
		{Cycle: 130, Kind: EvFTQResize, A: 32, B: 48},
		{Cycle: 140, Kind: EvUFTQWindow, Addr: 48, A: 900, B: 850},
		{Cycle: 150, Kind: EvRecovery, A: 17},
	}
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []TraceRegion{
		{Workload: "mysql", Mechanism: "udp", Region: 0, Events: events},
		{Workload: "mysql", Mechanism: "udp", Region: 1, Events: events[:1]},
	})
	if err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace does not round-trip json.Unmarshal: %v", err)
	}
	// 2 process_name metadata records + 7 + 1 events.
	if got, want := len(trace.TraceEvents), 10; got != want {
		t.Fatalf("traceEvents = %d records, want %d", got, want)
	}

	byName := map[string][]map[string]any{}
	pids := map[float64]bool{}
	for _, e := range trace.TraceEvents {
		name, _ := e["name"].(string)
		ph, _ := e["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("record missing name/ph: %v", e)
		}
		byName[name] = append(byName[name], e)
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Errorf("expected 2 distinct pids (one per region), got %v", pids)
	}
	if got := len(byName["process_name"]); got != 2 {
		t.Errorf("process_name records = %d, want 2", got)
	}

	// Fill slice: ts = emit cycle, dur = fill latency.
	fills := byName["prefetch-fill"]
	if len(fills) != 1 {
		t.Fatalf("prefetch-fill records = %d, want 1", len(fills))
	}
	if f := fills[0]; f["ph"] != "X" || f["ts"].(float64) != 10 || f["dur"].(float64) != 50 {
		t.Errorf("prefetch-fill = %v, want ph=X ts=10 dur=50", f)
	}
	// Late hit becomes a demand-wait slice from cycle-wait to cycle.
	waits := byName["demand-wait"]
	if len(waits) != 1 || waits[0]["ph"] != "X" || waits[0]["ts"].(float64) != 105 || waits[0]["dur"].(float64) != 15 {
		t.Errorf("demand-wait = %v, want ph=X ts=105 dur=15", waits)
	}
	// Timely hit is an instant event.
	if hits := byName["prefetch-hit"]; len(hits) != 1 || hits[0]["ph"] != "i" {
		t.Errorf("prefetch-hit = %v, want one instant event", hits)
	}
	// FTQ resize and UFTQ window are counter tracks.
	if c := byName["ftq-depth"]; len(c) != 1 || c[0]["ph"] != "C" {
		t.Errorf("ftq-depth = %v, want one counter event", c)
	}
	if c := byName["uftq-window"]; len(c) != 1 || c[0]["ph"] != "C" {
		t.Errorf("uftq-window = %v, want one counter event", c)
	}
}

func TestWriteJSONL(t *testing.T) {
	events := []Event{
		{Cycle: 5, Kind: EvUDPLearn, Addr: 0x40},
		{Cycle: 9, Kind: EvRecovery, A: 12},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var rec struct {
		Cycle uint64 `json:"cycle"`
		Kind  string `json:"kind"`
		Addr  uint64 `json:"addr"`
		A     uint64 `json:"a"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if rec.Kind != "udp-learn" || rec.Addr != 0x40 || rec.Cycle != 5 {
		t.Errorf("line 0 = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if rec.Kind != "recovery" || rec.A != 12 {
		t.Errorf("line 1 = %+v", rec)
	}
}

type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestWriteJSONLPropagatesError(t *testing.T) {
	events := []Event{{Kind: EvResteer}, {Kind: EvResteer}}
	if err := WriteJSONL(&failAfter{n: 1}, events); err == nil {
		t.Fatal("expected write error")
	}
}
