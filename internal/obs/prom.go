package obs

// prom.go is the service-grade metric surface: a dependency-free typed
// metric registry (counters, gauges, histograms backed by
// stats.Histogram) with Prometheus text-format exposition. The daemon
// mounts it at GET /metrics; ServeDebug registers it on the default
// mux next to /debug/pprof and /debug/vars.
//
// The registry deliberately bridges the pre-existing expvar counters
// (udpsim.* engine/store counters, udpsimd.* queue counters) into the
// exposition, names mapped dot→underscore, so nothing that was
// observable through /debug/vars is lost behind the new endpoint.

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"udpsim/internal/stats"
)

// PromRegistry is a set of named metric families rendered in
// Prometheus text exposition format. All methods are safe for
// concurrent use; registration panics on duplicate or malformed names
// (programmer error, caught at init like expvar.NewInt).
type PromRegistry struct {
	mu     sync.Mutex
	byName map[string]*promFamily
	// bridge, when true, appends udpsim.*/udpsimd.* expvars to the
	// exposition (the default registry's behaviour).
	bridge bool
}

// NewPromRegistry builds an empty registry without the expvar bridge
// (tests build isolated registries; the process-wide Metrics registry
// bridges).
func NewPromRegistry() *PromRegistry {
	return &PromRegistry{byName: map[string]*promFamily{}}
}

// Metrics is the process-wide registry: every service metric handle
// below registers here, and its exposition bridges the udpsim.* /
// udpsimd.* expvar counters.
var Metrics = func() *PromRegistry {
	r := NewPromRegistry()
	r.bridge = true
	return r
}()

// promFamily is one named metric: a fixed label-key set and one series
// per label-value combination.
type promFamily struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []uint64 // histogram families only

	mu     sync.Mutex
	series map[string]*promSeries // key = \xff-joined label values
	order  []string               // series keys in first-use order
}

type promSeries struct {
	labelVals []string
	val       float64          // counter/gauge value
	hist      *stats.Histogram // histogram series only
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *PromRegistry) register(name, help, typ string, labels []string) *promFamily {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validMetricName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &promFamily{name: name, help: help, typ: typ, labels: labels,
		series: map[string]*promSeries{}}
	r.byName[name] = f
	return f
}

// get returns (creating if needed) the series for the label values.
// Caller must pass exactly len(f.labels) values.
func (f *promFamily) get(labelVals []string) *promSeries {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &promSeries{labelVals: append([]string(nil), labelVals...)}
		if f.typ == "histogram" {
			s.hist = stats.NewHistogram(f.bounds)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// PromCounter is a monotonically increasing metric.
type PromCounter struct{ f *promFamily }

// Counter registers a label-less counter.
func (r *PromRegistry) Counter(name, help string) *PromCounter {
	f := r.register(name, help, "counter", nil)
	f.get(nil) // counters expose 0 before the first increment
	return &PromCounter{f: f}
}

// Inc adds one.
func (c *PromCounter) Inc() { c.Add(1) }

// Add increments by n (negative deltas are ignored — counters only go
// up).
func (c *PromCounter) Add(n float64) {
	if n < 0 {
		return
	}
	s := c.f.get(nil)
	c.f.mu.Lock()
	s.val += n
	c.f.mu.Unlock()
}

// Value returns the current count.
func (c *PromCounter) Value() float64 {
	s := c.f.get(nil)
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return s.val
}

// PromCounterVec is a counter family with labels.
type PromCounterVec struct{ f *promFamily }

// CounterVec registers a counter with label keys.
func (r *PromRegistry) CounterVec(name, help string, labels ...string) *PromCounterVec {
	return &PromCounterVec{f: r.register(name, help, "counter", labels)}
}

// Add increments the series selected by the label values.
func (v *PromCounterVec) Add(n float64, labelVals ...string) {
	if n < 0 {
		return
	}
	s := v.f.get(labelVals)
	v.f.mu.Lock()
	s.val += n
	v.f.mu.Unlock()
}

// Inc adds one to the series selected by the label values.
func (v *PromCounterVec) Inc(labelVals ...string) { v.Add(1, labelVals...) }

// PromGauge is a settable instantaneous value.
type PromGauge struct{ f *promFamily }

// Gauge registers a label-less gauge.
func (r *PromRegistry) Gauge(name, help string) *PromGauge {
	f := r.register(name, help, "gauge", nil)
	f.get(nil)
	return &PromGauge{f: f}
}

// Set assigns the gauge.
func (g *PromGauge) Set(n float64) {
	s := g.f.get(nil)
	g.f.mu.Lock()
	s.val = n
	g.f.mu.Unlock()
}

// Add moves the gauge by delta (may be negative).
func (g *PromGauge) Add(delta float64) {
	s := g.f.get(nil)
	g.f.mu.Lock()
	s.val += delta
	g.f.mu.Unlock()
}

// Value returns the current gauge reading.
func (g *PromGauge) Value() float64 {
	s := g.f.get(nil)
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return s.val
}

// PromHistogram is a fixed-bucket distribution (stats.Histogram
// underneath, so log2 and explicit-bucket shapes come for free).
type PromHistogram struct{ f *promFamily }

// Histogram registers a label-less histogram over explicit ascending
// inclusive upper bounds (use Log2Bounds for latency shapes).
func (r *PromRegistry) Histogram(name, help string, bounds []uint64) *PromHistogram {
	f := r.register(name, help, "histogram", nil)
	f.bounds = append([]uint64(nil), bounds...)
	f.get(nil)
	return &PromHistogram{f: f}
}

// Observe records one sample.
func (h *PromHistogram) Observe(v uint64) {
	s := h.f.get(nil)
	h.f.mu.Lock()
	s.hist.Observe(v)
	h.f.mu.Unlock()
}

// PromHistogramVec is a histogram family with labels.
type PromHistogramVec struct{ f *promFamily }

// HistogramVec registers a labeled histogram.
func (r *PromRegistry) HistogramVec(name, help string, bounds []uint64, labels ...string) *PromHistogramVec {
	f := r.register(name, help, "histogram", labels)
	f.bounds = append([]uint64(nil), bounds...)
	return &PromHistogramVec{f: f}
}

// Observe records one sample in the series selected by the label
// values.
func (v *PromHistogramVec) Observe(val uint64, labelVals ...string) {
	s := v.f.get(labelVals)
	v.f.mu.Lock()
	s.hist.Observe(val)
	v.f.mu.Unlock()
}

// Log2Bounds returns power-of-two bucket bounds 1, 2, 4, … 2^maxPow —
// the latency-histogram shape shared with the cycle-level obs layer.
func Log2Bounds(maxPow uint) []uint64 {
	bounds := make([]uint64, maxPow)
	for i := range bounds {
		bounds[i] = 1 << uint(i+1)
	}
	return bounds
}

// LinearBounds returns n bounds of equal width: width, 2*width, …
func LinearBounds(n int, width uint64) []uint64 {
	bounds := make([]uint64, n)
	for i := range bounds {
		bounds[i] = uint64(i+1) * width
	}
	return bounds
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelString renders {k="v",...} for the series, with extra appended
// last (the histogram "le" label).
func labelString(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(vals[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value without exponent noise for
// integral values.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders the registry (families sorted by name, series in
// first-use order) followed by the bridged expvars when enabled.
func (r *PromRegistry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*promFamily, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	bridge := r.bridge
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, f := range fams {
		f.mu.Lock()
		pr("# HELP %s %s\n", f.name, escapeHelp(f.help))
		pr("# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			s := f.series[key]
			if f.typ != "histogram" {
				pr("%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatValue(s.val))
				continue
			}
			// Cumulative buckets over the full fixed bound set (stable
			// series across scrapes), then +Inf, _sum, _count.
			counts := s.hist.Counts()
			var cum uint64
			for i, bound := range f.bounds {
				cum += counts[i]
				pr("%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, "le", fmt.Sprintf("%d", bound)), cum)
			}
			cum += counts[len(f.bounds)] // overflow bucket
			pr("%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum)
			pr("%s_sum%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.hist.Sum())
			pr("%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.hist.Count())
		}
		f.mu.Unlock()
	}
	if bridge {
		r.writeBridged(pr)
	}
	return err
}

// bridgedGauges names the expvar bridges that are instantaneous values
// rather than monotone counts.
var bridgedGauges = map[string]bool{
	"udpsimd_queue_depth": true,
}

// writeBridged appends the udpsim.* / udpsimd.* expvar integers, names
// mapped dot→underscore, so the whole pre-/metrics observability
// surface survives in the exposition.
func (r *PromRegistry) writeBridged(pr func(string, ...any)) {
	type bridged struct {
		name, src, val string
	}
	var vars []bridged
	expvar.Do(func(kv expvar.KeyValue) {
		if !strings.HasPrefix(kv.Key, "udpsim.") && !strings.HasPrefix(kv.Key, "udpsimd.") {
			return
		}
		iv, ok := kv.Value.(*expvar.Int)
		if !ok {
			return
		}
		name := strings.ReplaceAll(kv.Key, ".", "_")
		if !validMetricName(name) {
			return
		}
		r.mu.Lock()
		_, shadowed := r.byName[name]
		r.mu.Unlock()
		if shadowed {
			return
		}
		vars = append(vars, bridged{name: name, src: kv.Key, val: iv.String()})
	})
	sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
	for _, v := range vars {
		typ := "counter"
		if bridgedGauges[v.name] {
			typ = "gauge"
		}
		pr("# HELP %s bridged from expvar %q\n", v.name, v.src)
		pr("# TYPE %s %s\n", v.name, typ)
		pr("%s %s\n", v.name, v.val)
	}
}

// Handler serves the exposition (GET /metrics).
func (r *PromRegistry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Service metric handles. They live on the process-wide registry so
// the queue, the HTTP layer, the engine and the store can observe
// without plumbing a registry through every constructor — the same
// pattern as the expvar counters above, lifted to typed metrics.
// Durations are microseconds in log2 buckets (2^36 µs ≈ 19 h caps the
// longest runs).
var (
	// HTTPInFlight counts requests currently being served.
	HTTPInFlight = Metrics.Gauge("udpsimd_http_in_flight_requests",
		"HTTP requests currently in flight")
	// HTTPPanics counts handler panics converted to HTTP 500s.
	HTTPPanics = Metrics.Counter("udpsimd_http_panics_total",
		"handler panics recovered into HTTP 500 responses")
	// HTTPRequests counts completed requests by route/method/status.
	HTTPRequests = Metrics.CounterVec("udpsimd_http_requests_total",
		"completed HTTP requests", "route", "method", "code")
	// HTTPDurationUS is per-route request latency in microseconds.
	HTTPDurationUS = Metrics.HistogramVec("udpsimd_http_request_duration_us",
		"HTTP request latency in microseconds by route", Log2Bounds(36), "route")
	// QueueWaitUS is how long jobs sat queued before starting.
	QueueWaitUS = Metrics.Histogram("udpsimd_queue_wait_us",
		"job queue wait (submit to start) in microseconds", Log2Bounds(36))
	// RunDurationUS is per-mechanism measured-region run time.
	RunDurationUS = Metrics.HistogramVec("udpsimd_run_duration_us",
		"measured-region simulation wall time in microseconds by mechanism",
		Log2Bounds(36), "mechanism")
	// CoalesceSizeJobs is the merged-group size distribution of the
	// batched scheduler (1 = no merge happened).
	CoalesceSizeJobs = Metrics.Histogram("udpsimd_coalesce_size_jobs",
		"queued jobs merged into one lockstep-batched run", LinearBounds(16, 1))
	// StoreReadUS / StoreWriteUS are persistent-store operation
	// latencies (probe and write-back respectively).
	StoreReadUS = Metrics.Histogram("udpsim_store_read_us",
		"persistent result-store read latency in microseconds", Log2Bounds(30))
	StoreWriteUS = Metrics.Histogram("udpsim_store_write_us",
		"persistent result-store write latency in microseconds", Log2Bounds(30))
	// StoreCacheBytes / StoreCacheCapacityBytes size the store's
	// in-memory LRU read layer (population and configured cap).
	StoreCacheBytes = Metrics.Gauge("udpsim_store_cache_bytes",
		"bytes held by the result store's in-memory LRU read layer")
	StoreCacheCapacityBytes = Metrics.Gauge("udpsim_store_cache_capacity_bytes",
		"configured byte capacity of the result store's LRU read layer")

	// Cluster-mode series: placement-ring ownership, coordinator
	// forwarding, and the peer read-through transport.
	//
	// RingOwnedKeys counts result records this node persisted while the
	// placement ring said it was the owner (local saves of owned keys
	// plus accepted peer write-backs). It is a monotone census of
	// placement working as intended, not a live key inventory.
	RingOwnedKeys = Metrics.Counter("udpsimd_ring_owned_keys",
		"result records persisted by this node while owning their ring shard")
	// ForwardedJobs counts jobs the coordinator handed to a worker
	// (re-forwards after a worker death count again).
	ForwardedJobs = Metrics.Counter("udpsimd_forwarded_jobs",
		"jobs forwarded to workers by the coordinator")
	// Steals counts forwards diverted from a hot ring owner to the
	// least-loaded worker.
	Steals = Metrics.Counter("udpsimd_steals",
		"jobs forwarded to a non-owner worker because the ring owner was hot")
	// PeerReadHits / PeerReadMisses count remote read-through lookups
	// against ring neighbors.
	PeerReadHits = Metrics.Counter("udpsimd_peer_read_hits",
		"result-store reads satisfied by a ring peer")
	PeerReadMisses = Metrics.Counter("udpsimd_peer_read_misses",
		"result-store reads that missed on every reachable ring peer")
	// Tune-driver counters: /v1/tune search runs, their candidate
	// probes, how many probes the content-addressed result store
	// answered without a new simulation, and incumbent improvements.
	TuneRuns = Metrics.Counter("udpsimd_tune_runs",
		"tune searches started (deduplicated resubmissions excluded)")
	TuneProbes = Metrics.Counter("udpsimd_tune_probes",
		"candidate evaluations made by tune search drivers")
	TuneCacheProbeHits = Metrics.Counter("udpsimd_tune_cache_probe_hits",
		"tune probes answered entirely from the result store with zero new simulations")
	TuneIncumbentUpdates = Metrics.Counter("udpsimd_tune_incumbent_updates",
		"tune incumbent improvements across all runs")
)

// SinceUS returns the elapsed time since start in whole microseconds —
// the unit every *_us histogram above observes.
func SinceUS(start time.Time) uint64 {
	d := time.Since(start)
	if d < 0 {
		return 0
	}
	return uint64(d.Microseconds())
}
