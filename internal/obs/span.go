package obs

// span.go is the service-layer half of tracing: where obs.Tracer
// records cycle-timestamped events inside one simulated machine,
// SpanRecorder records wall-clock spans across the daemon's job
// lifecycle (queue-wait, coalesce-merge, store-read, warmup, measure,
// store-write). Spans carry a trace ID minted at job submission (or
// propagated from the client via X-Trace-ID), so everything one
// submission caused — including work it shared with coalesced
// neighbours — renders as one connected timeline in Perfetto.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// NewTraceID mints a 16-byte random hex trace ID (32 chars, the
// W3C-traceparent width).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means the platform is broken; fall back to
		// a fixed-prefix counter so tracing degrades instead of panicking.
		return fmt.Sprintf("00000000000000000000%012d", fallbackTraceSeq.next())
	}
	return hex.EncodeToString(b[:])
}

type traceSeq struct {
	mu sync.Mutex
	n  uint64
}

func (s *traceSeq) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

var fallbackTraceSeq traceSeq

// Span is one named wall-clock interval attributed to a trace.
type Span struct {
	Trace string         `json:"trace"`
	Name  string         `json:"name"`
	Start time.Time      `json:"start"`
	End   time.Time      `json:"end"`
	Args  map[string]any `json:"args,omitempty"`
}

// DurationUS returns the span length in whole microseconds.
func (s Span) DurationUS() uint64 {
	d := s.End.Sub(s.Start)
	if d < 0 {
		return 0
	}
	return uint64(d.Microseconds())
}

// SpanRecorder accumulates spans in a bounded ring (same discipline as
// Tracer: never grows without bound under a long daemon session; the
// oldest spans fall off and Dropped says how many).
type SpanRecorder struct {
	mu      sync.Mutex
	spans   []Span
	head    int
	count   int
	dropped uint64
}

// NewSpanRecorder builds a recorder keeping the last capacity spans.
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanRecorder{spans: make([]Span, capacity)}
}

// Record appends one span. Safe for concurrent use; nil receivers are
// no-ops so callers can hold an optional recorder without guards.
func (r *SpanRecorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < len(r.spans) {
		r.spans[(r.head+r.count)%len(r.spans)] = s
		r.count++
		return
	}
	r.spans[r.head] = s
	r.head = (r.head + 1) % len(r.spans)
	r.dropped++
}

// Spans returns the recorded spans oldest-first.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.spans[(r.head+i)%len(r.spans)]
	}
	return out
}

// Dropped returns how many spans the ring has evicted.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteChromeSpans renders spans as Chrome trace-event JSON: one pid
// per trace (first-seen order) with a process_name metadata record
// naming the trace ID, spans as complete ("X") slices on greedily
// packed tid lanes (a lane is reused once its previous span has
// ended, so non-overlapping spans share a row and concurrent ones
// stack). Timestamps are microseconds since the earliest span start —
// wall clock, unlike WriteChromeTrace's cycle clock.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	trace := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(spans)+8),
		Metadata:    map[string]any{"clock": "wall-us-since-first-span"},
	}
	if len(spans) == 0 {
		return json.NewEncoder(w).Encode(trace)
	}

	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })
	epoch := sorted[0].Start

	type lanes struct {
		pid  int
		ends []time.Time // per-lane latest end
	}
	byTrace := map[string]*lanes{}
	for _, s := range sorted {
		tr, ok := byTrace[s.Trace]
		if !ok {
			tr = &lanes{pid: len(byTrace) + 1}
			byTrace[s.Trace] = tr
			name := s.Trace
			if name == "" {
				name = "(no trace)"
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: tr.pid,
				Args: map[string]any{"name": "trace " + name},
			})
		}
		lane := -1
		for i, end := range tr.ends {
			if !end.After(s.Start) {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(tr.ends)
			tr.ends = append(tr.ends, time.Time{})
		}
		end := s.End
		if end.Before(s.Start) {
			end = s.Start
		}
		tr.ends[lane] = end
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    uint64(s.Start.Sub(epoch).Microseconds()),
			Dur:   s.DurationUS(),
			PID:   tr.pid,
			TID:   uint64(lane),
			Args:  s.Args,
		})
	}
	return json.NewEncoder(w).Encode(trace)
}

// WriteSpanJSONL renders spans one JSON object per line for jq/pandas.
func WriteSpanJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
