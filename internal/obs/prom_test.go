package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// lines splits an exposition into trimmed non-empty lines.
func expositionLines(t *testing.T, r *PromRegistry) []string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	var out []string
	for _, l := range strings.Split(b.String(), "\n") {
		if l = strings.TrimRight(l, " "); l != "" {
			out = append(out, l)
		}
	}
	return out
}

func hasLine(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}

func TestPromCounterGaugeExposition(t *testing.T) {
	r := NewPromRegistry()
	c := r.Counter("test_requests_total", "requests served")
	g := r.Gauge("test_queue_depth", "jobs queued")
	idle := r.Counter("test_idle_total", "never incremented")

	c.Inc()
	c.Add(2)
	c.Add(-5) // counters ignore negative deltas
	g.Set(7)
	g.Add(-3)

	lines := expositionLines(t, r)
	for _, want := range []string{
		"# HELP test_requests_total requests served",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_queue_depth gauge",
		"test_queue_depth 4",
		"test_idle_total 0", // label-less metrics expose 0 before first use
	} {
		if !hasLine(lines, want) {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, strings.Join(lines, "\n"))
		}
	}
	if c.Value() != 3 || g.Value() != 4 {
		t.Fatalf("Value() = %v, %v; want 3, 4", c.Value(), g.Value())
	}
	_ = idle

	// HELP must precede TYPE must precede the sample, per family.
	order := map[string]int{}
	for i, l := range lines {
		if strings.Contains(l, "test_requests_total") {
			switch {
			case strings.HasPrefix(l, "# HELP"):
				order["help"] = i
			case strings.HasPrefix(l, "# TYPE"):
				order["type"] = i
			default:
				order["sample"] = i
			}
		}
	}
	if !(order["help"] < order["type"] && order["type"] < order["sample"]) {
		t.Fatalf("HELP/TYPE/sample out of order: %v", order)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewPromRegistry()
	v := r.CounterVec("test_labeled_total", "label escaping", "path")
	v.Inc("a\\b\"c\nd")

	lines := expositionLines(t, r)
	want := `test_labeled_total{path="a\\b\"c\nd"} 1`
	if !hasLine(lines, want) {
		t.Fatalf("exposition missing escaped line %q\ngot:\n%s", want, strings.Join(lines, "\n"))
	}
}

func TestPromHistogramExposition(t *testing.T) {
	r := NewPromRegistry()
	h := r.Histogram("test_latency_us", "latency", []uint64{2, 4, 8, 16})
	for _, v := range []uint64{1, 3, 17} { // 17 lands in the overflow bucket
		h.Observe(v)
	}

	lines := expositionLines(t, r)
	for _, want := range []string{
		"# TYPE test_latency_us histogram",
		`test_latency_us_bucket{le="2"} 1`,
		`test_latency_us_bucket{le="4"} 2`,
		`test_latency_us_bucket{le="8"} 2`,
		`test_latency_us_bucket{le="16"} 2`,
		`test_latency_us_bucket{le="+Inf"} 3`,
		"test_latency_us_sum 21",
		"test_latency_us_count 3",
	} {
		if !hasLine(lines, want) {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, strings.Join(lines, "\n"))
		}
	}

	// Cumulative buckets must be monotonically non-decreasing and end
	// with +Inf == _count.
	var prev int64 = -1
	var inf, count int64 = -1, -2
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, `test_latency_us_bucket{le="+Inf"}`):
			inf = lastField(t, l)
		case strings.HasPrefix(l, "test_latency_us_bucket"):
			v := lastField(t, l)
			if v < prev {
				t.Fatalf("bucket counts not monotone: %d after %d in %q", v, prev, l)
			}
			prev = v
		case strings.HasPrefix(l, "test_latency_us_count"):
			count = lastField(t, l)
		}
	}
	if inf != count {
		t.Fatalf("+Inf bucket %d != _count %d", inf, count)
	}
}

// lastField parses the sample value (last whitespace-separated field).
func lastField(t *testing.T, line string) int64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return v
}

func TestPromHistogramVec(t *testing.T) {
	r := NewPromRegistry()
	h := r.HistogramVec("test_run_us", "run time", []uint64{10, 100}, "mechanism")
	h.Observe(5, "udp")
	h.Observe(50, "udp")
	h.Observe(5, "baseline")

	lines := expositionLines(t, r)
	for _, want := range []string{
		`test_run_us_bucket{mechanism="udp",le="10"} 1`,
		`test_run_us_bucket{mechanism="udp",le="+Inf"} 2`,
		`test_run_us_count{mechanism="udp"} 2`,
		`test_run_us_count{mechanism="baseline"} 1`,
	} {
		if !hasLine(lines, want) {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, strings.Join(lines, "\n"))
		}
	}
}

func TestPromRegistrationPanics(t *testing.T) {
	r := NewPromRegistry()
	r.Counter("test_dup_total", "first")
	mustPanic(t, "duplicate name", func() { r.Counter("test_dup_total", "second") })
	mustPanic(t, "invalid name", func() { r.Counter("9starts_with_digit", "bad") })
	mustPanic(t, "invalid label", func() { r.CounterVec("test_ok_total", "x", "bad-label") })
	v := r.CounterVec("test_vec_total", "x", "a", "b")
	mustPanic(t, "wrong label arity", func() { v.Inc("only-one") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestPromBridgedExpvars checks the process-wide registry folds the
// pre-existing udpsim.*/udpsimd.* expvar counters into the exposition
// with dot→underscore names, types them, and never emits a family
// twice (registered names shadow bridged ones).
func TestPromBridgedExpvars(t *testing.T) {
	lines := expositionLines(t, Metrics)

	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"# TYPE udpsim_cache_hits counter",
		"# TYPE udpsimd_queue_depth gauge", // the one bridged gauge
		"bridged from expvar",
		"# TYPE udpsimd_http_requests_total counter", // typed registry family
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("bridged exposition missing %q", want)
		}
	}

	seen := map[string]bool{}
	for _, l := range lines {
		if !strings.HasPrefix(l, "# TYPE ") {
			continue
		}
		name := strings.Fields(l)[2]
		if seen[name] {
			t.Errorf("family %q emitted twice (bridge not shadowed)", name)
		}
		seen[name] = true
	}
}

func TestLogAndLinearBounds(t *testing.T) {
	if got := Log2Bounds(3); len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Fatalf("Log2Bounds(3) = %v", got)
	}
	if got := LinearBounds(4, 5); len(got) != 4 || got[0] != 5 || got[3] != 20 {
		t.Fatalf("LinearBounds(4,5) = %v", got)
	}
}

func TestSinceUS(t *testing.T) {
	if got := SinceUS(time.Now().Add(-3 * time.Millisecond)); got < 2_000 || got > 1_000_000 {
		t.Fatalf("SinceUS(3ms ago) = %d µs", got)
	}
	if got := SinceUS(time.Now().Add(time.Hour)); got != 0 {
		t.Fatalf("SinceUS(future) = %d, want 0", got)
	}
}
