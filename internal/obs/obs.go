// Package obs is the simulator's cycle-level observability layer: a
// bounded ring buffer of typed events (prefetch lifecycle, FTQ resize
// decisions, UDP utility updates, resteers and recoveries) with
// pluggable sinks (Chrome trace-event JSON for Perfetto, JSONL), an
// interval sampler producing IPC/MPKI/FTQ-depth time series, and a
// prefetch lifecycle tracker that turns the paper's Fig. 4 timeliness
// *ratio* into diagnosable cycle-accurate *distributions*.
//
// The layer is strictly opt-in: the frontend, the core mechanisms and
// the sim driver hold a nil *Observer by default and guard every hook
// behind a nil check, so the disabled path costs one predictable branch
// and zero allocations (guarded by BenchmarkSimObsOverhead).
package obs

import "fmt"

// EventKind is a typed trace event class.
type EventKind uint8

// Event kinds. The Addr/A/B fields of Event are kind-specific; see the
// Observer hook methods for their encoding.
const (
	// EvPrefetchEmitted: a prefetch fill was issued. Addr=line, A=1 if
	// off-path.
	EvPrefetchEmitted EventKind = iota
	// EvPrefetchArrived: a prefetch fill completed and was installed.
	// Addr=line, A=emit cycle (duration = Cycle−A), B=1 if a demand
	// access had already merged into it (the prefetch was late).
	EvPrefetchArrived
	// EvPrefetchHit: a demand fetch consumed a prefetched line.
	// Addr=line, A=cycles the demand had to wait (0 = timely icache
	// hit), B=1 for a fill-buffer (untimely) hit.
	EvPrefetchHit
	// EvPrefetchEvicted: a prefetched line was evicted without ever
	// being demanded (useless prefetch). Addr=line, A=1 if off-path.
	EvPrefetchEvicted
	// EvFTQResize: the tuner changed the logical FTQ capacity.
	// A=old depth, B=new depth.
	EvFTQResize
	// EvUFTQWindow: a UFTQ measurement window closed. Addr=current
	// depth, A=utility ratio in per-mille, B=timeliness ratio in
	// per-mille.
	EvUFTQWindow
	// EvUDPLearn: UDP's useful-set learned a line. Addr=line.
	EvUDPLearn
	// EvUDPDrop: UDP filtered out an assumed-off-path candidate.
	// Addr=line.
	EvUDPDrop
	// EvResteer: decode-time post-fetch correction redirected fetch.
	EvResteer
	// EvRecovery: execute-time misprediction recovery. A=resolution
	// latency in cycles (divergence→recovery).
	EvRecovery
	// EvFillComplete: a cache-level fill completed and the line became
	// visible. Addr=line, A=level code (1=L1, 2=L2, 3=LLC), B=1 if the
	// fill was prefetch-initiated.
	EvFillComplete
	// EvMemBackpressure: a memory request was rejected under MSHR
	// pressure. Addr=line, A=level code, B=1 if the rejected request was
	// a prefetch (dropped) rather than a demand (retried).
	EvMemBackpressure

	numEventKinds
)

// String names the event kind (trace sinks and logs).
func (k EventKind) String() string {
	switch k {
	case EvPrefetchEmitted:
		return "prefetch-emitted"
	case EvPrefetchArrived:
		return "prefetch-arrived"
	case EvPrefetchHit:
		return "prefetch-hit"
	case EvPrefetchEvicted:
		return "prefetch-evicted"
	case EvFTQResize:
		return "ftq-resize"
	case EvUFTQWindow:
		return "uftq-window"
	case EvUDPLearn:
		return "udp-learn"
	case EvUDPDrop:
		return "udp-drop"
	case EvResteer:
		return "resteer"
	case EvRecovery:
		return "recovery"
	case EvFillComplete:
		return "fill-complete"
	case EvMemBackpressure:
		return "mem-backpressure"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one typed trace record. It is a fixed-size value (no
// pointers) so the ring buffer is a single flat allocation.
type Event struct {
	Cycle uint64
	Kind  EventKind
	Addr  uint64 // line address for prefetch/UDP events
	A, B  uint64 // kind-specific arguments (see the kind docs)
}

// DefaultTracerCapacity bounds the event ring when the caller does not
// choose one: 1 Mi events ≈ 40 MB, enough for several million simulated
// cycles of a busy frontend.
const DefaultTracerCapacity = 1 << 20

// Tracer is a bounded ring buffer of events. When full it overwrites
// the oldest events (the most recent window is usually the diagnostic
// one) and counts the overwritten records in Dropped.
type Tracer struct {
	events  []Event
	head    int // index of the oldest retained event
	count   int
	dropped uint64
}

// NewTracer builds a tracer retaining up to capacity events
// (DefaultTracerCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{events: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (t *Tracer) Record(e Event) {
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		t.count++
		return
	}
	// Ring overwrite: head is both the oldest slot and the write slot.
	t.events[t.head] = e
	t.head++
	if t.head == len(t.events) {
		t.head = 0
	}
	t.dropped++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return t.count }

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns the retained events in record order. The returned
// slice is freshly allocated.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// CountByKind tallies retained events per kind.
func (t *Tracer) CountByKind() map[string]int {
	m := make(map[string]int)
	for _, e := range t.events {
		m[e.Kind.String()]++
	}
	return m
}

// Observer is the hub threaded through the frontend, the core
// mechanisms and the sim driver. Each sub-system is optional: a nil
// Trace disables event recording, a nil Life disables lifecycle
// tracking, Interval == 0 disables time-series sampling. A nil
// *Observer disables everything (the hooks are nil-guarded at every
// call site).
//
// An Observer belongs to exactly one Machine: its methods are invoked
// from the single-threaded cycle loop and must not be shared across
// concurrently running machines. Cross-machine fan-in happens at the
// sink layer (MetricsWriter serializes concurrent writers).
type Observer struct {
	// Trace receives typed events when non-nil.
	Trace *Tracer
	// Life tracks per-prefetch lifecycle timing when non-nil.
	Life *Lifecycle
	// Interval is the sampling period in cycles (0 = no sampling).
	Interval uint64
	// OnSample, when set, streams each interval sample instead of
	// buffering it in Samples — the live path for long sweeps (wrap a
	// MetricsWriter's Write). The callback runs on the simulating
	// goroutine; it must serialize its own sinks.
	OnSample func(IntervalSample)

	// Run tags stamped onto every sample.
	Workload  string
	Mechanism string
	Salt      uint64

	now     uint64
	samples []IntervalSample
}

// SetNow advances the observer's cycle clock; the sim driver calls it
// once per machine cycle so hooks without a cycle argument (the tuner
// surface) still stamp events correctly.
func (o *Observer) SetNow(cycle uint64) { o.now = cycle }

// Now returns the current cycle clock.
func (o *Observer) Now() uint64 { return o.now }

// AddSample records one interval sample (streaming via OnSample when
// configured, buffering otherwise).
func (o *Observer) AddSample(s IntervalSample) {
	if o.OnSample != nil {
		o.OnSample(s)
		return
	}
	o.samples = append(o.samples, s)
}

// Samples returns the buffered interval samples (empty when streaming).
func (o *Observer) Samples() []IntervalSample { return o.samples }

// ResetSamples discards buffered samples (end of warmup).
func (o *Observer) ResetSamples() { o.samples = o.samples[:0] }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// PrefetchEmitted observes a prefetch fill being issued.
func (o *Observer) PrefetchEmitted(line uint64, offPath bool) {
	if o.Life != nil {
		o.Life.emitted++
	}
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvPrefetchEmitted, Addr: line, A: b2u(offPath)})
	}
}

// PrefetchArrived observes a prefetch-initiated fill completing.
// merged reports that a demand access had already merged into the fill
// (the prefetch was late); such lines are not awaiting a first use.
func (o *Observer) PrefetchArrived(line uint64, emitCycle uint64, offPath, merged bool) {
	if o.Life != nil {
		o.Life.arrived(line, emitCycle, o.now, merged)
	}
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvPrefetchArrived, Addr: line, A: emitCycle, B: b2u(merged)})
	}
}

// PrefetchHit observes a demand fetch consuming a prefetched line.
// wait is how many cycles the demand had to stall (0 = timely icache
// hit); fillBuf marks an in-flight (fill-buffer) hit.
func (o *Observer) PrefetchHit(line uint64, wait uint64, fillBuf bool) {
	if o.Life != nil {
		o.Life.firstUse(line, o.now, wait, fillBuf)
	}
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvPrefetchHit, Addr: line, A: wait, B: b2u(fillBuf)})
	}
}

// PrefetchEvicted observes a never-demanded prefetched line being
// evicted (useless prefetch).
func (o *Observer) PrefetchEvicted(line uint64, offPath bool) {
	if o.Life != nil {
		o.Life.evicted(line)
	}
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvPrefetchEvicted, Addr: line, A: b2u(offPath)})
	}
}

// FTQResize observes the tuner changing the logical FTQ capacity.
func (o *Observer) FTQResize(oldDepth, newDepth int) {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvFTQResize, A: uint64(oldDepth), B: uint64(newDepth)})
	}
}

// UFTQWindow observes a closed UFTQ measurement window with its
// measured utility and timeliness ratios.
func (o *Observer) UFTQWindow(depth int, utility, timeliness float64) {
	if o.Trace != nil {
		o.Trace.Record(Event{
			Cycle: o.now, Kind: EvUFTQWindow, Addr: uint64(depth),
			A: uint64(utility*1000 + 0.5), B: uint64(timeliness*1000 + 0.5),
		})
	}
}

// UDPLearn observes UDP's useful-set learning a line.
func (o *Observer) UDPLearn(line uint64) {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvUDPLearn, Addr: line})
	}
}

// UDPDrop observes UDP filtering out an assumed-off-path candidate.
func (o *Observer) UDPDrop(line uint64) {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvUDPDrop, Addr: line})
	}
}

// Resteer observes a decode-time post-fetch correction.
func (o *Observer) Resteer() {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvResteer})
	}
}

// Recovery observes an execute-time misprediction recovery with its
// resolution latency.
func (o *Observer) Recovery(latency uint64) {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvRecovery, A: latency})
	}
}

// FillComplete observes a cache-level fill completing (the line is now
// visible at that level). level is a hierarchy level code (1=L1, 2=L2,
// 3=LLC) kept as a plain integer so obs stays decoupled from the
// memory package.
func (o *Observer) FillComplete(level, line uint64, prefetch bool) {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvFillComplete, Addr: line, A: level, B: b2u(prefetch)})
	}
}

// MemBackpressure observes a memory request rejected because a level's
// MSHR file was full: demands retry, prefetches are dropped.
func (o *Observer) MemBackpressure(level, line uint64, prefetch bool) {
	if o.Trace != nil {
		o.Trace.Record(Event{Cycle: o.now, Kind: EvMemBackpressure, Addr: line, A: level, B: b2u(prefetch)})
	}
}
