// Package bloom implements the space-efficient set membership structure
// backing UDP's useful-set: a partitioned Bloom filter with analytically
// derived parameters, mirroring the paper's use of the Open Bloom Filter
// parameter generator (Section IV-B: 1% false-positive rate, 6 hash
// functions, banked SRAM lookup).
package bloom

import (
	"fmt"
	"math"
)

// Filter is a partitioned Bloom filter over 64-bit keys. The bit array is
// split into k equal banks and each hash function indexes its own bank,
// modelling the banked SRAM organization the paper describes (hashes
// computed in parallel in 1 cycle, banks read in 1-6 cycles).
type Filter struct {
	bits     []uint64
	nbits    uint // total bits across all banks
	bankBits uint // bits per bank
	k        uint // number of hash functions / banks
	count    uint // inserted keys since last clear
	seed     uint64
}

// New creates a filter with nbits total bits and k hash functions. nbits
// is rounded up so every bank holds a whole number of 64-bit words.
func New(nbits, k uint) *Filter {
	if k == 0 {
		panic("bloom: k must be >= 1")
	}
	if nbits < k*64 {
		nbits = k * 64
	}
	bankWords := (nbits/k + 63) / 64
	bankBits := bankWords * 64
	return &Filter{
		bits:     make([]uint64, bankWords*k),
		nbits:    bankBits * k,
		bankBits: bankBits,
		k:        k,
		seed:     0x9e3779b97f4a7c15,
	}
}

// NewForFPR creates a filter sized nbits with the number of hash
// functions that minimizes the false-positive rate for the expected
// number of keys: k = (m/n) ln 2.
func NewForFPR(nbits, expectedKeys uint) *Filter {
	if expectedKeys == 0 {
		expectedKeys = 1
	}
	k := uint(math.Round(float64(nbits) / float64(expectedKeys) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return New(nbits, k)
}

// OptimalParams returns (nbits, k) achieving the target false-positive
// rate for n expected keys: m = -n ln p / (ln 2)^2, k = (m/n) ln 2. This
// reproduces the Open Bloom Filter parameter computation the paper used;
// for p = 0.01 it yields k = 6-7 (the paper configures 6).
func OptimalParams(n uint, p float64) (nbits, k uint) {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: invalid false-positive rate %v", p))
	}
	if n == 0 {
		n = 1
	}
	m := math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2))
	kk := math.Round(m / float64(n) * math.Ln2)
	if kk < 1 {
		kk = 1
	}
	return uint(m), uint(kk)
}

// hash derives the i-th bank index for key using two rounds of a
// 64-bit mix (Kirsch-Mitzenmacher double hashing: g_i = h1 + i*h2).
func (f *Filter) hash(key uint64, i uint) uint {
	h1 := mix64(key ^ f.seed)
	h2 := mix64(key + 0x9e3779b97f4a7c15 + f.seed<<1)
	// Force h2 odd so the stride cycles the whole bank.
	g := h1 + uint64(i)*(h2|1)
	return uint(g % uint64(f.bankBits))
}

// mix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Insert adds key to the set.
func (f *Filter) Insert(key uint64) {
	for i := uint(0); i < f.k; i++ {
		bit := uint(i)*f.bankBits + uint(f.hash(key, i))
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.count++
}

// Contains reports whether key may be in the set (no false negatives;
// false positives at the configured rate).
func (f *Filter) Contains(key uint64) bool {
	for i := uint(0); i < f.k; i++ {
		bit := uint(i)*f.bankBits + uint(f.hash(key, i))
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter. UDP invokes this when the filter saturates
// and the observed unuseful ratio exceeds its flush threshold.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// Count returns the number of Insert calls since the last Clear.
// Duplicate keys are counted each time; hardware tracks the same
// saturating estimate.
func (f *Filter) Count() uint { return f.count }

// Bits returns the total number of bits of SRAM the filter occupies.
func (f *Filter) Bits() uint { return f.nbits }

// SizeBytes returns the storage cost in bytes.
func (f *Filter) SizeBytes() uint { return f.nbits / 8 }

// K returns the number of hash functions.
func (f *Filter) K() uint { return f.k }

// FillRatio returns the fraction of set bits, an estimator of load.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(f.nbits)
}

// EstimatedFPR estimates the current false-positive probability from the
// fill ratio: fpr = fill^k (partitioned filter banks fill independently).
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Full reports whether the filter has reached its nominal capacity: the
// key count at which the design false-positive rate would be exceeded,
// approximated by fill ratio crossing 50% (the optimum operating point;
// beyond it FPR degrades quickly).
func (f *Filter) Full() bool { return f.FillRatio() >= 0.5 }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
