package bloom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(16*1024, 6)
	keys := make([]uint64, 0, 500)
	r := uint64(12345)
	for i := 0; i < 500; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		keys = append(keys, r)
		f.Insert(r)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %#x", k)
		}
	}
}

// Property: any inserted key set is fully contained (no false
// negatives, the defining Bloom filter invariant).
func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		fl := New(4096, 4)
		for _, k := range keys {
			fl.Insert(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateNearDesign(t *testing.T) {
	// 16k bits, 6 hashes is designed for ~1% FPR at ~1850 keys
	// (m/n ≈ 8.9); measure at that load.
	f := New(16*1024, 6)
	r := uint64(99)
	n := uint(1850)
	for i := uint(0); i < n; i++ {
		r = r*6364136223846793005 + 1
		f.Insert(r)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		r = r*6364136223846793005 + 1
		if f.Contains(r) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false positive rate %.3f far above 1%% design point", rate)
	}
}

func TestOptimalParams(t *testing.T) {
	// For p=0.01 the optimal k is ~6.6 → 7 (the paper rounds to 6 with
	// its exact generator; accept 6-7).
	m, k := OptimalParams(1000, 0.01)
	if k < 6 || k > 7 {
		t.Errorf("k = %d, want 6-7", k)
	}
	// m = -n ln p / ln2^2 ≈ 9.585 n
	if math.Abs(float64(m)-9585) > 10 {
		t.Errorf("m = %d, want ≈ 9585", m)
	}
}

func TestOptimalParamsPanicsOnBadRate(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for p=%v", p)
				}
			}()
			OptimalParams(10, p)
		}()
	}
}

func TestClear(t *testing.T) {
	f := New(1024, 4)
	f.Insert(42)
	if !f.Contains(42) {
		t.Fatal("lost key")
	}
	if f.Count() != 1 {
		t.Errorf("Count = %d", f.Count())
	}
	f.Clear()
	if f.Contains(42) {
		t.Error("key survived Clear")
	}
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Errorf("Clear left state: count %d fill %v", f.Count(), f.FillRatio())
	}
}

func TestFillRatioAndFull(t *testing.T) {
	f := New(1024, 2)
	if f.Full() {
		t.Error("empty filter reports full")
	}
	r := uint64(7)
	for i := 0; i < 2000 && !f.Full(); i++ {
		r = r*2862933555777941757 + 3037000493
		f.Insert(r)
	}
	if !f.Full() {
		t.Error("filter never saturated")
	}
	if fr := f.FillRatio(); fr < 0.5 || fr > 1 {
		t.Errorf("fill ratio %v out of range at saturation", fr)
	}
	if f.EstimatedFPR() <= 0 {
		t.Errorf("estimated FPR should be positive when loaded")
	}
}

func TestSizingAccessors(t *testing.T) {
	f := New(16*1024, 6)
	if f.K() != 6 {
		t.Errorf("K = %d", f.K())
	}
	if f.Bits() < 16*1024 {
		t.Errorf("Bits = %d < requested", f.Bits())
	}
	if f.SizeBytes() != f.Bits()/8 {
		t.Errorf("SizeBytes inconsistent with Bits")
	}
}

func TestNewForFPR(t *testing.T) {
	f := NewForFPR(16*1024, 1850)
	if f.K() < 4 || f.K() > 9 {
		t.Errorf("NewForFPR picked k=%d, want near ln2·m/n ≈ 6", f.K())
	}
	// Degenerate inputs must not panic.
	if NewForFPR(64, 0) == nil {
		t.Error("nil filter")
	}
}

func TestNewPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for k=0")
		}
	}()
	New(1024, 0)
}

func TestBankPartitioning(t *testing.T) {
	// Each hash indexes its own bank; with k banks of b bits, total
	// bits is k*b and rounding keeps whole words.
	f := New(100, 3) // deliberately awkward size
	if f.Bits()%64 != 0 {
		t.Errorf("bits %d not word-aligned", f.Bits())
	}
	if f.Bits() < 3*64 {
		t.Errorf("bits %d below k*64 minimum", f.Bits())
	}
}

func BenchmarkInsert(b *testing.B) {
	f := New(16*1024, 6)
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(16*1024, 6)
	for i := 0; i < 1000; i++ {
		f.Insert(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
