// Package cache models set-associative caches with the features the
// paper's analysis depends on: per-line prefetch bits (to classify
// useful vs. useless prefetches, Section III-E), miss status holding
// registers and a fill buffer (to classify timely vs. untimely
// prefetches, Section III-C), and pluggable replacement.
package cache

import (
	"fmt"

	"udpsim/internal/isa"
)

// ReplacementPolicy selects the victim way within a set.
type ReplacementPolicy uint8

// Replacement policies.
const (
	LRU ReplacementPolicy = iota
	FIFO
	Random
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// line is one cache line's metadata. The simulator tracks no data bytes:
// only presence and provenance matter for timing.
type line struct {
	tag      uint64
	valid    bool
	prefetch bool // set when installed by a prefetch, cleared on demand hit
	// offPath records that the installing prefetch was emitted on the
	// wrong path (UDP learns from demand hits on such lines).
	offPath bool
	stamp   uint64 // LRU: last-use cycle; FIFO: insert cycle
}

// Config describes a cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	Policy     ReplacementPolicy
	HitLatency int // cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	if c.LineBytes == 0 {
		c.LineBytes = isa.LineBytes
	}
	return c.SizeBytes / (c.Ways * c.LineBytes)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size and ways must be positive", c.Name)
	}
	lb := c.LineBytes
	if lb == 0 {
		lb = isa.LineBytes
	}
	if c.SizeBytes%(c.Ways*lb) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*linesize %d", c.Name, c.SizeBytes, c.Ways*lb)
	}
	sets := c.SizeBytes / (c.Ways * lb)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats accumulates cache events.
type Stats struct {
	Hits            uint64
	Misses          uint64
	PrefetchHits    uint64 // demand hits on lines installed by prefetch
	Inserts         uint64
	PrefetchInserts uint64
	Evictions       uint64
	// UselessPrefetchEvictions counts lines evicted with the prefetch
	// bit still set: they were brought in by a prefetch and never
	// touched by a demand access — the paper's "useless prefetch".
	UselessPrefetchEvictions uint64
	// Invalidations counts explicit line invalidations.
	Invalidations uint64
}

// MPKI returns misses per kilo-event given an instruction count.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

// HitRate returns hits/(hits+misses).
func (s *Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a set-associative cache over line addresses.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	rngState uint64
	Stats    Stats
}

// New builds a cache from cfg, panicking on invalid geometry (a
// programming error: geometries come from static configuration).
func New(cfg Config) *Cache {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = isa.LineBytes
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(nsets - 1),
		rngState: 0x853c49e6748fea9b,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(lineAddr isa.Addr) (set uint64, tag uint64) {
	n := uint64(lineAddr) / uint64(c.cfg.LineBytes)
	return n & c.setMask, n >> uint64(log2(len(c.sets)))
}

// Lookup probes the cache without updating replacement state or stats.
func (c *Cache) Lookup(lineAddr isa.Addr) bool {
	set, tag := c.index(lineAddr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// AccessResult describes the outcome of a demand access.
type AccessResult struct {
	Hit bool
	// WasPrefetched is set when the access hit a line whose prefetch bit
	// was still set, i.e. this demand access is the first use of a
	// prefetched line (a "useful prefetch" event).
	WasPrefetched bool
	// WasOffPathPrefetch further qualifies WasPrefetched: the prefetch
	// had been emitted on the wrong path (a *useful off-path prefetch*,
	// the event UDP's useful-set learns from).
	WasOffPathPrefetch bool
}

// Access performs a demand access at the given cycle: on hit it updates
// replacement state and clears the prefetch bit.
func (c *Cache) Access(lineAddr isa.Addr, cycle uint64) AccessResult {
	set, tag := c.index(lineAddr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.Stats.Hits++
			res := AccessResult{Hit: true, WasPrefetched: ln.prefetch, WasOffPathPrefetch: ln.prefetch && ln.offPath}
			if ln.prefetch {
				c.Stats.PrefetchHits++
				ln.prefetch = false
				ln.offPath = false
			}
			if c.cfg.Policy == LRU {
				ln.stamp = cycle
			}
			return res
		}
	}
	c.Stats.Misses++
	return AccessResult{}
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	LineAddr isa.Addr
	Valid    bool
	// WasUnusedPrefetch is set when the victim still had its prefetch
	// bit set: the prefetch was useless.
	WasUnusedPrefetch bool
	// WasOffPath qualifies WasUnusedPrefetch with the prefetch's path.
	WasOffPath bool
}

// Insert fills lineAddr, selecting a victim by the configured policy.
// isPrefetch marks the line's prefetch bit.
func (c *Cache) Insert(lineAddr isa.Addr, cycle uint64, isPrefetch bool) Eviction {
	return c.InsertPath(lineAddr, cycle, isPrefetch, false)
}

// InsertPath is Insert with explicit wrong-path provenance for
// prefetched lines.
func (c *Cache) InsertPath(lineAddr isa.Addr, cycle uint64, isPrefetch, offPath bool) Eviction {
	set, tag := c.index(lineAddr)
	ways := c.sets[set]
	// Already present (e.g. racing fill): refresh, preserving a clear
	// prefetch bit if the line was already demanded.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if c.cfg.Policy == LRU {
				ways[i].stamp = cycle
			}
			return Eviction{}
		}
	}
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	var ev Eviction
	if victim < 0 {
		victim = c.pickVictim(ways)
		v := &ways[victim]
		ev = Eviction{
			LineAddr:          c.reconstruct(set, v.tag),
			Valid:             true,
			WasUnusedPrefetch: v.prefetch,
			WasOffPath:        v.prefetch && v.offPath,
		}
		c.Stats.Evictions++
		if v.prefetch {
			c.Stats.UselessPrefetchEvictions++
		}
	}
	ways[victim] = line{tag: tag, valid: true, prefetch: isPrefetch, offPath: isPrefetch && offPath, stamp: cycle}
	c.Stats.Inserts++
	if isPrefetch {
		c.Stats.PrefetchInserts++
	}
	return ev
}

// Invalidate removes lineAddr if present, reporting whether it was an
// unused prefetch.
func (c *Cache) Invalidate(lineAddr isa.Addr) (present, wasUnusedPrefetch bool) {
	set, tag := c.index(lineAddr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.Stats.Invalidations++
			wasUnusedPrefetch = ln.prefetch
			ln.valid = false
			return true, wasUnusedPrefetch
		}
	}
	return false, false
}

// PrefetchBit reports whether lineAddr is present with its prefetch bit
// still set.
func (c *Cache) PrefetchBit(lineAddr isa.Addr) bool {
	set, tag := c.index(lineAddr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return c.sets[set][i].prefetch
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Capacity returns the total number of lines.
func (c *Cache) Capacity() int { return len(c.sets) * c.cfg.Ways }

// Flush invalidates every line, counting still-unused prefetched lines
// as useless.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].prefetch {
				c.Stats.UselessPrefetchEvictions++
			}
			set[i] = line{}
		}
	}
}

func (c *Cache) pickVictim(ways []line) int {
	switch c.cfg.Policy {
	case Random:
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		return int((c.rngState >> 33) % uint64(len(ways)))
	default: // LRU and FIFO both evict the smallest stamp
		victim := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].stamp < ways[victim].stamp {
				victim = i
			}
		}
		return victim
	}
}

func (c *Cache) reconstruct(set, tag uint64) isa.Addr {
	n := tag<<uint64(log2(len(c.sets))) | set
	return isa.Addr(n * uint64(c.cfg.LineBytes))
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
