package cache

import (
	"testing"

	"udpsim/internal/isa"
)

func TestMSHRAllocateLookup(t *testing.T) {
	f := NewMSHRFile(2)
	m := f.Allocate(ln(1), 10, 50, true, true)
	if m == nil {
		t.Fatal("allocation failed")
	}
	if got := f.Lookup(ln(1)); got != m {
		t.Error("lookup did not find allocated entry")
	}
	if f.Lookup(ln(2)) != nil {
		t.Error("lookup found phantom entry")
	}
	if !m.Prefetch || !m.OffPath || m.IssueCycle != 10 || m.ReadyCycle != 50 {
		t.Errorf("entry fields: %+v", m)
	}
	if f.Occupancy() != 1 || f.Capacity() != 2 || f.Full() {
		t.Errorf("occupancy accounting wrong")
	}
}

func TestMSHRFull(t *testing.T) {
	f := NewMSHRFile(1)
	if f.Allocate(ln(1), 0, 10, false, false) == nil {
		t.Fatal("first allocation failed")
	}
	if f.Allocate(ln(2), 0, 10, false, false) != nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if f.Stats.AllocFailures != 1 {
		t.Errorf("AllocFailures = %d", f.Stats.AllocFailures)
	}
	if !f.Full() {
		t.Error("file not reported full")
	}
}

func TestMSHRMergeDemand(t *testing.T) {
	f := NewMSHRFile(4)
	m := f.Allocate(ln(1), 0, 40, true, false)
	ready := f.MergeDemand(m)
	if ready != 40 {
		t.Errorf("merge returned ready %d", ready)
	}
	if !m.DemandMerged {
		t.Error("DemandMerged not set")
	}
	if f.Stats.DemandMerges != 1 {
		t.Errorf("DemandMerges = %d", f.Stats.DemandMerges)
	}
	// Second merge must not double count.
	f.MergeDemand(m)
	if f.Stats.DemandMerges != 1 {
		t.Errorf("double-counted merge: %d", f.Stats.DemandMerges)
	}
}

func TestMSHRCompleted(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(ln(1), 0, 10, true, false)
	f.Allocate(ln(2), 0, 20, false, false)

	var done []isa.Addr
	f.Completed(15, func(m MSHR) { done = append(done, m.LineAddr) })
	if len(done) != 1 || done[0] != ln(1) {
		t.Fatalf("completed at 15: %v", done)
	}
	if f.Occupancy() != 1 {
		t.Errorf("occupancy %d after completion", f.Occupancy())
	}
	done = nil
	f.Completed(25, func(m MSHR) { done = append(done, m.LineAddr) })
	if len(done) != 1 || done[0] != ln(2) {
		t.Fatalf("completed at 25: %v", done)
	}
	if f.Stats.Completions != 2 {
		t.Errorf("Completions = %d", f.Stats.Completions)
	}
}

func TestMSHRFlush(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(ln(1), 0, 10, false, false)
	f.Flush()
	if f.Occupancy() != 0 {
		t.Error("flush left entries")
	}
}

func TestMSHRPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewMSHRFile(0)
}
