package cache

import "udpsim/internal/isa"

// MSHR is one miss-status holding register: an in-flight fill for a cache
// line. Entries double as the fill buffer in the paper's terminology —
// a demand access that finds its line in an MSHR "hits the fill buffer"
// and pays only the remaining latency. That event is exactly what the
// paper counts as an *untimely* (but still useful) prefetch hit.
type MSHR struct {
	LineAddr isa.Addr
	Valid    bool
	// Prefetch is true while the fill was initiated by a prefetch and no
	// demand access has merged into it yet.
	Prefetch bool
	// DemandMerged is set when a demand access merged into a
	// prefetch-initiated fill (the "fill buffer hit").
	DemandMerged bool
	// IssueCycle is when the fill was initiated.
	IssueCycle uint64
	// ReadyCycle is when the line data arrives and may be installed.
	ReadyCycle uint64
	// OffPath is true when the initiating prefetch was emitted while the
	// frontend was on the wrong path (carried through so usefulness can
	// be attributed to off-path prefetches).
	OffPath bool
}

// MSHRStats counts MSHR file events.
type MSHRStats struct {
	Allocations         uint64
	PrefetchAllocations uint64
	DemandMerges        uint64 // demand access found the line in flight
	PrefetchMerges      uint64 // prefetch found the line already in flight
	AllocFailures       uint64 // all entries busy
	Completions         uint64
}

// MSHRFile is a fixed-capacity collection of MSHRs. Occupancy and the
// earliest in-flight completion cycle are tracked incrementally so the
// per-cycle Completed sweep is O(1) when nothing can complete — the
// file sits on the simulator's hot loop at every cache level.
type MSHRFile struct {
	entries   []MSHR
	occupied  int
	nextReady uint64 // earliest ReadyCycle among valid entries (neverReady when empty)
	Stats     MSHRStats
}

// neverReady is the nextReady sentinel for an empty file.
const neverReady = ^uint64(0)

// NewMSHRFile builds a file with n entries.
func NewMSHRFile(n int) *MSHRFile {
	if n <= 0 {
		panic("cache: MSHR file needs at least one entry")
	}
	return &MSHRFile{entries: make([]MSHR, n), nextReady: neverReady}
}

// Lookup returns the in-flight entry for lineAddr, or nil.
func (f *MSHRFile) Lookup(lineAddr isa.Addr) *MSHR {
	for i := range f.entries {
		if f.entries[i].Valid && f.entries[i].LineAddr == lineAddr {
			return &f.entries[i]
		}
	}
	return nil
}

// Allocate reserves an entry for a new fill. It returns nil when the file
// is full (the requester must retry or stall).
func (f *MSHRFile) Allocate(lineAddr isa.Addr, issue, ready uint64, prefetch, offPath bool) *MSHR {
	for i := range f.entries {
		if !f.entries[i].Valid {
			f.entries[i] = MSHR{
				LineAddr:   lineAddr,
				Valid:      true,
				Prefetch:   prefetch,
				IssueCycle: issue,
				ReadyCycle: ready,
				OffPath:    offPath,
			}
			f.Stats.Allocations++
			if prefetch {
				f.Stats.PrefetchAllocations++
			}
			f.occupied++
			if ready < f.nextReady {
				f.nextReady = ready
			}
			return &f.entries[i]
		}
	}
	f.Stats.AllocFailures++
	return nil
}

// MergeDemand records a demand access merging into an in-flight fill.
// It returns the cycle at which the data will be available.
func (f *MSHRFile) MergeDemand(m *MSHR) uint64 {
	if m.Prefetch && !m.DemandMerged {
		m.DemandMerged = true
		f.Stats.DemandMerges++
	}
	return m.ReadyCycle
}

// Completed collects entries whose fills have arrived by cycle, invoking
// install for each and freeing them. The install callback receives the
// finished entry by value. The sweep is skipped entirely when no entry
// can have completed (the common per-cycle case).
func (f *MSHRFile) Completed(cycle uint64, install func(MSHR)) {
	if f.occupied == 0 || cycle < f.nextReady {
		return
	}
	// Recompute from scratch: reset to the sentinel so an install
	// callback that re-Allocates into this file lowers it via Allocate,
	// then fold in the minimum over the surviving entries below.
	f.nextReady = neverReady
	next := uint64(neverReady)
	for i := range f.entries {
		if !f.entries[i].Valid {
			continue
		}
		if f.entries[i].ReadyCycle <= cycle {
			e := f.entries[i]
			f.entries[i].Valid = false
			f.occupied--
			f.Stats.Completions++
			install(e)
			continue
		}
		if f.entries[i].ReadyCycle < next {
			next = f.entries[i].ReadyCycle
		}
	}
	if next < f.nextReady {
		f.nextReady = next
	}
}

// Occupancy returns the number of in-flight entries.
func (f *MSHRFile) Occupancy() int { return f.occupied }

// Capacity returns the file size.
func (f *MSHRFile) Capacity() int { return len(f.entries) }

// Full reports whether no entry is free.
func (f *MSHRFile) Full() bool { return f.occupied == len(f.entries) }

// Flush drops all in-flight entries (used only by tests and machine
// reset; real fills are never cancelled mid-flight by the frontend).
func (f *MSHRFile) Flush() {
	for i := range f.entries {
		f.entries[i].Valid = false
	}
	f.occupied = 0
	f.nextReady = neverReady
}
