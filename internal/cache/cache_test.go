package cache

import (
	"testing"
	"testing/quick"

	"udpsim/internal/isa"
)

func small() *Cache {
	return New(Config{Name: "t", SizeBytes: 4 * 1024, Ways: 4, HitLatency: 3})
}

func ln(i int) isa.Addr { return isa.Addr(i * isa.LineBytes) }

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", SizeBytes: 32 * 1024, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 8},
		{Name: "negways", SizeBytes: 1024, Ways: 0},
		{Name: "indivisible", SizeBytes: 1000, Ways: 3},
		{Name: "nonpow2sets", SizeBytes: 3 * 64 * 4, Ways: 4}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
	if good.Sets() != 32*1024/(8*64) {
		t.Errorf("Sets() = %d", good.Sets())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 1000, Ways: 3})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(ln(1), 1); r.Hit {
		t.Fatal("cold access hit")
	}
	c.Insert(ln(1), 2, false)
	if r := c.Access(ln(1), 3); !r.Hit || r.WasPrefetched {
		t.Fatalf("expected plain hit, got %+v", r)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := small()
	c.InsertPath(ln(1), 1, true, true)
	if !c.PrefetchBit(ln(1)) {
		t.Fatal("prefetch bit not set")
	}
	r := c.Access(ln(1), 2)
	if !r.Hit || !r.WasPrefetched || !r.WasOffPathPrefetch {
		t.Fatalf("first demand hit should report prefetch provenance: %+v", r)
	}
	// Second access: bit cleared.
	r = c.Access(ln(1), 3)
	if !r.Hit || r.WasPrefetched || r.WasOffPathPrefetch {
		t.Fatalf("second hit still reports prefetch: %+v", r)
	}
	if c.PrefetchBit(ln(1)) {
		t.Error("prefetch bit survived demand hit")
	}
	if c.Stats.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d", c.Stats.PrefetchHits)
	}
}

func TestUselessPrefetchEviction(t *testing.T) {
	c := New(Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2}) // 1 set, 2 ways
	c.InsertPath(ln(0), 1, true, true)
	c.Insert(ln(1), 2, false)
	// Third insert evicts the LRU (line 0, an unused off-path prefetch).
	ev := c.Insert(ln(2), 3, false)
	if !ev.Valid || !ev.WasUnusedPrefetch || !ev.WasOffPath {
		t.Fatalf("eviction = %+v", ev)
	}
	if ev.LineAddr != ln(0) {
		t.Errorf("evicted %v, want %v", ev.LineAddr, ln(0))
	}
	if c.Stats.UselessPrefetchEvictions != 1 {
		t.Errorf("UselessPrefetchEvictions = %d", c.Stats.UselessPrefetchEvictions)
	}
}

func TestUsedPrefetchNotUseless(t *testing.T) {
	c := New(Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2})
	c.Insert(ln(0), 1, true)
	c.Access(ln(0), 2) // consume: clears prefetch bit
	c.Insert(ln(1), 3, false)
	ev := c.Insert(ln(2), 4, false)
	// LRU victim is line 1 (line 0 was touched at cycle 2... stamps:
	// line0 stamp 2, line1 stamp 3 → victim = line0). Either way the
	// eviction must not be flagged useless.
	if ev.WasUnusedPrefetch {
		t.Errorf("consumed prefetch flagged useless: %+v", ev)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(Config{Name: "lru", SizeBytes: 4 * 64, Ways: 4}) // 1 set
	for i := 0; i < 4; i++ {
		c.Insert(ln(i), uint64(i+1), false)
	}
	c.Access(ln(0), 10) // make line 0 MRU
	ev := c.Insert(ln(9), 11, false)
	if ev.LineAddr != ln(1) {
		t.Errorf("evicted %v, want LRU line 1", ev.LineAddr)
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := small()
	c.Insert(ln(1), 1, false)
	ev := c.Insert(ln(1), 2, true)
	if ev.Valid {
		t.Errorf("re-insert evicted %+v", ev)
	}
	// Re-insert must not set the prefetch bit on an already-demanded
	// line.
	if c.PrefetchBit(ln(1)) {
		t.Error("re-insert flipped prefetch bit")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(ln(1), 1, true)
	present, unused := c.Invalidate(ln(1))
	if !present || !unused {
		t.Errorf("invalidate = (%v, %v)", present, unused)
	}
	if c.Lookup(ln(1)) {
		t.Error("line survived invalidate")
	}
	present, _ = c.Invalidate(ln(1))
	if present {
		t.Error("double invalidate reported present")
	}
}

func TestFlushCountsUnusedPrefetches(t *testing.T) {
	c := small()
	c.Insert(ln(1), 1, true)
	c.Insert(ln(2), 2, false)
	c.Flush()
	if c.Occupancy() != 0 {
		t.Errorf("occupancy %d after flush", c.Occupancy())
	}
	if c.Stats.UselessPrefetchEvictions != 1 {
		t.Errorf("UselessPrefetchEvictions = %d", c.Stats.UselessPrefetchEvictions)
	}
}

func TestRandomPolicyEvictsSomething(t *testing.T) {
	c := New(Config{Name: "rnd", SizeBytes: 4 * 64, Ways: 4, Policy: Random})
	for i := 0; i < 4; i++ {
		c.Insert(ln(i), uint64(i), false)
	}
	ev := c.Insert(ln(10), 5, false)
	if !ev.Valid {
		t.Error("full set insert did not evict")
	}
	if c.Occupancy() != 4 {
		t.Errorf("occupancy %d", c.Occupancy())
	}
}

func TestEvictionAddressReconstruction(t *testing.T) {
	c := New(Config{Name: "rec", SizeBytes: 2 * 1024, Ways: 2})
	// Two lines mapping to the same set: differ by sets*linebytes.
	sets := c.Config().Sets()
	a := ln(5)
	b := a + isa.Addr(sets*isa.LineBytes)
	cc := b + isa.Addr(sets*isa.LineBytes)
	c.Insert(a, 1, false)
	c.Insert(b, 2, false)
	ev := c.Insert(cc, 3, false)
	if ev.LineAddr != a {
		t.Errorf("reconstructed %v, want %v", ev.LineAddr, a)
	}
}

// Property: occupancy never exceeds capacity and lookup sees exactly
// the most recent Capacity-or-fewer distinct inserted lines when no
// conflicts... (weaker: occupancy bound + all recent same-set hits).
func TestOccupancyBound(t *testing.T) {
	f := func(lines []uint8) bool {
		c := New(Config{Name: "p", SizeBytes: 1024, Ways: 2})
		for i, l := range lines {
			c.Insert(ln(int(l)), uint64(i), false)
		}
		return c.Occupancy() <= c.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Hits: 90, Misses: 10}
	if s.HitRate() != 0.9 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if s.MPKI(1000) != 10 {
		t.Errorf("MPKI = %v", s.MPKI(1000))
	}
	var zero Stats
	if zero.HitRate() != 0 || zero.MPKI(0) != 0 {
		t.Error("zero stats should not divide by zero")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []ReplacementPolicy{LRU, FIFO, Random, ReplacementPolicy(99)} {
		if p.String() == "" {
			t.Errorf("empty string for %d", p)
		}
	}
}
