package core

import (
	"udpsim/internal/bloom"
	"udpsim/internal/isa"
)

// UsefulSet is the learned set of prefetch-candidate lines worth
// emitting on the (assumed) off-path.
type UsefulSet interface {
	// Lookup returns how many consecutive lines starting at line should
	// be prefetched (1, 2 or 4), or 0 when the candidate is unknown.
	Lookup(line isa.Addr) int
	// Learn records that line was proven useful.
	Learn(line isa.Addr)
	// LearnUseless records that a prefetch of line was evicted unused.
	// Only storage-unconstrained implementations track this; the Bloom
	// useful-set ignores it (its 8KB budget holds useful lines only).
	LearnUseless(line isa.Addr)
	// MaybeFlush applies the set's replacement policy given the current
	// unuseful ratio; returns true if the set was cleared.
	MaybeFlush(unusefulRatio float64) bool
	// StorageBytes reports the hardware budget.
	StorageBytes() uint
}

// coalesceDepth is the size of the recent-candidate buffer used to form
// super-lines (paper: "a small buffer that stores the last eight recent
// prefetch candidates before they get inserted into the filter").
const coalesceDepth = 8

// BloomUsefulSet is the paper's space-efficient useful-set: three
// partitioned Bloom filters holding 1-line, 2-line, and 4-line
// super-blocks (16k + 1k + 1k bits, 6 hash functions, ~1% FPR), fed
// through an 8-entry coalescing buffer that merges consecutive lines.
type BloomUsefulSet struct {
	f1, f2, f4 *bloom.Filter
	buf        []isa.Addr // pending learned lines, oldest first
	// FlushThreshold is the unuseful ratio beyond which a full filter
	// is cleared (paper: 0.75).
	FlushThreshold float64

	// Stats
	Learned   uint64
	Inserted1 uint64
	Inserted2 uint64
	Inserted4 uint64
	Flushes   uint64
	Lookups   uint64
	Hits1     uint64
	Hits2     uint64
	Hits4     uint64
}

// NewBloomUsefulSet builds the paper's configuration.
func NewBloomUsefulSet() *BloomUsefulSet {
	return &BloomUsefulSet{
		f1:             bloom.New(16*1024, 6),
		f2:             bloom.New(1024, 6),
		f4:             bloom.New(1024, 6),
		FlushThreshold: 0.75,
	}
}

func lineKey(line isa.Addr) uint64 { return uint64(line) >> isa.LineShift }

// Lookup implements UsefulSet. The three filters are probed in parallel
// in hardware; the widest hit wins so one useful-set entry can launch
// up to four line prefetches.
func (s *BloomUsefulSet) Lookup(line isa.Addr) int {
	s.Lookups++
	k := lineKey(line)
	if s.f4.Contains(k) {
		s.Hits4++
		return 4
	}
	if s.f2.Contains(k) {
		s.Hits2++
		return 2
	}
	if s.f1.Contains(k) {
		s.Hits1++
		return 1
	}
	return 0
}

// Learn implements UsefulSet: the line enters the coalescing buffer;
// once the buffer fills, the oldest run is folded into the narrowest
// filter that covers it.
func (s *BloomUsefulSet) Learn(line isa.Addr) {
	s.Learned++
	line = line.Line()
	// Ignore duplicates already pending.
	for _, p := range s.buf {
		if p == line {
			return
		}
	}
	s.buf = append(s.buf, line)
	if len(s.buf) > coalesceDepth {
		s.drainOne()
	}
}

// drainOne folds the oldest buffered candidate (and any consecutive
// run it starts) into a filter.
func (s *BloomUsefulSet) drainOne() {
	base := s.buf[0]
	run := 1
	// Find monotonically increasing consecutive lines anywhere in the
	// buffer (the hardware compares against all eight entries).
	for run < 4 {
		next := base + isa.Addr(run*isa.LineBytes)
		found := false
		for _, p := range s.buf[1:] {
			if p == next {
				found = true
				break
			}
		}
		if !found {
			break
		}
		run++
	}
	switch {
	case run >= 4:
		s.f4.Insert(lineKey(base))
		s.Inserted4++
		s.removeRun(base, 4)
	case run >= 2:
		s.f2.Insert(lineKey(base))
		s.Inserted2++
		s.removeRun(base, 2)
	default:
		s.f1.Insert(lineKey(base))
		s.Inserted1++
		s.removeRun(base, 1)
	}
}

// Flush drains all pending buffered candidates (tests / end of run).
func (s *BloomUsefulSet) FlushBuffer() {
	for len(s.buf) > 0 {
		s.drainOne()
	}
}

func (s *BloomUsefulSet) removeRun(base isa.Addr, n int) {
	keep := s.buf[:0]
	for _, p := range s.buf {
		in := false
		for k := 0; k < n; k++ {
			if p == base+isa.Addr(k*isa.LineBytes) {
				in = true
				break
			}
		}
		if !in {
			keep = append(keep, p)
		}
	}
	s.buf = keep
}

// LearnUseless implements UsefulSet (no-op: the 8KB budget cannot
// afford negative entries; useless pressure is handled by the flush
// policy instead).
func (s *BloomUsefulSet) LearnUseless(isa.Addr) {}

// MaybeFlush implements UsefulSet: when any filter saturates and the
// recent unuseful ratio exceeds the threshold, all filters clear and
// learning restarts (paper Section IV-B).
func (s *BloomUsefulSet) MaybeFlush(unusefulRatio float64) bool {
	if unusefulRatio < s.FlushThreshold {
		return false
	}
	if !s.f1.Full() && !s.f2.Full() && !s.f4.Full() {
		return false
	}
	s.f1.Clear()
	s.f2.Clear()
	s.f4.Clear()
	s.buf = s.buf[:0]
	s.Flushes++
	return true
}

// StorageBytes implements UsefulSet: the three filters plus the
// 8-entry coalescing buffer (line addresses, ~6 bytes each).
func (s *BloomUsefulSet) StorageBytes() uint {
	return s.f1.SizeBytes() + s.f2.SizeBytes() + s.f4.SizeBytes() + coalesceDepth*6
}

// FillRatio reports the 1-block filter's load (diagnostics).
func (s *BloomUsefulSet) FillRatio() float64 { return s.f1.FillRatio() }

// InfiniteUsefulSet is the paper's "Infinite Storage" upper bound: with
// no capacity limit it tracks *both* outcomes — lines proven useful and
// lines whose prefetches were evicted unused — and drops only the
// proven-useless ones, emitting unknown candidates optimistically. This
// makes it a true upper bound on the Bloom implementation, which must
// drop every unknown candidate because it can only afford to remember
// useful lines.
type InfiniteUsefulSet struct {
	// score holds saturating per-line utility evidence: useful hits add
	// +2 (saturating at +3), unused evictions add −1 (saturating at −3).
	// A candidate is dropped only with clearly negative evidence
	// (score ≤ −2); unknown lines are emitted optimistically.
	score map[uint64]int8

	Learned        uint64
	LearnedUseless uint64
	Lookups        uint64
	Hits           uint64
	Drops          uint64
}

// NewInfiniteUsefulSet builds the upper-bound set.
func NewInfiniteUsefulSet() *InfiniteUsefulSet {
	return &InfiniteUsefulSet{score: make(map[uint64]int8)}
}

// Lookup implements UsefulSet. Like the Bloom implementation's
// super-line filters, a learned run of consecutive useful lines is
// emitted together (up to 4).
func (s *InfiniteUsefulSet) Lookup(line isa.Addr) int {
	s.Lookups++
	base := lineKey(line.Line())
	sc := s.score[base]
	if sc <= -2 {
		s.Drops++
		return 0
	}
	if sc <= 0 {
		// Unknown or weak evidence: emit one line optimistically; the
		// outcome will refine the score.
		return 1
	}
	s.Hits++
	n := 1
	for n < 4 {
		if s.score[base+uint64(n)] <= 0 {
			break
		}
		n++
	}
	return n
}

// Learn implements UsefulSet.
func (s *InfiniteUsefulSet) Learn(line isa.Addr) {
	s.Learned++
	k := lineKey(line.Line())
	sc := s.score[k] + 2
	if sc > 3 {
		sc = 3
	}
	s.score[k] = sc
}

// LearnUseless implements UsefulSet: one unused eviction is weak
// evidence (capacity churn also evicts genuinely useful prefetches), so
// it takes repeated uselessness to suppress a line.
func (s *InfiniteUsefulSet) LearnUseless(line isa.Addr) {
	s.LearnedUseless++
	k := lineKey(line.Line())
	sc := s.score[k] - 1
	if sc < -3 {
		sc = -3
	}
	s.score[k] = sc
}

// MaybeFlush implements UsefulSet (never flushes).
func (s *InfiniteUsefulSet) MaybeFlush(float64) bool { return false }

// StorageBytes implements UsefulSet (unbounded; reports current).
func (s *InfiniteUsefulSet) StorageBytes() uint { return uint(len(s.score)) * 8 }
