package core

import (
	"testing"

	"udpsim/internal/isa"
)

func drainAll(s *BloomUsefulSet) { s.FlushBuffer() }

func TestBloomSetLearnsSingles(t *testing.T) {
	s := NewBloomUsefulSet()
	s.Learn(ln(1))
	s.Learn(ln(100))
	drainAll(s)
	if s.Lookup(ln(1)) == 0 || s.Lookup(ln(100)) == 0 {
		t.Error("learned lines not found")
	}
	if s.Inserted1 != 2 {
		t.Errorf("Inserted1 = %d", s.Inserted1)
	}
}

func TestBloomSetFormsSuperLines(t *testing.T) {
	s := NewBloomUsefulSet()
	// Four consecutive lines (any arrival order within the buffer).
	s.Learn(ln(10))
	s.Learn(ln(12))
	s.Learn(ln(11))
	s.Learn(ln(13))
	drainAll(s)
	if s.Inserted4 != 1 {
		t.Fatalf("expected one 4-block insert, got 4:%d 2:%d 1:%d",
			s.Inserted4, s.Inserted2, s.Inserted1)
	}
	if got := s.Lookup(ln(10)); got != 4 {
		t.Errorf("4-block lookup returned %d", got)
	}
}

func TestBloomSetFormsPairs(t *testing.T) {
	s := NewBloomUsefulSet()
	s.Learn(ln(20))
	s.Learn(ln(21))
	s.Learn(ln(500)) // unrelated
	drainAll(s)
	if s.Inserted2 != 1 {
		t.Fatalf("expected one 2-block insert: 4:%d 2:%d 1:%d",
			s.Inserted4, s.Inserted2, s.Inserted1)
	}
	if got := s.Lookup(ln(20)); got != 2 {
		t.Errorf("2-block lookup returned %d", got)
	}
}

func TestBloomSetDuplicatesIgnoredInBuffer(t *testing.T) {
	s := NewBloomUsefulSet()
	for i := 0; i < 20; i++ {
		s.Learn(ln(42))
	}
	drainAll(s)
	if s.Inserted1 != 1 {
		t.Errorf("duplicate learns inserted %d times", s.Inserted1)
	}
}

func TestBloomSetUnknownDropped(t *testing.T) {
	s := NewBloomUsefulSet()
	if s.Lookup(ln(9999)) != 0 {
		t.Error("unknown line not dropped (false positive on empty filter)")
	}
}

func TestBloomSetFlushPolicy(t *testing.T) {
	s := NewBloomUsefulSet()
	if s.MaybeFlush(0.9) {
		t.Error("empty filter flushed")
	}
	for i := 0; !s.f1.Full(); i++ {
		s.Learn(ln(i * 3))
		s.FlushBuffer()
	}
	if s.MaybeFlush(0.5) {
		t.Error("flushed below threshold")
	}
	if !s.MaybeFlush(0.8) {
		t.Error("saturated filter with unuseful ratio 0.8 not flushed")
	}
	if s.Lookup(ln(3)) != 0 && s.Lookup(ln(6)) != 0 && s.Lookup(ln(9)) != 0 {
		t.Error("filters not cleared")
	}
	if s.Flushes != 1 {
		t.Errorf("Flushes = %d", s.Flushes)
	}
}

func TestBloomSetStorage(t *testing.T) {
	s := NewBloomUsefulSet()
	// 16k + 1k + 1k bits = 2.25 KiB + coalescing buffer.
	if b := s.StorageBytes(); b < 2*1024 || b > 3*1024 {
		t.Errorf("bloom storage %d bytes", b)
	}
	s.LearnUseless(ln(1)) // must be a no-op
	drainAll(s)
	if s.Lookup(ln(1)) != 0 {
		t.Error("LearnUseless inserted a line")
	}
}

func TestInfiniteSetScores(t *testing.T) {
	s := NewInfiniteUsefulSet()
	// Unknown: optimistic single-line emit.
	if got := s.Lookup(ln(1)); got != 1 {
		t.Errorf("unknown lookup = %d, want optimistic 1", got)
	}
	// One useless strike: still emitted (weak evidence).
	s.LearnUseless(ln(1))
	if got := s.Lookup(ln(1)); got != 1 {
		t.Errorf("one-strike lookup = %d", got)
	}
	// Two strikes: dropped.
	s.LearnUseless(ln(1))
	if got := s.Lookup(ln(1)); got != 0 {
		t.Errorf("two-strike lookup = %d, want drop", got)
	}
	// Usefulness evidence rehabilitates.
	s.Learn(ln(1))
	if got := s.Lookup(ln(1)); got < 1 {
		t.Errorf("rehabilitated lookup = %d", got)
	}
}

func TestInfiniteSetSuperLines(t *testing.T) {
	s := NewInfiniteUsefulSet()
	for i := 0; i < 4; i++ {
		s.Learn(ln(10 + i))
	}
	if got := s.Lookup(ln(10)); got != 4 {
		t.Errorf("consecutive learned run lookup = %d, want 4", got)
	}
	if got := s.Lookup(ln(12)); got != 2 {
		t.Errorf("mid-run lookup = %d, want 2", got)
	}
}

func TestInfiniteSetSaturation(t *testing.T) {
	s := NewInfiniteUsefulSet()
	for i := 0; i < 10; i++ {
		s.Learn(ln(1))
		s.LearnUseless(ln(2))
	}
	if s.Lookup(ln(1)) == 0 {
		t.Error("saturated useful dropped")
	}
	if s.Lookup(ln(2)) != 0 {
		t.Error("saturated useless emitted")
	}
	if s.MaybeFlush(1.0) {
		t.Error("infinite set flushed")
	}
	if s.StorageBytes() == 0 {
		t.Error("zero storage accounting")
	}
}

func TestSeniorityFIFO(t *testing.T) {
	s := NewSeniorityFTQ(4)
	for i := 0; i < 4; i++ {
		s.Insert(ln(i))
	}
	if s.Len() != 4 {
		t.Fatalf("len %d", s.Len())
	}
	// Duplicate insert is a no-op.
	s.Insert(ln(0))
	if s.Insertions != 4 {
		t.Errorf("duplicate counted: %d", s.Insertions)
	}
	// Fifth insert evicts the oldest (line 0).
	s.Insert(ln(9))
	if s.Match(ln(0)) {
		t.Error("evicted entry matched")
	}
	if !s.Match(ln(9)) {
		t.Error("new entry not found")
	}
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d", s.Evictions)
	}
}

func TestSeniorityMatchConsumes(t *testing.T) {
	s := NewSeniorityFTQ(8)
	s.Insert(ln(1))
	if !s.Match(ln(1)) {
		t.Fatal("no match")
	}
	if s.Match(ln(1)) {
		t.Error("match not consumed")
	}
	if s.Matches != 1 {
		t.Errorf("Matches = %d", s.Matches)
	}
}

func TestSeniorityLineGranular(t *testing.T) {
	s := NewSeniorityFTQ(8)
	s.Insert(ln(1) + 4) // mid-line address
	if !s.Match(ln(1) + 60) {
		t.Error("same-line address did not match")
	}
}

func TestSeniorityPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSeniorityFTQ(0)
}

func TestSeniorityStorage(t *testing.T) {
	s := NewSeniorityFTQ(128)
	if s.StorageBytes() == 0 || s.Cap() != 128 {
		t.Error("storage accounting")
	}
	_ = isa.Addr(0)
}
