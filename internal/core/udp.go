package core

import (
	"fmt"

	"udpsim/internal/bp"
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
	"udpsim/internal/obs"
)

// UDPConfig parameterizes the utility-driven prefetch filter.
type UDPConfig struct {
	// ConfidenceThreshold: the frontend is assumed off-path once the
	// accumulated confidence counter (low=+2, medium=+1, high=+0 per
	// conditional prediction) exceeds this.
	ConfidenceThreshold int
	// SeniorityEntries sizes the Seniority-FTQ.
	SeniorityEntries int
	// Infinite switches the useful-set to the unbounded upper bound
	// (the paper's "Infinite Storage" configuration).
	Infinite bool
	// OutcomeWindow sizes the sliding window for the unuseful-ratio
	// flush policy.
	OutcomeWindow int
	// HiddenBranchTableBits sizes the hidden-taken-branch table
	// (log2 entries) backing the "predicted taken but missing in BTB"
	// off-path trigger.
	HiddenBranchTableBits uint
	// DisableHiddenTrigger turns the hidden-taken-branch trigger off
	// (ablation).
	DisableHiddenTrigger bool
}

// DefaultUDPConfig returns the paper's configuration (8KB total
// storage).
func DefaultUDPConfig() UDPConfig {
	return UDPConfig{
		ConfidenceThreshold:   8,
		SeniorityEntries:      128,
		OutcomeWindow:         256,
		HiddenBranchTableBits: 12,
	}
}

// UDP is the utility-driven prefetch mechanism (paper Section IV-B),
// implemented as a frontend.Tuner:
//
//   - A confidence counter accumulates TAGE prediction (un)confidence;
//     past a threshold the frontend is assumed off-path.
//   - Assumed-off-path prefetch candidates are emitted only when found
//     in the learned useful-set (Bloom filters with super-line
//     compression), and are tracked in the Seniority-FTQ either way.
//   - Retirement matching against the Seniority-FTQ, and demand hits on
//     off-path-prefetched lines, feed the useful-set.
//   - When a filter saturates with a high unuseful ratio, it is
//     cleared.
//
// UDP leaves the FTQ depth alone (the paper evaluates it on a fixed
// 32-deep FTQ).
type UDP struct {
	frontend.NopTuner
	cfg UDPConfig

	confCounter int
	assumed     bool

	sen    *SeniorityFTQ
	useful UsefulSet

	// Sliding outcome window for the flush policy.
	outcomes     []bool // true = useless
	outcomeIdx   int
	uselessInWin int

	// hiddenTaken is a table of 2-bit counters indexed by fetch-block
	// address: "this block tends to contain a taken branch". When a
	// block ends sequentially (no BTB-predicted taken branch) but the
	// table disagrees, UDP suspects an undetected BTB miss and assumes
	// off-path — the paper's second trigger.
	hiddenTaken []int8
	hiddenMask  uint64

	// Stats
	OffPathAssumptions uint64
	CandidatesSeen     uint64
	CandidatesDropped  uint64
	CandidatesEmitted  uint64
	HiddenBranchHits   uint64
	Resteers           uint64

	// Obs receives udp-learn/udp-drop events when non-nil (nil-guarded
	// observability hooks).
	Obs *obs.Observer
}

// NewUDP builds the mechanism.
func NewUDP(cfg UDPConfig) *UDP {
	if cfg.ConfidenceThreshold <= 0 {
		cfg.ConfidenceThreshold = 8
	}
	if cfg.SeniorityEntries <= 0 {
		cfg.SeniorityEntries = 128
	}
	if cfg.OutcomeWindow <= 0 {
		cfg.OutcomeWindow = 256
	}
	if cfg.HiddenBranchTableBits == 0 {
		cfg.HiddenBranchTableBits = 12
	}
	var set UsefulSet
	if cfg.Infinite {
		set = NewInfiniteUsefulSet()
	} else {
		set = NewBloomUsefulSet()
	}
	return &UDP{
		cfg:         cfg,
		sen:         NewSeniorityFTQ(cfg.SeniorityEntries),
		useful:      set,
		outcomes:    make([]bool, cfg.OutcomeWindow),
		hiddenTaken: make([]int8, 1<<cfg.HiddenBranchTableBits),
		hiddenMask:  1<<cfg.HiddenBranchTableBits - 1,
	}
}

// Name returns the mechanism's display name.
func (u *UDP) Name() string {
	if u.cfg.Infinite {
		return "UDP-infinite"
	}
	return "UDP"
}

// Set exposes the useful-set (stats, tests).
func (u *UDP) Set() UsefulSet { return u.useful }

// Seniority exposes the Seniority-FTQ (stats, tests).
func (u *UDP) Seniority() *SeniorityFTQ { return u.sen }

// ConfidenceCounter exposes the current off-path confidence estimate.
func (u *UDP) ConfidenceCounter() int { return u.confCounter }

// OnCondPrediction implements frontend.Tuner: accumulate prediction
// (un)confidence; past the threshold, assume off-path.
func (u *UDP) OnCondPrediction(conf bp.Confidence) {
	u.confCounter += conf.UDPIncrement()
	if !u.assumed && u.confCounter > u.cfg.ConfidenceThreshold {
		u.assumed = true
		u.OffPathAssumptions++
	}
}

// OnResteer implements frontend.Tuner: any recovery or BTB resteer
// resets the confidence counter (paper Section IV-B).
func (u *UDP) OnResteer(frontend.ResteerKind) {
	u.Resteers++
	u.confCounter = 0
	u.assumed = false
}

// AssumeOffPath implements frontend.Tuner.
func (u *UDP) AssumeOffPath() bool { return u.assumed }

func (u *UDP) hiddenIdx(block isa.Addr) uint64 {
	x := uint64(block) >> isa.FetchBlockShift
	x ^= x >> 13
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 31
	return x & u.hiddenMask
}

// OnRetireTakenBranch implements frontend.Tuner: train the
// hidden-taken-branch table.
func (u *UDP) OnRetireTakenBranch(block isa.Addr) {
	c := &u.hiddenTaken[u.hiddenIdx(block)]
	if *c < 3 {
		*c++
	}
}

// OnSequentialBlockEnd implements frontend.Tuner: a block that the BTB
// claims has no taken branch, but that history says usually takes one,
// signals an undetected BTB miss — assume off-path.
func (u *UDP) OnSequentialBlockEnd(block isa.Addr) {
	if u.cfg.DisableHiddenTrigger {
		return
	}
	i := u.hiddenIdx(block)
	if u.hiddenTaken[i] >= 2 {
		u.hiddenTaken[i]-- // decay so stale entries clear
		if !u.assumed {
			u.assumed = true
			u.confCounter = u.cfg.ConfidenceThreshold + 1
			u.HiddenBranchHits++
			u.OffPathAssumptions++
		}
	}
}

// OnCandidate implements frontend.Tuner: every assumed-off-path
// prefetch candidate (emitted or dropped) enters the Seniority-FTQ so
// retirement can prove it useful later.
func (u *UDP) OnCandidate(line isa.Addr) {
	u.CandidatesSeen++
	u.sen.Insert(line)
}

// FilterCandidate implements frontend.Tuner: on the assumed off-path,
// emit only learned-useful candidates; a super-line hit emits 2 or 4
// consecutive lines.
func (u *UDP) FilterCandidate(line isa.Addr) int {
	n := u.useful.Lookup(line)
	if n == 0 {
		u.CandidatesDropped++
		if u.Obs != nil {
			u.Obs.UDPDrop(uint64(line))
		}
		return 0
	}
	u.CandidatesEmitted++
	return n
}

// OnRetire implements frontend.Tuner: Seniority-FTQ matching — a
// retired instruction whose line matches a tracked candidate proves the
// candidate useful, feeding the useful-set (through the coalescing
// buffer for the Bloom implementation).
func (u *UDP) OnRetire(line isa.Addr) {
	if u.sen.Match(line) {
		u.useful.Learn(line)
		if u.Obs != nil {
			u.Obs.UDPLearn(uint64(line))
		}
	}
}

// OnPrefetchUseful implements frontend.Tuner: an on-path demand hit on
// an off-path prefetch is direct evidence of usefulness.
func (u *UDP) OnPrefetchUseful(line isa.Addr, offPath bool) {
	if offPath {
		u.useful.Learn(line)
		if u.Obs != nil {
			u.Obs.UDPLearn(uint64(line))
		}
	}
	u.recordOutcome(false)
}

// OnPrefetchUseless implements frontend.Tuner: negative evidence for
// the useful-set (where it can afford to store it) and the flush
// policy.
func (u *UDP) OnPrefetchUseless(line isa.Addr, offPath bool) {
	if offPath {
		u.useful.LearnUseless(line)
	}
	u.recordOutcome(true)
}

func (u *UDP) recordOutcome(useless bool) {
	old := u.outcomes[u.outcomeIdx]
	if old {
		u.uselessInWin--
	}
	u.outcomes[u.outcomeIdx] = useless
	if useless {
		u.uselessInWin++
	}
	u.outcomeIdx = (u.outcomeIdx + 1) % len(u.outcomes)
	u.useful.MaybeFlush(float64(u.uselessInWin) / float64(len(u.outcomes)))
}

// StorageBytes reports the mechanism's hardware budget: useful-set
// filters, coalescing buffer, Seniority-FTQ, hidden-branch table, and
// counters. The paper's total for the default configuration is 8KB.
func (u *UDP) StorageBytes() uint {
	bits := uint(2) * uint(len(u.hiddenTaken)) // 2-bit counters
	return u.useful.StorageBytes() + u.sen.StorageBytes() + bits/8 + 16
}

// String summarizes learning activity.
func (u *UDP) String() string {
	base := fmt.Sprintf("%s: %d assumed-off-path (%d via hidden-branch), %d candidates (%d emitted, %d dropped), seniority %d/%d (ins %d, match %d, evict %d)",
		u.Name(), u.OffPathAssumptions, u.HiddenBranchHits, u.CandidatesSeen, u.CandidatesEmitted,
		u.CandidatesDropped, u.sen.Len(), u.sen.Cap(), u.sen.Insertions, u.sen.Matches, u.sen.Evictions)
	switch set := u.useful.(type) {
	case *BloomUsefulSet:
		return fmt.Sprintf("%s; bloom learned %d (ins %d/%d/%d, flushes %d, fill %.2f, lookups %d, hits %d/%d/%d)",
			base, set.Learned, set.Inserted1, set.Inserted2, set.Inserted4, set.Flushes,
			set.FillRatio(), set.Lookups, set.Hits1, set.Hits2, set.Hits4)
	case *InfiniteUsefulSet:
		return fmt.Sprintf("%s; infinite learned %d useful / %d useless, lookups %d (hits %d, drops %d)",
			base, set.Learned, set.LearnedUseless, set.Lookups, set.Hits, set.Drops)
	default:
		return base
	}
}
