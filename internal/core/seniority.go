package core

import "udpsim/internal/isa"

// SeniorityFTQ tracks off-path prefetch-candidate blocks after they
// leave the FTQ (paper Section IV-B). Its entries deliberately survive
// pipeline flushes — that seniority is what lets an off-path candidate
// be matched against *post-recovery on-path retirement* at the merge
// point, proving the candidate useful.
//
// It is much smaller than the ROB because it holds coarse fetch-block
// lines, and only ones that were actual prefetch candidates.
type SeniorityFTQ struct {
	ring  []isa.Addr
	index map[isa.Addr]int // line -> ring position
	head  int
	count int

	Insertions uint64
	Matches    uint64
	Evictions  uint64
}

// NewSeniorityFTQ builds a tracker with n entries.
func NewSeniorityFTQ(n int) *SeniorityFTQ {
	if n <= 0 {
		panic("core: Seniority-FTQ needs at least one entry")
	}
	return &SeniorityFTQ{
		ring:  make([]isa.Addr, n),
		index: make(map[isa.Addr]int, n),
	}
}

// Insert tracks a candidate line; duplicates refresh nothing (the
// original position keeps aging).
func (s *SeniorityFTQ) Insert(line isa.Addr) {
	line = line.Line()
	if _, ok := s.index[line]; ok {
		return
	}
	pos := (s.head + s.count) % len(s.ring)
	if s.count == len(s.ring) {
		// Evict the oldest.
		old := s.ring[s.head]
		delete(s.index, old)
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		s.Evictions++
		pos = (s.head + s.count) % len(s.ring)
	}
	s.ring[pos] = line
	s.index[line] = pos
	s.count++
	s.Insertions++
}

// Match tests whether line is tracked; on a hit the entry is consumed
// (the candidate has been proven useful).
func (s *SeniorityFTQ) Match(line isa.Addr) bool {
	line = line.Line()
	pos, ok := s.index[line]
	if !ok {
		return false
	}
	s.Matches++
	// Lazy removal: mark the slot invalid by zeroing; zero never
	// matches because index is authoritative.
	delete(s.index, line)
	s.ring[pos] = 0
	return true
}

// Len returns the number of live tracked candidates.
func (s *SeniorityFTQ) Len() int { return len(s.index) }

// Cap returns the capacity.
func (s *SeniorityFTQ) Cap() int { return len(s.ring) }

// StorageBytes reports the hardware budget (line address tags, ~6 bytes
// per entry).
func (s *SeniorityFTQ) StorageBytes() uint { return uint(len(s.ring)) * 6 }
