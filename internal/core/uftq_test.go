package core

import (
	"testing"

	"udpsim/internal/isa"
)

// feedWindow pushes one full measurement window with the given utility
// and timeliness ratios.
func feedWindow(u *UFTQ, utility, timeliness float64) {
	w := 100
	useful := int(float64(w) * utility)
	// Demand events: produce the desired icache/(icache+fb) ratio.
	demand := 100
	ic := int(float64(demand) * timeliness)
	for i := 0; i < demand; i++ {
		u.OnDemandFetch(i < ic, i >= ic)
	}
	for i := 0; i < w; i++ {
		if i < useful {
			u.OnPrefetchUseful(0, false)
		} else {
			u.OnPrefetchUseless(0, false)
		}
	}
}

func testUFTQ(mode UFTQMode) *UFTQ {
	cfg := DefaultUFTQConfig(mode)
	cfg.Window = 100
	return NewUFTQ(cfg)
}

func TestUFTQAURGrowsOnHighUtility(t *testing.T) {
	u := testUFTQ(UFTQAUR)
	start := u.Depth()
	for i := 0; i < 5; i++ {
		feedWindow(u, 0.95, 0.9) // utility far above target
	}
	if u.Depth() <= start {
		t.Errorf("depth %d did not grow from %d", u.Depth(), start)
	}
}

func TestUFTQAURShrinksOnLowUtility(t *testing.T) {
	u := testUFTQ(UFTQAUR)
	start := u.Depth()
	for i := 0; i < 5; i++ {
		feedWindow(u, 0.2, 0.9)
	}
	if u.Depth() >= start {
		t.Errorf("depth %d did not shrink from %d", u.Depth(), start)
	}
}

func TestUFTQATRGrowsOnPoorTimeliness(t *testing.T) {
	u := testUFTQ(UFTQATR)
	start := u.Depth()
	for i := 0; i < 5; i++ {
		feedWindow(u, 0.7, 0.5) // untimely: needs more runahead
	}
	if u.Depth() <= start {
		t.Errorf("depth %d did not grow from %d", u.Depth(), start)
	}
}

func TestUFTQATRShrinksOnHighTimeliness(t *testing.T) {
	u := testUFTQ(UFTQATR)
	start := u.Depth()
	for i := 0; i < 5; i++ {
		feedWindow(u, 0.7, 1.0)
	}
	if u.Depth() >= start {
		t.Errorf("depth %d did not shrink from %d", u.Depth(), start)
	}
}

func TestUFTQDepthClamped(t *testing.T) {
	cfg := DefaultUFTQConfig(UFTQAUR)
	cfg.Window = 100
	cfg.MinDepth = 8
	cfg.MaxDepth = 64
	u := NewUFTQ(cfg)
	for i := 0; i < 50; i++ {
		feedWindow(u, 1.0, 0.9)
	}
	if u.Depth() != 64 {
		t.Errorf("depth %d not clamped to max", u.Depth())
	}
	for i := 0; i < 50; i++ {
		feedWindow(u, 0.0, 0.9)
	}
	if u.Depth() != 8 {
		t.Errorf("depth %d not clamped to min", u.Depth())
	}
}

func TestUFTQInBandStops(t *testing.T) {
	cfg := DefaultUFTQConfig(UFTQAUR)
	cfg.Window = 100
	u := NewUFTQ(cfg)
	for i := 0; i < 4; i++ {
		feedWindow(u, cfg.AUR, 0.9) // exactly on target
	}
	if u.Depth() != cfg.InitialDepth {
		t.Errorf("depth %d moved while in band", u.Depth())
	}
	if u.Adjustments != 0 {
		t.Errorf("%d adjustments in band", u.Adjustments)
	}
}

func TestUFTQATRAURConvergesAndCombines(t *testing.T) {
	cfg := DefaultUFTQConfig(UFTQATRAUR)
	cfg.Window = 100
	u := NewUFTQ(cfg)
	// Drive both ratios exactly to target: the two searches converge
	// in place (stable runs) and the polynomial fires.
	for i := 0; i < 12; i++ {
		feedWindow(u, cfg.AUR, cfg.ATR)
	}
	if u.phase != phaseSteady {
		t.Fatalf("controller in phase %d, want steady", u.phase)
	}
	if u.QDAUR() == 0 || u.QDATR() == 0 {
		t.Errorf("QD values not recorded: %d/%d", u.QDAUR(), u.QDATR())
	}
	want := clamp(CombineQD(u.QDAUR(), u.QDATR()), cfg.MinDepth, cfg.MaxDepth)
	if u.Depth() != want {
		t.Errorf("depth %d, polynomial says %d", u.Depth(), want)
	}
}

func TestUFTQDriftTriggersResearch(t *testing.T) {
	cfg := DefaultUFTQConfig(UFTQATRAUR)
	cfg.Window = 100
	u := NewUFTQ(cfg)
	for i := 0; i < 12; i++ {
		feedWindow(u, cfg.AUR, cfg.ATR)
	}
	if u.phase != phaseSteady {
		t.Fatal("not steady")
	}
	// Phase change: timeliness collapses far below target.
	for i := 0; i < 5; i++ {
		feedWindow(u, cfg.AUR, cfg.ATR-u.cfg.DriftBand-0.2)
	}
	if u.Researches == 0 {
		t.Error("drift did not trigger a re-search")
	}
}

func TestCombineQDPolynomial(t *testing.T) {
	// Spot-check against the paper's formula.
	cases := []struct {
		a, t, want int
	}{
		{22, 22, 11}, // -7.48+14.08+3.872+4.84-3.872 = 11.44
		{60, 60, 54},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := CombineQD(c.a, c.t); got != c.want {
			t.Errorf("CombineQD(%d, %d) = %d, want %d", c.a, c.t, got, c.want)
		}
	}
}

func TestUFTQStorage(t *testing.T) {
	u := testUFTQ(UFTQATRAUR)
	if bits := u.StorageBits(); bits > 200 {
		t.Errorf("UFTQ storage %d bits — the paper promises a handful of counters", bits)
	}
}

func TestUFTQNames(t *testing.T) {
	for _, m := range []UFTQMode{UFTQAUR, UFTQATR, UFTQATRAUR} {
		if NewUFTQ(DefaultUFTQConfig(m)).Name() == "" {
			t.Error("empty name")
		}
	}
	if UFTQMode(9).String() == "" {
		t.Error("empty string for unknown mode")
	}
}

func TestUFTQDefaultsApplied(t *testing.T) {
	u := NewUFTQ(UFTQConfig{Mode: UFTQATR})
	if u.cfg.Window != 1000 || u.cfg.InitialDepth != 32 || u.cfg.MinDepth <= 0 || u.cfg.MaxDepth <= u.cfg.MinDepth {
		t.Errorf("zero-value config not defaulted: %+v", u.cfg)
	}
	if u.TargetFTQDepth(99) != 32 {
		t.Errorf("TargetFTQDepth = %d", u.TargetFTQDepth(99))
	}
}

func TestRatioHelper(t *testing.T) {
	if ratio(0, 0) != 0 {
		t.Error("ratio(0,0)")
	}
	if ratio(3, 1) != 0.75 {
		t.Error("ratio(3,1)")
	}
	_ = isa.Addr(0)
}
