package core

import (
	"testing"

	"udpsim/internal/bp"
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
)

func ln(i int) isa.Addr { return isa.Addr(0x400000 + i*isa.LineBytes) }

func testUDP() *UDP {
	cfg := DefaultUDPConfig()
	return NewUDP(cfg)
}

func TestConfidenceCounterTriggers(t *testing.T) {
	u := testUDP()
	if u.AssumeOffPath() {
		t.Fatal("fresh UDP assumes off-path")
	}
	// threshold 8: five Low-confidence predictions (+2 each) cross it.
	for i := 0; i < 5; i++ {
		u.OnCondPrediction(bp.Low)
	}
	if !u.AssumeOffPath() {
		t.Errorf("counter %d did not trigger", u.ConfidenceCounter())
	}
	if u.OffPathAssumptions != 1 {
		t.Errorf("OffPathAssumptions = %d", u.OffPathAssumptions)
	}
}

func TestHighConfidenceNeverTriggers(t *testing.T) {
	u := testUDP()
	for i := 0; i < 1000; i++ {
		u.OnCondPrediction(bp.High)
	}
	if u.AssumeOffPath() {
		t.Error("high-confidence stream assumed off-path")
	}
}

func TestResteerResetsCounter(t *testing.T) {
	u := testUDP()
	for i := 0; i < 5; i++ {
		u.OnCondPrediction(bp.Low)
	}
	u.OnResteer(frontend.ResteerRecovery)
	if u.AssumeOffPath() || u.ConfidenceCounter() != 0 {
		t.Error("recovery did not reset the estimator")
	}
	for i := 0; i < 5; i++ {
		u.OnCondPrediction(bp.Low)
	}
	u.OnResteer(frontend.ResteerPostFetch)
	if u.AssumeOffPath() || u.ConfidenceCounter() != 0 {
		t.Error("post-fetch resteer did not reset the estimator")
	}
}

func TestMediumConfidenceAccumulates(t *testing.T) {
	u := testUDP()
	for i := 0; i < 9; i++ {
		u.OnCondPrediction(bp.Medium) // +1 each; crosses 8 at the 9th
	}
	if !u.AssumeOffPath() {
		t.Error("medium-confidence accumulation did not trigger")
	}
}

func TestHiddenBranchTrigger(t *testing.T) {
	u := testUDP()
	block := isa.Addr(0x401000).Block()
	// Train: this block retires taken branches.
	u.OnRetireTakenBranch(block)
	u.OnRetireTakenBranch(block)
	// Now the frontend walks through it sequentially: suspected BTB
	// miss.
	u.OnSequentialBlockEnd(block)
	if !u.AssumeOffPath() {
		t.Error("hidden-branch trigger did not fire")
	}
	if u.HiddenBranchHits != 1 {
		t.Errorf("HiddenBranchHits = %d", u.HiddenBranchHits)
	}
}

func TestHiddenBranchTriggerUntrained(t *testing.T) {
	u := testUDP()
	u.OnSequentialBlockEnd(isa.Addr(0x402000).Block())
	if u.AssumeOffPath() {
		t.Error("untrained block triggered off-path assumption")
	}
}

func TestHiddenTriggerDisable(t *testing.T) {
	cfg := DefaultUDPConfig()
	cfg.DisableHiddenTrigger = true
	u := NewUDP(cfg)
	b := isa.Addr(0x401000).Block()
	u.OnRetireTakenBranch(b)
	u.OnRetireTakenBranch(b)
	u.OnSequentialBlockEnd(b)
	if u.AssumeOffPath() {
		t.Error("disabled trigger fired")
	}
}

func TestSeniorityLearningLoop(t *testing.T) {
	u := testUDP()
	// An unknown candidate is dropped but tracked.
	u.OnCandidate(ln(1))
	if got := u.FilterCandidate(ln(1)); got != 0 {
		t.Fatalf("unknown candidate emitted %d lines", got)
	}
	// The line later retires on-path: proven useful.
	u.OnRetire(ln(1))
	// Flush the coalescing buffer via more learns... the Bloom set
	// buffers up to 8; force through with distant lines.
	for i := 10; i < 20; i++ {
		u.OnCandidate(ln(i * 100))
		u.OnRetire(ln(i * 100))
	}
	if got := u.FilterCandidate(ln(1)); got == 0 {
		t.Error("learned candidate still dropped")
	}
}

func TestUsefulOffPathPrefetchLearned(t *testing.T) {
	u := testUDP()
	// Demand hit on an off-path prefetch teaches the set directly.
	u.OnPrefetchUseful(ln(5), true)
	for i := 30; i < 40; i++ {
		u.OnPrefetchUseful(ln(i*100), true) // push through the buffer
	}
	if got := u.FilterCandidate(ln(5)); got == 0 {
		t.Error("off-path useful line not learned")
	}
	// On-path usefulness does not feed the off-path set.
	u2 := testUDP()
	u2.OnPrefetchUseful(ln(6), false)
	set := u2.Set().(*BloomUsefulSet)
	if set.Learned != 0 {
		t.Error("on-path usefulness entered the off-path set")
	}
}

func TestUDPStorageBudget(t *testing.T) {
	u := testUDP()
	b := u.StorageBytes()
	// The paper's total is 8KB; allow the modelling extras (hidden
	// table, seniority) some slack but stay in the single-digit-KB
	// class.
	if b < 2*1024 || b > 10*1024 {
		t.Errorf("storage %d bytes outside the 8KB class", b)
	}
}

func TestUDPNames(t *testing.T) {
	if testUDP().Name() != "UDP" {
		t.Error("name")
	}
	cfg := DefaultUDPConfig()
	cfg.Infinite = true
	if NewUDP(cfg).Name() != "UDP-infinite" {
		t.Error("infinite name")
	}
	if testUDP().String() == "" {
		t.Error("empty String()")
	}
}

func TestUDPDefaults(t *testing.T) {
	u := NewUDP(UDPConfig{})
	if u.cfg.ConfidenceThreshold <= 0 || u.cfg.SeniorityEntries <= 0 || u.cfg.OutcomeWindow <= 0 {
		t.Errorf("zero config not defaulted: %+v", u.cfg)
	}
}

func TestOutcomeWindowFlushPolicy(t *testing.T) {
	cfg := DefaultUDPConfig()
	cfg.OutcomeWindow = 16
	u := NewUDP(cfg)
	set := u.Set().(*BloomUsefulSet)
	// Saturate the 2- and 4-line filters cheaply? Saturating 16k bits
	// takes thousands of inserts; instead saturate via direct inserts.
	for i := 0; set.FillRatio() < 0.5; i++ {
		set.Learn(ln(i * 7))
	}
	set.FlushBuffer()
	if !u.useful.(*BloomUsefulSet).f1.Full() {
		t.Skip("could not saturate filter")
	}
	// Feed a uselessness streak ≥ threshold.
	for i := 0; i < 16; i++ {
		u.OnPrefetchUseless(ln(i), true)
	}
	if set.Flushes == 0 {
		t.Error("saturated filter with useless streak never flushed")
	}
}
