// Package core implements the paper's two contributions:
//
//   - UFTQ (Section IV-A): dynamic, application-specific sizing of the
//     fetch target queue, driven by measured prefetch utility (AUR),
//     prefetch timeliness (ATR), or both combined through the paper's
//     regression polynomial (ATR-AUR).
//   - UDP (Section IV-B): per-candidate utility learning for FDIP
//     prefetches, with a TAGE-confidence off-path estimator, a
//     Seniority-FTQ that lets off-path candidates survive pipeline
//     flushes, and a Bloom-filter useful-set with 2-/4-line super-line
//     compression.
//
// Both are frontend.Tuner implementations plugged into the decoupled
// frontend by the sim package.
package core

import (
	"fmt"

	"udpsim/internal/bp"
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
	"udpsim/internal/obs"
)

// UFTQMode selects which ratio(s) drive the FTQ sizing.
type UFTQMode uint8

// UFTQ modes (paper Section IV-A).
const (
	// UFTQAUR sizes by utility ratio only.
	UFTQAUR UFTQMode = iota
	// UFTQATR sizes by timeliness ratio only.
	UFTQATR
	// UFTQATRAUR finds QD_AUR and QD_ATR, then combines them with the
	// paper's regression polynomial.
	UFTQATRAUR
)

func (m UFTQMode) String() string {
	switch m {
	case UFTQAUR:
		return "UFTQ-AUR"
	case UFTQATR:
		return "UFTQ-ATR"
	case UFTQATRAUR:
		return "UFTQ-ATR-AUR"
	default:
		return fmt.Sprintf("UFTQMode(%d)", uint8(m))
	}
}

// UFTQConfig parameterizes the controller.
type UFTQConfig struct {
	Mode UFTQMode
	// AUR is the target average utility ratio (the Table III geomean
	// measured on this simulator; the paper's Scarab-trained value was
	// 0.65).
	AUR float64
	// ATR is the target average timeliness ratio (Table III geomean on
	// this simulator; the paper's was 0.75).
	ATR float64
	// Window is the number of observed prefetch outcomes per
	// measurement window (paper: 1000).
	Window int
	// InitialDepth seeds the search (paper: 32).
	InitialDepth int
	// MinDepth/MaxDepth clamp the result; MaxDepth is the physical FTQ.
	MinDepth int
	MaxDepth int
	// Step is the per-window depth adjustment during search.
	Step int
	// Band is the hysteresis around the target ratio.
	Band float64
	// DriftBand triggers a re-search in steady state when the measured
	// ratio leaves target±DriftBand (phase-change adaptation).
	DriftBand float64
}

// DefaultUFTQConfig returns the controller parameters. Following the
// paper's methodology, AUR and ATR are the geomeans of the per-app
// utility and timeliness ratios measured on *this* simulator's Table
// III (the paper trained its 0.65/0.75 on Scarab measurements; the
// ratio scales differ between the two models).
func DefaultUFTQConfig(mode UFTQMode) UFTQConfig {
	return UFTQConfig{
		Mode:         mode,
		AUR:          0.70,
		ATR:          0.93,
		Window:       1000,
		InitialDepth: 32,
		MinDepth:     16,
		MaxDepth:     64, // the paper's example physical FTQ bound
		Step:         4,
		Band:         0.03,
		DriftBand:    0.15,
	}
}

type uftqPhase uint8

const (
	phaseSearchAUR uftqPhase = iota
	phaseSearchATR
	phaseSteady
)

// UFTQ is the dynamic FTQ-sizing controller. The hardware cost is four
// 10-bit window counters, two fixed-point ratio registers, and a small
// state machine (paper Section IV-A).
type UFTQ struct {
	frontend.NopTuner
	cfg UFTQConfig

	depth int

	// Window counters (hardware: 10-bit saturating).
	useful  int
	useless int
	icHits  int
	fbHits  int

	phase      uftqPhase
	lastDir    int // +1/-1 of the previous adjustment, 0 none
	stableRuns int
	driftRuns  int
	qdAUR      int
	qdATR      int

	// Stats
	Windows     uint64
	Adjustments uint64
	Researches  uint64

	// Obs receives uftq-window events when non-nil (nil-guarded
	// observability hooks).
	Obs *obs.Observer
}

// NewUFTQ builds the controller.
func NewUFTQ(cfg UFTQConfig) *UFTQ {
	if cfg.Window <= 0 {
		cfg.Window = 1000
	}
	if cfg.InitialDepth <= 0 {
		cfg.InitialDepth = 32
	}
	if cfg.MinDepth <= 0 {
		cfg.MinDepth = 8
	}
	if cfg.MaxDepth <= cfg.MinDepth {
		cfg.MaxDepth = 128
	}
	if cfg.Step <= 0 {
		cfg.Step = 4
	}
	u := &UFTQ{cfg: cfg, depth: cfg.InitialDepth}
	switch cfg.Mode {
	case UFTQAUR:
		u.phase = phaseSearchAUR
	case UFTQATR:
		u.phase = phaseSearchATR
	default:
		u.phase = phaseSearchAUR
	}
	return u
}

// Name returns the mechanism's display name.
func (u *UFTQ) Name() string { return u.cfg.Mode.String() }

// Depth returns the currently requested FTQ depth.
func (u *UFTQ) Depth() int { return u.depth }

// QDAUR and QDATR expose the converged search results (ATR-AUR mode).
func (u *UFTQ) QDAUR() int { return u.qdAUR }

// QDATR exposes the timeliness search result.
func (u *UFTQ) QDATR() int { return u.qdATR }

// OnPrefetchUseful implements frontend.Tuner.
func (u *UFTQ) OnPrefetchUseful(isa.Addr, bool) {
	u.useful++
	u.maybeEndWindow()
}

// OnPrefetchUseless implements frontend.Tuner.
func (u *UFTQ) OnPrefetchUseless(isa.Addr, bool) {
	u.useless++
	u.maybeEndWindow()
}

// OnDemandFetch implements frontend.Tuner.
func (u *UFTQ) OnDemandFetch(icacheHit, fillBufferHit bool) {
	if icacheHit {
		u.icHits++
	} else if fillBufferHit {
		u.fbHits++
	}
}

// TargetFTQDepth implements frontend.Tuner.
func (u *UFTQ) TargetFTQDepth(int) int { return u.depth }

func (u *UFTQ) maybeEndWindow() {
	if u.useful+u.useless < u.cfg.Window {
		return
	}
	u.Windows++
	ur := ratio(u.useful, u.useless)
	tr := ratio(u.icHits, u.fbHits)
	u.useful, u.useless, u.icHits, u.fbHits = 0, 0, 0, 0
	if u.Obs != nil {
		u.Obs.UFTQWindow(u.depth, ur, tr)
	}

	switch u.cfg.Mode {
	case UFTQAUR:
		u.adjust(u.searchStep(ur, u.cfg.AUR, +1))
	case UFTQATR:
		u.adjust(u.searchStep(tr, u.cfg.ATR, -1))
	case UFTQATRAUR:
		u.stepATRAUR(ur, tr)
	}
}

// searchStep returns the depth delta for one ratio observation.
// sense=+1 means the ratio *falls* as depth grows (utility): measuring
// above target leaves headroom to deepen. sense=-1 means the ratio
// *rises* with depth (timeliness): measuring below target demands more
// runahead.
func (u *UFTQ) searchStep(measured, target float64, sense int) int {
	switch {
	case measured > target+u.cfg.Band:
		return u.cfg.Step * sense
	case measured < target-u.cfg.Band:
		return -u.cfg.Step * sense
	default:
		return 0
	}
}

func (u *UFTQ) adjust(delta int) {
	if delta == 0 {
		u.lastDir = 0
		return
	}
	u.Adjustments++
	u.depth = clamp(u.depth+delta, u.cfg.MinDepth, u.cfg.MaxDepth)
	if delta > 0 {
		u.lastDir = 1
	} else {
		u.lastDir = -1
	}
}

// stepATRAUR runs the two-phase QD search and the polynomial combine.
func (u *UFTQ) stepATRAUR(ur, tr float64) {
	switch u.phase {
	case phaseSearchAUR:
		delta := u.searchStep(ur, u.cfg.AUR, +1)
		if u.converged(delta) {
			u.qdAUR = u.depth
			u.phase = phaseSearchATR
			u.stableRuns = 0
			u.lastDir = 0
			return
		}
		u.adjust(delta)
	case phaseSearchATR:
		delta := u.searchStep(tr, u.cfg.ATR, -1)
		if delta > 0 && ur < u.cfg.AUR-u.cfg.Band {
			// Deepening would chase timeliness with prefetches that are
			// already mostly useless — the xgboost failure mode the
			// combined controller exists to avoid.
			delta = 0
		}
		if u.converged(delta) {
			u.qdATR = u.depth
			u.depth = clamp(CombineQD(u.qdAUR, u.qdATR), u.cfg.MinDepth, u.cfg.MaxDepth)
			u.phase = phaseSteady
			u.stableRuns = 0
			u.driftRuns = 0
			u.lastDir = 0
			return
		}
		u.adjust(delta)
	case phaseSteady:
		// Always-on adaptation (the paper keeps the technique running to
		// follow phase changes): track the utility target with a gentle
		// half-step so the depth drifts toward the warm-phase
		// equilibrium the cold-start search may have missed, and restart
		// the full search on a large timeliness departure. Two guards
		// keep the tracker out of the known failure modes: never deepen
		// when utility is already below target (pollution), and never
		// shrink while timeliness is unsatisfied (starvation).
		switch {
		case ur > u.cfg.AUR+u.cfg.Band:
			u.depth = clamp(u.depth+u.cfg.Step/2, u.cfg.MinDepth, u.cfg.MaxDepth)
		case ur < u.cfg.AUR-u.cfg.Band && tr >= u.cfg.ATR:
			u.depth = clamp(u.depth-u.cfg.Step/2, u.cfg.MinDepth, u.cfg.MaxDepth)
		case ur < u.cfg.AUR-u.cfg.Band && tr < u.cfg.ATR-u.cfg.Band && u.depth < u.cfg.InitialDepth:
			// Both signals are bad (the xgboost category): neither
			// aggression nor throttling is trustworthy, so hold the
			// baseline depth rather than a degenerate extreme.
			u.depth = clamp(u.depth+u.cfg.Step/2, u.cfg.MinDepth, u.cfg.InitialDepth)
		}
		if tr < u.cfg.ATR-u.cfg.DriftBand {
			u.driftRuns++
			if u.driftRuns >= 3 {
				u.phase = phaseSearchAUR
				u.driftRuns = 0
				u.Researches++
			}
		} else {
			u.driftRuns = 0
		}
	}
}

// converged reports search termination: in-band measurement, direction
// flip (oscillation), or pinned at a clamp.
func (u *UFTQ) converged(delta int) bool {
	if delta == 0 {
		u.stableRuns++
		return u.stableRuns >= 2
	}
	if (delta > 0 && u.lastDir < 0) || (delta < 0 && u.lastDir > 0) {
		return true // oscillating around the target
	}
	if (delta < 0 && u.depth == u.cfg.MinDepth) || (delta > 0 && u.depth == u.cfg.MaxDepth) {
		return true // clamped
	}
	u.stableRuns = 0
	return false
}

// CombineQD is the paper's regression polynomial (Section IV-A):
//
//	FTQ = -0.34·QDAUR + 0.64·QDATR + 0.008·QDAUR² + 0.01·QDATR²
//	      − 0.008·QDAUR·QDATR
func CombineQD(qdAUR, qdATR int) int {
	a, t := float64(qdAUR), float64(qdATR)
	v := -0.34*a + 0.64*t + 0.008*a*a + 0.01*t*t - 0.008*a*t
	return int(v + 0.5)
}

// OnCondPrediction implements frontend.Tuner (UFTQ ignores confidence).
func (u *UFTQ) OnCondPrediction(bp.Confidence) {}

// StorageBits returns the hardware budget: four 10-bit counters + two
// 32-bit fixed-point ratio registers + state machine registers.
func (u *UFTQ) StorageBits() int { return 4*10 + 2*32 + 24 }

func ratio(a, b int) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
