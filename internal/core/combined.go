package core

import (
	"udpsim/internal/bp"
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
)

// Combined composes UDP's per-candidate filtering with UFTQ's dynamic
// FTQ sizing. The paper presents the two as orthogonal ("UFTQ ... UDP
// ... can be combined with techniques that improve BTB storage capacity"
// and evaluates UDP only on a fixed FTQ); this is the natural
// composition: UFTQ provides the depth, UDP vetoes useless candidates
// within it. Exposed as mechanism "udp-uftq" for the ablation bench.
type Combined struct {
	UDP  *UDP
	UFTQ *UFTQ
}

// NewCombined wires the two mechanisms.
func NewCombined(udpCfg UDPConfig, uftqCfg UFTQConfig) *Combined {
	return &Combined{UDP: NewUDP(udpCfg), UFTQ: NewUFTQ(uftqCfg)}
}

// Name returns the mechanism's display name.
func (c *Combined) Name() string { return "UDP+" + c.UFTQ.Name() }

// OnCondPrediction implements frontend.Tuner.
func (c *Combined) OnCondPrediction(conf bp.Confidence) {
	c.UDP.OnCondPrediction(conf)
	c.UFTQ.OnCondPrediction(conf)
}

// OnResteer implements frontend.Tuner.
func (c *Combined) OnResteer(k frontend.ResteerKind) {
	c.UDP.OnResteer(k)
	c.UFTQ.OnResteer(k)
}

// AssumeOffPath implements frontend.Tuner (UDP's estimator).
func (c *Combined) AssumeOffPath() bool { return c.UDP.AssumeOffPath() }

// FilterCandidate implements frontend.Tuner (UDP's useful-set).
func (c *Combined) FilterCandidate(line isa.Addr) int { return c.UDP.FilterCandidate(line) }

// OnCandidate implements frontend.Tuner.
func (c *Combined) OnCandidate(line isa.Addr) { c.UDP.OnCandidate(line) }

// OnRetire implements frontend.Tuner.
func (c *Combined) OnRetire(line isa.Addr) {
	c.UDP.OnRetire(line)
	c.UFTQ.OnRetire(line)
}

// OnRetireTakenBranch implements frontend.Tuner.
func (c *Combined) OnRetireTakenBranch(block isa.Addr) {
	c.UDP.OnRetireTakenBranch(block)
}

// OnSequentialBlockEnd implements frontend.Tuner.
func (c *Combined) OnSequentialBlockEnd(block isa.Addr) {
	c.UDP.OnSequentialBlockEnd(block)
}

// OnPrefetchUseful implements frontend.Tuner.
func (c *Combined) OnPrefetchUseful(line isa.Addr, offPath bool) {
	c.UDP.OnPrefetchUseful(line, offPath)
	c.UFTQ.OnPrefetchUseful(line, offPath)
}

// OnPrefetchUseless implements frontend.Tuner.
func (c *Combined) OnPrefetchUseless(line isa.Addr, offPath bool) {
	c.UDP.OnPrefetchUseless(line, offPath)
	c.UFTQ.OnPrefetchUseless(line, offPath)
}

// OnDemandFetch implements frontend.Tuner (UFTQ's timeliness window).
func (c *Combined) OnDemandFetch(icacheHit, fillBufferHit bool) {
	c.UFTQ.OnDemandFetch(icacheHit, fillBufferHit)
}

// TargetFTQDepth implements frontend.Tuner (UFTQ's sizing).
func (c *Combined) TargetFTQDepth(current int) int { return c.UFTQ.TargetFTQDepth(current) }

// StorageBytes reports the combined hardware budget.
func (c *Combined) StorageBytes() uint {
	return c.UDP.StorageBytes() + uint(c.UFTQ.StorageBits()+7)/8
}
