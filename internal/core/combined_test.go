package core

import (
	"testing"

	"udpsim/internal/bp"
	"udpsim/internal/frontend"
)

func testCombined() *Combined {
	u := DefaultUFTQConfig(UFTQATRAUR)
	u.Window = 100
	return NewCombined(DefaultUDPConfig(), u)
}

func TestCombinedDelegatesFiltering(t *testing.T) {
	c := testCombined()
	if c.Name() == "" {
		t.Error("empty name")
	}
	// Off-path estimation comes from UDP.
	for i := 0; i < 5; i++ {
		c.OnCondPrediction(bp.Low)
	}
	if !c.AssumeOffPath() {
		t.Error("combined did not assume off-path via UDP")
	}
	// Candidate flow reaches UDP's Seniority-FTQ.
	c.OnCandidate(ln(1))
	if c.UDP.Seniority().Len() != 1 {
		t.Error("candidate not tracked")
	}
	if got := c.FilterCandidate(ln(1)); got != 0 {
		t.Errorf("unknown candidate emitted %d", got)
	}
	// Retire matching learns and resets via both components.
	c.OnRetire(ln(1))
	c.OnRetireTakenBranch(ln(2))
	c.OnSequentialBlockEnd(ln(2))
	c.OnResteer(frontend.ResteerRecovery)
	if c.AssumeOffPath() {
		t.Error("resteer did not reset the estimator")
	}
}

func TestCombinedDelegatesSizing(t *testing.T) {
	c := testCombined()
	// Feed enough prefetch outcomes to complete UFTQ windows with high
	// utility: the target depth must move from the UFTQ side.
	start := c.TargetFTQDepth(32)
	for w := 0; w < 6; w++ {
		for i := 0; i < 100; i++ {
			c.OnPrefetchUseful(ln(i), false)
			c.OnDemandFetch(true, false)
		}
	}
	if c.TargetFTQDepth(32) == start {
		t.Error("combined sizing never moved")
	}
	if c.UFTQ.Windows == 0 {
		t.Error("UFTQ windows not fed")
	}
	// Useless outcomes feed both the sizer and UDP's flush policy.
	for i := 0; i < 100; i++ {
		c.OnPrefetchUseless(ln(i), true)
	}
	if c.StorageBytes() == 0 {
		t.Error("zero storage accounting")
	}
}
