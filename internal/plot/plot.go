// Package plot renders the evaluation's figures as standalone SVG
// files using only the standard library — the analogue of the paper
// artifact's plot_figures.sh, which emits Figure13.pdf through
// Figure17.pdf.
//
// Two chart shapes cover every figure in the paper: grouped bar charts
// (per-application speedups/MPKI with one bar per series) and line
// charts (parameter sweeps with one line per application).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named sequence of Y values.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a renderable figure.
type Chart struct {
	Title  string
	YLabel string
	// XLabels name the categories (bar charts) or X tick values (line
	// charts).
	XLabels []string
	Series  []Series
	// Percent renders Y values as percentages.
	Percent bool
}

const (
	width      = 960
	height     = 420
	marginL    = 70
	marginR    = 170
	marginT    = 46
	marginB    = 70
	plotW      = width - marginL - marginR
	plotH      = height - marginT - marginB
	fontFamily = "system-ui, sans-serif"
)

// palette is a colorblind-friendly categorical palette.
var palette = []string{
	"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE",
	"#AA3377", "#BBBBBB", "#222255", "#225555", "#663333",
}

func color(i int) string { return palette[i%len(palette)] }

// yRange computes padded bounds across all series, always including 0.
func (c *Chart) yRange() (lo, hi float64) {
	lo, hi = 0, 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	return lo - pad*boolTo01(lo < 0), hi + pad
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (c *Chart) yToPx(v, lo, hi float64) float64 {
	return marginT + plotH*(1-(v-lo)/(hi-lo))
}

func (c *Chart) fmtY(v float64) string {
	if c.Percent {
		return fmt.Sprintf("%.0f%%", v*100)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

// yTicks picks ~5 round tick values across the range.
func yTicks(lo, hi float64) []float64 {
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/5)))
	for span/step > 8 {
		step *= 2
	}
	for span/step < 3 {
		step /= 2
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// frame renders the title, axes, gridlines and legend shared by both
// chart types.
func (c *Chart) frame(b *strings.Builder, lo, hi float64) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(b, `<text x="%d" y="24" font-family="%s" font-size="16" font-weight="600">%s</text>`,
		marginL, fontFamily, escape(c.Title))

	// Gridlines + Y labels.
	for _, v := range yTicks(lo, hi) {
		y := c.yToPx(v, lo, hi)
		stroke := "#dddddd"
		if v == 0 {
			stroke = "#888888"
		}
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s"/>`,
			marginL, y, marginL+plotW, y, stroke)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end" dominant-baseline="middle">%s</text>`,
			marginL-6, y, fontFamily, c.fmtY(v))
	}
	if c.YLabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%d" font-family="%s" font-size="12" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`,
			marginT+plotH/2, fontFamily, marginT+plotH/2, escape(c.YLabel))
	}

	// Legend.
	ly := marginT
	for i, s := range c.Series {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			marginL+plotW+12, ly+i*20, color(i))
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="%s" font-size="11" dominant-baseline="middle">%s</text>`,
			marginL+plotW+30, ly+i*20+7, fontFamily, escape(s.Name))
	}
}

// Bars renders a grouped bar chart.
func Bars(c Chart) (string, error) {
	if err := c.validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	lo, hi := c.yRange()
	c.frame(&b, lo, hi)

	groups := len(c.XLabels)
	groupW := float64(plotW) / float64(groups)
	barW := groupW * 0.8 / float64(len(c.Series))
	zero := c.yToPx(0, lo, hi)

	for g := 0; g < groups; g++ {
		gx := marginL + float64(g)*groupW + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[g]
			y := c.yToPx(v, lo, hi)
			top, h := y, zero-y
			if v < 0 {
				top, h = zero, y-zero
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %s</title></rect>`,
				gx+float64(si)*barW, top, barW*0.92, h, color(si),
				escape(c.XLabels[g]), escape(s.Name), c.fmtY(v))
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`,
			gx+groupW*0.4, marginT+plotH+16, fontFamily, gx+groupW*0.4, marginT+plotH+16, escape(c.XLabels[g]))
	}
	b.WriteString("</svg>")
	return b.String(), nil
}

// Lines renders a multi-series line chart with categorical X positions.
func Lines(c Chart) (string, error) {
	if err := c.validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	lo, hi := c.yRange()
	c.frame(&b, lo, hi)

	n := len(c.XLabels)
	xAt := func(i int) float64 {
		if n == 1 {
			return marginL + float64(plotW)/2
		}
		return marginL + float64(plotW)*float64(i)/float64(n-1)
	}
	for i, lbl := range c.XLabels {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%s</text>`,
			xAt(i), marginT+plotH+18, fontFamily, escape(lbl))
	}
	for si, s := range c.Series {
		var pts []string
		for i, v := range s.Values {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), c.yToPx(v, lo, hi)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color(si))
		for i, v := range s.Values {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s @ %s: %s</title></circle>`,
				xAt(i), c.yToPx(v, lo, hi), color(si),
				escape(s.Name), escape(c.XLabels[i]), c.fmtY(v))
		}
	}
	b.WriteString("</svg>")
	return b.String(), nil
}

func (c *Chart) validate() error {
	if len(c.Series) == 0 || len(c.XLabels) == 0 {
		return fmt.Errorf("plot: chart %q has no data", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("plot: series %q has %d values for %d labels",
				s.Name, len(s.Values), len(c.XLabels))
		}
	}
	return nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// FromSpeedupRows converts experiment speedup rows (app → series →
// value) into a bar chart, ordering series alphabetically.
func FromSpeedupRows(title string, apps []string, rows map[string]map[string]float64) Chart {
	seen := map[string]bool{}
	var names []string
	for _, m := range rows {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	c := Chart{Title: title, YLabel: "IPC speedup", XLabels: apps, Percent: true}
	for _, nm := range names {
		s := Series{Name: nm}
		for _, app := range apps {
			s.Values = append(s.Values, rows[app][nm])
		}
		c.Series = append(c.Series, s)
	}
	return c
}
