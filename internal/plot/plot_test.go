package plot

import (
	"strings"
	"testing"
)

func chart() Chart {
	return Chart{
		Title:   "Figure X — test",
		YLabel:  "speedup",
		XLabels: []string{"mysql", "xgboost", "verilator"},
		Series: []Series{
			{Name: "udp", Values: []float64{0.01, 0.16, -0.02}},
			{Name: "eip", Values: []float64{0.00, 0.02, 0.01}},
		},
		Percent: true,
	}
}

func TestBarsRendersAllData(t *testing.T) {
	svg, err := Bars(chart())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 3 groups × 2 series = 6 bars plus the background rect and legend
	// swatches.
	if got := strings.Count(svg, "<rect"); got < 6+1+2 {
		t.Errorf("%d rects", got)
	}
	for _, want := range []string{"mysql", "xgboost", "verilator", "udp", "eip", "Figure X"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLinesRendersAllData(t *testing.T) {
	c := chart()
	c.XLabels = []string{"8", "16", "32"}
	svg, err := Lines(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines", got)
	}
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("%d markers", got)
	}
}

func TestNegativeValuesBarBelowAxis(t *testing.T) {
	c := Chart{
		Title:   "neg",
		XLabels: []string{"a"},
		Series:  []Series{{Name: "s", Values: []float64{-0.5}}},
	}
	svg, err := Bars(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "s: -0.5") && !strings.Contains(svg, "-50%") {
		// tooltip carries the value either way
		if !strings.Contains(svg, "-0.5") {
			t.Error("negative value lost")
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Bars(Chart{Title: "empty"}); err == nil {
		t.Error("empty chart accepted")
	}
	c := chart()
	c.Series[0].Values = c.Series[0].Values[:1]
	if _, err := Bars(c); err == nil {
		t.Error("ragged series accepted")
	}
	if _, err := Lines(c); err == nil {
		t.Error("ragged series accepted by Lines")
	}
}

func TestEscape(t *testing.T) {
	c := Chart{
		Title:   `<&"> injection`,
		XLabels: []string{"a<b"},
		Series:  []Series{{Name: "s&t", Values: []float64{1}}},
	}
	svg, err := Bars(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `<&">`) || strings.Contains(svg, "a<b") {
		t.Error("unescaped markup")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Error("escaping lost the label")
	}
}

func TestYTicksReasonable(t *testing.T) {
	ticks := yTicks(-0.1, 0.5)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Errorf("tick count %d: %v", len(ticks), ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Error("ticks not ascending")
		}
	}
}

func TestFromSpeedupRows(t *testing.T) {
	rows := map[string]map[string]float64{
		"mysql":   {"udp": 0.01, "eip": 0.0},
		"xgboost": {"udp": 0.16},
	}
	c := FromSpeedupRows("F", []string{"mysql", "xgboost"}, rows)
	if len(c.Series) != 2 || len(c.XLabels) != 2 {
		t.Fatalf("chart shape: %+v", c)
	}
	// Series sorted: eip first.
	if c.Series[0].Name != "eip" || c.Series[1].Name != "udp" {
		t.Errorf("series order: %v, %v", c.Series[0].Name, c.Series[1].Name)
	}
	if c.Series[1].Values[1] != 0.16 {
		t.Error("value misplaced")
	}
	if c.Series[0].Values[1] != 0 {
		t.Error("missing value not zero-filled")
	}
	if _, err := Bars(c); err != nil {
		t.Fatal(err)
	}
}

func TestSingleXLabelLines(t *testing.T) {
	c := Chart{Title: "one", XLabels: []string{"x"},
		Series: []Series{{Name: "s", Values: []float64{2}}}}
	if _, err := Lines(c); err != nil {
		t.Fatal(err)
	}
}
