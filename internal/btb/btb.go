// Package btb implements the branch target buffer and the indirect
// target buffer of the decoupled frontend. The BTB is the structure
// whose capacity misses put FDIP on the wrong path (Section II): when a
// taken branch is absent from the BTB, the frontend keeps walking
// sequentially through what it believes is one large basic block,
// emitting useless prefetches until post-fetch correction or execute
// resolution resteers it.
package btb

import (
	"udpsim/internal/isa"
)

// Entry is one BTB entry as seen by the frontend.
type Entry struct {
	Kind   isa.BranchKind
	Target isa.Addr
}

type way struct {
	tag    uint64
	valid  bool
	kind   isa.BranchKind
	target isa.Addr
	stamp  uint64
}

// Stats counts BTB events.
type Stats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
	Inserts uint64
	Evicts  uint64
	// MissesTaken counts lookup misses for branches that were actually
	// taken — the dangerous kind that silently steers FDIP sequentially.
	MissesTaken uint64
}

// BTB is a set-associative branch target buffer indexed by branch PC.
type BTB struct {
	sets    [][]way
	setMask uint64
	tagBits uint
	Stats   Stats
}

// Config sizes the BTB.
type Config struct {
	Entries int // total entries; must be ways * power-of-two sets
	Ways    int
	TagBits uint // partial tag width (Fagin-style); 0 = full tags
}

// New builds a BTB.
func New(cfg Config) *BTB {
	if cfg.Ways <= 0 || cfg.Entries <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("btb: entries must be a positive multiple of ways")
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("btb: set count must be a power of two")
	}
	sets := make([][]way, nsets)
	backing := make([]way, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &BTB{sets: sets, setMask: uint64(nsets - 1), tagBits: cfg.TagBits}
}

func (b *BTB) index(pc isa.Addr) (uint64, uint64) {
	n := uint64(pc) >> 2 // instruction-granular
	set := n & b.setMask
	tag := n >> popBits(b.setMask)
	if b.tagBits > 0 {
		tag &= 1<<b.tagBits - 1
	}
	return set, tag
}

// Lookup probes the BTB for a branch at pc. actuallyTakenBranch feeds
// the MissesTaken statistic and may be false when unknown.
func (b *BTB) Lookup(pc isa.Addr, cycle uint64) (Entry, bool) {
	b.Stats.Lookups++
	set, tag := b.index(pc)
	for i := range b.sets[set] {
		w := &b.sets[set][i]
		if w.valid && w.tag == tag {
			b.Stats.Hits++
			w.stamp = cycle
			return Entry{Kind: w.kind, Target: w.target}, true
		}
	}
	b.Stats.Misses++
	return Entry{}, false
}

// Probe is a stats-free presence check.
func (b *BTB) Probe(pc isa.Addr) bool {
	set, tag := b.index(pc)
	for i := range b.sets[set] {
		if b.sets[set][i].valid && b.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// RecordTakenMiss bumps the taken-branch miss counter (called by the
// frontend once it learns a missed branch was taken).
func (b *BTB) RecordTakenMiss() { b.Stats.MissesTaken++ }

// ResetStats clears the accumulated statistics (end of warmup) while
// preserving the predictor contents. It implements the sim package's
// StatsResetter.
func (b *BTB) ResetStats() { b.Stats = Stats{} }

// Insert installs or updates the entry for the branch at pc. The
// frontend calls this at resolution/decode time for branches that missed
// and for indirect branches whose target changed.
func (b *BTB) Insert(pc isa.Addr, kind isa.BranchKind, target isa.Addr, cycle uint64) {
	set, tag := b.index(pc)
	ways := b.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].kind = kind
			ways[i].target = target
			ways[i].stamp = cycle
			return
		}
	}
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].stamp < ways[victim].stamp {
				victim = i
			}
		}
		b.Stats.Evicts++
	}
	ways[victim] = way{tag: tag, valid: true, kind: kind, target: target, stamp: cycle}
	b.Stats.Inserts++
}

// Entries returns total capacity.
func (b *BTB) Entries() int { return len(b.sets) * len(b.sets[0]) }

// HitRate returns hits/lookups.
func (s *Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

func popBits(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// IndirectBTB predicts targets of indirect jumps and calls, indexed by
// branch PC hashed with path history (an ITTAGE-lite single table).
type IndirectBTB struct {
	entries []indirectEntry
	mask    uint64

	Lookups uint64
	Hits    uint64
}

type indirectEntry struct {
	tag    uint32
	target isa.Addr
	valid  bool
	conf   int8
}

// NewIndirect builds an indirect target buffer with n entries (power of
// two).
func NewIndirect(n int) *IndirectBTB {
	if n <= 0 || n&(n-1) != 0 {
		panic("btb: indirect BTB size must be a positive power of two")
	}
	return &IndirectBTB{entries: make([]indirectEntry, n), mask: uint64(n - 1)}
}

func (ib *IndirectBTB) index(pc isa.Addr, pathHist uint64) (uint64, uint32) {
	x := uint64(pc)>>2 ^ pathHist*0x9e3779b97f4a7c15
	x ^= x >> 23
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 31
	return x & ib.mask, uint32(x >> 40)
}

// Lookup predicts the target of the indirect branch at pc.
func (ib *IndirectBTB) Lookup(pc isa.Addr, pathHist uint64) (isa.Addr, bool) {
	ib.Lookups++
	i, tag := ib.index(pc, pathHist)
	e := &ib.entries[i]
	if e.valid && e.tag == tag {
		ib.Hits++
		return e.target, true
	}
	return 0, false
}

// Update trains the entry with the resolved target.
func (ib *IndirectBTB) Update(pc isa.Addr, pathHist uint64, target isa.Addr) {
	i, tag := ib.index(pc, pathHist)
	e := &ib.entries[i]
	if e.valid && e.tag == tag {
		if e.target == target {
			if e.conf < 3 {
				e.conf++
			}
			return
		}
		if e.conf > 0 {
			e.conf--
			return
		}
		e.target = target
		return
	}
	*e = indirectEntry{tag: tag, target: target, valid: true}
}
