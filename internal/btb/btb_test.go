package btb

import (
	"testing"

	"udpsim/internal/isa"
)

func TestInsertLookup(t *testing.T) {
	b := New(Config{Entries: 64, Ways: 4})
	pc := isa.Addr(0x401000)
	b.Insert(pc, isa.BranchCond, 0x402000, 1)
	e, hit := b.Lookup(pc, 2)
	if !hit {
		t.Fatal("miss after insert")
	}
	if e.Kind != isa.BranchCond || e.Target != 0x402000 {
		t.Errorf("entry %+v", e)
	}
	if _, hit := b.Lookup(0x409999<<2, 3); hit {
		t.Error("phantom hit")
	}
	if b.Stats.Hits != 1 || b.Stats.Misses != 1 || b.Stats.Inserts != 1 {
		t.Errorf("stats %+v", b.Stats)
	}
}

func TestUpdateExisting(t *testing.T) {
	b := New(Config{Entries: 64, Ways: 4})
	pc := isa.Addr(0x401000)
	b.Insert(pc, isa.BranchIndirect, 0x402000, 1)
	b.Insert(pc, isa.BranchIndirect, 0x403000, 2)
	e, _ := b.Lookup(pc, 3)
	if e.Target != 0x403000 {
		t.Errorf("target not updated: %v", e.Target)
	}
	if b.Stats.Inserts != 1 {
		t.Errorf("update counted as insert: %d", b.Stats.Inserts)
	}
}

func TestLRUEviction(t *testing.T) {
	b := New(Config{Entries: 2, Ways: 2}) // one set
	// Addresses mapping to set 0: instruction-granular index, so step
	// by sets*4 bytes = 4.
	a1, a2, a3 := isa.Addr(0x400000), isa.Addr(0x400004), isa.Addr(0x400008)
	b.Insert(a1, isa.BranchCond, 1, 1)
	b.Insert(a2, isa.BranchCond, 2, 2)
	b.Lookup(a1, 3) // refresh a1
	b.Insert(a3, isa.BranchCond, 3, 4)
	if _, hit := b.Lookup(a1, 5); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := b.Lookup(a2, 6); hit {
		t.Error("LRU entry survived")
	}
	if b.Stats.Evicts != 1 {
		t.Errorf("Evicts = %d", b.Stats.Evicts)
	}
}

func TestCapacityPressure(t *testing.T) {
	b := New(Config{Entries: 64, Ways: 4})
	// Insert far more branches than capacity; hit rate on re-lookup of
	// the full set must be bounded by capacity.
	n := 512
	for i := 0; i < n; i++ {
		b.Insert(isa.Addr(0x400000+i*4), isa.BranchCond, isa.Addr(i), uint64(i))
	}
	live := 0
	for i := 0; i < n; i++ {
		if b.Probe(isa.Addr(0x400000 + i*4)) {
			live++
		}
	}
	if live > b.Entries() {
		t.Errorf("%d live entries exceed capacity %d", live, b.Entries())
	}
	if live < b.Entries()/2 {
		t.Errorf("only %d live entries; capacity %d badly utilized", live, b.Entries())
	}
}

func TestPartialTagsAlias(t *testing.T) {
	// With tiny partial tags, distant branches must alias (Fagin-style
	// storage/accuracy tradeoff made visible).
	b := New(Config{Entries: 16, Ways: 1, TagBits: 2})
	b.Insert(0x400000, isa.BranchCond, 0xAAA, 1)
	found := false
	for i := 1; i < 64 && !found; i++ {
		// Same set requires stride of sets*4 = 64 bytes.
		pc := isa.Addr(0x400000 + i*16*4*4)
		if _, hit := b.Lookup(pc, uint64(i)); hit {
			found = true
		}
	}
	if !found {
		t.Error("no aliasing observed with 2-bit partial tags")
	}
}

func TestConfigPanics(t *testing.T) {
	bad := []Config{
		{Entries: 0, Ways: 4},
		{Entries: 63, Ways: 4},
		{Entries: 24, Ways: 4}, // 6 sets: not a power of two
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Lookups: 10, Hits: 7}
	if s.HitRate() != 0.7 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	var zero Stats
	if zero.HitRate() != 0 {
		t.Error("zero divide")
	}
}

func TestRecordTakenMiss(t *testing.T) {
	b := New(Config{Entries: 8, Ways: 2})
	b.RecordTakenMiss()
	if b.Stats.MissesTaken != 1 {
		t.Errorf("MissesTaken = %d", b.Stats.MissesTaken)
	}
}

func TestIndirectLearnsStableTarget(t *testing.T) {
	ib := NewIndirect(256)
	pc := isa.Addr(0x401000)
	hist := uint64(0xabc)
	if _, hit := ib.Lookup(pc, hist); hit {
		t.Fatal("cold hit")
	}
	ib.Update(pc, hist, 0x500000)
	tgt, hit := ib.Lookup(pc, hist)
	if !hit || tgt != 0x500000 {
		t.Fatalf("lookup = (%v, %v)", tgt, hit)
	}
}

func TestIndirectConfidenceHysteresis(t *testing.T) {
	ib := NewIndirect(256)
	pc := isa.Addr(0x401000)
	hist := uint64(0x1)
	for i := 0; i < 4; i++ {
		ib.Update(pc, hist, 0x500000) // confidence saturates
	}
	// One conflicting outcome must not immediately replace the target.
	ib.Update(pc, hist, 0x600000)
	tgt, _ := ib.Lookup(pc, hist)
	if tgt != 0x500000 {
		t.Errorf("single conflict replaced confident target: %v", tgt)
	}
	// Repeated conflicts eventually do.
	for i := 0; i < 8; i++ {
		ib.Update(pc, hist, 0x600000)
	}
	tgt, _ = ib.Lookup(pc, hist)
	if tgt != 0x600000 {
		t.Errorf("target never retrained: %v", tgt)
	}
}

func TestIndirectPathSensitivity(t *testing.T) {
	ib := NewIndirect(256)
	pc := isa.Addr(0x401000)
	ib.Update(pc, 0x111, 0x500000)
	ib.Update(pc, 0x999, 0x600000)
	t1, h1 := ib.Lookup(pc, 0x111)
	t2, h2 := ib.Lookup(pc, 0x999)
	if !h1 || !h2 || t1 != 0x500000 || t2 != 0x600000 {
		t.Errorf("path-sensitive targets: (%v,%v) (%v,%v)", t1, h1, t2, h2)
	}
}

func TestIndirectPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d accepted", n)
				}
			}()
			NewIndirect(n)
		}()
	}
}
