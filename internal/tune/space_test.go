package tune

import (
	"math"
	"strings"
	"testing"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
)

// testSpaceJSON is a small valid space used across the tests.
const testSpaceJSON = `{
  "name": "t",
  "workloads": ["mysql"],
  "seed": 3,
  "instructions": 40000,
  "search": {"samples": 6, "eta": 2, "rungs": 2, "refine": 8},
  "dimensions": [
    {"name": "mech", "field": "mechanism", "choices": ["baseline", "udp"]},
    {"name": "l2m", "field": "l2_mshrs", "values": [4, 8, 16, 32]},
    {"name": "ftq", "field": "ftq", "min": 8, "max": 32, "log2": true}
  ]
}`

func mustSpace(t testing.TB, src string) *Space {
	t.Helper()
	sp, err := ParseSpace(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseSpace: %v", err)
	}
	return sp
}

func TestSpaceDefaultsAndSize(t *testing.T) {
	sp := mustSpace(t, testSpaceJSON)
	if sp.Objective != ObjectiveIPC || sp.Mechanism != "udp" || sp.Simpoints != 1 {
		t.Fatalf("defaults not applied: %+v", sp)
	}
	if got := sp.SpaceSize(); got != 2*4*3 {
		t.Fatalf("SpaceSize = %d, want 24", got)
	}
	if got := len(sp.Enumerate()); got != 24 {
		t.Fatalf("Enumerate returned %d vectors, want 24", got)
	}
}

// TestSpaceValidationErrors drives the validator through every
// malformed shape the fuzzer also explores and checks each lands as a
// structured field error, never a panic.
func TestSpaceValidationErrors(t *testing.T) {
	cases := []struct {
		name, src, wantField string
	}{
		{"no name", `{"workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "name"},
		{"no workloads", `{"name":"t","dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "workloads"},
		{"unknown workload", `{"name":"t","workloads":["nope"],"dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "workloads[0]"},
		{"trace workload", `{"name":"t","workloads":["trace:abc"],"dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "workloads[0]"},
		{"bad objective", `{"name":"t","workloads":["mysql"],"objective":"wat","dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "objective"},
		{"stray baseline", `{"name":"t","workloads":["mysql"],"baseline":{"label":"b","mechanism":"baseline"},"dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "baseline"},
		{"no dimensions", `{"name":"t","workloads":["mysql"]}`, "dimensions"},
		{"dup dim name", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[8]},{"name":"a","field":"btb","values":[8]}]}`, "dimensions[1].name"},
		{"dup dim field", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[8]},{"name":"b","field":"ftq","values":[16]}]}`, "dimensions[1].field"},
		{"unknown field", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"wat","values":[8]}]}`, "dimensions[0].field"},
		{"empty choices", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"mechanism"}]}`, "dimensions[0].choices"},
		{"choices on int field", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","choices":["udp"]}]}`, "dimensions[0].choices"},
		{"dup choice", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"mechanism","choices":["udp","udp"]}]}`, "dimensions[0].choices"},
		{"unknown mechanism choice", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"mechanism","choices":["wat"]}]}`, "dimensions[0].choices[0]"},
		{"values not increasing", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[8,8]}]}`, "dimensions[0].values[1]"},
		{"negative value", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[-4]}]}`, "dimensions[0].values[0]"},
		{"values plus range", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[8],"max":16}]}`, "dimensions[0].values"},
		{"fractional max", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":1,"max":2.5}]}`, "dimensions[0].max"},
		{"huge min", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":1e18,"max":2e18}]}`, "dimensions[0].min"},
		{"min over max", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":16,"max":8}]}`, "dimensions[0].min"},
		{"zero range", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":0,"max":0}]}`, "dimensions[0].min"},
		{"step with log2", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":1,"max":8,"step":2,"log2":true}]}`, "dimensions[0].step"},
		{"negative step", `{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":1,"max":8,"step":-1}]}`, "dimensions[0].step"},
		{"bad eta", `{"name":"t","workloads":["mysql"],"search":{"eta":1},"dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "search.eta"},
		{"bad rungs", `{"name":"t","workloads":["mysql"],"search":{"rungs":9},"dimensions":[{"name":"a","field":"ftq","values":[8]}]}`, "search.rungs"},
		{"huge space", `{"name":"t","workloads":["mysql"],"dimensions":[
			{"name":"a","field":"ftq","min":1,"max":2048},
			{"name":"b","field":"btb","min":1,"max":2048}]}`, "dimensions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpace(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("want validation error, got nil")
			}
			ve := experiments.AsValidationError(err)
			if ve == nil {
				t.Fatalf("want *ValidationError, got %T: %v", err, err)
			}
			for _, f := range ve.Fields {
				if f.Field == tc.wantField {
					return
				}
			}
			t.Fatalf("no field error on %q; got %v", tc.wantField, ve.Fields)
		})
	}
}

// TestNaNBoundsRejected drives Validate directly with non-finite
// bounds (encoding/json already refuses them on the wire, but the
// validator must hold for programmatic construction too).
func TestNaNBoundsRejected(t *testing.T) {
	for name, bound := range map[string]float64{
		"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1),
	} {
		sp := &Space{Name: "t", Workloads: []string{"mysql"},
			Dims: []Dimension{{Name: "a", Field: "ftq", Min: bound, Max: 8}}}
		err := sp.Validate()
		ve := experiments.AsValidationError(err)
		if ve == nil {
			t.Fatalf("%s min: want *ValidationError, got %v", name, err)
		}
		found := false
		for _, fe := range ve.Fields {
			found = found || fe.Field == "dimensions[0].min"
		}
		if !found {
			t.Fatalf("%s min: no field error on dimensions[0].min; got %v", name, ve.Fields)
		}
	}
}

// TestRunIDDedup pins the content addressing: logically identical
// spaces (modulo defaults) share a RunID, any knob change moves it.
func TestRunIDDedup(t *testing.T) {
	a := mustSpace(t, testSpaceJSON)
	b := mustSpace(t, testSpaceJSON)
	if RunID(a) != RunID(b) {
		t.Fatalf("identical spaces got different run IDs")
	}
	explicit := mustSpace(t, strings.Replace(testSpaceJSON, `"name": "t",`, `"name": "t", "objective": "ipc",`, 1))
	if RunID(a) != RunID(explicit) {
		t.Fatalf("defaulted and explicit objective must share a run ID")
	}
	seeded := mustSpace(t, strings.Replace(testSpaceJSON, `"seed": 3`, `"seed": 4`, 1))
	if RunID(a) == RunID(seeded) {
		t.Fatalf("different seeds must not share a run ID")
	}
	if !strings.HasPrefix(RunID(a), "t") || len(RunID(a)) != 33 {
		t.Fatalf("malformed run ID %q", RunID(a))
	}
}

// TestTuneFieldsRoundTripConfigKey is the acquisition-cache
// load-bearing property: every searchable field must move
// sim.ConfigKey, or two different candidates would collide on one
// store cell.
func TestTuneFieldsRoundTripConfigKey(t *testing.T) {
	d := &experiments.Descriptor{Instructions: 1000}
	base := experiments.ConfigSpec{Label: "x", Mechanism: "udp"}
	baseKey := sim.ConfigKey(experiments.CellConfig(d, "mysql", base))
	for field, set := range map[string]func(*experiments.ConfigSpec, int){
		"uftq_initial_depth": intFields["uftq_initial_depth"],
		"uftq_min_depth":     intFields["uftq_min_depth"],
		"uftq_max_depth":     intFields["uftq_max_depth"],
		"udp_confidence":     intFields["udp_confidence"],
		"udp_seniority":      intFields["udp_seniority"],
		"l2_mshrs":           intFields["l2_mshrs"],
		"ftq":                intFields["ftq"],
	} {
		cs := base
		set(&cs, 3)
		key := sim.ConfigKey(experiments.CellConfig(d, "mysql", cs))
		if key == baseKey {
			t.Errorf("field %q does not round-trip ConfigKey: candidate collides with base cell", field)
		}
	}
}

func TestHalvingPlanShape(t *testing.T) {
	sp := mustSpace(t, testSpaceJSON)
	plan := sp.HalvingPlan()
	if len(plan) != 2 || plan[0] != 6 || plan[1] != 3 {
		t.Fatalf("plan = %v, want [6 3]", plan)
	}
	if sp.PlannedProbes() != 9 {
		t.Fatalf("PlannedProbes = %d, want 9", sp.PlannedProbes())
	}
	f0, f1 := sp.FidelityAt(0), sp.FullFidelity()
	if f1.Instructions != 40000 || f0.Instructions != 20000 {
		t.Fatalf("fidelities = %+v / %+v", f0, f1)
	}
	if f0.Instructions == f1.Instructions {
		t.Fatalf("rungs must probe different region budgets")
	}
}

// FuzzParseSpace feeds arbitrary JSON to the space validator: it must
// either reject with a structured error or accept a space whose
// derived quantities are sane — never panic.
func FuzzParseSpace(f *testing.F) {
	f.Add(testSpaceJSON)
	f.Add(`{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","min":1e999,"max":-1e999}]}`)
	f.Add(`{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"mechanism","choices":[]}]}`)
	f.Add(`{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"ftq","values":[3,2,1]},{"name":"a","field":"ftq","values":[1]}]}`)
	f.Add(`{"name":"t","workloads":["mysql"],"dimensions":[{"name":"a","field":"l2_mshrs","min":-4,"max":4,"step":0.5}]}`)
	f.Add(`{"name":"","workloads":[],"search":{"samples":-1,"eta":0,"rungs":99},"dimensions":null}`)
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := ParseSpace(strings.NewReader(src))
		if err != nil {
			return
		}
		// An accepted space must be internally consistent enough to
		// drive the search: enumerable, addressable, describable.
		if sp.SpaceSize() == 0 {
			t.Fatalf("accepted space has zero size")
		}
		if len(RunID(sp)) != 33 {
			t.Fatalf("malformed run ID")
		}
		plan := sp.HalvingPlan()
		if len(plan) != sp.Search.Rungs || plan[0] < 1 {
			t.Fatalf("bad halving plan %v", plan)
		}
		vecs := sp.Enumerate()
		if uint64(len(vecs)) != sp.SpaceSize() {
			t.Fatalf("Enumerate disagrees with SpaceSize")
		}
		for _, v := range vecs[:min(len(vecs), 8)] {
			_ = sp.Label(v)
			_ = sp.Describe(v)
			_ = sp.Spec(v)
		}
	})
}
