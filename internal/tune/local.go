package tune

import (
	"context"
	"fmt"

	"udpsim/internal/experiments"
)

// LocalProber evaluates probes in-process through the experiment
// engine's memoized, store-backed descriptor runner — the prober
// behind `experiment -tune` and the search-invariant tests. When a
// result store is attached it is consulted per cell before anything
// simulates, so a probe whose cells are all known reports Cached and
// costs zero simulations.
type LocalProber struct {
	Space *Space
	// Store, when set, is the acquisition cache (and write-back target
	// for fresh cells, via the engine).
	Store experiments.ResultStore
	// Parallelism bounds concurrent cell simulation (0 = GOMAXPROCS).
	Parallelism int
	// Batch selects the lockstep-batched engine path.
	Batch bool
}

// Probe implements Prober.
func (p *LocalProber) Probe(ctx context.Context, specs []experiments.ConfigSpec, fid Fidelity, class ProbeClass) ([]Outcome, error) {
	d, err := p.Space.ProbeDescriptor(specs, fid)
	if err != nil {
		return nil, err
	}
	outs := make([]Outcome, len(specs))
	var missing []experiments.ConfigSpec
	for i, cs := range specs {
		out, ok, err := OutcomeFromStore(p.Store, p.Space, d, cs)
		if err != nil {
			return nil, err
		}
		if ok {
			outs[i] = out
		} else {
			missing = append(missing, cs)
		}
	}
	if len(missing) > 0 {
		sub, err := p.Space.ProbeDescriptor(missing, fid)
		if err != nil {
			return nil, err
		}
		results, err := experiments.RunDescriptorObserved(sub, nil, p.Parallelism,
			experiments.Options{Context: ctx, Batch: p.Batch, Store: p.Store})
		if err != nil {
			return nil, err
		}
		byLabel := SplitByLabel(results)
		for i, cs := range specs {
			if outs[i].Results != nil {
				continue
			}
			rs, ok := byLabel[cs.Label]
			if !ok {
				return nil, fmt.Errorf("tune: engine returned no cells for label %q", cs.Label)
			}
			outs[i] = Outcome{Results: rs}
		}
	}
	return outs, nil
}

// OutcomeFromStore assembles one spec's outcome entirely from a result
// store (ok=false when any cell is missing) — the acquisition-cache
// probe shared by LocalProber and the daemon's queue-backed prober.
func OutcomeFromStore(st experiments.ResultStore, sp *Space, d *experiments.Descriptor, cs experiments.ConfigSpec) (Outcome, bool, error) {
	if st == nil {
		return Outcome{}, false, nil
	}
	results := make([]experiments.DescriptorResult, 0, len(sp.Workloads))
	for _, w := range sp.Workloads {
		res, ok, err := st.Load(experiments.CellKey(d, w, cs))
		if err != nil {
			return Outcome{}, false, err
		}
		if !ok {
			return Outcome{}, false, nil
		}
		results = append(results, experiments.DescriptorResult{Workload: w, Label: cs.Label, Result: res})
	}
	return Outcome{Results: results, Cached: true}, true, nil
}

// SplitByLabel groups a probe descriptor's workload-major results per
// config label, keeping workload order.
func SplitByLabel(results []experiments.DescriptorResult) map[string][]experiments.DescriptorResult {
	out := map[string][]experiments.DescriptorResult{}
	for _, r := range results {
		out[r.Label] = append(out[r.Label], r)
	}
	return out
}
