// Package tune implements autotuning over the experiment engine's
// content-addressed result store: a parameter-space descriptor (named
// dimensions over the frontend, cache-geometry and bandwidth knobs of
// a ConfigSpec) and a dependency-free, seed-deterministic search
// driver (seeded random sampling, successive halving over region
// budgets, local refinement around the incumbent). The driver talks to
// the simulator only through the Prober interface, so the same search
// runs in-process over the experiment engine (cmd/experiment -tune) or
// through a udpsimd job queue (POST /v1/tune), and every probe lands
// on a canonical cell key — re-probing a known cell costs zero
// simulations wherever a result store is attached.
package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Objective names for Space.Objective.
const (
	ObjectiveIPC        = "ipc"         // maximize instructions per cycle
	ObjectiveIcacheMPKI = "icache_mpki" // minimize icache misses per kilo-instruction
	ObjectiveSpeedup    = "speedup"     // maximize IPC speedup over the paired baseline cell
)

// Space is a JSON parameter-space descriptor, the tuning analogue of
// the experiment Descriptor: which knobs to search, over which
// workloads, optimizing which objective, with what probe budget.
//
// Example:
//
//	{
//	  "name": "bandwidth-tune",
//	  "workloads": ["mysql"],
//	  "objective": "ipc",
//	  "mechanism": "udp",
//	  "instructions": 60000,
//	  "warmup": 60000,
//	  "seed": 1,
//	  "search": {"samples": 12, "eta": 4, "rungs": 2, "refine": 16},
//	  "dimensions": [
//	    {"name": "mech", "field": "mechanism", "choices": ["baseline", "udp"]},
//	    {"name": "l2m", "field": "l2_mshrs", "values": [4, 8, 16, 32]},
//	    {"name": "ftq", "field": "ftq", "min": 8, "max": 64, "log2": true}
//	  ]
//	}
type Space struct {
	Name      string   `json:"name"`
	Workloads []string `json:"workloads"`
	// Objective selects what a probe's score is (default "ipc").
	// "speedup" scores each candidate against the paired baseline cell
	// (same workload, same fidelity) described by Baseline.
	Objective string `json:"objective,omitempty"`
	// Mechanism is the candidate mechanism when no "mechanism"
	// dimension is declared (default "udp").
	Mechanism string `json:"mechanism,omitempty"`
	// Baseline is the paired-baseline config for the speedup objective
	// (default {"label": "baseline", "mechanism": "baseline"}).
	Baseline *experiments.ConfigSpec `json:"baseline,omitempty"`
	// Full-fidelity region budget (defaults match descriptors:
	// 500000 instructions, 1 simpoint). Lower rungs of successive
	// halving probe geometrically shorter regions of the same cells.
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`
	Simpoints    int    `json:"simpoints,omitempty"`
	// Seed makes the whole search deterministic: same space + seed =
	// same probes, same incumbent.
	Seed   int64       `json:"seed,omitempty"`
	Search Search      `json:"search,omitempty"`
	Dims   []Dimension `json:"dimensions"`
}

// Search sizes the three stages of the driver.
type Search struct {
	// Samples is the rung-0 random-sampling population (default 16,
	// clamped to the space size).
	Samples int `json:"samples,omitempty"`
	// Eta is the halving factor: each rung keeps ~1/eta of the previous
	// population and probes an eta-times-longer region (default 4).
	Eta int `json:"eta,omitempty"`
	// Rungs is the number of fidelity levels; the last rung is the full
	// region budget (default 2, max 8).
	Rungs int `json:"rungs,omitempty"`
	// Refine bounds the local-refinement probes around the incumbent at
	// full fidelity (default 16; 0 disables refinement).
	Refine int `json:"refine,omitempty"`
}

// Dimension is one searchable knob. Exactly one shape must be used:
// an explicit integer level set (Values), a categorical set (Choices,
// only for field "mechanism"), or an integer range [Min, Max] stepped
// by Step (Log2 instead doubles from Min to Max).
type Dimension struct {
	Name  string `json:"name"`
	Field string `json:"field"`
	// Range shape. Bounds are JSON numbers validated to be finite
	// integers, so a space descriptor with NaN/Inf or fractional bounds
	// is a structured 400, never a panic downstream.
	Min  float64 `json:"min,omitempty"`
	Max  float64 `json:"max,omitempty"`
	Step float64 `json:"step,omitempty"`
	Log2 bool    `json:"log2,omitempty"`
	// Explicit shapes.
	Values  []int    `json:"values,omitempty"`
	Choices []string `json:"choices,omitempty"`

	// levels is the validated enumeration for the two integer shapes;
	// mechanism dimensions enumerate Choices directly.
	levels []int
}

// intFields maps a dimension's "field" to the ConfigSpec override it
// drives. Every field here round-trips sim.ConfigKey canonically —
// that is what makes the result store usable as the search's
// acquisition cache.
var intFields = map[string]func(*experiments.ConfigSpec, int){
	"ftq":                   func(cs *experiments.ConfigSpec, v int) { cs.FTQ = v },
	"btb":                   func(cs *experiments.ConfigSpec, v int) { cs.BTB = v },
	"icache_kb":             func(cs *experiments.ConfigSpec, v int) { cs.ICacheKB = v },
	"icache_ways":           func(cs *experiments.ConfigSpec, v int) { cs.ICacheWays = v },
	"l1d_mshrs":             func(cs *experiments.ConfigSpec, v int) { cs.L1DMSHRs = v },
	"l2_mshrs":              func(cs *experiments.ConfigSpec, v int) { cs.L2MSHRs = v },
	"llc_mshrs":             func(cs *experiments.ConfigSpec, v int) { cs.LLCMSHRs = v },
	"l2_fill_cycles":        func(cs *experiments.ConfigSpec, v int) { cs.L2FillCycles = v },
	"llc_fill_cycles":       func(cs *experiments.ConfigSpec, v int) { cs.LLCFillCycles = v },
	"dram_prefetch_backlog": func(cs *experiments.ConfigSpec, v int) { cs.DRAMPrefetchBacklog = v },
	"uftq_initial_depth":    func(cs *experiments.ConfigSpec, v int) { cs.UFTQInitialDepth = v },
	"uftq_min_depth":        func(cs *experiments.ConfigSpec, v int) { cs.UFTQMinDepth = v },
	"uftq_max_depth":        func(cs *experiments.ConfigSpec, v int) { cs.UFTQMaxDepth = v },
	"udp_confidence":        func(cs *experiments.ConfigSpec, v int) { cs.UDPConfidence = v },
	"udp_seniority":         func(cs *experiments.ConfigSpec, v int) { cs.UDPSeniority = v },
}

// fieldNames returns the searchable field names for error messages.
func fieldNames() string {
	names := make([]string, 0, len(intFields)+1)
	for f := range intFields {
		names = append(names, f)
	}
	sortStrings(names)
	return strings.Join(append(names, "mechanism"), ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// maxSpaceSize bounds the cross product so a typo'd range cannot
// demand a billion-cell enumeration from the daemon.
const maxSpaceSize = 1 << 20

// maxDimLevels bounds one dimension's enumeration.
const maxDimLevels = 4096

// ParseSpace reads and validates a JSON space descriptor.
func ParseSpace(r io.Reader) (*Space, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Space
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("tune: parsing space: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate reports every structural problem as a
// *experiments.ValidationError (the daemon maps it to a structured 400
// body, same as descriptor validation) and applies defaults. Must be
// called before any other method.
func (sp *Space) Validate() error {
	ve := &experiments.ValidationError{Descriptor: sp.Name}
	bad := func(field, format string, args ...any) {
		ve.Fields = append(ve.Fields, experiments.FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if sp.Name == "" {
		bad("name", "space needs a name")
	}
	if len(sp.Workloads) == 0 {
		bad("workloads", "space needs at least one workload")
	}
	for i, w := range sp.Workloads {
		if strings.HasPrefix(w, "trace:") {
			bad(fmt.Sprintf("workloads[%d]", i), "trace workloads are not tunable (no trace set travels with a space)")
			continue
		}
		if _, ok := workload.ByName(w); !ok {
			bad(fmt.Sprintf("workloads[%d]", i), "unknown workload %q (known: %s)",
				w, strings.Join(append(append([]string{}, workload.Names...), workload.ExtraNames...), ", "))
		}
	}
	switch sp.Objective {
	case "":
		sp.Objective = ObjectiveIPC
	case ObjectiveIPC, ObjectiveIcacheMPKI, ObjectiveSpeedup:
	default:
		bad("objective", "unknown objective %q (known: %s, %s, %s)",
			sp.Objective, ObjectiveIPC, ObjectiveIcacheMPKI, ObjectiveSpeedup)
	}
	if sp.Mechanism == "" {
		sp.Mechanism = "udp"
	}
	if _, ok := sim.LookupMechanism(sim.Mechanism(sp.Mechanism)); !ok {
		bad("mechanism", "unknown mechanism %q (registered: %s)", sp.Mechanism, sim.MechanismNames())
	}
	if sp.Objective == ObjectiveSpeedup {
		if sp.Baseline == nil {
			sp.Baseline = &experiments.ConfigSpec{Mechanism: "baseline"}
		}
		if sp.Baseline.Label == "" {
			sp.Baseline.Label = baselineLabel
		}
		if _, ok := sim.LookupMechanism(sim.Mechanism(sp.Baseline.Mechanism)); !ok || sp.Baseline.Mechanism == "" {
			bad("baseline.mechanism", "unknown mechanism %q (registered: %s)",
				sp.Baseline.Mechanism, sim.MechanismNames())
		}
	} else if sp.Baseline != nil {
		bad("baseline", "baseline is only meaningful with the %q objective", ObjectiveSpeedup)
	}
	if sp.Instructions == 0 {
		sp.Instructions = 500_000
	}
	if sp.Simpoints == 0 {
		sp.Simpoints = 1
	}
	if sp.Simpoints < 0 {
		bad("simpoints", "simpoints must be positive, got %d", sp.Simpoints)
	}

	if sp.Search.Samples == 0 {
		sp.Search.Samples = 16
	}
	if sp.Search.Samples < 1 {
		bad("search.samples", "samples must be positive, got %d", sp.Search.Samples)
	}
	if sp.Search.Eta == 0 {
		sp.Search.Eta = 4
	}
	if sp.Search.Eta < 2 {
		bad("search.eta", "eta must be at least 2, got %d", sp.Search.Eta)
	}
	if sp.Search.Rungs == 0 {
		sp.Search.Rungs = 2
	}
	if sp.Search.Rungs < 1 || sp.Search.Rungs > 8 {
		bad("search.rungs", "rungs must be in [1, 8], got %d", sp.Search.Rungs)
	}
	if sp.Search.Refine == 0 {
		sp.Search.Refine = 16
	}
	if sp.Search.Refine < 0 {
		sp.Search.Refine = 0 // negative = disable, normalized for the RunID
	}

	if len(sp.Dims) == 0 {
		bad("dimensions", "space needs at least one dimension")
	}
	names := map[string]bool{}
	fields := map[string]int{}
	size := uint64(1)
	for i := range sp.Dims {
		d := &sp.Dims[i]
		field := func(f string) string { return fmt.Sprintf("dimensions[%d].%s", i, f) }
		if d.Name == "" {
			bad(field("name"), "dimension needs a name")
		} else if names[d.Name] {
			bad(field("name"), "duplicate dimension name %q", d.Name)
		}
		names[d.Name] = true
		if prev, dup := fields[d.Field]; dup {
			bad(field("field"), "field %q already driven by dimension %q", d.Field, sp.Dims[prev].Name)
		}
		fields[d.Field] = i
		d.validate(bad, field)
		if n := d.Count(); n > 0 && size < maxSpaceSize*2 {
			size *= uint64(n)
		}
	}
	if size > maxSpaceSize {
		bad("dimensions", "space enumerates %d cells, more than the %d maximum", size, maxSpaceSize)
	}
	if len(ve.Fields) > 0 {
		return ve
	}
	return nil
}

// validate checks one dimension's shape and fills its level
// enumeration.
func (d *Dimension) validate(bad func(field, format string, args ...any), field func(string) string) {
	if len(d.Choices) > 0 || (d.Field == "mechanism" && d.Values == nil && d.Min == 0 && d.Max == 0) {
		if d.Field != "mechanism" {
			bad(field("choices"), "categorical choices are only valid for field \"mechanism\", not %q", d.Field)
			return
		}
		if len(d.Choices) == 0 {
			bad(field("choices"), "mechanism dimension needs a non-empty choice set")
			return
		}
		if len(d.Choices) > maxDimLevels {
			bad(field("choices"), "%d choices exceed the %d maximum", len(d.Choices), maxDimLevels)
			return
		}
		seen := map[string]bool{}
		for k, c := range d.Choices {
			if seen[c] {
				bad(field("choices"), "duplicate choice %q", c)
			}
			seen[c] = true
			if _, ok := sim.LookupMechanism(sim.Mechanism(c)); !ok || c == "" {
				bad(fmt.Sprintf("%s[%d]", field("choices"), k), "unknown mechanism %q (registered: %s)",
					c, sim.MechanismNames())
			}
		}
		if d.Values != nil || d.Min != 0 || d.Max != 0 || d.Step != 0 || d.Log2 {
			bad(field("choices"), "a categorical dimension cannot also declare values or a range")
		}
		return
	}
	if _, ok := intFields[d.Field]; !ok {
		bad(field("field"), "unknown field %q (searchable: %s)", d.Field, fieldNames())
		return
	}
	negOK := d.Field == "dram_prefetch_backlog" // negative = throttle off
	if len(d.Values) > 0 {
		if d.Min != 0 || d.Max != 0 || d.Step != 0 || d.Log2 {
			bad(field("values"), "an explicit value set cannot also declare a range")
		}
		if len(d.Values) > maxDimLevels {
			bad(field("values"), "%d values exceed the %d maximum", len(d.Values), maxDimLevels)
			return
		}
		for k, v := range d.Values {
			if k > 0 && v <= d.Values[k-1] {
				bad(fmt.Sprintf("%s[%d]", field("values"), k),
					"values must be strictly increasing, got %d after %d", v, d.Values[k-1])
			}
			if v == 0 || (v < 0 && !negOK) {
				bad(fmt.Sprintf("%s[%d]", field("values"), k), "field %q requires positive values, got %d", d.Field, v)
			}
		}
		d.levels = append([]int(nil), d.Values...)
		return
	}
	// Range shape.
	checkBound := func(name string, v float64) (int, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad(field(name), "%s must be a finite number", name)
			return 0, false
		}
		if v != math.Trunc(v) || v > math.MaxInt32 || v < math.MinInt32 {
			bad(field(name), "%s must be an integer in int32 range, got %v", name, v)
			return 0, false
		}
		return int(v), true
	}
	lo, okLo := checkBound("min", d.Min)
	hi, okHi := checkBound("max", d.Max)
	if !okLo || !okHi {
		return
	}
	if lo > hi {
		bad(field("min"), "min %d exceeds max %d", lo, hi)
		return
	}
	if lo <= 0 && !negOK {
		bad(field("min"), "field %q requires a positive range, got min %d", d.Field, lo)
		return
	}
	if d.Log2 {
		if d.Step != 0 {
			bad(field("step"), "step and log2 are mutually exclusive")
			return
		}
		if lo < 1 {
			bad(field("min"), "a log2 range needs min >= 1, got %d", lo)
			return
		}
		for v := lo; v <= hi && len(d.levels) <= maxDimLevels; v *= 2 {
			d.levels = append(d.levels, v)
		}
	} else {
		step, okStep := checkBound("step", d.Step)
		if !okStep {
			return
		}
		if step == 0 {
			step = 1
		}
		if step < 1 {
			bad(field("step"), "step must be positive, got %d", step)
			return
		}
		for v := lo; v <= hi && len(d.levels) <= maxDimLevels; v += step {
			d.levels = append(d.levels, v)
		}
	}
	if len(d.levels) > maxDimLevels {
		bad(field("max"), "range enumerates more than %d levels", maxDimLevels)
		d.levels = nil
	}
}

// Count is the number of levels of a validated dimension.
func (d *Dimension) Count() int {
	if d.Field == "mechanism" {
		return len(d.Choices)
	}
	return len(d.levels)
}

// Level renders level idx for display ("udp", "32").
func (d *Dimension) Level(idx int) string {
	if d.Field == "mechanism" {
		return d.Choices[idx]
	}
	return strconv.Itoa(d.levels[idx])
}

// SpaceSize is the number of unique candidate cells in the validated
// space (the full-grid simulation count per workload).
func (sp *Space) SpaceSize() uint64 {
	size := uint64(1)
	for i := range sp.Dims {
		size *= uint64(sp.Dims[i].Count())
	}
	return size
}

// RunID content-addresses a validated space: "t" + the first 32 hex
// chars of the SHA-256 of its canonical JSON (defaults applied, so two
// logically identical tune requests — same space, objective and seed —
// collide, which is the dedup point).
func RunID(sp *Space) string {
	blob, err := json.Marshal(sp)
	if err != nil {
		blob = []byte(fmt.Sprintf("%+v", sp))
	}
	sum := sha256.Sum256(blob)
	return "t" + hex.EncodeToString(sum[:16])
}

// Vector is one candidate: a level index per dimension.
type Vector []int

// Key is the canonical within-run identity of a vector ("2.0.1").
func (sp *Space) Key(v Vector) string {
	var b strings.Builder
	for i, idx := range v {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// Label is the vector's config label inside probe descriptors —
// unique, canonical, and stable across runs ("x2.0.1"), so identical
// probes from different tune runs dedup to the same job and store
// cells.
func (sp *Space) Label(v Vector) string { return "x" + sp.Key(v) }

// baselineLabel is the reserved label of the paired-baseline spec.
const baselineLabel = "baseline"

// Describe renders a vector for humans: "mech=udp l2m=32".
func (sp *Space) Describe(v Vector) string {
	parts := make([]string, len(v))
	for i, idx := range v {
		parts[i] = sp.Dims[i].Name + "=" + sp.Dims[i].Level(idx)
	}
	return strings.Join(parts, " ")
}

// Spec builds the candidate ConfigSpec of a vector: the space's base
// mechanism with each dimension's level applied.
func (sp *Space) Spec(v Vector) experiments.ConfigSpec {
	cs := experiments.ConfigSpec{Label: sp.Label(v), Mechanism: sp.Mechanism}
	for i, idx := range v {
		d := &sp.Dims[i]
		if d.Field == "mechanism" {
			cs.Mechanism = d.Choices[idx]
		} else {
			intFields[d.Field](&cs, d.levels[idx])
		}
	}
	return cs
}

// Enumerate returns every vector of the space in lexicographic order
// (the full grid; tests compare the tuner against it).
func (sp *Space) Enumerate() []Vector {
	total := sp.SpaceSize()
	out := make([]Vector, 0, total)
	cur := make(Vector, len(sp.Dims))
	for {
		out = append(out, append(Vector(nil), cur...))
		i := len(cur) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < sp.Dims[i].Count() {
				break
			}
			cur[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Fidelity is one rung's region budget. Cells probed at different
// fidelities are distinct store cells (instructions and warmup are
// part of the canonical cell key).
type Fidelity struct {
	Rung         int    `json:"rung"`
	Instructions uint64 `json:"instructions"`
	Warmup       uint64 `json:"warmup"`
	Simpoints    int    `json:"simpoints"`
}

// minProbeInstructions floors a rung's measured region; below this the
// ranking signal is noise.
const minProbeInstructions = 10_000

// FidelityAt returns rung r's region budget: the full budget divided
// by eta^(rungs-1-r), floored at minProbeInstructions.
func (sp *Space) FidelityAt(r int) Fidelity {
	div := uint64(1)
	for i := r; i < sp.Search.Rungs-1; i++ {
		div *= uint64(sp.Search.Eta)
	}
	instrs := sp.Instructions / div
	if instrs < minProbeInstructions {
		instrs = min(minProbeInstructions, sp.Instructions)
	}
	return Fidelity{Rung: r, Instructions: instrs, Warmup: sp.Warmup / div, Simpoints: sp.Simpoints}
}

// FullFidelity is the last rung's (full) region budget.
func (sp *Space) FullFidelity() Fidelity { return sp.FidelityAt(sp.Search.Rungs - 1) }

// ProbeDescriptor builds the canonical experiment descriptor that
// evaluates specs at one fidelity: the space's workloads crossed with
// the given candidate specs. The descriptor's name is content-derived,
// so identical probes — across generations, runs, or tuners — dedup to
// one daemon job and one set of store cells.
func (sp *Space) ProbeDescriptor(specs []experiments.ConfigSpec, fid Fidelity) (*experiments.Descriptor, error) {
	blob, _ := json.Marshal(struct {
		W []string
		C []experiments.ConfigSpec
		F Fidelity
	}{sp.Workloads, specs, fid})
	sum := sha256.Sum256(blob)
	d := &experiments.Descriptor{
		Name:         "tune-probe-" + hex.EncodeToString(sum[:6]),
		Workloads:    append([]string(nil), sp.Workloads...),
		Instructions: fid.Instructions,
		Warmup:       fid.Warmup,
		Simpoints:    fid.Simpoints,
		Configs:      append([]experiments.ConfigSpec(nil), specs...),
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("tune: building probe descriptor: %w", err)
	}
	return d, nil
}

// CellKeys returns spec's canonical store keys at a fidelity, one per
// workload in space order — the acquisition-cache lookup a prober does
// before spending a simulation.
func (sp *Space) CellKeys(spec experiments.ConfigSpec, fid Fidelity) ([]string, error) {
	d, err := sp.ProbeDescriptor([]experiments.ConfigSpec{spec}, fid)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(sp.Workloads))
	for i, w := range sp.Workloads {
		keys[i] = experiments.CellKey(d, w, spec)
	}
	return keys, nil
}

// Score reduces one candidate's per-workload results to the scalar
// objective (always maximized; minimized objectives are negated).
// results must hold one cell per space workload; base (same shape) is
// required only for the speedup objective.
func (sp *Space) Score(results, base []experiments.DescriptorResult) (float64, error) {
	byW := func(rs []experiments.DescriptorResult, w string) (sim.Result, error) {
		for _, r := range rs {
			if r.Workload == w {
				return r.Result, nil
			}
		}
		return sim.Result{}, fmt.Errorf("tune: no result for workload %q", w)
	}
	total := 0.0
	for _, w := range sp.Workloads {
		r, err := byW(results, w)
		if err != nil {
			return 0, err
		}
		switch sp.Objective {
		case ObjectiveIPC:
			total += r.IPC
		case ObjectiveIcacheMPKI:
			total -= r.IcacheMPKI
		case ObjectiveSpeedup:
			b, err := byW(base, w)
			if err != nil {
				return 0, fmt.Errorf("tune: speedup objective: %w", err)
			}
			total += r.Speedup(b)
		default:
			return 0, fmt.Errorf("tune: unknown objective %q", sp.Objective)
		}
	}
	return total / float64(len(sp.Workloads)), nil
}
