package tune

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"udpsim/internal/experiments"
)

// ProbeClass tells the prober why a probe is being made, so a
// queue-backed prober can schedule exploration below interactive work
// and refinement above it.
type ProbeClass string

const (
	ProbeExplore ProbeClass = "explore" // sampling + halving rungs
	ProbeRefine  ProbeClass = "refine"  // local refinement around the incumbent
)

// Outcome is one candidate's evaluation: its per-workload cells and
// whether the whole probe was served without a new simulation (every
// cell answered by the result store / cache).
type Outcome struct {
	Results []experiments.DescriptorResult
	Cached  bool
}

// Prober evaluates candidate specs at one fidelity. outcomes[i]
// corresponds to specs[i], each holding one cell per space workload.
// The driver never re-asks for a (vector, rung) pair it has already
// seen, so a prober may assume every call costs real work unless its
// own store says otherwise.
type Prober interface {
	Probe(ctx context.Context, specs []experiments.ConfigSpec, fid Fidelity, class ProbeClass) ([]Outcome, error)
}

// ProberFunc adapts a function to Prober.
type ProberFunc func(ctx context.Context, specs []experiments.ConfigSpec, fid Fidelity, class ProbeClass) ([]Outcome, error)

// Probe implements Prober.
func (f ProberFunc) Probe(ctx context.Context, specs []experiments.ConfigSpec, fid Fidelity, class ProbeClass) ([]Outcome, error) {
	return f(ctx, specs, fid, class)
}

// Event is one frontier update of a running search, published in
// order. Types:
//
//	"probe"      one candidate scored (label, rung, score)
//	"generation" one rung (or refinement pass) completed
//	"incumbent"  the best full-fidelity candidate improved
//	"eliminated" candidates cut by successive halving
type Event struct {
	Type       string   `json:"type"`
	Phase      string   `json:"phase,omitempty"` // "halving" | "refine"
	Rung       int      `json:"rung"`
	Label      string   `json:"label,omitempty"`
	Config     string   `json:"config,omitempty"` // human-readable vector ("mech=udp l2m=32")
	Score      float64  `json:"score,omitempty"`
	Evaluated  int      `json:"evaluated,omitempty"`
	Survivors  int      `json:"survivors,omitempty"`
	Eliminated []string `json:"eliminated,omitempty"`
	BestLabel  string   `json:"best_label,omitempty"`
	BestScore  float64  `json:"best_score"`
	Probes     int      `json:"probes"`
	CacheHits  int      `json:"cache_hits"`
}

// Stats counts what a finished search did.
type Stats struct {
	// Probes is every candidate evaluation the driver asked the prober
	// for (the within-run memo means each (vector, rung) counts once).
	Probes int `json:"probes"`
	// CacheHits is how many of those the prober answered without a new
	// simulation.
	CacheHits int `json:"cache_hits"`
	// HalvingProbes is the sampling + halving share of Probes; it
	// always equals the sum of the halving plan exactly.
	HalvingProbes int `json:"halving_probes"`
	// RefineProbes is the refinement share of Probes (<= Search.Refine).
	RefineProbes int `json:"refine_probes"`
	// BaselineProbes counts paired-baseline evaluations (speedup
	// objective only; excluded from the budgets above).
	BaselineProbes int `json:"baseline_probes,omitempty"`
	// IncumbentUpdates counts strict full-fidelity improvements.
	IncumbentUpdates int `json:"incumbent_updates"`
	// Eliminated counts candidates cut by halving (never probed again).
	Eliminated int `json:"eliminated"`
	// Generations counts rungs plus refinement passes.
	Generations int `json:"generations"`
}

// Best is the winning candidate of a search.
type Best struct {
	Label  string                 `json:"label"`
	Config string                 `json:"config"` // human-readable vector
	Vector Vector                 `json:"vector"`
	Spec   experiments.ConfigSpec `json:"spec"`
	Score  float64                `json:"score"`
	// Results holds the full-fidelity cells behind the score.
	Results []experiments.DescriptorResult `json:"-"`
}

// Result is a finished search.
type Result struct {
	RunID string `json:"run_id"`
	Best  Best   `json:"best"`
	Stats Stats  `json:"stats"`
	// PlannedProbes is the halving plan's exact probe total (sampling
	// included, refinement and baselines excluded).
	PlannedProbes int `json:"planned_probes"`
}

// HalvingPlan returns per-rung population sizes: samples (clamped to
// the space size) at rung 0, then 1/eta per rung, never below 1. The
// driver executes exactly sum(plan) sampling+halving probes.
func (sp *Space) HalvingPlan() []int {
	n := sp.Search.Samples
	if sz := sp.SpaceSize(); uint64(n) > sz {
		n = int(sz)
	}
	plan := make([]int, sp.Search.Rungs)
	for r := range plan {
		plan[r] = n
		if next := n / sp.Search.Eta; next >= 1 {
			n = next
		} else {
			n = 1
		}
	}
	return plan
}

// PlannedProbes is the halving plan's probe total.
func (sp *Space) PlannedProbes() int {
	total := 0
	for _, n := range sp.HalvingPlan() {
		total += n
	}
	return total
}

// Driver runs one search over a validated space. Deterministic: the
// same space (seed included) against a deterministic prober makes the
// same probes in the same order and returns the same Result.
type Driver struct {
	space  *Space
	prober Prober
	// OnEvent, when set, receives every frontier update in order,
	// synchronously from Run's goroutine.
	OnEvent func(Event)

	rng        *rand.Rand
	memo       map[string]scored // Key(v) + "@" + rung → evaluation
	eliminated map[string]bool   // Key(v) → cut by halving
	baseline   map[int][]experiments.DescriptorResult
	stats      Stats
}

type scored struct {
	vec   Vector
	score float64
	out   Outcome
}

// New builds a driver over a validated space.
func New(space *Space, p Prober) *Driver {
	return &Driver{space: space, prober: p}
}

// emit publishes one event with the running totals stamped on.
func (dr *Driver) emit(ev Event, bestLabel string, bestScore float64) {
	if dr.OnEvent == nil {
		return
	}
	ev.BestLabel, ev.BestScore = bestLabel, bestScore
	ev.Probes, ev.CacheHits = dr.stats.Probes, dr.stats.CacheHits
	dr.OnEvent(ev)
}

// Run executes the search: seeded random sampling, successive halving
// across the fidelity rungs, then greedy local refinement around the
// incumbent at full fidelity.
func (dr *Driver) Run(ctx context.Context) (*Result, error) {
	sp := dr.space
	dr.rng = rand.New(rand.NewSource(sp.Seed))
	dr.memo = map[string]scored{}
	dr.eliminated = map[string]bool{}
	dr.baseline = map[int][]experiments.DescriptorResult{}
	dr.stats = Stats{}

	plan := sp.HalvingPlan()
	cands := dr.sample(plan[0])
	var ranked []scored
	for r := 0; r < sp.Search.Rungs; r++ {
		if r > 0 {
			keep := plan[r]
			cut := ranked[keep:]
			labels := make([]string, len(cut))
			for i, c := range cut {
				dr.eliminated[sp.Key(c.vec)] = true
				labels[i] = sp.Label(c.vec)
			}
			dr.stats.Eliminated += len(cut)
			dr.emit(Event{Type: "eliminated", Phase: "halving", Rung: r - 1, Eliminated: labels},
				sp.Label(ranked[0].vec), ranked[0].score)
			cands = cands[:0]
			for _, c := range ranked[:keep] {
				cands = append(cands, c.vec)
			}
		}
		fid := sp.FidelityAt(r)
		var err error
		ranked, err = dr.evaluate(ctx, cands, fid, ProbeExplore, &dr.stats.HalvingProbes)
		if err != nil {
			return nil, err
		}
		dr.stats.Generations++
		survivors := len(ranked)
		if r+1 < len(plan) {
			survivors = plan[r+1]
		}
		dr.emit(Event{Type: "generation", Phase: "halving", Rung: r,
			Evaluated: len(ranked), Survivors: survivors},
			sp.Label(ranked[0].vec), ranked[0].score)
	}

	incumbent := ranked[0]
	dr.stats.IncumbentUpdates++
	full := sp.FullFidelity()
	dr.emit(Event{Type: "incumbent", Rung: full.Rung, Label: sp.Label(incumbent.vec),
		Config: sp.Describe(incumbent.vec), Score: incumbent.score},
		sp.Label(incumbent.vec), incumbent.score)

	// Local refinement: greedy coordinate descent around the incumbent
	// at full fidelity. Never probes an eliminated candidate (halving's
	// verdict is final) and never re-probes a known (vector, rung) —
	// memo hits cost no budget.
	budget := sp.Search.Refine
	for improved := true; improved && budget > 0; {
		improved = false
		passEvals := 0
		for dim := 0; dim < len(sp.Dims) && budget > 0; dim++ {
			for _, delta := range [2]int{-1, 1} {
				if budget <= 0 {
					break
				}
				idx := incumbent.vec[dim] + delta
				if idx < 0 || idx >= sp.Dims[dim].Count() {
					continue
				}
				nb := append(Vector(nil), incumbent.vec...)
				nb[dim] = idx
				if dr.eliminated[sp.Key(nb)] {
					continue
				}
				_, known := dr.memo[sp.Key(nb)+"@"+itoa(full.Rung)]
				if !known {
					budget--
				}
				evald, err := dr.evaluate(ctx, []Vector{nb}, full, ProbeRefine, &dr.stats.RefineProbes)
				if err != nil {
					return nil, err
				}
				if !known {
					passEvals++
				}
				if c := evald[0]; c.score > incumbent.score {
					incumbent = c
					improved = true
					dr.stats.IncumbentUpdates++
					dr.emit(Event{Type: "incumbent", Phase: "refine", Rung: full.Rung,
						Label: sp.Label(c.vec), Config: sp.Describe(c.vec), Score: c.score},
						sp.Label(c.vec), c.score)
				}
			}
		}
		dr.stats.Generations++
		dr.emit(Event{Type: "generation", Phase: "refine", Rung: full.Rung, Evaluated: passEvals},
			sp.Label(incumbent.vec), incumbent.score)
	}

	return &Result{
		RunID: RunID(sp),
		Best: Best{
			Label:   sp.Label(incumbent.vec),
			Config:  sp.Describe(incumbent.vec),
			Vector:  incumbent.vec,
			Spec:    sp.Spec(incumbent.vec),
			Score:   incumbent.score,
			Results: incumbent.out.Results,
		},
		Stats:         dr.stats,
		PlannedProbes: sp.PlannedProbes(),
	}, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// sample draws n distinct vectors from the seeded generator; when the
// space is no larger than n it enumerates instead (the "grid is small,
// just look at it" degenerate case).
func (dr *Driver) sample(n int) []Vector {
	sp := dr.space
	if sp.SpaceSize() <= uint64(n) {
		return sp.Enumerate()
	}
	seen := map[string]bool{}
	out := make([]Vector, 0, n)
	for attempts := 0; len(out) < n && attempts < 1000*n; attempts++ {
		v := make(Vector, len(sp.Dims))
		for i := range v {
			v[i] = dr.rng.Intn(sp.Dims[i].Count())
		}
		if k := sp.Key(v); !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	// Rejection sampling above terminates in practice (the space is
	// strictly larger than n); sweep the grid for the shortfall so the
	// plan's population is exact even in adversarial spaces.
	for _, v := range sp.Enumerate() {
		if len(out) >= n {
			break
		}
		if k := sp.Key(v); !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// evaluate scores vectors at one fidelity, probing only the (vector,
// rung) pairs not in the memo, and returns every input ranked best
// first (ties broken by vector key for determinism). counter receives
// the number of fresh probes.
func (dr *Driver) evaluate(ctx context.Context, vecs []Vector, fid Fidelity, class ProbeClass, counter *int) ([]scored, error) {
	sp := dr.space
	memoKey := func(v Vector) string { return sp.Key(v) + "@" + itoa(fid.Rung) }

	var fresh []Vector
	var specs []experiments.ConfigSpec
	for _, v := range vecs {
		if _, ok := dr.memo[memoKey(v)]; !ok {
			fresh = append(fresh, v)
			specs = append(specs, sp.Spec(v))
		}
	}
	if len(fresh) > 0 {
		base, err := dr.baselineAt(ctx, fid, class)
		if err != nil {
			return nil, err
		}
		outs, err := dr.prober.Probe(ctx, specs, fid, class)
		if err != nil {
			return nil, fmt.Errorf("tune: probe at rung %d: %w", fid.Rung, err)
		}
		if len(outs) != len(specs) {
			return nil, fmt.Errorf("tune: prober returned %d outcomes for %d specs", len(outs), len(specs))
		}
		dr.stats.Probes += len(specs)
		*counter += len(specs)
		for i, v := range fresh {
			if outs[i].Cached {
				dr.stats.CacheHits++
			}
			score, err := sp.Score(outs[i].Results, base)
			if err != nil {
				return nil, err
			}
			dr.memo[memoKey(v)] = scored{vec: v, score: score, out: outs[i]}
			dr.emit(Event{Type: "probe", Phase: string(class), Rung: fid.Rung,
				Label: sp.Label(v), Config: sp.Describe(v), Score: score}, "", 0)
		}
	}
	ranked := make([]scored, len(vecs))
	for i, v := range vecs {
		ranked[i] = dr.memo[memoKey(v)]
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return sp.Key(ranked[i].vec) < sp.Key(ranked[j].vec)
	})
	return ranked, nil
}

// baselineAt returns the paired-baseline cells for a fidelity (speedup
// objective only), probing them once per rung.
func (dr *Driver) baselineAt(ctx context.Context, fid Fidelity, class ProbeClass) ([]experiments.DescriptorResult, error) {
	sp := dr.space
	if sp.Objective != ObjectiveSpeedup {
		return nil, nil
	}
	if base, ok := dr.baseline[fid.Rung]; ok {
		return base, nil
	}
	outs, err := dr.prober.Probe(ctx, []experiments.ConfigSpec{*sp.Baseline}, fid, class)
	if err != nil {
		return nil, fmt.Errorf("tune: baseline probe at rung %d: %w", fid.Rung, err)
	}
	if len(outs) != 1 {
		return nil, fmt.Errorf("tune: prober returned %d outcomes for the baseline", len(outs))
	}
	dr.stats.Probes++
	dr.stats.BaselineProbes++
	if outs[0].Cached {
		dr.stats.CacheHits++
	}
	dr.baseline[fid.Rung] = outs[0].Results
	return outs[0].Results, nil
}
