package tune

import (
	"context"
	"sync"
	"testing"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/sim"
)

// mapStore is a ResultStore over a mutex'd map — the acquisition cache
// for the warm-store property test.
type mapStore struct {
	mu sync.Mutex
	m  map[string]sim.Result
}

func newMapStore() *mapStore { return &mapStore{m: map[string]sim.Result{}} }

func (s *mapStore) Load(key string) (sim.Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok, nil
}

func (s *mapStore) Save(key string, r sim.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = r
	return nil
}

// warmSpaceJSON keeps real simulations tiny: a 6-cell space probed at
// ~10k-instruction regions.
const warmSpaceJSON = `{
  "name": "warm",
  "workloads": ["mysql"],
  "seed": 5,
  "instructions": 12000,
  "warmup": 4000,
  "search": {"samples": 4, "eta": 2, "rungs": 2, "refine": 4},
  "dimensions": [
    {"name": "mech", "field": "mechanism", "choices": ["baseline", "udp"]},
    {"name": "l2m", "field": "l2_mshrs", "values": [8, 16, 32]}
  ]
}`

// TestWarmStoreRunSimulatesNothing is the acquisition-cache property
// end to end with real simulations: a second identical tune run over a
// warm result store performs zero new simulations — every probe is
// answered from the store, observable as an unchanged
// udpsim_cache_misses counter.
func TestWarmStoreRunSimulatesNothing(t *testing.T) {
	sp := mustSpace(t, warmSpaceJSON)
	st := newMapStore()
	run := func() (*Result, int64) {
		// Flush the in-process result cache so the store is the only
		// warm layer — the daemon-restart scenario.
		experiments.FlushResultCache()
		drv := New(sp, &LocalProber{Space: sp, Store: st})
		before := obs.CacheMisses.Value()
		res, err := drv.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res, obs.CacheMisses.Value() - before
	}

	res1, misses1 := run()
	if misses1 == 0 {
		t.Fatalf("cold run performed no simulations — the test measures nothing")
	}
	if res1.Stats.CacheHits != 0 {
		t.Fatalf("cold run against an empty store reported %d cache hits", res1.Stats.CacheHits)
	}

	res2, misses2 := run()
	if misses2 != 0 {
		t.Fatalf("warm run simulated %d cells, want 0 (store must answer every probe)", misses2)
	}
	if res2.Stats.CacheHits != res2.Stats.Probes {
		t.Fatalf("warm run: %d/%d probes were cache hits, want all",
			res2.Stats.CacheHits, res2.Stats.Probes)
	}
	if res1.Best.Label != res2.Best.Label || res1.Best.Score != res2.Best.Score {
		t.Fatalf("warm run found a different best: %+v vs %+v", res1.Best, res2.Best)
	}
}
