package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
)

// fakeProber scores candidates with a deterministic closed-form IPC so
// the search's behavior is fully predictable: bigger L2 MSHR budgets
// and the udp mechanism help, oversized FTQs hurt slightly.
type fakeProber struct {
	mu     sync.Mutex
	calls  int
	probes []string // "label@rung/class" in probe order
}

func fakeScore(cs experiments.ConfigSpec) float64 {
	s := 1.0
	if cs.Mechanism == "udp" {
		s += 0.5
	}
	s += 0.01 * float64(cs.L2MSHRs)
	s -= 0.001 * float64(cs.FTQ)
	return s
}

func (p *fakeProber) Probe(ctx context.Context, specs []experiments.ConfigSpec, fid Fidelity, class ProbeClass) ([]Outcome, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	outs := make([]Outcome, len(specs))
	for i, cs := range specs {
		p.probes = append(p.probes, fmt.Sprintf("%s@%d/%s", cs.Label, fid.Rung, class))
		outs[i] = Outcome{Results: []experiments.DescriptorResult{{
			Workload: "mysql", Label: cs.Label,
			Result: sim.Result{IPC: fakeScore(cs), Instructions: fid.Instructions},
		}}}
	}
	return outs, nil
}

func runFake(t *testing.T, src string) (*Result, []Event, *fakeProber) {
	t.Helper()
	sp := mustSpace(t, src)
	p := &fakeProber{}
	dr := New(sp, p)
	var events []Event
	dr.OnEvent = func(ev Event) { events = append(events, ev) }
	res, err := dr.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, events, p
}

// TestHalvingConservesProbeBudget pins the exact-budget property: the
// sampling+halving stage spends sum(HalvingPlan) probes, no more, no
// less, and never re-probes a (candidate, rung) pair.
func TestHalvingConservesProbeBudget(t *testing.T) {
	res, _, p := runFake(t, testSpaceJSON)
	sp := mustSpace(t, testSpaceJSON)
	want := 0
	for _, n := range sp.HalvingPlan() {
		want += n
	}
	if res.Stats.HalvingProbes != want {
		t.Fatalf("HalvingProbes = %d, want exactly %d (plan %v)",
			res.Stats.HalvingProbes, want, sp.HalvingPlan())
	}
	if res.PlannedProbes != want {
		t.Fatalf("PlannedProbes = %d, want %d", res.PlannedProbes, want)
	}
	if res.Stats.RefineProbes > sp.Search.Refine {
		t.Fatalf("RefineProbes = %d exceeds the refine budget %d",
			res.Stats.RefineProbes, sp.Search.Refine)
	}
	if got := res.Stats.HalvingProbes + res.Stats.RefineProbes + res.Stats.BaselineProbes; got != res.Stats.Probes {
		t.Fatalf("probe accounting off: %d+%d+%d != %d", res.Stats.HalvingProbes,
			res.Stats.RefineProbes, res.Stats.BaselineProbes, res.Stats.Probes)
	}
	seen := map[string]bool{}
	for _, pr := range p.probes {
		key := pr[:strings.LastIndex(pr, "/")]
		if seen[key] {
			t.Fatalf("probe %s repeated — the (vector, rung) memo leaked", pr)
		}
		seen[key] = true
	}
	if len(p.probes) != res.Stats.Probes {
		t.Fatalf("prober saw %d probes, stats say %d", len(p.probes), res.Stats.Probes)
	}
}

// TestNeverResurrectsEliminated: once halving cuts a candidate, no
// later probe (halving or refinement) may touch it.
func TestNeverResurrectsEliminated(t *testing.T) {
	// Refine aggressively so the coordinate descent walks right up to
	// the eliminated region.
	src := strings.Replace(testSpaceJSON, `"refine": 8`, `"refine": 64`, 1)
	res, events, p := runFake(t, src)
	dead := map[string]bool{}
	probeIdx := 0
	for _, ev := range events {
		switch ev.Type {
		case "probe":
			if dead[ev.Label] {
				t.Fatalf("probe of eliminated candidate %s", ev.Label)
			}
			// Events and prober calls must agree on order.
			if probeIdx < len(p.probes) && !strings.HasPrefix(p.probes[probeIdx], ev.Label+"@") {
				t.Fatalf("probe event %q out of order with prober call %q", ev.Label, p.probes[probeIdx])
			}
			probeIdx++
		case "eliminated":
			for _, l := range ev.Eliminated {
				dead[l] = true
			}
		}
	}
	if len(dead) == 0 {
		t.Fatalf("halving eliminated nobody — test space too small")
	}
	if res.Stats.Eliminated != len(dead) {
		t.Fatalf("Stats.Eliminated = %d, events named %d", res.Stats.Eliminated, len(dead))
	}
	if dead[res.Best.Label] {
		t.Fatalf("incumbent %s was eliminated", res.Best.Label)
	}
}

// TestDeterministicForSeed: identical space (seed included) =>
// identical probes, events, and result. A different seed must change
// the sampled population (observable through the probe order).
func TestDeterministicForSeed(t *testing.T) {
	// Widen the space so sampling actually samples (spaceSize > samples).
	src := strings.Replace(testSpaceJSON, `"values": [4, 8, 16, 32]`,
		`"values": [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]`, 1)
	res1, ev1, p1 := runFake(t, src)
	res2, ev2, p2 := runFake(t, src)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", res1, res2)
	}
	j1, _ := json.Marshal(ev1)
	j2, _ := json.Marshal(ev2)
	if string(j1) != string(j2) {
		t.Fatalf("same seed produced different event streams")
	}
	if !reflect.DeepEqual(p1.probes, p2.probes) {
		t.Fatalf("same seed produced different probe sequences")
	}
	_, _, p3 := runFake(t, strings.Replace(src, `"seed": 3`, `"seed": 11`, 1))
	if reflect.DeepEqual(p1.probes, p3.probes) {
		t.Fatalf("different seeds sampled the identical probe sequence")
	}
}

// TestSearchFindsOptimum: the closed-form objective is separable and
// monotone per coordinate, so given enough refinement budget the
// coordinate descent must land exactly on the best grid corner from
// any sampled start.
func TestSearchFindsOptimum(t *testing.T) {
	src := strings.Replace(testSpaceJSON, `"refine": 8`, `"refine": 64`, 1)
	res, _, _ := runFake(t, src)
	sp := mustSpace(t, src)
	best := 0.0
	for _, v := range sp.Enumerate() {
		if s := fakeScore(sp.Spec(v)); s > best {
			best = s
		}
	}
	if res.Best.Score < best {
		t.Fatalf("search best %.4f < grid best %.4f (config %s)", res.Best.Score, best, res.Best.Config)
	}
}

func BenchmarkTuneDriver(b *testing.B) {
	sp := mustSpace(b, testSpaceJSON)
	p := &fakeProber{}
	b.ReportAllocs()
	probes := 0
	for b.Loop() {
		dr := New(sp, p)
		res, err := dr.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		probes += res.Stats.Probes
	}
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
}
