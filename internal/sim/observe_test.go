package sim

import (
	"bytes"
	"testing"

	"udpsim/internal/obs"
)

// TestIntervalSamplesSumToInstructions pins the interval sampler's core
// accounting invariant: the per-sample retired deltas of a measured run
// sum exactly to Result.Instructions (warmup samples are suppressed and
// the final partial interval is flushed).
func TestIntervalSamplesSumToInstructions(t *testing.T) {
	cfg := testConfig(MechBaseline)
	var o *obs.Observer
	attach := func(region int, m *Machine) {
		o = &obs.Observer{Interval: 5_000}
		m.AttachObserver(o)
	}
	results, agg, err := RunSimpointsObserved(cfg, 1, 1, attach)
	if err != nil {
		t.Fatal(err)
	}
	samples := o.Samples()
	if len(samples) == 0 {
		t.Fatal("no interval samples recorded")
	}
	var sum uint64
	var lastCycle uint64
	for i, s := range samples {
		sum += s.Retired
		if s.Cycle <= lastCycle {
			t.Errorf("sample %d: cycle %d not increasing (prev %d)", i, s.Cycle, lastCycle)
		}
		lastCycle = s.Cycle
		if s.Workload != cfg.Workload.Name || s.Mechanism != string(MechBaseline) {
			t.Errorf("sample %d: run tags %q/%q", i, s.Workload, s.Mechanism)
		}
	}
	if sum != agg.Instructions {
		t.Fatalf("Σ retired deltas = %d, want Result.Instructions = %d", sum, agg.Instructions)
	}
	if last := samples[len(samples)-1]; last.RetiredTotal != agg.Instructions {
		t.Errorf("final RetiredTotal = %d, want %d", last.RetiredTotal, agg.Instructions)
	}
	_ = results
}

// TestLifecycleSummaryInResult checks that an attached Lifecycle
// tracker surfaces in Result.Lifecycle with self-consistent counts.
func TestLifecycleSummaryInResult(t *testing.T) {
	cfg := testConfig(MechBaseline)
	attach := func(region int, m *Machine) {
		m.AttachObserver(&obs.Observer{Life: obs.NewLifecycle()})
	}
	_, agg, err := RunSimpointsObserved(cfg, 1, 1, attach)
	if err != nil {
		t.Fatal(err)
	}
	lc := agg.Lifecycle
	if !lc.Tracked {
		t.Fatal("Result.Lifecycle not tracked")
	}
	if lc.Emitted == 0 || lc.FirstUses == 0 {
		t.Fatalf("no lifecycle activity: %+v", lc)
	}
	if lc.TimelyUses+lc.LateUses != lc.FirstUses {
		t.Errorf("timely %d + late %d != first-uses %d", lc.TimelyUses, lc.LateUses, lc.FirstUses)
	}
	if r := lc.LateRatio(); r < 0 || r > 1 {
		t.Errorf("LateRatio = %v out of [0,1]", r)
	}
	// An unobserved run must not report lifecycle data.
	plain, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Lifecycle.Tracked {
		t.Error("unobserved run has Tracked lifecycle")
	}
}

// TestConcurrentIntervalSampling runs parallel regions streaming into
// one shared MetricsWriter — under `go test -race` this is the
// observability layer's concurrency guard (per-machine observers, fan-in
// serialized at the sink).
func TestConcurrentIntervalSampling(t *testing.T) {
	cfg := testConfig(MechUDP)
	var buf bytes.Buffer
	mw := obs.NewMetricsWriter(&buf, obs.FormatCSV)
	attach := func(region int, m *Machine) {
		m.AttachObserver(&obs.Observer{
			Interval: 5_000,
			OnSample: func(s obs.IntervalSample) { _ = mw.Write(s) },
			Life:     obs.NewLifecycle(),
		})
	}
	const regions = 4
	results, agg, err := RunSimpointsObserved(cfg, regions, regions, attach)
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Err(); err != nil {
		t.Fatalf("metrics writer: %v", err)
	}
	if len(results) != regions {
		t.Fatalf("results = %d, want %d", len(results), regions)
	}
	if mw.Rows() == 0 {
		t.Fatal("no samples streamed")
	}
	if !agg.Lifecycle.Tracked {
		t.Error("aggregated lifecycle not tracked")
	}
	// Deterministic per-region salts keep concurrent rows attributable.
	if results[0].Instructions == 0 {
		t.Error("region 0 retired nothing")
	}
}

// TestAttachObserverDetach checks that attaching nil fully detaches the
// observer from the machine and its mechanisms.
func TestAttachObserverDetach(t *testing.T) {
	m, err := NewMachine(testConfig(MechUDP))
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{Interval: 1_000}
	m.AttachObserver(o)
	if m.Observer() != o || m.FE.Obs != o || m.UDP().Obs != o {
		t.Fatal("observer not threaded through")
	}
	if o.Workload == "" || o.Mechanism != string(MechUDP) {
		t.Fatalf("run tags not stamped: %+v", o)
	}
	m.AttachObserver(nil)
	if m.Observer() != nil || m.FE.Obs != nil || m.UDP().Obs != nil {
		t.Fatal("observer not detached")
	}
	m.RunInstructions(1_000) // must not panic with detached observer
}

// BenchmarkSimObsOverhead quantifies the observability tax: "off" is
// the production configuration (nil observer — the nil-guarded hooks
// must cost nothing measurable and allocate nothing), "sampled" adds
// the interval sampler, "full" adds event tracing and lifecycle
// tracking. CI compares off against the seed throughput benchmark.
func BenchmarkSimObsOverhead(b *testing.B) {
	mk := func(b *testing.B) *Machine {
		cfg := testConfig(MechUDP)
		cfg.WarmupInstructions = 0
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	const chunk = 10_000
	bench := func(b *testing.B, attach func(*Machine)) {
		m := mk(b)
		if attach != nil {
			attach(m)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunInstructions(chunk)
		}
		b.ReportMetric(float64(chunk*b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	}
	b.Run("off", func(b *testing.B) { bench(b, nil) })
	b.Run("sampled", func(b *testing.B) {
		bench(b, func(m *Machine) {
			m.AttachObserver(&obs.Observer{Interval: 10_000})
		})
	})
	b.Run("full", func(b *testing.B) {
		bench(b, func(m *Machine) {
			m.AttachObserver(&obs.Observer{
				Interval: 10_000,
				Trace:    obs.NewTracer(1 << 16),
				Life:     obs.NewLifecycle(),
			})
		})
	})
}
