package sim

import (
	"fmt"
	"sync"

	"udpsim/internal/workload"
)

// Generating a multi-megabyte program image dominates short runs, and
// generation is fully deterministic in the profile, so images are
// shared process-wide across machines (the image is immutable after
// generation; executors carry all mutable state).
//
// Lookups are singleflighted: concurrent requests for the same profile
// block on the first generator instead of generating twice, and
// requests for *different* profiles generate concurrently (the lock is
// not held across Generate).
var (
	imageMu       sync.Mutex
	imageCache    = map[string]*workload.Program{}
	imageInflight = map[string]*imageCall{}
)

type imageCall struct {
	done chan struct{}
	prog *workload.Program
	err  error
}

// SharedImage returns the (cached) program image for a profile.
func SharedImage(p workload.Profile) (*workload.Program, error) {
	key := ProfileKey(p)
	imageMu.Lock()
	if prog, ok := imageCache[key]; ok {
		imageMu.Unlock()
		return prog, nil
	}
	if c, ok := imageInflight[key]; ok {
		imageMu.Unlock()
		<-c.done
		return c.prog, c.err
	}
	c := &imageCall{done: make(chan struct{})}
	imageInflight[key] = c
	imageMu.Unlock()

	c.prog, c.err = workload.Generate(p)

	imageMu.Lock()
	if c.err == nil {
		imageCache[key] = c.prog
	}
	delete(imageInflight, key)
	imageMu.Unlock()
	close(c.done)
	return c.prog, c.err
}

// workloadImage resolves the static image for a configuration: the
// registered trace source's embedded image for trace-driven configs
// (already decoded once at load — every machine over the same trace
// shares it), the profile-generated shared image otherwise.
func workloadImage(cfg Config) (*workload.Program, error) {
	if cfg.TraceRef != "" {
		s, ok := workload.SourceByKey("trace:" + cfg.TraceRef)
		if !ok {
			return nil, fmt.Errorf("sim: trace %s not registered (load it with trace.LoadSource + workload.RegisterSource)", cfg.TraceRef)
		}
		return s.Image()
	}
	return SharedImage(cfg.Workload)
}
