package sim

import (
	"fmt"
	"sync"

	"udpsim/internal/workload"
)

// Generating a multi-megabyte program image dominates short runs, and
// generation is fully deterministic in the profile, so images are
// shared process-wide across machines (the image is immutable after
// generation; executors carry all mutable state).
var (
	imageMu    sync.Mutex
	imageCache = map[string]*workload.Program{}
)

// SharedImage returns the (cached) program image for a profile.
func SharedImage(p workload.Profile) (*workload.Program, error) {
	key := fmt.Sprintf("%+v", p)
	imageMu.Lock()
	defer imageMu.Unlock()
	if prog, ok := imageCache[key]; ok {
		return prog, nil
	}
	prog, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	imageCache[key] = prog
	return prog, nil
}

func workloadImage(cfg Config) (*workload.Program, error) {
	return SharedImage(cfg.Workload)
}
