package sim

import (
	"fmt"
	"sort"
	"strings"

	"udpsim/internal/core"
	"udpsim/internal/eip"
	"udpsim/internal/frontend"
	"udpsim/internal/obs"
)

// This file is the mechanism plugin registry. A prefetch mechanism used
// to be a case in a switch inside NewMachineWithSource plus half a dozen
// hand-maintained lists (Mechanisms(), descriptor validation, cmd help
// text, Machine's UFTQ/UDP/EIP fields, AttachObserver's wiring,
// Snapshot's telemetry block). Adding a comparator meant editing all of
// them in lockstep. Now a mechanism is one RegisterMechanism call: the
// descriptor's Build function returns a Bindings bundle and everything
// else — machine wiring, observer attach, result telemetry, stats
// reset, validation, -list-mechanisms output — derives from it.

// StatsResetter clears accumulated statistics while preserving
// microarchitectural state (caches, predictors, learned sets). The
// machine's warmup boundary walks every registered resetter.
type StatsResetter interface {
	ResetStats()
}

// Bindings bundles everything a mechanism may contribute to an
// assembled machine. Every field is optional; the zero Bindings is the
// baseline (fixed FTQ, FDIP on, no filtering).
type Bindings struct {
	// Tuner is installed as the frontend's mechanism hook surface
	// (UFTQ sizing, UDP filtering). Nil means frontend.NopTuner.
	Tuner frontend.Tuner

	// External is installed as the frontend's auxiliary prefetcher
	// (the EIP comparator).
	External frontend.ExternalPrefetcher

	// MutateFrontend edits the frontend configuration before the
	// frontend is built (NoPrefetch, PerfectICache, ...).
	MutateFrontend func(*frontend.Config)

	// Observe threads an observer through the mechanism's nil-guarded
	// observability hooks. It is called from Machine.AttachObserver with
	// the new observer — including nil, which must detach.
	Observe func(*obs.Observer)

	// Telemetry lets the mechanism annotate the end-of-run Result
	// (UDPStorage, MechanismSummary). Called from Machine.Snapshot after
	// the generic fields are filled in.
	Telemetry func(*Result)

	// Stats, when non-nil, is invoked by Machine.ResetStats alongside
	// the structural resetters (frontend, backend, hierarchy, BTB).
	// Mechanisms whose reported counters should span warmup leave it
	// nil.
	Stats StatsResetter

	// Typed views of the in-tree mechanism instances, for tests, the
	// example programs, and figure drivers that reach into mechanism
	// internals. Third-party plugins leave these nil.
	UDP  *core.UDP
	UFTQ *core.UFTQ
	EIP  *eip.EIP
}

// MechDescriptor describes one registered mechanism.
type MechDescriptor struct {
	// Name is the identifier used in configs, descriptors, flags and
	// result-cache keys.
	Name Mechanism
	// Doc is a one-line description (help text, -list-mechanisms).
	Doc string
	// Build constructs the mechanism's bindings for a configuration.
	Build func(cfg Config) (Bindings, error)
}

var (
	mechRegistry = map[Mechanism]*MechDescriptor{}
	mechOrder    []Mechanism
)

// RegisterMechanism adds a mechanism to the registry; it is typically
// called from an init function in the file that implements the
// mechanism's bindings. Registering an empty name, a nil Build, or a
// duplicate name panics: these are programming errors that must surface
// at process start, not mid-experiment.
func RegisterMechanism(d MechDescriptor) {
	if d.Name == "" {
		panic("sim: RegisterMechanism with empty name")
	}
	if d.Build == nil {
		panic(fmt.Sprintf("sim: RegisterMechanism(%q) with nil Build", d.Name))
	}
	if _, dup := mechRegistry[d.Name]; dup {
		panic(fmt.Sprintf("sim: mechanism %q registered twice", d.Name))
	}
	desc := d
	mechRegistry[d.Name] = &desc
	mechOrder = append(mechOrder, d.Name)
}

// NormalizeMechanism maps the empty mechanism to MechBaseline. The two
// spellings always built identical machines, but before normalization
// they produced distinct ConfigKeys and the experiment result cache
// simulated the same cell twice.
func NormalizeMechanism(m Mechanism) Mechanism {
	if m == "" {
		return MechBaseline
	}
	return m
}

// LookupMechanism resolves a (normalized) mechanism name.
func LookupMechanism(m Mechanism) (MechDescriptor, bool) {
	d, ok := mechRegistry[NormalizeMechanism(m)]
	if !ok {
		return MechDescriptor{}, false
	}
	return *d, true
}

// Mechanisms lists all registered mechanisms in registration order.
func Mechanisms() []Mechanism {
	out := make([]Mechanism, len(mechOrder))
	copy(out, mechOrder)
	return out
}

// MechanismDescriptors returns the full registry in registration order
// (drives -list-mechanisms and generated help text).
func MechanismDescriptors() []MechDescriptor {
	out := make([]MechDescriptor, 0, len(mechOrder))
	for _, name := range mechOrder {
		out = append(out, *mechRegistry[name])
	}
	return out
}

// MechanismNames returns the registered names as a comma-separated,
// sorted string (stable error messages and flag help).
func MechanismNames() string {
	names := make([]string, 0, len(mechOrder))
	for _, m := range mechOrder {
		names = append(names, string(m))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
