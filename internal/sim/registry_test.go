package sim

import (
	"strings"
	"testing"

	"udpsim/internal/workload"
)

// TestConfigKeyNormalizesEmptyMechanism pins the ""/baseline aliasing
// fix: the two spellings always built identical machines, so they must
// share one result-cache key. A regression here means the experiment
// cache simulates the same cell twice.
func TestConfigKeyNormalizesEmptyMechanism(t *testing.T) {
	prof := workload.MustByName("mysql")
	empty := NewConfig(prof, "")
	base := NewConfig(prof, MechBaseline)
	if empty.Mechanism != MechBaseline {
		t.Errorf("NewConfig(%q) kept mechanism %q, want %q", "", empty.Mechanism, MechBaseline)
	}
	if ConfigKey(empty) != ConfigKey(base) {
		t.Errorf("ConfigKey(\"\") != ConfigKey(\"baseline\"):\n  %q\n  %q",
			ConfigKey(empty), ConfigKey(base))
	}

	// Even a hand-rolled Config that bypasses NewConfig must key
	// identically: ConfigKey normalizes at serialization time too.
	raw := base
	raw.Mechanism = ""
	if ConfigKey(raw) != ConfigKey(base) {
		t.Error("ConfigKey does not normalize a hand-rolled empty mechanism")
	}
}

func TestNormalizeMechanism(t *testing.T) {
	if got := NormalizeMechanism(""); got != MechBaseline {
		t.Errorf("NormalizeMechanism(\"\") = %q, want %q", got, MechBaseline)
	}
	if got := NormalizeMechanism(MechUDP); got != MechUDP {
		t.Errorf("NormalizeMechanism(udp) = %q, want udp", got)
	}
}

// TestRegistryContents checks the in-tree mechanisms are all present
// with documentation, and that lookup resolves the empty alias.
func TestRegistryContents(t *testing.T) {
	want := []Mechanism{
		MechBaseline, MechNoPrefetch, MechPerfectICache,
		MechUFTQAUR, MechUFTQATR, MechUFTQATRAUR,
		MechUDP, MechUDPInfinite, MechEIP, MechUDPUFTQ,
	}
	got := Mechanisms()
	if len(got) != len(want) {
		t.Fatalf("Mechanisms() has %d entries, want %d: %v", len(got), len(want), got)
	}
	for _, m := range want {
		d, ok := LookupMechanism(m)
		if !ok {
			t.Errorf("mechanism %q not registered", m)
			continue
		}
		if d.Name != m {
			t.Errorf("descriptor for %q carries name %q", m, d.Name)
		}
		if d.Doc == "" {
			t.Errorf("mechanism %q has no doc line", m)
		}
		if d.Build == nil {
			t.Errorf("mechanism %q has nil Build", m)
		}
	}
	if d, ok := LookupMechanism(""); !ok || d.Name != MechBaseline {
		t.Error("LookupMechanism(\"\") did not resolve to baseline")
	}
	if _, ok := LookupMechanism("no-such-mech"); ok {
		t.Error("LookupMechanism accepted an unregistered name")
	}
	for _, m := range want {
		if !strings.Contains(MechanismNames(), string(m)) {
			t.Errorf("MechanismNames() omits %q: %s", m, MechanismNames())
		}
	}
}

// TestRegisterMechanismPanics pins the fail-at-startup contract for
// programming errors.
func TestRegisterMechanismPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() {
		RegisterMechanism(MechDescriptor{Name: "", Doc: "x", Build: func(Config) (Bindings, error) { return Bindings{}, nil }})
	})
	mustPanic("nil build", func() {
		RegisterMechanism(MechDescriptor{Name: "test-nil-build", Doc: "x"})
	})
	mustPanic("duplicate", func() {
		RegisterMechanism(MechDescriptor{Name: MechBaseline, Doc: "x", Build: func(Config) (Bindings, error) { return Bindings{}, nil }})
	})
}

// TestUnknownMechanismErrorListsRegistered checks the machine builder's
// error self-documents the valid names.
func TestUnknownMechanismErrorListsRegistered(t *testing.T) {
	cfg := testConfig("frobnicator")
	_, err := NewMachine(cfg)
	if err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "frobnicator") {
		t.Errorf("error does not name the offender: %v", err)
	}
	for _, m := range []Mechanism{MechBaseline, MechUDP, MechEIP} {
		if !strings.Contains(msg, string(m)) {
			t.Errorf("error does not list registered mechanism %q: %v", m, err)
		}
	}
}

// TestTypedAccessors checks the Machine's typed mechanism views resolve
// through the binding for the mechanisms that expose them.
func TestTypedAccessors(t *testing.T) {
	cases := []struct {
		mech                Mechanism
		wantUDP, wantUFTQ, wantEIP bool
	}{
		{MechBaseline, false, false, false},
		{MechUDP, true, false, false},
		{MechUFTQAUR, false, true, false},
		{MechEIP, false, false, true},
		{MechUDPUFTQ, true, true, false},
	}
	for _, c := range cases {
		m, err := NewMachine(testConfig(c.mech))
		if err != nil {
			t.Fatalf("%s: %v", c.mech, err)
		}
		if got := m.UDP() != nil; got != c.wantUDP {
			t.Errorf("%s: UDP() non-nil = %v, want %v", c.mech, got, c.wantUDP)
		}
		if got := m.UFTQ() != nil; got != c.wantUFTQ {
			t.Errorf("%s: UFTQ() non-nil = %v, want %v", c.mech, got, c.wantUFTQ)
		}
		if got := m.EIP() != nil; got != c.wantEIP {
			t.Errorf("%s: EIP() non-nil = %v, want %v", c.mech, got, c.wantEIP)
		}
	}
}
