package sim

import (
	"testing"
	"testing/quick"
)

// TestRandomConfigsRobust drives the whole machine with randomized (but
// structurally valid) configurations: no panic, no deadlock, and the
// run must retire what it was asked to.
func TestRandomConfigsRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mechs := Mechanisms()
	f := func(ftqSel, btbPow, widthSel, mshrSel, icSel, mechSel, salt uint8) bool {
		cfg := testConfig(mechs[int(mechSel)%len(mechs)])
		cfg.MaxInstructions = 20_000
		cfg.WarmupInstructions = 5_000
		cfg.SeedSalt = uint64(salt)
		cfg.FTQDepth = 4 + int(ftqSel)%124
		cfg.BTBEntries = 1 << (7 + btbPow%8) // 128..16384
		cfg.Width = 1 + int(widthSel)%8
		cfg.IMSHRs = 1 + int(mshrSel)%31
		// Icache sizes with power-of-two set counts under 8 ways.
		sizes := []int{8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024}
		cfg.ICacheBytes = sizes[int(icSel)%len(sizes)]
		r, err := RunOne(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		return r.Instructions >= 20_000 && r.IPC > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 14}); err != nil {
		t.Error(err)
	}
}
