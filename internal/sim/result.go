package sim

import (
	"fmt"
	"math"

	"udpsim/internal/backend"
	"udpsim/internal/frontend"
	"udpsim/internal/memory"
	"udpsim/internal/obs"
)

// Result is the measured outcome of one simulation region.
type Result struct {
	Workload  string
	Mechanism Mechanism
	SeedSalt  uint64
	FTQDepth  int

	Instructions uint64
	Cycles       uint64
	IPC          float64

	// Icache behaviour.
	IcacheMPKI     float64
	IcacheMisses   uint64
	IcacheAccesses uint64

	// Paper metrics.
	Timeliness    float64 // Fig. 4: icache/(icache+fill-buffer) demand hits
	OnPathRatio   float64 // Fig. 5: on/(on+off) emitted prefetches
	Usefulness    float64 // Fig. 6: useful/(useful+useless) prefetches
	MeanFTQOcc    float64 // Fig. 8
	LostInstrs    uint64  // Fig. 15: instructions lost to icache-miss stalls
	LostInstrsPKI float64

	// Prefetch volume.
	PrefetchesEmitted uint64
	PrefetchesOnPath  uint64
	PrefetchesOffPath uint64
	PrefetchesDropped uint64
	PrefetchUseful    uint64
	PrefetchUseless   uint64

	// Control flow.
	Recoveries        uint64
	PostFetchResteers uint64
	BTBHitRate        float64
	BranchMPKI        float64 // mispredictions (recoveries) per kilo-instr
	// Resolution latency distribution (divergence → recovery, cycles).
	ResolutionMean float64
	ResolutionP99  uint64

	// Mechanism detail.
	FinalFTQDepth    int
	UDPStorage       uint
	MechanismSummary string
	FE               frontend.Stats
	BE               backend.Stats
	// Mem is the memory hierarchy's counter snapshot: per-level fill /
	// merge / backpressure accounting plus DRAM channel traffic.
	Mem memory.Stats

	// Lifecycle is the per-prefetch timing digest (emit→fill latency,
	// demand-wait lateness, fill→use residency). Tracked is false when
	// the run had no lifecycle observer attached.
	Lifecycle obs.LifecycleSummary
}

// Snapshot computes a Result from the machine's current statistics.
func (m *Machine) Snapshot() Result {
	fe := m.FE.Stats
	be := m.BE.Stats
	ic := m.FE.ICache().Stats

	r := Result{
		Workload:  m.cfg.Workload.Name,
		Mechanism: m.cfg.Mechanism,
		SeedSalt:  m.cfg.SeedSalt,
		FTQDepth:  m.cfg.FTQDepth,

		Instructions: be.Retired,
		Cycles:       be.Cycles,

		IcacheMisses:   ic.Misses,
		IcacheAccesses: ic.Hits + ic.Misses,

		Timeliness:  fe.Timeliness(),
		OnPathRatio: fe.OnPathRatio(),
		Usefulness:  fe.Usefulness(),
		MeanFTQOcc:  m.FE.Queue().MeanOccupancy(),
		LostInstrs:  fe.FetchStallCycles * uint64(m.cfg.FetchWidth),

		PrefetchesEmitted: fe.PrefetchesEmitted,
		PrefetchesOnPath:  fe.PrefetchesOnPath,
		PrefetchesOffPath: fe.PrefetchesOffPath,
		PrefetchesDropped: fe.PrefetchesDropped,
		PrefetchUseful:    fe.PrefetchUseful,
		PrefetchUseless:   fe.PrefetchUseless,

		Recoveries:        fe.Recoveries,
		PostFetchResteers: fe.PostFetchResteers,
		BTBHitRate:        m.BTB.Stats.HitRate(),
		ResolutionMean:    m.FE.ResolutionLatency.Mean(),
		ResolutionP99:     m.FE.ResolutionLatency.Percentile(0.99),

		FinalFTQDepth: m.FE.Queue().Cap(),
		FE:            fe,
		BE:            be,
		Mem:           m.Hier.Stats,
	}
	if be.Cycles > 0 {
		r.IPC = float64(be.Retired) / float64(be.Cycles)
	}
	if be.Retired > 0 {
		r.IcacheMPKI = float64(ic.Misses) / float64(be.Retired) * 1000
		r.LostInstrsPKI = float64(r.LostInstrs) / float64(be.Retired) * 1000
		r.BranchMPKI = float64(fe.Recoveries) / float64(be.Retired) * 1000
	}
	if m.mech.Telemetry != nil {
		m.mech.Telemetry(&r)
	}
	if m.obs != nil && m.obs.Life != nil {
		r.Lifecycle = m.obs.Life.Summary()
	}
	return r
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s: IPC %.3f, icache MPKI %.2f, branch MPKI %.2f, lost-instrs PKI %.1f, timeliness %.2f, on-path %.2f, useful %.2f, FTQ %d",
		r.Workload, r.Mechanism, r.IPC, r.IcacheMPKI, r.BranchMPKI, r.LostInstrsPKI,
		r.Timeliness, r.OnPathRatio, r.Usefulness, r.FinalFTQDepth)
}

// Speedup returns (r.IPC / base.IPC − 1) as a fraction.
func (r Result) Speedup(base Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return r.IPC/base.IPC - 1
}

// RunOne runs one region over the (process-cached) program image and
// returns the result.
func RunOne(cfg Config) (Result, error) {
	prog, err := SharedImage(cfg.Workload)
	if err != nil {
		return Result{}, err
	}
	m, err := NewMachineWithProgram(cfg, prog)
	if err != nil {
		return Result{}, err
	}
	return m.Run(), nil
}

// RunSimpoints runs n regions (seed salts 0..n-1) over a shared program
// image and returns the per-region results plus their aggregate.
func RunSimpoints(cfg Config, n int) ([]Result, Result, error) {
	return RunSimpointsParallel(cfg, n, 1)
}

// RunSimpointsParallel is RunSimpoints with up to parallelism regions
// simulated concurrently over one shared (immutable) program image.
// Regions are independent machines seeded per-salt, so the per-region
// results — and therefore the aggregate — are identical at any
// parallelism; results are returned in salt order. parallelism == 1
// runs serially; <= 0 means GOMAXPROCS.
func RunSimpointsParallel(cfg Config, n, parallelism int) ([]Result, Result, error) {
	return RunSimpointsObserved(cfg, n, parallelism, nil)
}

// Aggregate combines per-simpoint results: cycle- and instruction-
// weighted sums with an arithmetic-mean IPC over regions (matching the
// paper's per-application aggregation of simpoints). Mean fields are
// NaN-safe: a degenerate region (Retired == 0, e.g. a failed or empty
// run) contributes its counters but never poisons the averaged ratios
// with NaN.
func Aggregate(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	agg := rs[0]
	if len(rs) == 1 {
		agg.IPC = nanSafe(agg.IPC)
		agg.IcacheMPKI = nanSafe(agg.IcacheMPKI)
		agg.LostInstrsPKI = nanSafe(agg.LostInstrsPKI)
		agg.BranchMPKI = nanSafe(agg.BranchMPKI)
		return agg
	}
	var ipcSum, tSum, opSum, uSum, occSum float64
	agg = Result{Workload: rs[0].Workload, Mechanism: rs[0].Mechanism, FTQDepth: rs[0].FTQDepth}
	for _, r := range rs {
		agg.Instructions += r.Instructions
		agg.Cycles += r.Cycles
		agg.IcacheMisses += r.IcacheMisses
		agg.IcacheAccesses += r.IcacheAccesses
		agg.PrefetchesEmitted += r.PrefetchesEmitted
		agg.PrefetchesOnPath += r.PrefetchesOnPath
		agg.PrefetchesOffPath += r.PrefetchesOffPath
		agg.PrefetchesDropped += r.PrefetchesDropped
		agg.PrefetchUseful += r.PrefetchUseful
		agg.PrefetchUseless += r.PrefetchUseless
		agg.Recoveries += r.Recoveries
		agg.PostFetchResteers += r.PostFetchResteers
		agg.LostInstrs += r.LostInstrs
		ipcSum += nanSafe(r.IPC)
		tSum += nanSafe(r.Timeliness)
		opSum += nanSafe(r.OnPathRatio)
		uSum += nanSafe(r.Usefulness)
		occSum += nanSafe(r.MeanFTQOcc)
		agg.FinalFTQDepth += r.FinalFTQDepth
		agg.Lifecycle = agg.Lifecycle.Merge(r.Lifecycle)
	}
	n := float64(len(rs))
	agg.IPC = ipcSum / n
	agg.Timeliness = tSum / n
	agg.OnPathRatio = opSum / n
	agg.Usefulness = uSum / n
	agg.MeanFTQOcc = occSum / n
	agg.FinalFTQDepth /= len(rs)
	if agg.Instructions > 0 {
		agg.IcacheMPKI = float64(agg.IcacheMisses) / float64(agg.Instructions) * 1000
		agg.LostInstrsPKI = float64(agg.LostInstrs) / float64(agg.Instructions) * 1000
		agg.BranchMPKI = float64(agg.Recoveries) / float64(agg.Instructions) * 1000
	}
	return agg
}

// nanSafe maps NaN/±Inf to 0 so aggregated means stay finite when a
// region retired no instructions.
func nanSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Geomean returns the geometric mean of 1+x over the values, minus 1 —
// the conventional aggregation for speedups.
func Geomean(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range speedups {
		s += math.Log(1 + v)
	}
	return math.Exp(s/float64(len(speedups))) - 1
}
