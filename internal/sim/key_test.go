package sim

import (
	"reflect"
	"testing"

	"udpsim/internal/bp"
	"udpsim/internal/core"
	"udpsim/internal/eip"
	"udpsim/internal/workload"
)

// TestKeyBuildersCoverAllFields pins the field count of every struct
// serialized by the canonical key builders: growing Config/Profile (or
// a nested mechanism config) without extending ConfigKey/ProfileKey
// would reintroduce the silent-alias bug this replaced, so the count
// mismatch fails loudly here instead.
func TestKeyBuildersCoverAllFields(t *testing.T) {
	checks := []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"sim.Config", reflect.TypeOf(Config{}), configKeyFields},
		{"workload.Profile", reflect.TypeOf(workload.Profile{}), profileKeyFields},
		{"bp.TageConfig", reflect.TypeOf(bp.TageConfig{}), tageKeyFields},
		{"core.UFTQConfig", reflect.TypeOf(core.UFTQConfig{}), uftqKeyFields},
		{"core.UDPConfig", reflect.TypeOf(core.UDPConfig{}), udpKeyFields},
		{"eip.Config", reflect.TypeOf(eip.Config{}), eipKeyFields},
	}
	for _, c := range checks {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%s has %d fields but the key builder covers %d — extend ConfigKey/ProfileKey in key.go and bump the constant",
				c.name, got, c.want)
		}
	}
}

// TestConfigKeyNeverAliases asserts that distinct configurations map to
// distinct keys and identical configurations always map to the same key
// (the cache-hit direction).
func TestConfigKeyNeverAliases(t *testing.T) {
	base := NewConfig(workload.MustByName("mysql"), MechBaseline)

	if ConfigKey(base) != ConfigKey(base) {
		t.Fatal("identical configs produced different keys")
	}
	clone := base
	if ConfigKey(clone) != ConfigKey(base) {
		t.Fatal("copied config produced a different key")
	}

	mutations := map[string]func(*Config){
		"mechanism":     func(c *Config) { c.Mechanism = MechUDP },
		"workload":      func(c *Config) { c.Workload = workload.MustByName("xgboost") },
		"workload-seed": func(c *Config) { c.Workload.Seed++ },
		"seedsalt":      func(c *Config) { c.SeedSalt = 7919 },
		"instructions":  func(c *Config) { c.MaxInstructions++ },
		"warmup":        func(c *Config) { c.WarmupInstructions++ },
		"ftq":           func(c *Config) { c.FTQDepth = 64 },
		"icache-bytes":  func(c *Config) { c.ICacheBytes = 64 * 1024 },
		"icache-ways":   func(c *Config) { c.ICacheWays = 16 },
		"btb":           func(c *Config) { c.BTBEntries = 1024 },
		"tage-hist":     func(c *Config) { c.Tage.HistLengths = []uint{4, 8} },
		"tage-sc":       func(c *Config) { c.Tage.UseSC = false },
		"backend-rob":   func(c *Config) { c.ROBSize++ },
		"mem-dram":      func(c *Config) { c.DRAMLatency++ },
		"mem-streampf":  func(c *Config) { c.StreamPF = false },
		"uftq-mode":     func(c *Config) { c.UFTQ.Mode = core.UFTQAUR },
		"uftq-aur":      func(c *Config) { c.UFTQ.AUR += 0.01 },
		"udp-infinite":  func(c *Config) { c.UDP.Infinite = true },
		"udp-threshold": func(c *Config) { c.UDP.ConfidenceThreshold++ },
		"eip-sets":      func(c *Config) { c.EIP.Sets *= 2 },
		"predecode":     func(c *Config) { c.PredecodeBTBFill = true },
		"traceref": func(c *Config) {
			c.TraceRef = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
		},
	}
	baseKey := ConfigKey(base)
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		k := ConfigKey(c)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q aliases with %q: key %q", name, prev, k)
			continue
		}
		seen[k] = name
	}
}

// TestProfileKeyDistinct asserts all shipped workload profiles key
// distinctly and that the key is stable for equal profiles.
func TestProfileKeyDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, p := range workload.All() {
		k := ProfileKey(p)
		if k != ProfileKey(p) {
			t.Errorf("profile %s: unstable key", p.Name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("profiles %s and %s alias: %q", p.Name, prev, k)
		}
		seen[k] = p.Name
	}
}

func TestAutoWays(t *testing.T) {
	cases := []struct{ size, want int }{
		{16 * 1024, 8},  // power of two: Table II class
		{32 * 1024, 8},  // default icache
		{40 * 1024, 10}, // the paper's ISO-storage icache
		{48 * 1024, 12},
		{64 * 1024, 8},
		{3 * 64, 3}, // tiny: odd part exceeds doubling room
		{100, 0},    // not a multiple of the line size
		{0, 0},
		{-64, 0},
	}
	for _, c := range cases {
		if got := AutoWays(c.size); got != c.want {
			t.Errorf("AutoWays(%d) = %d, want %d", c.size, got, c.want)
		}
		if c.want > 0 {
			lines := c.size / 64
			sets := lines / c.want
			if lines%c.want != 0 || sets&(sets-1) != 0 {
				t.Errorf("AutoWays(%d) = %d implies invalid geometry (%d sets)", c.size, c.want, sets)
			}
		}
	}
}

// TestInvalidGeometryReturnsError asserts NewMachineWithProgram rejects
// non-power-of-two set counts with an error instead of panicking deep
// inside the cache constructors (the old behaviour for e.g.
// `sweep -param icache -values 49152`).
func TestInvalidGeometryReturnsError(t *testing.T) {
	prog, err := SharedImage(testProfile())
	if err != nil {
		t.Fatal(err)
	}

	bad := testConfig(MechBaseline)
	bad.ICacheBytes = 48 * 1024 // 96 sets at 8 ways: not a power of two
	if _, err := NewMachineWithProgram(bad, prog); err == nil {
		t.Fatal("48 KiB icache at 8 ways accepted")
	}

	good := bad
	good.ICacheWays = AutoWays(good.ICacheBytes)
	if _, err := NewMachineWithProgram(good, prog); err != nil {
		t.Fatalf("AutoWays geometry rejected: %v", err)
	}

	badL2 := testConfig(MechBaseline)
	badL2.L2Bytes = 3 * 100_000
	if _, err := NewMachineWithProgram(badL2, prog); err == nil {
		t.Fatal("invalid L2 geometry accepted")
	}
}
