package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunCtxCancelInterruptsMachine verifies the cooperative
// cancellation poll inside the cycle loop: a canceled context stops a
// machine mid-region in bounded time instead of running out its full
// instruction budget.
func TestRunCtxCancelInterruptsMachine(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.MaxInstructions = 2_000_000_000 // must end by cancel, not completion
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = m.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s — poll stride too coarse", elapsed)
	}
}

// TestRunCtxNilContextCompletes keeps the legacy Run path intact: a
// nil context never polls and the run completes normally.
func TestRunCtxNilContextCompletes(t *testing.T) {
	m, err := NewMachine(testConfig(MechBaseline))
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunCtx(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatalf("IPC = %v", r.IPC)
	}
}

// TestRunSimpointsCtxPreCanceled: an already-canceled context fails
// before simulating any region.
func TestRunSimpointsCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := RunSimpointsCtx(ctx, testConfig(MechBaseline), 3, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-canceled RunSimpointsCtx did not fail fast")
	}
}
