package sim

import (
	"bytes"
	"testing"

	"udpsim/internal/trace"
)

// TestTraceDrivenMatchesExecutionDriven reproduces the paper's
// methodology check (Section III-A compares Scarab's execution-driven
// and trace-based frontends, finding <1% IPC mismatch): in this
// simulator the trace replayer reproduces the executor's stream
// bit-exactly, so the two modes must produce *identical* results.
func TestTraceDrivenMatchesExecutionDriven(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.WarmupInstructions = 10_000
	cfg.MaxInstructions = 50_000

	prog, err := SharedImage(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}

	// Execution-driven run.
	live, err := NewMachineWithProgram(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	liveRes := live.Run()

	// Trace-driven run over a recording of the same region (sized with
	// margin for the oracle's runahead).
	var buf bytes.Buffer
	if err := trace.RecordN(&buf, cfg.Workload, cfg.SeedSalt, 120_000); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := trace.NewReplayer(prog, r)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewMachineWithSource(cfg, prog, rp)
	if err != nil {
		t.Fatal(err)
	}
	replayRes := replay.Run()

	if liveRes.Cycles != replayRes.Cycles || liveRes.IPC != replayRes.IPC ||
		liveRes.IcacheMisses != replayRes.IcacheMisses ||
		liveRes.Recoveries != replayRes.Recoveries ||
		liveRes.PrefetchesEmitted != replayRes.PrefetchesEmitted {
		t.Errorf("trace-driven and execution-driven runs diverge:\nlive:   %+v\nreplay: %+v",
			liveRes.String(), replayRes.String())
	}
}
