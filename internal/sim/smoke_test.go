package sim

import (
	"testing"

	"udpsim/internal/workload"
)

// testProfile is a small, fast workload for unit tests.
func testProfile() workload.Profile {
	p := workload.MustByName("mysql")
	p.Funcs = 60
	p.DispatchTargets = 40
	return p
}

func testConfig(m Mechanism) Config {
	cfg := NewConfig(testProfile(), m)
	cfg.MaxInstructions = 60_000
	cfg.WarmupInstructions = 10_000
	return cfg
}

func TestSmokeBaseline(t *testing.T) {
	r, err := RunOne(testConfig(MechBaseline))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", r)
	t.Logf("fe: %+v", r.FE)
	t.Logf("be: %+v", r.BE)
	if r.IPC <= 0.05 || r.IPC > 6 {
		t.Errorf("implausible IPC %.3f", r.IPC)
	}
	if r.Instructions < 60_000 {
		t.Errorf("retired %d < requested", r.Instructions)
	}
}
