package sim

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

// testTraceSources memoizes registered test recordings by length so the
// equivalence, batch, and alloc tests share one decode.
var (
	testTraceMu  sync.Mutex
	testTraceSrc = map[uint64]*trace.Source{}
)

// testTraceSource records n instructions of the test profile at the
// test config's salt (0) as a UDPT2 trace, loads it back, and registers
// it under the profile's own name so Result.Workload matches the live
// run byte for byte.
func testTraceSource(t testing.TB, n uint64) *trace.Source {
	t.Helper()
	testTraceMu.Lock()
	defer testTraceMu.Unlock()
	if src, ok := testTraceSrc[n]; ok {
		return src
	}
	p := testProfile()
	var buf bytes.Buffer
	if err := trace.RecordN2(&buf, p, 0, n, trace.EncBinary); err != nil {
		t.Fatal(err)
	}
	src, err := trace.LoadSourceBytes(p.Name, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	workload.RegisterSource(src)
	testTraceSrc[n] = src
	return src
}

// traceTestConfig mirrors testConfig for the trace-driven frontend.
func traceTestConfig(t testing.TB, src *trace.Source, m Mechanism) Config {
	t.Helper()
	cfg := NewTraceConfig(src.Name(), src.SHA256(), m)
	if cfg.SeedSalt != src.Salt() {
		t.Fatalf("NewTraceConfig did not adopt the recorded salt (got %d, want %d)", cfg.SeedSalt, src.Salt())
	}
	cfg.MaxInstructions = 60_000
	cfg.WarmupInstructions = 10_000
	return cfg
}

// TestTraceSourceEquivalenceAllMechanisms is the portable-frontend
// acceptance gate: for every registered mechanism, a run driven by a
// UDPT2 recording must be byte-identical — the full Result struct, not
// headline metrics — to the live execution it was recorded from.
func TestTraceSourceEquivalenceAllMechanisms(t *testing.T) {
	src := testTraceSource(t, 100_000)
	for _, mech := range Mechanisms() {
		t.Run(string(mech), func(t *testing.T) {
			live, err := RunOne(testConfig(mech))
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(traceTestConfig(t, src, mech))
			if err != nil {
				t.Fatal(err)
			}
			replay := m.Run()
			if !reflect.DeepEqual(live, replay) {
				t.Errorf("trace-driven result diverges from live execution:\nlive:   %+v\nreplay: %+v", live, replay)
			}
		})
	}
}

// TestTraceSourceEquivalenceBatched holds the same gate on the lockstep
// path: a batch of all mechanisms sharing one trace tape must equal the
// identically shaped batch over the live executor. The recording is
// sized with the batch scheduler's runahead margin (EnsureAhead strides
// plus chunk rounding) beyond warmup+measure.
func TestTraceSourceEquivalenceBatched(t *testing.T) {
	src := testTraceSource(t, 250_000)
	mechs := Mechanisms()
	liveCfgs := make([]Config, len(mechs))
	traceCfgs := make([]Config, len(mechs))
	for i, mech := range mechs {
		liveCfgs[i] = testConfig(mech)
		traceCfgs[i] = traceTestConfig(t, src, mech)
	}
	liveRes, liveErrs := RunBatchCtx(nil, liveCfgs, 0, nil)
	traceRes, traceErrs := RunBatchCtx(nil, traceCfgs, 0, nil)
	for i, mech := range mechs {
		if liveErrs[i] != nil || traceErrs[i] != nil {
			t.Fatalf("%s: batch errors: live %v, trace %v", mech, liveErrs[i], traceErrs[i])
		}
		if !reflect.DeepEqual(liveRes[i], traceRes[i]) {
			t.Errorf("%s: batched trace-driven result diverges:\nlive:   %+v\nreplay: %+v",
				mech, liveRes[i], traceRes[i])
		}
	}
}

// TestBatchRejectsMixedSources pins the batch identity check: a live
// config and a trace config cannot share one tape.
func TestBatchRejectsMixedSources(t *testing.T) {
	src := testTraceSource(t, 100_000)
	cfgs := []Config{testConfig(MechBaseline), traceTestConfig(t, src, MechBaseline)}
	_, errs := RunBatchCtx(nil, cfgs, 0, nil)
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("batch mixing a profile source with a trace source was accepted")
	}
}

// TestMachineStepZeroAllocTraceSource extends the exact-zero allocation
// gate to the trace-driven frontend: replaying materialized records
// must be as allocation-free as live execution (the records alias the
// shared image, so Step touches no fresh memory).
func TestMachineStepZeroAllocTraceSource(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping alloc gate (needs a warmed machine)")
	}
	src := testTraceSource(t, 600_000)
	cfg := traceTestConfig(t, src, MechUDP)
	cfg.MaxInstructions = 500_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RunInstructions(100_000)
	avg := testing.AllocsPerRun(20_000, m.Step)
	if avg != 0 {
		t.Errorf("trace-driven Machine.Step allocates %.4f allocs/op, want 0", avg)
	}
}

// TestTraceRunCancellation exercises the stream abort plumbing for both
// trace frontends: a canceled context must surface as an error from
// RunCtx — not a panic, not a completed run — for the v2 source stream
// and the v1 replayer alike.
func TestTraceRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("v2-source", func(t *testing.T) {
		src := testTraceSource(t, 100_000)
		m, err := NewMachine(traceTestConfig(t, src, MechBaseline))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunCtx(ctx); err == nil {
			t.Fatal("canceled trace-driven run completed")
		}
	})

	t.Run("v1-replayer", func(t *testing.T) {
		cfg := testConfig(MechBaseline)
		var buf bytes.Buffer
		if err := trace.RecordN(&buf, cfg.Workload, cfg.SeedSalt, 100_000); err != nil {
			t.Fatal(err)
		}
		r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := SharedImage(cfg.Workload)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := trace.NewReplayer(prog, r)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachineWithSource(cfg, prog, rp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunCtx(ctx); err == nil {
			t.Fatal("canceled replayer-driven run completed")
		}
	})
}

// TestTraceConfigKeying pins the key scheme for trace-driven configs:
// the workload segment is the content hash alone, SourceKey matches the
// registry key, and two different hashes never alias.
func TestTraceConfigKeying(t *testing.T) {
	src := testTraceSource(t, 100_000)
	cfg := traceTestConfig(t, src, MechBaseline)
	key := ConfigKey(cfg)
	wantSeg := fmt.Sprintf("w{trace=%s}", src.SHA256())
	if !bytes.Contains([]byte(key), []byte(wantSeg)) {
		t.Errorf("ConfigKey %q missing %q", key, wantSeg)
	}
	if got := SourceKey(cfg); got != src.Key() {
		t.Errorf("SourceKey = %q, want %q", got, src.Key())
	}
	other := cfg
	other.TraceRef = "0000000000000000000000000000000000000000000000000000000000000000"
	if ConfigKey(other) == key {
		t.Error("distinct trace hashes alias one config key")
	}
	live := testConfig(MechBaseline)
	if SourceKey(live) != ProfileKey(live.Workload) {
		t.Error("SourceKey of a live config is not the profile key")
	}
}
