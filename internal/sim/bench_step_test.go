package sim

import (
	"testing"
)

// benchStepMachine builds a warmed-up machine for the per-cycle hot-loop
// benchmarks: the image is shared, the machine has run long enough that
// caches, predictors and the frontend's scratch pools are in steady
// state, and no observer is attached (the production configuration of
// the parallel experiment grid).
func benchStepMachine(b *testing.B, mech Mechanism) *Machine {
	b.Helper()
	cfg := testConfig(mech)
	prog, err := SharedImage(cfg.Workload)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachineWithProgram(cfg, prog)
	if err != nil {
		b.Fatal(err)
	}
	// Warm to steady state so the benchmark measures the recurring
	// per-cycle cost, not cold caches or pool growth.
	m.RunInstructions(100_000)
	return m
}

// BenchmarkMachineStep measures the raw per-cycle cost of the assembled
// machine — the innermost loop every figure, sweep and experiment cell
// spins in. It must report 0 allocs/op: the parallel experiment engine
// scales with cores only if the hot loop never touches the garbage
// collector (TestMachineStepZeroAlloc gates this; CI fails on > 0).
func BenchmarkMachineStep(b *testing.B) {
	for _, mech := range []Mechanism{MechBaseline, MechUDP, MechUFTQATRAUR, MechEIP} {
		b.Run(string(mech), func(b *testing.B) {
			m := benchStepMachine(b, mech)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
			b.StopTimer()
			if r := m.BE.Stats.Retired; r > 0 {
				b.ReportMetric(float64(r)/float64(b.N), "instrs/cycle")
			}
		})
	}
}

// TestMachineStepZeroAlloc pins the zero-allocation invariant of the
// per-cycle hot path for every registered mechanism: after warmup,
// stepping the machine must never allocate. This is the CI gate for the
// "fast as the hardware allows" budget — any allocation on this path
// multiplies by ~10^8 cycles per experiment cell and serializes the
// parallel grid behind the garbage collector.
func TestMachineStepZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping alloc gate (needs a warmed machine)")
	}
	for _, mech := range Mechanisms() {
		t.Run(string(mech), func(t *testing.T) {
			cfg := testConfig(mech)
			prog, err := SharedImage(cfg.Workload)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachineWithProgram(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			m.RunInstructions(100_000)
			avg := testing.AllocsPerRun(20_000, m.Step)
			if avg != 0 {
				t.Errorf("%s: Machine.Step allocates %.4f allocs/op, want 0", mech, avg)
			}
		})
	}
}
