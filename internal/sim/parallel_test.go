package sim

import (
	"sync"
	"testing"
)

// TestConcurrentMachinesShareImage runs several machines concurrently
// over one SharedImage program under different mechanisms and salts,
// then re-runs each serially and asserts bit-identical results. Under
// `go test -race` this proves the program image is truly immutable
// after generation (executors and frontends carry all mutable state),
// which is the invariant the parallel experiment engine depends on.
func TestConcurrentMachinesShareImage(t *testing.T) {
	prof := testProfile()
	prog, err := SharedImage(prof)
	if err != nil {
		t.Fatal(err)
	}

	configs := make([]Config, 0, 6)
	for _, m := range []Mechanism{MechBaseline, MechUDP, MechUFTQATRAUR, MechEIP} {
		cfg := NewConfig(prof, m)
		cfg.MaxInstructions = 30_000
		cfg.WarmupInstructions = 5_000
		configs = append(configs, cfg)
	}
	// Same mechanism, different regions: exercises concurrent
	// executors at different phases of the same image.
	for _, salt := range []uint64{7919, 15838} {
		cfg := NewConfig(prof, MechBaseline)
		cfg.MaxInstructions = 30_000
		cfg.WarmupInstructions = 5_000
		cfg.SeedSalt = salt
		configs = append(configs, cfg)
	}

	concurrent := make([]Result, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			m, err := NewMachineWithProgram(cfg, prog)
			if err != nil {
				t.Errorf("machine %d: %v", i, err)
				return
			}
			concurrent[i] = m.Run()
		}(i, cfg)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, cfg := range configs {
		m, err := NewMachineWithProgram(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		serial := m.Run()
		if concurrent[i] != serial {
			t.Errorf("config %d (%s): concurrent result differs from serial\nconcurrent: %v\nserial:     %v",
				i, cfg.Mechanism, concurrent[i], serial)
		}
	}
}

// TestConcurrentRequestPathBackpressure runs two machines over one
// SharedImage with deliberately tiny per-level MSHR files and fill
// bandwidth, so the request path is saturated with merges, retries and
// prefetch drops on both. Under `go test -race` this proves the
// two-phase request/complete path (MSHR files, fill ports, DRAM
// channel) holds no state shared across machines; afterwards each
// drained hierarchy must satisfy the fill-conservation invariant and
// the pair must be bit-identical to serial re-runs.
func TestConcurrentRequestPathBackpressure(t *testing.T) {
	prof := testProfile()
	prog, err := SharedImage(prof)
	if err != nil {
		t.Fatal(err)
	}

	mkCfg := func(salt uint64) Config {
		cfg := NewConfig(prof, MechUDP)
		cfg.MaxInstructions = 30_000
		// Warmup must be zero: ResetStats at the warmup boundary wipes
		// the request counts of fills still in flight, and when those
		// fills complete afterwards the conservation ledger no longer
		// balances. CheckCounters is only meaningful over a window with
		// no mid-flight reset.
		cfg.WarmupInstructions = 0
		cfg.SeedSalt = salt
		cfg.L2MSHRs = 2
		cfg.LLCMSHRs = 2
		cfg.L1DMSHRs = 2
		cfg.L2FillCycles = 8
		cfg.LLCFillCycles = 8
		return cfg
	}
	cfgs := []Config{mkCfg(0), mkCfg(7919)}

	results := make([]Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			m, err := NewMachineWithProgram(cfg, prog)
			if err != nil {
				t.Errorf("machine %d: %v", i, err)
				return
			}
			results[i] = m.Run()
			m.Hier.Drain()
			if err := m.Hier.CheckCounters(); err != nil {
				t.Errorf("machine %d: %v", i, err)
			}
		}(i, cfg)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The tiny geometry must actually have exercised backpressure.
	for i, r := range results {
		if r.Mem.DemandRetries() == 0 && r.Mem.PrefetchDrops() == 0 {
			t.Errorf("machine %d: no backpressure under 2-entry MSHR files: %+v", i, r.Mem)
		}
	}

	for i, cfg := range cfgs {
		m, err := NewMachineWithProgram(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if serial := m.Run(); results[i] != serial {
			t.Errorf("machine %d: concurrent result differs from serial\nconcurrent: %v\nserial:     %v",
				i, results[i], serial)
		}
	}
}

// TestSharedImageSingleflight hammers SharedImage for the same profile
// from many goroutines and asserts they all get the identical program
// pointer (one generation, no duplicated work, no torn cache state).
func TestSharedImageSingleflight(t *testing.T) {
	prof := testProfile()
	prof.Seed ^= 0xD00D // unique key so this test really generates
	const n = 8
	progs := make([]interface{ FootprintBytes() int }, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := SharedImage(prof)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d received a different image instance", i)
		}
	}
}

// TestRunSimpointsParallelDeterministic asserts the parallel simpoint
// runner returns exactly the serial runner's per-region results and
// aggregate, in salt order.
func TestRunSimpointsParallelDeterministic(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.MaxInstructions = 20_000
	cfg.WarmupInstructions = 5_000

	serialResults, serialAgg, err := RunSimpoints(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	parResults, parAgg, err := RunSimpointsParallel(cfg, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parResults) != len(serialResults) {
		t.Fatalf("%d parallel results, %d serial", len(parResults), len(serialResults))
	}
	for i := range serialResults {
		if parResults[i] != serialResults[i] {
			t.Errorf("region %d differs:\nparallel: %v\nserial:   %v", i, parResults[i], serialResults[i])
		}
	}
	if parAgg != serialAgg {
		t.Errorf("aggregate differs:\nparallel: %v\nserial:   %v", parAgg, serialAgg)
	}
}
