package sim

import (
	"fmt"
	"strings"

	"udpsim/internal/workload"
)

// This file builds canonical, collision-free cache keys for the two
// process-wide caches (the program-image cache below and the experiment
// result cache in internal/experiments). The keys used to be
// fmt.Sprintf("%+v", …) over whole structs, which is fragile in both
// directions: if Config or Profile ever gain a pointer field, two
// logically identical configurations print different addresses and
// *split* the cache; map fields print in random order and do the same;
// and unexported or shadowed fields can silently make distinct
// configurations *alias*. Every field is therefore serialized
// explicitly, and TestKeyBuildersCoverAllFields pins the field counts
// of each struct so adding a field without extending the builder fails
// the build's test suite.

// Field counts covered by the key builders. Bump these together with
// the corresponding builder when a struct grows a field.
const (
	configKeyFields  = 50
	profileKeyFields = 28
	tageKeyFields    = 6
	uftqKeyFields    = 10
	udpKeyFields     = 6
	eipKeyFields     = 5
)

// ConfigKey returns a canonical string key for a full simulation
// configuration: equal configurations always map to equal keys, and any
// field difference produces a different key.
func ConfigKey(cfg Config) string {
	var b strings.Builder
	b.Grow(512)
	b.WriteString("w{")
	if cfg.TraceRef != "" {
		// Trace-driven cells key on the trace's content hash alone: the
		// Workload field carries only a display name, and two descriptors
		// naming the same bytes differently must still share one cell
		// (the daemon-dedup and store-sharding invariant).
		b.WriteString("trace=")
		b.WriteString(cfg.TraceRef)
	} else {
		writeProfileKey(&b, cfg.Workload)
	}
	// The mechanism is normalized so that "" and "baseline" — which
	// build identical machines — share one key (and therefore one
	// result-cache cell) instead of simulating twice.
	fmt.Fprintf(&b, "}|mech=%s|salt=%d|max=%d|warm=%d",
		NormalizeMechanism(cfg.Mechanism), cfg.SeedSalt, cfg.MaxInstructions, cfg.WarmupInstructions)
	fmt.Fprintf(&b, "|ftq=%d|physmax=%d|bpc=%d|scan=%d|fw=%d|icb=%d|icw=%d|imshr=%d",
		cfg.FTQDepth, cfg.FTQPhysMax, cfg.BlocksPerCycle, cfg.ScanPerCycle,
		cfg.FetchWidth, cfg.ICacheBytes, cfg.ICacheWays, cfg.IMSHRs)
	fmt.Fprintf(&b, "|tage{tb=%d,bb=%d,hl=%v,tag=%d,sc=%t,loop=%t}",
		cfg.Tage.TableBits, cfg.Tage.BimodalBits, cfg.Tage.HistLengths,
		cfg.Tage.TagBits, cfg.Tage.UseSC, cfg.Tage.UseLoop)
	fmt.Fprintf(&b, "|btb=%d/%d|ind=%d|ras=%d",
		cfg.BTBEntries, cfg.BTBWays, cfg.IndirectEntries, cfg.RASEntries)
	fmt.Fprintf(&b, "|be{w=%d,rob=%d,rs=%d,alu=%d,lp=%d,sp=%d,lb=%d,sb=%d}",
		cfg.Width, cfg.ROBSize, cfg.RSSize, cfg.ALUs,
		cfg.LoadPorts, cfg.StorePorts, cfg.LoadBuffer, cfg.StoreBuffer)
	fmt.Fprintf(&b, "|mem{l1d=%d/%d,l2=%d/%d,llc=%d/%d,lat=%d/%d/%d,dram=%d/%d,spf=%t,mshr=%d/%d/%d,fill=%d/%d/%d,pfbk=%d}",
		cfg.L1DBytes, cfg.L1DWays, cfg.L2Bytes, cfg.L2Ways, cfg.LLCBytes, cfg.LLCWays,
		cfg.L1DLatency, cfg.L2Latency, cfg.LLCLatency,
		cfg.DRAMLatency, cfg.DRAMBurstCycles, cfg.StreamPF,
		cfg.L1DMSHRs, cfg.L2MSHRs, cfg.LLCMSHRs,
		cfg.L1DFillCycles, cfg.L2FillCycles, cfg.LLCFillCycles,
		cfg.DRAMPrefetchBacklog)
	fmt.Fprintf(&b, "|uftq{m=%d,aur=%g,atr=%g,win=%d,init=%d,min=%d,max=%d,step=%d,band=%g,drift=%g}",
		cfg.UFTQ.Mode, cfg.UFTQ.AUR, cfg.UFTQ.ATR, cfg.UFTQ.Window,
		cfg.UFTQ.InitialDepth, cfg.UFTQ.MinDepth, cfg.UFTQ.MaxDepth,
		cfg.UFTQ.Step, cfg.UFTQ.Band, cfg.UFTQ.DriftBand)
	fmt.Fprintf(&b, "|udp{ct=%d,sen=%d,inf=%t,ow=%d,hb=%d,dht=%t}",
		cfg.UDP.ConfidenceThreshold, cfg.UDP.SeniorityEntries, cfg.UDP.Infinite,
		cfg.UDP.OutcomeWindow, cfg.UDP.HiddenBranchTableBits, cfg.UDP.DisableHiddenTrigger)
	fmt.Fprintf(&b, "|eip{s=%d,w=%d,d=%d,h=%d,lat=%d}",
		cfg.EIP.Sets, cfg.EIP.Ways, cfg.EIP.DestsPerEntry,
		cfg.EIP.HistoryLen, cfg.EIP.LatencyCycles)
	fmt.Fprintf(&b, "|pdfill=%t", cfg.PredecodeBTBFill)
	return b.String()
}

// ProfileKey returns a canonical string key for a workload profile
// (used by the shared program-image cache). The serialization itself
// lives on workload.Profile — the source abstraction needs it without
// importing sim — and its byte layout is pinned by key_test.go.
func ProfileKey(p workload.Profile) string {
	return p.Key()
}

func writeProfileKey(b *strings.Builder, p workload.Profile) {
	b.WriteString(p.Key())
}

// SourceKey returns the workload-source identity of a configuration:
// the trace content hash for trace-driven cells, the full profile
// serialization otherwise. Batch formation and image grouping key on
// it — two configs with equal SourceKey (and SeedSalt) consume the
// identical instruction stream.
func SourceKey(cfg Config) string {
	if cfg.TraceRef != "" {
		return "trace:" + cfg.TraceRef
	}
	return ProfileKey(cfg.Workload)
}

// NewTraceConfig returns the Table II configuration for a trace-driven
// run: name is the display label (Result.Workload), sha the trace
// content hash. When the trace's Source is already registered (the
// normal case — descriptors resolve traces before building cells) the
// config adopts the recorded seed salt, which the source's Stream
// validates at machine construction; the simpoint runners deliberately
// do not re-derive salts for trace-driven configs.
func NewTraceConfig(name, sha string, m Mechanism) Config {
	cfg := NewConfig(workload.Profile{Name: name}, m)
	cfg.TraceRef = sha
	if s, ok := workload.SourceByKey("trace:" + sha); ok {
		if ss, ok := s.(interface{ Salt() uint64 }); ok {
			cfg.SeedSalt = ss.Salt()
		}
	}
	return cfg
}
