package sim

import (
	"testing"

	"udpsim/internal/frontend"
	"udpsim/internal/workload"
)

// TestRetirementFollowsOracle is the simulator's strongest correctness
// check: every retired instruction must be the next instruction of the
// architectural (oracle) stream, in order, with no gaps and no
// duplicates — across mispredictions, BTB misses, post-fetch
// corrections, and recoveries.
func TestRetirementFollowsOracle(t *testing.T) {
	for _, mech := range []Mechanism{MechBaseline, MechUDP, MechUFTQATRAUR, MechEIP, MechPerfectICache} {
		cfg := testConfig(mech)
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Reference oracle: an identical executor.
		ref := workload.NewExecutor(m.Program(), cfg.SeedSalt)
		checked := 0
		m.BE.RetireObserver = func(fi *frontend.FrontInstr) {
			want := ref.Next()
			if fi.Static.PC != want.PC() || fi.Oracle.Taken != want.Taken || fi.Oracle.Target != want.Target {
				t.Fatalf("%s: retired instr %d at %v (taken %v → %v) diverges from oracle %v (taken %v → %v)",
					mech, checked, fi.Static.PC, fi.Oracle.Taken, fi.Oracle.Target,
					want.PC(), want.Taken, want.Target)
			}
			checked++
		}
		m.RunInstructions(50_000)
		if checked < 50_000 {
			t.Errorf("%s: observer saw only %d retirements", mech, checked)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(MechUDP)
	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC || a.IcacheMisses != b.IcacheMisses ||
		a.PrefetchesEmitted != b.PrefetchesEmitted || a.Recoveries != b.Recoveries {
		t.Errorf("non-deterministic simulation:\n%+v\n%+v", a, b)
	}
}

func TestAllMechanismsRun(t *testing.T) {
	for _, mech := range Mechanisms() {
		r, err := RunOne(testConfig(mech))
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if r.Instructions < 60_000 {
			t.Errorf("%s retired %d", mech, r.Instructions)
		}
		if r.IPC <= 0 || r.IPC > float64(6) {
			t.Errorf("%s IPC %v out of range", mech, r.IPC)
		}
	}
}

func TestUnknownMechanismRejected(t *testing.T) {
	cfg := testConfig("warp-drive")
	if _, err := NewMachine(cfg); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

// TestMechanismOrdering: a perfect icache can only help, disabling the
// prefetcher can only hurt.
func TestMechanismOrdering(t *testing.T) {
	base, err := RunOne(testConfig(MechBaseline))
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := RunOne(testConfig(MechPerfectICache))
	if err != nil {
		t.Fatal(err)
	}
	nopf, err := RunOne(testConfig(MechNoPrefetch))
	if err != nil {
		t.Fatal(err)
	}
	if perfect.IPC < base.IPC*0.99 {
		t.Errorf("perfect icache (%.3f) below baseline (%.3f)", perfect.IPC, base.IPC)
	}
	if nopf.IPC > base.IPC*1.01 {
		t.Errorf("no-prefetch (%.3f) above baseline (%.3f)", nopf.IPC, base.IPC)
	}
	if perfect.IcacheMPKI != 0 {
		t.Errorf("perfect icache has MPKI %v", perfect.IcacheMPKI)
	}
}

func TestFTQDepthRespected(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.FTQDepth = 16
	r, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalFTQDepth != 16 {
		t.Errorf("final depth %d", r.FinalFTQDepth)
	}
	if r.MeanFTQOcc > 16 {
		t.Errorf("mean occupancy %v exceeds depth", r.MeanFTQOcc)
	}
}

func TestUFTQAdjustsDepth(t *testing.T) {
	cfg := testConfig(MechUFTQATRAUR)
	cfg.MaxInstructions = 300_000
	// The tiny test workload mostly hits the icache; shrink the
	// measurement window so prefetch outcomes complete several windows.
	cfg.UFTQ.Window = 50
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if m.UFTQ().Windows == 0 {
		t.Error("UFTQ never completed a measurement window")
	}
}

func TestUDPStateAfterRun(t *testing.T) {
	cfg := testConfig(MechUDP)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	if m.UDP().StorageBytes() == 0 || m.UDP().StorageBytes() > 16*1024 {
		t.Errorf("UDP storage %d outside budget sanity band", m.UDP().StorageBytes())
	}
	if r.UDPStorage != m.UDP().StorageBytes() {
		t.Error("result does not carry UDP storage")
	}
}

func TestStatsConsistency(t *testing.T) {
	cfg := testConfig(MechBaseline)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	fe := r.FE
	if fe.PrefetchesEmitted != fe.PrefetchesOnPath+fe.PrefetchesOffPath {
		t.Errorf("prefetch path attribution: %d != %d + %d",
			fe.PrefetchesEmitted, fe.PrefetchesOnPath, fe.PrefetchesOffPath)
	}
	if fe.PrefetchUsefulOff > fe.PrefetchUseful || fe.PrefetchUselessOff > fe.PrefetchUseless {
		t.Error("off-path counts exceed totals")
	}
	if r.BE.Flushed != r.BE.WrongPathExecuted {
		// Every wrong-path instruction that entered the ROB must be
		// squashed eventually. The in-flight window skews the balance in
		// both directions by up to one ROB: instructions still in flight
		// at the end of the run were counted but never flushed, and
		// instructions in flight across the warmup ResetStats are
		// flushed after their entry count was wiped.
		diff := int64(r.BE.WrongPathExecuted) - int64(r.BE.Flushed)
		if diff < -int64(cfg.ROBSize) || diff > int64(cfg.ROBSize) {
			t.Errorf("flushed %d vs wrong-path %d", r.BE.Flushed, r.BE.WrongPathExecuted)
		}
	}
	if r.BE.FlushedOnPath != 0 {
		t.Errorf("%d on-path instructions were squashed", r.BE.FlushedOnPath)
	}
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Error("empty run")
	}
}

func TestSimpointsAggregate(t *testing.T) {
	cfg := testConfig(MechBaseline)
	results, agg, err := RunSimpoints(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	var instrs uint64
	for i, r := range results {
		instrs += r.Instructions
		for j := i + 1; j < len(results); j++ {
			if r.Cycles == results[j].Cycles && r.IcacheMisses == results[j].IcacheMisses {
				t.Errorf("simpoints %d and %d identical — salts not applied", i, j)
			}
		}
	}
	if agg.Instructions != instrs {
		t.Errorf("aggregate instructions %d, want %d", agg.Instructions, instrs)
	}
	lo, hi := results[0].IPC, results[0].IPC
	for _, r := range results {
		if r.IPC < lo {
			lo = r.IPC
		}
		if r.IPC > hi {
			hi = r.IPC
		}
	}
	if agg.IPC < lo || agg.IPC > hi {
		t.Errorf("aggregate IPC %v outside [%v, %v]", agg.IPC, lo, hi)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Errorf("empty geomean %v", g)
	}
	if g := Geomean([]float64{0.1, 0.1}); g < 0.0999 || g > 0.1001 {
		t.Errorf("geomean of equal values %v", g)
	}
	g := Geomean([]float64{0.0, 0.21})
	if g < 0.09 || g > 0.11 {
		t.Errorf("geomean %v, want ~0.1", g)
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.MaxInstructions = 50_000
	cfg.WarmupInstructions = 50_000
	r, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The final Step may retire up to Width instructions at once, so the
	// measured region can overshoot by at most one retire group; warmup
	// instructions would show up as a ~50k excess.
	if r.Instructions < 50_000 || r.Instructions >= 50_000+uint64(cfg.Width) {
		t.Errorf("instructions %d include warmup", r.Instructions)
	}
}

func TestSharedImageCaches(t *testing.T) {
	p := testProfile()
	a, err := SharedImage(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedImage(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("image not shared")
	}
	p2 := p
	p2.Seed++
	c, err := SharedImage(p2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct profiles share an image")
	}
}

func TestICache40KGeometry(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.ICacheBytes = 40 * 1024
	cfg.ICacheWays = 10
	if _, err := RunOne(cfg); err != nil {
		t.Fatalf("40K icache config: %v", err)
	}
}

func TestBTBSizeSweepRuns(t *testing.T) {
	for _, n := range []int{1024, 16384} {
		cfg := testConfig(MechBaseline)
		cfg.BTBEntries = n
		if _, err := RunOne(cfg); err != nil {
			t.Fatalf("BTB %d: %v", n, err)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Workload: "x", Mechanism: MechUDP, IPC: 1}
	if r.String() == "" {
		t.Error("empty result string")
	}
	if r.Speedup(Result{}) != 0 {
		t.Error("speedup over zero base should be 0")
	}
}

func TestPredecodeBTBFill(t *testing.T) {
	plain := testConfig(MechBaseline)
	filled := plain
	filled.PredecodeBTBFill = true
	a, err := RunOne(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(filled)
	if err != nil {
		t.Fatal(err)
	}
	if b.FE.PredecodeBTBFills == 0 {
		t.Fatal("predecode fill never fired")
	}
	if a.FE.PredecodeBTBFills != 0 {
		t.Fatal("predecode fill fired while disabled")
	}
	// Eliminating BTB misses must reduce BTB-miss divergences.
	if b.FE.DivergencesBTBMiss >= a.FE.DivergencesBTBMiss {
		t.Errorf("BTB-miss divergences not reduced: %d vs %d",
			b.FE.DivergencesBTBMiss, a.FE.DivergencesBTBMiss)
	}
}
