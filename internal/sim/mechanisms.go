package sim

import (
	"fmt"

	"udpsim/internal/core"
	"udpsim/internal/eip"
	"udpsim/internal/frontend"
	"udpsim/internal/obs"
)

// Mechanism selects the instruction-prefetch policy under evaluation.
type Mechanism string

// Mechanisms evaluated in the paper.
const (
	// MechBaseline is state-of-the-art FDIP with a fixed FTQ (depth 32
	// unless overridden) — the paper's baseline [28].
	MechBaseline Mechanism = "baseline"
	// MechNoPrefetch disables FDIP prefetching.
	MechNoPrefetch Mechanism = "no-prefetch"
	// MechPerfectICache makes every instruction fetch hit (Fig. 1).
	MechPerfectICache Mechanism = "perfect-icache"
	// MechUFTQAUR / MechUFTQATR / MechUFTQATRAUR are the dynamic FTQ
	// sizing controllers (Fig. 11/12).
	MechUFTQAUR    Mechanism = "uftq-aur"
	MechUFTQATR    Mechanism = "uftq-atr"
	MechUFTQATRAUR Mechanism = "uftq-atr-aur"
	// MechUDP is utility-driven prefetching with the 8KB Bloom
	// useful-set (Fig. 13-17); MechUDPInfinite is its unbounded upper
	// bound.
	MechUDP         Mechanism = "udp"
	MechUDPInfinite Mechanism = "udp-infinite"
	// MechEIP is the entangled-instruction-prefetcher comparator at an
	// 8KB metadata budget (Fig. 13).
	MechEIP Mechanism = "eip"
	// MechUDPUFTQ composes UDP's candidate filtering with UFTQ-ATR-AUR's
	// dynamic FTQ sizing — the orthogonal combination the paper suggests
	// but does not evaluate (ablation extension).
	MechUDPUFTQ Mechanism = "udp-uftq"
)

// The in-tree mechanisms register themselves here; adding a comparator
// is one RegisterMechanism call (see DESIGN.md "Adding a mechanism").
// Registration order is the canonical presentation order (Mechanisms(),
// -list-mechanisms, conformance tests).
func init() {
	RegisterMechanism(MechDescriptor{
		Name:  MechBaseline,
		Doc:   "FDIP with a fixed-depth FTQ (paper baseline, Table II depth 32)",
		Build: func(Config) (Bindings, error) { return Bindings{}, nil },
	})
	RegisterMechanism(MechDescriptor{
		Name: MechNoPrefetch,
		Doc:  "FDIP disabled: demand fetch only (Fig. 1 lower bound)",
		Build: func(Config) (Bindings, error) {
			return Bindings{
				MutateFrontend: func(fc *frontend.Config) { fc.NoPrefetch = true },
			}, nil
		},
	})
	RegisterMechanism(MechDescriptor{
		Name: MechPerfectICache,
		Doc:  "every instruction fetch hits the L1I (Fig. 1 upper bound)",
		Build: func(Config) (Bindings, error) {
			return Bindings{
				MutateFrontend: func(fc *frontend.Config) { fc.PerfectICache = true },
			}, nil
		},
	})
	RegisterMechanism(MechDescriptor{
		Name:  MechUFTQAUR,
		Doc:   "dynamic FTQ sizing by prefetch utility ratio (Section IV-A)",
		Build: buildUFTQ(core.UFTQAUR),
	})
	RegisterMechanism(MechDescriptor{
		Name:  MechUFTQATR,
		Doc:   "dynamic FTQ sizing by prefetch timeliness ratio (Section IV-A)",
		Build: buildUFTQ(core.UFTQATR),
	})
	RegisterMechanism(MechDescriptor{
		Name:  MechUFTQATRAUR,
		Doc:   "dynamic FTQ sizing combining AUR and ATR searches (Section IV-A)",
		Build: buildUFTQ(core.UFTQATRAUR),
	})
	RegisterMechanism(MechDescriptor{
		Name:  MechUDP,
		Doc:   "utility-driven prefetch filtering, 8KB Bloom useful-set (Section IV-B)",
		Build: buildUDP(false),
	})
	RegisterMechanism(MechDescriptor{
		Name:  MechUDPInfinite,
		Doc:   "UDP with an unbounded useful-set (upper bound, Fig. 13)",
		Build: buildUDP(true),
	})
	RegisterMechanism(MechDescriptor{
		Name: MechEIP,
		Doc:  "entangled instruction prefetcher comparator at 8KB metadata (Fig. 13)",
		Build: func(cfg Config) (Bindings, error) {
			e := eip.New(cfg.EIP)
			return Bindings{External: e, EIP: e}, nil
		},
	})
	RegisterMechanism(MechDescriptor{
		Name: MechUDPUFTQ,
		Doc:  "UDP filtering composed with UFTQ-ATR-AUR sizing (ablation extension)",
		Build: func(cfg Config) (Bindings, error) {
			u := cfg.UFTQ
			u.Mode = core.UFTQATRAUR
			comb := core.NewCombined(cfg.UDP, u)
			b := Bindings{Tuner: comb, UDP: comb.UDP, UFTQ: comb.UFTQ}
			b.Observe = func(o *obs.Observer) {
				comb.UDP.Obs = o
				comb.UFTQ.Obs = o
			}
			b.Telemetry = func(r *Result) {
				udpTelemetry(comb.UDP)(r)
				uftqTelemetry(comb.UFTQ)(r)
			}
			return b, nil
		},
	})
}

// buildUFTQ returns a Build function for one UFTQ sizing mode.
func buildUFTQ(mode core.UFTQMode) func(Config) (Bindings, error) {
	return func(cfg Config) (Bindings, error) {
		u := cfg.UFTQ
		u.Mode = mode
		q := core.NewUFTQ(u)
		return Bindings{
			Tuner:     q,
			UFTQ:      q,
			Observe:   func(o *obs.Observer) { q.Obs = o },
			Telemetry: uftqTelemetry(q),
		}, nil
	}
}

// buildUDP returns a Build function for UDP with a bounded or infinite
// useful-set.
func buildUDP(infinite bool) func(Config) (Bindings, error) {
	return func(cfg Config) (Bindings, error) {
		c := cfg.UDP
		c.Infinite = infinite
		u := core.NewUDP(c)
		return Bindings{
			Tuner:     u,
			UDP:       u,
			Observe:   func(o *obs.Observer) { u.Obs = o },
			Telemetry: udpTelemetry(u),
		}, nil
	}
}

func udpTelemetry(u *core.UDP) func(*Result) {
	return func(r *Result) {
		r.UDPStorage = u.StorageBytes()
		r.MechanismSummary = u.String()
	}
}

func uftqTelemetry(q *core.UFTQ) func(*Result) {
	return func(r *Result) {
		r.MechanismSummary = fmt.Sprintf("%s: depth %d (QDAUR %d, QDATR %d), %d windows, %d adjustments, %d re-searches",
			q.Name(), q.Depth(), q.QDAUR(), q.QDATR(), q.Windows, q.Adjustments, q.Researches)
	}
}
