package sim

import (
	"testing"

	"udpsim/internal/workload"
)

// TestExtraCorpusConformance pins the grown scenario corpus: each extra
// profile must stay a frontend-bound workload in its calibrated L1I
// MPKI and static footprint band under the Table II baseline. The bands
// are generous — they exist to catch a profile edit (or generator
// regression) that silently turns a scenario into something the paper's
// mechanisms no longer exercise, not to pin exact metrics.
func TestExtraCorpusConformance(t *testing.T) {
	bands := map[string]struct {
		mpkiLo, mpkiHi float64
		footLoKB       int
		footHiKB       int
	}{
		// Hot dispatch loop over an unpredictable-target switch.
		"interpreter-dispatch": {6, 25, 300, 1200},
		// Huge churning footprint with phase rotation.
		"jit-churn": {9, 40, 700, 2800},
		// Deep call fans over many small handlers.
		"rpc-storm": {6, 25, 350, 1400},
	}
	if len(bands) != len(workload.ExtraNames) {
		t.Fatalf("conformance covers %d profiles, registry has %d", len(bands), len(workload.ExtraNames))
	}
	for _, name := range workload.ExtraNames {
		t.Run(name, func(t *testing.T) {
			band, ok := bands[name]
			if !ok {
				t.Fatalf("no conformance band for %s", name)
			}
			p, ok := workload.ByName(name)
			if !ok {
				t.Fatalf("extra profile %s not resolvable via ByName", name)
			}
			prog, err := SharedImage(p)
			if err != nil {
				t.Fatal(err)
			}
			if kb := prog.FootprintBytes() / 1024; kb < band.footLoKB || kb > band.footHiKB {
				t.Errorf("footprint %d KiB outside band [%d, %d]", kb, band.footLoKB, band.footHiKB)
			}
			cfg := NewConfig(p, MechBaseline)
			cfg.WarmupInstructions = 200_000
			cfg.MaxInstructions = 500_000
			r, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.IcacheMPKI < band.mpkiLo || r.IcacheMPKI > band.mpkiHi {
				t.Errorf("L1I MPKI %.2f outside band [%.1f, %.1f] — the scenario is no longer frontend-bound the way it was calibrated",
					r.IcacheMPKI, band.mpkiLo, band.mpkiHi)
			}
			if r.IPC <= 0.05 || r.IPC > 6 {
				t.Errorf("implausible IPC %.4f", r.IPC)
			}
		})
	}
}

// TestExtraProfilesStayOutOfPaperCorpus pins that the grown scenarios
// extend the corpus without disturbing the paper's 10-workload set:
// All() is unchanged, Extras() carries the additions, and both resolve
// through ByName.
func TestExtraProfilesStayOutOfPaperCorpus(t *testing.T) {
	all := map[string]bool{}
	for _, p := range workload.All() {
		all[p.Name] = true
	}
	if len(workload.Extras()) != len(workload.ExtraNames) {
		t.Fatalf("Extras() returns %d profiles, ExtraNames has %d", len(workload.Extras()), len(workload.ExtraNames))
	}
	for _, name := range workload.ExtraNames {
		if all[name] {
			t.Errorf("extra profile %s leaked into the paper corpus All()", name)
		}
		p, ok := workload.ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %t", name, p.Name, ok)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
