package sim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"udpsim/internal/workload"
)

// TestRunBatchEquivalence is the core invariant of batched lockstep
// mode: for every registered mechanism, stepping the machine inside a
// batch over the shared tape yields the bit-for-bit identical Result
// (the struct is comparable) the machine produces in an independent
// run — same stream, same cycle sequence, same warmup boundary, same
// snapshot point. Both serial and parallel batch scheduling are
// checked against the unbatched simpoint runner.
func TestRunBatchEquivalence(t *testing.T) {
	mechs := Mechanisms()
	cfgs := make([]Config, len(mechs))
	for i, mech := range mechs {
		cfg := testConfig(mech)
		cfg.MaxInstructions = 25_000
		cfg.WarmupInstructions = 6_000
		cfgs[i] = cfg
	}
	const simpoints = 2

	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		_, agg, err := RunSimpointsCtx(context.Background(), cfg, simpoints, 1, nil)
		if err != nil {
			t.Fatalf("%s: unbatched run: %v", mechs[i], err)
		}
		want[i] = agg
	}

	for _, par := range []int{1, 4} {
		got, errs := RunBatchSimpoints(context.Background(), cfgs, simpoints, par, nil)
		for i := range cfgs {
			if errs[i] != nil {
				t.Fatalf("parallelism %d, %s: batched run: %v", par, mechs[i], errs[i])
			}
			if got[i] != want[i] {
				t.Errorf("parallelism %d, %s: batched result differs from unbatched\n got: %+v\nwant: %+v",
					par, mechs[i], got[i], want[i])
			}
		}
	}
}

// TestBatchDivergenceStress batches machines whose frontends squash and
// flush at wildly different cycles — tiny vs. huge BTBs, shallow vs.
// deep FTQs, a cold 8 KiB icache, mixed mechanisms, and one machine
// with no warmup at all — over one shared stream, and asserts each
// still reproduces its independent run exactly. This is the "wrong-path
// divergence stays local" guarantee: the tape carries only the on-path
// stream, and recovery rewinds never cross machines.
func TestBatchDivergenceStress(t *testing.T) {
	prof := testProfile()
	base := func(mech Mechanism) Config {
		cfg := NewConfig(prof, mech)
		cfg.MaxInstructions = 20_000
		cfg.WarmupInstructions = 4_000
		return cfg
	}
	var cfgs []Config
	c := base(MechBaseline)
	c.BTBEntries, c.BTBWays = 256, 4 // mispredicts constantly
	cfgs = append(cfgs, c)
	c = base(MechBaseline)
	c.FTQDepth = 8
	cfgs = append(cfgs, c)
	c = base(MechUDP)
	c.FTQDepth = 128
	cfgs = append(cfgs, c)
	c = base(MechUFTQATRAUR)
	c.ICacheBytes = 8 * 1024
	cfgs = append(cfgs, c)
	c = base(MechEIP)
	c.WarmupInstructions = 0 // measures from cycle 0
	cfgs = append(cfgs, c)
	c = base(MechUDP)
	c.Tage.TableBits = 7 // weak direction predictor: frequent squashes
	cfgs = append(cfgs, c)

	prog, err := SharedImage(prof)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		m, err := NewMachineWithProgram(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m.Run()
	}
	for _, par := range []int{1, 3} {
		got, errs := RunBatchCtx(context.Background(), cfgs, par, nil)
		for i := range cfgs {
			if errs[i] != nil {
				t.Fatalf("parallelism %d, cfg %d: %v", par, i, errs[i])
			}
			if got[i] != want[i] {
				t.Errorf("parallelism %d, cfg %d: batched result differs\n got: %+v\nwant: %+v",
					par, i, got[i], want[i])
			}
		}
	}
}

// TestRunBatchPerConfigErrors asserts an invalid cell fails alone: the
// bad geometry gets its error, every other machine of the batch still
// matches its independent run.
func TestRunBatchPerConfigErrors(t *testing.T) {
	good := testConfig(MechBaseline)
	good.MaxInstructions = 8_000
	good.WarmupInstructions = 1_000
	bad := good
	bad.ICacheBytes = 48 * 1024 // 96 sets at 8 ways: not a power of two
	cfgs := []Config{good, bad}

	res, errs := RunBatchCtx(context.Background(), cfgs, 1, nil)
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "geometry") {
		t.Fatalf("bad cell error = %v, want geometry error", errs[1])
	}
	if errs[0] != nil {
		t.Fatalf("good cell failed: %v", errs[0])
	}
	want, err := RunOne(good)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != want {
		t.Errorf("good cell differs from independent run")
	}
}

// TestRunBatchRejectsMixedStreams pins the stream-identity contract:
// one tape means one (image, salt) pair.
func TestRunBatchRejectsMixedStreams(t *testing.T) {
	a := testConfig(MechBaseline)
	b := a
	b.SeedSalt = 7919
	_, errs := RunBatchCtx(context.Background(), []Config{a, b}, 1, nil)
	for _, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "salt") {
			t.Fatalf("err = %v, want mixed-salt rejection", err)
		}
	}
}

// TestRunBatchCancellation asserts ctx cancellation abandons unfinished
// machines with ctx.Err() instead of simulating to completion.
func TestRunBatchCancellation(t *testing.T) {
	cfg := testConfig(MechBaseline)
	cfg.MaxInstructions = 50_000_000 // would take minutes
	cfg.WarmupInstructions = 0
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, errs := RunBatchCtx(ctx, []Config{cfg, cfg}, 1, nil)
	if time.Since(start) > 30*time.Second {
		t.Fatal("cancellation did not stop the batch promptly")
	}
	for i, err := range errs {
		if err != context.Canceled {
			t.Errorf("cfg %d: err = %v, want context.Canceled", i, err)
		}
	}
}

// TestSimpointSaltsPinned pins the simpoint salt schedule after the
// off-by-one fix: region 0 must not alias salt 0 (a plain non-simpoint
// run), and every salt must produce a distinct ConfigKey.
func TestSimpointSaltsPinned(t *testing.T) {
	want := []uint64{7919, 15838, 23757, 31676}
	for i, w := range want {
		if got := SimpointSalt(i); got != w {
			t.Errorf("SimpointSalt(%d) = %d, want %d", i, got, w)
		}
	}
	if SimpointSalt(0) == 0 {
		t.Error("simpoint 0 aliases the non-simpoint salt 0")
	}
	cfg := testConfig(MechBaseline)
	keys := map[string]int{ConfigKey(cfg): -1}
	for i := 0; i < 4; i++ {
		c := cfg
		c.SeedSalt = SimpointSalt(i)
		k := ConfigKey(c)
		if prev, dup := keys[k]; dup {
			t.Errorf("ConfigKey collision between regions %d and %d", prev, i)
		}
		keys[k] = i
	}
}

// TestMachineStepZeroAllocBatch holds the exact-zero allocation gate in
// batch mode: a machine stepping over a shared, pre-extended tape must
// allocate nothing per cycle, same as the independent hot loop. The
// batch scheduler guarantees the pre-extension (Tape.EnsureAhead before
// every slice), so chunk generation never happens inside Step.
func TestMachineStepZeroAllocBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping alloc gate (needs a warmed machine)")
	}
	for _, mech := range []Mechanism{MechBaseline, MechUDP, MechUFTQATRAUR, MechEIP} {
		t.Run(string(mech), func(t *testing.T) {
			cfg := testConfig(mech)
			prog, err := SharedImage(cfg.Workload)
			if err != nil {
				t.Fatal(err)
			}
			tape := workload.NewTape(prog, cfg.SeedSalt)
			reader := tape.Reader()
			// A second reader keeps the trimming path live during the
			// measured window, as in a real batch.
			trailer := tape.Reader()
			m, err := NewMachineWithSource(cfg, prog, reader)
			if err != nil {
				t.Fatal(err)
			}
			m.RunInstructions(100_000)
			trailer.At(m.Oracle.Cursor() - 1)
			tape.EnsureAhead(m.Oracle.Cursor() + 21_000*18)
			avg := testing.AllocsPerRun(20_000, m.Step)
			if avg != 0 {
				t.Errorf("%s: batched Machine.Step allocates %.4f allocs/op, want 0", mech, avg)
			}
		})
	}
}

// BenchmarkBatchedSweep measures the tentpole speed claim: a 16-config
// single-image sweep run as one lockstep batch versus 16 independent
// sequential runs. The batch wins on two axes — the architectural
// stream is produced once instead of 16 times, and the lockstep
// scheduler spreads the machines over all cores while the independent
// baseline (like the engine's per-cell runner) steps one machine at a
// time per worker. The reported "speedup" metric is gated >= 3 in CI on
// multi-core runners; on a single core only the stream-sharing term
// remains.
func BenchmarkBatchedSweep(b *testing.B) {
	prof := testProfile()
	prog, err := SharedImage(prof)
	if err != nil {
		b.Fatal(err)
	}
	mechs := []Mechanism{MechBaseline, MechUDP, MechUFTQATRAUR, MechEIP}
	depths := []int{16, 32, 64, 128}
	var cfgs []Config
	for _, mech := range mechs {
		for _, d := range depths {
			cfg := NewConfig(prof, mech)
			cfg.MaxInstructions = 40_000
			cfg.WarmupInstructions = 10_000
			cfg.FTQDepth = d
			cfgs = append(cfgs, cfg)
		}
	}
	totalInstrs := float64(len(cfgs)) * 50_000

	var serial, batched time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for _, cfg := range cfgs {
			m, err := NewMachineWithProgram(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			m.Run()
		}
		serial += time.Since(t0)

		t1 := time.Now()
		_, errs := RunBatch(cfgs, runtime.GOMAXPROCS(0))
		batched += time.Since(t1)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(totalInstrs*n/batched.Seconds()/1e6, "batched-Minstrs/s")
	b.ReportMetric(totalInstrs*n/serial.Seconds()/1e6, "independent-Minstrs/s")
	b.ReportMetric(serial.Seconds()/batched.Seconds(), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}
