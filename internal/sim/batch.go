package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"udpsim/internal/isa"
	"udpsim/internal/workload"
)

// Batched lockstep simulation: K config variants of one workload region
// step over a single shared architectural stream. The workload executor
// runs exactly once (inside a workload.Tape); every machine's oracle
// reads the tape through its own TapeReader, and wrong-path divergence
// stays local to each frontend exactly as in an independent run — the
// tape carries only the on-path stream, and each frontend walks the
// static image itself for (possibly wrong-path) fetch.
//
// Scheduling keeps the machines' stream cursors close together
// (smallest-cursor-first, in slices of batchStride cycles), which
// bounds tape memory to the cursor spread of the group and keeps the
// shared chunks hot in cache across machines. Per-machine run state —
// phase, retire target, forward-progress limit, saved observer
// interval — lives in structure-of-arrays form on the runner rather
// than per-machine wrappers, so the scheduler's scan touches a few
// dense slices instead of K scattered structs.
//
// Equivalence: each machine sees the byte-identical instruction stream,
// step sequence, warmup/measure transition, and snapshot point it would
// see under Machine.RunCtx, so batched results are bit-for-bit equal to
// unbatched ones (asserted by TestRunBatchEquivalence).

// batchStride is how many cycles a machine advances per scheduling
// slice: large enough to amortize the scheduler scan and the tape
// pre-extension lock, small enough to keep cursor spread (and therefore
// resident tape memory) tight. Matches cancelCheckStride so cancellation
// latency is the same as the unbatched loop's.
const batchStride = cancelCheckStride

// SimpointSalt returns the seed salt selecting simpoint region i. The
// offset keeps region 0 distinct from a plain non-simpoint run (salt 0):
// salt participates in ConfigKey, and a zero salt for region 0 would
// alias the two in every salt-keyed path (observer tags, batched-run
// grouping, trace filenames).
func SimpointSalt(i int) uint64 { return uint64(i+1) * 7919 }

// batchRunner holds the shared tape and the per-machine scheduling
// state for one lockstep group.
type batchRunner struct {
	tape    *workload.Tape
	ms      []*Machine             // nil where construction failed
	readers []*workload.TapeReader // nil where construction failed

	// Structure-of-arrays per-machine run state (hot scheduler data).
	phase   []uint8  // 0 warmup, 1 measured, 2 done
	target  []uint64 // retired-instruction count ending the phase
	limit   []uint64 // forward-progress cycle bound for the phase
	savedIv []uint64 // observer interval suppressed during warmup
	consume []uint64 // max oracle records one cycle can consume

	res  []Result
	errs []error

	// Parallel-mode coordination.
	mu      sync.Mutex
	cond    *sync.Cond
	claimed []bool
	live    int
	stopped error
}

const (
	phaseWarmup   = 0
	phaseMeasured = 1
	phaseDone     = 2
)

// newBatchRunner builds the K machines over one shared tape. attach (if
// non-nil) runs per machine after construction, before any stepping —
// the observer hook, mirroring RunSimpointsCtx. Construction failures
// land in errs; surviving machines still run.
func newBatchRunner(cfgs []Config, prog *workload.Program, tape *workload.Tape, attach func(k int, m *Machine)) *batchRunner {
	k := len(cfgs)
	b := &batchRunner{
		tape:    tape,
		ms:      make([]*Machine, k),
		readers: make([]*workload.TapeReader, k),
		phase:   make([]uint8, k),
		target:  make([]uint64, k),
		limit:   make([]uint64, k),
		savedIv: make([]uint64, k),
		consume: make([]uint64, k),
		res:     make([]Result, k),
		errs:    make([]error, k),
		claimed: make([]bool, k),
	}
	b.cond = sync.NewCond(&b.mu)
	for i, cfg := range cfgs {
		r := b.tape.Reader()
		m, err := NewMachineWithSource(cfg, prog, r)
		if err != nil {
			b.errs[i] = err
			b.phase[i] = phaseDone
			r.Close()
			continue
		}
		b.ms[i] = m
		b.readers[i] = r
		b.live++
		if attach != nil {
			attach(i, m)
		}
		b.consume[i] = uint64(cfg.BlocksPerCycle)*isa.InstrPerBlock + 1
		maxInstr := cfg.MaxInstructions
		if maxInstr == 0 {
			maxInstr = 1_000_000
		}
		if w := cfg.WarmupInstructions; w > 0 {
			b.phase[i] = phaseWarmup
			b.target[i] = m.BE.Stats.Retired + w
			b.limit[i] = m.cycle + w*400 + 1_000_000
			// Suppress interval samples during warmup, exactly as
			// Machine.RunCtx does.
			if m.obs != nil {
				b.savedIv[i], m.obs.Interval = m.obs.Interval, 0
			}
			m.notePhase("warmup")
		} else {
			b.phase[i] = phaseMeasured
			b.target[i] = m.BE.Stats.Retired + maxInstr
			b.limit[i] = m.cycle + maxInstr*400 + 1_000_000
			m.notePhase("measure")
		}
	}
	return b
}

// maybeTransition advances machine k across phase boundaries when its
// retire target is met, replicating RunCtx's sequence exactly: warmup →
// ResetStats, restore observer interval, arm the measured region;
// measured → flush observer, snapshot, done. Returns true once done.
func (b *batchRunner) maybeTransition(k int) bool {
	m := b.ms[k]
	for m.BE.Stats.Retired >= b.target[k] {
		switch b.phase[k] {
		case phaseWarmup:
			m.ResetStats()
			if m.obs != nil {
				m.obs.Interval = b.savedIv[k]
			}
			maxInstr := m.cfg.MaxInstructions
			if maxInstr == 0 {
				maxInstr = 1_000_000
			}
			b.phase[k] = phaseMeasured
			b.target[k] = m.BE.Stats.Retired + maxInstr
			b.limit[k] = m.cycle + maxInstr*400 + 1_000_000
			m.notePhase("measure")
		case phaseMeasured:
			m.obsFlush()
			b.res[k] = m.Snapshot()
			b.phase[k] = phaseDone
			b.readers[k].Close()
			m.notePhase("done")
			return true
		default:
			return true
		}
	}
	return false
}

// advance steps machine k for up to stride cycles (stopping early when
// its run completes). The tape is pre-extended past everything the
// slice can consume, so the cycle loop itself allocates nothing — the
// zero-alloc Machine.Step invariant holds in batch mode.
func (b *batchRunner) advance(k, stride int) {
	if b.maybeTransition(k) {
		return
	}
	m := b.ms[k]
	b.tape.EnsureAhead(m.Oracle.Cursor() + uint64(stride)*b.consume[k])
	for i := 0; i < stride; i++ {
		m.Step()
		if m.cycle > b.limit[k] {
			panic(fmt.Sprintf("sim: no forward progress (retired %d of target %d at cycle %d)",
				m.BE.Stats.Retired, b.target[k], m.cycle))
		}
		if m.BE.Stats.Retired >= b.target[k] && b.maybeTransition(k) {
			return
		}
	}
}

// cursor returns machine k's stream position (the scheduling key).
func (b *batchRunner) cursor(k int) uint64 { return b.ms[k].Oracle.Cursor() }

// run drives every live machine to completion, smallest stream cursor
// first. Serial below parallelism 2; otherwise a worker pool in which
// each worker repeatedly claims the furthest-behind unclaimed machine.
// ctx cancellation (polled once per slice, like the unbatched loop)
// abandons unfinished machines with ctx.Err().
func (b *batchRunner) run(ctx context.Context, parallelism int) {
	poll := ctx.Done() != nil
	if parallelism > b.live {
		parallelism = b.live
	}
	if parallelism <= 1 {
		for {
			if poll {
				if err := ctx.Err(); err != nil {
					b.abandon(err)
					return
				}
			}
			k := -1
			var best uint64
			for i := range b.ms {
				if b.phase[i] == phaseDone {
					continue
				}
				if c := b.cursor(i); k < 0 || c < best {
					k, best = i, c
				}
			}
			if k < 0 {
				return
			}
			b.advance(k, batchStride)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.worker(ctx, poll)
		}()
	}
	wg.Wait()
	if b.stopped != nil {
		b.abandon(b.stopped)
	}
}

// worker claims the furthest-behind unclaimed live machine, advances it
// one slice, and repeats until no live machines remain. Machine state is
// only touched while claimed; phase[i] of an unclaimed machine is
// stable, so the scan under b.mu is race-free.
func (b *batchRunner) worker(ctx context.Context, poll bool) {
	b.mu.Lock()
	for {
		if b.stopped != nil || b.live == 0 {
			b.mu.Unlock()
			return
		}
		k := -1
		var best uint64
		for i := range b.ms {
			if b.claimed[i] || b.phase[i] == phaseDone {
				continue
			}
			if c := b.cursor(i); k < 0 || c < best {
				k, best = i, c
			}
		}
		if k < 0 {
			// Every live machine is claimed by another worker.
			b.cond.Wait()
			continue
		}
		b.claimed[k] = true
		b.mu.Unlock()

		if poll {
			if err := ctx.Err(); err != nil {
				b.mu.Lock()
				b.claimed[k] = false
				if b.stopped == nil {
					b.stopped = err
				}
				b.cond.Broadcast()
				b.mu.Unlock()
				return
			}
		}
		b.advance(k, batchStride)

		b.mu.Lock()
		b.claimed[k] = false
		if b.phase[k] == phaseDone {
			b.live--
		}
		b.cond.Broadcast()
	}
}

// abandon marks every unfinished machine with err (cancellation).
func (b *batchRunner) abandon(err error) {
	for i := range b.ms {
		if b.ms[i] != nil && b.phase[i] != phaseDone {
			b.errs[i] = err
			b.phase[i] = phaseDone
			b.readers[i].Close()
		}
	}
}

// RunBatch steps K configurations in lockstep over one shared
// architectural stream and returns per-config results. All
// configurations must describe the same workload image and seed salt
// (the stream identity); everything else — mechanism, FTQ geometry,
// cache sizes, warmup/measure lengths — may differ per config. Errors
// are per config: an invalid cell fails alone while the rest of the
// batch runs.
func RunBatch(cfgs []Config, parallelism int) ([]Result, []error) {
	return RunBatchCtx(context.Background(), cfgs, parallelism, nil)
}

// RunBatchCtx is RunBatch with cooperative cancellation and a
// per-machine attach hook (observers, mirroring RunSimpointsCtx's).
func RunBatchCtx(ctx context.Context, cfgs []Config, parallelism int, attach func(k int, m *Machine)) ([]Result, []error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, len(cfgs))
	fail := func(err error) ([]Result, []error) {
		for i := range errs {
			errs[i] = err
		}
		return make([]Result, len(cfgs)), errs
	}
	sk := SourceKey(cfgs[0])
	for i := 1; i < len(cfgs); i++ {
		if SourceKey(cfgs[i]) != sk {
			return fail(fmt.Errorf("sim: batch mixes workload sources (%q vs %q)",
				cfgs[i].Workload.Name, cfgs[0].Workload.Name))
		}
		if cfgs[i].SeedSalt != cfgs[0].SeedSalt {
			return fail(fmt.Errorf("sim: batch mixes seed salts (%d vs %d)",
				cfgs[i].SeedSalt, cfgs[0].SeedSalt))
		}
	}
	prog, err := workloadImage(cfgs[0])
	if err != nil {
		return fail(err)
	}
	var tape *workload.Tape
	if cfgs[0].TraceRef != "" {
		// Trace-driven batch: the tape replays the registered source's
		// recorded stream instead of a live executor, and everything
		// downstream — lockstep scheduling, chunk trimming, equivalence
		// to the serial path — is unchanged.
		src, ok := workload.SourceByKey(sk)
		if !ok {
			return fail(fmt.Errorf("sim: trace %s not registered (load it with trace.LoadSource + workload.RegisterSource)", cfgs[0].TraceRef))
		}
		stream, err := src.Stream(cfgs[0].SeedSalt)
		if err != nil {
			return fail(err)
		}
		tape = workload.NewTapeFromStream(stream)
	} else {
		tape = workload.NewTape(prog, cfgs[0].SeedSalt)
	}
	b := newBatchRunner(cfgs, prog, tape, attach)
	b.run(ctx, parallelism)
	return b.res, b.errs
}

// RunBatchSimpoints runs each configuration over n simpoint regions
// (seed salts SimpointSalt(i), matching RunSimpointsCtx) with the
// machines of each region batched in lockstep, and returns the
// per-config aggregate across regions. attach (if non-nil) is invoked
// per (region, config) machine before it runs.
func RunBatchSimpoints(ctx context.Context, cfgs []Config, n, parallelism int, attach func(region, k int, m *Machine)) ([]Result, []error) {
	if n <= 0 {
		n = 1
	}
	k := len(cfgs)
	per := make([][]Result, k)
	errs := make([]error, k)
	rcfgs := make([]Config, k)
	for region := 0; region < n; region++ {
		copy(rcfgs, cfgs)
		for i := range rcfgs {
			if rcfgs[i].TraceRef == "" {
				rcfgs[i].SeedSalt = SimpointSalt(region)
			}
		}
		var at func(int, *Machine)
		if attach != nil {
			r := region
			at = func(i int, m *Machine) { attach(r, i, m) }
		}
		res, rerrs := RunBatchCtx(ctx, rcfgs, parallelism, at)
		for i := 0; i < k; i++ {
			switch {
			case rerrs[i] != nil:
				if errs[i] == nil {
					errs[i] = rerrs[i]
				}
			case errs[i] == nil:
				per[i] = append(per[i], res[i])
			}
		}
	}
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		if errs[i] == nil {
			out[i] = Aggregate(per[i])
		}
	}
	return out, errs
}
