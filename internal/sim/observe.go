package sim

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"udpsim/internal/obs"
)

// This file wires the observability layer into the sim driver.
// Observability is attached *after* machine construction (AttachObserver)
// rather than through Config, keeping Config — and therefore ConfigKey
// and the experiment result cache — unchanged: an observed run simulates
// the exact same machine as an unobserved one.

// AttachObserver connects an observer to the machine and threads it
// through the frontend and the active mechanism. Passing nil detaches.
// The observer is stamped with the machine's run tags. An observer must
// not be shared between concurrently running machines; fan-in happens
// at the sink layer (obs.MetricsWriter serializes writers).
func (m *Machine) AttachObserver(o *obs.Observer) {
	m.obs = o
	m.FE.Obs = o
	m.Hier.Obs = o
	if m.mech.Observe != nil {
		m.mech.Observe(o)
	}
	if o == nil {
		return
	}
	o.Workload = m.cfg.Workload.Name
	o.Mechanism = string(m.cfg.Mechanism)
	o.Salt = m.cfg.SeedSalt
	o.SetNow(m.cycle)
	m.obsRearm()
}

// Observer returns the attached observer (nil when observability is
// disabled).
func (m *Machine) Observer() *obs.Observer { return m.obs }

// obsRearm re-baselines the interval sampler's deltas against the
// machine's current counters (attach time and end of warmup).
func (m *Machine) obsRearm() {
	m.obsLastCycle = m.cycle
	m.obsLastRetired = m.BE.Stats.Retired
	m.obsLastMisses = m.FE.ICache().Stats.Misses
	m.obsLastEmitted = m.FE.Stats.PrefetchesEmitted
	m.obsLastUseful = m.FE.Stats.PrefetchUseful
	m.obsLastUseless = m.FE.Stats.PrefetchUseless
	m.obsLastDRAMQueue = m.Hier.Stats.DRAMQueueCycles
	m.obsLastFillQueue = m.Hier.Stats.FillQueueCycles()
	m.obsLastRetries = m.Hier.Stats.DemandRetries() + m.FE.Stats.DemandMissRetries
	m.obsLastDrops = m.Hier.Stats.PrefetchDrops() + m.FE.Stats.PrefetchBackpressure
}

// obsTick runs once per cycle when an observer is attached: it advances
// the observer's cycle clock and closes interval samples.
func (m *Machine) obsTick() {
	m.obs.SetNow(m.cycle)
	if m.obs.Interval == 0 {
		return
	}
	if m.cycle-m.obsLastCycle >= m.obs.Interval {
		m.obsSample()
	}
}

// obsSample closes the current interval and emits one sample.
func (m *Machine) obsSample() {
	cycles := m.cycle - m.obsLastCycle
	if cycles == 0 {
		return
	}
	retired := m.BE.Stats.Retired
	misses := m.FE.ICache().Stats.Misses
	emitted := m.FE.Stats.PrefetchesEmitted
	useful := m.FE.Stats.PrefetchUseful
	useless := m.FE.Stats.PrefetchUseless
	dramQ := m.Hier.Stats.DRAMQueueCycles
	fillQ := m.Hier.Stats.FillQueueCycles()
	retries := m.Hier.Stats.DemandRetries() + m.FE.Stats.DemandMissRetries
	drops := m.Hier.Stats.PrefetchDrops() + m.FE.Stats.PrefetchBackpressure

	s := obs.IntervalSample{
		Workload:     m.obs.Workload,
		Mechanism:    m.obs.Mechanism,
		Salt:         m.obs.Salt,
		Cycle:        m.cycle,
		Retired:      retired - m.obsLastRetired,
		RetiredTotal: retired,
		FTQDepth:     m.FE.Queue().Cap(),
		FTQOcc:       m.FE.Queue().Len(),
		Emitted:      emitted - m.obsLastEmitted,

		DRAMQueueCycles: dramQ - m.obsLastDRAMQueue,
		FillQueueCycles: fillQ - m.obsLastFillQueue,
		DemandRetries:   retries - m.obsLastRetries,
		PrefetchDrops:   drops - m.obsLastDrops,
	}
	s.IPC = float64(s.Retired) / float64(cycles)
	if s.Retired > 0 {
		s.IcacheMPKI = float64(misses-m.obsLastMisses) / float64(s.Retired) * 1000
	}
	du := useful - m.obsLastUseful
	dl := useless - m.obsLastUseless
	if du+dl > 0 {
		s.Accuracy = float64(du) / float64(du+dl)
	}
	m.obs.AddSample(s)

	m.obsLastCycle = m.cycle
	m.obsLastRetired = retired
	m.obsLastMisses = misses
	m.obsLastEmitted = emitted
	m.obsLastUseful = useful
	m.obsLastUseless = useless
	m.obsLastDRAMQueue = dramQ
	m.obsLastFillQueue = fillQ
	m.obsLastRetries = retries
	m.obsLastDrops = drops
}

// obsFlush closes the final partial interval at the end of a measured
// run, so the per-sample retired deltas sum exactly to
// Result.Instructions.
func (m *Machine) obsFlush() {
	if m.obs == nil || m.obs.Interval == 0 {
		return
	}
	m.obsSample()
}

// RunSimpointsObserved is RunSimpointsParallel with a per-region attach
// callback: attach(region, machine) is invoked after each region's
// machine is built and before it runs, giving the caller a place to
// AttachObserver with per-region tracers/lifecycles (observers must not
// be shared across machines). A nil attach degrades to the plain
// parallel runner.
func RunSimpointsObserved(cfg Config, n, parallelism int, attach func(region int, m *Machine)) ([]Result, Result, error) {
	return RunSimpointsCtx(context.Background(), cfg, n, parallelism, attach)
}

// RunSimpointsCtx is the fully-featured simpoint runner: parallel
// regions, per-region observer attach, and cooperative cancellation.
// When ctx is canceled the in-flight regions stop within a few
// thousand simulated cycles (see Machine.RunCtx), regions not yet
// started are skipped, and the joined error contains ctx.Err() — so a
// daemon job timeout or client cancellation actually frees the worker
// pool instead of simulating to completion.
func RunSimpointsCtx(ctx context.Context, cfg Config, n, parallelism int, attach func(region int, m *Machine)) ([]Result, Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		n = 1
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	prog, err := workloadImage(cfg)
	if err != nil {
		return nil, Result{}, err
	}
	if parallelism > n {
		parallelism = n
	}
	// Background contexts never cancel; skip the per-cycle polling
	// entirely so the common path stays byte-identical to the seed.
	runCtx := ctx
	if ctx.Done() == nil {
		runCtx = nil
	}
	results := make([]Result, n)
	errs := make([]error, n)
	runRegion := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		c := cfg
		if c.TraceRef == "" {
			// Trace-driven configs replay one recorded region; the
			// salt is part of the trace and must not be re-derived.
			c.SeedSalt = SimpointSalt(i)
		}
		m, err := NewMachineWithProgram(c, prog)
		if err != nil {
			errs[i] = err
			return
		}
		if attach != nil {
			attach(i, m)
		}
		results[i], errs[i] = m.RunCtx(runCtx)
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			runRegion(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, parallelism)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runRegion(i)
			}(i)
		}
		wg.Wait()
	}
	if err := errors.Join(errs...); err != nil {
		return nil, Result{}, err
	}
	return results, Aggregate(results), nil
}
