// Package sim assembles the full machine — synthetic workload,
// TAGE-SC-L, BTB, decoupled frontend with FDIP, out-of-order backend,
// and the cache/memory hierarchy — configured per Table II of the
// paper, and runs cycle-accurate simulations under a selected
// mechanism (baseline FDIP, perfect icache, the UFTQ variants, UDP,
// the EIP comparator, and the no-prefetch lower bound).
package sim

import (
	"context"
	"fmt"

	"udpsim/internal/backend"
	"udpsim/internal/bp"
	"udpsim/internal/btb"
	"udpsim/internal/cache"
	"udpsim/internal/core"
	"udpsim/internal/eip"
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
	"udpsim/internal/memory"
	"udpsim/internal/obs"
	"udpsim/internal/workload"
)

// The Mechanism type, its constants, and the plugin registry that
// replaced the old hand-maintained mechanism switch live in
// mechanisms.go and registry.go.

// Config is a full simulation configuration. NewConfig supplies the
// paper's Table II values; tests and sweeps override single fields.
type Config struct {
	Workload  workload.Profile
	Mechanism Mechanism

	// SeedSalt selects the simpoint: different salts replay different
	// dynamic phases of the same static image.
	SeedSalt uint64

	// TraceRef, when non-empty, makes this a trace-driven configuration:
	// it is the hex SHA-256 of a UDPT2 trace file whose Source must be
	// registered (workload.RegisterSource) before machines are built.
	// The image and instruction stream then come from the trace instead
	// of the synthetic generator, Workload carries only the display
	// name, and the cache key is derived from the content hash —
	// consistent with the content-addressed result store, so daemon
	// dedup, replication and cluster sharding work unchanged.
	TraceRef string

	// MaxInstructions ends the run after this many retired
	// instructions.
	MaxInstructions uint64
	// WarmupInstructions are simulated first and excluded from stats.
	WarmupInstructions uint64

	// Frontend.
	FTQDepth       int
	FTQPhysMax     int
	BlocksPerCycle int
	ScanPerCycle   int
	FetchWidth     int
	ICacheBytes    int
	ICacheWays     int
	IMSHRs         int

	// Branch prediction.
	Tage            bp.TageConfig
	BTBEntries      int
	BTBWays         int
	IndirectEntries int
	RASEntries      int

	// Backend.
	Width       int
	ROBSize     int
	RSSize      int
	ALUs        int
	LoadPorts   int
	StorePorts  int
	LoadBuffer  int
	StoreBuffer int

	// Uncore.
	L1DBytes        int
	L1DWays         int
	L2Bytes         int
	L2Ways          int
	LLCBytes        int
	LLCWays         int
	L1DLatency      int
	L2Latency       int
	LLCLatency      int
	DRAMLatency     int
	DRAMBurstCycles int
	StreamPF        bool
	// Per-level miss-status holding registers (fill buffers): how many
	// fills may be in flight at each level. Demands rejected by a full
	// file retry; prefetches are dropped (counted as backpressure).
	L1DMSHRs int
	L2MSHRs  int
	LLCMSHRs int
	// Per-level fill-port occupancy in cycles: each fill into the level
	// holds its (single) fill port this long, serializing bursts of
	// fills and charging prefetch traffic a bandwidth cost.
	L1DFillCycles int
	L2FillCycles  int
	LLCFillCycles int
	// DRAMPrefetchBacklog drops prefetch fills whose projected DRAM
	// queueing delay exceeds this many cycles (demands are never
	// throttled). Negative disables the throttle; zero picks the
	// memory package's default. See memory.Config.DRAMPrefetchBacklog.
	DRAMPrefetchBacklog int

	// Mechanism knobs.
	UFTQ core.UFTQConfig
	UDP  core.UDPConfig
	EIP  eip.Config

	// PredecodeBTBFill enables Boomerang/Confluence-style BTB filling
	// from prefetched lines (an orthogonal technique the paper cites;
	// composes with any mechanism).
	PredecodeBTBFill bool
}

// NewConfig returns the Table II configuration for a workload under a
// mechanism. The empty mechanism is normalized to MechBaseline so the
// two spellings share one result-cache key.
func NewConfig(w workload.Profile, m Mechanism) Config {
	return Config{
		Workload:  w,
		Mechanism: NormalizeMechanism(m),

		MaxInstructions:    2_000_000,
		WarmupInstructions: 200_000,

		FTQDepth:       32,
		FTQPhysMax:     128,
		BlocksPerCycle: 2,
		ScanPerCycle:   2,
		FetchWidth:     6,
		ICacheBytes:    32 * 1024,
		ICacheWays:     8,
		IMSHRs:         16,

		Tage:            bp.DefaultTageConfig(),
		BTBEntries:      8192,
		BTBWays:         8,
		IndirectEntries: 2048,
		RASEntries:      32,

		Width:       6,
		ROBSize:     352,
		RSSize:      125,
		ALUs:        4,
		LoadPorts:   2,
		StorePorts:  2,
		LoadBuffer:  64,
		StoreBuffer: 64,

		L1DBytes:        48 * 1024,
		L1DWays:         12,
		L2Bytes:         512 * 1024,
		L2Ways:          8,
		LLCBytes:        2 * 1024 * 1024,
		LLCWays:         16,
		L1DLatency:      4,
		L2Latency:       13,
		LLCLatency:      36,
		DRAMLatency:     150,
		DRAMBurstCycles: 10,
		StreamPF:        true,
		L1DMSHRs:        16,
		L2MSHRs:         32,
		LLCMSHRs:        64,
		L1DFillCycles:   1,
		L2FillCycles:    1,
		LLCFillCycles:   1,
		// Defer to the memory package's default throttle policy.
		DRAMPrefetchBacklog: 0,

		UFTQ: core.DefaultUFTQConfig(core.UFTQATRAUR),
		UDP:  core.DefaultUDPConfig(),
		EIP:  eip.DefaultConfig(),
	}
}

// Machine is one assembled simulated core.
type Machine struct {
	cfg  Config
	prog *workload.Program
	src  frontend.InstrSource

	Dir    *bp.Tage
	BTB    *btb.BTB
	IBTB   *btb.IndirectBTB
	Hier   *memory.Hierarchy
	FE     *frontend.Frontend
	BE     *backend.Backend
	Oracle *frontend.OracleStream

	// mech is the active mechanism's binding bundle (see registry.go);
	// the UDP/UFTQ/EIP accessors expose its typed views.
	mech Bindings

	// resetters is the fixed walk ResetStats takes over every component
	// that accumulates statistics, assembled at construction.
	resetters []StatsResetter

	cycle uint64

	// Observability (attached post-construction via AttachObserver so
	// Config — and the result-cache key — stays unchanged). The
	// obsLast* fields are the interval sampler's delta baselines.
	obs              *obs.Observer
	obsLastCycle     uint64
	obsLastRetired   uint64
	obsLastMisses    uint64
	obsLastEmitted   uint64
	obsLastUseful    uint64
	obsLastUseless   uint64
	obsLastDRAMQueue uint64
	obsLastFillQueue uint64
	obsLastRetries   uint64
	obsLastDrops     uint64

	// phaseHook, when set, is called once per run-phase transition with
	// "warmup", "measure" and "done" — O(1) per run, never per cycle, so
	// the zero-alloc cycle-loop gate is unaffected. The service layer
	// uses it to put warmup/measure spans on the daemon's job timeline.
	phaseHook func(phase string)
}

// SetPhaseHook installs (or clears, with nil) the run-phase callback.
// Like AttachObserver it is post-construction state and not part of
// Config, so it never perturbs result-cache keys.
func (m *Machine) SetPhaseHook(hook func(phase string)) { m.phaseHook = hook }

// notePhase fires the phase hook if one is installed.
func (m *Machine) notePhase(phase string) {
	if m.phaseHook != nil {
		m.phaseHook(phase)
	}
}

// NewMachine builds and wires a machine. The program image is generated
// from cfg.Workload (use NewMachineWithProgram to share an image across
// runs — generation of the multi-MB images is the expensive part).
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.TraceRef != "" {
		prog, err := workloadImage(cfg)
		if err != nil {
			return nil, err
		}
		return NewMachineWithProgram(cfg, prog)
	}
	prog, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, err
	}
	return NewMachineWithProgram(cfg, prog)
}

// NewMachineWithProgram wires a machine over an already-generated
// program image, executing the workload live.
func NewMachineWithProgram(cfg Config, prog *workload.Program) (*Machine, error) {
	return NewMachineWithSource(cfg, prog, nil)
}

// NewMachineWithSource wires a machine over a program image with a
// custom architectural instruction source (e.g. a trace replayer); a
// nil source runs the live executor with cfg.SeedSalt.
func NewMachineWithSource(cfg Config, prog *workload.Program, src frontend.InstrSource) (*Machine, error) {
	cfg.Mechanism = NormalizeMechanism(cfg.Mechanism)
	if err := validateGeometry(cfg); err != nil {
		return nil, err
	}
	desc, ok := LookupMechanism(cfg.Mechanism)
	if !ok {
		return nil, fmt.Errorf("sim: unknown mechanism %q (registered: %s)",
			cfg.Mechanism, MechanismNames())
	}
	m := &Machine{cfg: cfg, prog: prog}

	m.Dir = bp.NewTage(cfg.Tage)
	m.BTB = btb.New(btb.Config{Entries: cfg.BTBEntries, Ways: cfg.BTBWays})
	m.IBTB = btb.NewIndirect(cfg.IndirectEntries)

	m.Hier = memory.New(memory.Config{
		L1D: cache.Config{
			Name: "L1D", SizeBytes: cfg.L1DBytes, Ways: cfg.L1DWays,
			Policy: cache.LRU, HitLatency: cfg.L1DLatency,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways, Policy: cache.LRU,
		},
		LLC: cache.Config{
			Name: "LLC", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays, Policy: cache.LRU,
		},
		L2Latency:        cfg.L2Latency,
		LLCLatency:       cfg.LLCLatency,
		DRAMLatency:      cfg.DRAMLatency,
		DRAMBurstCycles:  cfg.DRAMBurstCycles,
		StreamPrefetcher: cfg.StreamPF,
		L1DMSHRs:         cfg.L1DMSHRs,
		L2MSHRs:          cfg.L2MSHRs,
		LLCMSHRs:         cfg.LLCMSHRs,
		L1DFillCycles:    cfg.L1DFillCycles,
		L2FillCycles:     cfg.L2FillCycles,
		LLCFillCycles:    cfg.LLCFillCycles,

		DRAMPrefetchBacklog: cfg.DRAMPrefetchBacklog,
	})

	if src == nil {
		if cfg.TraceRef != "" {
			s, ok := workload.SourceByKey("trace:" + cfg.TraceRef)
			if !ok {
				return nil, fmt.Errorf("sim: trace %s not registered (load it with trace.LoadSource + workload.RegisterSource)", cfg.TraceRef)
			}
			stream, err := s.Stream(cfg.SeedSalt)
			if err != nil {
				return nil, err
			}
			src = stream
		} else {
			src = workload.NewExecutor(prog, cfg.SeedSalt)
		}
	}
	m.src = src
	m.Oracle = frontend.NewOracleStream(src)

	feCfg := frontend.Config{
		FTQPhysMax:     cfg.FTQPhysMax,
		FTQDepth:       cfg.FTQDepth,
		BlocksPerCycle: cfg.BlocksPerCycle,
		ScanPerCycle:   cfg.ScanPerCycle,
		FetchWidth:     cfg.FetchWidth,
		MSHRs:          cfg.IMSHRs,
		RASEntries:     cfg.RASEntries,
		L1I: cache.Config{
			Name: "L1I", SizeBytes: cfg.ICacheBytes, Ways: cfg.ICacheWays,
			Policy: cache.LRU, HitLatency: 3,
		},
		PredecodeBTBFill: cfg.PredecodeBTBFill,
		InFlightHint:     cfg.ROBSize,
	}

	bind, err := desc.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: building mechanism %q: %w", cfg.Mechanism, err)
	}
	m.mech = bind
	if bind.MutateFrontend != nil {
		bind.MutateFrontend(&feCfg)
	}

	m.FE = frontend.New(feCfg, frontend.Deps{
		Program:  prog,
		Oracle:   m.Oracle,
		Dir:      m.Dir,
		BTB:      m.BTB,
		IndirBTB: m.IBTB,
		Hier:     m.Hier,
		Tuner:    bind.Tuner,
		External: bind.External,
	})
	m.BE = backend.New(backend.Config{
		Width:       cfg.Width,
		ROBSize:     cfg.ROBSize,
		RSSize:      cfg.RSSize,
		ALUs:        cfg.ALUs,
		LoadPorts:   cfg.LoadPorts,
		StorePorts:  cfg.StorePorts,
		LoadBuffer:  cfg.LoadBuffer,
		StoreBuffer: cfg.StoreBuffer,
	}, m.FE, m.Hier)

	// Everything that accumulates statistics registers a resetter here;
	// ResetStats walks this list instead of hand-naming fields.
	m.resetters = []StatsResetter{m.FE, m.BE, m.Hier, m.BTB}
	if bind.Stats != nil {
		m.resetters = append(m.resetters, bind.Stats)
	}
	return m, nil
}

// Mech returns the active mechanism's binding bundle.
func (m *Machine) Mech() Bindings { return m.mech }

// UDP returns the active UDP instance (nil unless a UDP-family
// mechanism is selected).
func (m *Machine) UDP() *core.UDP { return m.mech.UDP }

// UFTQ returns the active UFTQ controller (nil unless a UFTQ-family
// mechanism is selected).
func (m *Machine) UFTQ() *core.UFTQ { return m.mech.UFTQ }

// EIP returns the active EIP comparator (nil unless mechanism "eip").
func (m *Machine) EIP() *eip.EIP { return m.mech.EIP }

// validateGeometry checks every cache geometry in the configuration up
// front and returns an error instead of letting the cache constructors
// panic deep inside memory.New/frontend.New. Sweeps over icache (and
// other) sizes hit this with non-power-of-two set counts: e.g. 48 KiB
// at the default 8 ways implies 96 sets, which is not indexable.
func validateGeometry(cfg Config) error {
	caches := []cache.Config{
		{Name: "L1I", SizeBytes: cfg.ICacheBytes, Ways: cfg.ICacheWays},
		{Name: "L1D", SizeBytes: cfg.L1DBytes, Ways: cfg.L1DWays},
		{Name: "L2", SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways},
		{Name: "LLC", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays},
	}
	for _, c := range caches {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("sim: invalid %s geometry (size %d, ways %d): %w; pick ways so size/(ways*%d) is a power of two (see sim.AutoWays)",
				c.Name, c.SizeBytes, c.Ways, err, isa.LineBytes)
		}
	}
	for _, k := range []struct {
		name string
		v    int
	}{
		{"IMSHRs", cfg.IMSHRs},
		{"L1DMSHRs", cfg.L1DMSHRs},
		{"L2MSHRs", cfg.L2MSHRs},
		{"LLCMSHRs", cfg.LLCMSHRs},
		{"L1DFillCycles", cfg.L1DFillCycles},
		{"L2FillCycles", cfg.L2FillCycles},
		{"LLCFillCycles", cfg.LLCFillCycles},
	} {
		if k.v < 0 {
			return fmt.Errorf("sim: %s must be >= 0 (0 selects the default), got %d", k.name, k.v)
		}
	}
	return nil
}

// AutoWays picks an associativity for a cache of sizeBytes such that
// the implied set count (sizeBytes / (ways * line)) is a power of two,
// preferring the smallest valid ways ≥ 8 (the Table II icache
// associativity class). For power-of-two sizes this returns 8; for
// 40 KiB it returns 10, for 48 KiB it returns 12, etc. Returns 0 when
// sizeBytes is not a positive multiple of the line size (no valid
// geometry exists).
func AutoWays(sizeBytes int) int {
	if sizeBytes <= 0 || sizeBytes%isa.LineBytes != 0 {
		return 0
	}
	lines := sizeBytes / isa.LineBytes
	// ways must be odd(lines) * 2^j so that sets = lines/ways is a
	// power of two.
	odd := lines
	for odd%2 == 0 {
		odd /= 2
	}
	ways := odd
	for ways < 8 && ways*2 <= lines {
		ways *= 2
	}
	return ways
}

// Program returns the machine's static image.
func (m *Machine) Program() *workload.Program { return m.prog }

// Cycle returns the current simulated cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Step advances the machine one cycle. The hierarchy ticks first so
// fills whose data arrives this cycle become visible before the
// frontend and backend look for them.
func (m *Machine) Step() {
	m.cycle++
	m.Hier.Tick(m.cycle)
	m.FE.Cycle(m.cycle)
	m.BE.Cycle(m.cycle)
	if m.obs != nil {
		m.obsTick()
	}
}

// Run simulates until MaxInstructions retire (after warmup) and
// returns the result. A zero MaxInstructions runs 1M instructions.
func (m *Machine) Run() Result {
	r, err := m.RunCtx(nil)
	if err != nil {
		// Unreachable: a nil context never cancels.
		panic(err)
	}
	return r
}

// RunCtx is Run with cooperative cancellation: the cycle loop polls
// ctx every cancelCheckStride cycles (cheap — one atomic load every few
// microseconds of simulation) and returns ctx's error as soon as it is
// observed, discarding the partial region. A nil or background context
// degrades to the plain uncancellable Run.
func (m *Machine) RunCtx(ctx context.Context) (res Result, err error) {
	// Trace replay has no per-cycle error path, so cancellation reaches
	// it through a duck-typed context on the stream plus a panic/recover
	// abort protocol; the synthetic executor implements neither and the
	// run loop below is untouched (bit-identical to the uncancellable
	// path).
	if ctx != nil && ctx.Done() != nil {
		if cs, ok := m.src.(interface{ SetRunContext(context.Context) }); ok {
			cs.SetRunContext(ctx)
			defer cs.SetRunContext(nil)
			defer func() {
				if r := recover(); r != nil {
					ab, ok := r.(interface{ RunAborted() error })
					if !ok {
						panic(r)
					}
					res, err = Result{}, ab.RunAborted()
				}
			}()
		}
	}
	maxInstr := m.cfg.MaxInstructions
	if maxInstr == 0 {
		maxInstr = 1_000_000
	}
	if w := m.cfg.WarmupInstructions; w > 0 {
		// Suppress interval samples during warmup so a streaming metrics
		// sink sees only measured-region rows (their retired deltas must
		// sum to Result.Instructions).
		var iv uint64
		if m.obs != nil {
			iv, m.obs.Interval = m.obs.Interval, 0
		}
		m.notePhase("warmup")
		if err := m.runInstructions(w, ctx); err != nil {
			return Result{}, err
		}
		m.ResetStats()
		if m.obs != nil {
			m.obs.Interval = iv
		}
	}
	m.notePhase("measure")
	if err := m.runInstructions(maxInstr, ctx); err != nil {
		return Result{}, err
	}
	m.obsFlush()
	m.notePhase("done")
	return m.Snapshot(), nil
}

// cancelCheckStride is how many cycles elapse between context polls in
// the run loop: frequent enough that cancellation latency is a few
// milliseconds of wall time, rare enough that the poll is invisible in
// BenchmarkMachineStep-scale profiles.
const cancelCheckStride = 4096

// RunInstructions advances until n more instructions retire. A safety
// bound of 400 cycles/instruction guards against modelling deadlock.
func (m *Machine) RunInstructions(n uint64) {
	// A nil context never cancels, so the error path is unreachable.
	_ = m.runInstructions(n, nil)
}

func (m *Machine) runInstructions(n uint64, ctx context.Context) error {
	target := m.BE.Stats.Retired + n
	limit := m.cycle + n*400 + 1_000_000
	for m.BE.Stats.Retired < target {
		m.Step()
		if m.cycle > limit {
			panic(fmt.Sprintf("sim: no forward progress (retired %d of target %d at cycle %d)",
				m.BE.Stats.Retired, target, m.cycle))
		}
		if ctx != nil && m.cycle%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResetStats clears all accumulated statistics (end of warmup) while
// preserving microarchitectural state (caches, predictors, learned
// sets). It walks the StatsResetter list assembled at construction —
// frontend, backend, memory hierarchy, BTB, plus whatever the active
// mechanism registered — so a new component only has to implement
// ResetStats and join the list.
func (m *Machine) ResetStats() {
	for _, r := range m.resetters {
		r.ResetStats()
	}
	if m.obs != nil {
		if m.obs.Life != nil {
			m.obs.Life.Reset()
		}
		m.obs.ResetSamples()
		m.obsRearm()
	}
}
