package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Descriptor is a JSON experiment specification, the equivalent of the
// paper artifact's isca.json: a cross product of workloads and
// configurations to simulate, with per-configuration overrides.
//
// Example:
//
//	{
//	  "name": "isca2024-udp",
//	  "workloads": ["mysql", "xgboost"],
//	  "instructions": 500000,
//	  "warmup": 2000000,
//	  "simpoints": 2,
//	  "configs": [
//	    {"label": "baseline", "mechanism": "baseline"},
//	    {"label": "udp", "mechanism": "udp"},
//	    {"label": "ftq64", "mechanism": "baseline", "ftq": 64},
//	    {"label": "smallbtb", "mechanism": "udp", "btb": 1024}
//	  ]
//	}
type Descriptor struct {
	Name         string       `json:"name"`
	Workloads    []string     `json:"workloads"`
	Instructions uint64       `json:"instructions"`
	Warmup       uint64       `json:"warmup"`
	Simpoints    int          `json:"simpoints"`
	Configs      []ConfigSpec `json:"configs"`
}

// ConfigSpec is one machine configuration in a descriptor.
type ConfigSpec struct {
	Label     string `json:"label"`
	Mechanism string `json:"mechanism"`
	// Optional overrides (zero = Table II default).
	FTQ        int `json:"ftq,omitempty"`
	BTB        int `json:"btb,omitempty"`
	ICacheKB   int `json:"icache_kb,omitempty"`
	ICacheWays int `json:"icache_ways,omitempty"`
	// Memory request-path geometry: per-level MSHR file sizes and fill
	// bandwidth (cycles between line installs at a level).
	L1DMSHRs      int `json:"l1d_mshrs,omitempty"`
	L2MSHRs       int `json:"l2_mshrs,omitempty"`
	LLCMSHRs      int `json:"llc_mshrs,omitempty"`
	L2FillCycles  int `json:"l2_fill_cycles,omitempty"`
	LLCFillCycles int `json:"llc_fill_cycles,omitempty"`
	// DRAM prefetch throttle backlog in cycles; negative disables the
	// throttle, zero keeps the default (64 DRAM burst slots).
	DRAMPrefetchBacklog int `json:"dram_prefetch_backlog,omitempty"`
}

// ParseDescriptor reads and validates a JSON descriptor.
func ParseDescriptor(r io.Reader) (*Descriptor, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Descriptor
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("experiments: parsing descriptor: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate reports structural problems.
func (d *Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("experiments: descriptor needs a name")
	}
	if len(d.Configs) == 0 {
		return fmt.Errorf("experiments: descriptor %q has no configs", d.Name)
	}
	if len(d.Workloads) == 0 {
		d.Workloads = append(d.Workloads, workload.Names...)
	}
	for _, w := range d.Workloads {
		if _, ok := workload.ByName(w); !ok {
			return fmt.Errorf("experiments: unknown workload %q", w)
		}
	}
	seen := map[string]bool{}
	for i, c := range d.Configs {
		if c.Label == "" {
			return fmt.Errorf("experiments: config %d has no label", i)
		}
		if seen[c.Label] {
			return fmt.Errorf("experiments: duplicate config label %q", c.Label)
		}
		seen[c.Label] = true
		// Descriptors must name mechanisms explicitly — the empty-string
		// alias for baseline is a programmatic convenience only.
		if _, ok := sim.LookupMechanism(sim.Mechanism(c.Mechanism)); !ok || c.Mechanism == "" {
			return fmt.Errorf("experiments: config %q has unknown mechanism %q (registered: %s)",
				c.Label, c.Mechanism, sim.MechanismNames())
		}
	}
	if d.Instructions == 0 {
		d.Instructions = 500_000
	}
	if d.Simpoints <= 0 {
		d.Simpoints = 1
	}
	return nil
}

// DescriptorResult is one (workload, config) cell of the run.
type DescriptorResult struct {
	Workload string
	Label    string
	Result   sim.Result
}

// RunDescriptor executes the full cross product with up to parallelism
// cells simulated concurrently (<= 0 means GOMAXPROCS); progress (if
// non-nil) receives one line per completed cell, serialized but in
// completion order. Results are always in descriptor (workload-major)
// order regardless of parallelism, and errors across the grid are
// aggregated.
func RunDescriptor(d *Descriptor, progress func(string), parallelism int) ([]DescriptorResult, error) {
	return RunDescriptorObserved(d, progress, parallelism, Options{})
}

// RunDescriptorObserved is RunDescriptor with the observability knobs
// of obsOpts (Interval, Metrics) applied to every simulated cell: each
// region streams interval samples into obsOpts.Metrics. Other obsOpts
// fields are ignored. A zero obsOpts degrades to the plain runner.
func RunDescriptorObserved(d *Descriptor, progress func(string), parallelism int, obsOpts Options) ([]DescriptorResult, error) {
	attach := obsOpts.attach()
	type cell struct {
		workload string
		spec     ConfigSpec
	}
	var cells []cell
	for _, w := range d.Workloads {
		for _, cs := range d.Configs {
			cells = append(cells, cell{workload: w, spec: cs})
		}
	}
	out := make([]DescriptorResult, len(cells))
	err := ForEach(len(cells), parallelism, func(i int) error {
		c := cells[i]
		prof := workload.MustByName(c.workload)
		cfg := sim.NewConfig(prof, sim.Mechanism(c.spec.Mechanism))
		cfg.MaxInstructions = d.Instructions
		cfg.WarmupInstructions = d.Warmup
		if c.spec.FTQ > 0 {
			cfg.FTQDepth = c.spec.FTQ
		}
		if c.spec.BTB > 0 {
			cfg.BTBEntries = c.spec.BTB
		}
		if c.spec.ICacheKB > 0 {
			cfg.ICacheBytes = c.spec.ICacheKB * 1024
			if c.spec.ICacheWays <= 0 {
				// Pick an associativity that keeps the set count a
				// power of two for non-power-of-two sizes.
				cfg.ICacheWays = sim.AutoWays(cfg.ICacheBytes)
			}
		}
		if c.spec.ICacheWays > 0 {
			cfg.ICacheWays = c.spec.ICacheWays
		}
		if c.spec.L1DMSHRs > 0 {
			cfg.L1DMSHRs = c.spec.L1DMSHRs
		}
		if c.spec.L2MSHRs > 0 {
			cfg.L2MSHRs = c.spec.L2MSHRs
		}
		if c.spec.LLCMSHRs > 0 {
			cfg.LLCMSHRs = c.spec.LLCMSHRs
		}
		if c.spec.L2FillCycles > 0 {
			cfg.L2FillCycles = c.spec.L2FillCycles
		}
		if c.spec.LLCFillCycles > 0 {
			cfg.LLCFillCycles = c.spec.LLCFillCycles
		}
		if c.spec.DRAMPrefetchBacklog != 0 { // negative = disable
			cfg.DRAMPrefetchBacklog = c.spec.DRAMPrefetchBacklog
		}
		_, agg, err := sim.RunSimpointsObserved(cfg, d.Simpoints, 1, attach)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", c.workload, c.spec.Label, err)
		}
		out[i] = DescriptorResult{Workload: c.workload, Label: c.spec.Label, Result: agg}
		if progress != nil {
			progressMu.Lock()
			progress(fmt.Sprintf("%s/%s: IPC %.4f", c.workload, c.spec.Label, agg.IPC))
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteCSV emits the descriptor results as a CSV with one row per cell.
func WriteCSV(w io.Writer, results []DescriptorResult) error {
	if _, err := fmt.Fprintln(w, "workload,config,ipc,icache_mpki,branch_mpki,timeliness,onpath_ratio,usefulness,mean_ftq_occ,lost_pki,prefetches,dropped"); err != nil {
		return err
	}
	for _, r := range results {
		res := r.Result
		if _, err := fmt.Fprintf(w, "%s,%s,%.4f,%.2f,%.2f,%.3f,%.3f,%.3f,%.1f,%.0f,%d,%d\n",
			r.Workload, r.Label, res.IPC, res.IcacheMPKI, res.BranchMPKI,
			res.Timeliness, res.OnPathRatio, res.Usefulness,
			res.MeanFTQOcc, res.LostInstrsPKI, res.PrefetchesEmitted, res.PrefetchesDropped); err != nil {
			return err
		}
	}
	return nil
}

// SpeedupTable pivots descriptor results into per-workload speedups
// over a base config label.
func SpeedupTable(results []DescriptorResult, baseLabel string) ([]SpeedupRow, error) {
	base := map[string]sim.Result{}
	for _, r := range results {
		if r.Label == baseLabel {
			base[r.Workload] = r.Result
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("experiments: no results for base label %q", baseLabel)
	}
	byApp := map[string]map[string]float64{}
	for _, r := range results {
		if r.Label == baseLabel {
			continue
		}
		b, ok := base[r.Workload]
		if !ok {
			continue
		}
		if byApp[r.Workload] == nil {
			byApp[r.Workload] = map[string]float64{}
		}
		byApp[r.Workload][r.Label] = r.Result.Speedup(b)
	}
	apps := make([]string, 0, len(byApp))
	for a := range byApp {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	var rows []SpeedupRow
	for _, a := range apps {
		rows = append(rows, SpeedupRow{App: a, Speedups: byApp[a]})
	}
	return rows, nil
}
