package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Descriptor is a JSON experiment specification, the equivalent of the
// paper artifact's isca.json: a cross product of workloads and
// configurations to simulate, with per-configuration overrides.
//
// Example:
//
//	{
//	  "name": "isca2024-udp",
//	  "workloads": ["mysql", "xgboost"],
//	  "instructions": 500000,
//	  "warmup": 2000000,
//	  "simpoints": 2,
//	  "configs": [
//	    {"label": "baseline", "mechanism": "baseline"},
//	    {"label": "udp", "mechanism": "udp"},
//	    {"label": "ftq64", "mechanism": "baseline", "ftq": 64},
//	    {"label": "smallbtb", "mechanism": "udp", "btb": 1024}
//	  ]
//	}
type Descriptor struct {
	Name         string       `json:"name"`
	Workloads    []string     `json:"workloads"`
	Instructions uint64       `json:"instructions"`
	Warmup       uint64       `json:"warmup"`
	Simpoints    int          `json:"simpoints"`
	Configs      []ConfigSpec `json:"configs"`
}

// ConfigSpec is one machine configuration in a descriptor.
type ConfigSpec struct {
	Label     string `json:"label"`
	Mechanism string `json:"mechanism"`
	// Optional overrides (zero = Table II default).
	FTQ        int `json:"ftq,omitempty"`
	BTB        int `json:"btb,omitempty"`
	ICacheKB   int `json:"icache_kb,omitempty"`
	ICacheWays int `json:"icache_ways,omitempty"`
	// Memory request-path geometry: per-level MSHR file sizes and fill
	// bandwidth (cycles between line installs at a level).
	L1DMSHRs      int `json:"l1d_mshrs,omitempty"`
	L2MSHRs       int `json:"l2_mshrs,omitempty"`
	LLCMSHRs      int `json:"llc_mshrs,omitempty"`
	L2FillCycles  int `json:"l2_fill_cycles,omitempty"`
	LLCFillCycles int `json:"llc_fill_cycles,omitempty"`
	// DRAM prefetch throttle backlog in cycles; negative disables the
	// throttle, zero keeps the default (64 DRAM burst slots).
	DRAMPrefetchBacklog int `json:"dram_prefetch_backlog,omitempty"`
}

// FieldError locates one invalid descriptor field: which field (in a
// JSON-pointer-ish spelling like "configs[2].mechanism") and why. The
// structured form exists so the daemon's HTTP layer can map validation
// failures to machine-readable 400 bodies instead of regexing error
// strings.
type FieldError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Reason }

// ValidationError aggregates every structural problem of a descriptor
// (validation does not stop at the first offense, so an API client gets
// the full list in one round trip).
type ValidationError struct {
	Descriptor string       `json:"descriptor,omitempty"`
	Fields     []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	var b strings.Builder
	b.WriteString("experiments: invalid descriptor")
	if e.Descriptor != "" {
		fmt.Fprintf(&b, " %q", e.Descriptor)
	}
	for i, f := range e.Fields {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString("; ")
		}
		b.WriteString(f.Error())
	}
	return b.String()
}

// AsValidationError unwraps err to a *ValidationError if one is in the
// chain (nil otherwise) — the API handler's 400 path.
func AsValidationError(err error) *ValidationError {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ve
	}
	return nil
}

// ParseDescriptor reads and validates a JSON descriptor.
func ParseDescriptor(r io.Reader) (*Descriptor, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Descriptor
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("experiments: parsing descriptor: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate reports structural problems (all of them, as a
// *ValidationError) and applies defaults: empty workloads mean all,
// zero instructions/simpoints get the standard values.
func (d *Descriptor) Validate() error {
	ve := &ValidationError{Descriptor: d.Name}
	bad := func(field, format string, args ...any) {
		ve.Fields = append(ve.Fields, FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if d.Name == "" {
		bad("name", "descriptor needs a name")
	}
	if len(d.Configs) == 0 {
		bad("configs", "descriptor has no configs")
	}
	if len(d.Workloads) == 0 {
		d.Workloads = append(d.Workloads, workload.Names...)
	}
	for i, w := range d.Workloads {
		if _, ok := workload.ByName(w); !ok {
			bad(fmt.Sprintf("workloads[%d]", i), "unknown workload %q (known: %s)",
				w, strings.Join(workload.Names, ", "))
		}
	}
	seen := map[string]bool{}
	for i, c := range d.Configs {
		if c.Label == "" {
			bad(fmt.Sprintf("configs[%d].label", i), "config has no label")
		} else if seen[c.Label] {
			bad(fmt.Sprintf("configs[%d].label", i), "duplicate config label %q", c.Label)
		}
		seen[c.Label] = true
		// Descriptors must name mechanisms explicitly — the empty-string
		// alias for baseline is a programmatic convenience only.
		if _, ok := sim.LookupMechanism(sim.Mechanism(c.Mechanism)); !ok || c.Mechanism == "" {
			bad(fmt.Sprintf("configs[%d].mechanism", i), "unknown mechanism %q (registered: %s)",
				c.Mechanism, sim.MechanismNames())
		}
	}
	if len(ve.Fields) > 0 {
		return ve
	}
	if d.Instructions == 0 {
		d.Instructions = 500_000
	}
	if d.Simpoints <= 0 {
		d.Simpoints = 1
	}
	return nil
}

// DescriptorResult is one (workload, config) cell of the run.
type DescriptorResult struct {
	Workload string
	Label    string
	Result   sim.Result
}

// RunDescriptor executes the full cross product with up to parallelism
// cells simulated concurrently (<= 0 means GOMAXPROCS); progress (if
// non-nil) receives one line per completed cell, serialized but in
// completion order. Results are always in descriptor (workload-major)
// order regardless of parallelism, and errors across the grid are
// aggregated.
func RunDescriptor(d *Descriptor, progress func(string), parallelism int) ([]DescriptorResult, error) {
	return RunDescriptorObserved(d, progress, parallelism, Options{})
}

// apply overwrites cfg with the spec's non-zero overrides.
func (cs ConfigSpec) apply(cfg *sim.Config) {
	if cs.FTQ > 0 {
		cfg.FTQDepth = cs.FTQ
	}
	if cs.BTB > 0 {
		cfg.BTBEntries = cs.BTB
	}
	if cs.ICacheKB > 0 {
		cfg.ICacheBytes = cs.ICacheKB * 1024
		if cs.ICacheWays <= 0 {
			// Pick an associativity that keeps the set count a
			// power of two for non-power-of-two sizes.
			cfg.ICacheWays = sim.AutoWays(cfg.ICacheBytes)
		}
	}
	if cs.ICacheWays > 0 {
		cfg.ICacheWays = cs.ICacheWays
	}
	if cs.L1DMSHRs > 0 {
		cfg.L1DMSHRs = cs.L1DMSHRs
	}
	if cs.L2MSHRs > 0 {
		cfg.L2MSHRs = cs.L2MSHRs
	}
	if cs.LLCMSHRs > 0 {
		cfg.LLCMSHRs = cs.LLCMSHRs
	}
	if cs.L2FillCycles > 0 {
		cfg.L2FillCycles = cs.L2FillCycles
	}
	if cs.LLCFillCycles > 0 {
		cfg.LLCFillCycles = cs.LLCFillCycles
	}
	if cs.DRAMPrefetchBacklog != 0 { // negative = disable
		cfg.DRAMPrefetchBacklog = cs.DRAMPrefetchBacklog
	}
}

// CellConfig builds the full simulation configuration of one
// (workload, config-spec) cell of a validated descriptor — the exact
// Config RunDescriptor simulates for that cell.
func CellConfig(d *Descriptor, workloadName string, cs ConfigSpec) sim.Config {
	prof := workload.MustByName(workloadName)
	cfg := sim.NewConfig(prof, sim.Mechanism(cs.Mechanism))
	cfg.MaxInstructions = d.Instructions
	cfg.WarmupInstructions = d.Warmup
	cs.apply(&cfg)
	return cfg
}

// CellKey returns the canonical result-cache/store key of one cell —
// the address under which the daemon's content-addressed store holds
// (or will hold) the cell's result.
func CellKey(d *Descriptor, workloadName string, cs ConfigSpec) string {
	return CacheKey(CellConfig(d, workloadName, cs), d.Simpoints)
}

// RunDescriptorObserved is RunDescriptor with obsOpts's observability
// knobs (Interval, Metrics, OnSample) applied to every simulated cell
// and obsOpts.Context cancelling the grid. Other obsOpts fields
// (Instructions, Warmup, Simpoints, Workloads) are ignored — the
// descriptor owns those. A zero obsOpts degrades to the plain runner.
//
// Cells run through the engine's memoized, store-backed path
// (Options.run): identical cells across descriptors, figures, or
// concurrent daemon jobs simulate once, and when a persistent result
// store is installed, previously computed cells load from disk. Cached
// and store-served cells emit no interval samples (nothing simulates).
func RunDescriptorObserved(d *Descriptor, progress func(string), parallelism int, obsOpts Options) ([]DescriptorResult, error) {
	type cell struct {
		workload string
		spec     ConfigSpec
	}
	var cells []cell
	for _, w := range d.Workloads {
		for _, cs := range d.Configs {
			cells = append(cells, cell{workload: w, spec: cs})
		}
	}
	// Per-cell engine options: the descriptor's effort knobs, the
	// caller's observability hooks, no engine-level progress (the
	// descriptor layer prints its own labeled lines below).
	cellOpts := Options{
		Instructions: d.Instructions,
		Warmup:       d.Warmup,
		Simpoints:    d.Simpoints,
		Context:      obsOpts.Context,
		Interval:     obsOpts.Interval,
		Metrics:      obsOpts.Metrics,
		OnSample:     obsOpts.OnSample,
	}
	out := make([]DescriptorResult, len(cells))
	err := ForEachCtx(cellOpts.ctx(), len(cells), parallelism, func(i int) error {
		c := cells[i]
		cfg := CellConfig(d, c.workload, c.spec)
		agg, err := cellOpts.runConfig(c.workload, sim.Mechanism(c.spec.Mechanism), cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", c.workload, c.spec.Label, err)
		}
		out[i] = DescriptorResult{Workload: c.workload, Label: c.spec.Label, Result: agg}
		if progress != nil {
			progressMu.Lock()
			progress(fmt.Sprintf("%s/%s: IPC %.4f", c.workload, c.spec.Label, agg.IPC))
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteCSV emits the descriptor results as a CSV with one row per cell.
func WriteCSV(w io.Writer, results []DescriptorResult) error {
	if _, err := fmt.Fprintln(w, "workload,config,ipc,icache_mpki,branch_mpki,timeliness,onpath_ratio,usefulness,mean_ftq_occ,lost_pki,prefetches,dropped"); err != nil {
		return err
	}
	for _, r := range results {
		res := r.Result
		if _, err := fmt.Fprintf(w, "%s,%s,%.4f,%.2f,%.2f,%.3f,%.3f,%.3f,%.1f,%.0f,%d,%d\n",
			r.Workload, r.Label, res.IPC, res.IcacheMPKI, res.BranchMPKI,
			res.Timeliness, res.OnPathRatio, res.Usefulness,
			res.MeanFTQOcc, res.LostInstrsPKI, res.PrefetchesEmitted, res.PrefetchesDropped); err != nil {
			return err
		}
	}
	return nil
}

// SpeedupTable pivots descriptor results into per-workload speedups
// over a base config label.
func SpeedupTable(results []DescriptorResult, baseLabel string) ([]SpeedupRow, error) {
	base := map[string]sim.Result{}
	for _, r := range results {
		if r.Label == baseLabel {
			base[r.Workload] = r.Result
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("experiments: no results for base label %q", baseLabel)
	}
	byApp := map[string]map[string]float64{}
	for _, r := range results {
		if r.Label == baseLabel {
			continue
		}
		b, ok := base[r.Workload]
		if !ok {
			continue
		}
		if byApp[r.Workload] == nil {
			byApp[r.Workload] = map[string]float64{}
		}
		byApp[r.Workload][r.Label] = r.Result.Speedup(b)
	}
	apps := make([]string, 0, len(byApp))
	for a := range byApp {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	var rows []SpeedupRow
	for _, a := range apps {
		rows = append(rows, SpeedupRow{App: a, Speedups: byApp[a]})
	}
	return rows, nil
}
