package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Descriptor is a JSON experiment specification, the equivalent of the
// paper artifact's isca.json: a cross product of workloads and
// configurations to simulate, with per-configuration overrides.
//
// Example:
//
//	{
//	  "name": "isca2024-udp",
//	  "workloads": ["mysql", "xgboost"],
//	  "instructions": 500000,
//	  "warmup": 2000000,
//	  "simpoints": 2,
//	  "configs": [
//	    {"label": "baseline", "mechanism": "baseline"},
//	    {"label": "udp", "mechanism": "udp"},
//	    {"label": "ftq64", "mechanism": "baseline", "ftq": 64},
//	    {"label": "smallbtb", "mechanism": "udp", "btb": 1024}
//	  ]
//	}
type Descriptor struct {
	Name         string       `json:"name"`
	Workloads    []string     `json:"workloads"`
	Instructions uint64       `json:"instructions"`
	Warmup       uint64       `json:"warmup"`
	Simpoints    int          `json:"simpoints"`
	Configs      []ConfigSpec `json:"configs"`
	// Traces declares UDPT2 trace workloads. A declared trace is
	// referenced from Workloads as "trace:<name>"; when Workloads is
	// empty and Traces is not, the workload list defaults to exactly
	// the declared traces. The field participates in the daemon's
	// content-addressed JobID like any other, so identical submissions
	// dedup to one job.
	Traces []TraceSpec `json:"traces,omitempty"`
}

// TraceSpec names one UDPT2 trace workload. At least one of File (a
// path the runner loads) or SHA256 (the content hash of an
// already-registered trace) must be set; ResolveTraces loads files and
// fills hashes before any cell key is derived.
type TraceSpec struct {
	Name   string `json:"name"`
	File   string `json:"file,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
}

// FindTrace returns the declared trace spec with the given name.
func (d *Descriptor) FindTrace(name string) (TraceSpec, bool) {
	for _, t := range d.Traces {
		if t.Name == name {
			return t, true
		}
	}
	return TraceSpec{}, false
}

// ConfigSpec is one machine configuration in a descriptor.
type ConfigSpec struct {
	Label     string `json:"label"`
	Mechanism string `json:"mechanism"`
	// Optional overrides (zero = Table II default).
	FTQ        int `json:"ftq,omitempty"`
	BTB        int `json:"btb,omitempty"`
	ICacheKB   int `json:"icache_kb,omitempty"`
	ICacheWays int `json:"icache_ways,omitempty"`
	// Memory request-path geometry: per-level MSHR file sizes and fill
	// bandwidth (cycles between line installs at a level).
	L1DMSHRs      int `json:"l1d_mshrs,omitempty"`
	L2MSHRs       int `json:"l2_mshrs,omitempty"`
	LLCMSHRs      int `json:"llc_mshrs,omitempty"`
	L2FillCycles  int `json:"l2_fill_cycles,omitempty"`
	LLCFillCycles int `json:"llc_fill_cycles,omitempty"`
	// DRAM prefetch throttle backlog in cycles; negative disables the
	// throttle, zero keeps the default (64 DRAM burst slots).
	DRAMPrefetchBacklog int `json:"dram_prefetch_backlog,omitempty"`
	// Utility-controller (UFTQ) depth-bound overrides: the initial
	// occupancy target and the clamp range the controller may move it
	// within. Zero keeps the Table II defaults.
	UFTQInitialDepth int `json:"uftq_initial_depth,omitempty"`
	UFTQMinDepth     int `json:"uftq_min_depth,omitempty"`
	UFTQMaxDepth     int `json:"uftq_max_depth,omitempty"`
	// UDP filter-policy overrides: the useful-fetch confidence
	// threshold (percent) and the seniority-list capacity.
	UDPConfidence int `json:"udp_confidence,omitempty"`
	UDPSeniority  int `json:"udp_seniority,omitempty"`
}

// FieldError locates one invalid descriptor field: which field (in a
// JSON-pointer-ish spelling like "configs[2].mechanism") and why. The
// structured form exists so the daemon's HTTP layer can map validation
// failures to machine-readable 400 bodies instead of regexing error
// strings.
type FieldError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Reason }

// ValidationError aggregates every structural problem of a descriptor
// (validation does not stop at the first offense, so an API client gets
// the full list in one round trip).
type ValidationError struct {
	Descriptor string       `json:"descriptor,omitempty"`
	Fields     []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	var b strings.Builder
	b.WriteString("experiments: invalid descriptor")
	if e.Descriptor != "" {
		fmt.Fprintf(&b, " %q", e.Descriptor)
	}
	for i, f := range e.Fields {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString("; ")
		}
		b.WriteString(f.Error())
	}
	return b.String()
}

// AsValidationError unwraps err to a *ValidationError if one is in the
// chain (nil otherwise) — the API handler's 400 path.
func AsValidationError(err error) *ValidationError {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ve
	}
	return nil
}

// ParseDescriptor reads and validates a JSON descriptor.
func ParseDescriptor(r io.Reader) (*Descriptor, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Descriptor
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("experiments: parsing descriptor: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate reports structural problems (all of them, as a
// *ValidationError) and applies defaults: empty workloads mean all,
// zero instructions/simpoints get the standard values.
func (d *Descriptor) Validate() error {
	ve := &ValidationError{Descriptor: d.Name}
	bad := func(field, format string, args ...any) {
		ve.Fields = append(ve.Fields, FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if d.Name == "" {
		bad("name", "descriptor needs a name")
	}
	if len(d.Configs) == 0 {
		bad("configs", "descriptor has no configs")
	}
	traceNames := map[string]bool{}
	for i, t := range d.Traces {
		field := func(f string) string { return fmt.Sprintf("traces[%d].%s", i, f) }
		if t.Name == "" {
			bad(field("name"), "trace needs a name")
		} else if traceNames[t.Name] {
			bad(field("name"), "duplicate trace name %q", t.Name)
		} else if _, ok := workload.ByName(t.Name); ok {
			bad(field("name"), "trace name %q shadows a synthetic workload", t.Name)
		}
		traceNames[t.Name] = true
		if t.File == "" && t.SHA256 == "" {
			bad(field("file"), "trace needs a file path or a sha256 of a registered trace")
		}
		if t.SHA256 != "" && !isHexSHA256(t.SHA256) {
			bad(field("sha256"), "sha256 must be 64 hex characters, got %q", t.SHA256)
		}
	}
	if len(d.Workloads) == 0 {
		if len(d.Traces) > 0 {
			for _, t := range d.Traces {
				d.Workloads = append(d.Workloads, "trace:"+t.Name)
			}
		} else {
			d.Workloads = append(d.Workloads, workload.Names...)
		}
	}
	usesTrace := false
	for i, w := range d.Workloads {
		if tn, ok := strings.CutPrefix(w, "trace:"); ok {
			usesTrace = true
			if !traceNames[tn] {
				bad(fmt.Sprintf("workloads[%d]", i), "workload %q references an undeclared trace (declared: %s)",
					w, traceSpecNames(d.Traces))
			}
			continue
		}
		if _, ok := workload.ByName(w); !ok {
			bad(fmt.Sprintf("workloads[%d]", i), "unknown workload %q (known: %s)",
				w, strings.Join(append(append([]string{}, workload.Names...), workload.ExtraNames...), ", "))
		}
	}
	if usesTrace && d.Simpoints > 1 {
		bad("simpoints", "trace workloads are a single recording and support only 1 simpoint, got %d", d.Simpoints)
	}
	seen := map[string]bool{}
	for i, c := range d.Configs {
		if c.Label == "" {
			bad(fmt.Sprintf("configs[%d].label", i), "config has no label")
		} else if seen[c.Label] {
			bad(fmt.Sprintf("configs[%d].label", i), "duplicate config label %q", c.Label)
		}
		seen[c.Label] = true
		// Descriptors must name mechanisms explicitly — the empty-string
		// alias for baseline is a programmatic convenience only.
		if _, ok := sim.LookupMechanism(sim.Mechanism(c.Mechanism)); !ok || c.Mechanism == "" {
			bad(fmt.Sprintf("configs[%d].mechanism", i), "unknown mechanism %q (registered: %s)",
				c.Mechanism, sim.MechanismNames())
		}
		if c.UFTQMinDepth > 0 && c.UFTQMaxDepth > 0 && c.UFTQMinDepth > c.UFTQMaxDepth {
			bad(fmt.Sprintf("configs[%d].uftq_min_depth", i),
				"uftq_min_depth %d exceeds uftq_max_depth %d", c.UFTQMinDepth, c.UFTQMaxDepth)
		}
	}
	if len(ve.Fields) > 0 {
		return ve
	}
	if d.Instructions == 0 {
		d.Instructions = 500_000
	}
	if d.Simpoints <= 0 {
		d.Simpoints = 1
	}
	return nil
}

// DescriptorResult is one (workload, config) cell of the run.
type DescriptorResult struct {
	Workload string
	Label    string
	Result   sim.Result
}

// RunDescriptor executes the full cross product with up to parallelism
// cells simulated concurrently (<= 0 means GOMAXPROCS); progress (if
// non-nil) receives one line per completed cell, serialized but in
// completion order. Results are always in descriptor (workload-major)
// order regardless of parallelism, and errors across the grid are
// aggregated.
func RunDescriptor(d *Descriptor, progress func(string), parallelism int) ([]DescriptorResult, error) {
	return RunDescriptorObserved(d, progress, parallelism, Options{})
}

// apply overwrites cfg with the spec's non-zero overrides.
func (cs ConfigSpec) apply(cfg *sim.Config) {
	if cs.FTQ > 0 {
		cfg.FTQDepth = cs.FTQ
	}
	if cs.BTB > 0 {
		cfg.BTBEntries = cs.BTB
	}
	if cs.ICacheKB > 0 {
		cfg.ICacheBytes = cs.ICacheKB * 1024
		if cs.ICacheWays <= 0 {
			// Pick an associativity that keeps the set count a
			// power of two for non-power-of-two sizes.
			cfg.ICacheWays = sim.AutoWays(cfg.ICacheBytes)
		}
	}
	if cs.ICacheWays > 0 {
		cfg.ICacheWays = cs.ICacheWays
	}
	if cs.L1DMSHRs > 0 {
		cfg.L1DMSHRs = cs.L1DMSHRs
	}
	if cs.L2MSHRs > 0 {
		cfg.L2MSHRs = cs.L2MSHRs
	}
	if cs.LLCMSHRs > 0 {
		cfg.LLCMSHRs = cs.LLCMSHRs
	}
	if cs.L2FillCycles > 0 {
		cfg.L2FillCycles = cs.L2FillCycles
	}
	if cs.LLCFillCycles > 0 {
		cfg.LLCFillCycles = cs.LLCFillCycles
	}
	if cs.DRAMPrefetchBacklog != 0 { // negative = disable
		cfg.DRAMPrefetchBacklog = cs.DRAMPrefetchBacklog
	}
	if cs.UFTQInitialDepth > 0 {
		cfg.UFTQ.InitialDepth = cs.UFTQInitialDepth
	}
	if cs.UFTQMinDepth > 0 {
		cfg.UFTQ.MinDepth = cs.UFTQMinDepth
	}
	if cs.UFTQMaxDepth > 0 {
		cfg.UFTQ.MaxDepth = cs.UFTQMaxDepth
	}
	if cs.UDPConfidence > 0 {
		cfg.UDP.ConfidenceThreshold = cs.UDPConfidence
	}
	if cs.UDPSeniority > 0 {
		cfg.UDP.SeniorityEntries = cs.UDPSeniority
	}
}

// CellConfig builds the full simulation configuration of one
// (workload, config-spec) cell of a validated descriptor — the exact
// Config RunDescriptor simulates for that cell. Trace cells
// ("trace:<name>") key on the declared spec's SHA-256 without touching
// the trace bytes, so cell keys — and therefore daemon dedup and store
// addressing — are computable at submission time.
func CellConfig(d *Descriptor, workloadName string, cs ConfigSpec) sim.Config {
	var cfg sim.Config
	if tn, ok := strings.CutPrefix(workloadName, "trace:"); ok {
		spec, ok := d.FindTrace(tn)
		if !ok {
			panic("experiments: unvalidated descriptor: unknown trace " + tn)
		}
		cfg = sim.NewTraceConfig(spec.Name, spec.SHA256, sim.Mechanism(cs.Mechanism))
	} else {
		cfg = sim.NewConfig(workload.MustByName(workloadName), sim.Mechanism(cs.Mechanism))
	}
	cfg.MaxInstructions = d.Instructions
	cfg.WarmupInstructions = d.Warmup
	cs.apply(&cfg)
	return cfg
}

// isHexSHA256 reports whether s is a 64-character lowercase/uppercase
// hex string.
func isHexSHA256(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

// traceSpecNames joins declared trace names for error messages.
func traceSpecNames(ts []TraceSpec) string {
	if len(ts) == 0 {
		return "none"
	}
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return strings.Join(names, ", ")
}

// CellKey returns the canonical result-cache/store key of one cell —
// the address under which the daemon's content-addressed store holds
// (or will hold) the cell's result.
func CellKey(d *Descriptor, workloadName string, cs ConfigSpec) string {
	return CacheKey(CellConfig(d, workloadName, cs), d.Simpoints)
}

// RunDescriptorObserved is RunDescriptor with obsOpts's observability
// knobs (Interval, Metrics, OnSample) applied to every simulated cell,
// obsOpts.Context cancelling the grid, and obsOpts.Batch selecting the
// lockstep-batched engine path. Other obsOpts fields (Instructions,
// Warmup, Simpoints, Workloads) are ignored — the descriptor owns
// those. A zero obsOpts degrades to the plain runner.
//
// Cells run through the engine's memoized, store-backed path
// (Options.run): identical cells across descriptors, figures, or
// concurrent daemon jobs simulate once, and when a persistent result
// store is installed, previously computed cells load from disk. Cached
// and store-served cells emit no interval samples (nothing simulates).
func RunDescriptorObserved(d *Descriptor, progress func(string), parallelism int, obsOpts Options) ([]DescriptorResult, error) {
	out, errs := runDescriptorGrids([]DescriptorJob{{D: d, Progress: progress, Opts: obsOpts}}, parallelism)
	if errs[0] != nil {
		return nil, errs[0]
	}
	return out[0], nil
}

// DescriptorJob pairs one descriptor with its per-job progress sink and
// engine options (observability hooks, context, Batch).
type DescriptorJob struct {
	D        *Descriptor
	Progress func(string)
	Opts     Options
}

// RunDescriptorsBatched executes several descriptor grids as one merged
// cell pool with lockstep batching forced on — the daemon's
// job-coalescing entry point: queued jobs that share a workload image
// land in the same batches, so their streams are produced once across
// jobs, not once per job. Results and errors are per job, in input
// order; per-job observability hooks and progress sinks are preserved
// per cell. ctx (when non-nil) overrides every job's own context — the
// caller owns merged-cancellation policy.
func RunDescriptorsBatched(ctx context.Context, jobs []DescriptorJob, parallelism int) ([][]DescriptorResult, []error) {
	for i := range jobs {
		jobs[i].Opts.Batch = true
		if ctx != nil {
			jobs[i].Opts.Context = ctx
		}
	}
	return runDescriptorGrids(jobs, parallelism)
}

// runDescriptorGrids is the shared descriptor engine: it materializes
// every job's (workload × config) grid, runs the merged pool — batched
// (one lockstep group per workload image, spanning jobs) when any job
// asks for it, per-cell otherwise — and splits results back per job.
func runDescriptorGrids(jobs []DescriptorJob, parallelism int) ([][]DescriptorResult, []error) {
	type cell struct {
		job      int
		workload string
		spec     ConfigSpec
		opts     Options
	}
	var cells []cell
	batch := false
	jobOpts := make([]Options, len(jobs))
	for j, job := range jobs {
		d := job.D
		// Per-cell engine options: the descriptor's effort knobs, the
		// caller's observability hooks, no engine-level progress (the
		// descriptor layer prints its own labeled lines below).
		jobOpts[j] = Options{
			Instructions: d.Instructions,
			Warmup:       d.Warmup,
			Simpoints:    d.Simpoints,
			Batch:        job.Opts.Batch,
			Context:      job.Opts.Context,
			Interval:     job.Opts.Interval,
			Metrics:      job.Opts.Metrics,
			OnSample:     job.Opts.OnSample,
			Store:        job.Opts.Store,
			OnSpan:       job.Opts.OnSpan,
		}
		batch = batch || job.Opts.Batch
		for _, w := range d.Workloads {
			for _, cs := range d.Configs {
				cells = append(cells, cell{job: j, workload: w, spec: cs, opts: jobOpts[j]})
			}
		}
	}
	out := make([][]DescriptorResult, len(jobs))
	errs := make([]error, len(jobs))
	pos := make([]int, len(cells)) // cell index -> slot in its job's grid
	for i, c := range cells {
		pos[i] = len(out[c.job])
		out[c.job] = append(out[c.job], DescriptorResult{Workload: c.workload, Label: c.spec.Label})
	}

	emit := func(i int, agg sim.Result) {
		c := cells[i]
		out[c.job][pos[i]].Result = agg
		if p := jobs[c.job].Progress; p != nil {
			progressMu.Lock()
			p(fmt.Sprintf("%s/%s: IPC %.4f", c.workload, c.spec.Label, agg.IPC))
			progressMu.Unlock()
		}
	}

	if batch {
		bcells := make([]batchCell, len(cells))
		for i, c := range cells {
			bcells[i] = batchCell{
				name: c.workload, mech: sim.Mechanism(c.spec.Mechanism),
				cfg: CellConfig(jobs[c.job].D, c.workload, c.spec), opts: c.opts,
			}
		}
		// The merged pool runs under the first job's context; per-cell
		// waits use the same (RunDescriptorsBatched already unified the
		// contexts, and a single-job call has only its own).
		res, cerrs := runCellsBatched(cells[0].opts.ctx(), bcells, parallelism, nil)
		perJob := make([][]error, len(jobs))
		for i, c := range cells {
			if cerrs[i] != nil {
				perJob[c.job] = append(perJob[c.job],
					fmt.Errorf("experiments: %s/%s: %w", c.workload, c.spec.Label, cerrs[i]))
				continue
			}
			emit(i, res[i])
		}
		for j := range jobs {
			if len(perJob[j]) > 0 {
				out[j] = nil
				errs[j] = errors.Join(perJob[j]...)
			}
		}
		return out, errs
	}

	err := ForEachCtx(cells[0].opts.ctx(), len(cells), parallelism, func(i int) error {
		c := cells[i]
		cfg := CellConfig(jobs[c.job].D, c.workload, c.spec)
		agg, err := c.opts.runConfig(c.workload, sim.Mechanism(c.spec.Mechanism), cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", c.workload, c.spec.Label, err)
		}
		emit(i, agg)
		return nil
	})
	if err != nil {
		// The per-cell path is only reached with a single job (multi-job
		// pools force batching), so the joined grid error is the job's.
		for j := range jobs {
			errs[j] = err
			out[j] = nil
		}
	}
	return out, errs
}

// WriteCSV emits the descriptor results as a CSV with one row per cell.
func WriteCSV(w io.Writer, results []DescriptorResult) error {
	if _, err := fmt.Fprintln(w, "workload,config,ipc,icache_mpki,branch_mpki,timeliness,onpath_ratio,usefulness,mean_ftq_occ,lost_pki,prefetches,dropped"); err != nil {
		return err
	}
	for _, r := range results {
		res := r.Result
		if _, err := fmt.Fprintf(w, "%s,%s,%.4f,%.2f,%.2f,%.3f,%.3f,%.3f,%.1f,%.0f,%d,%d\n",
			r.Workload, r.Label, res.IPC, res.IcacheMPKI, res.BranchMPKI,
			res.Timeliness, res.OnPathRatio, res.Usefulness,
			res.MeanFTQOcc, res.LostInstrsPKI, res.PrefetchesEmitted, res.PrefetchesDropped); err != nil {
			return err
		}
	}
	return nil
}

// SpeedupTable pivots descriptor results into per-workload speedups
// over a base config label.
func SpeedupTable(results []DescriptorResult, baseLabel string) ([]SpeedupRow, error) {
	base := map[string]sim.Result{}
	for _, r := range results {
		if r.Label == baseLabel {
			base[r.Workload] = r.Result
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("experiments: no results for base label %q", baseLabel)
	}
	byApp := map[string]map[string]float64{}
	for _, r := range results {
		if r.Label == baseLabel {
			continue
		}
		b, ok := base[r.Workload]
		if !ok {
			continue
		}
		if byApp[r.Workload] == nil {
			byApp[r.Workload] = map[string]float64{}
		}
		byApp[r.Workload][r.Label] = r.Result.Speedup(b)
	}
	apps := make([]string, 0, len(byApp))
	for a := range byApp {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	var rows []SpeedupRow
	for _, a := range apps {
		rows = append(rows, SpeedupRow{App: a, Speedups: byApp[a]})
	}
	return rows, nil
}
