package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

// AddDescriptorTraces re-parses a raw descriptor with extra trace files
// (comma-separated paths) appended to its trace set, then re-validates.
// Defaults depending on the trace set — an empty workload list becomes
// the declared traces — are recomputed, which is why this starts from
// the raw JSON rather than mutating an already-validated Descriptor.
// Each added trace is named after its file's base name (sans
// extension); a base name that shadows a synthetic workload — the
// usual case for `trace record -workload mysql -o mysql.udpt2` — gets
// a "-trace" suffix so validation's shadowing rule holds.
func AddDescriptorTraces(raw []byte, files string) (*Descriptor, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var d Descriptor
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("experiments: parsing descriptor: %w", err)
	}
	for _, f := range strings.Split(files, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		if _, ok := workload.ByName(name); ok {
			name += "-trace"
		}
		d.Traces = append(d.Traces, TraceSpec{Name: name, File: f})
		// A descriptor with an explicit workload list gets the trace
		// appended to its grid; an empty list already defaults to
		// exactly the declared traces in Validate.
		if len(d.Workloads) > 0 {
			d.Workloads = append(d.Workloads, "trace:"+name)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ResolveTraces loads and registers every trace a validated descriptor
// declares, filling in missing SHA-256 hashes, so that cell keys are
// final and machine construction can resolve Config.TraceRef through
// the source registry. Specs that carry a hash of an already-registered
// source are accepted without touching the filesystem — the daemon path
// for re-submitted descriptors. Call it after ParseDescriptor and
// before running or enqueueing the descriptor.
func ResolveTraces(d *Descriptor) error {
	for i := range d.Traces {
		t := &d.Traces[i]
		if t.SHA256 != "" {
			if _, ok := workload.SourceByKey("trace:" + t.SHA256); ok {
				continue
			}
			if t.File == "" {
				return fmt.Errorf("experiments: trace %q: sha256 %s is not a registered trace and no file is given",
					t.Name, t.SHA256)
			}
		}
		src, err := trace.LoadSource(t.File)
		if err != nil {
			return fmt.Errorf("experiments: trace %q: %w", t.Name, err)
		}
		if t.SHA256 != "" && t.SHA256 != src.SHA256() {
			return fmt.Errorf("experiments: trace %q: file %s hashes to %s, descriptor pins %s",
				t.Name, t.File, src.SHA256(), t.SHA256)
		}
		t.SHA256 = src.SHA256()
		src.SetName(t.Name)
		workload.RegisterSource(src)
	}
	return nil
}
